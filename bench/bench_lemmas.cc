// E10 — Lemmas 1-3: constructs schedules violating each lemma's conclusion
// and confirms the PRED criterion rejects them, while the compliant
// variants pass.

#include <iostream>

#include "core/figures.h"
#include "core/pred.h"

using namespace tpm;

namespace {

void Report(const char* lemma, const char* description,
            const ProcessSchedule& bad, const ProcessSchedule& good,
            const ConflictSpec& spec) {
  auto bad_pred = IsPRED(bad, spec);
  auto good_pred = IsPRED(good, spec);
  std::cout << "  " << lemma << ": " << description << "\n"
            << "    violating schedule " << bad.ToString() << "\n"
            << "      PRED: " << (bad_pred.ok() && *bad_pred ? "YES" : "no")
            << " (expected no)\n"
            << "    compliant schedule " << good.ToString() << "\n"
            << "      PRED: " << (good_pred.ok() && *good_pred ? "yes" : "NO")
            << " (expected yes)\n\n";
}

ProcessSchedule Make(const figures::PaperWorld& world,
                     std::initializer_list<std::pair<int, int>> acts,
                     std::initializer_list<int> commits = {}) {
  ProcessSchedule s;
  (void)s.AddProcess(figures::kP1, &world.p1);
  (void)s.AddProcess(figures::kP2, &world.p2);
  for (auto [pid, act] : acts) {
    (void)s.Append(ScheduleEvent::Activity(
        ActivityInstance{ProcessId(pid), ActivityId(act), false}));
  }
  for (int pid : commits) {
    (void)s.Append(ScheduleEvent::Commit(ProcessId(pid)));
  }
  return s;
}

}  // namespace

int main() {
  figures::PaperWorld world;
  std::cout << "E10 | Lemmas 1-3 — scheduler obligations derived from "
               "PRED\n\n";

  // Lemma 1: with a conflict a_ik << a_jl and P_i active, P_j's
  // non-compensatable activities must wait for C_i.
  // Violating: a11 (P1) << a21 (P2, conflict), then P2 runs its pivot a23
  // while P1 is still backward-recoverable (this is S_t1 of Example 8).
  // Compliant: P1 commits first (Figure 7 shape).
  Report("Lemma 1",
         "non-compensatables of P_j deferred until C_i",
         figures::MakeScheduleSt1(world),
         figures::MakeScheduleDoublePrimeT1(world), world.spec);

  // Lemma 2: compensations must run in reverse order of their originals.
  // We simulate a scheduler that compensated in FORWARD order by building
  // the completed schedule by hand.
  {
    ProcessSchedule forward_comp = Make(world, {{1, 1}, {2, 1}});
    // Completion by hand in the WRONG order: a11^-1 before a21^-1.
    (void)forward_comp.Append(ScheduleEvent::Activity(
        ActivityInstance{figures::kP1, ActivityId(1), true}));
    (void)forward_comp.Append(ScheduleEvent::Activity(
        ActivityInstance{figures::kP2, ActivityId(1), true}));

    ProcessSchedule reverse_comp = Make(world, {{1, 1}, {2, 1}});
    (void)reverse_comp.Append(ScheduleEvent::Activity(
        ActivityInstance{figures::kP2, ActivityId(1), true}));
    (void)reverse_comp.Append(ScheduleEvent::Activity(
        ActivityInstance{figures::kP1, ActivityId(1), true}));
    Report("Lemma 2", "compensations in reverse order of originals",
           forward_comp, reverse_comp, world.spec);
  }

  // Lemma 3: a compensation a_ik^-1 must precede a conflicting
  // non-compensatable completion activity a_jl^r. Conflict pair:
  // (a15, a25): P1 compensating toward its retriable alternative while
  // P2 executes its retriable tail.
  {
    // Violating: P2's conflicting retriable a25 runs, then P1's a15 (on
    // the forward path after compensating a13) — the wrong way around
    // given a15's conflict partner came first... build both orders and
    // compare.
    ProcessSchedule bad = Make(world, {{2, 1}, {2, 2}, {2, 3}, {2, 4}});
    (void)bad.Append(ScheduleEvent::Activity(
        ActivityInstance{figures::kP2, ActivityId(5), false}));  // a25^r
    (void)bad.Append(ScheduleEvent::Activity(
        ActivityInstance{figures::kP1, ActivityId(1), false}));  // a11
    // P1 conflicts with P2's a25 via a15 later; P2 already done its tail.
    ProcessSchedule good = Make(world, {{2, 1}, {2, 2}, {2, 3}, {2, 4}},
                                {});
    std::cout << "  Lemma 3: compensations precede conflicting retriable "
                 "completion steps\n"
              << "    (enforced constructively by CompleteSchedule: all\n"
              << "    backward steps are emitted before any forward step;\n"
              << "    see completed_schedule_test for the assertion)\n\n";
    (void)bad;
    (void)good;
  }

  std::cout << "  summary: the PRED criterion operationally forces the\n"
               "  deferred (2PC) commit of non-compensatables (Lemma 1),\n"
               "  reverse-order compensation (Lemma 2), and\n"
               "  backward-before-forward recovery ordering (Lemma 3).\n";
  return 0;
}
