// E14 — reduction machinery scaling: the polynomial RED decision procedure
// vs the exhaustive rewrite oracle, and full PRED analysis cost, as
// schedule size grows.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "core/pred.h"
#include "core/reduction.h"
#include "workload/schedule_generator.h"

using namespace tpm;

namespace {

GeneratedSchedule MakeWorkload(int num_processes, double density,
                               uint64_t seed) {
  Rng rng(seed);
  RandomScheduleConfig config;
  config.num_processes = num_processes;
  config.conflict_density = density;
  config.stop_probability = 0.0;
  auto generated = GenerateRandomSchedule(config, &rng);
  // Generation of valid configs cannot fail.
  return std::move(generated).value();
}

void PrintComparison() {
  std::cout << "E14 | reduction decision procedures\n";
  std::cout << "  polynomial checker vs exhaustive rewriter (same "
               "verdicts, test-validated):\n";
  for (int n : {2, 3}) {
    GeneratedSchedule w = MakeWorkload(n, 0.3, 17 + n);
    auto completed = CompleteSchedule(w.schedule);
    if (!completed.ok()) continue;
    std::set<ProcessId> committed;
    for (const auto& [pid, def] : w.schedule.processes()) {
      if (w.schedule.IsProcessCommitted(pid)) committed.insert(pid);
    }

    auto t0 = std::chrono::steady_clock::now();
    ReductionOutcome poly =
        ReduceCompletedSchedule(*completed, w.spec, committed);
    auto poly_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

    t0 = std::chrono::steady_clock::now();
    auto oracle = IsReducibleExhaustive(*completed, w.spec, committed,
                                        /*max_tokens=*/12,
                                        /*max_states=*/2'000'000);
    auto oracle_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    std::cout << "    processes=" << n << " events="
              << completed->size() << "  poly=" << poly_us << "us ("
              << (poly.reducible ? "RED" : "not RED") << ")  oracle=";
    if (oracle.ok()) {
      std::cout << oracle_us << "us (" << (*oracle ? "RED" : "not RED")
                << ")";
    } else {
      std::cout << "skipped (" << oracle.status().message() << ")";
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

void BM_PolynomialRed(benchmark::State& state) {
  GeneratedSchedule w =
      MakeWorkload(static_cast<int>(state.range(0)), 0.1, 5);
  for (auto _ : state) {
    auto outcome = AnalyzeRED(w.schedule, w.spec);
    benchmark::DoNotOptimize(outcome);
  }
  state.SetComplexityN(static_cast<int64_t>(w.schedule.size()));
}
BENCHMARK(BM_PolynomialRed)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Complexity();

void BM_FullPredAnalysis(benchmark::State& state) {
  GeneratedSchedule w =
      MakeWorkload(static_cast<int>(state.range(0)), 0.1, 5);
  for (auto _ : state) {
    auto outcome = AnalyzePRED(w.schedule, w.spec);
    benchmark::DoNotOptimize(outcome);
  }
  state.SetComplexityN(static_cast<int64_t>(w.schedule.size()));
}
BENCHMARK(BM_FullPredAnalysis)->Arg(2)->Arg(4)->Arg(8)->Complexity();

void BM_CompleteSchedule(benchmark::State& state) {
  GeneratedSchedule w =
      MakeWorkload(static_cast<int>(state.range(0)), 0.1, 5);
  for (auto _ : state) {
    auto completed = CompleteSchedule(w.schedule);
    benchmark::DoNotOptimize(completed);
  }
}
BENCHMARK(BM_CompleteSchedule)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  PrintComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
