// E23 — wall-clock submit->commit latency under open-loop load, batched vs
// per-process admission. One producer thread per tenant drives short
// escrow-increment processes (fully commuting within a tenant, so the
// scheduler's admission/runtime overhead — not conflict resolution — is
// what the numbers measure) into the free-running ShardedRuntime; shard
// schedulers run with reclaim_terminated so millions of processes execute
// in bounded memory. Per admission mode the harness measures:
//
//   1. saturation commit throughput (producers submit as fast as the
//      bounded FIFO queues admit them), then
//   2. open-loop latency at 70% of that throughput: each producer submits
//      on a fixed schedule and the latency of a process is measured from
//      its SCHEDULED submit time to the observer's termination callback —
//      queue backpressure therefore counts against latency instead of
//      being silently absorbed (no coordinated omission).
//
// Per-process submit times are joined to terminations through the
// SubmitTicket pid futures, and the FIFO admission contract is asserted on
// the side: a producer that is alone on its shard must see strictly
// increasing pids. `--json <path>` writes BENCH_latency.json; `--processes
// N` sizes each phase (default 250000 per phase, two phases per mode =
// about a million processes per full run).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/json_writer.h"
#include "common/str_util.h"
#include "runtime/sharded_runtime.h"
#include "subsystem/escrow_subsystem.h"

using namespace tpm;

namespace {

using Clock = std::chrono::steady_clock;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

struct Tenant {
  std::unique_ptr<EscrowSubsystem> escrow;
  std::unique_ptr<ProcessDef> def;
};

// A tenant: one escrow counter with commuting inc services and the
// two-activity chain  inc (compensatable, dec compensation) -> inc (pivot).
Tenant MakeTenant(int t) {
  Tenant tenant;
  tenant.escrow = std::make_unique<EscrowSubsystem>(SubsystemId(100 + t),
                                                    StrCat("escrow", t));
  const std::string counter = StrCat("c", t);
  const ServiceId inc_a(1000 * (t + 1) + 1);
  const ServiceId dec_a(1000 * (t + 1) + 2);
  const ServiceId inc_b(1000 * (t + 1) + 3);
  Status s = tenant.escrow->CreateCounter(counter, 0);
  if (s.ok()) s = tenant.escrow->RegisterIncService(inc_a, counter);
  if (s.ok()) s = tenant.escrow->RegisterDecService(dec_a, counter);
  if (s.ok()) s = tenant.escrow->RegisterIncService(inc_b, counter);
  if (!s.ok()) return {};
  tenant.def = std::make_unique<ProcessDef>(StrCat("pay_t", t));
  ActivityId reserve = tenant.def->AddActivity(
      "reserve", ActivityKind::kCompensatable, inc_a, dec_a);
  ActivityId settle =
      tenant.def->AddActivity("settle", ActivityKind::kPivot, inc_b);
  if (!tenant.def->AddEdge(reserve, settle).ok()) return {};
  if (!tenant.def->Validate().ok()) return {};
  return tenant;
}

/// Records the wall-clock termination instant of every process, per shard,
/// dense by pid (pids are per-shard sequential — the same contract the
/// schedulers' runtime tables rely on).
class TerminationRecorder : public RuntimeObserver {
 public:
  explicit TerminationRecorder(int shards) : terminated_ns_(shards) {}

  void OnProcessTerminated(int shard, ProcessId pid,
                           ProcessOutcome outcome) override {
    std::vector<int64_t>& row = terminated_ns_[shard];
    const size_t slot = static_cast<size_t>(pid.value() - 1);
    if (slot >= row.size()) row.resize(slot + 1, -1);
    row[slot] = NowNs();
    if (outcome == ProcessOutcome::kCommitted) {
      committed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      aborted_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  int64_t TerminatedNs(int shard, ProcessId pid) const {
    const std::vector<int64_t>& row = terminated_ns_[shard];
    const size_t slot = static_cast<size_t>(pid.value() - 1);
    return slot < row.size() ? row[slot] : -1;
  }

  int64_t committed() const { return committed_.load(); }
  int64_t aborted() const { return aborted_.load(); }

 private:
  std::vector<std::vector<int64_t>> terminated_ns_;
  std::atomic<int64_t> committed_{0};
  std::atomic<int64_t> aborted_{0};
};

struct PhaseResult {
  bool ok = true;
  std::string error;
  int64_t submitted = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
  double seconds = 0.0;
  double throughput = 0.0;  // committed per second
  bool fifo_pids = true;    // sole-producer shards saw increasing pids
  // Latency phase only (ns).
  std::vector<int64_t> latencies_ns;
};

struct Percentiles {
  double p50 = 0, p99 = 0, p999 = 0, mean = 0, max = 0;
};

Percentiles Summarize(std::vector<int64_t>* ns) {
  Percentiles out;
  if (ns->empty()) return out;
  std::sort(ns->begin(), ns->end());
  auto at = [&](double q) {
    size_t i = static_cast<size_t>(q * (ns->size() - 1));
    return static_cast<double>((*ns)[i]);
  };
  out.p50 = at(0.50);
  out.p99 = at(0.99);
  out.p999 = at(0.999);
  out.max = static_cast<double>(ns->back());
  double sum = 0;
  for (int64_t v : *ns) sum += static_cast<double>(v);
  out.mean = sum / static_cast<double>(ns->size());
  return out;
}

/// One measured run: `total` processes spread over the tenants' producer
/// threads. rate_per_s <= 0 means saturation (submit as fast as the
/// blocking queues allow); otherwise each producer paces submissions on a
/// fixed open-loop schedule and latency is measured from the scheduled
/// instant.
PhaseResult RunPhase(bool batched, int tenants, int64_t total,
                     double rate_per_s) {
  PhaseResult result;
  std::vector<Tenant> world;
  for (int t = 0; t < tenants; ++t) {
    world.push_back(MakeTenant(t));
    if (world.back().def == nullptr) {
      result.ok = false;
      result.error = "tenant construction failed";
      return result;
    }
  }

  ShardedRuntimeOptions options;
  options.num_shards = tenants;
  options.mode = TickMode::kFreeRunning;
  options.log_mode = ShardLogMode::kNone;
  options.queue_capacity = 4096;
  options.backpressure = BackpressurePolicy::kBlock;
  options.batched_admission = batched;
  options.scheduler.reclaim_terminated = true;
  ShardedRuntime runtime(options);
  TerminationRecorder recorder(tenants);
  Status status = runtime.AddObserver(&recorder);
  for (int t = 0; status.ok() && t < tenants; ++t) {
    status = runtime.AddSubsystem(world[t].escrow.get());
  }
  if (status.ok()) status = runtime.Start();
  if (!status.ok()) {
    result.ok = false;
    result.error = status.ToString();
    return result;
  }

  struct ProducerLog {
    std::vector<SubmitTicket> tickets;
    std::vector<int64_t> submit_ns;
    bool ok = true;
    std::string error;
  };
  std::vector<ProducerLog> logs(tenants);
  const int64_t per_producer = total / tenants;
  const double producer_rate = rate_per_s > 0 ? rate_per_s / tenants : 0.0;

  const auto begin = Clock::now();
  std::vector<std::thread> producers;
  producers.reserve(tenants);
  for (int t = 0; t < tenants; ++t) {
    producers.emplace_back([&, t] {
      ProducerLog& log = logs[t];
      log.tickets.reserve(per_producer);
      log.submit_ns.reserve(per_producer);
      const ProcessDef* def = world[t].def.get();
      const auto start = Clock::now();
      for (int64_t i = 0; i < per_producer; ++i) {
        int64_t scheduled_ns;
        if (producer_rate > 0) {
          const auto due =
              start + std::chrono::nanoseconds(static_cast<int64_t>(
                          1e9 * static_cast<double>(i) / producer_rate));
          std::this_thread::sleep_until(due);
          scheduled_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             due.time_since_epoch())
                             .count();
        } else {
          scheduled_ns = NowNs();
        }
        Result<SubmitTicket> ticket = runtime.Submit(def);
        if (!ticket.ok()) {
          log.ok = false;
          log.error = ticket.status().ToString();
          return;
        }
        log.tickets.push_back(std::move(*ticket));
        log.submit_ns.push_back(scheduled_ns);
      }
    });
  }
  for (std::thread& p : producers) p.join();
  status = runtime.Drain();
  const auto end = Clock::now();
  if (status.ok()) status = runtime.Stop();
  if (!status.ok()) {
    result.ok = false;
    result.error = status.ToString();
    return result;
  }
  for (const ProducerLog& log : logs) {
    if (!log.ok) {
      result.ok = false;
      result.error = log.error;
      return result;
    }
  }

  // Join submit times to termination times via the admission futures (all
  // resolved after Drain), and assert the FIFO contract where it is
  // observable: a producer alone on its shard must see ascending pids.
  std::map<int, int> producers_per_shard;
  for (const ProducerLog& log : logs) {
    if (!log.tickets.empty()) producers_per_shard[log.tickets[0].shard]++;
  }
  result.latencies_ns.reserve(rate_per_s > 0 ? total : 0);
  for (ProducerLog& log : logs) {
    int64_t last_pid = 0;
    const bool sole = !log.tickets.empty() &&
                      producers_per_shard[log.tickets[0].shard] == 1;
    for (size_t i = 0; i < log.tickets.size(); ++i) {
      SubmitTicket& ticket = log.tickets[i];
      Result<ProcessId> pid = ticket.Await();
      if (!pid.ok()) {
        result.ok = false;
        result.error = pid.status().ToString();
        return result;
      }
      if (sole) {
        if (pid->value() <= last_pid) result.fifo_pids = false;
        last_pid = pid->value();
      }
      if (rate_per_s > 0) {
        const int64_t done = recorder.TerminatedNs(ticket.shard, *pid);
        if (done >= 0 && done >= log.submit_ns[i]) {
          result.latencies_ns.push_back(done - log.submit_ns[i]);
        }
      }
    }
  }

  result.submitted = static_cast<int64_t>(per_producer) * tenants;
  result.committed = recorder.committed();
  result.aborted = recorder.aborted();
  result.seconds = std::chrono::duration<double>(end - begin).count();
  result.throughput =
      result.seconds > 0 ? result.committed / result.seconds : 0.0;
  return result;
}

struct ModeReport {
  bool batched = false;
  PhaseResult saturation;
  PhaseResult paced;
  Percentiles latency;  // over paced.latencies_ns, microseconds printed
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int64_t processes = 250000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--processes" && i + 1 < argc) {
      processes = std::stoll(argv[++i]);
    }
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  // Producers and shard workers share the machine; half the threads each
  // side keeps the open-loop schedule honest.
  const int tenants = std::max(1, std::min(4, hw / 2));

  std::cout << "E23 wall-clock submit->commit latency (open-loop, " << tenants
            << " tenants/shards, " << processes
            << " processes per phase, hw threads = " << hw << ")\n\n";

  bool all_ok = true;
  std::vector<ModeReport> reports;
  for (bool batched : {false, true}) {
    ModeReport report;
    report.batched = batched;
    report.saturation = RunPhase(batched, tenants, processes, -1.0);
    all_ok = all_ok && report.saturation.ok;
    double rate = 0.7 * report.saturation.throughput;
    if (report.saturation.ok && rate > 0) {
      report.paced = RunPhase(batched, tenants, processes, rate);
      all_ok = all_ok && report.paced.ok;
      report.latency = Summarize(&report.paced.latencies_ns);
    } else if (report.saturation.ok) {
      report.paced.ok = false;
      report.paced.error = "saturation throughput was zero";
      all_ok = false;
    }
    const char* label = batched ? "batched   " : "per-process";
    std::cout << "  " << label << "  saturation: " << std::fixed
              << std::setprecision(0) << report.saturation.throughput
              << " commit/s (" << report.saturation.committed << "/"
              << report.saturation.submitted << " committed, "
              << report.saturation.aborted << " aborted"
              << (report.saturation.ok
                      ? ""
                      : StrCat(", FAILED: ", report.saturation.error))
              << ")\n";
    if (report.paced.ok) {
      std::cout << "               open-loop @" << std::setprecision(0) << rate
                << "/s: p50 " << std::setprecision(1)
                << report.latency.p50 / 1e3 << "us  p99 "
                << report.latency.p99 / 1e3 << "us  p99.9 "
                << report.latency.p999 / 1e3 << "us  mean "
                << report.latency.mean / 1e3 << "us  max "
                << report.latency.max / 1e6 << "ms  ("
                << report.paced.latencies_ns.size() << " samples, fifo="
                << (report.paced.fifo_pids ? "ok" : "VIOLATED") << ")\n";
      all_ok = all_ok && report.paced.fifo_pids;
    } else {
      std::cout << "               open-loop phase FAILED: "
                << report.paced.error << "\n";
    }
    reports.push_back(std::move(report));
  }

  double speedup = 0.0;
  if (reports.size() == 2 && reports[0].saturation.throughput > 0) {
    speedup =
        reports[1].saturation.throughput / reports[0].saturation.throughput;
  }
  // Batching amortizes validation and cycle checks; wall-clock noise gets
  // a tolerance band, so the enforced claim is "no regression".
  const bool pass = all_ok && speedup >= 0.85;
  std::cout << "\n  headline: batched/per-process saturation throughput = "
            << std::fixed << std::setprecision(2) << speedup
            << "x (require >= 0.85x; expected shape: >= 1x — the batch "
               "path amortizes per-submission admission work) "
            << (pass ? "[OK]" : "[FAIL]") << "\n";

  std::ostringstream json;
  bench::JsonWriter writer(json);
  writer.BeginObject();
  writer.Field("benchmark",
               StrCat("bench_latency E23 open-loop submit->commit wall-clock "
                      "latency (",
                      tenants, " tenants, ", processes,
                      " processes per phase, batched vs per-process "
                      "admission)"));
  writer.Field(
      "methodology",
      "per admission mode: (1) saturation phase — one producer thread per "
      "tenant submits commuting escrow processes as fast as the bounded "
      "FIFO queues admit, throughput = committed/seconds; (2) open-loop "
      "phase at 70% of that throughput — submissions follow a fixed "
      "schedule, latency = termination instant minus SCHEDULED submit "
      "instant (backpressure counts, no coordinated omission); submit and "
      "termination joined via admission-ticket pid futures; shard "
      "schedulers run with reclaim_terminated (bounded memory); FIFO "
      "admission asserted via ascending pids on sole-producer shards");
  writer.Field("hardware_threads", hw);
  writer.Field("tenants", tenants);
  writer.Field("processes_per_phase", processes);
  writer.BeginArray("modes");
  for (const ModeReport& report : reports) {
    writer.BeginObject();
    writer.Field("admission", report.batched ? "batched" : "per_process");
    writer.BeginObject("saturation");
    writer.Field("ok", report.saturation.ok);
    if (!report.saturation.ok) writer.Field("error", report.saturation.error);
    writer.Field("submitted", report.saturation.submitted);
    writer.Field("committed", report.saturation.committed);
    writer.Field("aborted", report.saturation.aborted);
    writer.Field("seconds", report.saturation.seconds, 6);
    writer.Field("commit_throughput_per_s", report.saturation.throughput, 1);
    writer.EndObject();
    writer.BeginObject("open_loop");
    writer.Field("ok", report.paced.ok);
    if (!report.paced.ok) writer.Field("error", report.paced.error);
    writer.Field("target_rate_per_s", 0.7 * report.saturation.throughput, 1);
    writer.Field("submitted", report.paced.submitted);
    writer.Field("committed", report.paced.committed);
    writer.Field("aborted", report.paced.aborted);
    writer.Field("samples",
                 static_cast<int64_t>(report.paced.latencies_ns.size()));
    writer.Field("fifo_pids_ascending", report.paced.fifo_pids);
    writer.Field("p50_us", report.latency.p50 / 1e3, 1);
    writer.Field("p99_us", report.latency.p99 / 1e3, 1);
    writer.Field("p999_us", report.latency.p999 / 1e3, 1);
    writer.Field("mean_us", report.latency.mean / 1e3, 1);
    writer.Field("max_us", report.latency.max / 1e3, 1);
    writer.EndObject();
    writer.EndObject();
  }
  writer.EndArray();
  writer.BeginObject("headline");
  writer.Field("batched_vs_per_process_throughput", speedup, 3);
  writer.Field("required_min_ratio", 0.85, 2);
  writer.Field("pass", pass);
  writer.EndObject();
  writer.EndObject();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
    std::cout << "\n  wrote " << json_path << "\n";
  }
  return pass ? 0 : 1;
}
