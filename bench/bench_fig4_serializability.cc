// E4 — Figure 4 / Examples 3-4: serializable vs non-serializable process
// schedules, plus conflict-graph construction cost on growing schedules.

#include <chrono>
#include <iostream>

#include "core/figures.h"
#include "core/serializability.h"
#include "workload/schedule_generator.h"

using namespace tpm;

int main() {
  figures::PaperWorld world;

  std::cout << "E4 | Figure 4 — serializability of S and S'\n";
  {
    ProcessSchedule s = figures::MakeScheduleSt2(world);
    ConflictGraph cg = BuildConflictGraph(s, world.spec);
    std::cout << "  Figure 4(a) S_t2  = " << s.ToString() << "\n"
              << "    paper: serializable;    measured: "
              << (cg.IsAcyclic() ? "serializable" : "NOT serializable");
    auto order = cg.SerializationOrder();
    if (order.ok()) {
      std::cout << " (order:";
      for (ProcessId p : *order) std::cout << " P" << p;
      std::cout << ")";
    }
    std::cout << "\n";
  }
  {
    ProcessSchedule s = figures::MakeSchedulePrimeT2(world);
    ConflictGraph cg = BuildConflictGraph(s, world.spec);
    std::cout << "  Figure 4(b) S'_t2 = " << s.ToString() << "\n"
              << "    paper: cyclic dependencies; measured: "
              << (cg.IsAcyclic() ? "serializable" : "NOT serializable");
    auto cycle = cg.FindCycle();
    if (!cycle.empty()) {
      std::cout << " (cycle:";
      for (ProcessId p : cycle) std::cout << " P" << p;
      std::cout << ")";
    }
    std::cout << "\n";
  }

  std::cout << "\n  conflict-graph analysis cost vs schedule size:\n";
  Rng rng(42);
  for (int n : {4, 8, 16, 32, 64}) {
    RandomScheduleConfig config;
    config.num_processes = n;
    config.conflict_density = 0.05;
    config.stop_probability = 0.0;
    auto generated = GenerateRandomSchedule(config, &rng);
    if (!generated.ok()) continue;
    auto start = std::chrono::steady_clock::now();
    constexpr int kReps = 20;
    bool serializable = false;
    for (int rep = 0; rep < kReps; ++rep) {
      serializable = IsSerializable(generated->schedule, generated->spec);
    }
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    std::cout << "    processes=" << n
              << " events=" << generated->schedule.size()
              << " serializable=" << (serializable ? "yes" : "no")
              << " time=" << us / kReps << "us\n";
  }
  return 0;
}
