// E9 — Theorem 1 at scale: random-schedule sweep reporting, per conflict
// density, the rates of serializable / RED / PRED schedules and the
// validation counters for Theorem 1 (PRED => serializable; PRED => the
// enforceable core of Proc-REC — see EXPERIMENTS.md).

#include <iomanip>
#include <iostream>

#include "core/pred.h"
#include "core/recoverability.h"
#include "core/serializability.h"
#include "workload/schedule_generator.h"

using namespace tpm;

int main() {
  std::cout << "E9 | Theorem 1 sweep over random schedules\n";
  std::cout << "  density   n     SR%    RED%   PRED%  procrec%  "
               "thm1-violations\n";
  constexpr int kIterations = 400;
  for (double density : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8}) {
    Rng rng(static_cast<uint64_t>(density * 1000) + 5);
    RandomScheduleConfig config;
    config.num_processes = 3;
    config.conflict_density = density;
    int serializable = 0, red = 0, pred = 0, procrec = 0, violations = 0;
    for (int i = 0; i < kIterations; ++i) {
      auto generated = GenerateRandomSchedule(config, &rng);
      if (!generated.ok()) continue;
      const bool sr = IsSerializable(generated->schedule, generated->spec);
      auto r = IsRED(generated->schedule, generated->spec);
      auto p = IsPRED(generated->schedule, generated->spec);
      const bool is_red = r.ok() && *r;
      const bool is_pred = p.ok() && *p;
      const bool is_procrec =
          IsProcessRecoverable(generated->schedule, generated->spec);
      serializable += sr;
      red += is_red;
      pred += is_pred;
      procrec += is_procrec;
      if (is_pred) {
        ConflictGraphOptions committed_only;
        committed_only.committed_projection = true;
        if (!IsSerializable(generated->schedule, generated->spec,
                            committed_only)) {
          ++violations;
        }
      }
    }
    auto pct = [&](int x) { return 100.0 * x / kIterations; };
    std::cout << "  " << std::fixed << std::setprecision(2) << std::setw(7)
              << density << std::setw(5) << kIterations << std::setprecision(1)
              << std::setw(7) << pct(serializable) << std::setw(8) << pct(red)
              << std::setw(8) << pct(pred) << std::setw(9) << pct(procrec)
              << std::setw(12) << violations << "\n";
  }
  std::cout <<
      "\n  expected shape: all rates fall as conflicts grow;\n"
      "  PRED% <= RED% <= 100 and PRED% <= SR%; thm1-violations == 0.\n"
      "  procrec% (full syntactic Def. 11) is INCOMPARABLE with PRED on\n"
      "  fixed schedules (the Theorem 1 proof argues modally over unknown\n"
      "  completions) — see EXPERIMENTS.md E9; the scheduler enforces the\n"
      "  Def. 11 orderings operationally.\n";
  return 0;
}
