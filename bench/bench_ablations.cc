// E16 — guard ablations: disable each PRED-scheduler mechanism in turn and
// measure what breaks on a conflict- and failure-heavy workload:
//  * lemma1    — deferred commit of non-compensatables (Lemma 1)
//  * crossing  — future-aware crossing prevention
//  * compgate  — Lemma 2 compensation gate + cascading aborts
//  * preorder  — §3.5 completion pre-ordering (virtual edges)
// Reported: PRED violation of the emitted history, store-consistency,
// inconsistent (irrecoverable) cascades, throughput.

#include <iomanip>
#include <iostream>
#include <map>

#include "common/str_util.h"
#include "core/pred.h"
#include "core/scheduler.h"
#include "workload/process_generator.h"

using namespace tpm;

namespace {

struct AblationCase {
  const char* name;
  PredAblation ablation;
};

struct Row {
  int64_t steps = 0;
  int64_t commits = 0;
  int64_t aborts = 0;
  int64_t irrecoverable = 0;
  int64_t forced = 0;
  bool consistent = false;
  bool pred = false;
  bool run_ok = false;
};

Row RunCase(const PredAblation& ablation, uint64_t seed) {
  SyntheticUniverse universe(3, 4);
  for (const auto& item : universe.items()) {
    for (KvSubsystem* subsystem : universe.subsystems()) {
      if (subsystem->id() == item.subsystem) {
        subsystem->SetFailureProbability(item.add, 0.12);
      }
    }
  }
  ProcessShape shape;
  shape.items_per_process = 3;
  shape.nested_probability = 0.4;
  ProcessGenerator generator(&universe, shape, seed);
  generator.RestrictItems(0, 6);

  SchedulerOptions options;
  options.protocol = AdmissionProtocol::kPred;
  options.ablation = ablation;
  TransactionalProcessScheduler scheduler(options);
  (void)universe.RegisterAll(&scheduler);
  for (int i = 0; i < 16; ++i) {
    auto def = generator.Generate(StrCat("a", i));
    if (def.ok()) (void)scheduler.Submit(*def);
  }
  Row row;
  Status run = scheduler.Run();
  row.run_ok = run.ok();
  row.steps = scheduler.stats().steps;
  row.commits = scheduler.stats().processes_committed;
  row.aborts = scheduler.stats().processes_aborted;
  row.irrecoverable = scheduler.stats().irrecoverable_cascades;
  row.forced = scheduler.stats().forced_executions;
  row.consistent =
      universe.TotalValue() == scheduler.stats().activities_committed -
                                   scheduler.stats().compensations;
  auto pred = IsPRED(scheduler.history(), scheduler.conflict_spec());
  row.pred = pred.ok() && *pred;
  return row;
}

}  // namespace

int main() {
  PredAblation all_on;
  PredAblation no_lemma1 = all_on;
  no_lemma1.lemma1_deferral = false;
  PredAblation no_crossing = all_on;
  no_crossing.crossing_prevention = false;
  PredAblation no_compgate = all_on;
  no_compgate.compensation_gate = false;
  PredAblation no_preorder = all_on;
  no_preorder.completion_preorder = false;
  PredAblation none;
  none.lemma1_deferral = false;
  none.crossing_prevention = false;
  none.compensation_gate = false;
  none.completion_preorder = false;

  const AblationCase cases[] = {
      {"full", all_on},          {"-lemma1", no_lemma1},
      {"-crossing", no_crossing}, {"-compgate", no_compgate},
      {"-preorder", no_preorder}, {"-all", none},
  };

  std::cout << "E16 | PRED scheduler guard ablations "
               "(16 processes, 12% failures, hot pool of 6)\n";
  std::cout << "  variant     runs  steps  commits  aborts  PRED-ok  "
               "consistent  irrecov  forced\n";
  constexpr int kSeeds = 5;
  for (const AblationCase& c : cases) {
    int64_t steps = 0, commits = 0, aborts = 0, irrecoverable = 0, forced = 0;
    int pred_ok = 0, consistent = 0, run_ok = 0;
    for (int s = 0; s < kSeeds; ++s) {
      Row row = RunCase(c.ablation, 100 + s);
      steps += row.steps;
      commits += row.commits;
      aborts += row.aborts;
      irrecoverable += row.irrecoverable;
      forced += row.forced;
      pred_ok += row.pred;
      consistent += row.consistent;
      run_ok += row.run_ok;
    }
    std::cout << "  " << std::left << std::setw(11) << c.name << std::right
              << std::setw(5) << run_ok << "/" << kSeeds << std::setw(6)
              << steps / kSeeds << std::setw(9) << commits << std::setw(8)
              << aborts << std::setw(7) << pred_ok << "/" << kSeeds
              << std::setw(9) << consistent << "/" << kSeeds << std::setw(9)
              << irrecoverable << std::setw(8) << forced << "\n";
  }
  std::cout <<
      "\n  expected: only the full guard set keeps every run PRED;\n"
      "  dropping lemma1 or the compensation gate reproduces the\n"
      "  irrecoverable anomalies; dropping crossing prevention trades\n"
      "  correctness-preserving deferrals for abort storms.\n";
  return 0;
}
