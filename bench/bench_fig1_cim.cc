// E1 — Figure 1 / §2: the CIM scenario. Reproduces the paper's claims:
//   * classical concurrency control alone admits the irrecoverable
//     interleaving (production pivot before the construction test), while
//   * the PRED scheduler defers the production activity until the
//     construction process commits, keeping every failure recoverable.
// Also reports the concurrency each protocol achieves.

#include <iomanip>
#include <iostream>
#include <memory>

#include "core/baseline_schedulers.h"
#include "core/pred.h"
#include "workload/cim_workload.h"

using namespace tpm;

namespace {

struct Row {
  const char* protocol;
  bool test_fails;
  int64_t steps = 0;
  int64_t deferrals = 0;
  bool consistent = false;
  bool pred = false;
  int64_t irrecoverable = 0;
  int64_t parts = 0;
  int64_t bom = 0;
};

Row Run(const char* name,
        std::unique_ptr<TransactionalProcessScheduler> scheduler,
        bool test_fails) {
  CimWorld world;
  if (test_fails) world.ScheduleTestFailure();
  (void)world.RegisterAll(scheduler.get());
  (void)scheduler->Submit(world.construction());
  for (int i = 0; i < 3; ++i) (void)scheduler->Step();
  (void)scheduler->Submit(world.production());
  Status run = scheduler->Run();
  Row row;
  row.protocol = name;
  row.test_fails = test_fails;
  if (!run.ok()) {
    std::cerr << "run error: " << run << "\n";
    return row;
  }
  row.steps = scheduler->stats().steps;
  row.deferrals = scheduler->stats().deferrals;
  row.consistent = world.Consistent();
  auto pred = IsPRED(scheduler->history(), scheduler->conflict_spec());
  row.pred = pred.ok() && *pred;
  row.irrecoverable = scheduler->stats().irrecoverable_cascades;
  row.parts = world.parts_produced();
  row.bom = world.bom_entries();
  return row;
}

void Print(const Row& r) {
  std::cout << "  " << std::left << std::setw(8) << r.protocol << std::right
            << std::setw(6) << (r.test_fails ? "fail" : "ok") << std::setw(7)
            << r.steps << std::setw(10) << r.deferrals << std::setw(6)
            << r.bom << std::setw(7) << r.parts << std::setw(12)
            << (r.consistent ? "yes" : "NO") << std::setw(6)
            << (r.pred ? "yes" : "no") << std::setw(14) << r.irrecoverable
            << "\n";
}

}  // namespace

int main() {
  std::cout << "E1 | Figure 1 / §2.2 — CIM construction || production\n";
  std::cout << "  proto    test  steps  deferral   bom  parts  consistent"
               "  PRED  irrecoverable\n";
  Print(Run("pred", MakePredScheduler(), false));
  Print(Run("pred", MakePredScheduler(), true));
  Print(Run("pred2pc", MakePredScheduler(DeferMode::kPrepared2PC), false));
  Print(Run("pred2pc", MakePredScheduler(DeferMode::kPrepared2PC), true));
  Print(Run("unsafe", MakeUnsafeScheduler(), false));
  Print(Run("unsafe", MakeUnsafeScheduler(), true));
  Print(Run("2pl", MakeLockingScheduler(), false));
  Print(Run("2pl", MakeLockingScheduler(), true));
  Print(Run("serial", MakeSerialScheduler(), false));
  Print(Run("serial", MakeSerialScheduler(), true));

  std::cout <<
      "\n  paper claim: only a scheduler deferring the non-compensatable\n"
      "  production activity behind the construction commit stays\n"
      "  consistent when the test fails; classical CC (unsafe) builds\n"
      "  parts for a product whose BOM was invalidated.\n";
  return 0;
}
