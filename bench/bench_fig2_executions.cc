// E2/E3 — Figure 2/3 and Example 2: the process model. Enumerates the
// valid executions of P1 (the paper lists four) and prints the completion
// C(P1) in each execution state, plus enumeration cost as the process
// grows.

#include <chrono>
#include <iostream>

#include "core/completion.h"
#include "core/figures.h"
#include "core/flex_structure.h"

using namespace tpm;

int main() {
  figures::PaperWorld world;

  std::cout << "E2 | Figure 2/3 — valid executions of P1\n";
  auto executions = EnumerateValidExecutions(world.p1);
  if (!executions.ok()) {
    std::cerr << "enumeration failed: " << executions.status() << "\n";
    return 1;
  }
  std::cout << "  paper: 4 valid executions; measured: "
            << executions->size() << "\n";
  for (const auto& exec : *executions) {
    std::cout << "    " << exec.ToString() << "\n";
  }

  std::cout << "\nE3 | Example 2 — completions of P1\n";
  {
    ProcessExecutionState state(ProcessId(1), &world.p1);
    (void)state.RecordCommit(ActivityId(1));
    auto completion = ComputeCompletion(state);
    std::cout << "  after a11 committed (B-REC):  paper {a11^-1}, measured "
              << completion->ToString() << "\n";
    (void)state.RecordCommit(ActivityId(2));
    (void)state.RecordCommit(ActivityId(3));
    completion = ComputeCompletion(state);
    std::cout << "  after a13 committed (F-REC):  paper {a13^-1 << a15 << "
                 "a16}, measured "
              << completion->ToString() << "\n";
  }

  std::cout << "\n  enumeration cost vs process size (chain of k nested "
               "stages):\n";
  for (int k = 1; k <= 8; ++k) {
    ProcessDef def("scale");
    ActivityId prev;
    // k stages: c p (with all-retriable alternative), last stage plain.
    for (int i = 0; i < k; ++i) {
      ActivityId c = def.AddActivity("c", ActivityKind::kCompensatable,
                                     ServiceId(i * 10 + 1),
                                     ServiceId(i * 10 + 2));
      ActivityId p = def.AddActivity("p", ActivityKind::kPivot,
                                     ServiceId(i * 10 + 3));
      if (prev.valid()) (void)def.AddEdge(prev, c, /*preference=*/0);
      (void)def.AddEdge(c, p);
      if (i + 1 < k) {
        ActivityId alt = def.AddActivity("alt", ActivityKind::kRetriable,
                                         ServiceId(i * 10 + 4));
        (void)def.AddEdge(p, alt, /*preference=*/1);
      } else {
        ActivityId tail = def.AddActivity("tail", ActivityKind::kRetriable,
                                          ServiceId(i * 10 + 4));
        (void)def.AddEdge(p, tail, /*preference=*/0);
      }
      prev = p;
    }
    if (!def.Validate().ok()) continue;
    if (!ValidateWellFormedFlex(def).ok()) continue;
    auto start = std::chrono::steady_clock::now();
    auto execs = EnumerateValidExecutions(def);
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    std::cout << "    stages=" << k << " activities="
              << def.num_activities()
              << " executions=" << (execs.ok() ? execs->size() : 0)
              << " time=" << us << "us\n";
  }
  return 0;
}
