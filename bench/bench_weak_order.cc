// E11 — §3.6: strong vs weak ordering of conflicting activities within a
// subsystem. Reports makespan for chains and meshes of conflicting local
// transactions, and the cost of retriable re-invocation cascades under the
// weak order.

#include <iomanip>
#include <iostream>

#include "subsystem/weak_order.h"

using namespace tpm;

namespace {

void Table(const char* title, const std::vector<WeakTxSpec>& txs,
           const std::vector<OrderConstraint>& constraints) {
  auto strong = SimulateWeakOrder(txs, constraints, OrderMode::kStrong);
  auto weak = SimulateWeakOrder(txs, constraints, OrderMode::kWeak);
  if (!strong.ok() || !weak.ok()) return;
  const double speedup =
      weak->makespan == 0
          ? 0.0
          : static_cast<double>(strong->makespan) / weak->makespan;
  std::cout << "  " << std::left << std::setw(34) << title << std::right
            << std::setw(8) << strong->makespan << std::setw(8)
            << weak->makespan << std::setw(9) << std::fixed
            << std::setprecision(2) << speedup << std::setw(10)
            << weak->cascade_restarts << "\n";
}

}  // namespace

int main() {
  std::cout << "E11 | §3.6 — strong vs weak order within a subsystem\n";
  std::cout << "  workload                            strong    weak"
               "  speedup  cascades\n";

  // Chains of conflicting transactions of equal length.
  for (int n : {2, 4, 8, 16}) {
    std::vector<WeakTxSpec> txs(n, WeakTxSpec{100, 0, 0});
    std::vector<OrderConstraint> constraints;
    for (int i = 0; i + 1 < n; ++i) {
      constraints.push_back(
          {static_cast<size_t>(i), static_cast<size_t>(i + 1)});
    }
    Table(("chain n=" + std::to_string(n)).c_str(), txs, constraints);
  }

  // Fan: one predecessor, many dependents.
  for (int n : {4, 16}) {
    std::vector<WeakTxSpec> txs(n + 1, WeakTxSpec{100, 0, 0});
    std::vector<OrderConstraint> constraints;
    for (int i = 1; i <= n; ++i) {
      constraints.push_back({0, static_cast<size_t>(i)});
    }
    Table(("fan 1->" + std::to_string(n)).c_str(), txs, constraints);
  }

  // Retriable predecessor aborting k times: weak order pays cascades.
  for (int aborts : {0, 1, 2, 4}) {
    std::vector<WeakTxSpec> txs = {
        WeakTxSpec{100, aborts, 50},  // predecessor aborts mid-run
        WeakTxSpec{100, 0, 0},        // dependent restarts with it
        WeakTxSpec{100, 0, 0},
    };
    std::vector<OrderConstraint> constraints = {{0, 1}, {1, 2}};
    Table(("chain3, predecessor aborts " + std::to_string(aborts) + "x")
              .c_str(),
          txs, constraints);
  }

  std::cout <<
      "\n  expected shape: weak order turns chain makespan from n*d into\n"
      "  ~d (commit-order serializability does the sequencing); cascades\n"
      "  erode but do not eliminate the gain (§3.6 re-invocation rule).\n";
  return 0;
}
