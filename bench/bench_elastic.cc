// E25 — elastic runtime: what load-aware migration buys under skew.
//
// The workload is deliberately unfair: 8 independent tenants across 4
// shards, with 90% of the submission stream aimed at a 2-tenant hot set
// that is CO-LOCATED on one shard (the adversarial placement a static
// partition cannot escape — the partitioner balances service counts, not
// traffic). The same deterministic submission stream then runs twice:
//
//   static  — elastic layer off entirely (the exact pre-elastic hot
//             path: no probe, no monitor, no engine). The hot shard
//             serializes ~90% of the work while three shards idle.
//   elastic — adaptive controller on. The load monitor sees the sustained
//             imbalance, the policy picks the second-hottest component on
//             the hot shard, and the engine quiesce-and-migrates it to a
//             cold shard mid-stream — after which the hot traffic runs
//             two shards wide.
//
// Headline: elastic commit throughput >= 1.4x static at 4 shards. The
// mechanism needs real parallelism to show (4 shard workers timesharing
// one core gain nothing from spreading load), so the exit code enforces
// the headline only when hardware_concurrency >= 4; below that the run
// still prints and records the ratio, annotated as unenforced.
//
// `--json <path>` writes BENCH_elastic.json. The tenant draw sequence and
// process shapes are deterministic per seed; wall-clock varies run to run.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/json_writer.h"
#include "common/str_util.h"
#include "runtime/sharded_runtime.h"
#include "workload/sharded_world.h"
#include "workload/skewed_traffic.h"

using namespace tpm;

namespace {

constexpr uint64_t kSeed = 2025;
constexpr int kTenants = 8;
constexpr int kShards = 4;
constexpr int kRepetitions = 2;  // best-of to damp scheduler noise
constexpr double kHotFraction = 0.9;
constexpr int kHotTenants = 2;
constexpr double kRequiredSpeedup = 1.4;

// Closed-loop: submissions go in waves of kWave with a Drain barrier
// between — flooding thousands of mutually conflicting processes into two
// hot components open-loop just measures the scheduler's abort churn, not
// placement. Overridable for CI smoke runs (--draws N, --wave N).
int g_draws = 9600;
int g_wave = 12;

/// Every tenant gets the full (shape x round) service set up front, so
/// all conflict components have EQUAL service counts and the greedy
/// partitioner's placement is independent of the skewed draw sequence.
/// The returned defs double as per-tenant handles for router queries.
std::vector<const ProcessDef*> MakeWarmupDefs(ShardedWorld* world) {
  std::vector<const ProcessDef*> first_of_tenant;
  for (int t = 0; t < kTenants; ++t) {
    for (int round = 0; round < 4; ++round) {
      const ProcessDef* order = world->MakeOrderProcess(
          t, StrCat("warm_o_t", t, "_", round), round);
      world->MakeConsumeProcess(t, StrCat("warm_c_t", t, "_", round), round);
      world->MakeRefillProcess(t, StrCat("warm_r_t", t, "_", round), round);
      if (round == 0) first_of_tenant.push_back(order);
    }
  }
  return first_of_tenant;
}

ShardedWorldOptions WorldOptions() {
  return ShardedWorldOptions{.seed = kSeed,
                             .num_tenants = kTenants,
                             // Deep enough that the skewed stream never
                             // aborts on an empty counter or queue — the
                             // two runs must commit identical work.
                             .escrow_initial = 1'000'000,
                             .queue_initial_tokens = 1'000'000};
}

/// Finds the tenant (> 0) whose conflict component shares tenant 0's
/// shard under the production partition, by running a throwaway runtime
/// over an identically-shaped world. Returns -1 on failure.
int FindCoLocatedPartner(std::string* error) {
  ShardedWorld world(WorldOptions());
  std::vector<const ProcessDef*> handles = MakeWarmupDefs(&world);
  ShardedRuntimeOptions options;
  options.num_shards = kShards;
  options.mode = TickMode::kFreeRunning;
  options.log_mode = ShardLogMode::kMemory;
  ShardedRuntime runtime(options);
  Status status = world.RegisterAll(&runtime);
  if (status.ok()) status = runtime.Start();
  if (!status.ok()) {
    *error = StrCat("probe: ", status.ToString());
    return -1;
  }
  const int shard0 = runtime.router().ShardOfComponent(
      runtime.router().ComponentOfDef(*handles[0]));
  int partner = -1;
  for (int t = 1; t < kTenants && partner < 0; ++t) {
    const int shard = runtime.router().ShardOfComponent(
        runtime.router().ComponentOfDef(*handles[static_cast<size_t>(t)]));
    if (shard == shard0) partner = t;
  }
  (void)runtime.Stop();
  if (partner < 0) *error = "probe: no tenant co-located with tenant 0";
  return partner;
}

struct RunReport {
  bool elastic = false;
  int64_t submitted = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
  int64_t migrations = 0;
  double best_seconds = 0.0;
  double throughput = 0.0;
  bool ok = true;
  std::string error;
};

/// One measured configuration, best of kRepetitions: the same skewed
/// stream (hot set remapped onto the co-located pair {0, partner}) runs
/// to quiescence with the elastic layer on or off.
RunReport RunOnce(bool elastic, int partner) {
  RunReport report;
  report.elastic = elastic;
  double best = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    ShardedWorld world(WorldOptions());
    std::vector<const ProcessDef*> handles = MakeWarmupDefs(&world);

    // The chooser's initial hot set is {0, 1}; swapping tenants 1 and
    // `partner` aims it at the co-located pair instead.
    SkewedTraffic traffic(SkewedTrafficOptions{.seed = kSeed,
                                               .num_tenants = kTenants,
                                               .hot_fraction = kHotFraction,
                                               .hot_tenants = kHotTenants,
                                               .phase_length = 0});
    std::vector<const ProcessDef*> defs;
    defs.reserve(static_cast<size_t>(g_draws));
    for (int i = 0; i < g_draws; ++i) {
      int t = traffic.NextTenant();
      if (t == 1) {
        t = partner;
      } else if (t == partner) {
        t = 1;
      }
      const int round = (i / 3) % 4;
      const std::string name = StrCat("p", i, "_t", t);
      switch (i % 3) {
        case 0:
          defs.push_back(world.MakeOrderProcess(t, name, round));
          break;
        case 1:
          defs.push_back(world.MakeConsumeProcess(t, name, round));
          break;
        default:
          defs.push_back(world.MakeRefillProcess(t, name, round));
          break;
      }
    }

    ShardedRuntimeOptions options;
    options.num_shards = kShards;
    options.mode = TickMode::kFreeRunning;
    options.log_mode = ShardLogMode::kMemory;
    options.queue_capacity = static_cast<size_t>(g_draws);
    if (elastic) {
      options.elastic.enabled = true;
      // The offline PRED + Proc-REC re-check of the target's merged
      // history costs O(history) serializability replays per migration
      // (see bench_replica: the same check dominates verified recovery
      // by ~3 orders of magnitude). This bench measures placement, so it
      // runs migrations the way production would: unverified.
      options.verify_recovery = false;
      options.elastic.policy.enabled = true;
      options.elastic.policy.imbalance_ratio = 1.5;
      options.elastic.policy.sustain_polls = 2;
      options.elastic.policy.cooldown_polls = 8;
      options.elastic.policy.poll_interval_ms = 2;
      options.elastic.policy.park_idle_shards = false;
    }
    ShardedRuntime runtime(options);
    Status status = world.RegisterAll(&runtime);
    if (status.ok()) status = runtime.Start();
    if (status.ok()) {
      // The placement the whole experiment leans on: the hot pair really
      // is co-located at start.
      const int shard_a = runtime.router().ShardOfComponent(
          runtime.router().ComponentOfDef(*handles[0]));
      const int shard_b = runtime.router().ShardOfComponent(
          runtime.router().ComponentOfDef(
              *handles[static_cast<size_t>(partner)]));
      if (shard_a != shard_b) {
        status = Status::Internal(
            StrCat("hot pair not co-located: tenant 0 on shard ", shard_a,
                   ", tenant ", partner, " on shard ", shard_b));
      }
    }
    const auto begin = std::chrono::steady_clock::now();
    for (size_t next = 0; status.ok() && next < defs.size();) {
      const size_t wave_end =
          std::min(next + static_cast<size_t>(g_wave), defs.size());
      for (; next < wave_end; ++next) {
        auto ticket = runtime.Submit(defs[next]);
        if (!ticket.ok()) {
          status = ticket.status();
          break;
        }
      }
      if (status.ok()) status = runtime.Drain();
    }
    const auto end = std::chrono::steady_clock::now();
    RuntimeStats stats = runtime.Stats();
    (void)runtime.Stop();
    if (!status.ok()) {
      report.ok = false;
      report.error = status.ToString();
      return report;
    }
    if (!world.CheckAdtInvariants().ok()) {
      report.ok = false;
      report.error = "ADT invariants violated after drain";
      return report;
    }

    const double seconds =
        std::chrono::duration<double>(end - begin).count();
    if (rep == 0 || seconds < best) best = seconds;
    report.submitted = g_draws;
    report.committed = stats.merged.processes_committed;
    report.aborted = stats.merged.processes_aborted;
    report.migrations = std::max(report.migrations,
                                 stats.migrations_completed);
  }
  report.best_seconds = best;
  report.throughput = best > 0 ? report.committed / best : 0.0;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--draws" && i + 1 < argc) {
      g_draws = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--wave" && i + 1 < argc) {
      g_wave = std::max(1, std::atoi(argv[++i]));
    }
  }

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const bool enforced = hw >= kShards;
  std::cout << "E25 elastic runtime under skew (" << kShards << " shards, "
            << kTenants << " tenants, " << g_draws << " submissions, "
            << static_cast<int>(kHotFraction * 100) << "% of traffic on a "
            << kHotTenants << "-tenant co-located hot set, best of "
            << kRepetitions << " reps, hw threads = " << hw << ")\n";

  std::string probe_error;
  const int partner = FindCoLocatedPartner(&probe_error);
  bool all_ok = partner >= 0;
  if (!all_ok) std::cout << "  [FAILED: " << probe_error << "]\n";

  RunReport runs[2];
  if (all_ok) {
    std::cout << "\n  config    committed/submitted   aborted   migrations"
                 "   seconds   commit/s\n";
    for (int i = 0; i < 2; ++i) {
      const bool elastic = i == 1;
      runs[i] = RunOnce(elastic, partner);
      all_ok = all_ok && runs[i].ok;
      std::cout << "  " << (elastic ? "elastic" : "static ")
                << std::setw(12) << runs[i].committed << "/"
                << runs[i].submitted << std::setw(10) << runs[i].aborted
                << std::setw(13) << runs[i].migrations
                << std::fixed << std::setprecision(4) << std::setw(10)
                << runs[i].best_seconds << std::setprecision(0)
                << std::setw(11) << runs[i].throughput
                << (runs[i].ok ? ""
                               : StrCat("  [FAILED: ", runs[i].error, "]"))
                << "\n";
    }
  }

  const double speedup =
      (all_ok && runs[0].throughput > 0)
          ? runs[1].throughput / runs[0].throughput
          : 0.0;
  const bool headline_pass =
      all_ok &&
      (!enforced || (speedup >= kRequiredSpeedup && runs[1].migrations >= 1));
  if (all_ok) {
    std::cout << "\n  headline: elastic vs static commit throughput: "
              << std::fixed << std::setprecision(2) << speedup
              << "x (require >= " << kRequiredSpeedup << "x, "
              << (enforced
                      ? "enforced"
                      : StrCat("UNENFORCED: ", hw, " hw threads < ",
                               kShards, " shards — spreading load over "
                               "timeshared workers proves nothing"))
              << ") " << (headline_pass ? "[OK]" : "[FAIL]") << "\n";
    std::cout <<
        "\n  expected shape: static serializes ~90% of the stream on the\n"
        "  hot shard while three shards idle; the controller's one\n"
        "  migration splits the hot pair across two shards, so the bound\n"
        "  drops from ~0.9 of the work on one worker to ~0.45 on each of\n"
        "  two — an ideal ~2x, of which >= 1.4x must survive detection\n"
        "  latency and the quiesce window.\n";
  }

  const bool pass = all_ok && headline_pass;

  std::ostringstream json;
  bench::JsonWriter writer(json);
  writer.BeginObject();
  writer.Field("benchmark",
               StrCat("bench_elastic E25 elastic runtime under skew (",
                      kShards, " shards, ", kTenants, " tenants, ", g_draws,
                      " submissions)"));
  writer.Field(
      "methodology",
      StrCat("identical deterministic skewed stream (90% of draws on a "
             "2-tenant hot set co-located on one shard by construction) "
             "submitted closed-loop in waves of ", g_wave,
             " to quiescence, best of ", kRepetitions,
             "; static = elastic layer off entirely (pre-elastic hot "
             "path), elastic = adaptive controller (imbalance 1.5x "
             "sustained 2 polls at 2 ms, unverified imports) migrating "
             "components mid-stream; throughput = committed / best "
             "seconds"));
  writer.Field("hardware_threads", hw);
  writer.Field("co_located_partner_tenant", partner);
  writer.BeginArray("runs");
  for (int i = 0; i < 2; ++i) {
    const RunReport& report = runs[i];
    writer.BeginObject();
    writer.Field("config", report.elastic ? "elastic" : "static");
    writer.Field("submitted", report.submitted);
    writer.Field("committed", report.committed);
    writer.Field("aborted", report.aborted);
    writer.Field("migrations_completed", report.migrations);
    writer.Field("best_seconds", report.best_seconds, 6);
    writer.Field("commit_throughput_per_s", report.throughput, 1);
    writer.Field("ok", report.ok);
    if (!report.ok) writer.Field("error", report.error);
    writer.EndObject();
  }
  writer.EndArray();
  writer.BeginObject("headline");
  writer.Field("elastic_speedup", speedup, 3);
  writer.Field("required_speedup", kRequiredSpeedup, 2);
  writer.Field("enforced", enforced);
  writer.Field("pass", pass);
  writer.EndObject();
  writer.EndObject();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
    std::cout << "\n  wrote " << json_path << "\n";
  }
  return pass ? 0 : 1;
}
