// E12 — online scheduler performance (the WISE-style scheduler of §4):
// throughput (processes and activities per scheduling pass), abort rate
// and deferral pressure as functions of the conflict rate, for the PRED
// scheduler (both defer modes, +/- quasi-commit) vs serial, strict 2PL and
// the unsafe baseline. Also wall-clock microbenchmarks.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/json_writer.h"
#include "common/str_util.h"
#include "core/baseline_schedulers.h"
#include "workload/process_generator.h"

using namespace tpm;

namespace {

struct Config {
  const char* name;
  AdmissionProtocol protocol;
  DeferMode defer = DeferMode::kDelayExecution;
  bool quasi = false;
};

constexpr int kProcesses = 24;

SchedulerStats RunWorkload(const Config& config, int num_processes,
                           int pool_size, double failure_rate, uint64_t seed) {
  SyntheticUniverse universe(3, 6);
  for (const auto& item : universe.items()) {
    for (KvSubsystem* subsystem : universe.subsystems()) {
      if (subsystem->id() == item.subsystem) {
        subsystem->SetFailureProbability(item.add, failure_rate);
      }
    }
  }
  ProcessShape shape;
  shape.items_per_process = 3;  // fixed per-process footprint
  shape.nested_probability = 0.3;
  ProcessGenerator generator(&universe, shape, seed);
  // Contention knob: the smaller the item pool all processes draw from,
  // the more their footprints overlap.
  generator.RestrictItems(0, static_cast<size_t>(pool_size));
  SchedulerOptions options;
  options.protocol = config.protocol;
  options.defer_mode = config.defer;
  options.quasi_commit_optimization = config.quasi;
  TransactionalProcessScheduler scheduler(options);
  (void)universe.RegisterAll(&scheduler);
  // Aborted processes are resubmitted for a few rounds — measuring the
  // cost of optimistic aborts against the blocking protocols.
  std::map<ProcessId, const ProcessDef*> in_flight;
  for (int i = 0; i < num_processes; ++i) {
    auto def = generator.Generate(StrCat("p", i));
    if (!def.ok()) continue;
    auto pid = scheduler.Submit(*def);
    if (pid.ok()) in_flight[*pid] = *def;
  }
  for (int round = 0; round < 6 && !in_flight.empty(); ++round) {
    Status run = scheduler.Run();
    if (!run.ok()) {
      std::cerr << config.name << ": " << run << "\n";
      break;
    }
    std::map<ProcessId, const ProcessDef*> next;
    for (const auto& [pid, def] : in_flight) {
      if (scheduler.OutcomeOf(pid) != ProcessOutcome::kAborted) continue;
      if (round == 5) continue;
      auto retry = scheduler.Submit(def);
      if (retry.ok()) next[*retry] = def;
    }
    in_flight = std::move(next);
  }
  return scheduler.stats();
}

void PrintSweep() {
  const Config configs[] = {
      {"pred", AdmissionProtocol::kPred},
      {"pred+2pc", AdmissionProtocol::kPred, DeferMode::kPrepared2PC},
      {"pred+qc", AdmissionProtocol::kPred, DeferMode::kDelayExecution, true},
      {"2pl", AdmissionProtocol::kTwoPhaseLocking},
      {"serial", AdmissionProtocol::kSerial},
      {"unsafe", AdmissionProtocol::kUnsafe},
  };
  std::cout << "E12 | scheduler throughput vs contention ("
            << kProcesses << " processes, 5% failures)\n";
  for (int hot : {18, 9, 5, 3}) {
    std::cout << "\n  contention: item pool = " << hot
              << (hot == 18 ? " (low)" : hot == 3 ? " (extreme)" : "")
              << "\n";
    std::cout << "  protocol     steps  act/step  commits  aborts  "
                 "deferrals  victims\n";
    for (const Config& config : configs) {
      SchedulerStats stats = RunWorkload(config, kProcesses, hot, 0.05, 1234);
      const double act_per_step =
          stats.steps == 0
              ? 0
              : static_cast<double>(stats.activities_committed) / stats.steps;
      std::cout << "  " << std::left << std::setw(11) << config.name
                << std::right << std::setw(7) << stats.steps << std::setw(10)
                << std::fixed << std::setprecision(2) << act_per_step
                << std::setw(9) << stats.processes_committed << std::setw(8)
                << stats.processes_aborted << std::setw(11) << stats.deferrals
                << std::setw(9) << stats.deadlock_victims << "\n";
    }
  }
  std::cout <<
      "\n  expected shape: pred > 2pl > serial in activities per pass;\n"
      "  unsafe is fastest but unsound under failures (see E1);\n"
      "  quasi-commit and 2PC-deferral reduce deferral stalls.\n\n";
}

// Makespan under a virtual-time cost model: every service takes 4 ticks.
// Failure-free, moderate contention — concurrency shows up directly as
// makespan (the serial baseline approaches the sum of durations).
void PrintMakespan() {
  std::cout << "E12b | makespan with a cost model (12 processes, every "
               "service = 4 ticks)\n";
  std::cout << "  protocol    makespan  commits\n";
  const Config configs[] = {
      {"pred", AdmissionProtocol::kPred},
      {"pred+2pc", AdmissionProtocol::kPred, DeferMode::kPrepared2PC},
      {"2pl", AdmissionProtocol::kTwoPhaseLocking},
      {"serial", AdmissionProtocol::kSerial},
  };
  for (const Config& config : configs) {
    SyntheticUniverse universe(3, 6);
    ProcessShape shape;
    shape.items_per_process = 3;
    ProcessGenerator generator(&universe, shape, 99);
    generator.RestrictItems(0, 12);
    SchedulerOptions options;
    options.protocol = config.protocol;
    options.defer_mode = config.defer;
    for (const auto& item : universe.items()) {
      options.service_durations[item.add] = 4;
      options.service_durations[item.sub] = 4;
    }
    TransactionalProcessScheduler scheduler(options);
    (void)universe.RegisterAll(&scheduler);
    std::map<ProcessId, const ProcessDef*> in_flight;
    for (int i = 0; i < 12; ++i) {
      auto def = generator.Generate(StrCat("m", i));
      if (!def.ok()) continue;
      auto pid = scheduler.Submit(*def);
      if (pid.ok()) in_flight[*pid] = *def;
    }
    bool failed = false;
    for (int round = 0; round < 6 && !in_flight.empty(); ++round) {
      Status run = scheduler.Run();
      if (!run.ok()) {
        std::cerr << config.name << ": " << run << "\n";
        failed = true;
        break;
      }
      std::map<ProcessId, const ProcessDef*> next;
      for (const auto& [pid, def] : in_flight) {
        if (scheduler.OutcomeOf(pid) != ProcessOutcome::kAborted) continue;
        if (round == 5) continue;
        auto retry = scheduler.Submit(def);
        if (retry.ok()) next[*retry] = def;
      }
      in_flight = std::move(next);
    }
    if (failed) continue;
    std::cout << "  " << std::left << std::setw(10) << config.name
              << std::right << std::setw(10)
              << scheduler.stats().virtual_time << std::setw(9)
              << scheduler.stats().processes_committed << "\n";
  }
  std::cout << "\n  expected shape: pred makespan ~ critical path; serial\n"
               "  makespan ~ sum of all activity durations.\n\n";
}

// Congestion control under extreme contention: sweep the concurrency
// limit. Low levels behave like serial (few aborts, long queue); unlimited
// thrashes; the sweet spot sits in between.
void PrintThrottle() {
  std::cout << "E12c | admission throttling at extreme contention "
               "(24 processes, pool of 3)\n";
  std::cout << "  limit      steps  commits  aborts  victims\n";
  for (int limit : {1, 2, 4, 8, 0}) {
    SyntheticUniverse universe(3, 6);
    for (const auto& item : universe.items()) {
      for (KvSubsystem* subsystem : universe.subsystems()) {
        if (subsystem->id() == item.subsystem) {
          subsystem->SetFailureProbability(item.add, 0.05);
        }
      }
    }
    ProcessShape shape;
    shape.items_per_process = 3;
    ProcessGenerator generator(&universe, shape, 1234);
    generator.RestrictItems(0, 3);
    SchedulerOptions options;
    options.protocol = AdmissionProtocol::kPred;
    options.max_concurrent_processes = limit;
    TransactionalProcessScheduler scheduler(options);
    (void)universe.RegisterAll(&scheduler);
    std::map<ProcessId, const ProcessDef*> in_flight;
    for (int i = 0; i < kProcesses; ++i) {
      auto def = generator.Generate(StrCat("c", i));
      if (!def.ok()) continue;
      auto pid = scheduler.Submit(*def);
      if (pid.ok()) in_flight[*pid] = *def;
    }
    bool failed = false;
    for (int round = 0; round < 6 && !in_flight.empty(); ++round) {
      Status run = scheduler.Run();
      if (!run.ok()) {
        std::cerr << "limit " << limit << ": " << run << "\n";
        failed = true;
        break;
      }
      std::map<ProcessId, const ProcessDef*> next;
      for (const auto& [pid, def] : in_flight) {
        if (scheduler.OutcomeOf(pid) != ProcessOutcome::kAborted) continue;
        if (round == 5) continue;
        auto retry = scheduler.Submit(def);
        if (retry.ok()) next[*retry] = def;
      }
      in_flight = std::move(next);
    }
    if (failed) continue;
    std::cout << "  " << std::left << std::setw(9)
              << (limit == 0 ? std::string("unlim") : std::to_string(limit))
              << std::right << std::setw(7) << scheduler.stats().steps
              << std::setw(9) << scheduler.stats().processes_committed
              << std::setw(8) << scheduler.stats().processes_aborted
              << std::setw(9) << scheduler.stats().deadlock_victims << "\n";
  }
  std::cout << "\n  expected shape: throughput degrades monotonically with\n"
               "  the admission level at near-total conflict — the optimum\n"
               "  degenerates to limit 1 (serial), quantifying how hostile\n"
               "  this regime is to optimistic scheduling; at moderate\n"
               "  contention (E12) concurrency wins instead.\n\n";
}

void BM_PredSchedulerLowContention(benchmark::State& state) {
  for (auto _ : state) {
    SchedulerStats stats =
        RunWorkload({"pred", AdmissionProtocol::kPred}, kProcesses, 18, 0.0, 7);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_PredSchedulerLowContention)->Unit(benchmark::kMillisecond);

void BM_PredSchedulerHighContention(benchmark::State& state) {
  for (auto _ : state) {
    SchedulerStats stats =
        RunWorkload({"pred", AdmissionProtocol::kPred}, kProcesses, 3, 0.0, 7);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_PredSchedulerHighContention)->Unit(benchmark::kMillisecond);

void BM_SerialScheduler(benchmark::State& state) {
  for (auto _ : state) {
    SchedulerStats stats = RunWorkload({"serial", AdmissionProtocol::kSerial},
                                       kProcesses, 3, 0.0, 7);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_SerialScheduler)->Unit(benchmark::kMillisecond);

// E12d — the hot-path sweep: 200 processes per protocol, wall-clock timed.
// This is the workload the scheduler-core layering (serialization graph,
// dense conflict indices, admission guard) is measured against; pass
// --json=<path> to record the numbers machine-readably.
struct LargeSweepResult {
  std::string name;
  double ms = 0;
  SchedulerStats stats;
};

std::vector<LargeSweepResult> RunLargeSweep() {
  constexpr int kLargeProcesses = 200;
  const Config configs[] = {
      {"pred", AdmissionProtocol::kPred},
      {"pred+2pc", AdmissionProtocol::kPred, DeferMode::kPrepared2PC},
      {"pred+qc", AdmissionProtocol::kPred, DeferMode::kDelayExecution, true},
      {"2pl", AdmissionProtocol::kTwoPhaseLocking},
      {"serial", AdmissionProtocol::kSerial},
      {"unsafe", AdmissionProtocol::kUnsafe},
  };
  std::vector<LargeSweepResult> results;
  std::cout << "E12d | large sweep wall clock (" << kLargeProcesses
            << " processes, pool of 18, no failures)\n";
  std::cout << "  protocol       ms    steps  commits  aborts\n";
  for (const Config& config : configs) {
    auto start = std::chrono::steady_clock::now();
    SchedulerStats stats =
        RunWorkload(config, kLargeProcesses, 18, 0.0, 7);
    auto end = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(end - start)
            .count() /
        1000.0;
    results.push_back(LargeSweepResult{config.name, ms, stats});
    std::cout << "  " << std::left << std::setw(11) << config.name
              << std::right << std::setw(8) << std::fixed
              << std::setprecision(1) << ms << std::setw(9) << stats.steps
              << std::setw(9) << stats.processes_committed << std::setw(8)
              << stats.processes_aborted << "\n";
  }
  double total = 0;
  for (const LargeSweepResult& r : results) total += r.ms;
  std::cout << "  total " << std::fixed << std::setprecision(1) << total
            << " ms\n\n";
  return results;
}

void WriteSweepJson(const std::vector<LargeSweepResult>& results,
                    const std::string& path) {
  std::ofstream out(path);
  bench::JsonWriter writer(out);
  writer.BeginObject();
  writer.Field("benchmark",
               "bench_scheduler_throughput E12d (200 processes, pool 18)");
  writer.BeginObject("configs");
  double total = 0;
  for (const LargeSweepResult& r : results) {
    total += r.ms;
    writer.BeginObject(r.name);
    writer.Field("ms", r.ms);
    writer.Field("steps", r.stats.steps);
    writer.Field("commits", r.stats.processes_committed);
    writer.Field("aborts", r.stats.processes_aborted);
    writer.EndObject();
  }
  writer.EndObject();
  writer.Field("total_ms", total);
  writer.EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  if (!json_path.empty()) {
    // JSON mode: only the timed large sweep (warm-up run first).
    (void)RunLargeSweep();
    WriteSweepJson(RunLargeSweep(), json_path);
    return 0;
  }
  PrintSweep();
  PrintMakespan();
  PrintThrottle();
  (void)RunLargeSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
