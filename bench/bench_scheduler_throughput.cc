// E12 — online scheduler performance (the WISE-style scheduler of §4):
// throughput (processes and activities per scheduling pass), abort rate
// and deferral pressure as functions of the conflict rate, for the PRED
// scheduler (both defer modes, +/- quasi-commit) vs serial, strict 2PL and
// the unsafe baseline. Also wall-clock microbenchmarks.

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>
#include <memory>

#include "common/str_util.h"
#include "core/baseline_schedulers.h"
#include "workload/process_generator.h"

using namespace tpm;

namespace {

struct Config {
  const char* name;
  AdmissionProtocol protocol;
  DeferMode defer = DeferMode::kDelayExecution;
  bool quasi = false;
};

constexpr int kProcesses = 24;

SchedulerStats RunWorkload(const Config& config, int pool_size,
                           double failure_rate, uint64_t seed) {
  SyntheticUniverse universe(3, 6);
  for (const auto& item : universe.items()) {
    for (KvSubsystem* subsystem : universe.subsystems()) {
      if (subsystem->id() == item.subsystem) {
        subsystem->SetFailureProbability(item.add, failure_rate);
      }
    }
  }
  ProcessShape shape;
  shape.items_per_process = 3;  // fixed per-process footprint
  shape.nested_probability = 0.3;
  ProcessGenerator generator(&universe, shape, seed);
  // Contention knob: the smaller the item pool all processes draw from,
  // the more their footprints overlap.
  generator.RestrictItems(0, static_cast<size_t>(pool_size));
  SchedulerOptions options;
  options.protocol = config.protocol;
  options.defer_mode = config.defer;
  options.quasi_commit_optimization = config.quasi;
  TransactionalProcessScheduler scheduler(options);
  (void)universe.RegisterAll(&scheduler);
  // Aborted processes are resubmitted for a few rounds — measuring the
  // cost of optimistic aborts against the blocking protocols.
  std::map<ProcessId, const ProcessDef*> in_flight;
  for (int i = 0; i < kProcesses; ++i) {
    auto def = generator.Generate(StrCat("p", i));
    if (!def.ok()) continue;
    auto pid = scheduler.Submit(*def);
    if (pid.ok()) in_flight[*pid] = *def;
  }
  for (int round = 0; round < 6 && !in_flight.empty(); ++round) {
    Status run = scheduler.Run();
    if (!run.ok()) {
      std::cerr << config.name << ": " << run << "\n";
      break;
    }
    std::map<ProcessId, const ProcessDef*> next;
    for (const auto& [pid, def] : in_flight) {
      if (scheduler.OutcomeOf(pid) != ProcessOutcome::kAborted) continue;
      if (round == 5) continue;
      auto retry = scheduler.Submit(def);
      if (retry.ok()) next[*retry] = def;
    }
    in_flight = std::move(next);
  }
  return scheduler.stats();
}

void PrintSweep() {
  const Config configs[] = {
      {"pred", AdmissionProtocol::kPred},
      {"pred+2pc", AdmissionProtocol::kPred, DeferMode::kPrepared2PC},
      {"pred+qc", AdmissionProtocol::kPred, DeferMode::kDelayExecution, true},
      {"2pl", AdmissionProtocol::kTwoPhaseLocking},
      {"serial", AdmissionProtocol::kSerial},
      {"unsafe", AdmissionProtocol::kUnsafe},
  };
  std::cout << "E12 | scheduler throughput vs contention ("
            << kProcesses << " processes, 5% failures)\n";
  for (int hot : {18, 9, 5, 3}) {
    std::cout << "\n  contention: item pool = " << hot
              << (hot == 18 ? " (low)" : hot == 3 ? " (extreme)" : "")
              << "\n";
    std::cout << "  protocol     steps  act/step  commits  aborts  "
                 "deferrals  victims\n";
    for (const Config& config : configs) {
      SchedulerStats stats = RunWorkload(config, hot, 0.05, 1234);
      const double act_per_step =
          stats.steps == 0
              ? 0
              : static_cast<double>(stats.activities_committed) / stats.steps;
      std::cout << "  " << std::left << std::setw(11) << config.name
                << std::right << std::setw(7) << stats.steps << std::setw(10)
                << std::fixed << std::setprecision(2) << act_per_step
                << std::setw(9) << stats.processes_committed << std::setw(8)
                << stats.processes_aborted << std::setw(11) << stats.deferrals
                << std::setw(9) << stats.deadlock_victims << "\n";
    }
  }
  std::cout <<
      "\n  expected shape: pred > 2pl > serial in activities per pass;\n"
      "  unsafe is fastest but unsound under failures (see E1);\n"
      "  quasi-commit and 2PC-deferral reduce deferral stalls.\n\n";
}

// Makespan under a virtual-time cost model: every service takes 4 ticks.
// Failure-free, moderate contention — concurrency shows up directly as
// makespan (the serial baseline approaches the sum of durations).
void PrintMakespan() {
  std::cout << "E12b | makespan with a cost model (12 processes, every "
               "service = 4 ticks)\n";
  std::cout << "  protocol    makespan  commits\n";
  const Config configs[] = {
      {"pred", AdmissionProtocol::kPred},
      {"pred+2pc", AdmissionProtocol::kPred, DeferMode::kPrepared2PC},
      {"2pl", AdmissionProtocol::kTwoPhaseLocking},
      {"serial", AdmissionProtocol::kSerial},
  };
  for (const Config& config : configs) {
    SyntheticUniverse universe(3, 6);
    ProcessShape shape;
    shape.items_per_process = 3;
    ProcessGenerator generator(&universe, shape, 99);
    generator.RestrictItems(0, 12);
    SchedulerOptions options;
    options.protocol = config.protocol;
    options.defer_mode = config.defer;
    for (const auto& item : universe.items()) {
      options.service_durations[item.add] = 4;
      options.service_durations[item.sub] = 4;
    }
    TransactionalProcessScheduler scheduler(options);
    (void)universe.RegisterAll(&scheduler);
    std::map<ProcessId, const ProcessDef*> in_flight;
    for (int i = 0; i < 12; ++i) {
      auto def = generator.Generate(StrCat("m", i));
      if (!def.ok()) continue;
      auto pid = scheduler.Submit(*def);
      if (pid.ok()) in_flight[*pid] = *def;
    }
    bool failed = false;
    for (int round = 0; round < 6 && !in_flight.empty(); ++round) {
      Status run = scheduler.Run();
      if (!run.ok()) {
        std::cerr << config.name << ": " << run << "\n";
        failed = true;
        break;
      }
      std::map<ProcessId, const ProcessDef*> next;
      for (const auto& [pid, def] : in_flight) {
        if (scheduler.OutcomeOf(pid) != ProcessOutcome::kAborted) continue;
        if (round == 5) continue;
        auto retry = scheduler.Submit(def);
        if (retry.ok()) next[*retry] = def;
      }
      in_flight = std::move(next);
    }
    if (failed) continue;
    std::cout << "  " << std::left << std::setw(10) << config.name
              << std::right << std::setw(10)
              << scheduler.stats().virtual_time << std::setw(9)
              << scheduler.stats().processes_committed << "\n";
  }
  std::cout << "\n  expected shape: pred makespan ~ critical path; serial\n"
               "  makespan ~ sum of all activity durations.\n\n";
}

// Congestion control under extreme contention: sweep the concurrency
// limit. Low levels behave like serial (few aborts, long queue); unlimited
// thrashes; the sweet spot sits in between.
void PrintThrottle() {
  std::cout << "E12c | admission throttling at extreme contention "
               "(24 processes, pool of 3)\n";
  std::cout << "  limit      steps  commits  aborts  victims\n";
  for (int limit : {1, 2, 4, 8, 0}) {
    SyntheticUniverse universe(3, 6);
    for (const auto& item : universe.items()) {
      for (KvSubsystem* subsystem : universe.subsystems()) {
        if (subsystem->id() == item.subsystem) {
          subsystem->SetFailureProbability(item.add, 0.05);
        }
      }
    }
    ProcessShape shape;
    shape.items_per_process = 3;
    ProcessGenerator generator(&universe, shape, 1234);
    generator.RestrictItems(0, 3);
    SchedulerOptions options;
    options.protocol = AdmissionProtocol::kPred;
    options.max_concurrent_processes = limit;
    TransactionalProcessScheduler scheduler(options);
    (void)universe.RegisterAll(&scheduler);
    std::map<ProcessId, const ProcessDef*> in_flight;
    for (int i = 0; i < kProcesses; ++i) {
      auto def = generator.Generate(StrCat("c", i));
      if (!def.ok()) continue;
      auto pid = scheduler.Submit(*def);
      if (pid.ok()) in_flight[*pid] = *def;
    }
    bool failed = false;
    for (int round = 0; round < 6 && !in_flight.empty(); ++round) {
      Status run = scheduler.Run();
      if (!run.ok()) {
        std::cerr << "limit " << limit << ": " << run << "\n";
        failed = true;
        break;
      }
      std::map<ProcessId, const ProcessDef*> next;
      for (const auto& [pid, def] : in_flight) {
        if (scheduler.OutcomeOf(pid) != ProcessOutcome::kAborted) continue;
        if (round == 5) continue;
        auto retry = scheduler.Submit(def);
        if (retry.ok()) next[*retry] = def;
      }
      in_flight = std::move(next);
    }
    if (failed) continue;
    std::cout << "  " << std::left << std::setw(9)
              << (limit == 0 ? std::string("unlim") : std::to_string(limit))
              << std::right << std::setw(7) << scheduler.stats().steps
              << std::setw(9) << scheduler.stats().processes_committed
              << std::setw(8) << scheduler.stats().processes_aborted
              << std::setw(9) << scheduler.stats().deadlock_victims << "\n";
  }
  std::cout << "\n  expected shape: throughput degrades monotonically with\n"
               "  the admission level at near-total conflict — the optimum\n"
               "  degenerates to limit 1 (serial), quantifying how hostile\n"
               "  this regime is to optimistic scheduling; at moderate\n"
               "  contention (E12) concurrency wins instead.\n\n";
}

void BM_PredSchedulerLowContention(benchmark::State& state) {
  for (auto _ : state) {
    SchedulerStats stats =
        RunWorkload({"pred", AdmissionProtocol::kPred}, 18, 0.0, 7);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_PredSchedulerLowContention)->Unit(benchmark::kMillisecond);

void BM_PredSchedulerHighContention(benchmark::State& state) {
  for (auto _ : state) {
    SchedulerStats stats =
        RunWorkload({"pred", AdmissionProtocol::kPred}, 3, 0.0, 7);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_PredSchedulerHighContention)->Unit(benchmark::kMillisecond);

void BM_SerialScheduler(benchmark::State& state) {
  for (auto _ : state) {
    SchedulerStats stats =
        RunWorkload({"serial", AdmissionProtocol::kSerial}, 3, 0.0, 7);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_SerialScheduler)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSweep();
  PrintMakespan();
  PrintThrottle();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
