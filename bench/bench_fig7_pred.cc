// E6/E7 — Figures 7/8, Examples 7-9: prefix-reducibility. Shows the PRED
// execution of Figure 7, the non-PRED S_t2 whose prefix S_t1 is
// irreducible (Figure 8), and the per-prefix diagnosis.

#include <iostream>

#include "core/figures.h"
#include "core/pred.h"

using namespace tpm;

namespace {

void Diagnose(const char* name, const ProcessSchedule& s,
              const ConflictSpec& spec, const char* paper_claim) {
  std::cout << "  " << name << " = " << s.ToString() << "\n"
            << "    paper: " << paper_claim << "\n";
  auto red = IsRED(s, spec);
  auto pred = AnalyzePRED(s, spec);
  if (!red.ok() || !pred.ok()) return;
  std::cout << "    measured: RED=" << (*red ? "yes" : "no")
            << " PRED=" << (pred->prefix_reducible ? "yes" : "no");
  if (!pred->prefix_reducible) {
    std::cout << " (first irreducible prefix: " << pred->violating_prefix
              << " events";
    if (!pred->cycle.empty()) {
      std::cout << ", cycle:";
      for (ProcessId p : pred->cycle) std::cout << " P" << p;
    }
    std::cout << ")";
  }
  std::cout << "\n";
  // Per-prefix reducibility map.
  std::cout << "    prefix RED map: ";
  for (size_t n = 1; n <= s.size(); ++n) {
    auto r = IsRED(s.Prefix(n), spec);
    std::cout << (r.ok() && *r ? "+" : "-");
  }
  std::cout << "  (+ reducible, - irreducible)\n\n";
}

}  // namespace

int main() {
  figures::PaperWorld world;
  std::cout << "E6/E7 | Figures 7/8 — RED vs PRED\n\n";
  Diagnose("S''_t1 (Fig 7)", figures::MakeScheduleDoublePrimeT1(world),
           world.spec, "RED and PRED (Examples 7, 9)");
  Diagnose("S_t2   (Fig 4a)", figures::MakeScheduleSt2(world), world.spec,
           "RED but NOT PRED: prefix S_t1 irreducible (Example 8)");
  Diagnose("S_t1   (Fig 8)", figures::MakeScheduleSt1(world), world.spec,
           "not reducible: cycle a11 << a21 << a11^-1");
  std::cout
      << "  takeaway: RED is not prefix closed (§3.4); dynamic scheduling\n"
         "  must enforce PRED, i.e., check every emitted prefix.\n";
  return 0;
}
