// E5 — Figures 5/6, Examples 5-6: completion of a process schedule and its
// reduction. Prints the completed schedule S̃_t2, the reduction result, and
// microbenchmarks the two-stage pipeline (google-benchmark).

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/completed_schedule.h"
#include "core/figures.h"
#include "core/reduction.h"
#include "core/serializability.h"

using namespace tpm;

namespace {

void PrintClaims() {
  figures::PaperWorld world;
  ProcessSchedule s = figures::MakeScheduleSt2(world);
  std::cout << "E5 | Figures 5/6 — completed schedule and reduction\n";
  std::cout << "  S_t2        = " << s.ToString() << "\n";
  auto completed = CompleteSchedule(s);
  if (!completed.ok()) return;
  std::cout << "  S~_t2       = " << completed->ToString() << "\n"
            << "    paper: adds C(P1)={a13^-1,a15,a16}, C(P2)={a25}; "
               "serializable\n"
            << "    measured serializable: "
            << (IsSerializable(*completed, world.spec) ? "yes" : "NO")
            << "\n";
  auto outcome = AnalyzeRED(s, world.spec);
  if (outcome.ok()) {
    std::cout << "  reduction   : paper removes (a13, a13^-1); RED\n"
              << "    measured RED: " << (outcome->reducible ? "yes" : "NO")
              << ", residual size " << outcome->residual.size()
              << " (a13 cancelled: "
              << ([&] {
                   for (const auto& inst : outcome->residual) {
                     if (inst.process == figures::kP1 &&
                         inst.activity == ActivityId(3)) {
                       return "NO";
                     }
                   }
                   return "yes";
                 }())
              << ")\n\n";
  }
}

void BM_CompleteScheduleSt2(benchmark::State& state) {
  figures::PaperWorld world;
  ProcessSchedule s = figures::MakeScheduleSt2(world);
  for (auto _ : state) {
    auto completed = CompleteSchedule(s);
    benchmark::DoNotOptimize(completed);
  }
}
BENCHMARK(BM_CompleteScheduleSt2);

void BM_ReduceSt2(benchmark::State& state) {
  figures::PaperWorld world;
  ProcessSchedule s = figures::MakeScheduleSt2(world);
  for (auto _ : state) {
    auto outcome = AnalyzeRED(s, world.spec);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ReduceSt2);

void BM_IsSerializableSt2(benchmark::State& state) {
  figures::PaperWorld world;
  ProcessSchedule s = figures::MakeScheduleSt2(world);
  for (auto _ : state) {
    bool serializable = IsSerializable(s, world.spec);
    benchmark::DoNotOptimize(serializable);
  }
}
BENCHMARK(BM_IsSerializableSt2);

}  // namespace

int main(int argc, char** argv) {
  PrintClaims();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
