// E17 — the value of flexible atomicity (§2.1): a process WITH an
// alternative execution path survives failures of its risky pivot that
// force the matched plain process into a full abort. Matched-pair design:
// identical prefixes and the same failure-injected pivot; the flexible
// variant adds only the fallback branch.
//
//   plain_i:  c1 << c2 << risky^p << doc^r
//   flex_i:   c1 << gate^p << { c2 << risky^p << doc^r | fallback^r }
//
// Processes use disjoint data items, so conflicts play no role and the
// sweep isolates failure tolerance.

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "common/str_util.h"
#include "core/scheduler.h"
#include "workload/process_generator.h"

using namespace tpm;

namespace {

struct ShapeReport {
  int64_t commits = 0;
  int64_t aborts = 0;
  int64_t alternatives = 0;
  int64_t compensations = 0;
  int64_t p50_latency = 0;
  int64_t p95_latency = 0;
};

constexpr int kProcesses = 48;

ShapeReport RunShape(bool flexible, double failure_rate, uint64_t seed) {
  // 4 items per process: c1, gate/c2, risky, doc/fallback.
  SyntheticUniverse universe(4, kProcesses);  // 4*48 = 192 items
  std::vector<std::unique_ptr<ProcessDef>> defs;

  for (int i = 0; i < kProcesses; ++i) {
    const auto& item_c1 = universe.items()[i * 4 + 0];
    const auto& item_c2 = universe.items()[i * 4 + 1];
    const auto& item_risky = universe.items()[i * 4 + 2];
    const auto& item_doc = universe.items()[i * 4 + 3];
    // Only the risky pivot fails.
    for (KvSubsystem* subsystem : universe.subsystems()) {
      if (subsystem->id() == item_risky.subsystem) {
        subsystem->SetFailureProbability(item_risky.add, failure_rate);
      }
    }
    auto def = std::make_unique<ProcessDef>(StrCat("w", i));
    if (!flexible) {
      ActivityId c1 = def->AddActivity("c1", ActivityKind::kCompensatable,
                                       item_c1.add, item_c1.sub);
      ActivityId c2 = def->AddActivity("c2", ActivityKind::kCompensatable,
                                       item_c2.add, item_c2.sub);
      ActivityId risky = def->AddActivity("risky", ActivityKind::kPivot,
                                          item_risky.add);
      ActivityId doc = def->AddActivity("doc", ActivityKind::kRetriable,
                                        item_doc.add);
      (void)def->AddEdge(c1, c2);
      (void)def->AddEdge(c2, risky);
      (void)def->AddEdge(risky, doc);
    } else {
      ActivityId c1 = def->AddActivity("c1", ActivityKind::kCompensatable,
                                       item_c1.add, item_c1.sub);
      ActivityId gate =
          def->AddActivity("gate", ActivityKind::kPivot, item_c2.add);
      ActivityId c2 = def->AddActivity("c2", ActivityKind::kCompensatable,
                                       item_c2.add, item_c2.sub);
      ActivityId risky = def->AddActivity("risky", ActivityKind::kPivot,
                                          item_risky.add);
      ActivityId doc = def->AddActivity("doc", ActivityKind::kRetriable,
                                        item_doc.add);
      ActivityId fallback = def->AddActivity(
          "fallback", ActivityKind::kRetriable, item_doc.add);
      (void)def->AddEdge(c1, gate);
      (void)def->AddEdge(gate, c2, /*preference=*/0);
      (void)def->AddEdge(c2, risky);
      (void)def->AddEdge(risky, doc);
      (void)def->AddEdge(gate, fallback, /*preference=*/1);
    }
    if (!def->Validate().ok()) continue;
    defs.push_back(std::move(def));
  }

  TransactionalProcessScheduler scheduler;
  (void)universe.RegisterAll(&scheduler);
  for (const auto& def : defs) {
    (void)scheduler.Submit(def.get(), static_cast<int64_t>(seed % 7 + 1));
  }
  ShapeReport report;
  Status run = scheduler.Run();
  if (!run.ok()) {
    std::cerr << "run failed: " << run << "\n";
    return report;
  }
  report.commits = scheduler.stats().processes_committed;
  report.aborts = scheduler.stats().processes_aborted;
  report.alternatives = scheduler.stats().alternatives_taken;
  report.compensations = scheduler.stats().compensations;
  std::vector<int64_t> latencies;
  for (const auto& latency : scheduler.latencies()) {
    latencies.push_back(latency.terminated - latency.submitted);
  }
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    report.p50_latency = latencies[latencies.size() / 2];
    report.p95_latency = latencies[latencies.size() * 95 / 100];
  }
  return report;
}

}  // namespace

int main() {
  std::cout << "E17 | flexible atomicity (§2.1): matched processes +/- an "
               "alternative branch\n"
            << "  (" << kProcesses
            << " disjoint processes; only the risky pivot fails)\n";
  std::cout << "  failure  shape    commits  aborts  alternatives  "
               "compens.  p50  p95\n";
  for (double rate : {0.0, 0.1, 0.25, 0.5, 0.9}) {
    for (bool flexible : {false, true}) {
      ShapeReport r = RunShape(flexible, rate, 777);
      std::cout << "  " << std::fixed << std::setprecision(2) << std::setw(7)
                << rate << "  " << std::left << std::setw(7)
                << (flexible ? "flex" : "plain") << std::right << std::setw(9)
                << r.commits << std::setw(8) << r.aborts << std::setw(14)
                << r.alternatives << std::setw(10) << r.compensations
                << std::setw(5) << r.p50_latency << std::setw(5)
                << r.p95_latency << "\n";
    }
  }
  std::cout <<
      "\n  expected shape: the plain process commits with probability\n"
      "  ~(1 - failure); the flexible one always commits, converting each\n"
      "  risky-pivot failure into one alternative taken plus one\n"
      "  compensation (the c2 undo) — §2.1's generalized atomicity.\n";
  return 0;
}
