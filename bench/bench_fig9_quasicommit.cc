// E8 — Figure 9 / Example 10: the "quasi-commit" of non-compensatable
// activities. Verifies the paper's schedule S* is correct while the
// reversed interleaving is not, then measures how much concurrency the
// quasi-commit optimization buys the online scheduler.

#include <iostream>
#include <memory>
#include <vector>

#include "common/str_util.h"
#include "core/figures.h"
#include "core/flex_structure.h"
#include "core/pred.h"
#include "core/scheduler.h"
#include "subsystem/kv_subsystem.h"

using namespace tpm;

namespace {

// Workload: `pairs` couples of processes. In each couple, process A starts
// with a pivot on the shared key (entering F-REC immediately — its earlier
// activities become quasi-committed) followed by private retriables;
// process B touches the shared key compensatably, then needs its own pivot.
// Without the Example 10 rule, B's pivot waits for A's commit.
struct QuasiWorkload {
  explicit QuasiWorkload(int pairs)
      : subsystem(SubsystemId(1), "quasi") {
    for (int i = 0; i < pairs; ++i) {
      const std::string shared = StrCat("shared", i);
      ServiceId shared_add(i * 100 + 1), shared_sub(i * 100 + 2);
      ServiceId priv1(i * 100 + 3), priv2(i * 100 + 4), priv3(i * 100 + 5);
      ServiceId bpiv(i * 100 + 6), bret(i * 100 + 7);
      (void)subsystem.RegisterService(
          MakeAddService(shared_add, StrCat("add/", shared), shared));
      (void)subsystem.RegisterService(
          MakeSubService(shared_sub, StrCat("sub/", shared), shared));
      (void)subsystem.RegisterService(
          MakeAddService(priv1, StrCat("a_r1/", i), StrCat("a_r1_", i)));
      (void)subsystem.RegisterService(
          MakeAddService(priv2, StrCat("a_r2/", i), StrCat("a_r2_", i)));
      (void)subsystem.RegisterService(
          MakeAddService(priv3, StrCat("a_r3/", i), StrCat("a_r3_", i)));
      (void)subsystem.RegisterService(
          MakeAddService(bpiv, StrCat("b_p/", i), StrCat("b_p_", i)));
      (void)subsystem.RegisterService(
          MakeAddService(bret, StrCat("b_r/", i), StrCat("b_r_", i)));

      auto a = std::make_unique<ProcessDef>(StrCat("A", i));
      ActivityId ap = a->AddActivity("p", ActivityKind::kPivot, shared_add);
      ActivityId r1 = a->AddActivity("r1", ActivityKind::kRetriable, priv1);
      ActivityId r2 = a->AddActivity("r2", ActivityKind::kRetriable, priv2);
      ActivityId r3 = a->AddActivity("r3", ActivityKind::kRetriable, priv3);
      (void)a->AddEdge(ap, r1);
      (void)a->AddEdge(r1, r2);
      (void)a->AddEdge(r2, r3);
      (void)a->Validate();
      defs.push_back(std::move(a));

      auto b = std::make_unique<ProcessDef>(StrCat("B", i));
      ActivityId bc = b->AddActivity("c", ActivityKind::kCompensatable,
                                     shared_add, shared_sub);
      ActivityId bp = b->AddActivity("p", ActivityKind::kPivot, bpiv);
      ActivityId br = b->AddActivity("r", ActivityKind::kRetriable, bret);
      (void)b->AddEdge(bc, bp);
      (void)b->AddEdge(bp, br);
      (void)b->Validate();
      defs.push_back(std::move(b));
    }
  }

  void Register(TransactionalProcessScheduler* scheduler) {
    (void)scheduler->RegisterSubsystem(&subsystem);
  }
  void SubmitAll(TransactionalProcessScheduler* scheduler) {
    for (const auto& def : defs) (void)scheduler->Submit(def.get());
  }

  KvSubsystem subsystem;
  std::vector<std::unique_ptr<ProcessDef>> defs;
};

}  // namespace

int main() {
  figures::PaperWorld world;
  std::cout << "E8 | Figure 9 — quasi-commit of non-compensatable "
               "activities\n\n";
  {
    ProcessSchedule s = figures::MakeScheduleStar(world);
    auto pred = IsPRED(s, world.spec);
    std::cout << "  S*       = " << s.ToString() << "\n"
              << "    paper: correct (P1 in F-REC, a11^-1 unavailable)\n"
              << "    measured PRED: " << (pred.ok() && *pred ? "yes" : "NO")
              << "\n";
  }
  {
    ProcessSchedule s = figures::MakeScheduleStarReversed(world);
    auto pred = IsPRED(s, world.spec);
    std::cout << "  reversed = " << s.ToString() << "\n"
              << "    expected: incorrect (P3 must compensate a31 after P1 "
                 "used it)\n"
              << "    measured PRED: " << (pred.ok() && *pred ? "YES" : "no")
              << "\n\n";
  }

  std::cout << "  online scheduler with/without the quasi-commit "
               "optimization:\n";
  for (int pairs : {1, 2, 4, 8}) {
    auto measure = [&](bool quasi) {
      QuasiWorkload workload(pairs);
      SchedulerOptions options;
      options.protocol = AdmissionProtocol::kPred;
      options.quasi_commit_optimization = quasi;
      TransactionalProcessScheduler scheduler(options);
      workload.Register(&scheduler);
      workload.SubmitAll(&scheduler);
      (void)scheduler.Run();
      return scheduler.stats();
    };
    SchedulerStats off = measure(false);
    SchedulerStats on = measure(true);
    std::cout << "    pairs=" << pairs << "  steps: " << off.steps << " -> "
              << on.steps << "  deferrals: " << off.deferrals << " -> "
              << on.deferrals << "\n";
  }
  std::cout << "\n  the optimization admits conflicting activities once the\n"
               "  blocker is forward-recoverable with a non-conflicting\n"
               "  remainder (Example 10), cutting deferrals.\n";
  return 0;
}
