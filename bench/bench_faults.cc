// E19 — failure domains: committed throughput and degraded-branch rate vs
// outage severity. Three severities at fixed seeds over the FaultDomainWorld
// health stack (deadline + circuit breaker + parking + ◁-degradation):
//
//   healthy  - no injected faults (baseline throughput, zero degradation)
//   flaky    - one subsystem with transient aborts + latency spikes
//   down     - one subsystem in an unrepaired outage for the whole run
//
// The paper-shaped claim: with preference orders offering alternative paths
// around a sick subsystem, severity costs throughput but not termination —
// committed work degrades gracefully (more ◁-switches, more parking) rather
// than collapsing. `--json <path>` additionally writes the measured series
// as BENCH_faults.json for the repo record.

#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench/json_writer.h"
#include "common/str_util.h"
#include "core/scheduler.h"
#include "log/recovery_log.h"
#include "workload/fault_workload.h"

using namespace tpm;

namespace {

constexpr uint64_t kSeeds[] = {11, 12, 13, 14, 15};

struct SeverityShape {
  const char* name;
  bool flaky;
  bool down;
};

// Exactly one sick subsystem per severity. "down" deliberately has no
// transient faults elsewhere: a transient failure of a preferred group can
// legitimately drive the failure ladder to a ◁-alternative homed on the
// dead subsystem, and a post-pivot retriable stranded there has no path
// left — that is a Def. 3 violation of the *workload*, not a scheduler
// property worth benchmarking (the chaos soak covers flaky+outage with
// repairable windows instead).
constexpr SeverityShape kSeverities[] = {
    {"healthy", false, false},
    {"flaky", true, false},
    {"down", false, true},
};

struct FaultReport {
  int64_t submitted = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
  int64_t makespan = 0;
  int64_t degraded = 0;
  int64_t parked = 0;
  int64_t trips = 0;
  int64_t deadline_failures = 0;
  bool ok = true;
};

/// One seeded closed-batch run at the given severity. Victims are fixed
/// (subsystem 1 flaky, subsystem 2 down) so severity is the only variable
/// across columns; the seed varies fault draws and workload placement.
FaultReport RunSeverity(const SeverityShape& severity, uint64_t seed) {
  FaultReport report;
  Rng rng(seed * 7919 + 3);

  FaultDomainOptions world_options;
  world_options.num_subsystems = 3;
  world_options.seed = seed;
  world_options.proxy.deadline_ticks = 12;
  world_options.proxy.window = 6;
  world_options.proxy.min_samples = 4;
  world_options.proxy.failure_threshold = 0.5;
  world_options.proxy.cooldown_ticks = 20;
  FaultDomainWorld world(world_options);

  if (severity.flaky) {
    testing::FaultProfile flaky;
    flaky.transient_abort_probability = 0.2;
    flaky.latency_ticks = 1;
    flaky.slow_probability = 0.1;
    flaky.slow_latency_ticks = 15;  // blows the 12-tick budget when drawn
    world.faulty(1)->set_profile(flaky);
  }
  if (severity.down) {
    world.faulty(2)->AddOutage(0, 1000000);  // never repaired
  }
  for (int i = 0; i < world.num_subsystems(); ++i) {
    RetryPolicy retry;
    retry.max_attempts = 2;
    retry.backoff_base_ticks = 1;
    retry.exponential = true;
    retry.max_backoff_ticks = 4;
    retry.full_jitter = true;
    world.raw(i)->SetRetryPolicy(retry);
  }

  // Closed batch, variant-disjoint keys: every subsystem serves as home,
  // primary and degradation target for some process, and no preferred
  // group routes *around* the down subsystem by construction — survival
  // under severity "down" has to come from ◁-switches and parking.
  std::vector<const ProcessDef*> defs;
  int variant = 0;
  for (int round = 0; round < 4; ++round) {
    for (int home = 0; home < 3; ++home) {
      const int primary = static_cast<int>(rng.NextInRange(0, 2));
      int alt = static_cast<int>(rng.NextInRange(0, 2));
      if (alt == primary) alt = (alt + 1) % 3;
      defs.push_back(world.MakeAlternativeProcess(
          StrCat("alt", variant), home, primary, alt, variant));
      ++variant;
    }
  }
  for (int c = 0; c < 4; ++c) {
    defs.push_back(world.MakeChainProcess(
        StrCat("chain", c), c % 3, 2 + c % 2, variant++));
  }

  RecoveryLog log;
  SchedulerOptions options;
  options.clock = world.clock();
  options.park_timeout_ticks = 400;
  TransactionalProcessScheduler scheduler(options, &log);
  if (!world.RegisterAll(&scheduler).ok()) {
    report.ok = false;
    return report;
  }
  for (const ProcessDef* def : defs) {
    if (def == nullptr || !scheduler.Submit(def).ok()) {
      report.ok = false;
      return report;
    }
  }
  report.submitted = static_cast<int64_t>(defs.size());
  if (!scheduler.Run(500000).ok()) report.ok = false;

  const SchedulerStats& stats = scheduler.stats();
  report.committed = stats.processes_committed;
  report.aborted = stats.processes_aborted;
  report.makespan = stats.virtual_time;
  report.degraded = stats.degraded_switches;
  report.parked = stats.parked_activities;
  report.trips = stats.breaker_trips;
  report.deadline_failures = stats.deadline_failures;
  return report;
}

double ThroughputPerKTick(const FaultReport& r) {
  return r.makespan > 0 ? 1000.0 * static_cast<double>(r.committed) /
                              static_cast<double>(r.makespan)
                        : 0.0;
}

double DegradedRate(const FaultReport& r) {
  return r.committed > 0
             ? static_cast<double>(r.degraded) / static_cast<double>(r.committed)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
  }

  std::cout << "E19 | committed throughput and degraded-branch rate vs "
               "outage severity\n";
  std::cout << "     (16 processes/run, fixed seeds "
            << kSeeds[0] << ".." << kSeeds[4]
            << "; flaky victim = sub1, down victim = sub2)\n\n";
  std::cout << "  severity  committed/submitted  aborted  commit/ktick  "
               "degraded-rate  parked  trips  deadline\n";

  std::ostringstream json;
  bench::JsonWriter writer(json);
  writer.BeginObject();
  writer.Field("benchmark",
               "bench_faults E19 severity sweep (16 processes, 3 subsystems, "
               "seeds 11..15)");
  writer.Field("methodology",
               "closed batch on virtual time; victims fixed (flaky=sub1, "
               "down=sub2); commit/ktick = committed processes per 1000 "
               "virtual ticks, degraded_rate = preference-group switches away "
               "from sick subsystems per committed process; aggregates are "
               "sums over the five seeds");
  writer.BeginObject("severities");
  for (const SeverityShape& severity : kSeverities) {
    FaultReport total;
    bool all_ok = true;
    for (uint64_t seed : kSeeds) {
      FaultReport r = RunSeverity(severity, seed);
      all_ok = all_ok && r.ok;
      total.submitted += r.submitted;
      total.committed += r.committed;
      total.aborted += r.aborted;
      total.makespan += r.makespan;
      total.degraded += r.degraded;
      total.parked += r.parked;
      total.trips += r.trips;
      total.deadline_failures += r.deadline_failures;
    }
    std::cout << "  " << std::left << std::setw(8) << severity.name
              << std::right << std::setw(10) << total.committed << "/"
              << total.submitted << std::setw(9) << total.aborted << "  "
              << std::fixed << std::setprecision(2) << std::setw(12)
              << ThroughputPerKTick(total) << std::setw(15)
              << DegradedRate(total) << std::setw(8) << total.parked
              << std::setw(7) << total.trips << std::setw(10)
              << total.deadline_failures
              << (all_ok ? "" : "  [RUN FAILED]") << "\n";
    writer.BeginObject(severity.name);
    writer.Field("submitted", total.submitted);
    writer.Field("committed", total.committed);
    writer.Field("aborted", total.aborted);
    writer.Field("makespan_ticks", total.makespan);
    writer.Field("commit_per_ktick", ThroughputPerKTick(total));
    writer.Field("degraded_rate", DegradedRate(total));
    writer.Field("degraded_switches", total.degraded);
    writer.Field("parked", total.parked);
    writer.Field("breaker_trips", total.trips);
    writer.Field("deadline_failures", total.deadline_failures);
    writer.EndObject();
  }
  writer.EndObject();
  writer.EndObject();

  std::cout <<
      "\n  expected shape: healthy commits everything with zero degraded\n"
      "  switches; flaky keeps commits high while deadline failures and\n"
      "  breaker trips appear (throughput dips from retry/backoff ticks);\n"
      "  down still terminates every process — alternative-bearing ones\n"
      "  commit via ◁-degradation (degraded-rate rises), chains homed on\n"
      "  the dead subsystem abort via the park timeout.\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
    std::cout << "\n  wrote " << json_path << "\n";
  }
  return 0;
}
