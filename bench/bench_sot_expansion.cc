// E15 — §3.4/§3.5: the process model vs the traditional unified theory.
//  * The §3.4 remark: with all inverses available, S_t1/S_t2 would be
//    (prefix-)reducible; the process model rejects them.
//  * The §3.5 claim: no SOT-like criterion (decidable from S alone) exists
//    for processes — measured as the disagreement rates between SOT,
//    classical PRED, and process PRED over random schedules.

#include <iomanip>
#include <iostream>

#include "core/expansion.h"
#include "core/figures.h"
#include "core/pred.h"
#include "core/sot.h"
#include "workload/schedule_generator.h"

using namespace tpm;

int main() {
  figures::PaperWorld world;
  std::cout << "E15 | process model vs traditional unified theory\n\n";

  struct Case {
    const char* name;
    ProcessSchedule schedule;
  };
  Case cases[] = {
      {"S_t1  (Fig 8)", figures::MakeScheduleSt1(world)},
      {"S_t2  (Fig 4a)", figures::MakeScheduleSt2(world)},
      {"S'_t2 (Fig 4b)", figures::MakeSchedulePrimeT2(world)},
      {"S''   (Fig 7)", figures::MakeScheduleDoublePrimeT1(world)},
      {"S*    (Fig 9)", figures::MakeScheduleStar(world)},
  };
  std::cout << "  schedule        SOT  classicalPRED  processPRED\n";
  for (auto& c : cases) {
    bool sot = IsSOT(c.schedule, world.spec);
    auto classical = IsClassicallyPrefixReducible(c.schedule, world.spec);
    auto process = IsPRED(c.schedule, world.spec);
    std::cout << "  " << std::left << std::setw(15) << c.name << std::right
              << std::setw(4) << (sot ? "yes" : "no") << std::setw(14)
              << (classical.ok() && *classical ? "yes" : "no")
              << std::setw(13)
              << (process.ok() && *process ? "yes" : "no") << "\n";
  }
  std::cout << "\n  paper: S_t1 is accepted by the classical criteria but\n"
               "  rejected by the process model — activities without\n"
               "  inverses make the difference (§3.4).\n\n";

  std::cout << "  disagreement rates over random schedules:\n";
  std::cout << "  density    n   SOT&!PRED  PRED&!SOT  classical&!PRED\n";
  for (double density : {0.1, 0.2, 0.3, 0.5}) {
    Rng rng(static_cast<uint64_t>(density * 1000) + 99);
    RandomScheduleConfig config;
    config.num_processes = 2;
    config.conflict_density = density;
    constexpr int kIterations = 400;
    int sot_not_pred = 0, pred_not_sot = 0, classical_not_pred = 0;
    for (int i = 0; i < kIterations; ++i) {
      auto generated = GenerateRandomSchedule(config, &rng);
      if (!generated.ok()) continue;
      bool sot = IsSOT(generated->schedule, generated->spec);
      auto classical =
          IsClassicallyPrefixReducible(generated->schedule, generated->spec);
      auto pred = IsPRED(generated->schedule, generated->spec);
      if (!classical.ok() || !pred.ok()) continue;
      if (sot && !*pred) ++sot_not_pred;
      if (*pred && !sot) ++pred_not_sot;
      if (*classical && !*pred) ++classical_not_pred;
    }
    std::cout << "  " << std::fixed << std::setprecision(1) << std::setw(7)
              << density << std::setw(5) << kIterations << std::setw(11)
              << sot_not_pred << std::setw(11) << pred_not_sot
              << std::setw(17) << classical_not_pred << "\n";
  }
  std::cout <<
      "\n  every non-zero SOT&!PRED / classical&!PRED count is a schedule\n"
      "  the traditional theory would wrongly admit for processes; the\n"
      "  non-zero PRED&!SOT count shows SOT is also needlessly strict —\n"
      "  the criteria are incomparable, hence §3.5: the completed process\n"
      "  schedule must always be considered.\n";
  return 0;
}
