#ifndef TPM_BENCH_JSON_WRITER_H_
#define TPM_BENCH_JSON_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace tpm {
namespace bench {

/// Minimal streaming JSON writer shared by the BENCH_*.json emitters, so
/// every benchmark produces structurally valid, consistently indented JSON
/// without hand-managed commas. Usage:
///
///   JsonWriter w(out);
///   w.BeginObject();
///   w.Field("benchmark", "E19 severity sweep");
///   w.BeginObject("severities");
///   w.Field("committed", 42);
///   w.EndObject();
///   w.EndObject();  // root; emits the final newline
///
/// Keys and string values are escaped; doubles print with a fixed,
/// per-field precision (deterministic output for bit-reproducible runs).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void BeginObject() { BeginContainer(nullptr, '{'); }
  void BeginObject(const std::string& key) { BeginContainer(&key, '{'); }
  void EndObject() { EndContainer('}'); }

  void BeginArray() { BeginContainer(nullptr, '['); }
  void BeginArray(const std::string& key) { BeginContainer(&key, '['); }
  void EndArray() { EndContainer(']'); }

  void Field(const std::string& key, const std::string& value) {
    Prefix(&key);
    out_ << Quote(value);
  }
  void Field(const std::string& key, const char* value) {
    Field(key, std::string(value));
  }
  void Field(const std::string& key, int64_t value) {
    Prefix(&key);
    out_ << value;
  }
  void Field(const std::string& key, int value) {
    Field(key, static_cast<int64_t>(value));
  }
  void Field(const std::string& key, uint64_t value) {
    Prefix(&key);
    out_ << value;
  }
  void Field(const std::string& key, bool value) {
    Prefix(&key);
    out_ << (value ? "true" : "false");
  }
  void Field(const std::string& key, double value, int precision = 3) {
    Prefix(&key);
    WriteDouble(value, precision);
  }

  /// Array elements.
  void Value(const std::string& value) {
    Prefix(nullptr);
    out_ << Quote(value);
  }
  void Value(int64_t value) {
    Prefix(nullptr);
    out_ << value;
  }
  void Value(double value, int precision = 3) {
    Prefix(nullptr);
    WriteDouble(value, precision);
  }

 private:
  void BeginContainer(const std::string* key, char open) {
    Prefix(key);
    out_ << open;
    counts_.push_back(0);
  }

  void EndContainer(char close) {
    const bool empty = counts_.back() == 0;
    counts_.pop_back();
    if (!empty) {
      out_ << '\n';
      Indent();
    }
    out_ << close;
    if (counts_.empty()) out_ << '\n';  // root closed
  }

  /// Comma/newline/indent before an element, plus the key when given.
  void Prefix(const std::string* key) {
    if (!counts_.empty()) {
      if (counts_.back() > 0) out_ << ',';
      out_ << '\n';
      ++counts_.back();
      Indent();
    }
    if (key != nullptr) out_ << Quote(*key) << ": ";
  }

  void Indent() {
    for (size_t i = 0; i < counts_.size(); ++i) out_ << "  ";
  }

  void WriteDouble(double value, int precision) {
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(precision);
    oss << value;
    out_ << oss.str();
  }

  static std::string Quote(const std::string& s) {
    std::string quoted = "\"";
    for (char c : s) {
      switch (c) {
        case '"':
          quoted += "\\\"";
          break;
        case '\\':
          quoted += "\\\\";
          break;
        case '\n':
          quoted += "\\n";
          break;
        case '\t':
          quoted += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            quoted += buf;
          } else {
            quoted += c;
          }
      }
    }
    quoted += '"';
    return quoted;
  }

  std::ostream& out_;
  /// Element count per open container (also the nesting depth).
  std::vector<int> counts_;
};

}  // namespace bench
}  // namespace tpm

#endif  // TPM_BENCH_JSON_WRITER_H_
