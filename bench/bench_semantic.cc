// E20 — semantic ADT commutativity vs read/write conflict modeling. One
// mixed workload on the SemanticWorld (escrow counters + token queues + KV),
// run twice with identical seeds: once with the operation-level
// commutativity tables enabled (inc/inc, inc/dec, inc/withdraw, enq/enq and
// their Def. 2 compensation closures commute) and once with the same
// services reduced to their read/write sets (every touch of a shared
// counter or queue conflicts). Activities cost 4 virtual ticks, so admitted
// concurrency shows up directly as makespan: the paper's §3.2 claim is that
// exploiting ADT semantics in the conflict relation (Def. 6) buys real
// parallelism that read/write analysis cannot see.
//
// Headline check (enforced; the process exits non-zero on regression): the
// ADT mode must achieve >= 1.5x the committed-process throughput of the
// read/write mode. `--json <path>` writes BENCH_semantic.json; runs are
// deterministic per seed, so the file is bit-reproducible.

#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/json_writer.h"
#include "common/str_util.h"
#include "core/scheduler.h"
#include "log/recovery_log.h"
#include "workload/semantic_world.h"

using namespace tpm;

namespace {

constexpr uint64_t kSeeds[] = {21, 22, 23};
constexpr int kProducers = 12;
constexpr int kConsumers = 3;
constexpr int kRefillers = 3;
constexpr int64_t kActivityTicks = 4;

struct ModeReport {
  int64_t submitted = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
  int64_t makespan = 0;
  int64_t deferrals = 0;
  int64_t blocked = 0;
  int64_t failed_invocations = 0;
  int64_t exhaustion_aborts = 0;
  bool ok = true;
};

/// One seeded closed-batch run. The batch mixes hot-state producers
/// (enqueue + deposit on shared "orders"/"stock"), a consumer minority
/// (dequeue + escrow withdraw — genuinely order-sensitive, so they stay
/// serialized even under ADT semantics) and refillers. Per-variant KV keys
/// keep the pivots disjoint: the only shared state is the semantic kind.
ModeReport RunMode(bool use_op_commutativity, uint64_t seed) {
  ModeReport report;

  SemanticWorldOptions world_options;
  world_options.seed = seed;
  world_options.escrow_initial = 50;
  world_options.queue_initial_tokens = 8;
  SemanticWorld world(world_options);

  std::vector<const ProcessDef*> defs;
  int variant = 0;
  for (int i = 0; i < kProducers; ++i) {
    defs.push_back(world.MakeOrderProcess(StrCat("order", i), variant++));
  }
  for (int i = 0; i < kConsumers; ++i) {
    defs.push_back(world.MakeConsumeProcess(StrCat("consume", i), variant++));
  }
  for (int i = 0; i < kRefillers; ++i) {
    defs.push_back(world.MakeRefillProcess(StrCat("refill", i), variant++));
  }

  RecoveryLog log;
  SchedulerOptions options;
  options.clock = world.clock();
  options.use_op_commutativity = use_op_commutativity;
  // Cost model: every escrow/queue/KV service occupies its process for 4
  // ticks, so the makespan separates admitted-parallel from serialized.
  for (int i = 0; i < SemanticWorld::kNumBackends; ++i) {
    for (ServiceId id : world.proxy(i)->services().AllIds()) {
      options.service_durations[id] = kActivityTicks;
    }
  }
  TransactionalProcessScheduler scheduler(options, &log);
  if (!world.RegisterAll(&scheduler).ok()) {
    report.ok = false;
    return report;
  }
  // Closed batch with resubmission: aborted processes retry until the
  // whole batch commits (or the round cap hits), so both modes do the same
  // useful work and the modes differ in *when* they finish, not in which
  // processes survive. Optimistic contention aborts under rw modeling show
  // up as extra rounds and a longer makespan.
  std::map<ProcessId, const ProcessDef*> in_flight;
  for (const ProcessDef* def : defs) {
    if (def == nullptr) {
      report.ok = false;
      return report;
    }
    auto pid = scheduler.Submit(def);
    if (!pid.ok()) {
      report.ok = false;
      return report;
    }
    in_flight[*pid] = def;
  }
  report.submitted = static_cast<int64_t>(defs.size());
  for (int round = 0; round < 20 && !in_flight.empty(); ++round) {
    if (!scheduler.Run(500000).ok()) {
      report.ok = false;
      break;
    }
    std::map<ProcessId, const ProcessDef*> next;
    for (const auto& [pid, def] : in_flight) {
      if (scheduler.OutcomeOf(pid) != ProcessOutcome::kAborted) continue;
      if (round == 19) continue;
      auto retry = scheduler.Submit(def);
      if (retry.ok()) next[*retry] = def;
    }
    in_flight = std::move(next);
  }

  const SchedulerStats& stats = scheduler.stats();
  report.committed = stats.processes_committed;
  report.aborted = stats.processes_aborted;
  report.makespan = stats.virtual_time;
  report.deferrals = stats.deferrals;
  report.blocked = stats.blocked_by_locks;
  report.failed_invocations = stats.failed_invocations;
  report.exhaustion_aborts = world.escrow()->exhaustion_aborts();
  if (!world.CheckAdtInvariants().ok()) report.ok = false;
  return report;
}

double ThroughputPerKTick(const ModeReport& r) {
  return r.makespan > 0 ? 1000.0 * static_cast<double>(r.committed) /
                              static_cast<double>(r.makespan)
                        : 0.0;
}

double AbortRate(const ModeReport& r) {
  return r.submitted > 0
             ? static_cast<double>(r.aborted) / static_cast<double>(r.submitted)
             : 0.0;
}

void EmitMode(bench::JsonWriter& writer, const std::string& name,
              const ModeReport& r) {
  writer.BeginObject(name);
  writer.Field("submitted", r.submitted);
  writer.Field("committed", r.committed);
  writer.Field("aborted", r.aborted);
  writer.Field("abort_rate", AbortRate(r));
  writer.Field("makespan_ticks", r.makespan);
  writer.Field("commit_per_ktick", ThroughputPerKTick(r));
  writer.Field("deferrals", r.deferrals);
  writer.Field("blocked_by_locks", r.blocked);
  writer.Field("failed_invocations", r.failed_invocations);
  writer.Field("escrow_exhaustion_aborts", r.exhaustion_aborts);
  writer.Field("all_runs_ok", r.ok);
  writer.EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
  }

  std::cout << "E20 | ADT commutativity vs read/write conflict modeling ("
            << (kProducers + kConsumers + kRefillers)
            << " processes/run, seeds " << kSeeds[0] << ".." << kSeeds[2]
            << ", activities = " << kActivityTicks << " ticks)\n\n";
  std::cout << "  mode  committed/submitted  aborted  makespan  commit/ktick"
               "  deferrals  blocked\n";

  ModeReport totals[2];
  const char* names[2] = {"adt", "rw"};
  for (int mode = 0; mode < 2; ++mode) {
    ModeReport& total = totals[mode];
    for (uint64_t seed : kSeeds) {
      ModeReport r = RunMode(mode == 0, seed);
      total.ok = total.ok && r.ok;
      total.submitted += r.submitted;
      total.committed += r.committed;
      total.aborted += r.aborted;
      total.makespan += r.makespan;
      total.deferrals += r.deferrals;
      total.blocked += r.blocked;
      total.failed_invocations += r.failed_invocations;
      total.exhaustion_aborts += r.exhaustion_aborts;
    }
    std::cout << "  " << std::left << std::setw(5) << names[mode] << std::right
              << std::setw(11) << total.committed << "/" << total.submitted
              << std::setw(9) << total.aborted << std::setw(10)
              << total.makespan << "  " << std::fixed << std::setprecision(2)
              << std::setw(12) << ThroughputPerKTick(total) << std::setw(11)
              << total.deferrals << std::setw(9) << total.blocked
              << (total.ok ? "" : "  [RUN FAILED]") << "\n";
  }

  const double factor = ThroughputPerKTick(totals[1]) > 0
                            ? ThroughputPerKTick(totals[0]) /
                                  ThroughputPerKTick(totals[1])
                            : 0.0;
  const bool pass = totals[0].ok && totals[1].ok && factor >= 1.5;
  std::cout << "\n  headline: ADT/rw commit-throughput factor = " << std::fixed
            << std::setprecision(2) << factor << " (require >= 1.50) "
            << (pass ? "[OK]" : "[FAIL]") << "\n";
  std::cout <<
      "\n  expected shape: with op tables on, producer deposits and\n"
      "  enqueues on the shared counter/queue commute and overlap, so the\n"
      "  makespan approaches the critical path; with read/write modeling\n"
      "  the same services self-conflict and the hot-state phase\n"
      "  serializes. Consumers (dequeue + withdraw) serialize either way —\n"
      "  their conflicts are semantic, not an artifact of the modeling.\n";

  std::ostringstream json;
  bench::JsonWriter writer(json);
  writer.BeginObject();
  writer.Field("benchmark",
               StrCat("bench_semantic E20 ADT commutativity vs read/write "
                      "modeling (",
                      kProducers + kConsumers + kRefillers,
                      " processes, seeds 21..23)"));
  writer.Field("methodology",
               "identical seeded closed batches on virtual time, activities "
               "cost 4 ticks; mode adt uses the operation-level commutativity "
               "tables (ConflictSpec op layer), mode rw disables them so only "
               "the read/write-derived service conflicts remain; aggregates "
               "are sums over the three seeds; commit_per_ktick = committed "
               "processes per 1000 virtual ticks");
  writer.BeginObject("modes");
  EmitMode(writer, "adt", totals[0]);
  EmitMode(writer, "rw", totals[1]);
  writer.EndObject();
  writer.BeginObject("headline");
  writer.Field("commit_throughput_factor", factor);
  writer.Field("required_factor", 1.5, 1);
  writer.Field("pass", pass);
  writer.EndObject();
  writer.EndObject();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
    std::cout << "\n  wrote " << json_path << "\n";
  }
  return pass ? 0 : 1;
}
