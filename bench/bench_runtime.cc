// E21 — sharded-runtime commit-throughput scaling. The same multi-tenant
// mixed KV/escrow/queue workload (ShardedWorld) runs to quiescence on the
// free-running ShardedRuntime at shard counts {1, 2, 4, hw}; tenants are
// independent conflict components, so the conflict partitioner can spread
// them and the headline measures how much aggregate wall-clock commit
// throughput the conflict-partitioned composition of unmodified
// single-threaded schedulers actually buys.
//
// Headline check (enforced only when the host has >= 4 hardware threads —
// on smaller machines the numbers are reported unenforced): 4 shards must
// reach >= 2.0x the commit throughput of 1 shard. `--json <path>` writes
// BENCH_runtime.json. Wall-clock numbers vary run to run; the workload,
// routing and per-shard schedules are deterministic per seed.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/json_writer.h"
#include "common/str_util.h"
#include "runtime/sharded_runtime.h"
#include "workload/sharded_world.h"

using namespace tpm;

namespace {

constexpr uint64_t kSeed = 4242;
constexpr int kTenants = 8;
constexpr int kRoundsPerTenant = 40;  // x3 process shapes => 960 processes
// Closed-loop: submit kRoundsPerWave rounds, drain, repeat. Caps in-flight
// conflicting processes per tenant so the workload mostly commits instead
// of measuring abort storms.
constexpr int kRoundsPerWave = 2;
constexpr int kRepetitions = 3;  // best-of to damp scheduler noise

struct RunReport {
  int shards = 0;
  int64_t submitted = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
  double best_seconds = 0.0;
  double throughput = 0.0;  // committed / best_seconds
  bool ok = true;
  std::string error;
};

std::vector<const ProcessDef*> BuildWorkload(ShardedWorld* world) {
  std::vector<const ProcessDef*> defs;
  for (int round = 0; round < kRoundsPerTenant; ++round) {
    for (int t = 0; t < world->num_tenants(); ++t) {
      defs.push_back(world->MakeOrderProcess(
          t, StrCat("order_t", t, "_", round), round % 4));
      defs.push_back(world->MakeConsumeProcess(
          t, StrCat("consume_t", t, "_", round), round % 4));
      defs.push_back(world->MakeRefillProcess(
          t, StrCat("refill_t", t, "_", round), round % 4));
    }
  }
  return defs;
}

RunReport RunOnce(int shards) {
  RunReport report;
  report.shards = shards;
  double best = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    ShardedWorld world({.seed = kSeed,
                        .num_tenants = kTenants,
                        .queue_initial_tokens = 64});
    std::vector<const ProcessDef*> defs = BuildWorkload(&world);
    ShardedRuntimeOptions options;
    options.num_shards = shards;
    options.mode = TickMode::kFreeRunning;
    options.log_mode = ShardLogMode::kMemory;
    options.queue_capacity = defs.size();
    ShardedRuntime runtime(options);
    Status status = world.RegisterAll(&runtime);
    if (status.ok()) status = runtime.Start();
    if (!status.ok()) {
      report.ok = false;
      report.error = status.ToString();
      return report;
    }

    const size_t defs_per_wave =
        static_cast<size_t>(kRoundsPerWave) * kTenants * 3;
    const auto begin = std::chrono::steady_clock::now();
    for (size_t next = 0; report.ok && next < defs.size();) {
      const size_t wave_end = std::min(next + defs_per_wave, defs.size());
      for (; next < wave_end; ++next) {
        auto ticket = runtime.Submit(defs[next]);
        if (!ticket.ok()) {
          report.ok = false;
          report.error = ticket.status().ToString();
          break;
        }
      }
      if (report.ok) {
        status = runtime.Drain();
        if (!status.ok()) {
          report.ok = false;
          report.error = status.ToString();
        }
      }
    }
    const auto end = std::chrono::steady_clock::now();
    RuntimeStats stats = runtime.Stats();
    (void)runtime.Stop();
    if (!report.ok) return report;
    if (world.CheckAdtInvariants().ok() == false) {
      report.ok = false;
      report.error = "ADT invariants violated after drain";
      return report;
    }

    const double seconds =
        std::chrono::duration<double>(end - begin).count();
    if (rep == 0 || seconds < best) best = seconds;
    report.submitted = static_cast<int64_t>(defs.size());
    report.committed = stats.merged.processes_committed;
    report.aborted = stats.merged.processes_aborted;
  }
  report.best_seconds = best;
  report.throughput = best > 0 ? report.committed / best : 0.0;
  return report;
}

// --- E22: cross-shard spanning share. Same world and closed-loop drive,
// fixed shard count, with {0, 5, 20}% of submissions replaced by spanning
// processes (pair/chain/◁-alt rotation). Measures what the coordination
// agent's held-vote 2PC costs: every spanning process serializes its
// slices' commits through coordinator decisions, so throughput should
// degrade smoothly with the spanning share, not collapse.

struct SpanReport {
  int span_pct = 0;
  int64_t submitted = 0;
  int64_t spans_submitted = 0;
  int64_t spans_committed = 0;
  int64_t spans_aborted = 0;
  int64_t committed = 0;  // per-shard commits (slices count individually)
  double best_seconds = 0.0;
  double throughput = 0.0;
  bool ok = true;
  std::string error;
};

std::vector<const ProcessDef*> BuildSpanningWorkload(ShardedWorld* world,
                                                     int span_pct,
                                                     int64_t* spans_out) {
  std::vector<const ProcessDef*> defs = BuildWorkload(world);
  const int tenants = world->num_tenants();
  const int spans = static_cast<int>(defs.size()) * span_pct / 100;
  for (int i = 0; i < spans; ++i) {
    const int a = i % tenants;
    const int b = (i + 1) % tenants;
    const int c = (i + 2) % tenants;
    const ProcessDef* def = nullptr;
    switch (i % 3) {
      case 0:
        def = world->MakeSpanningProcess(StrCat("span_", i), a, b);
        break;
      case 1:
        def = world->MakeSpanningChainProcess(StrCat("span_", i), a, b, c);
        break;
      default:
        def = world->MakeSpanningAltProcess(StrCat("span_", i), a, b, c);
        break;
    }
    defs.insert(defs.begin() + (i * 7) % defs.size(), def);
  }
  *spans_out = spans;
  return defs;
}

SpanReport RunSpanningOnce(int shards, int span_pct) {
  SpanReport report;
  report.span_pct = span_pct;
  double best = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    ShardedWorld world({.seed = kSeed,
                        .num_tenants = kTenants,
                        .queue_initial_tokens = 64});
    int64_t spans = 0;
    std::vector<const ProcessDef*> defs =
        BuildSpanningWorkload(&world, span_pct, &spans);
    ShardedRuntimeOptions options;
    options.num_shards = shards;
    options.mode = TickMode::kFreeRunning;
    options.log_mode = ShardLogMode::kMemory;
    options.queue_capacity = defs.size();
    ShardedRuntime runtime(options);
    Status status = world.RegisterAll(&runtime);
    if (status.ok()) status = runtime.Start();
    if (!status.ok()) {
      report.ok = false;
      report.error = status.ToString();
      return report;
    }

    const size_t defs_per_wave =
        static_cast<size_t>(kRoundsPerWave) * kTenants * 3;
    const auto begin = std::chrono::steady_clock::now();
    for (size_t next = 0; report.ok && next < defs.size();) {
      const size_t wave_end = std::min(next + defs_per_wave, defs.size());
      for (; next < wave_end; ++next) {
        auto ticket = runtime.Submit(defs[next]);
        if (!ticket.ok()) {
          report.ok = false;
          report.error = ticket.status().ToString();
          break;
        }
      }
      if (report.ok) {
        status = runtime.Drain();
        if (!status.ok()) {
          report.ok = false;
          report.error = status.ToString();
        }
      }
    }
    const auto end = std::chrono::steady_clock::now();
    RuntimeStats stats = runtime.Stats();
    (void)runtime.Stop();
    if (!report.ok) return report;
    if (!world.CheckAdtInvariants().ok()) {
      report.ok = false;
      report.error = "ADT invariants violated after drain";
      return report;
    }

    const double seconds =
        std::chrono::duration<double>(end - begin).count();
    if (rep == 0 || seconds < best) best = seconds;
    report.submitted = static_cast<int64_t>(defs.size());
    report.spans_submitted = spans;
    report.spans_committed = stats.spans_committed;
    report.spans_aborted = stats.spans_aborted;
    report.committed = stats.merged.processes_committed;
  }
  report.best_seconds = best;
  report.throughput = best > 0 ? report.committed / best : 0.0;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::set<int> shard_counts = {1, 2, 4};
  if (hw >= 1) shard_counts.insert(std::min(hw, kTenants));

  std::cout << "E21 sharded-runtime throughput scaling (" << kTenants
            << " tenants, " << kTenants * kRoundsPerTenant * 3
            << " processes, best of " << kRepetitions
            << " reps, hw threads = " << hw << ")\n\n";
  std::cout << "  shards   committed/submitted   aborted   seconds   "
               "commit/s   speedup\n";

  std::vector<RunReport> reports;
  double base_throughput = 0.0;
  bool all_ok = true;
  for (int shards : shard_counts) {
    RunReport report = RunOnce(shards);
    all_ok = all_ok && report.ok;
    if (report.shards == 1) base_throughput = report.throughput;
    const double speedup =
        base_throughput > 0 ? report.throughput / base_throughput : 0.0;
    std::cout << "  " << std::setw(6) << report.shards << std::setw(12)
              << report.committed << "/" << report.submitted << std::setw(10)
              << report.aborted << std::fixed << std::setprecision(4)
              << std::setw(10) << report.best_seconds << std::setprecision(0)
              << std::setw(11) << report.throughput << std::setprecision(2)
              << std::setw(10) << speedup << "x"
              << (report.ok ? "" : StrCat("  [FAILED: ", report.error, "]"))
              << "\n";
    reports.push_back(report);
  }

  double speedup_at_4 = 0.0;
  for (const RunReport& report : reports) {
    if (report.shards == 4 && base_throughput > 0) {
      speedup_at_4 = report.throughput / base_throughput;
    }
  }
  const bool enforced = hw >= 4;
  const bool pass = all_ok && (!enforced || speedup_at_4 >= 2.0);
  std::cout << "\n  headline: 4-shard speedup = " << std::fixed
            << std::setprecision(2) << speedup_at_4 << "x (require >= 2.00x, "
            << (enforced ? "enforced" : StrCat("NOT enforced: only ", hw,
                                               " hw threads"))
            << ") " << (pass ? "[OK]" : "[FAIL]") << "\n";
  std::cout <<
      "\n  expected shape: tenants are disjoint conflict components, so\n"
      "  the partitioner spreads them across shards and commit throughput\n"
      "  scales with shard count until shards exceed hardware threads (or\n"
      "  tenant count); every shard runs the unmodified single-threaded\n"
      "  scheduler, so per-shard schedules stay PRED/Proc-REC by\n"
      "  construction.\n";

  // --- E22: spanning share sweep at a fixed shard count.
  // Fixed at 4 shards (not hw-capped: shards are threads and oversubscribe
  // fine) so the spanning processes genuinely split and coordinate.
  const int e22_shards = std::min(4, kTenants);
  std::cout << "\nE22 cross-shard spanning share (" << e22_shards
            << " shards, spanning share of submissions in {0, 5, 20}%)\n\n";
  std::cout << "  span%   committed/submitted   spans C/A   seconds   "
               "commit/s   vs 0%\n";
  std::vector<SpanReport> span_reports;
  double span_base = 0.0;
  for (int pct : {0, 5, 20}) {
    SpanReport report = RunSpanningOnce(e22_shards, pct);
    all_ok = all_ok && report.ok;
    if (pct == 0) span_base = report.throughput;
    const double relative =
        span_base > 0 ? report.throughput / span_base : 0.0;
    std::cout << "  " << std::setw(5) << report.span_pct << std::setw(12)
              << report.committed << "/" << report.submitted << std::setw(9)
              << report.spans_committed << "/" << report.spans_aborted
              << std::fixed << std::setprecision(4) << std::setw(10)
              << report.best_seconds << std::setprecision(0) << std::setw(11)
              << report.throughput << std::setprecision(2) << std::setw(9)
              << relative << "x"
              << (report.ok ? "" : StrCat("  [FAILED: ", report.error, "]"))
              << "\n";
    span_reports.push_back(report);
  }
  std::cout <<
      "\n  expected shape: each spanning process funnels its slices through\n"
      "  the coordination agent's held-vote 2PC — slices park prepared\n"
      "  (Lemma 1 deferral) until the coordinator decides, stalling every\n"
      "  conflicting local process behind them — so throughput drops\n"
      "  steeply with the spanning share; that cliff is the measured price\n"
      "  of cross-shard atomicity. Every span decides (committed + aborted\n"
      "  = spans submitted) and the global projection stays PRED/Proc-REC\n"
      "  (asserted in tests).\n";

  std::ostringstream json;
  bench::JsonWriter writer(json);
  writer.BeginObject();
  writer.Field("benchmark",
               StrCat("bench_runtime E21 sharded-runtime commit-throughput "
                      "scaling (",
                      kTenants, " tenants, ",
                      kTenants * kRoundsPerTenant * 3, " processes)"));
  writer.Field(
      "methodology",
      "free-running ShardedRuntime over the multi-tenant ShardedWorld; per "
      "shard count: closed-loop waves (submit a bounded batch, Drain to "
      "quiescence, repeat), wall-clock seconds = first submit..last drain, "
      "best of 3 repetitions; throughput = committed processes / best "
      "seconds; speedup is relative to the 1-shard run of the same batch");
  writer.Field("hardware_threads", hw);
  writer.BeginArray("runs");
  for (const RunReport& report : reports) {
    writer.BeginObject();
    writer.Field("shards", report.shards);
    writer.Field("submitted", report.submitted);
    writer.Field("committed", report.committed);
    writer.Field("aborted", report.aborted);
    writer.Field("best_seconds", report.best_seconds, 6);
    writer.Field("commit_throughput_per_s", report.throughput, 1);
    writer.Field("speedup_vs_1_shard",
                 base_throughput > 0 ? report.throughput / base_throughput
                                     : 0.0,
                 3);
    writer.Field("ok", report.ok);
    if (!report.ok) writer.Field("error", report.error);
    writer.EndObject();
  }
  writer.EndArray();
  writer.BeginArray("e22_spanning_runs");
  for (const SpanReport& report : span_reports) {
    writer.BeginObject();
    writer.Field("shards", e22_shards);
    writer.Field("span_pct", report.span_pct);
    writer.Field("submitted", report.submitted);
    writer.Field("spans_submitted", report.spans_submitted);
    writer.Field("spans_committed", report.spans_committed);
    writer.Field("spans_aborted", report.spans_aborted);
    writer.Field("committed", report.committed);
    writer.Field("best_seconds", report.best_seconds, 6);
    writer.Field("commit_throughput_per_s", report.throughput, 1);
    writer.Field("relative_to_0pct",
                 span_base > 0 ? report.throughput / span_base : 0.0, 3);
    writer.Field("ok", report.ok);
    if (!report.ok) writer.Field("error", report.error);
    writer.EndObject();
  }
  writer.EndArray();
  writer.BeginObject("headline");
  writer.Field("speedup_at_4_shards", speedup_at_4, 3);
  writer.Field("required_speedup", 2.0, 1);
  writer.Field("enforced", enforced);
  writer.Field("pass", pass);
  writer.EndObject();
  writer.EndObject();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
    std::cout << "\n  wrote " << json_path << "\n";
  }
  return pass ? 0 : 1;
}
