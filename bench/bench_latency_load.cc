// E18 — open-loop behaviour: processes arrive over (virtual) time at rate
// lambda; latency percentiles vs offered load for the PRED scheduler and
// the serial baseline. The classic saturation curve: flat latency until
// the knee, then queueing blow-up — with PRED's knee far to the right of
// serial's.

#include <algorithm>
#include <iomanip>
#include <iostream>

#include "common/rng.h"
#include "common/str_util.h"
#include "core/scheduler.h"
#include "workload/process_generator.h"

using namespace tpm;

namespace {

struct LoadReport {
  int64_t arrived = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
  int64_t p50 = 0;
  int64_t p95 = 0;
  int64_t makespan = 0;
};

LoadReport RunOpenLoop(AdmissionProtocol protocol, double lambda,
                       uint64_t seed) {
  SyntheticUniverse universe(3, 8);
  ProcessShape shape;
  shape.items_per_process = 2;
  ProcessGenerator generator(&universe, shape, seed);
  SchedulerOptions options;
  options.protocol = protocol;
  TransactionalProcessScheduler scheduler(options);
  (void)universe.RegisterAll(&scheduler);

  Rng rng(seed * 31 + 7);
  LoadReport report;
  constexpr int kHorizon = 400;  // arrival window in ticks
  for (int tick = 0; tick < kHorizon; ++tick) {
    if (rng.NextBool(lambda)) {
      auto def = generator.Generate(StrCat("l", tick));
      if (def.ok() && scheduler.Submit(*def).ok()) ++report.arrived;
    }
    auto step = scheduler.Step();
    if (!step.ok()) {
      std::cerr << "step failed: " << step.status() << "\n";
      return report;
    }
  }
  // Drain.
  (void)scheduler.Run();
  report.committed = scheduler.stats().processes_committed;
  report.aborted = scheduler.stats().processes_aborted;
  report.makespan = scheduler.stats().virtual_time;
  std::vector<int64_t> latencies;
  for (const auto& latency : scheduler.latencies()) {
    latencies.push_back(latency.terminated - latency.submitted);
  }
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    report.p50 = latencies[latencies.size() / 2];
    report.p95 = latencies[latencies.size() * 95 / 100];
  }
  return report;
}

}  // namespace

int main() {
  std::cout << "E18 | open-loop latency vs offered load "
               "(Bernoulli arrivals over 400 ticks)\n";
  std::cout << "  lambda  protocol  arrived  committed  aborted   p50   "
               "p95  makespan\n";
  for (double lambda : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    for (AdmissionProtocol protocol :
         {AdmissionProtocol::kPred, AdmissionProtocol::kSerial}) {
      LoadReport r = RunOpenLoop(protocol, lambda, 2026);
      std::cout << "  " << std::fixed << std::setprecision(2) << std::setw(6)
                << lambda << "  " << std::left << std::setw(8)
                << (protocol == AdmissionProtocol::kPred ? "pred" : "serial")
                << std::right << std::setw(9) << r.arrived << std::setw(11)
                << r.committed << std::setw(9) << r.aborted << std::setw(6)
                << r.p50 << std::setw(6) << r.p95 << std::setw(10)
                << r.makespan << "\n";
    }
  }
  std::cout <<
      "\n  expected shape: both protocols sit at low flat latency under\n"
      "  light load; as lambda grows, serial saturates first (queueing\n"
      "  latency explodes and the drain tail lengthens) while pred keeps\n"
      "  the knee further right by overlapping independent processes.\n";
  return 0;
}
