// E24 — replicated shards: what NMR voting costs and what it buys.
//
// Part 1 (overhead): the same multi-tenant mixed workload runs to
// quiescence on the free-running runtime at replication factor {1, 2, 3}.
// R=1 is the exact pre-replication path (no sequencer rounds, no voting);
// R>1 runs every shard as R lockstepped scheduler replicas with digest
// votes, so the measured slowdown is the honest price of divergence
// detection. With more replicas than spare hardware threads the overhead
// is dominated by oversubscription, which is exactly the deployment
// question the number answers.
//
// Part 2 (availability): the latency from killing a shard's acting
// primary to the next submission being SERVED, under R=3 hot failover
// (promotion of a live follower, no WAL replay), versus the classic
// alternative the replicas exist to avoid: a full stop-the-world restart
// of an R=1 runtime over the same file WAL (Start + Recover replay +
// serve). Headline check: failover must serve strictly faster than the
// cold restart path.
//
// `--json <path>` writes BENCH_replica.json. Wall-clock numbers vary run
// to run; the workloads and per-replica schedules are deterministic per
// seed (that determinism is what voting is built on).

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/json_writer.h"
#include "common/str_util.h"
#include "runtime/sharded_runtime.h"
#include "workload/sharded_world.h"

using namespace tpm;

namespace {

constexpr uint64_t kSeed = 2024;
constexpr int kTenants = 4;
constexpr int kShards = 2;
constexpr int kRoundsPerTenant = 30;  // x3 shapes => 360 processes
constexpr int kRoundsPerWave = 2;
constexpr int kRepetitions = 3;  // best-of to damp scheduler noise

// Mirror worlds: every replica's subsystem set comes from a world built
// with the same seed and the same Make* call sequence, so they mint
// identical ServiceIds and identical process shapes.
struct ReplicaWorlds {
  std::vector<std::unique_ptr<ShardedWorld>> worlds;
  std::vector<const ProcessDef*> defs;    // world 0's, the ones submitted
  std::vector<const ProcessDef*> probes;  // world 0's, one per repetition
};

ReplicaWorlds MakeReplicaWorlds(int factor) {
  ReplicaWorlds rw;
  for (int r = 0; r < factor; ++r) {
    rw.worlds.push_back(std::make_unique<ShardedWorld>(
        ShardedWorldOptions{.seed = kSeed,
                            .num_tenants = kTenants,
                            .queue_initial_tokens = 64}));
    ShardedWorld* world = rw.worlds.back().get();
    for (int round = 0; round < kRoundsPerTenant; ++round) {
      for (int t = 0; t < kTenants; ++t) {
        const ProcessDef* order = world->MakeOrderProcess(
            t, StrCat("order_t", t, "_", round), round % 4);
        const ProcessDef* consume = world->MakeConsumeProcess(
            t, StrCat("consume_t", t, "_", round), round % 4);
        const ProcessDef* refill = world->MakeRefillProcess(
            t, StrCat("refill_t", t, "_", round), round % 4);
        if (r == 0) {
          rw.defs.push_back(order);
          rw.defs.push_back(consume);
          rw.defs.push_back(refill);
        }
      }
    }
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const ProcessDef* probe =
          world->MakeRefillProcess(0, StrCat("probe_", rep), rep);
      if (r == 0) rw.probes.push_back(probe);
    }
  }
  return rw;
}

Status RegisterReplicas(ReplicaWorlds* rw, ShardedRuntime* runtime) {
  Status status = rw->worlds[0]->RegisterAll(runtime);
  for (size_t r = 1; status.ok() && r < rw->worlds.size(); ++r) {
    status = rw->worlds[r]->RegisterAllAsReplica(runtime,
                                                 static_cast<int>(r));
  }
  return status;
}

// --- Part 1: commit throughput at R in {1, 2, 3}.

struct RunReport {
  int factor = 0;
  int64_t submitted = 0;
  int64_t committed = 0;
  int64_t vote_rounds = 0;
  int64_t divergences = 0;
  double best_seconds = 0.0;
  double throughput = 0.0;
  bool ok = true;
  std::string error;
};

RunReport RunOnce(int factor) {
  RunReport report;
  report.factor = factor;
  double best = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    ReplicaWorlds rw = MakeReplicaWorlds(factor);
    ShardedRuntimeOptions options;
    options.num_shards = kShards;
    options.mode = TickMode::kFreeRunning;
    options.log_mode = ShardLogMode::kMemory;
    options.queue_capacity = rw.defs.size();
    options.replication.factor = factor;
    ShardedRuntime runtime(options);
    Status status = RegisterReplicas(&rw, &runtime);
    if (status.ok()) status = runtime.Start();
    if (!status.ok()) {
      report.ok = false;
      report.error = status.ToString();
      return report;
    }

    const size_t defs_per_wave =
        static_cast<size_t>(kRoundsPerWave) * kTenants * 3;
    const auto begin = std::chrono::steady_clock::now();
    for (size_t next = 0; report.ok && next < rw.defs.size();) {
      const size_t wave_end =
          std::min(next + defs_per_wave, rw.defs.size());
      for (; next < wave_end; ++next) {
        auto ticket = runtime.Submit(rw.defs[next]);
        if (!ticket.ok()) {
          report.ok = false;
          report.error = ticket.status().ToString();
          break;
        }
      }
      if (report.ok) {
        status = runtime.Drain();
        if (!status.ok()) {
          report.ok = false;
          report.error = status.ToString();
        }
      }
    }
    const auto end = std::chrono::steady_clock::now();
    RuntimeStats stats = runtime.Stats();
    (void)runtime.Stop();
    if (!report.ok) return report;
    if (stats.replica_divergences != 0) {
      report.ok = false;
      report.error = StrCat("unexpected divergences: ",
                            stats.replica_divergences);
      return report;
    }
    if (!rw.worlds[0]->CheckAdtInvariants().ok()) {
      report.ok = false;
      report.error = "ADT invariants violated after drain";
      return report;
    }

    const double seconds =
        std::chrono::duration<double>(end - begin).count();
    if (rep == 0 || seconds < best) best = seconds;
    report.submitted = static_cast<int64_t>(rw.defs.size());
    report.committed = stats.merged.processes_committed;
    report.vote_rounds = stats.vote_rounds;
    report.divergences = stats.replica_divergences;
  }
  report.best_seconds = best;
  report.throughput = best > 0 ? report.committed / best : 0.0;
  return report;
}

// --- Part 2: time-to-next-served-request after losing a shard.

std::string FreshWalDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("bench_replica_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

struct AvailabilityReport {
  // Hot failover (R=3): KillReplica(primary) -> probe served.
  double failover_ms = 0.0;
  int64_t failovers = 0;
  // Cold restart (R=1, file WAL): new runtime + Recover -> probe served.
  // Measured twice: with the default post-replay self-check (PRED +
  // Proc-REC over the recovered histories — by far the dominant term) and
  // raw (verify_recovery = false; the bare WAL replay). The headline
  // compares failover against the RAW number so the claim does not lean
  // on the verification cost.
  double recovery_verified_ms = 0.0;
  double recovery_raw_ms = 0.0;
  int64_t wal_records_replayed = 0;  // proxy: processes in the WAL
  bool ok = true;
  std::string error;
};

AvailabilityReport MeasureAvailability() {
  AvailabilityReport report;

  // Hot failover: best of kRepetitions fresh runs.
  for (int rep = 0; rep < kRepetitions && report.ok; ++rep) {
    ReplicaWorlds rw = MakeReplicaWorlds(3);
    const std::string wal_dir = FreshWalDir(StrCat("failover_", rep));
    ShardedRuntimeOptions options;
    options.num_shards = kShards;
    options.mode = TickMode::kFreeRunning;
    options.log_mode = ShardLogMode::kFile;
    options.wal_dir = wal_dir;
    options.queue_capacity = rw.defs.size();
    options.replication.factor = 3;
    ShardedRuntime runtime(options);
    Status status = RegisterReplicas(&rw, &runtime);
    if (status.ok()) status = runtime.Start();
    if (status.ok()) {
      for (const ProcessDef* def : rw.defs) {
        auto ticket = runtime.Submit(def);
        if (!ticket.ok()) {
          status = ticket.status();
          break;
        }
      }
    }
    if (status.ok()) status = runtime.Drain();
    if (!status.ok()) {
      report.ok = false;
      report.error = StrCat("failover setup: ", status.ToString());
      (void)runtime.Stop();
      std::filesystem::remove_all(wal_dir);
      return report;
    }

    const int primary = runtime.Stats().per_shard_replicas[0].primary;
    const auto begin = std::chrono::steady_clock::now();
    status = runtime.KillReplica(0, primary);
    Result<SubmitTicket> probe(Status::Unavailable("unsubmitted"));
    if (status.ok()) {
      probe = runtime.Submit(rw.probes[rep]);
      if (!probe.ok()) status = probe.status();
    }
    if (status.ok()) {
      auto pid = probe->Await();
      if (!pid.ok()) status = pid.status();
    }
    const auto end = std::chrono::steady_clock::now();
    RuntimeStats stats = runtime.Stats();
    (void)runtime.Drain();
    (void)runtime.Stop();
    std::filesystem::remove_all(wal_dir);
    if (!status.ok()) {
      report.ok = false;
      report.error = StrCat("failover probe: ", status.ToString());
      return report;
    }
    if (stats.failovers < 1) {
      report.ok = false;
      report.error = "killing the primary did not promote a follower";
      return report;
    }
    const double ms =
        std::chrono::duration<double, std::milli>(end - begin).count();
    if (rep == 0 || ms < report.failover_ms) report.failover_ms = ms;
    report.failovers = stats.failovers;
  }

  // Cold restart: same workload, R=1, crash after the work is durable,
  // then measure restart + full WAL replay + first served request.
  // `verify` toggles the default post-replay self-check.
  auto cold_restart = [&report](bool verify, int reps, double* out_ms) {
  for (int rep = 0; rep < reps && report.ok; ++rep) {
    ReplicaWorlds rw = MakeReplicaWorlds(1);
    const std::string wal_dir = FreshWalDir(
        StrCat("recovery_", verify ? "v" : "r", "_", rep));
    ShardedRuntimeOptions options;
    options.num_shards = kShards;
    options.mode = TickMode::kFreeRunning;
    options.log_mode = ShardLogMode::kFile;
    options.wal_dir = wal_dir;
    options.queue_capacity = rw.defs.size();
    options.verify_recovery = verify;
    Status status;
    {
      ShardedRuntime runtime(options);
      status = rw.worlds[0]->RegisterAll(&runtime);
      if (status.ok()) status = runtime.Start();
      if (status.ok()) {
        for (const ProcessDef* def : rw.defs) {
          auto ticket = runtime.Submit(def);
          if (!ticket.ok()) {
            status = ticket.status();
            break;
          }
        }
      }
      if (status.ok()) status = runtime.Drain();
      (void)runtime.Stop();  // crash: the WAL survives, the runtime dies
    }
    if (!status.ok()) {
      report.ok = false;
      report.error = StrCat("cold restart first run (verify=", verify,
                            "): ", status.ToString());
      std::filesystem::remove_all(wal_dir);
      return;
    }

    const auto begin = std::chrono::steady_clock::now();
    ShardedRuntime recovered(options);
    status = rw.worlds[0]->RegisterAll(&recovered);
    if (status.ok()) status = recovered.Start();
    if (status.ok()) status = recovered.Recover(rw.worlds[0]->DefsByName());
    Result<SubmitTicket> probe(Status::Unavailable("unsubmitted"));
    if (status.ok()) {
      probe = recovered.Submit(rw.probes[rep]);
      if (!probe.ok()) status = probe.status();
    }
    if (status.ok()) {
      auto pid = probe->Await();
      if (!pid.ok()) status = pid.status();
    }
    const auto end = std::chrono::steady_clock::now();
    (void)recovered.Drain();
    (void)recovered.Stop();
    std::filesystem::remove_all(wal_dir);
    if (!status.ok()) {
      report.ok = false;
      report.error = StrCat("cold restart probe (verify=", verify, ", rep=",
                            rep, "): ", status.ToString());
      return;
    }
    const double ms =
        std::chrono::duration<double, std::milli>(end - begin).count();
    if (rep == 0 || ms < *out_ms) *out_ms = ms;
    report.wal_records_replayed = static_cast<int64_t>(rw.defs.size());
  }
  };
  // The verified restart is ~three orders slower and stable; one rep is
  // plenty. The raw restart competes with failover, so best-of applies.
  cold_restart(true, 1, &report.recovery_verified_ms);
  cold_restart(false, kRepetitions, &report.recovery_raw_ms);
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::cout << "E24 replicated shards (" << kShards << " shards, "
            << kTenants << " tenants, " << kTenants * kRoundsPerTenant * 3
            << " processes, best of " << kRepetitions
            << " reps, hw threads = " << hw << ")\n";

  std::cout << "\npart 1: commit throughput vs replication factor\n\n";
  std::cout << "  R   committed/submitted   votes   seconds   commit/s   "
               "vs R=1\n";
  std::vector<RunReport> reports;
  double base_throughput = 0.0;
  bool all_ok = true;
  for (int factor : {1, 2, 3}) {
    RunReport report = RunOnce(factor);
    all_ok = all_ok && report.ok;
    if (factor == 1) base_throughput = report.throughput;
    const double relative =
        base_throughput > 0 ? report.throughput / base_throughput : 0.0;
    std::cout << "  " << report.factor << std::setw(12) << report.committed
              << "/" << report.submitted << std::setw(8)
              << report.vote_rounds << std::fixed << std::setprecision(4)
              << std::setw(10) << report.best_seconds << std::setprecision(0)
              << std::setw(11) << report.throughput << std::setprecision(2)
              << std::setw(8) << relative << "x"
              << (report.ok ? "" : StrCat("  [FAILED: ", report.error, "]"))
              << "\n";
    reports.push_back(report);
  }
  std::cout <<
      "\n  expected shape: every replica re-executes the full submission\n"
      "  stream (that redundancy IS the fault model), so R replicas cost\n"
      "  roughly R times the scheduler work plus digest votes; the factor\n"
      "  is bounded below by compute redundancy and worsens once R x\n"
      "  shards exceeds hardware threads.\n";

  std::cout << "\npart 2: time to next served request after losing a "
               "shard's scheduler\n\n";
  AvailabilityReport avail = MeasureAvailability();
  all_ok = all_ok && avail.ok;
  if (avail.ok) {
    std::cout << std::fixed << std::setprecision(3);
    std::cout << "  hot failover  (R=3, promote live follower):        "
              << std::setw(10) << avail.failover_ms << " ms\n";
    std::cout << "  cold restart  (R=1, raw WAL replay):               "
              << std::setw(10) << avail.recovery_raw_ms << " ms  ("
              << avail.wal_records_replayed << " processes replayed)\n";
    std::cout << "  cold restart  (R=1, replay + PRED/Proc-REC check): "
              << std::setw(10) << avail.recovery_verified_ms << " ms\n";
  } else {
    std::cout << "  [FAILED: " << avail.error << "]\n";
  }
  const bool headline_pass =
      avail.ok && avail.failover_ms < avail.recovery_raw_ms;
  const double raw_ratio = avail.failover_ms > 0
                               ? avail.recovery_raw_ms / avail.failover_ms
                               : 0.0;
  std::cout << "\n  headline: failover vs the cheapest cold restart (raw "
               "replay, no self-check): "
            << std::fixed << std::setprecision(1) << raw_ratio
            << "x faster (require strictly faster) "
            << (headline_pass ? "[OK]" : "[FAIL]") << "\n";
  std::cout <<
      "\n  expected shape: failover is a promotion — the follower already\n"
      "  holds the full executed state, so the latency is one round of\n"
      "  bookkeeping; cold restart pays runtime re-construction plus a\n"
      "  WAL replay that grows with history length, and the production\n"
      "  default additionally re-verifies PRED + Proc-REC over the whole\n"
      "  recovered history. The gap widens with workload size.\n";

  const bool pass = all_ok && headline_pass;

  std::ostringstream json;
  bench::JsonWriter writer(json);
  writer.BeginObject();
  writer.Field("benchmark",
               StrCat("bench_replica E24 replicated shards (", kShards,
                      " shards, ", kTenants, " tenants, ",
                      kTenants * kRoundsPerTenant * 3, " processes)"));
  writer.Field(
      "methodology",
      "part 1: free-running ShardedRuntime, closed-loop waves to "
      "quiescence at replication factor 1/2/3 (mirror worlds per replica), "
      "best of 3, throughput = committed / best seconds; part 2: hot "
      "failover = KillReplica(acting primary) to first probe served under "
      "R=3, cold restart = fresh runtime + Start + Recover(full file WAL) "
      "to first probe served under R=1, both best of 3");
  writer.Field("hardware_threads", hw);
  writer.BeginArray("overhead_runs");
  for (const RunReport& report : reports) {
    writer.BeginObject();
    writer.Field("replication_factor", report.factor);
    writer.Field("submitted", report.submitted);
    writer.Field("committed", report.committed);
    writer.Field("vote_rounds", report.vote_rounds);
    writer.Field("divergences", report.divergences);
    writer.Field("best_seconds", report.best_seconds, 6);
    writer.Field("commit_throughput_per_s", report.throughput, 1);
    writer.Field("relative_to_r1",
                 base_throughput > 0
                     ? report.throughput / base_throughput
                     : 0.0,
                 3);
    writer.Field("ok", report.ok);
    if (!report.ok) writer.Field("error", report.error);
    writer.EndObject();
  }
  writer.EndArray();
  writer.BeginObject("availability");
  writer.Field("failover_ms", avail.failover_ms, 3);
  writer.Field("cold_recovery_raw_ms", avail.recovery_raw_ms, 3);
  writer.Field("cold_recovery_verified_ms", avail.recovery_verified_ms, 3);
  writer.Field("speedup_vs_raw", raw_ratio, 2);
  writer.Field("speedup_vs_verified",
               avail.failover_ms > 0
                   ? avail.recovery_verified_ms / avail.failover_ms
                   : 0.0,
               2);
  writer.Field("wal_processes_replayed", avail.wal_records_replayed);
  writer.Field("ok", avail.ok);
  if (!avail.ok) writer.Field("error", avail.error);
  writer.EndObject();
  writer.BeginObject("headline");
  writer.Field("failover_faster_than_cold_recovery", headline_pass);
  writer.Field("pass", pass);
  writer.EndObject();
  writer.EndObject();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
    std::cout << "\n  wrote " << json_path << "\n";
  }
  return pass ? 0 : 1;
}
