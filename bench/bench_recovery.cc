// E13 — crash recovery (§3.3, Def. 8 group abort): recovery work and
// latency as functions of the number of in-flight processes and their
// recovery state mix (B-REC backward vs F-REC forward).

#include <chrono>
#include <iomanip>
#include <iostream>

#include "common/str_util.h"
#include "core/scheduler.h"
#include "workload/process_generator.h"

using namespace tpm;

namespace {

struct RecoveryReport {
  int64_t in_flight = 0;
  int64_t compensations = 0;
  int64_t forward_steps = 0;
  int64_t log_records = 0;
  int64_t micros = 0;
};

RecoveryReport MeasureRecovery(int num_processes, int steps_before_crash,
                               uint64_t seed) {
  SyntheticUniverse universe(3, 8);
  ProcessShape shape;
  shape.items_per_process = 3;
  ProcessGenerator generator(&universe, shape, seed);
  RecoveryLog log;
  TransactionalProcessScheduler scheduler({}, &log);
  (void)universe.RegisterAll(&scheduler);
  std::map<std::string, const ProcessDef*> defs;
  for (int i = 0; i < num_processes; ++i) {
    auto def = generator.Generate(StrCat("r", i));
    if (!def.ok()) continue;
    defs[(*def)->name()] = *def;
    (void)scheduler.Submit(*def);
  }
  bool more = true;
  for (int i = 0; i < steps_before_crash && more; ++i) {
    auto result = scheduler.Step();
    if (!result.ok()) break;
    more = *result;
  }
  RecoveryReport report;
  report.log_records = static_cast<int64_t>(log.size());
  const int64_t compensations_before = scheduler.stats().compensations;
  const int64_t commits_before = scheduler.stats().activities_committed;

  scheduler.Crash();
  auto start = std::chrono::steady_clock::now();
  Status recovered = scheduler.Recover(defs);
  report.micros = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  if (!recovered.ok()) {
    std::cerr << "recovery failed: " << recovered << "\n";
    return report;
  }
  report.in_flight = scheduler.stats().processes_aborted;
  report.compensations = scheduler.stats().compensations -
                         compensations_before;
  report.forward_steps =
      scheduler.stats().activities_committed - commits_before;
  return report;
}

// Periodic checkpointing bounds the log and recovery replay.
struct CheckpointReport {
  size_t final_log_records = 0;
  int64_t recovery_micros = 0;
};

CheckpointReport MeasureWithCheckpoints(int checkpoint_every, uint64_t seed) {
  SyntheticUniverse universe(3, 8);
  ProcessShape shape;
  shape.items_per_process = 3;
  ProcessGenerator generator(&universe, shape, seed);
  RecoveryLog log;
  TransactionalProcessScheduler scheduler({}, &log);
  (void)universe.RegisterAll(&scheduler);
  std::map<std::string, const ProcessDef*> defs;
  // A longer-running mix: 24 processes submitted in waves.
  for (int wave = 0; wave < 4; ++wave) {
    for (int i = 0; i < 6; ++i) {
      auto def = generator.Generate(StrCat("w", wave, "_", i));
      if (!def.ok()) continue;
      defs[(*def)->name()] = *def;
      (void)scheduler.Submit(*def);
    }
    bool more = true;
    for (int step = 0; step < 8 && more; ++step) {
      auto result = scheduler.Step();
      if (!result.ok()) break;
      more = *result;
      if (checkpoint_every > 0 && (step % checkpoint_every) == 0) {
        (void)scheduler.Checkpoint();
      }
    }
  }
  CheckpointReport report;
  report.final_log_records = log.size();
  scheduler.Crash();
  auto start = std::chrono::steady_clock::now();
  Status recovered = scheduler.Recover(defs);
  report.recovery_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  if (!recovered.ok()) std::cerr << "recovery failed: " << recovered << "\n";
  return report;
}

}  // namespace

int main() {
  std::cout << "E13 | crash recovery: group abort of in-flight processes\n";
  std::cout << "  processes  crash@  in-flight  backward  forward  "
               "log-recs  time(us)\n";
  for (int n : {2, 4, 8, 16, 32}) {
    for (int crash_at : {2, 6, 12}) {
      RecoveryReport report = MeasureRecovery(n, crash_at, 40 + n);
      std::cout << "  " << std::setw(9) << n << std::setw(8) << crash_at
                << std::setw(11) << report.in_flight << std::setw(10)
                << report.compensations << std::setw(9)
                << report.forward_steps << std::setw(10)
                << report.log_records << std::setw(10) << report.micros
                << "\n";
    }
  }
  std::cout <<
      "\n  expected shape: early crashes produce mostly backward recovery\n"
      "  (compensations); later crashes increasingly find processes past\n"
      "  their pivot, producing forward recovery work instead; recovery\n"
      "  time grows with in-flight processes and log length.\n";

  std::cout << "\nE13b | log compaction: checkpoint interval vs log size "
               "and recovery time\n";
  std::cout << "  checkpoint-every  log-records  recovery(us)\n";
  for (int every : {0, 8, 4, 2, 1}) {
    CheckpointReport report = MeasureWithCheckpoints(every, 123);
    std::cout << "  " << std::setw(16)
              << (every == 0 ? std::string("never") : std::to_string(every))
              << std::setw(13) << report.final_log_records << std::setw(14)
              << report.recovery_micros << "\n";
  }
  std::cout << "\n  expected shape: more frequent checkpoints keep the log\n"
               "  near the live-state size, bounding recovery replay.\n";
  return 0;
}
