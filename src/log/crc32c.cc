#include "log/crc32c.h"

#include <array>

namespace tpm {

namespace {

// Table for the reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t length, uint32_t seed) {
  const auto& table = Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < length; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

uint32_t MaskCrc32c(uint32_t crc) {
  constexpr uint32_t kMaskDelta = 0xA282EAD8u;
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

uint32_t UnmaskCrc32c(uint32_t masked) {
  constexpr uint32_t kMaskDelta = 0xA282EAD8u;
  uint32_t rot = masked - kMaskDelta;
  return (rot << 15) | (rot >> 17);
}

}  // namespace tpm
