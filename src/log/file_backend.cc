#include "log/file_backend.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/str_util.h"
#include "log/crc32c.h"

namespace tpm {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 masked crc

void PutU32Le(std::string* out, uint32_t value) {
  out->push_back(static_cast<char>(value & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
  out->push_back(static_cast<char>((value >> 16) & 0xFF));
  out->push_back(static_cast<char>((value >> 24) & 0xFF));
}

uint32_t GetU32Le(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::Unavailable(StrCat(op, " failed for ", path, ": ",
                                    std::strerror(errno)));
}

Status WriteFully(int fd, const char* data, size_t length,
                  const std::string& path) {
  size_t written = 0;
  while (written < length) {
    ssize_t n = ::write(fd, data + written, length - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Best-effort fsync of the directory containing `path`, so a rename or a
/// newly created file itself survives a crash.
void SyncParentDir(const std::string& path) {
  std::string dir = ".";
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash + 1);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

std::string FileStorageBackend::EncodeFrame(const std::string& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32Le(&frame, static_cast<uint32_t>(payload.size()));
  PutU32Le(&frame, MaskCrc32c(Crc32c(payload.data(), payload.size())));
  frame.append(payload);
  return frame;
}

FileStorageBackend::FileStorageBackend(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

FileStorageBackend::~FileStorageBackend() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<FileStorageBackend>> FileStorageBackend::Open(
    std::string path) {
  // A compaction that crashed before its rename may leave a stale tmp file;
  // it was never the live log, so it is simply discarded.
  ::unlink((path + ".tmp").c_str());

  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  auto backend =
      std::unique_ptr<FileStorageBackend>(new FileStorageBackend(path, fd));

  // Read the whole file and scan frames.
  std::string contents;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("read", path);
    }
    if (n == 0) break;
    contents.append(buf, static_cast<size_t>(n));
  }

  size_t offset = 0;
  while (offset < contents.size()) {
    if (contents.size() - offset < kFrameHeaderBytes) break;  // torn header
    const auto* p =
        reinterpret_cast<const unsigned char*>(contents.data() + offset);
    uint32_t length = GetU32Le(p);
    uint32_t stored_crc = UnmaskCrc32c(GetU32Le(p + 4));
    if (contents.size() - offset - kFrameHeaderBytes < length) {
      break;  // torn payload
    }
    const char* payload = contents.data() + offset + kFrameHeaderBytes;
    if (Crc32c(payload, length) != stored_crc) {
      // A bad CRC at the tail is a torn write; anywhere else it is real
      // corruption of the durable prefix, which recovery must not paper
      // over (replaying records past a hole breaks the prefix guarantee).
      if (offset + kFrameHeaderBytes + length < contents.size()) {
        return Status::InvalidArgument(
            StrCat("corrupt log record at offset ", offset, " of ", path));
      }
      break;
    }
    backend->records_.emplace_back(payload, length);
    offset += kFrameHeaderBytes + length;
  }

  if (offset < contents.size()) {
    backend->open_stats_.torn_bytes_truncated = contents.size() - offset;
    if (::ftruncate(fd, static_cast<off_t>(offset)) != 0) {
      return ErrnoStatus("ftruncate", path);
    }
    if (::fsync(fd) != 0) return ErrnoStatus("fsync", path);
  }
  backend->open_stats_.records_recovered = backend->records_.size();
  backend->durable_records_ = backend->records_.size();
  backend->synced_bytes_ = offset;
  return backend;
}

Status FileStorageBackend::Append(std::string record) {
  if (fd_ < 0) return Status::Unavailable("log file backend is closed");
  pending_.append(EncodeFrame(record));
  records_.push_back(std::move(record));
  return Status::OK();
}

Status FileStorageBackend::Sync() {
  if (fd_ < 0) return Status::Unavailable("log file backend is closed");
  if (!pending_.empty()) {
    if (::lseek(fd_, static_cast<off_t>(synced_bytes_), SEEK_SET) < 0) {
      return ErrnoStatus("lseek", path_);
    }
    TPM_RETURN_IF_ERROR(WriteFully(fd_, pending_.data(), pending_.size(),
                                   path_));
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
    synced_bytes_ += pending_.size();
    pending_.clear();
  }
  durable_records_ = records_.size();
  return Status::OK();
}

Status FileStorageBackend::ReplaceAll(const std::vector<std::string>& records) {
  if (fd_ < 0) return Status::Unavailable("log file backend is closed");
  const std::string tmp_path = path_ + ".tmp";
  int tmp_fd = ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) return ErrnoStatus("open", tmp_path);
  std::string encoded;
  for (const std::string& record : records) {
    encoded.append(EncodeFrame(record));
  }
  Status write_status = WriteFully(tmp_fd, encoded.data(), encoded.size(),
                                   tmp_path);
  if (write_status.ok() && ::fsync(tmp_fd) != 0) {
    write_status = ErrnoStatus("fsync", tmp_path);
  }
  ::close(tmp_fd);
  if (!write_status.ok()) {
    ::unlink(tmp_path.c_str());
    return write_status;
  }
  // The swap: after the rename the new log is the live log, atomically.
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return ErrnoStatus("rename", tmp_path);
  }
  SyncParentDir(path_);
  // Our descriptor still points at the replaced inode; reopen the new one.
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_RDWR, 0644);
  if (fd_ < 0) return ErrnoStatus("open", path_);
  records_ = records;
  durable_records_ = records_.size();
  synced_bytes_ = encoded.size();
  pending_.clear();
  return Status::OK();
}

void FileStorageBackend::SimulateCrash() {
  // Nothing past the durable prefix ever reached the file; dropping the
  // staged bytes and the volatile record tail is the whole crash.
  pending_.clear();
  records_.resize(durable_records_);
}

void FileStorageBackend::SimulateCrashDuringSync() {
  // A crash in the middle of the Sync write: a prefix of the staged bytes
  // lands in the file without the fsync — the torn tail the next Open()
  // must truncate. The backend object is dead afterwards (the harness
  // reopens the path, as a restarted process would).
  if (fd_ >= 0 && !pending_.empty()) {
    size_t torn = pending_.size() / 2;
    if (torn == 0) torn = 1;
    if (::lseek(fd_, static_cast<off_t>(synced_bytes_), SEEK_SET) >= 0) {
      (void)WriteFully(fd_, pending_.data(), torn, path_);
    }
  }
  pending_.clear();
  records_.resize(durable_records_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace tpm
