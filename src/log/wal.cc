#include "log/wal.h"

#include <utility>

#include "common/str_util.h"
#include "log/memory_backend.h"

namespace tpm {

Wal::Wal(bool synchronous)
    : backend_(std::make_unique<MemoryStorageBackend>()),
      synchronous_(synchronous) {}

Wal::Wal(std::unique_ptr<StorageBackend> backend, bool synchronous)
    : backend_(std::move(backend)), synchronous_(synchronous) {}

bool Wal::Hit(const char* site, bool during_sync) {
  if (listener_ == nullptr || !listener_->OnCrashPoint(site)) return false;
  crashed_ = true;
  if (during_sync) {
    backend_->SimulateCrashDuringSync();
  } else {
    backend_->SimulateCrash();
  }
  return true;
}

Status Wal::SyncWithHooks() {
  if (Hit(kWalCrashSiteSync, /*during_sync=*/true)) {
    return Status::Unavailable("wal crashed during sync");
  }
  TPM_RETURN_IF_ERROR(backend_->Sync());
  if (Hit(kWalCrashSiteSynced, /*during_sync=*/false)) {
    return Status::Unavailable("wal crashed after sync");
  }
  return Status::OK();
}

Status Wal::Append(std::string record) {
  if (crashed_) return Status::Unavailable("wal is crashed");
  if (Hit(kWalCrashSiteAppend, /*during_sync=*/false)) {
    return Status::Unavailable("wal crashed before append");
  }
  TPM_RETURN_IF_ERROR(backend_->Append(std::move(record)));
  if (synchronous_) return SyncWithHooks();
  return Status::OK();
}

Status Wal::Flush() {
  if (crashed_) return Status::Unavailable("wal is crashed");
  return SyncWithHooks();
}

Status Wal::ReplaceAll(const std::vector<std::string>& records) {
  if (crashed_) return Status::Unavailable("wal is crashed");
  if (Hit(kWalCrashSiteReplace, /*during_sync=*/false)) {
    return Status::Unavailable("wal crashed before compaction swap");
  }
  TPM_RETURN_IF_ERROR(backend_->ReplaceAll(records));
  if (Hit(kWalCrashSiteReplaced, /*during_sync=*/false)) {
    return Status::Unavailable("wal crashed after compaction swap");
  }
  return Status::OK();
}

void Wal::Crash() {
  backend_->SimulateCrash();
  crashed_ = false;
}

}  // namespace tpm
