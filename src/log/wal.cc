#include "log/wal.h"

namespace tpm {

void Wal::Append(std::string record) {
  records_.push_back(std::move(record));
  if (synchronous_) durable_size_ = records_.size();
}

}  // namespace tpm
