#ifndef TPM_LOG_FILE_BACKEND_H_
#define TPM_LOG_FILE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "log/storage_backend.h"

namespace tpm {

/// File-backed storage: the log that actually survives a process death.
///
/// On-disk format is a sequence of frames, each
///
///   [u32 payload_length (LE)] [u32 masked crc32c(payload) (LE)] [payload]
///
/// Appends are staged in memory and reach the file only at Sync(), which
/// writes the staged bytes and fsyncs — the explicit durability boundary.
/// Open() scans the file frame by frame; a trailing partial frame or a
/// frame whose CRC does not match (a torn write from a crash mid-sync) is
/// truncated away, restoring the longest valid prefix. Corruption *before*
/// the last valid frame is not silently repaired: it fails Open, since
/// dropping a middle record would violate the prefix-replay guarantee.
///
/// ReplaceAll (log compaction) uses write-new-then-rename: the replacement
/// is written to `path.tmp`, fsynced, and renamed over the log, so a crash
/// leaves either the complete old or the complete new log.
class FileStorageBackend : public StorageBackend {
 public:
  struct OpenStats {
    /// Valid records recovered from the file.
    size_t records_recovered = 0;
    /// Trailing bytes dropped because they formed a torn or corrupt tail.
    size_t torn_bytes_truncated = 0;
  };

  /// Opens (creating if absent) the log at `path`, recovering its valid
  /// record prefix and truncating any torn tail. A stale `path.tmp` from a
  /// compaction that crashed before the rename is removed.
  static Result<std::unique_ptr<FileStorageBackend>> Open(std::string path);

  ~FileStorageBackend() override;

  FileStorageBackend(const FileStorageBackend&) = delete;
  FileStorageBackend& operator=(const FileStorageBackend&) = delete;

  Status Append(std::string record) override;
  Status Sync() override;
  Status ReplaceAll(const std::vector<std::string>& records) override;
  const std::vector<std::string>& records() const override { return records_; }
  size_t durable_size() const override { return durable_records_; }
  void SimulateCrash() override;
  void SimulateCrashDuringSync() override;

  const std::string& path() const { return path_; }
  const OpenStats& open_stats() const { return open_stats_; }
  /// File offset of the durable prefix (what an fsync has confirmed).
  uint64_t synced_bytes() const { return synced_bytes_; }

  /// Encodes one record as a frame (exposed for tests that hand-craft or
  /// corrupt log files).
  static std::string EncodeFrame(const std::string& payload);

 private:
  FileStorageBackend(std::string path, int fd);

  std::string path_;
  int fd_ = -1;
  std::vector<std::string> records_;
  size_t durable_records_ = 0;
  /// Encoded frames staged by Append but not yet written + fsynced.
  std::string pending_;
  uint64_t synced_bytes_ = 0;
  OpenStats open_stats_;
};

}  // namespace tpm

#endif  // TPM_LOG_FILE_BACKEND_H_
