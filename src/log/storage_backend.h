#ifndef TPM_LOG_STORAGE_BACKEND_H_
#define TPM_LOG_STORAGE_BACKEND_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace tpm {

/// Observer of WAL crash points, used for deterministic fault injection.
/// The WAL calls OnCrashPoint(site) immediately before each
/// durability-relevant action (append, sync, compaction swap, ...).
/// Returning true simulates a process death at that instant: the pending
/// action does not take effect, the volatile tail is lost per the backend's
/// durability semantics, and every subsequent log operation fails with
/// kUnavailable until the log is restarted (Wal::Crash) or reopened from
/// stable storage.
class CrashPointListener {
 public:
  virtual ~CrashPointListener() = default;
  virtual bool OnCrashPoint(const char* site) = 0;
};

/// Stable storage under the WAL. Implementations must guarantee:
///
///  * Append stages a record that may stay volatile until Sync();
///  * after Sync() returns OK, every staged record survives a crash;
///  * ReplaceAll is atomic — a crash at any point leaves either the
///    complete old contents or the complete new contents, never a
///    truncated mixture;
///  * loss from a crash is always a suffix of the append order (the
///    recovery correctness argument relies on replaying a prefix).
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Stages one record; volatile until Sync().
  virtual Status Append(std::string record) = 0;

  /// Durability boundary (fsync for file-backed storage).
  virtual Status Sync() = 0;

  /// Atomically replaces the entire contents with `records`, durable as a
  /// unit (build-then-swap / write-new-file-then-rename).
  virtual Status ReplaceAll(const std::vector<std::string>& records) = 0;

  /// All records in append order: durable prefix first, then the volatile
  /// tail.
  virtual const std::vector<std::string>& records() const = 0;

  /// Number of records guaranteed to survive a crash.
  virtual size_t durable_size() const = 0;

  size_t size() const { return records().size(); }

  /// Simulates a crash at the storage layer: the volatile tail is lost,
  /// durable records survive. The backend stays usable (it models the
  /// restarted process reading the same stable storage).
  virtual void SimulateCrash() = 0;

  /// Simulates a crash in the middle of a Sync(): in addition to losing
  /// the volatile tail, a file-backed implementation may leave a torn
  /// (partially written) record on stable storage, which the next Open()
  /// must detect and truncate. Defaults to SimulateCrash().
  virtual void SimulateCrashDuringSync() { SimulateCrash(); }
};

}  // namespace tpm

#endif  // TPM_LOG_STORAGE_BACKEND_H_
