#include "log/memory_backend.h"

#include <utility>

namespace tpm {

Status MemoryStorageBackend::Append(std::string record) {
  records_.push_back(std::move(record));
  return Status::OK();
}

Status MemoryStorageBackend::Sync() {
  durable_size_ = records_.size();
  return Status::OK();
}

Status MemoryStorageBackend::ReplaceAll(
    const std::vector<std::string>& records) {
  // Build-then-swap: the replacement becomes visible (and durable) as one
  // unit, so a crash during compaction leaves either the old or the new
  // contents — never a truncated checkpoint.
  std::vector<std::string> next = records;
  records_.swap(next);
  durable_size_ = records_.size();
  return Status::OK();
}

void MemoryStorageBackend::SimulateCrash() { records_.resize(durable_size_); }

}  // namespace tpm
