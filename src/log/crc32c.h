#ifndef TPM_LOG_CRC32C_H_
#define TPM_LOG_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace tpm {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum used
/// by the file-backed log's record framing. Software table implementation;
/// `seed` allows incremental computation over split buffers.
uint32_t Crc32c(const void* data, size_t length, uint32_t seed = 0);

/// Masked CRC in the LevelDB/RocksDB style: storing the raw CRC of data
/// that itself embeds CRCs is error-prone (a frame whose payload is a frame
/// would verify accidentally); the mask makes stored checksums distinct
/// from computed ones.
uint32_t MaskCrc32c(uint32_t crc);
uint32_t UnmaskCrc32c(uint32_t masked);

}  // namespace tpm

#endif  // TPM_LOG_CRC32C_H_
