#ifndef TPM_LOG_WAL_H_
#define TPM_LOG_WAL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "log/storage_backend.h"

namespace tpm {

/// Crash-point site names the WAL reports to a CrashPointListener, in the
/// order they occur within one operation. A fault-injection sweep arms one
/// occurrence and asserts recovery from the induced loss.
inline constexpr const char* kWalCrashSiteAppend = "wal/append";
inline constexpr const char* kWalCrashSiteSync = "wal/sync";
inline constexpr const char* kWalCrashSiteSynced = "wal/synced";
inline constexpr const char* kWalCrashSiteReplace = "wal/replace";
inline constexpr const char* kWalCrashSiteReplaced = "wal/replaced";

/// Append-only write-ahead log over a StorageBackend, with an explicit
/// durability boundary.
///
/// Records are strings (serialization is the caller's concern). In
/// synchronous mode every successful Append is immediately durable; in
/// asynchronous mode appends stay volatile until Flush() — the usual WAL
/// trade-off between commit latency and loss window. The default backend
/// is in-memory (simulated stable storage); construct with a
/// FileStorageBackend for a log that survives a real process death.
///
/// Fault injection: an attached CrashPointListener is consulted before and
/// after each durability-relevant action. When it triggers, the WAL
/// simulates a crash at that instant — the pending action is lost, the
/// volatile tail is dropped, and every subsequent operation fails with
/// kUnavailable until Crash() is called (modeling the restart that reads
/// stable storage) or the backend is reopened from disk.
class Wal {
 public:
  explicit Wal(bool synchronous = true);
  Wal(std::unique_ptr<StorageBackend> backend, bool synchronous = true);

  /// Appends one record. Durable on return in synchronous mode.
  Status Append(std::string record);

  /// Makes all appended records durable.
  Status Flush();

  /// Log compaction: atomically replaces the whole contents with `records`,
  /// durable as a unit — a crash at any point leaves either the complete
  /// old or the complete new contents.
  Status ReplaceAll(const std::vector<std::string>& records);

  Status Clear() { return ReplaceAll({}); }

  /// Simulates a crash-and-restart of the logging component: the unflushed
  /// tail is lost, durable records survive, and the log is usable again
  /// (an injected crash leaves it unusable until this is called).
  void Crash();

  /// All records, durable prefix first.
  const std::vector<std::string>& records() const {
    return backend_->records();
  }
  size_t durable_size() const { return backend_->durable_size(); }
  size_t size() const { return backend_->size(); }
  bool synchronous() const { return synchronous_; }

  /// True after an injected crash, until Crash() restarts the log.
  bool crashed() const { return crashed_; }

  void SetCrashPointListener(CrashPointListener* listener) {
    listener_ = listener;
  }

  StorageBackend* backend() { return backend_.get(); }

 private:
  /// Consults the listener; on trigger performs the crash (`during_sync`
  /// selects the torn-tail variant) and returns true.
  bool Hit(const char* site, bool during_sync);
  Status SyncWithHooks();

  std::unique_ptr<StorageBackend> backend_;
  bool synchronous_;
  bool crashed_ = false;
  CrashPointListener* listener_ = nullptr;
};

}  // namespace tpm

#endif  // TPM_LOG_WAL_H_
