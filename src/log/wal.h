#ifndef TPM_LOG_WAL_H_
#define TPM_LOG_WAL_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace tpm {

/// Append-only write-ahead log with an explicit durability boundary.
///
/// Records are strings (serialization is the caller's concern). In
/// synchronous mode every append is immediately durable; in asynchronous
/// mode appends stay volatile until Flush(), and Crash() discards the
/// unflushed tail — modeling the usual WAL trade-off between commit latency
/// and loss window.
class Wal {
 public:
  explicit Wal(bool synchronous = true) : synchronous_(synchronous) {}

  void Append(std::string record);
  void Flush() { durable_size_ = records_.size(); }

  /// Simulates a crash of the logging component: the unflushed tail is
  /// lost; durable records survive.
  void Crash() { records_.resize(durable_size_); }

  /// All records, durable prefix first.
  const std::vector<std::string>& records() const { return records_; }
  size_t durable_size() const { return durable_size_; }
  size_t size() const { return records_.size(); }

  void Clear() {
    records_.clear();
    durable_size_ = 0;
  }

 private:
  bool synchronous_;
  std::vector<std::string> records_;
  size_t durable_size_ = 0;
};

}  // namespace tpm

#endif  // TPM_LOG_WAL_H_
