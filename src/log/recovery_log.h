#ifndef TPM_LOG_RECOVERY_LOG_H_
#define TPM_LOG_RECOVERY_LOG_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "log/wal.h"

namespace tpm {

/// One record of the process scheduler's recovery log. The log captures
/// exactly the information needed to recompute every process's execution
/// state (and hence its completion C(P), §3.1) after a scheduler crash.
struct SchedulerLogRecord {
  enum class Kind {
    kProcessBegin,        // process admitted (def identified by name)
    kActivityCommitted,   // original activity committed in its subsystem
    kActivityCompensated, // compensating activity executed
    kProcessCommitted,    // C_i
    kProcessAborted,      // A_i (its completion has been fully executed)
  };

  Kind kind = Kind::kProcessBegin;
  ProcessId pid;
  ActivityId activity;     // for activity records
  std::string def_name;    // for kProcessBegin
  int64_t param = 0;       // for kProcessBegin: the process's parameter

  std::string Serialize() const;
  static Result<SchedulerLogRecord> Parse(const std::string& line);

  friend bool operator==(const SchedulerLogRecord& a,
                         const SchedulerLogRecord& b) {
    return a.kind == b.kind && a.pid == b.pid && a.activity == b.activity &&
           a.def_name == b.def_name && a.param == b.param;
  }
};

/// Typed wrapper over the WAL used by the scheduler. Synchronous by
/// default: a record is durable once Append returns, which is what the
/// correctness argument for crash recovery assumes (an activity is never
/// committed in a subsystem before its log record is durable).
class RecoveryLog {
 public:
  explicit RecoveryLog(bool synchronous = true) : wal_(synchronous) {}

  void Append(const SchedulerLogRecord& record) {
    wal_.Append(record.Serialize());
  }
  void Flush() { wal_.Flush(); }
  void Crash() { wal_.Crash(); }
  void Clear() { wal_.Clear(); }

  /// Log compaction: atomically replaces the whole log with `records` (a
  /// checkpoint of the live state written by the scheduler). Modeled after
  /// the write-new-file-then-rename idiom: the replacement is durable as a
  /// unit.
  void ReplaceAll(const std::vector<SchedulerLogRecord>& records);

  size_t size() const { return wal_.size(); }

  /// Parses all durable records.
  Result<std::vector<SchedulerLogRecord>> Records() const;

 private:
  Wal wal_;
};

}  // namespace tpm

#endif  // TPM_LOG_RECOVERY_LOG_H_
