#ifndef TPM_LOG_RECOVERY_LOG_H_
#define TPM_LOG_RECOVERY_LOG_H_

#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "log/wal.h"

namespace tpm {

/// One record of the process scheduler's recovery log. The log captures
/// exactly the information needed to recompute every process's execution
/// state (and hence its completion C(P), §3.1) after a scheduler crash.
struct SchedulerLogRecord {
  enum class Kind {
    kProcessBegin,        // process admitted (def identified by name)
    kActivityCommitted,   // original activity committed in its subsystem
    kActivityCompensated, // compensating activity executed
    kProcessCommitted,    // C_i
    kProcessAborted,      // A_i (its completion has been fully executed)
    /// Cross-shard prepare vote (Lemma 1 generalized to shards): one record
    /// per still-prepared branch of a held sub-process, with
    /// def_name = "<subsystem_id>:<tx_id>" and param = the branch's return
    /// value, followed by a vote-marker record carrying an invalid
    /// activity id. The marker's durable presence means the sub-process
    /// voted "prepared"; recovery force-commits the recorded branches iff
    /// the coordinator log holds a commit decision for the spanning
    /// process, and presumes abort otherwise.
    kCommitHeld,
  };

  Kind kind = Kind::kProcessBegin;
  ProcessId pid;
  ActivityId activity;     // for activity records
  std::string def_name;    // for kProcessBegin
  int64_t param = 0;       // for kProcessBegin: the process's parameter

  std::string Serialize() const;
  /// Parses one serialized record. Never throws: corrupted fields (bad
  /// kind token, non-numeric or out-of-range ids) yield InvalidArgument.
  static Result<SchedulerLogRecord> Parse(const std::string& line);

  friend bool operator==(const SchedulerLogRecord& a,
                         const SchedulerLogRecord& b) {
    return a.kind == b.kind && a.pid == b.pid && a.activity == b.activity &&
           a.def_name == b.def_name && a.param == b.param;
  }
};

/// Typed wrapper over the WAL used by the scheduler. Synchronous by
/// default: a record is durable once Append returns OK.
///
/// Logging discipline (what the durability boundary actually guarantees —
/// see DESIGN.md "Durable recovery log"): forward activities are logged
/// *after* they commit in their subsystem, as accomplished facts, so a
/// crash can leave a committed-in-subsystem-but-unlogged activity whose
/// effect recovery cannot see (an orphaned forward effect; in synchronous
/// mode the window is one in-flight record). Compensations are logged
/// *write-ahead*, durable before the compensating activity is invoked, so
/// recovery never re-applies an inverse — the failure mode that, unlike an
/// orphan, would corrupt subsystem state (double-compensation).
class RecoveryLog {
 public:
  explicit RecoveryLog(bool synchronous = true) : wal_(synchronous) {}
  /// A log over explicit stable storage (e.g. a FileStorageBackend opened
  /// from the on-disk log of a previous incarnation).
  RecoveryLog(std::unique_ptr<StorageBackend> backend,
              bool synchronous = true)
      : wal_(std::move(backend), synchronous) {}

  Status Append(const SchedulerLogRecord& record) {
    return wal_.Append(record.Serialize());
  }
  Status Flush() { return wal_.Flush(); }
  void Crash() { wal_.Crash(); }
  Status Clear() { return wal_.Clear(); }

  /// Log compaction: atomically replaces the whole log with `records` (a
  /// checkpoint of the live state written by the scheduler), durable as a
  /// unit via the backend's build-then-swap / write-new-then-rename path —
  /// a crash mid-compaction leaves either the complete old log or the
  /// complete checkpoint, never a truncated mixture.
  Status ReplaceAll(const std::vector<SchedulerLogRecord>& records);

  size_t size() const { return wal_.size(); }

  /// Parses all durable records.
  Result<std::vector<SchedulerLogRecord>> Records() const;

  /// The underlying WAL, exposed for fault injection and backend access.
  Wal* wal() { return &wal_; }

 private:
  Wal wal_;
};

}  // namespace tpm

#endif  // TPM_LOG_RECOVERY_LOG_H_
