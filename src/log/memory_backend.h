#ifndef TPM_LOG_MEMORY_BACKEND_H_
#define TPM_LOG_MEMORY_BACKEND_H_

#include <string>
#include <vector>

#include "log/storage_backend.h"

namespace tpm {

/// In-memory storage backend: "stable storage" is a second vector holding
/// the synced prefix length. Used by tests, benchmarks and simulations
/// where real durability is not needed but the durability *boundary* must
/// behave exactly like the file backend's.
class MemoryStorageBackend : public StorageBackend {
 public:
  Status Append(std::string record) override;
  Status Sync() override;
  Status ReplaceAll(const std::vector<std::string>& records) override;
  const std::vector<std::string>& records() const override { return records_; }
  size_t durable_size() const override { return durable_size_; }
  void SimulateCrash() override;

 private:
  std::vector<std::string> records_;
  size_t durable_size_ = 0;
};

}  // namespace tpm

#endif  // TPM_LOG_MEMORY_BACKEND_H_
