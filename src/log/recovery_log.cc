#include "log/recovery_log.h"

#include "common/str_util.h"

namespace tpm {

namespace {

const char* KindToken(SchedulerLogRecord::Kind kind) {
  switch (kind) {
    case SchedulerLogRecord::Kind::kProcessBegin:
      return "BEGIN";
    case SchedulerLogRecord::Kind::kActivityCommitted:
      return "ACT";
    case SchedulerLogRecord::Kind::kActivityCompensated:
      return "COMP";
    case SchedulerLogRecord::Kind::kProcessCommitted:
      return "COMMIT";
    case SchedulerLogRecord::Kind::kProcessAborted:
      return "ABORT";
    case SchedulerLogRecord::Kind::kCommitHeld:
      return "HELD";
  }
  return "?";
}

Result<SchedulerLogRecord::Kind> ParseKind(const std::string& token) {
  if (token == "BEGIN") return SchedulerLogRecord::Kind::kProcessBegin;
  if (token == "ACT") return SchedulerLogRecord::Kind::kActivityCommitted;
  if (token == "COMP") return SchedulerLogRecord::Kind::kActivityCompensated;
  if (token == "COMMIT") return SchedulerLogRecord::Kind::kProcessCommitted;
  if (token == "ABORT") return SchedulerLogRecord::Kind::kProcessAborted;
  if (token == "HELD") return SchedulerLogRecord::Kind::kCommitHeld;
  return Status::InvalidArgument(StrCat("unknown log record kind: ", token));
}

}  // namespace

std::string SchedulerLogRecord::Serialize() const {
  return StrCat(KindToken(kind), "|", pid.value(), "|", activity.value(), "|",
                param, "|", def_name);
}

Result<SchedulerLogRecord> SchedulerLogRecord::Parse(const std::string& line) {
  std::vector<std::string> parts = StrSplit(line, '|');
  if (parts.size() < 5) {
    return Status::InvalidArgument(StrCat("malformed log record: ", line));
  }
  SchedulerLogRecord record;
  TPM_ASSIGN_OR_RETURN(record.kind, ParseKind(parts[0]));
  TPM_ASSIGN_OR_RETURN(int64_t pid, ParseInt64(parts[1]));
  TPM_ASSIGN_OR_RETURN(int64_t activity, ParseInt64(parts[2]));
  TPM_ASSIGN_OR_RETURN(record.param, ParseInt64(parts[3]));
  record.pid = ProcessId(pid);
  record.activity = ActivityId(activity);
  // The def name may itself contain '|'; rejoin the remaining fields.
  record.def_name = parts[4];
  for (size_t i = 5; i < parts.size(); ++i) {
    record.def_name += "|" + parts[i];
  }
  return record;
}

Status RecoveryLog::ReplaceAll(const std::vector<SchedulerLogRecord>& records) {
  std::vector<std::string> lines;
  lines.reserve(records.size());
  for (const SchedulerLogRecord& record : records) {
    lines.push_back(record.Serialize());
  }
  return wal_.ReplaceAll(lines);
}

Result<std::vector<SchedulerLogRecord>> RecoveryLog::Records() const {
  std::vector<SchedulerLogRecord> records;
  const auto& lines = wal_.records();
  for (size_t i = 0; i < wal_.durable_size(); ++i) {
    TPM_ASSIGN_OR_RETURN(SchedulerLogRecord record,
                         SchedulerLogRecord::Parse(lines[i]));
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace tpm
