#include "agent/coordination_agent.h"

#include "common/str_util.h"

namespace tpm {

CoordinationAgent::CoordinationAgent(SubsystemId id, std::string name,
                                     NonTransactionalApp* app)
    : id_(id), name_(std::move(name)), app_(app) {}

Status CoordinationAgent::RegisterAgentService(AgentService service) {
  if (service.make_op == nullptr) {
    return Status::InvalidArgument(
        StrCat("agent service ", service.name, " lacks an operation"));
  }
  // Mirror the agent service into a ServiceRegistry entry so that conflict
  // derivation (per resource) works exactly as for KV subsystems.
  ServiceDef mirror;
  mirror.id = service.id;
  mirror.name = service.name;
  mirror.read_set = {service.resource};
  mirror.write_set = {service.resource};
  mirror.body = [](KvStore*, const ServiceRequest&, int64_t* ret) {
    *ret = 0;
    return Status::OK();
  };
  TPM_RETURN_IF_ERROR(registry_.Register(std::move(mirror)));
  ServiceId sid = service.id;
  agent_services_.emplace(sid, std::move(service));
  return Status::OK();
}

Result<InvocationOutcome> CoordinationAgent::Invoke(
    ServiceId service, const ServiceRequest& request) {
  auto it = agent_services_.find(service);
  if (it == agent_services_.end()) {
    return Status::NotFound(StrCat("unknown agent service ", service));
  }
  if (WouldBlock(service)) {
    return Status::Unavailable(
        StrCat("resource ", it->second.resource, " locked"));
  }
  app_->Apply(it->second.make_op(request));
  return InvocationOutcome{static_cast<int64_t>(app_->size())};
}

Result<PreparedHandle> CoordinationAgent::InvokePrepared(
    ServiceId service, const ServiceRequest& request) {
  auto it = agent_services_.find(service);
  if (it == agent_services_.end()) {
    return Status::NotFound(StrCat("unknown agent service ", service));
  }
  if (WouldBlock(service)) {
    return Status::Unavailable(
        StrCat("resource ", it->second.resource, " locked"));
  }
  TxId tx(next_tx_++);
  prepared_[tx] = Prepared{it->second.make_op(request), it->second.resource};
  ++locked_resources_[it->second.resource];
  return PreparedHandle{tx, static_cast<int64_t>(app_->size())};
}

Status CoordinationAgent::CommitPrepared(TxId tx) {
  auto it = prepared_.find(tx);
  if (it == prepared_.end()) {
    return Status::NotFound(StrCat("unknown prepared transaction ", tx));
  }
  app_->Apply(it->second.buffered_op);
  if (--locked_resources_[it->second.resource] == 0) {
    locked_resources_.erase(it->second.resource);
  }
  prepared_.erase(it);
  return Status::OK();
}

Status CoordinationAgent::AbortPrepared(TxId tx) {
  auto it = prepared_.find(tx);
  if (it == prepared_.end()) {
    return Status::NotFound(StrCat("unknown prepared transaction ", tx));
  }
  if (--locked_resources_[it->second.resource] == 0) {
    locked_resources_.erase(it->second.resource);
  }
  prepared_.erase(it);
  return Status::OK();
}

Status CoordinationAgent::AbortAllPrepared() {
  prepared_.clear();
  locked_resources_.clear();
  return Status::OK();
}

bool CoordinationAgent::WouldBlock(ServiceId service) const {
  auto it = agent_services_.find(service);
  if (it == agent_services_.end()) return false;
  return locked_resources_.count(it->second.resource) > 0;
}

}  // namespace tpm
