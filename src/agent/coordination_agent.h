#ifndef TPM_AGENT_COORDINATION_AGENT_H_
#define TPM_AGENT_COORDINATION_AGENT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "subsystem/kv_subsystem.h"

namespace tpm {

/// A non-transactional application: arbitrary operations over a mutable
/// string journal, with no atomicity, no isolation, and no undo of its own.
/// Stands in for the legacy applications of the CIM scenario (§2).
class NonTransactionalApp {
 public:
  /// Applies an operation; the app offers no way to undo it.
  void Apply(const std::string& op) { journal_.push_back(op); }

  const std::vector<std::string>& journal() const { return journal_; }
  size_t size() const { return journal_.size(); }

  /// Used only by the agent's undo implementation.
  void Truncate(size_t size) {
    if (size < journal_.size()) journal_.resize(size);
  }

 private:
  std::vector<std::string> journal_;
};

/// Transactional coordination agent (§2.3): wraps a non-transactional
/// application so it can participate as a transactional subsystem —
/// providing atomic service invocations, compensation, and the prepared
/// state of a two-phase commit protocol.
///
/// Atomicity is implemented by deferred application: a prepared invocation
/// buffers the operation inside the agent and locks the touched application
/// resource; only CommitPrepared forwards the operation to the app, and
/// AbortPrepared simply discards the buffer — the app never sees
/// uncommitted effects. Compensation is expressed as ordinary (forward)
/// agent services that semantically undo earlier ones. This works because
/// the agent is the application's only client and serializes access per
/// resource.
class CoordinationAgent : public Subsystem {
 public:
  /// An operation the agent can execute against the wrapped app.
  struct AgentService {
    ServiceId id;
    std::string name;
    /// Produces the journal entry (the "effect") for a request.
    std::function<std::string(const ServiceRequest&)> make_op;
    /// Services that touch the same application resource conflict.
    std::string resource;
  };

  CoordinationAgent(SubsystemId id, std::string name, NonTransactionalApp* app);

  SubsystemId id() const override { return id_; }
  const std::string& name() const override { return name_; }
  const ServiceRegistry& services() const override { return registry_; }

  Status RegisterAgentService(AgentService service);

  Result<InvocationOutcome> Invoke(ServiceId service,
                                   const ServiceRequest& request) override;
  Result<PreparedHandle> InvokePrepared(ServiceId service,
                                        const ServiceRequest& request) override;
  Status CommitPrepared(TxId tx) override;
  Status AbortPrepared(TxId tx) override;
  bool WouldBlock(ServiceId service) const override;
  Status AbortAllPrepared() override;

 private:
  struct Prepared {
    std::string buffered_op;  // applied to the app only on commit
    std::string resource;
  };

  SubsystemId id_;
  std::string name_;
  NonTransactionalApp* app_;
  ServiceRegistry registry_;  // mirrors agent services for conflict derivation
  std::map<ServiceId, AgentService> agent_services_;
  std::map<TxId, Prepared> prepared_;  // insertion-ordered by TxId
  std::map<std::string, int> locked_resources_;
  int64_t next_tx_ = 1;
};

}  // namespace tpm

#endif  // TPM_AGENT_COORDINATION_AGENT_H_
