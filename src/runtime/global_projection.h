#ifndef TPM_RUNTIME_GLOBAL_PROJECTION_H_
#define TPM_RUNTIME_GLOBAL_PROJECTION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/process.h"
#include "core/schedule.h"

namespace tpm {

/// How one per-shard sub-process of a spanning process maps back into the
/// original (global) definition. Keyed by the sub-definition's name —
/// sub-definitions are unique per spanning instance ("<def>@g<gsn>/s<k>"),
/// so the name identifies both the span and the slice.
struct SpanSubProjection {
  /// Global serial number of the spanning process. All sub-processes of
  /// one gsn merge into ONE global process.
  int64_t gsn = -1;
  /// The original (unsplit) definition; becomes the global process's def.
  const ProcessDef* original = nullptr;
  /// Sub-activity id -> activity id in the original definition.
  std::map<ActivityId, ActivityId> to_original;
  /// Sub-definition names whose FORWARD events must all have been merged
  /// before this sub-process's events may be (the cross-shard dependency
  /// skeleton, re-expressed over emitted events: a skeleton predecessor
  /// voted — finished all forward work — before this slice was even
  /// submitted). Predecessors absent from every history are vacuous.
  std::vector<std::string> forward_preds;
};

/// Merges per-shard schedules into the global committed-projection view
/// the cross-shard correctness criteria are evaluated on (DESIGN.md §4h):
///
///  * per-shard event order is preserved (all conflicting service pairs
///    are shard-local by the partition invariant, so this preserves the
///    entire conflict order);
///  * the sub-processes of one spanning process are remapped onto ONE
///    global process — original pids and activity ids, one terminal: the
///    local terminals of the slices are consumed silently and a single
///    global C is emitted at the first slice commit (once every slice's
///    forward events are merged; waiting for the LAST terminal instead
///    can deadlock the merge against the skeleton gate), a global A at
///    the last slice terminal of an aborted span. Slices of one
///    span disagreeing on their terminal (some committed, some aborted)
///    are an atomicity violation and fail the merge — this is exactly the
///    "no spanning process half-committed" assertion the recovery sweep
///    relies on;
///  * cross-shard program order is restored by the skeleton gate
///    (SpanSubProjection::forward_preds);
///  * every non-spanning process gets a fresh unique global pid.
///
/// The merge is deterministic: among the shards whose next event is
/// enabled, the lowest shard index goes first. The result is built with
/// legality enforcement off (recovery histories contain group aborts and
/// partial slices a per-process legality check would reject).
Result<ProcessSchedule> MergeGlobalProjection(
    const std::vector<const ProcessSchedule*>& shard_histories,
    const std::map<std::string, SpanSubProjection>& spans);

}  // namespace tpm

#endif  // TPM_RUNTIME_GLOBAL_PROJECTION_H_
