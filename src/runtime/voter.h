#ifndef TPM_RUNTIME_VOTER_H_
#define TPM_RUNTIME_VOTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/fingerprint.h"

namespace tpm {

/// One replica's state digest at a vote boundary: the three components the
/// group compares. Replicas fed the identical submission stream from
/// identical state must agree on all three; a mismatch in any is a
/// divergence (silent corruption, a non-deterministic leak, or a bug).
struct VoteDigest {
  /// Incremental FNV-1a over every emitted history event
  /// (TransactionalProcessScheduler::HistoryDigest).
  uint64_t history = 0;
  /// Combined StateFingerprint of the registered subsystems in
  /// registration order (SubsystemStateFingerprint).
  uint64_t store = 0;
  /// SchedulerStats::FingerprintSince the replica's baseline (deltas, so a
  /// respawned replica votes comparably with longer-lived peers).
  uint64_t stats = 0;

  friend bool operator==(const VoteDigest&, const VoteDigest&) = default;

  std::string ToString() const;
};

/// Majority voting over per-replica state digests at epoch boundaries.
///
/// Not thread-safe: the ReplicaGroup serializes all calls under its own
/// mutex. Votes are keyed by absolute vote-round index, so late voters and
/// replicas that die mid-round are handled by re-running the completion
/// check whenever the live set shrinks.
class Voter {
 public:
  struct Outcome {
    int64_t round = 0;
    VoteDigest winner;
    /// Replicas whose digest lost the vote (divergent — to be evicted).
    std::vector<int> losers;
  };

  /// Records replica `replica`'s digest for vote round `round`.
  void SubmitVote(int64_t round, int replica, const VoteDigest& digest);

  /// Drops a replica's pending votes (it died or was evicted); rounds it
  /// was the last missing voter of become completable.
  void RemoveReplica(int replica);

  /// Returns (and forgets) every round for which all of `live` have now
  /// voted, in round order. The winner is the digest with the most votes;
  /// a tie is broken in favor of the digest `tiebreak_replica` (the acting
  /// primary) voted for — with two live replicas split 1:1 the divergence
  /// is unattributable, so the group keeps the primary's side and evicts
  /// the other; only R>=3 gives a true majority. A replica in `live` that
  /// voted with the winner is never a loser.
  std::vector<Outcome> TakeCompleted(const std::vector<int>& live,
                                     int tiebreak_replica);

  /// Forgets everything (replica respawn re-baselines the whole group).
  void Reset();

  int64_t pending_rounds() const {
    return static_cast<int64_t>(votes_.size());
  }

 private:
  /// round -> replica -> digest.
  std::map<int64_t, std::map<int, VoteDigest>> votes_;
};

}  // namespace tpm

#endif  // TPM_RUNTIME_VOTER_H_
