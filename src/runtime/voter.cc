#include "runtime/voter.h"

#include <algorithm>

#include "common/str_util.h"

namespace tpm {

std::string VoteDigest::ToString() const {
  return StrCat("{history=", history, " store=", store, " stats=", stats,
                "}");
}

void Voter::SubmitVote(int64_t round, int replica, const VoteDigest& digest) {
  votes_[round][replica] = digest;
}

void Voter::RemoveReplica(int replica) {
  for (auto it = votes_.begin(); it != votes_.end();) {
    it->second.erase(replica);
    if (it->second.empty()) {
      it = votes_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<Voter::Outcome> Voter::TakeCompleted(const std::vector<int>& live,
                                                 int tiebreak_replica) {
  std::vector<Outcome> outcomes;
  if (live.empty()) {
    votes_.clear();
    return outcomes;
  }
  for (auto it = votes_.begin(); it != votes_.end();) {
    const std::map<int, VoteDigest>& ballots = it->second;
    const bool complete =
        std::all_of(live.begin(), live.end(), [&ballots](int replica) {
          return ballots.count(replica) > 0;
        });
    if (!complete) {
      ++it;
      continue;
    }
    // Tally: count identical digests. The candidate list is tiny (<= R),
    // so a quadratic scan is fine.
    std::vector<std::pair<VoteDigest, int>> tally;
    for (int replica : live) {
      const VoteDigest& digest = ballots.at(replica);
      auto slot = std::find_if(
          tally.begin(), tally.end(),
          [&digest](const auto& entry) { return entry.first == digest; });
      if (slot == tally.end()) {
        tally.push_back({digest, 1});
      } else {
        ++slot->second;
      }
    }
    const auto tiebreak_ballot = ballots.find(tiebreak_replica);
    const VoteDigest* winner = &tally.front().first;
    int best = tally.front().second;
    for (const auto& [digest, count] : tally) {
      if (count > best) {
        winner = &digest;
        best = count;
      } else if (count == best && tiebreak_ballot != ballots.end() &&
                 digest == tiebreak_ballot->second && !(*winner == digest)) {
        winner = &digest;
      }
    }
    Outcome outcome;
    outcome.round = it->first;
    outcome.winner = *winner;
    for (int replica : live) {
      if (!(ballots.at(replica) == *winner)) {
        outcome.losers.push_back(replica);
      }
    }
    outcomes.push_back(std::move(outcome));
    it = votes_.erase(it);
  }
  return outcomes;
}

void Voter::Reset() { votes_.clear(); }

}  // namespace tpm
