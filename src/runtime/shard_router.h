#ifndef TPM_RUNTIME_SHARD_ROUTER_H_
#define TPM_RUNTIME_SHARD_ROUTER_H_

#include "common/status.h"
#include "core/process.h"
#include "runtime/conflict_partition.h"

namespace tpm {

/// Maps process definitions onto scheduler shards: a process is pinned to
/// the unique shard owning its entire service footprint (every service any
/// of its activities — across all preference groups — or compensations
/// invokes).
///
/// A footprint spanning two shards is a POSITIONED ADMISSION ERROR, not a
/// routing decision: the partitioner co-locates every pair of conflicting
/// services (and every declared colocation group), so a spanning footprint
/// can only mean the caller's spec is inconsistent — the process couples
/// services the conflict relation and the colocation groups both declare
/// independent. The fix belongs in the spec (declare the conflict, or
/// colocate the services), never in the router.
class ShardRouter {
 public:
  /// Both referents must outlive the router.
  ShardRouter(const ConflictSpec* spec, const ConflictPartition* partition)
      : spec_(spec), partition_(partition) {}

  /// The shard owning `def`'s footprint. Errors: NotFound for a service
  /// never registered with the runtime; InvalidArgument, positioned at the
  /// offending activity (name and service), for a spanning footprint.
  /// A definition with an empty footprint routes to shard 0.
  Result<int> RouteProcess(const ProcessDef& def) const;

  /// Shard owning `service`, or -1 if unknown.
  int ShardOfService(ServiceId service) const {
    return partition_->ShardOfService(*spec_, service);
  }

 private:
  const ConflictSpec* spec_;
  const ConflictPartition* partition_;
};

}  // namespace tpm

#endif  // TPM_RUNTIME_SHARD_ROUTER_H_
