#ifndef TPM_RUNTIME_SHARD_ROUTER_H_
#define TPM_RUNTIME_SHARD_ROUTER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/process.h"
#include "runtime/conflict_partition.h"

namespace tpm {

/// What the router decided about a definition — a typed decision, so
/// callers branch on the kind instead of string-matching error text.
enum class RouteKind {
  /// The whole footprint lives on one shard: submit there directly.
  kPinned,
  /// The footprint spans shards and the definition decomposes into
  /// per-shard sub-processes plus a cross-shard dependency skeleton
  /// (Split() produces the plan); the cross-shard agent owns execution.
  kSplit,
  /// Not routable: an unregistered service, a compensation on a different
  /// shard than its activity, or a spanning shape the splitter does not
  /// support. `error` carries the positioned diagnostic.
  kRejected,
};

struct RouterDecision {
  RouteKind kind = RouteKind::kRejected;
  /// Target shard for kPinned; -1 otherwise.
  int shard = -1;
  /// The positioned diagnostic for kRejected; OK otherwise.
  Status error = Status::OK();
};

/// One per-shard sub-process of a spanning process.
struct SubProcessPlan {
  int shard = -1;
  /// The sub-definition (validated, well-formed flex). Owned by the plan;
  /// must outlive every runtime that executes it.
  std::unique_ptr<ProcessDef> def;
  /// Sub-activity id -> activity id in the original definition (for the
  /// global projection).
  std::map<ActivityId, ActivityId> to_original;
  /// Indices into SplitPlan::subs of the trunk sub-processes that must
  /// have VOTED before this sub-process may be submitted (the cross-shard
  /// dependency skeleton, derived from cross-shard precedence edges).
  /// Always empty for tails — a tail implicitly depends on every trunk sub.
  std::vector<int> skeleton_preds;
};

/// Decomposition of a spanning process: per-shard trunk sub-processes in
/// topological (skeleton) order, plus at most one family of ◁-alternative
/// tails. The agent executes the trunk, then tries `tails` in preference
/// order (a tail abort moves to the next; a tail vote completes the
/// process; exhausting all tails aborts it globally).
struct SplitPlan {
  std::vector<SubProcessPlan> subs;
  std::vector<SubProcessPlan> tails;
  /// The cross-shard branch point whose ◁ groups became `tails` (invalid
  /// id when the process has no cross-shard alternatives).
  ActivityId tail_branch_point;
};

/// Maps process definitions onto scheduler shards. A process whose entire
/// service footprint (every forward and compensation service, across all
/// preference groups) lives on one shard is pinned there. A spanning
/// footprint is DECOMPOSED: Decide() classifies it kSplit and Split()
/// produces per-shard sub-processes plus the cross-shard dependency
/// skeleton the coordination agent drives (submission order, held 2PC).
///
/// Split is deterministic: the same definition always yields the same
/// sub-definitions (names, ids, edges), which is what lets recovery
/// regenerate them from the original definition and the coordinator log.
///
/// Supported spanning shapes (staged; anything else is kRejected with a
/// positioned diagnostic):
///  * every activity's compensation service on the same shard as the
///    activity itself (a sub-process must compensate locally),
///  * the shard-quotient of the precedence graph acyclic (each shard's
///    slice is a contiguous stage of the process),
///  * ◁-alternatives either entirely shard-local, or hanging off at most
///    one cross-shard branch point whose groups are shard-pure terminal
///    subtrees (they become the plan's tails).
class ShardRouter {
 public:
  /// Both referents must outlive the router.
  ShardRouter(const ConflictSpec* spec, const ConflictPartition* partition);

  /// Classifies `def`: kPinned (with shard), kSplit, or kRejected (with
  /// the positioned error). A kSplit decision guarantees Split() succeeds.
  RouterDecision Decide(const ProcessDef& def) const;

  /// Decomposes a spanning definition into a SplitPlan. Sub-definitions
  /// are named "<name_prefix>/s<shard>", tails "<name_prefix>/t<k>".
  /// Errors mirror Decide()'s kRejected diagnostics.
  Result<SplitPlan> Split(const ProcessDef& def,
                          const std::string& name_prefix) const;

  /// Single-shard routing with the original positioned diagnostics: the
  /// shard owning `def`'s footprint, NotFound for an unregistered service,
  /// InvalidArgument for a spanning footprint. A definition with an empty
  /// footprint routes to shard 0. (Callers that can handle spanning
  /// processes use Decide() instead.)
  Result<int> RouteProcess(const ProcessDef& def) const;

  /// Shard owning `service`, or -1 if unknown. Resolved through the
  /// elastic remap table: per-component owners initialized from the static
  /// partition and overridden by SetComponentShard when a migration flips.
  int ShardOfService(ServiceId service) const;

  /// Conflict component of `service`, or -1 if unknown. Components are
  /// the partition's — they never change after Start; only their shard
  /// ownership does.
  int ComponentOfService(ServiceId service) const {
    return partition_->ComponentOfService(*spec_, service);
  }

  /// Component of `def`'s footprint — the component of its first valid
  /// service — or -1 for an empty or unknown footprint. (A pinned def may
  /// touch several components colocated on one shard; the elastic runtime
  /// migrates whole components, and Decide() re-derives the owner per
  /// submission, so a multi-component def simply becomes spanning if its
  /// components separate.)
  int ComponentOfDef(const ProcessDef& def) const;

  /// Current owner of `component` (remap-aware), or -1 if out of range.
  int ShardOfComponent(int component) const;

  int num_components() const { return partition_->num_components(); }

  /// Elastic remap flip: `component` now routes to `shard`. Release store;
  /// a concurrent Decide() sees either the old or the new owner, and the
  /// migration engine's admission gate serializes which submissions may
  /// still reach the old one.
  void SetComponentShard(int component, int shard);

 private:
  /// Per-activity owner shards (forward service), with the co-location
  /// check for compensation services. Positioned errors.
  Result<std::vector<int>> OwnerShards(const ProcessDef& def) const;

  const ConflictSpec* spec_;
  const ConflictPartition* partition_;
  /// component -> owning shard, the only routing state a migration flips.
  std::unique_ptr<std::atomic<int>[]> remap_;
};

}  // namespace tpm

#endif  // TPM_RUNTIME_SHARD_ROUTER_H_
