#include "runtime/elastic/elastic_controller.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace tpm {

ElasticController::ElasticController(ElasticPolicyOptions options,
                                     GatherFn gather, ApplyFn apply)
    : options_(options),
      gather_(std::move(gather)),
      apply_(std::move(apply)),
      policy_(options) {}

ElasticController::~ElasticController() { Stop(); }

void ElasticController::Start() {
  if (thread_.joinable()) return;
  thread_ = std::thread([this] { Loop(); });
}

void ElasticController::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ElasticController::Pause() {
  std::unique_lock<std::mutex> lock(mu_);
  ++pause_depth_;
  cv_.wait(lock, [this] { return !polling_; });
}

void ElasticController::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pause_depth_ > 0) --pause_depth_;
  }
  cv_.notify_all();
}

void ElasticController::Loop() {
  const auto interval =
      std::chrono::milliseconds(std::max(1, options_.poll_interval_ms));
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait_for(lock, interval,
                 [this] { return stop_; });
    if (stop_) return;
    if (pause_depth_ > 0) continue;
    polling_ = true;
    lock.unlock();
    // Outside the lock: gather may take monitor locks, apply may run a
    // full migration.
    const PolicyInputs inputs = gather_();
    const PolicyDecision decision = policy_.Evaluate(inputs);
    if (decision.kind != PolicyActionKind::kNone) {
      decisions_.fetch_add(1, std::memory_order_relaxed);
      apply_(decision);
    }
    lock.lock();
    polling_ = false;
    cv_.notify_all();
  }
}

}  // namespace tpm
