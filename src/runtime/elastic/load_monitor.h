#ifndef TPM_RUNTIME_ELASTIC_LOAD_MONITOR_H_
#define TPM_RUNTIME_ELASTIC_LOAD_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/shard.h"

namespace tpm {

/// One shard's load, over the monitor's sliding window.
struct ShardLoadSnapshot {
  int shard = 0;
  bool parked = false;
  /// Producer-side queue depth at the last pass boundary.
  size_t queue_depth = 0;
  /// Fraction of the window's wall time the worker spent inside passes.
  double busy_fraction = 0.0;
  /// Admission rate over the window.
  double admitted_per_ms = 0.0;
  /// Cumulative committed processes (the scheduler's counter, not
  /// windowed — rates are the consumer's diff).
  int64_t committed_total = 0;
  /// Cumulative submissions admitted on this shard.
  int64_t admitted_total = 0;
};

/// Per-shard sliding-window load telemetry, fed from the shard workers'
/// pass samples (ShardElasticProbe::OnPassEnd) plus per-conflict-component
/// submission counts fed from the producer front-end.
///
/// Threading: RecordPass is called by each shard's own worker (one writer
/// per shard slot, guarded by that slot's mutex); CountSubmission by any
/// producer thread (atomic counters); Snapshot* by the controller or any
/// inspector.
class LoadMonitor {
 public:
  /// `window_ns` is the sliding window busy fractions and rates are
  /// computed over.
  LoadMonitor(int num_shards, int num_components,
              int64_t window_ns = 200'000'000);

  LoadMonitor(const LoadMonitor&) = delete;
  LoadMonitor& operator=(const LoadMonitor&) = delete;

  /// Shard worker, end of every pass.
  void RecordPass(int shard, const ShardPassSample& sample);

  /// Producer front-end, once per pinned submission.
  void CountSubmission(int component);

  void SetParked(int shard, bool parked);

  ShardLoadSnapshot Snapshot(int shard) const;
  std::vector<ShardLoadSnapshot> SnapshotAll() const;

  /// Cumulative submission count per component (consumers diff across
  /// polls for recency).
  std::vector<int64_t> ComponentSubmissions() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_components() const {
    return static_cast<int>(component_submissions_.size());
  }

 private:
  struct PassEntry {
    int64_t at_ns = 0;
    int64_t pass_ns = 0;
    int64_t admitted = 0;
  };
  struct ShardState {
    mutable std::mutex mu;
    std::deque<PassEntry> window;
    int64_t window_busy_ns = 0;
    int64_t window_admitted = 0;
    size_t queue_depth = 0;
    int64_t committed_total = 0;
    int64_t admitted_total = 0;
    bool parked = false;
  };

  /// Drops window entries older than window_ns_. Caller holds state.mu.
  void Expire(ShardState& state, int64_t now_ns) const;
  ShardLoadSnapshot SnapshotLocked(int shard, ShardState& state,
                                   int64_t now_ns) const;

  const int64_t window_ns_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::vector<std::atomic<int64_t>> component_submissions_;
};

}  // namespace tpm

#endif  // TPM_RUNTIME_ELASTIC_LOAD_MONITOR_H_
