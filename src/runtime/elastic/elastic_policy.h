#ifndef TPM_RUNTIME_ELASTIC_ELASTIC_POLICY_H_
#define TPM_RUNTIME_ELASTIC_ELASTIC_POLICY_H_

#include <cstdint>
#include <vector>

#include "runtime/elastic/elastic_options.h"

namespace tpm {

/// Policy-visible state of one shard.
struct PolicyShardInput {
  bool parked = false;
  double busy_fraction = 0.0;
  size_t queue_depth = 0;
  /// Conflict components currently routed to this shard.
  int components = 0;
};

/// Policy-visible state of one conflict component.
struct PolicyComponentInput {
  int component = -1;
  /// Current owning shard.
  int shard = -1;
  /// Submissions since the previous poll (the controller diffs the
  /// monitor's cumulative counters).
  int64_t recent_submissions = 0;
};

struct PolicyInputs {
  std::vector<PolicyShardInput> shards;
  std::vector<PolicyComponentInput> components;
};

enum class PolicyActionKind { kNone, kMigrate, kPark };

struct PolicyDecision {
  PolicyActionKind kind = PolicyActionKind::kNone;
  /// kMigrate: which component, from which shard, to which shard.
  int component = -1;
  int from = -1;
  int to = -1;
  /// kPark: which shard.
  int shard = -1;
};

/// The load-aware rebalancing + DPM parking policy, as a PURE state
/// machine: Evaluate consumes one poll's inputs and the policy's own
/// hysteresis state (breach streak, cooldown) and returns at most one
/// action. No clocks, no threads — the unit tests drive it directly, the
/// ElasticController drives it on a timer.
///
/// Decision order per poll:
///  1. Imbalance: if max(busy of active shards) / mean >= imbalance_ratio
///     for sustain_polls consecutive polls (and no cooldown), migrate the
///     SECOND-hottest component off the hottest shard — moving the hottest
///     component would just relocate the hotspot; splitting the top two
///     apart halves it. A donor owning a single component is declined. The
///     target is a parked shard if one exists (adaptive grow), else the
///     least-busy active shard.
///  2. Consolidation (consolidate_below > 0): if EVERY active shard is
///     below the threshold and more than min_active_shards are active,
///     migrate the least-busy multi-shard donor's component onto another
///     active shard; once a shard owns nothing, rule 3 parks it.
///  3. Parking: an active shard owning no components, with an empty queue
///     and busy below park_busy_threshold, parks (never below
///     min_active_shards).
class ElasticPolicy {
 public:
  explicit ElasticPolicy(ElasticPolicyOptions options) : options_(options) {}

  PolicyDecision Evaluate(const PolicyInputs& inputs);

  int breach_streak() const { return breach_streak_; }
  int cooldown() const { return cooldown_; }

 private:
  /// Rule 1/2 helper: the component to move off `donor`, or -1.
  int PickComponent(const PolicyInputs& inputs, int donor) const;
  /// Migration target for `donor`'s component: a parked shard if any,
  /// else the least-busy active shard != donor; -1 if none.
  int PickTarget(const PolicyInputs& inputs, int donor,
                 bool allow_parked) const;

  ElasticPolicyOptions options_;
  int breach_streak_ = 0;
  int cooldown_ = 0;
};

}  // namespace tpm

#endif  // TPM_RUNTIME_ELASTIC_ELASTIC_POLICY_H_
