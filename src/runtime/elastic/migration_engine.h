#ifndef TPM_RUNTIME_ELASTIC_MIGRATION_ENGINE_H_
#define TPM_RUNTIME_ELASTIC_MIGRATION_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/conflict.h"
#include "core/process.h"
#include "log/recovery_log.h"
#include "log/wal.h"
#include "runtime/elastic/elastic_options.h"
#include "runtime/shard.h"
#include "runtime/shard_router.h"
#include "subsystem/kv_subsystem.h"

namespace tpm {

/// One record of the migration WAL. Grammar (one record per line,
/// '|'-separated):
///   MBEGIN|<mid>|<component>|<from>|<to>   write-ahead of the migration
///   MCUT|<mid>|<pid_base>|<p1,p2,...>      component segment selected: the
///                                          source pids being moved, and the
///                                          pid range [pid_base, pid_base+n)
///                                          they renumber into on the target
///   MFLIP|<mid>                            DECISION: the import is durable
///                                          on the target; ownership flips
///   MABORT|<mid>                           migration abandoned, no flip
///   MEND|<mid>                             source strip durable; all done
struct MigrationRecord {
  enum class Kind { kBegin, kCut, kFlip, kAbort, kEnd };

  Kind kind = Kind::kBegin;
  int64_t mid = -1;
  int component = -1;  // kBegin
  int from = -1;       // kBegin
  int to = -1;         // kBegin
  int64_t pid_base = -1;            // kCut
  std::vector<int64_t> src_pids;    // kCut

  std::string Serialize() const;
  static Result<MigrationRecord> Parse(const std::string& line);
};

/// Quiesce-and-migrate of one conflict component between live shards.
///
/// Protocol (DESIGN.md §4k) — MBEGIN; close the admission gate for the
/// component (new submissions buffer against the target); drain the
/// source queue past a marker and wait until no active process on the
/// source touches the component; cut the component's segment out of the
/// source WAL, renumbered into a pid range reserved on the target (MCUT);
/// re-verify PRED + Proc-REC on the target's would-be merged history
/// offline; import the merged log on the target; MFLIP (the decision);
/// strip the segment from the source WAL; move the component's subsystem
/// registrations; flip the router remap and flush the buffered
/// submissions to the target; MEND.
///
/// Crash safety: MFLIP is the decision record. Recovery scan + fix-ups
/// restore component-on-exactly-one-shard — MCUT without MFLIP undoes the
/// (possibly applied) target import and aborts; MFLIP without MEND redoes
/// the source strip (the import durably preceded the flip) and completes.
///
/// Threading: Migrate runs on the control plane (one call at a time,
/// serialized under an internal mutex anyway). Producers interact through
/// AcquireRouteLock/ShouldBuffer/Buffer; shard workers through
/// MaybeIntercept (via the runtime's probe).
class MigrationEngine {
 public:
  struct Options {
    ShardLogMode log_mode = ShardLogMode::kMemory;
    std::string wal_path;  // kFile only
    CrashPointListener* crash_listener = nullptr;
    size_t buffer_capacity = 1024;
    TickMode mode = TickMode::kFreeRunning;
    /// Run the offline PRED + Proc-REC check on the merged target history
    /// before importing (mirrors ShardedRuntimeOptions::verify_recovery).
    bool verify = true;
    const ConflictSpec* spec = nullptr;
    ShardRouter* router = nullptr;
    std::vector<std::unique_ptr<RuntimeShard>>* shards = nullptr;
    /// Live spanning-process gate: migration is rejected once any span
    /// was begun (sub-definition names encode shard numbers, a staged
    /// limit documented in DESIGN.md).
    std::function<int64_t()> spans_begun;
    /// Resume a (possibly parked) target shard; fires the runtime's
    /// OnShardResumed hook.
    std::function<void(int shard)> resume_shard;
    /// Fired after a migration completes (MEND appended).
    std::function<void(int component, int from, int to)> on_migrated;
  };

  explicit MigrationEngine(Options options);
  ~MigrationEngine();

  MigrationEngine(const MigrationEngine&) = delete;
  MigrationEngine& operator=(const MigrationEngine&) = delete;

  /// Opens the migration WAL and scans it: flipped migrations become
  /// routing overrides (see overrides()), incomplete ones queue fix-ups.
  /// Call before the shards exist.
  Status Init();

  /// Component -> owning shard, for every migration whose MFLIP is
  /// durable, applied in log order. The runtime feeds these into the
  /// router and its registration routing at Start.
  const std::map<int, int>& overrides() const { return overrides_; }

  /// Repairs the shard WALs of incomplete migrations (undo the target
  /// import of a cut-without-flip, redo the source strip of a
  /// flip-without-end) and closes their migration records. Call after the
  /// shards' logs are open but BEFORE their workers start — this touches
  /// shard logs from the control thread.
  Status ApplyCrashFixups();

  /// Per-component topology (parallel vectors indexed by component): the
  /// subsystems whose registrations move with the component, and the
  /// extra conflicts re-declared on the target scheduler.
  void SetTopology(
      std::vector<std::vector<Subsystem*>> subsystems_of_component,
      std::vector<std::vector<std::pair<ServiceId, ServiceId>>>
          conflicts_of_component);

  /// Moves `component` to shard `to`. Blocking; returns once the
  /// migration completed (MEND) or aborted cleanly. Lockstep runtimes
  /// must be idle. Fails without side effects on validation errors; a
  /// mid-protocol operational failure aborts back to the source; an
  /// injected crash leaves the engine sticky-failed (the next incarnation
  /// repairs via ApplyCrashFixups).
  Status Migrate(int component, int to);

  /// Producer-side admission gate. Producers hold the shared lock across
  /// route decision + enqueue/buffer; Migrate's flip takes it unique, so
  /// a submission is never pushed to a source whose ownership already
  /// flipped.
  std::shared_lock<std::shared_mutex> AcquireRouteLock() {
    return std::shared_lock<std::shared_mutex>(route_mu_);
  }

  /// True iff `component` is mid-migration (call under the route lock);
  /// the submission must go through Buffer instead of the shard queue.
  bool ShouldBuffer(int component) const {
    return migration_active_.load(std::memory_order_acquire) &&
           component == migrating_component_;
  }

  /// Buffers a submission of the migrating component; it is flushed to
  /// the target when the migration flips (or back to the source on
  /// abort). Returns the target shard — the ticket's best answer for
  /// where the process will land. ResourceExhausted when the bounded
  /// buffer is full.
  Result<int> Buffer(Submission submission);

  /// Shard-worker side (via the runtime's probe): learns def -> component
  /// for every submission, and intercepts (a) the engine's own null-def
  /// quiesce marker, (b) submissions of the migrating component already
  /// queued on the source, which are swept into the buffer. Returns true
  /// when the submission was consumed.
  bool MaybeIntercept(int shard, Submission& submission);

  /// Records def -> component (and the def pointer, for offline
  /// verification). Recover feeds the recovered defs through this so
  /// migration can classify WAL records whose processes predate the
  /// current incarnation.
  void LearnDef(const ProcessDef& def);

  /// No migration in flight (Drain's quiescence check).
  bool Quiet() const {
    return !migration_active_.load(std::memory_order_acquire);
  }

  /// Fails the promises of any buffered submissions (runtime Stop).
  void Shutdown();

  /// True once any migration ever started (or was recovered): spanning
  /// submissions are rejected from then on.
  bool ever_migrated() const {
    return ever_migrated_.load(std::memory_order_acquire);
  }

  Status status() const;

  int64_t migrations_started() const { return started_.load(); }
  int64_t migrations_completed() const { return completed_.load(); }
  int64_t migrations_aborted() const { return aborted_.load(); }

 private:
  class RenamingListener;

  struct ActiveMigration {
    int64_t mid = -1;
    int component = -1;
    int from = -1;
    int to = -1;
    /// Source-queue submissions of the component, swept by the worker.
    std::deque<Submission> swept;
    /// New submissions buffered by producers during the migration.
    std::deque<Submission> fresh;
    std::promise<void> marker_ack;
    bool marker_acked = false;
    int64_t pid_base = -1;
    int64_t pid_count = 0;
    /// Source pids of the moved segment (pre-renumbering) — the strip's
    /// filter set. Pids are never reused, so filtering by this set stays
    /// correct however many records other components append meanwhile.
    std::vector<int64_t> src_pids;
    bool imported = false;
  };

  /// Scan result for one incomplete migration.
  struct Fixup {
    enum class Kind { kAbortOnly, kUndoCut, kRedoStrip };
    Kind kind = Kind::kAbortOnly;
    MigrationRecord begin;
    MigrationRecord cut;  // kUndoCut / kRedoStrip
  };

  Status AppendRecord(const MigrationRecord& record);
  void StickyFail(const Status& status);
  /// Consults the crash listener at an explicit protocol site; on trigger
  /// records the simulated death (sticky) and returns true.
  bool HitSite(const char* site);

  /// Everything between the gate closing and MFLIP; failures here abort
  /// cleanly. On success the flip record is durable.
  Status RunPrepare(RuntimeShard* src, RuntimeShard* dst);
  /// Everything after MFLIP; failures here are sticky (the decision is
  /// durable, there is no going back).
  Status RunCommit(RuntimeShard* src, RuntimeShard* dst);
  /// Undoes a pre-flip failure: strips the target import if it happened
  /// and returns the buffered submissions to the source.
  void AbortMigration(RuntimeShard* src, RuntimeShard* dst);

  /// Waits for the quiesce marker to drain through the source queue, then
  /// polls until no active source process touches the component.
  Status Quiesce(RuntimeShard* src);

  int ComponentOfDefName(const std::string& name) const;
  const ProcessDef* DefOfName(const std::string& name) const;

  /// Offline re-verification of a would-be shard history: replays the
  /// records into a ProcessSchedule and checks PRED + Proc-REC (committed
  /// projection) under the union spec.
  Status VerifyRecords(const std::vector<SchedulerLogRecord>& records) const;

  /// Reads a shard's WAL on its worker thread (logs are worker-owned
  /// while the runtime runs).
  Status ReadShardRecords(RuntimeShard* shard,
                          std::vector<SchedulerLogRecord>* records);
  Status ReplaceShardRecords(RuntimeShard* shard,
                             std::vector<SchedulerLogRecord> records);
  /// Atomic read-modify-write variants, each a SINGLE worker command: the
  /// live shard keeps appending between any two commands, so a separate
  /// read + replace would silently drop those records (lost update).
  Status AppendShardRecords(RuntimeShard* shard,
                            std::vector<SchedulerLogRecord> records);
  Status StripShardRecords(RuntimeShard* shard, std::vector<int64_t> pids);

  /// Re-enqueues swept + fresh buffered submissions (FIFO preserved) onto
  /// `shard`, failing their promises if the queue is closed. Caller holds
  /// the unique route lock with migration_active_ already cleared.
  void FlushBuffersTo(RuntimeShard* shard);

  Options options_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<RenamingListener> renamer_;

  std::map<int, int> overrides_;
  std::vector<Fixup> fixups_;
  int64_t next_mid_ = 0;

  std::vector<std::vector<Subsystem*>> subsystems_of_component_;
  std::vector<std::vector<std::pair<ServiceId, ServiceId>>>
      conflicts_of_component_;

  /// Serializes Migrate calls (the control plane plus the controller).
  std::mutex op_mu_;
  /// Producer admission gate (see AcquireRouteLock).
  std::shared_mutex route_mu_;
  std::atomic<bool> migration_active_{false};
  int migrating_component_ = -1;  // written under unique route_mu_

  mutable std::mutex buffer_mu_;
  std::unique_ptr<ActiveMigration> active_;

  mutable std::shared_mutex defs_mu_;
  std::unordered_map<std::string, std::pair<const ProcessDef*, int>> defs_;

  mutable std::mutex error_mu_;
  Status error_;
  bool crashed_ = false;  // injected crash: skip the abort cleanup

  std::atomic<bool> ever_migrated_{false};
  std::atomic<int64_t> started_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> aborted_{0};
};

}  // namespace tpm

#endif  // TPM_RUNTIME_ELASTIC_MIGRATION_ENGINE_H_
