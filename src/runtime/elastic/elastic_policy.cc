#include "runtime/elastic/elastic_policy.h"

#include <algorithm>

namespace tpm {

namespace {
constexpr double kBusyEpsilon = 1e-6;
}  // namespace

int ElasticPolicy::PickComponent(const PolicyInputs& inputs,
                                 int donor) const {
  // The donor's components by recent traffic, hottest first.
  std::vector<const PolicyComponentInput*> owned;
  for (const PolicyComponentInput& component : inputs.components) {
    if (component.shard == donor) owned.push_back(&component);
  }
  if (owned.size() < 2) return -1;  // moving the only component moves the
                                    // hotspot, it does not split it
  std::stable_sort(owned.begin(), owned.end(),
                   [](const PolicyComponentInput* a,
                      const PolicyComponentInput* b) {
                     return a->recent_submissions > b->recent_submissions;
                   });
  // Second-hottest, and only if it actually carries traffic — migrating a
  // cold component would not relieve anything.
  if (owned[1]->recent_submissions <= 0) return -1;
  return owned[1]->component;
}

int ElasticPolicy::PickTarget(const PolicyInputs& inputs, int donor,
                              bool allow_parked) const {
  int parked = -1;
  int coolest = -1;
  double coolest_busy = 0.0;
  for (int shard = 0; shard < static_cast<int>(inputs.shards.size());
       ++shard) {
    if (shard == donor) continue;
    const PolicyShardInput& input = inputs.shards[static_cast<size_t>(shard)];
    if (input.parked) {
      if (parked < 0) parked = shard;
      continue;
    }
    if (coolest < 0 || input.busy_fraction < coolest_busy) {
      coolest = shard;
      coolest_busy = input.busy_fraction;
    }
  }
  if (allow_parked && parked >= 0) return parked;  // adaptive grow
  return coolest;
}

PolicyDecision ElasticPolicy::Evaluate(const PolicyInputs& inputs) {
  PolicyDecision none;
  if (cooldown_ > 0) --cooldown_;

  int active = 0;
  int hottest = -1;
  double hottest_busy = 0.0;
  double busy_sum = 0.0;
  for (int shard = 0; shard < static_cast<int>(inputs.shards.size());
       ++shard) {
    const PolicyShardInput& input = inputs.shards[static_cast<size_t>(shard)];
    if (input.parked) continue;
    ++active;
    busy_sum += input.busy_fraction;
    if (hottest < 0 || input.busy_fraction > hottest_busy) {
      hottest = shard;
      hottest_busy = input.busy_fraction;
    }
  }
  if (active == 0) return none;
  const double mean_busy = busy_sum / active;

  // Rule 1: sustained imbalance -> split the hottest shard's load.
  const bool breached = mean_busy > kBusyEpsilon &&
                        hottest_busy / mean_busy >= options_.imbalance_ratio;
  breach_streak_ = breached ? breach_streak_ + 1 : 0;
  if (breached && breach_streak_ >= options_.sustain_polls &&
      cooldown_ == 0) {
    const int component = PickComponent(inputs, hottest);
    const int target = PickTarget(inputs, hottest, /*allow_parked=*/true);
    if (component >= 0 && target >= 0) {
      breach_streak_ = 0;
      cooldown_ = options_.cooldown_polls;
      PolicyDecision decision;
      decision.kind = PolicyActionKind::kMigrate;
      decision.component = component;
      decision.from = hottest;
      decision.to = target;
      return decision;
    }
  }

  // Rule 2: everything cold -> consolidate toward fewer shards.
  if (options_.consolidate_below > 0 && active > options_.min_active_shards &&
      cooldown_ == 0) {
    bool all_cold = true;
    int donor = -1;
    double donor_busy = 0.0;
    for (int shard = 0; shard < static_cast<int>(inputs.shards.size());
         ++shard) {
      const PolicyShardInput& input =
          inputs.shards[static_cast<size_t>(shard)];
      if (input.parked) continue;
      if (input.busy_fraction >= options_.consolidate_below) {
        all_cold = false;
        break;
      }
      // Donor: the least-busy shard that still owns something to move.
      if (input.components > 0 &&
          (donor < 0 || input.busy_fraction < donor_busy)) {
        donor = shard;
        donor_busy = input.busy_fraction;
      }
    }
    if (all_cold && donor >= 0) {
      const int target = PickTarget(inputs, donor, /*allow_parked=*/false);
      if (target >= 0) {
        // Any of the donor's components; take the coldest so hot traffic
        // is disturbed last.
        int component = -1;
        int64_t coldest = 0;
        for (const PolicyComponentInput& candidate : inputs.components) {
          if (candidate.shard != donor) continue;
          if (component < 0 || candidate.recent_submissions < coldest) {
            component = candidate.component;
            coldest = candidate.recent_submissions;
          }
        }
        if (component >= 0) {
          cooldown_ = options_.cooldown_polls;
          PolicyDecision decision;
          decision.kind = PolicyActionKind::kMigrate;
          decision.component = component;
          decision.from = donor;
          decision.to = target;
          return decision;
        }
      }
    }
  }

  // Rule 3: park an emptied, idle shard (DPM sleep).
  if (options_.park_idle_shards && active > options_.min_active_shards) {
    for (int shard = 0; shard < static_cast<int>(inputs.shards.size());
         ++shard) {
      const PolicyShardInput& input =
          inputs.shards[static_cast<size_t>(shard)];
      if (input.parked || input.components > 0) continue;
      if (input.queue_depth == 0 &&
          input.busy_fraction < options_.park_busy_threshold) {
        PolicyDecision decision;
        decision.kind = PolicyActionKind::kPark;
        decision.shard = shard;
        return decision;
      }
    }
  }
  return none;
}

}  // namespace tpm
