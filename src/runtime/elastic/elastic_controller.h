#ifndef TPM_RUNTIME_ELASTIC_ELASTIC_CONTROLLER_H_
#define TPM_RUNTIME_ELASTIC_ELASTIC_CONTROLLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "runtime/elastic/elastic_policy.h"

namespace tpm {

/// The elastic control loop: a background thread that, every
/// poll_interval_ms, gathers a PolicyInputs snapshot, runs the (pure)
/// ElasticPolicy over it, and applies at most one decision. The runtime
/// owns the gather/apply closures; the controller owns only the cadence,
/// so the policy stays unit-testable without threads.
///
/// Pause() blocks until any in-flight poll (including its apply — a
/// migration) finished and keeps further polls from starting; the runtime
/// pauses the controller around Drain and Recover so rebalancing never
/// races the control plane.
class ElasticController {
 public:
  using GatherFn = std::function<PolicyInputs()>;
  /// Applies one non-kNone decision. Failures are the runtime's to
  /// surface (e.g. as a sticky error); the controller just keeps polling.
  using ApplyFn = std::function<void(const PolicyDecision&)>;

  ElasticController(ElasticPolicyOptions options, GatherFn gather,
                    ApplyFn apply);
  ~ElasticController();

  ElasticController(const ElasticController&) = delete;
  ElasticController& operator=(const ElasticController&) = delete;

  void Start();
  /// Stops and joins the poll thread. Idempotent.
  void Stop();

  /// Blocks new polls and waits out the in-flight one. Counted: each
  /// Pause must be matched by a Resume.
  void Pause();
  void Resume();

  /// Non-kNone decisions applied so far.
  int64_t decisions() const {
    return decisions_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  ElasticPolicyOptions options_;
  GatherFn gather_;
  ApplyFn apply_;
  ElasticPolicy policy_;

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  int pause_depth_ = 0;
  bool polling_ = false;  // a poll body (gather/evaluate/apply) is running
  std::atomic<int64_t> decisions_{0};
};

}  // namespace tpm

#endif  // TPM_RUNTIME_ELASTIC_ELASTIC_CONTROLLER_H_
