#include "runtime/elastic/migration_engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>

#include "common/str_util.h"
#include "core/pred.h"
#include "core/recoverability.h"
#include "core/schedule.h"
#include "log/file_backend.h"

namespace tpm {

namespace {
constexpr const char* kRecBegin = "MBEGIN";
constexpr const char* kRecCut = "MCUT";
constexpr const char* kRecFlip = "MFLIP";
constexpr const char* kRecAbort = "MABORT";
constexpr const char* kRecEnd = "MEND";

}  // namespace

std::string MigrationRecord::Serialize() const {
  switch (kind) {
    case Kind::kBegin:
      return StrCat(kRecBegin, "|", mid, "|", component, "|", from, "|", to);
    case Kind::kCut: {
      std::string pids;
      for (size_t i = 0; i < src_pids.size(); ++i) {
        if (i > 0) pids += ',';
        pids += StrCat(src_pids[i]);
      }
      return StrCat(kRecCut, "|", mid, "|", pid_base, "|", pids);
    }
    case Kind::kFlip:
      return StrCat(kRecFlip, "|", mid);
    case Kind::kAbort:
      return StrCat(kRecAbort, "|", mid);
    case Kind::kEnd:
      return StrCat(kRecEnd, "|", mid);
  }
  return "";
}

Result<MigrationRecord> MigrationRecord::Parse(const std::string& line) {
  const std::vector<std::string> fields = StrSplit(line, '|');
  if (fields.size() < 2) {
    return Status::InvalidArgument(
        StrCat("migration record too short: '", line, "'"));
  }
  MigrationRecord record;
  TPM_ASSIGN_OR_RETURN(record.mid, ParseInt64(fields[1]));
  if (fields[0] == kRecBegin) {
    record.kind = Kind::kBegin;
    if (fields.size() != 5) {
      return Status::InvalidArgument(
          StrCat("malformed MBEGIN: '", line, "'"));
    }
    TPM_ASSIGN_OR_RETURN(int64_t component, ParseInt64(fields[2]));
    TPM_ASSIGN_OR_RETURN(int64_t from, ParseInt64(fields[3]));
    TPM_ASSIGN_OR_RETURN(int64_t to, ParseInt64(fields[4]));
    record.component = static_cast<int>(component);
    record.from = static_cast<int>(from);
    record.to = static_cast<int>(to);
    return record;
  }
  if (fields[0] == kRecCut) {
    record.kind = Kind::kCut;
    if (fields.size() != 4) {
      return Status::InvalidArgument(StrCat("malformed MCUT: '", line, "'"));
    }
    TPM_ASSIGN_OR_RETURN(record.pid_base, ParseInt64(fields[2]));
    if (!fields[3].empty()) {
      for (const std::string& item : StrSplit(fields[3], ',')) {
        TPM_ASSIGN_OR_RETURN(int64_t pid, ParseInt64(item));
        record.src_pids.push_back(pid);
      }
    }
    return record;
  }
  if (fields[0] == kRecFlip) {
    record.kind = Kind::kFlip;
    return record;
  }
  if (fields[0] == kRecAbort) {
    record.kind = Kind::kAbort;
    return record;
  }
  if (fields[0] == kRecEnd) {
    record.kind = Kind::kEnd;
    return record;
  }
  return Status::InvalidArgument(
      StrCat("unknown migration record kind in '", line, "'"));
}

/// "wal/<site>" -> "elastic/<site>", so a site-filtered sweep can target
/// the migration log without crashing the shard WALs too (the same idiom
/// as the cross-shard coordinator's listener).
class MigrationEngine::RenamingListener : public CrashPointListener {
 public:
  explicit RenamingListener(CrashPointListener* user) : user_(user) {}

  bool OnCrashPoint(const char* site) override {
    if (user_ == nullptr) return false;
    const char* slash = std::strchr(site, '/');
    if (slash == nullptr) return user_->OnCrashPoint(site);
    const std::string renamed = StrCat("elastic", slash);
    return user_->OnCrashPoint(renamed.c_str());
  }

 private:
  CrashPointListener* user_;
};

MigrationEngine::MigrationEngine(Options options)
    : options_(std::move(options)) {}

MigrationEngine::~MigrationEngine() { Shutdown(); }

Status MigrationEngine::Init() {
  switch (options_.log_mode) {
    case ShardLogMode::kNone:
      break;
    case ShardLogMode::kMemory:
      wal_ = std::make_unique<Wal>(/*synchronous=*/true);
      break;
    case ShardLogMode::kFile: {
      TPM_ASSIGN_OR_RETURN(auto backend,
                           FileStorageBackend::Open(options_.wal_path));
      wal_ = std::make_unique<Wal>(std::move(backend), /*synchronous=*/true);
      break;
    }
  }
  if (wal_ != nullptr && options_.crash_listener != nullptr) {
    renamer_ = std::make_unique<RenamingListener>(options_.crash_listener);
    wal_->SetCrashPointListener(renamer_.get());
  }
  if (wal_ == nullptr) return Status::OK();

  // Scan: group records by mid, derive the routing overrides (every
  // durably flipped migration, in log order) and the fix-ups for the
  // incomplete ones.
  struct Scan {
    bool has_begin = false, has_cut = false, has_flip = false;
    bool has_abort = false, has_end = false;
    MigrationRecord begin, cut;
  };
  std::map<int64_t, Scan> scans;
  for (const std::string& line : wal_->records()) {
    TPM_ASSIGN_OR_RETURN(MigrationRecord record,
                         MigrationRecord::Parse(line));
    Scan& scan = scans[record.mid];
    next_mid_ = std::max(next_mid_, record.mid + 1);
    switch (record.kind) {
      case MigrationRecord::Kind::kBegin:
        scan.has_begin = true;
        scan.begin = record;
        break;
      case MigrationRecord::Kind::kCut:
        scan.has_cut = true;
        scan.cut = record;
        break;
      case MigrationRecord::Kind::kFlip:
        scan.has_flip = true;
        break;
      case MigrationRecord::Kind::kAbort:
        scan.has_abort = true;
        break;
      case MigrationRecord::Kind::kEnd:
        scan.has_end = true;
        break;
    }
  }
  for (auto& [mid, scan] : scans) {
    if (!scan.has_begin) {
      return Status::Internal(
          StrCat("migration ", mid, " has records but no MBEGIN"));
    }
    if (scan.has_flip) {
      // Decided: the flip governs routing whether or not MEND made it.
      overrides_[scan.begin.component] = scan.begin.to;
      ever_migrated_.store(true, std::memory_order_release);
      if (!scan.has_end) {
        Fixup fixup;
        fixup.kind = Fixup::Kind::kRedoStrip;
        fixup.begin = scan.begin;
        fixup.cut = scan.cut;
        fixups_.push_back(std::move(fixup));
      } else {
        completed_.fetch_add(1);
      }
      continue;
    }
    if (scan.has_abort || scan.has_end) {
      if (!scan.has_abort) {
        return Status::Internal(
            StrCat("migration ", mid, " has MEND but no MFLIP"));
      }
      aborted_.fetch_add(1);
      continue;
    }
    ever_migrated_.store(true, std::memory_order_release);
    Fixup fixup;
    fixup.kind = scan.has_cut ? Fixup::Kind::kUndoCut
                              : Fixup::Kind::kAbortOnly;
    fixup.begin = scan.begin;
    fixup.cut = scan.cut;
    fixups_.push_back(std::move(fixup));
  }
  return Status::OK();
}

Status MigrationEngine::ApplyCrashFixups() {
  if (options_.shards == nullptr) {
    return Status::Internal("migration engine has no shards");
  }
  for (const Fixup& fixup : fixups_) {
    const int64_t mid = fixup.begin.mid;
    switch (fixup.kind) {
      case Fixup::Kind::kAbortOnly:
        break;
      case Fixup::Kind::kUndoCut: {
        // The target import may or may not have happened (ReplaceAll is
        // atomic: complete-old or complete-new); stripping the reserved
        // pid range is idempotent either way.
        RuntimeShard* dst = (*options_.shards)[fixup.begin.to].get();
        RecoveryLog* log = dst->log();
        if (log != nullptr) {
          TPM_ASSIGN_OR_RETURN(std::vector<SchedulerLogRecord> records,
                               log->Records());
          const int64_t base = fixup.cut.pid_base;
          const int64_t limit =
              base + static_cast<int64_t>(fixup.cut.src_pids.size());
          std::vector<SchedulerLogRecord> kept;
          kept.reserve(records.size());
          for (SchedulerLogRecord& record : records) {
            const int64_t pid = record.pid.value();
            if (pid >= base && pid < limit) continue;
            kept.push_back(std::move(record));
          }
          if (kept.size() != records.size()) {
            TPM_RETURN_IF_ERROR(log->ReplaceAll(kept));
          }
        }
        break;
      }
      case Fixup::Kind::kRedoStrip: {
        // The flip is durable, so the import durably preceded it; strip
        // the moved pids from the source (idempotent — a crash after the
        // strip but before MEND re-runs as a no-op).
        RuntimeShard* src = (*options_.shards)[fixup.begin.from].get();
        RecoveryLog* log = src->log();
        if (log != nullptr) {
          TPM_ASSIGN_OR_RETURN(std::vector<SchedulerLogRecord> records,
                               log->Records());
          std::set<int64_t> moved(fixup.cut.src_pids.begin(),
                                  fixup.cut.src_pids.end());
          std::vector<SchedulerLogRecord> kept;
          kept.reserve(records.size());
          for (SchedulerLogRecord& record : records) {
            if (moved.count(record.pid.value()) > 0) continue;
            kept.push_back(std::move(record));
          }
          if (kept.size() != records.size()) {
            TPM_RETURN_IF_ERROR(log->ReplaceAll(kept));
          }
        }
        break;
      }
    }
    MigrationRecord close;
    close.mid = mid;
    if (fixup.kind == Fixup::Kind::kRedoStrip) {
      close.kind = MigrationRecord::Kind::kEnd;
      completed_.fetch_add(1);
    } else {
      close.kind = MigrationRecord::Kind::kAbort;
      aborted_.fetch_add(1);
    }
    TPM_RETURN_IF_ERROR(AppendRecord(close));
  }
  fixups_.clear();
  return Status::OK();
}

void MigrationEngine::SetTopology(
    std::vector<std::vector<Subsystem*>> subsystems_of_component,
    std::vector<std::vector<std::pair<ServiceId, ServiceId>>>
        conflicts_of_component) {
  subsystems_of_component_ = std::move(subsystems_of_component);
  conflicts_of_component_ = std::move(conflicts_of_component);
}

Status MigrationEngine::AppendRecord(const MigrationRecord& record) {
  if (wal_ == nullptr) return Status::OK();  // kNone: no durability
  Status appended = wal_->Append(record.Serialize());
  if (appended.ok()) appended = wal_->Flush();
  if (!appended.ok()) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (wal_->crashed()) crashed_ = true;
  }
  return appended;
}

void MigrationEngine::StickyFail(const Status& status) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (error_.ok()) {
    error_ = Status(status.code(),
                    StrCat("migration engine: ", status.message()));
  }
}

bool MigrationEngine::HitSite(const char* site) {
  if (options_.crash_listener == nullptr) return false;
  if (!options_.crash_listener->OnCrashPoint(site)) return false;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    crashed_ = true;
  }
  StickyFail(Status::Unavailable(
      StrCat("injected crash at ", site)));
  return true;
}

Status MigrationEngine::status() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return error_;
}

void MigrationEngine::LearnDef(const ProcessDef& def) {
  {
    std::shared_lock<std::shared_mutex> read(defs_mu_);
    if (defs_.find(def.name()) != defs_.end()) return;
  }
  const int component = options_.router->ComponentOfDef(def);
  std::unique_lock<std::shared_mutex> write(defs_mu_);
  defs_.emplace(def.name(), std::make_pair(&def, component));
}

int MigrationEngine::ComponentOfDefName(const std::string& name) const {
  std::shared_lock<std::shared_mutex> read(defs_mu_);
  auto it = defs_.find(name);
  return it == defs_.end() ? -1 : it->second.second;
}

const ProcessDef* MigrationEngine::DefOfName(const std::string& name) const {
  std::shared_lock<std::shared_mutex> read(defs_mu_);
  auto it = defs_.find(name);
  return it == defs_.end() ? nullptr : it->second.first;
}

Result<int> MigrationEngine::Buffer(Submission submission) {
  std::lock_guard<std::mutex> lock(buffer_mu_);
  if (active_ == nullptr) {
    return Status::Internal("Buffer with no active migration");
  }
  if (active_->fresh.size() >= options_.buffer_capacity) {
    return Status::ResourceExhausted("migration buffer full");
  }
  const int to = active_->to;
  active_->fresh.push_back(std::move(submission));
  return to;
}

bool MigrationEngine::MaybeIntercept(int shard, Submission& submission) {
  if (submission.def != nullptr) LearnDef(*submission.def);
  if (!migration_active_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(buffer_mu_);
  if (active_ == nullptr || shard != active_->from) return false;
  if (submission.def == nullptr) {
    // The engine's own quiesce marker reached the head of the source
    // queue: everything enqueued before it has been drained.
    if (!active_->marker_acked) {
      active_->marker_acked = true;
      submission.result.set_value(ProcessId());
      active_->marker_ack.set_value();
    }
    return true;
  }
  if (options_.router->ComponentOfDef(*submission.def) !=
      active_->component) {
    return false;
  }
  active_->swept.push_back(std::move(submission));
  return true;
}

Status MigrationEngine::ReadShardRecords(
    RuntimeShard* shard, std::vector<SchedulerLogRecord>* records) {
  RecoveryLog* log = shard->log();
  if (log == nullptr) {
    records->clear();
    return Status::OK();
  }
  shard->PostCommand([log, records] {
    TPM_ASSIGN_OR_RETURN(*records, log->Records());
    return Status::OK();
  });
  return shard->WaitCommandDone();
}

Status MigrationEngine::ReplaceShardRecords(
    RuntimeShard* shard, std::vector<SchedulerLogRecord> records) {
  RecoveryLog* log = shard->log();
  if (log == nullptr) return Status::OK();
  auto owned =
      std::make_shared<std::vector<SchedulerLogRecord>>(std::move(records));
  shard->PostCommand([log, owned] { return log->ReplaceAll(*owned); });
  return shard->WaitCommandDone();
}

Status MigrationEngine::AppendShardRecords(
    RuntimeShard* shard, std::vector<SchedulerLogRecord> records) {
  RecoveryLog* log = shard->log();
  if (log == nullptr) return Status::OK();
  auto imported =
      std::make_shared<std::vector<SchedulerLogRecord>>(std::move(records));
  // One command: the re-read and the rewrite happen back to back on the
  // worker thread, so no concurrently-admitted record can fall between
  // them and be lost by the ReplaceAll.
  shard->PostCommand([log, imported] {
    TPM_ASSIGN_OR_RETURN(std::vector<SchedulerLogRecord> all,
                         log->Records());
    all.reserve(all.size() + imported->size());
    for (SchedulerLogRecord& record : *imported) {
      all.push_back(std::move(record));
    }
    return log->ReplaceAll(all);
  });
  return shard->WaitCommandDone();
}

Status MigrationEngine::StripShardRecords(RuntimeShard* shard,
                                          std::vector<int64_t> pids) {
  RecoveryLog* log = shard->log();
  if (log == nullptr) return Status::OK();
  auto moved =
      std::make_shared<std::set<int64_t>>(pids.begin(), pids.end());
  shard->PostCommand([log, moved] {
    TPM_ASSIGN_OR_RETURN(std::vector<SchedulerLogRecord> all,
                         log->Records());
    std::vector<SchedulerLogRecord> keep;
    keep.reserve(all.size());
    for (SchedulerLogRecord& record : all) {
      if (moved->count(record.pid.value()) > 0) continue;
      keep.push_back(std::move(record));
    }
    return log->ReplaceAll(keep);
  });
  return shard->WaitCommandDone();
}

Status MigrationEngine::Quiesce(RuntimeShard* src) {
  if (options_.mode == TickMode::kFreeRunning) {
    // Marker through the source queue: FIFO guarantees every component
    // submission enqueued before the gate closed has been drained (and
    // swept) once the marker is acked; the gate keeps new ones out.
    std::future<void> ack;
    {
      std::lock_guard<std::mutex> lock(buffer_mu_);
      ack = active_->marker_ack.get_future();
    }
    Submission marker;  // def == nullptr
    TPM_RETURN_IF_ERROR(src->EnqueueSubmission(std::move(marker)));
    for (int spin = 0;; ++spin) {
      if (ack.wait_for(std::chrono::milliseconds(10)) ==
          std::future_status::ready) {
        break;
      }
      TPM_RETURN_IF_ERROR(src->status());
      if (spin > 3000) {
        return Status::Unavailable(
            "quiesce marker did not drain within 30s");
      }
    }
  }
  // Wait out the in-flight processes touching the component. Monotone:
  // the gate blocks new ones, and the scheduler guarantees termination of
  // everything admitted.
  const int component = active_->component;
  const ShardRouter* router = options_.router;
  for (int spin = 0;; ++spin) {
    int touching = 0;
    src->PostSchedulerCommand(
        [component, router, &touching](TransactionalProcessScheduler* sch) {
          sch->ForEachActiveDef(
              [component, router, &touching](ProcessId,
                                             const ProcessDef* def) {
                if (def != nullptr &&
                    router->ComponentOfDef(*def) == component) {
                  ++touching;
                }
              });
          return Status::OK();
        });
    TPM_RETURN_IF_ERROR(src->WaitCommandDone());
    if (touching == 0) return Status::OK();
    if (options_.mode == TickMode::kLockstep) {
      // Lockstep migration requires an idle runtime; an active process
      // here means the caller broke that contract.
      return Status::FailedPrecondition(
          "lockstep migration requires an idle runtime");
    }
    if (spin > 30000) {
      return Status::Unavailable(
          "source shard did not quiesce the component within 30s");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

Status MigrationEngine::VerifyRecords(
    const std::vector<SchedulerLogRecord>& records) const {
  ProcessSchedule schedule;
  for (const SchedulerLogRecord& record : records) {
    switch (record.kind) {
      case SchedulerLogRecord::Kind::kProcessBegin: {
        const ProcessDef* def = DefOfName(record.def_name);
        if (def == nullptr) {
          return Status::FailedPrecondition(
              StrCat("cannot verify merged history: unknown definition '",
                     record.def_name, "'"));
        }
        TPM_RETURN_IF_ERROR(schedule.AddProcess(record.pid, def));
        break;
      }
      case SchedulerLogRecord::Kind::kActivityCommitted:
        TPM_RETURN_IF_ERROR(schedule.Append(ScheduleEvent::Activity(
            {record.pid, record.activity, /*inverse=*/false})));
        break;
      case SchedulerLogRecord::Kind::kActivityCompensated:
        TPM_RETURN_IF_ERROR(schedule.Append(ScheduleEvent::Activity(
            {record.pid, record.activity, /*inverse=*/true})));
        break;
      case SchedulerLogRecord::Kind::kProcessCommitted:
        TPM_RETURN_IF_ERROR(
            schedule.Append(ScheduleEvent::Commit(record.pid)));
        break;
      case SchedulerLogRecord::Kind::kProcessAborted:
        TPM_RETURN_IF_ERROR(
            schedule.Append(ScheduleEvent::Abort(record.pid)));
        break;
      case SchedulerLogRecord::Kind::kCommitHeld:
        return Status::FailedPrecondition(
            "cross-shard vote records cannot migrate");
    }
  }
  TPM_ASSIGN_OR_RETURN(bool pred, IsPRED(schedule, *options_.spec));
  if (!pred) {
    return Status::Internal("merged migration history is not PRED");
  }
  if (!IsProcessRecoverable(CommittedProjection(schedule),
                            *options_.spec)) {
    return Status::Internal(
        "merged migration committed projection is not Proc-REC");
  }
  return Status::OK();
}

Status MigrationEngine::RunPrepare(RuntimeShard* src, RuntimeShard* dst) {
  TPM_RETURN_IF_ERROR(Quiesce(src));
  if (HitSite("elastic/quiesced")) return status();

  if (src->log() == nullptr) return Status::OK();  // kNone: nothing to cut

  // Cut the component's segment out of the source log.
  std::vector<SchedulerLogRecord> src_records;
  TPM_RETURN_IF_ERROR(ReadShardRecords(src, &src_records));
  std::set<int64_t> moved_pids;
  std::vector<SchedulerLogRecord> segment;
  const int component = active_->component;
  for (SchedulerLogRecord& record : src_records) {
    if (record.kind == SchedulerLogRecord::Kind::kCommitHeld) {
      return Status::FailedPrecondition(
          "cross-shard vote records cannot migrate");
    }
    if (record.kind == SchedulerLogRecord::Kind::kProcessBegin) {
      const int record_component = ComponentOfDefName(record.def_name);
      if (record_component < 0) {
        return Status::FailedPrecondition(
            StrCat("source log references unknown definition '",
                   record.def_name, "'"));
      }
      if (record_component == component) {
        moved_pids.insert(record.pid.value());
      }
    }
    if (moved_pids.count(record.pid.value()) > 0) {
      segment.push_back(std::move(record));
    }
  }
  active_->pid_count = static_cast<int64_t>(moved_pids.size());
  active_->src_pids.assign(moved_pids.begin(), moved_pids.end());

  // Reserve the target pid window and renumber the segment into it
  // (sorted source pids map to base + rank, preserving relative order).
  int64_t pid_base = 0;
  const int64_t count = active_->pid_count;
  dst->PostSchedulerCommand(
      [count, &pid_base](TransactionalProcessScheduler* sch) {
        pid_base = sch->ReservePidRange(count);
        return Status::OK();
      });
  TPM_RETURN_IF_ERROR(dst->WaitCommandDone());
  active_->pid_base = pid_base;
  std::map<int64_t, int64_t> renumber;
  {
    int64_t rank = 0;
    for (const int64_t pid : moved_pids) renumber[pid] = pid_base + rank++;
  }
  for (SchedulerLogRecord& record : segment) {
    record.pid = ProcessId(renumber[record.pid.value()]);
  }

  // MCUT: the migration is now replayable — the pid list and window let
  // recovery undo or redo the surgery below without the definitions.
  MigrationRecord cut;
  cut.kind = MigrationRecord::Kind::kCut;
  cut.mid = active_->mid;
  cut.pid_base = pid_base;
  cut.src_pids.assign(moved_pids.begin(), moved_pids.end());
  TPM_RETURN_IF_ERROR(AppendRecord(cut));

  // Merge + offline re-verification before anything mutates. The merged
  // vector is a throwaway snapshot-plus-copies for verification only; the
  // durable import below re-reads inside one worker command.
  if (options_.verify) {
    std::vector<SchedulerLogRecord> merged;
    TPM_RETURN_IF_ERROR(ReadShardRecords(dst, &merged));
    for (const SchedulerLogRecord& record : segment) {
      merged.push_back(record);
    }
    TPM_RETURN_IF_ERROR(VerifyRecords(merged));
  }

  // Import on the target (durable, atomic). The source strip in RunCommit
  // removes the moved pids by id — the source keeps running its other
  // components meanwhile, so a snapshot-based rewrite would lose their
  // concurrently appended records.
  if (HitSite("elastic/import")) return status();
  TPM_RETURN_IF_ERROR(AppendShardRecords(dst, std::move(segment)));
  active_->imported = true;
  if (HitSite("elastic/imported")) return status();
  return Status::OK();
}

Status MigrationEngine::RunCommit(RuntimeShard* src, RuntimeShard* dst) {
  const int component = active_->component;
  const int from = active_->from;
  const int to = active_->to;

  // Strip the moved segment from the source log (the import preceded the
  // flip, so a crash anywhere in here redoes this idempotently).
  if (src->log() != nullptr) {
    if (HitSite("elastic/strip")) return status();
    TPM_RETURN_IF_ERROR(StripShardRecords(src, active_->src_pids));
    if (HitSite("elastic/stripped")) return status();
  }

  // Move the component's subsystem registrations and extra conflicts.
  if (component < static_cast<int>(subsystems_of_component_.size())) {
    const std::vector<Subsystem*>& moving =
        subsystems_of_component_[static_cast<size_t>(component)];
    const std::vector<std::pair<ServiceId, ServiceId>>& conflicts =
        component < static_cast<int>(conflicts_of_component_.size())
            ? conflicts_of_component_[static_cast<size_t>(component)]
            : std::vector<std::pair<ServiceId, ServiceId>>{};
    if (!moving.empty()) {
      src->PostSchedulerCommand(
          [&moving](TransactionalProcessScheduler* sch) {
            for (Subsystem* subsystem : moving) {
              TPM_RETURN_IF_ERROR(sch->UnregisterSubsystem(subsystem));
            }
            return Status::OK();
          });
      TPM_RETURN_IF_ERROR(src->WaitCommandDone());
      dst->PostSchedulerCommand(
          [&moving, &conflicts](TransactionalProcessScheduler* sch) {
            for (Subsystem* subsystem : moving) {
              TPM_RETURN_IF_ERROR(sch->RegisterSubsystem(subsystem));
            }
            for (const auto& [a, b] : conflicts) {
              sch->AddConflict(a, b);
            }
            return Status::OK();
          });
      TPM_RETURN_IF_ERROR(dst->WaitCommandDone());
    }
  }

  // A parked target must be running before traffic lands on it.
  if (options_.resume_shard) options_.resume_shard(to);

  // The flip: under the unique route lock nothing can race the remap
  // store, and the buffered submissions flush to the target in their
  // original FIFO order (swept — already queued before the gate — first,
  // then the fresh ones buffered during the migration).
  {
    std::unique_lock<std::shared_mutex> route_lock(route_mu_);
    options_.router->SetComponentShard(component, to);
    migration_active_.store(false, std::memory_order_release);
    FlushBuffersTo(dst);
  }
  if (HitSite("elastic/flipped")) return status();

  MigrationRecord end;
  end.kind = MigrationRecord::Kind::kEnd;
  end.mid = active_->mid;
  TPM_RETURN_IF_ERROR(AppendRecord(end));
  completed_.fetch_add(1);
  if (options_.on_migrated) options_.on_migrated(component, from, to);
  return Status::OK();
}

void MigrationEngine::FlushBuffersTo(RuntimeShard* shard) {
  std::deque<Submission> swept;
  std::deque<Submission> fresh;
  {
    std::lock_guard<std::mutex> lock(buffer_mu_);
    swept.swap(active_->swept);
    fresh.swap(active_->fresh);
  }
  auto flush = [shard](std::deque<Submission>& buffered) {
    for (Submission& submission : buffered) {
      // Block on a full queue — these submissions were already accepted,
      // shedding them now would break the producer's ticket.
      std::promise<Result<ProcessId>>* promise = &submission.result;
      Status pushed = shard->EnqueueSubmission(std::move(submission),
                                               BackpressurePolicy::kBlock);
      if (!pushed.ok()) promise->set_value(pushed);
    }
  };
  flush(swept);
  flush(fresh);
}

void MigrationEngine::AbortMigration(RuntimeShard* src, RuntimeShard* dst) {
  // Undo the target import if it happened (strip the reserved window).
  if (active_->imported && dst->log() != nullptr) {
    std::vector<int64_t> window;
    window.reserve(static_cast<size_t>(active_->pid_count));
    for (int64_t pid = active_->pid_base;
         pid < active_->pid_base + active_->pid_count; ++pid) {
      window.push_back(pid);
    }
    Status stripped = StripShardRecords(dst, std::move(window));
    if (!stripped.ok()) StickyFail(stripped);
  }
  // Reopen the gate and give the source its submissions back.
  {
    std::unique_lock<std::shared_mutex> route_lock(route_mu_);
    migration_active_.store(false, std::memory_order_release);
    FlushBuffersTo(src);
  }
  MigrationRecord abort_record;
  abort_record.kind = MigrationRecord::Kind::kAbort;
  abort_record.mid = active_->mid;
  Status appended = AppendRecord(abort_record);
  if (!appended.ok()) StickyFail(appended);
  aborted_.fetch_add(1);
}

Status MigrationEngine::Migrate(int component, int to) {
  std::lock_guard<std::mutex> op_lock(op_mu_);
  TPM_RETURN_IF_ERROR(status());
  if (options_.shards == nullptr || options_.router == nullptr) {
    return Status::Internal("migration engine is not wired to a runtime");
  }
  if (component < 0 || component >= options_.router->num_components()) {
    return Status::InvalidArgument(
        StrCat("component ", component, " out of range"));
  }
  if (to < 0 || to >= static_cast<int>(options_.shards->size())) {
    return Status::InvalidArgument(StrCat("shard ", to, " out of range"));
  }
  const int from = options_.router->ShardOfComponent(component);
  if (from < 0) {
    return Status::NotFound(
        StrCat("component ", component, " has no owning shard"));
  }
  if (from == to) {
    return Status::InvalidArgument(
        StrCat("component ", component, " is already on shard ", to));
  }
  if (options_.spans_begun && options_.spans_begun() > 0) {
    return Status::FailedPrecondition(
        "migration with spanning processes is not supported (sub-process "
        "names encode shard numbers; a staged limit)");
  }
  if (options_.mode == TickMode::kLockstep) {
    for (const auto& shard : *options_.shards) {
      if (!shard->IsIdle()) {
        return Status::FailedPrecondition(
            "lockstep migration requires an idle runtime (Drain first)");
      }
    }
  }
  RuntimeShard* src = (*options_.shards)[from].get();
  RuntimeShard* dst = (*options_.shards)[to].get();

  ever_migrated_.store(true, std::memory_order_release);
  started_.fetch_add(1);

  // Write-ahead: the migration durably exists before anything moves.
  MigrationRecord begin;
  begin.kind = MigrationRecord::Kind::kBegin;
  begin.mid = next_mid_;
  begin.component = component;
  begin.from = from;
  begin.to = to;
  Status logged = AppendRecord(begin);
  if (!logged.ok()) {
    StickyFail(logged);
    return status();
  }

  // Close the admission gate: from here, producers buffer the component's
  // submissions instead of queueing them on the source.
  {
    std::unique_lock<std::shared_mutex> route_lock(route_mu_);
    auto migration = std::make_unique<ActiveMigration>();
    migration->mid = next_mid_++;
    migration->component = component;
    migration->from = from;
    migration->to = to;
    {
      std::lock_guard<std::mutex> lock(buffer_mu_);
      active_ = std::move(migration);
    }
    migrating_component_ = component;
    migration_active_.store(true, std::memory_order_release);
  }

  Status prepared = RunPrepare(src, dst);
  if (prepared.ok()) {
    {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (crashed_) prepared = error_;
    }
  }
  if (prepared.ok()) {
    // The decision point: after this record is durable the migration
    // completes — either here or in the next incarnation's fix-ups.
    MigrationRecord flip;
    flip.kind = MigrationRecord::Kind::kFlip;
    flip.mid = active_->mid;
    prepared = AppendRecord(flip);
  }
  if (!prepared.ok()) {
    bool crashed;
    {
      std::lock_guard<std::mutex> lock(error_mu_);
      crashed = crashed_;
    }
    if (crashed) {
      // A simulated death: no cleanup — the next incarnation repairs.
      StickyFail(prepared);
      return status();
    }
    AbortMigration(src, dst);
    {
      std::lock_guard<std::mutex> lock(buffer_mu_);
      active_.reset();
    }
    return prepared;
  }

  Status committed = RunCommit(src, dst);
  if (!committed.ok()) {
    // Post-decision failures are sticky: the flip is durable, the runtime
    // is inconsistent until restart repairs it.
    StickyFail(committed);
    {
      std::lock_guard<std::mutex> lock(buffer_mu_);
      active_.reset();
    }
    return status();
  }
  {
    std::lock_guard<std::mutex> lock(buffer_mu_);
    active_.reset();
  }
  return Status::OK();
}

void MigrationEngine::Shutdown() {
  std::lock_guard<std::mutex> op_lock(op_mu_);
  std::lock_guard<std::mutex> lock(buffer_mu_);
  if (active_ == nullptr) return;
  auto fail = [](std::deque<Submission>& buffered) {
    for (Submission& submission : buffered) {
      submission.result.set_value(Status::Unavailable(
          "runtime stopped while the submission was buffered for "
          "migration"));
    }
    buffered.clear();
  };
  fail(active_->swept);
  fail(active_->fresh);
  migration_active_.store(false, std::memory_order_release);
  active_.reset();
}

}  // namespace tpm
