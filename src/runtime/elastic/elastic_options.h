#ifndef TPM_RUNTIME_ELASTIC_ELASTIC_OPTIONS_H_
#define TPM_RUNTIME_ELASTIC_ELASTIC_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "log/storage_backend.h"

namespace tpm {

/// Knobs of the adaptive controller (ElasticPolicy + ElasticController).
/// The policy is deliberately hysteretic: an imbalance must SUSTAIN for
/// `sustain_polls` consecutive polls before it triggers a migration, and a
/// completed migration starts a cooldown during which no further migration
/// fires — both inherited from consolidation-style OS schedulers, where
/// reacting to a one-poll spike just thrashes state back and forth.
struct ElasticPolicyOptions {
  /// Run the background controller thread (rebalancing + parking). Off,
  /// the elastic runtime is manual-only: MigrateComponent / ParkShard /
  /// ResumeShard still work, nothing happens on its own.
  bool enabled = false;
  /// Rebalance when max(shard busy) / mean(active shard busy) reaches
  /// this ratio.
  double imbalance_ratio = 2.0;
  /// Consecutive breaching polls before a migration fires.
  int sustain_polls = 3;
  /// Polls after a migration during which no further migration fires.
  int cooldown_polls = 10;
  /// Controller poll period.
  int poll_interval_ms = 20;
  /// DPM-style idle parking: park a shard that owns no conflict
  /// components and has been near-idle (busy fraction below
  /// `park_busy_threshold`, empty queue) — its worker then blocks instead
  /// of spinning, and resumes on the first routed submission.
  bool park_idle_shards = true;
  double park_busy_threshold = 0.05;
  /// Never park below this many running shards.
  int min_active_shards = 1;
  /// Shrink path: when EVERY active shard's busy fraction is below this,
  /// consolidate — migrate the least-loaded donor's components onto other
  /// active shards so the emptied shard parks on a later poll. 0 disables
  /// consolidation.
  double consolidate_below = 0.0;
};

/// Configuration of the elastic runtime layer (ShardedRuntimeOptions::
/// elastic). Off by default: the runtime then contains no probe, no
/// monitor, no engine — the exact pre-elastic hot path.
struct ElasticOptions {
  /// Master switch: install the per-shard probes, the load monitor and
  /// the migration engine. Required for MigrateComponent / ParkShard.
  /// Mutually exclusive with replication; auto-rebalancing
  /// (policy.enabled) additionally requires free-running shards.
  bool enabled = false;
  /// Pack the initial conflict partition onto this many shards; the
  /// remaining (num_shards - initial_active_shards) shards start with no
  /// components and are parked immediately — pre-allocated grow capacity.
  /// 0 = pack across all shards (no spares).
  int initial_active_shards = 0;
  /// The adaptive controller.
  ElasticPolicyOptions policy;
  /// Fault injection over the migration WAL and the engine's explicit
  /// protocol steps (sites "elastic/append|sync|synced|replace|replaced"
  /// from the WAL plus "elastic/quiesced|import|imported|strip|stripped|
  /// flipped" around the cross-log surgery).
  CrashPointListener* crash_listener = nullptr;
  /// Bound on submissions buffered against the migration target while a
  /// component is mid-migration; beyond it producers get
  /// ResourceExhausted (the same shedding contract as a full queue).
  size_t migration_buffer_capacity = 1024;
};

}  // namespace tpm

#endif  // TPM_RUNTIME_ELASTIC_ELASTIC_OPTIONS_H_
