#include "runtime/elastic/load_monitor.h"

#include <algorithm>
#include <chrono>

namespace tpm {

namespace {
int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

LoadMonitor::LoadMonitor(int num_shards, int num_components,
                         int64_t window_ns)
    : window_ns_(std::max<int64_t>(window_ns, 1)),
      component_submissions_(
          static_cast<size_t>(std::max(num_components, 0))) {
  shards_.reserve(static_cast<size_t>(std::max(num_shards, 0)));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<ShardState>());
  }
  for (auto& counter : component_submissions_) counter.store(0);
}

void LoadMonitor::Expire(ShardState& state, int64_t now_ns) const {
  const int64_t horizon = now_ns - window_ns_;
  while (!state.window.empty() && state.window.front().at_ns < horizon) {
    state.window_busy_ns -= state.window.front().pass_ns;
    state.window_admitted -= state.window.front().admitted;
    state.window.pop_front();
  }
}

void LoadMonitor::RecordPass(int shard, const ShardPassSample& sample) {
  if (shard < 0 || shard >= num_shards()) return;
  ShardState& state = *shards_[static_cast<size_t>(shard)];
  const int64_t now_ns = NowNs();
  std::lock_guard<std::mutex> lock(state.mu);
  state.window.push_back({now_ns, sample.pass_ns, sample.admitted});
  state.window_busy_ns += sample.pass_ns;
  state.window_admitted += sample.admitted;
  state.queue_depth = sample.queue_depth;
  state.committed_total = sample.committed_total;
  state.admitted_total += sample.admitted;
  Expire(state, now_ns);
}

void LoadMonitor::CountSubmission(int component) {
  if (component < 0 || component >= num_components()) return;
  component_submissions_[static_cast<size_t>(component)].fetch_add(
      1, std::memory_order_relaxed);
}

void LoadMonitor::SetParked(int shard, bool parked) {
  if (shard < 0 || shard >= num_shards()) return;
  ShardState& state = *shards_[static_cast<size_t>(shard)];
  std::lock_guard<std::mutex> lock(state.mu);
  state.parked = parked;
}

ShardLoadSnapshot LoadMonitor::SnapshotLocked(int shard, ShardState& state,
                                              int64_t now_ns) const {
  Expire(state, now_ns);
  ShardLoadSnapshot snapshot;
  snapshot.shard = shard;
  snapshot.parked = state.parked;
  snapshot.queue_depth = state.queue_depth;
  snapshot.committed_total = state.committed_total;
  snapshot.admitted_total = state.admitted_total;
  snapshot.busy_fraction =
      std::min(1.0, static_cast<double>(state.window_busy_ns) /
                        static_cast<double>(window_ns_));
  snapshot.admitted_per_ms = static_cast<double>(state.window_admitted) /
                             (static_cast<double>(window_ns_) / 1e6);
  return snapshot;
}

ShardLoadSnapshot LoadMonitor::Snapshot(int shard) const {
  if (shard < 0 || shard >= num_shards()) return {};
  ShardState& state = *shards_[static_cast<size_t>(shard)];
  const int64_t now_ns = NowNs();
  std::lock_guard<std::mutex> lock(state.mu);
  return SnapshotLocked(shard, state, now_ns);
}

std::vector<ShardLoadSnapshot> LoadMonitor::SnapshotAll() const {
  std::vector<ShardLoadSnapshot> all;
  all.reserve(shards_.size());
  const int64_t now_ns = NowNs();
  for (int shard = 0; shard < num_shards(); ++shard) {
    ShardState& state = *shards_[static_cast<size_t>(shard)];
    std::lock_guard<std::mutex> lock(state.mu);
    all.push_back(SnapshotLocked(shard, state, now_ns));
  }
  return all;
}

std::vector<int64_t> LoadMonitor::ComponentSubmissions() const {
  std::vector<int64_t> counts;
  counts.reserve(component_submissions_.size());
  for (const auto& counter : component_submissions_) {
    counts.push_back(counter.load(std::memory_order_relaxed));
  }
  return counts;
}

}  // namespace tpm
