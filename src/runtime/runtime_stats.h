#ifndef TPM_RUNTIME_RUNTIME_STATS_H_
#define TPM_RUNTIME_RUNTIME_STATS_H_

#include <cstdint>
#include <vector>

#include "core/scheduler_options.h"
#include "runtime/replica_group.h"

namespace tpm {

/// Aggregated view over a sharded runtime: every shard scheduler's stats
/// verbatim, plus their fan-in (SchedulerStats::MergeFrom — counters sum,
/// virtual_time is the makespan maximum) and the front-end's own counters.
struct RuntimeStats {
  /// Indexed by shard.
  std::vector<SchedulerStats> per_shard;
  /// MergeFrom over all shards. With one shard this equals the shard's
  /// stats, which is what ties the sharded numbers back to a solo run.
  SchedulerStats merged;
  /// Submissions accepted into some shard's queue.
  int64_t submissions_accepted = 0;
  /// Submissions bounced by the kReject backpressure policy (full queue).
  int64_t submissions_rejected = 0;
  /// Lockstep tick rounds driven so far (0 in free-running mode).
  int64_t lockstep_rounds = 0;
  /// Cross-shard coordination agent counters: spanning processes begun
  /// (SBEGIN logged) and terminally decided either way. The per-shard 2PC
  /// view (votes, force-commits) lives in the merged scheduler counters
  /// (spanning_admitted / cross_shard_prepares / in_doubt_resolved).
  int64_t spans_begun = 0;
  int64_t spans_committed = 0;
  int64_t spans_aborted = 0;
  /// Replication counters, summed over all shards' replica groups (all
  /// zero when replication is off). A divergence is a losing ballot in a
  /// completed vote; every divergence evicts its replica; a failover is a
  /// primary promotion.
  int64_t replica_divergences = 0;
  int64_t failovers = 0;
  int64_t replicas_evicted = 0;
  int64_t vote_rounds = 0;
  /// Per-shard replica-group stats; empty when replication is off.
  std::vector<ReplicaGroupStats> per_shard_replicas;
  /// Producer-side submission-queue depth per shard (approximate by
  /// nature — workers drain concurrently).
  std::vector<size_t> queue_depths;
  /// Elastic counters (all zero when the elastic runtime is off).
  /// Migrations by terminal state; started >= completed + aborted while
  /// one is in flight.
  int64_t migrations_started = 0;
  int64_t migrations_completed = 0;
  int64_t migrations_aborted = 0;
  /// Shards currently parked (DPM sleep).
  int64_t shards_parked = 0;
  /// Non-noop decisions the elastic controller has applied.
  int64_t rebalance_decisions = 0;
};

}  // namespace tpm

#endif  // TPM_RUNTIME_RUNTIME_STATS_H_
