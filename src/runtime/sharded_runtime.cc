#include "runtime/sharded_runtime.h"

#include <algorithm>
#include <filesystem>
#include <thread>
#include <utility>

#include "common/str_util.h"
#include "core/pred.h"
#include "core/recoverability.h"
#include "core/schedule.h"

namespace tpm {

/// Per-shard SchedulerObserver installed on the shard scheduler; fans the
/// callbacks into the runtime's observer list, tagged with the shard
/// index. Runs on the shard worker thread; the runtime serializes the
/// fan-in under observer_mu_ so concurrent shards never interleave inside
/// a RuntimeObserver.
class ShardedRuntime::ShardObserverRelay : public SchedulerObserver {
 public:
  ShardObserverRelay(ShardedRuntime* runtime, int shard)
      : runtime_(runtime), shard_(shard) {}

  void OnActivityCommitted(ProcessId pid, ActivityId act,
                           bool inverse) override {
    runtime_->RelayEvent([&](RuntimeObserver* o) {
      o->OnActivityCommitted(shard_, pid, act, inverse);
    });
  }
  void OnInvocationFailed(ProcessId pid, ActivityId act) override {
    runtime_->RelayEvent(
        [&](RuntimeObserver* o) { o->OnInvocationFailed(shard_, pid, act); });
  }
  void OnAlternativeTaken(ProcessId pid, ActivityId branch_point,
                          int group) override {
    runtime_->RelayEvent([&](RuntimeObserver* o) {
      o->OnAlternativeTaken(shard_, pid, branch_point, group);
    });
  }
  void OnProcessTerminated(ProcessId pid, ProcessOutcome outcome) override {
    // Agent first, outside observer_mu_ (lock order: agent mutex is never
    // taken under the relay mutex — the agent's inline handling can call
    // back into shards).
    runtime_->NotifyAgentTerminated(shard_, pid, outcome);
    runtime_->RelayEvent([&](RuntimeObserver* o) {
      o->OnProcessTerminated(shard_, pid, outcome);
    });
  }
  void OnCommitHeld(ProcessId pid) override {
    runtime_->NotifyAgentCommitHeld(shard_, pid);
    runtime_->RelayEvent(
        [&](RuntimeObserver* o) { o->OnCommitHeld(shard_, pid); });
  }

 private:
  ShardedRuntime* runtime_;
  int shard_;
};

/// The per-shard elastic hook: telemetry into the LoadMonitor, submission
/// interception into the MigrationEngine. Runs on shard worker threads.
class ShardedRuntime::ElasticProbe : public ShardElasticProbe {
 public:
  ElasticProbe(LoadMonitor* monitor, MigrationEngine* engine)
      : monitor_(monitor), engine_(engine) {}

  bool InterceptSubmission(int shard, Submission& submission) override {
    return engine_->MaybeIntercept(shard, submission);
  }
  void OnPassEnd(int shard, const ShardPassSample& sample) override {
    monitor_->RecordPass(shard, sample);
  }

 private:
  LoadMonitor* monitor_;
  MigrationEngine* engine_;
};

ShardedRuntime::ShardedRuntime(ShardedRuntimeOptions options)
    : options_(std::move(options)) {}

ShardedRuntime::~ShardedRuntime() { (void)Stop(); }

Status ShardedRuntime::AddSubsystem(Subsystem* subsystem) {
  if (started_) {
    return Status::FailedPrecondition("AddSubsystem after Start");
  }
  if (subsystem == nullptr) {
    return Status::InvalidArgument("null subsystem");
  }
  for (const Subsystem* existing : subsystems_) {
    if (existing == subsystem) {
      return Status::AlreadyExists(
          StrCat("subsystem '", subsystem->name(), "' already added"));
    }
  }
  // Each service must have exactly one owning subsystem — the partition
  // assigns whole subsystems to shards by their services.
  for (ServiceId id : subsystem->services().AllIds()) {
    for (const Subsystem* existing : subsystems_) {
      if (existing->services().Has(id)) {
        return Status::AlreadyExists(
            StrCat("service ", id.value(), " of subsystem '",
                   subsystem->name(), "' is already offered by subsystem '",
                   existing->name(), "'"));
      }
    }
  }
  subsystems_.push_back(subsystem);
  return Status::OK();
}

Status ShardedRuntime::AddReplicaSubsystem(int replica, Subsystem* subsystem) {
  if (!replicated()) {
    return Status::FailedPrecondition(
        "AddReplicaSubsystem with replication off (factor <= 1)");
  }
  if (replica == 0) return AddSubsystem(subsystem);
  if (started_) {
    return Status::FailedPrecondition("AddReplicaSubsystem after Start");
  }
  if (replica < 0 || replica >= options_.replication.factor) {
    return Status::InvalidArgument(
        StrCat("replica ", replica, " out of range (factor ",
               options_.replication.factor, ")"));
  }
  if (subsystem == nullptr) return Status::InvalidArgument("null subsystem");
  mirror_subsystems_.emplace_back(replica, subsystem);
  return Status::OK();
}

Status ShardedRuntime::AddConflict(ServiceId a, ServiceId b) {
  if (started_) {
    return Status::FailedPrecondition("AddConflict after Start");
  }
  extra_conflicts_.emplace_back(a, b);
  return Status::OK();
}

Status ShardedRuntime::AddColocation(std::vector<ServiceId> group) {
  if (started_) {
    return Status::FailedPrecondition("AddColocation after Start");
  }
  if (group.size() < 2) {
    return Status::InvalidArgument(
        "a colocation group needs at least two services");
  }
  colocations_.push_back(std::move(group));
  return Status::OK();
}

Status ShardedRuntime::AddObserver(RuntimeObserver* observer) {
  if (started_) {
    return Status::FailedPrecondition("AddObserver after Start");
  }
  if (observer == nullptr) {
    return Status::InvalidArgument("null observer");
  }
  observers_.push_back(observer);
  return Status::OK();
}

Status ShardedRuntime::Start() {
  if (started_) return Status::FailedPrecondition("Start called twice");
  if (options_.num_shards < 1) {
    return Status::InvalidArgument(
        StrCat("num_shards must be >= 1, got ", options_.num_shards));
  }
  if (options_.log_mode == ShardLogMode::kFile && options_.wal_dir.empty()) {
    return Status::InvalidArgument("kFile log mode requires wal_dir");
  }
  const bool elastic = options_.elastic.enabled;
  if (elastic && replicated()) {
    return Status::InvalidArgument(
        "elastic and replication are mutually exclusive (component "
        "migration does not yet compose with replica groups)");
  }
  if (options_.elastic.policy.enabled && !elastic) {
    return Status::InvalidArgument(
        "elastic.policy.enabled requires elastic.enabled");
  }
  if (options_.elastic.policy.enabled &&
      options_.mode == TickMode::kLockstep) {
    return Status::InvalidArgument(
        "the adaptive elastic controller requires free-running shards "
        "(lockstep allows manual migrations on an idle runtime only)");
  }
  if (elastic && options_.elastic.initial_active_shards > options_.num_shards) {
    return Status::InvalidArgument(
        StrCat("elastic.initial_active_shards (",
               options_.elastic.initial_active_shards, ") exceeds num_shards (",
               options_.num_shards, ")"));
  }

  // Union conflict spec over all subsystems: every service interned, every
  // derived (read/write + op-table) conflict declared, plus the explicit
  // extras. This is the spec the partitioner and router see; each shard's
  // scheduler re-derives its own local sub-spec from the subsystems
  // registered with it.
  union_spec_ = ConflictSpec();
  for (const Subsystem* subsystem : subsystems_) {
    subsystem->services().DeriveConflicts(&union_spec_);
  }
  for (const auto& [a, b] : extra_conflicts_) {
    if (union_spec_.IndexOf(a) < 0) {
      return Status::NotFound(
          StrCat("AddConflict: service ", a.value(), " not registered"));
    }
    if (union_spec_.IndexOf(b) < 0) {
      return Status::NotFound(
          StrCat("AddConflict: service ", b.value(), " not registered"));
    }
    union_spec_.AddConflict(a, b);
  }

  // Colocation: each subsystem's services share its store and lock table
  // and must be invoked by a single worker, so they form an implicit
  // group; user groups (tenant pinning etc.) are appended after.
  ColocationGroups groups;
  for (const Subsystem* subsystem : subsystems_) {
    std::vector<ServiceId> ids = subsystem->services().AllIds();
    if (ids.size() >= 2) groups.push_back(std::move(ids));
  }
  for (const auto& group : colocations_) {
    for (ServiceId id : group) {
      if (union_spec_.IndexOf(id) < 0) {
        return Status::NotFound(
            StrCat("AddColocation: service ", id.value(), " not registered"));
      }
    }
    groups.push_back(group);
  }

  // Adaptive grow capacity: pack the initial partition onto the first
  // `initial_active_shards` shards; the spares own no components, park at
  // start, and become migration targets when the controller scales out.
  const int pack_shards =
      (elastic && options_.elastic.initial_active_shards > 0)
          ? options_.elastic.initial_active_shards
          : options_.num_shards;
  TPM_ASSIGN_OR_RETURN(
      partition_,
      ComputeConflictPartition(union_spec_, pack_shards, groups));
  TPM_RETURN_IF_ERROR(VerifyPartition(union_spec_, partition_, groups));
  partition_.num_shards = options_.num_shards;
  router_ = std::make_unique<ShardRouter>(&union_spec_, &partition_);

  // The elastic layer, before the shards: the router must carry the
  // durably flipped component -> shard overrides before anything routes,
  // and the shards take their probe pointer at construction.
  // The WAL directory must exist before ANY log opens — the migration
  // engine's elastic.wal below as much as the per-shard WALs.
  if (options_.log_mode == ShardLogMode::kFile) {
    std::error_code ec;
    std::filesystem::create_directories(options_.wal_dir, ec);
    if (ec) {
      return Status::Unavailable(
          StrCat("cannot create wal_dir '", options_.wal_dir,
                 "': ", ec.message()));
    }
  }

  monitor_.reset();
  engine_.reset();
  probe_.reset();
  controller_.reset();
  if (elastic) {
    monitor_ = std::make_unique<LoadMonitor>(options_.num_shards,
                                             router_->num_components());
    MigrationEngine::Options engine_options;
    engine_options.log_mode = options_.log_mode;
    if (options_.log_mode == ShardLogMode::kFile) {
      engine_options.wal_path =
          (std::filesystem::path(options_.wal_dir) / "elastic.wal").string();
    }
    engine_options.crash_listener = options_.elastic.crash_listener;
    engine_options.buffer_capacity = options_.elastic.migration_buffer_capacity;
    engine_options.mode = options_.mode;
    engine_options.verify = options_.verify_recovery;
    engine_options.spec = &union_spec_;
    engine_options.router = router_.get();
    engine_options.shards = &shards_;
    engine_options.spans_begun = [this]() -> int64_t {
      return agent_ != nullptr ? agent_->spans_begun() : 0;
    };
    engine_options.resume_shard = [this](int shard) {
      if (shard >= 0 && shard < static_cast<int>(shards_.size())) {
        shards_[shard]->Unpark();
      }
    };
    engine_options.on_migrated = [this](int component, int from, int to) {
      RelayEvent([&](RuntimeObserver* o) {
        o->OnComponentMigrated(component, from, to);
      });
    };
    engine_ = std::make_unique<MigrationEngine>(std::move(engine_options));
    TPM_RETURN_IF_ERROR(engine_->Init());
    for (const auto& [component, shard] : engine_->overrides()) {
      if (component < 0 || component >= router_->num_components() ||
          shard < 0 || shard >= options_.num_shards) {
        return Status::FailedPrecondition(
            StrCat("migration log maps component ", component, " to shard ",
                   shard,
                   ", outside the current configuration — restart with the "
                   "crashed incarnation's shard count and registrations"));
      }
      router_->SetComponentShard(component, shard);
    }
    probe_ = std::make_unique<ElasticProbe>(monitor_.get(), engine_.get());
  }

  shards_.clear();
  relays_.clear();
  for (int i = 0; i < options_.num_shards; ++i) {
    RuntimeShard::Options shard_options;
    shard_options.index = i;
    shard_options.scheduler = options_.scheduler;
    shard_options.queue_capacity = options_.queue_capacity;
    shard_options.backpressure = options_.backpressure;
    shard_options.batched_admission = options_.batched_admission;
    shard_options.mode = options_.mode;
    shard_options.log_mode = options_.log_mode;
    shard_options.replication = options_.replication;
    shard_options.wal_dir = options_.wal_dir;
    if (options_.log_mode == ShardLogMode::kFile) {
      shard_options.wal_path = (std::filesystem::path(options_.wal_dir) /
                                StrCat("shard-", i, ".wal"))
                                   .string();
    }
    shard_options.probe = probe_.get();  // null when elastic is off
    if (elastic) {
      shard_options.on_unpark = [this](int shard) {
        monitor_->SetParked(shard, false);
        RelayEvent([&](RuntimeObserver* o) { o->OnShardResumed(shard); });
      };
    }
    auto shard = std::make_unique<RuntimeShard>(std::move(shard_options));
    TPM_RETURN_IF_ERROR(shard->Init());
    shards_.push_back(std::move(shard));
  }

  // Repair incomplete migrations from the previous incarnation while the
  // shard logs are open but no worker owns them yet.
  if (engine_ != nullptr) {
    TPM_RETURN_IF_ERROR(engine_->ApplyCrashFixups());
  }

  // Register each subsystem with the scheduler of the shard owning its
  // services (all on one shard — its implicit colocation group). With
  // replication on, registration goes through the shard's replica group
  // (replica 0), which also remembers the subsystem for digesting and
  // respawn.
  shard_of_subsystem_.clear();
  std::vector<std::vector<int>> replica_counts(
      static_cast<size_t>(options_.num_shards),
      std::vector<int>(
          static_cast<size_t>(std::max(1, options_.replication.factor)), 0));
  for (Subsystem* subsystem : subsystems_) {
    std::vector<ServiceId> ids = subsystem->services().AllIds();
    if (ids.empty()) {
      return Status::InvalidArgument(
          StrCat("subsystem '", subsystem->name(), "' offers no services"));
    }
    // Router, not partition: a recovered migration override re-homes the
    // whole component, subsystem registrations included.
    const int shard = router_->ShardOfService(ids.front());
    if (shard < 0) {
      return Status::Internal(
          StrCat("no shard owns service ", ids.front().value()));
    }
    if (replicated()) {
      TPM_RETURN_IF_ERROR(
          shards_[shard]->group()->RegisterSubsystem(0, subsystem));
      ++replica_counts[shard][0];
    } else {
      TPM_RETURN_IF_ERROR(
          shards_[shard]->scheduler()->RegisterSubsystem(subsystem));
    }
    shard_of_subsystem_.push_back(shard);
  }
  // Mirror subsystems (replicas >= 1): routed by their first service —
  // mirror worlds mint the same ServiceIds as replica 0, so each lands on
  // the shard owning its replica-0 twin.
  for (const auto& [replica, subsystem] : mirror_subsystems_) {
    std::vector<ServiceId> ids = subsystem->services().AllIds();
    if (ids.empty()) {
      return Status::InvalidArgument(
          StrCat("subsystem '", subsystem->name(), "' offers no services"));
    }
    const int shard = partition_.ShardOfService(union_spec_, ids.front());
    if (shard < 0) {
      return Status::NotFound(
          StrCat("mirror subsystem '", subsystem->name(),
                 "': no shard owns service ", ids.front().value(),
                 " (its replica-0 twin was never added)"));
    }
    TPM_RETURN_IF_ERROR(
        shards_[shard]->group()->RegisterSubsystem(replica, subsystem));
    ++replica_counts[shard][replica];
  }
  // Every replica of a shard must carry the same subsystem set: a missing
  // mirror would make the replica diverge on its first touched service.
  if (replicated()) {
    for (int shard = 0; shard < options_.num_shards; ++shard) {
      for (int replica = 1; replica < options_.replication.factor;
           ++replica) {
        if (replica_counts[shard][replica] != replica_counts[shard][0]) {
          return Status::InvalidArgument(StrCat(
              "shard ", shard, ": replica ", replica, " has ",
              replica_counts[shard][replica], " subsystems, replica 0 has ",
              replica_counts[shard][0],
              " (AddReplicaSubsystem must mirror every subsystem)"));
        }
      }
    }
  }
  // Extra conflicts also go to the owning shard's local scheduler spec;
  // the partition guarantees both endpoints landed on the same shard.
  for (const auto& [a, b] : extra_conflicts_) {
    const int shard = router_->ShardOfService(a);
    if (replicated()) {
      shards_[shard]->group()->AddConflict(a, b);
    } else {
      shards_[shard]->scheduler()->AddConflict(a, b);
    }
  }

  for (int i = 0; i < options_.num_shards; ++i) {
    relays_.push_back(std::make_unique<ShardObserverRelay>(this, i));
    if (replicated()) {
      // The group's observer gate delivers each event exactly once — from
      // the acting primary — into the relay.
      shards_[i]->group()->AddDownstreamObserver(relays_.back().get());
      shards_[i]->group()->SetStateChangeCallback(
          [this, i](int replica, ReplicaState from, ReplicaState to) {
            RelayEvent([&](RuntimeObserver* o) {
              o->OnReplicaStateChange(i, replica, from, to);
            });
          });
    } else {
      shards_[i]->scheduler()->AddObserver(relays_.back().get());
    }
  }

  // The coordination agent for spanning processes, with its own WAL
  // stream beside the shard WALs.
  CrossShardAgent::Options agent_options;
  agent_options.mode = options_.mode;
  agent_options.span_order = options_.span_order;
  agent_options.log_mode = options_.log_mode;
  if (options_.log_mode == ShardLogMode::kFile) {
    agent_options.wal_path =
        (std::filesystem::path(options_.wal_dir) / "coordinator.wal").string();
  }
  agent_options.crash_listener = options_.coordinator_crash_listener;
  agent_ = std::make_unique<CrossShardAgent>(std::move(agent_options),
                                             router_.get(), &shards_);
  TPM_RETURN_IF_ERROR(agent_->Init());

  // What moves with each component: its subsystems' registrations and the
  // extra conflicts whose endpoints live in it.
  if (engine_ != nullptr) {
    std::vector<std::vector<Subsystem*>> subsystems_of_component(
        static_cast<size_t>(router_->num_components()));
    for (Subsystem* subsystem : subsystems_) {
      std::vector<ServiceId> ids = subsystem->services().AllIds();
      const int component =
          ids.empty() ? -1 : router_->ComponentOfService(ids.front());
      if (component >= 0) {
        subsystems_of_component[static_cast<size_t>(component)].push_back(
            subsystem);
      }
    }
    std::vector<std::vector<std::pair<ServiceId, ServiceId>>>
        conflicts_of_component(static_cast<size_t>(router_->num_components()));
    for (const auto& [a, b] : extra_conflicts_) {
      const int component = router_->ComponentOfService(a);
      if (component >= 0) {
        conflicts_of_component[static_cast<size_t>(component)].emplace_back(a,
                                                                            b);
      }
    }
    engine_->SetTopology(std::move(subsystems_of_component),
                         std::move(conflicts_of_component));
  }

  for (auto& shard : shards_) shard->Start();

  // DPM: shards that own no components start parked (free-running only —
  // a parked lockstep shard would stall the tick barrier). They resume on
  // the first migration targeting them.
  if (elastic && options_.mode == TickMode::kFreeRunning) {
    std::vector<int> components_per_shard(
        static_cast<size_t>(options_.num_shards), 0);
    for (int component = 0; component < router_->num_components();
         ++component) {
      const int owner = router_->ShardOfComponent(component);
      if (owner >= 0) ++components_per_shard[static_cast<size_t>(owner)];
    }
    for (int shard = 0; shard < options_.num_shards; ++shard) {
      if (components_per_shard[static_cast<size_t>(shard)] == 0) {
        TPM_RETURN_IF_ERROR(ParkShardInternal(shard));
      }
    }
  }

  started_ = true;
  if (options_.elastic.policy.enabled) StartElasticController();
  return Status::OK();
}

void ShardedRuntime::StartElasticController() {
  // gather: one poll's policy inputs — monitor snapshots, current
  // component ownership, and per-component traffic since the last poll
  // (diff of the monitor's cumulative counters, kept in the closure).
  auto gather = [this, prev = std::vector<int64_t>()]() mutable {
    PolicyInputs inputs;
    const std::vector<ShardLoadSnapshot> snapshots = monitor_->SnapshotAll();
    const int num_components = router_->num_components();
    std::vector<int> per_shard_components(shards_.size(), 0);
    inputs.components.resize(static_cast<size_t>(num_components));
    std::vector<int64_t> cumulative = monitor_->ComponentSubmissions();
    for (int component = 0; component < num_components; ++component) {
      const int owner = router_->ShardOfComponent(component);
      if (owner >= 0) ++per_shard_components[static_cast<size_t>(owner)];
      PolicyComponentInput& input =
          inputs.components[static_cast<size_t>(component)];
      input.component = component;
      input.shard = owner;
      const int64_t before =
          static_cast<size_t>(component) < prev.size() ? prev[component] : 0;
      input.recent_submissions = cumulative[component] - before;
    }
    prev = std::move(cumulative);
    inputs.shards.resize(shards_.size());
    for (size_t shard = 0; shard < shards_.size(); ++shard) {
      PolicyShardInput& input = inputs.shards[shard];
      input.parked = snapshots[shard].parked;
      input.busy_fraction = snapshots[shard].busy_fraction;
      input.queue_depth = snapshots[shard].queue_depth;
      input.components = per_shard_components[shard];
    }
    return inputs;
  };
  // apply: failures surface through the engine's counters and sticky
  // status (a failed migration aborts back to the source; the controller
  // keeps polling).
  auto apply = [this](const PolicyDecision& decision) {
    switch (decision.kind) {
      case PolicyActionKind::kMigrate:
        (void)engine_->Migrate(decision.component, decision.to);
        break;
      case PolicyActionKind::kPark:
        (void)ParkShard(decision.shard);
        break;
      case PolicyActionKind::kNone:
        break;
    }
  };
  controller_ = std::make_unique<ElasticController>(
      options_.elastic.policy, std::move(gather), std::move(apply));
  controller_->Start();
}

Result<SubmitTicket> ShardedRuntime::Submit(const ProcessDef* def,
                                            int64_t param) {
  return SubmitInternal(def, /*owner=*/nullptr, param);
}

Result<SubmitTicket> ShardedRuntime::Submit(
    std::shared_ptr<const ProcessDef> def, int64_t param) {
  const ProcessDef* raw = def.get();
  return SubmitInternal(raw, std::move(def), param);
}

Result<SubmitTicket> ShardedRuntime::SubmitInternal(
    const ProcessDef* def, std::shared_ptr<const ProcessDef> owner,
    int64_t param) {
  if (!started_.load() || stopped_.load()) {
    return Status::Unavailable("runtime is not running");
  }
  if (def == nullptr) return Status::InvalidArgument("null process def");
  // Elastic admission gate, held across route decision + enqueue/buffer:
  // a migration's flip takes it unique, so no submission is ever pushed
  // onto a shard whose component ownership already flipped away.
  std::shared_lock<std::shared_mutex> route_gate;
  if (engine_ != nullptr) route_gate = engine_->AcquireRouteLock();
  RouterDecision decision = router_->Decide(*def);
  if (decision.kind == RouteKind::kRejected) {
    submissions_rejected_.fetch_add(1, std::memory_order_relaxed);
    return decision.error;
  }
  if (decision.kind == RouteKind::kSplit) {
    if (route_gate.owns_lock()) route_gate.unlock();
    if (engine_ != nullptr && engine_->ever_migrated()) {
      // Sub-process names encode shard numbers at split time; after a
      // migration re-homed a component those names would lie to recovery.
      // Staged limit (DESIGN.md §4k) — the reverse gate (no migration
      // while spans are live) is enforced by the engine.
      submissions_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::FailedPrecondition(
          "spanning processes are not supported after a component "
          "migration (staged limit)");
    }
    if (replicated()) {
      // A spanning process would make replica execution depend on agent
      // ops arriving from other shards' (non-deterministic) timing —
      // replication and spans are mutually exclusive for now.
      submissions_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::InvalidArgument(
          "spanning processes are not supported on replicated shards");
    }
    if (owner != nullptr) {
      // The agent re-splits from the original definition for the life of
      // the span (and recovery re-derives slices from it), so the runtime
      // itself keeps the owner.
      std::lock_guard<std::mutex> lock(retained_defs_mu_);
      retained_span_defs_.push_back(owner);
    }
    Result<SubmitTicket> ticket = agent_->Begin(def, param);
    if (!ticket.ok()) {
      submissions_rejected_.fetch_add(1, std::memory_order_relaxed);
      return ticket;
    }
    submissions_accepted_.fetch_add(1, std::memory_order_relaxed);
    return ticket;
  }
  const int shard = decision.shard;

  Submission submission;
  submission.def = def;
  submission.def_owner = std::move(owner);
  submission.param = param;
  SubmitTicket ticket;
  ticket.shard = shard;
  ticket.pid = submission.result.get_future().share();
  if (engine_ != nullptr) {
    const int component = router_->ComponentOfDef(*def);
    if (component >= 0) {
      monitor_->CountSubmission(component);
      if (engine_->ShouldBuffer(component)) {
        // Mid-migration: park the submission in the engine's bounded
        // buffer; it lands on the target (or back on the source, on
        // abort) in original FIFO order.
        Result<int> target = engine_->Buffer(std::move(submission));
        if (!target.ok()) {
          submissions_rejected_.fetch_add(1, std::memory_order_relaxed);
          return target.status();
        }
        ticket.shard = *target;
        submissions_accepted_.fetch_add(1, std::memory_order_relaxed);
        return ticket;
      }
    }
  }
  Status pushed = shards_[shard]->EnqueueSubmission(std::move(submission));
  if (!pushed.ok()) {
    submissions_rejected_.fetch_add(1, std::memory_order_relaxed);
    return pushed;
  }
  submissions_accepted_.fetch_add(1, std::memory_order_relaxed);
  return ticket;
}

Status ShardedRuntime::Tick(int64_t rounds) {
  if (!started_ || stopped_) {
    return Status::FailedPrecondition("Tick on a runtime that is not running");
  }
  if (options_.mode != TickMode::kLockstep) {
    return Status::FailedPrecondition(
        "Tick is the lockstep driver; free-running shards self-drive");
  }
  Status first_error;
  for (int64_t round = 0; round < rounds; ++round) {
    // Barrier semantics: grant round t to every shard, then wait for all
    // of them — no shard starts t+1 before every shard finished t.
    for (auto& shard : shards_) shard->GrantTick();
    for (auto& shard : shards_) {
      Status status = shard->WaitTickDone();
      if (!status.ok() && first_error.ok()) first_error = status;
    }
    ++lockstep_rounds_;
    // Deterministic agent turn: relay the round's queued shard events
    // (votes, terminals) and let the agent post its ops for round t+1.
    agent_->Pump();
    if (!first_error.ok()) return first_error;
  }
  return Status::OK();
}

namespace {
/// Counted controller pause over a control-plane scope.
class ControllerPauseScope {
 public:
  explicit ControllerPauseScope(ElasticController* controller)
      : controller_(controller) {
    if (controller_ != nullptr) controller_->Pause();
  }
  ~ControllerPauseScope() {
    if (controller_ != nullptr) controller_->Resume();
  }
  ControllerPauseScope(const ControllerPauseScope&) = delete;
  ControllerPauseScope& operator=(const ControllerPauseScope&) = delete;

 private:
  ElasticController* controller_;
};
}  // namespace

Status ShardedRuntime::Drain(int64_t max_rounds) {
  if (!started_ || stopped_) {
    return Status::FailedPrecondition("Drain on a runtime that is not running");
  }
  // No rebalancing mid-drain: a migration would make quiescence a moving
  // target. Pause also waits out a migration already in flight.
  ControllerPauseScope pause(controller_.get());
  if (options_.mode == TickMode::kLockstep) {
    for (int64_t round = 0; round < max_rounds; ++round) {
      agent_->Pump();
      bool all_idle = true;
      for (auto& shard : shards_) {
        if (!shard->IsIdle()) {
          all_idle = false;
          break;
        }
      }
      if (all_idle) {
        // A spanning process parked on a remote shard's prepare is BUSY,
        // not idle: quiescence additionally requires the agent drained.
        if (agent_->InFlightCount() == 0) return Status::OK();
        // Shards idle with spans in flight: either the agent's mailbox
        // still holds the resolving events (pumped next iteration) or the
        // coordinator failed sticky — surface that instead of spinning.
        TPM_RETURN_IF_ERROR(agent_->status());
      }
      TPM_RETURN_IF_ERROR(Tick(1));
    }
    return Status::FailedPrecondition(
        StrCat("Drain did not quiesce within ", max_rounds,
               " lockstep rounds"));
  }
  for (;;) {
    Status first_error;
    for (auto& shard : shards_) {
      Status status = shard->WaitIdle();
      if (!status.ok() && first_error.ok()) first_error = status;
    }
    if (!first_error.ok()) return first_error;
    // Shards idle but spans in flight: the agent is between posting ops
    // (a submission or a commit-release not yet picked up) — re-wait. A
    // sticky coordinator failure instead parks the held sub-processes
    // forever, so report it rather than block on idleness that cannot
    // come. Likewise a manual migration still holding buffered
    // submissions: they are queued nowhere yet, so shard idleness lies.
    if (engine_ != nullptr) {
      TPM_RETURN_IF_ERROR(engine_->status());
      if (!engine_->Quiet()) {
        std::this_thread::yield();
        continue;
      }
    }
    if (agent_->InFlightCount() == 0) return Status::OK();
    TPM_RETURN_IF_ERROR(agent_->status());
    std::this_thread::yield();
  }
}

Status ShardedRuntime::Recover(
    const std::map<std::string, const ProcessDef*>& defs_by_name) {
  if (!started_ || stopped_) {
    return Status::FailedPrecondition(
        "Recover on a runtime that is not running");
  }
  // Rebalancing must not race the replay.
  ControllerPauseScope pause(controller_.get());
  // The migration engine classifies WAL records by definition name; feed
  // it the recovered definitions so components of processes predating
  // this incarnation resolve.
  if (engine_ != nullptr) {
    for (const auto& [name, def] : defs_by_name) {
      (void)name;
      if (def != nullptr) engine_->LearnDef(*def);
    }
  }
  // Coordinator log first: regenerate the sub-definitions of every
  // spanning process it references and collect the force-commit
  // directives for durably decided commits. The shard replays then treat
  // a directed in-doubt vote as committed and group-abort the rest.
  std::map<std::string, const ProcessDef*> all_defs = defs_by_name;
  TransactionalProcessScheduler::RecoverDirectives directives;
  std::map<std::string, SpanSubProjection> span_info;
  TPM_ASSIGN_OR_RETURN(CrossShardAgent::SpanRecoveryPlan span_plan,
                       agent_->RecoverScan(defs_by_name));
  for (const auto& [name, def] : span_plan.sub_defs) all_defs[name] = def;
  directives = std::move(span_plan.directives);
  span_info = agent_->ProjectionInfo();

  // Fan the replay out: every shard worker replays its own WAL
  // concurrently, then self-checks the recovered history. The command runs
  // on the worker thread, so the scheduler's thread affinity holds.
  const bool verify = options_.verify_recovery;
  for (auto& shard : shards_) {
    const int index = shard->index();
    // PostSchedulerCommand: on a replicated shard the closure runs once
    // per live replica, each against its own scheduler and private WAL.
    shard->PostSchedulerCommand([&all_defs, &directives, verify,
                                 index](TransactionalProcessScheduler*
                                            scheduler) {
      Status replayed = scheduler->Recover(all_defs, &directives);
      if (!replayed.ok()) {
        return Status(replayed.code(), StrCat("shard ", index, ": ",
                                              replayed.message()));
      }
      if (!verify) return Status::OK();
      // Post-recovery self-check, per shard: PRED on the full recovered
      // history, Proc-REC on its committed projection (the same pair of
      // criteria the chaos suites assert).
      TPM_ASSIGN_OR_RETURN(
          bool pred, IsPRED(scheduler->history(), scheduler->conflict_spec()));
      if (!pred) {
        return Status::Internal(
            StrCat("shard ", index, ": recovered history is not PRED"));
      }
      if (!IsProcessRecoverable(CommittedProjection(scheduler->history()),
                                scheduler->conflict_spec())) {
        return Status::Internal(
            StrCat("shard ", index,
                   ": recovered committed projection is not Proc-REC"));
      }
      return Status::OK();
    });
  }
  Status first_error;
  for (auto& shard : shards_) {
    Status status = shard->WaitCommandDone();
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  TPM_RETURN_IF_ERROR(first_error);
  // Presumed abort, made durable: every spanning process without a
  // decision record is now decided aborted (its votes were just rolled
  // back by the shard replays).
  TPM_RETURN_IF_ERROR(agent_->FinishRecovery());
  if (!verify || span_info.empty()) return Status::OK();

  // The global assertion (DESIGN.md §4h): merge the per-shard recovery
  // histories — reassembling every spanning process into one global
  // process, which is exactly where a half-committed span would surface —
  // and check PRED + Proc-REC on the union spec.
  // Only reachable with spanning processes, which replication rejects —
  // so each shard has exactly one scheduler writing its slot.
  std::vector<ProcessSchedule> histories(shards_.size());
  for (auto& shard : shards_) {
    ProcessSchedule* slot = &histories[static_cast<size_t>(shard->index())];
    shard->PostSchedulerCommand(
        [slot](TransactionalProcessScheduler* scheduler) {
          *slot = scheduler->history();
          return Status::OK();
        });
  }
  for (auto& shard : shards_) {
    Status status = shard->WaitCommandDone();
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  TPM_RETURN_IF_ERROR(first_error);
  std::vector<const ProcessSchedule*> history_ptrs;
  history_ptrs.reserve(histories.size());
  for (const ProcessSchedule& history : histories) {
    history_ptrs.push_back(&history);
  }
  TPM_ASSIGN_OR_RETURN(ProcessSchedule global,
                       MergeGlobalProjection(history_ptrs, span_info));
  TPM_ASSIGN_OR_RETURN(bool pred, IsPRED(global, union_spec_));
  if (!pred) {
    return Status::Internal("global recovered history is not PRED");
  }
  if (!IsProcessRecoverable(CommittedProjection(global), union_spec_)) {
    return Status::Internal(
        "global recovered committed projection is not Proc-REC");
  }
  return Status::OK();
}

Status ShardedRuntime::Stop() {
  if (!started_.load() || stopped_.load()) {
    stopped_.store(started_.load());
    return Status::OK();
  }
  // Controller first (joins its thread; an in-flight migration fails out
  // once the shards close their queues), then workers, then the engine's
  // buffered submissions.
  if (controller_ != nullptr) controller_->Stop();
  for (auto& shard : shards_) shard->Stop();
  // After the workers: pending agent ops died with them; fail the spans
  // whose first sub-process never got admitted.
  if (agent_ != nullptr) agent_->Shutdown();
  if (engine_ != nullptr) engine_->Shutdown();
  stopped_ = true;
  return Status::OK();
}

RuntimeStats ShardedRuntime::Stats() const {
  RuntimeStats stats;
  for (const auto& shard : shards_) {
    stats.per_shard.push_back(shard->StatsSnapshot());
  }
  for (const SchedulerStats& shard_stats : stats.per_shard) {
    stats.merged.MergeFrom(shard_stats);
  }
  stats.submissions_accepted =
      submissions_accepted_.load(std::memory_order_relaxed);
  stats.submissions_rejected =
      submissions_rejected_.load(std::memory_order_relaxed);
  stats.lockstep_rounds = lockstep_rounds_;
  if (agent_ != nullptr) {
    stats.spans_begun = agent_->spans_begun();
    stats.spans_committed = agent_->spans_committed();
    stats.spans_aborted = agent_->spans_aborted();
  }
  for (const auto& shard : shards_) {
    ReplicaGroup* group = const_cast<RuntimeShard*>(shard.get())->group();
    if (group == nullptr) continue;
    ReplicaGroupStats group_stats = group->Stats();
    stats.replica_divergences += group_stats.replica_divergences;
    stats.failovers += group_stats.failovers;
    stats.replicas_evicted += group_stats.replicas_evicted;
    stats.vote_rounds += group_stats.vote_rounds;
    stats.per_shard_replicas.push_back(group_stats);
  }
  for (const auto& shard : shards_) {
    stats.queue_depths.push_back(shard->QueueDepth());
    if (shard->parked()) ++stats.shards_parked;
  }
  if (engine_ != nullptr) {
    stats.migrations_started = engine_->migrations_started();
    stats.migrations_completed = engine_->migrations_completed();
    stats.migrations_aborted = engine_->migrations_aborted();
  }
  if (controller_ != nullptr) {
    stats.rebalance_decisions = controller_->decisions();
  }
  return stats;
}

Status ShardedRuntime::MigrateComponent(int component, int to) {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition(
        "MigrateComponent requires options.elastic.enabled");
  }
  if (!started_.load() || stopped_.load()) {
    return Status::FailedPrecondition(
        "MigrateComponent on a runtime that is not running");
  }
  return engine_->Migrate(component, to);
}

Status ShardedRuntime::ParkShard(int shard) {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition(
        "ParkShard requires options.elastic.enabled");
  }
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) {
    return Status::InvalidArgument(StrCat("shard ", shard, " out of range"));
  }
  // A parked shard must own nothing: traffic routed to an owned component
  // would just auto-unpark it, and quiesced-but-owned state is exactly
  // what migration exists for.
  for (int component = 0; component < router_->num_components();
       ++component) {
    if (router_->ShardOfComponent(component) == shard) {
      return Status::FailedPrecondition(
          StrCat("shard ", shard, " still owns conflict component ",
                 component, " — migrate it away before parking"));
    }
  }
  if (!shards_[shard]->IsIdle()) {
    return Status::FailedPrecondition(
        StrCat("shard ", shard, " is not idle"));
  }
  return ParkShardInternal(shard);
}

Status ShardedRuntime::ParkShardInternal(int shard) {
  TPM_RETURN_IF_ERROR(shards_[static_cast<size_t>(shard)]->Park());
  if (monitor_ != nullptr) monitor_->SetParked(shard, true);
  RelayEvent([&](RuntimeObserver* o) { o->OnShardParked(shard); });
  return Status::OK();
}

Status ShardedRuntime::ResumeShard(int shard) {
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) {
    return Status::InvalidArgument(StrCat("shard ", shard, " out of range"));
  }
  // Unpark fires on_unpark, which updates the monitor and the observers.
  shards_[static_cast<size_t>(shard)]->Unpark();
  return Status::OK();
}

bool ShardedRuntime::ShardParked(int shard) const {
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) return false;
  return shards_[static_cast<size_t>(shard)]->parked();
}

void ShardedRuntime::SetRebalancing(bool enabled) {
  if (controller_ == nullptr) return;
  // Counted: every SetRebalancing(false) needs a matching (true).
  if (enabled) {
    controller_->Resume();
  } else {
    controller_->Pause();
  }
}

std::vector<size_t> ShardedRuntime::QueueDepths() const {
  std::vector<size_t> depths;
  depths.reserve(shards_.size());
  for (const auto& shard : shards_) depths.push_back(shard->QueueDepth());
  return depths;
}

TransactionalProcessScheduler* ShardedRuntime::shard_scheduler(int shard) {
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) return nullptr;
  return shards_[shard]->scheduler();
}

VirtualClock* ShardedRuntime::shard_clock(int shard) {
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) return nullptr;
  return shards_[shard]->clock();
}

RecoveryLog* ShardedRuntime::shard_log(int shard) {
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) return nullptr;
  return shards_[shard]->log();
}

int ShardedRuntime::ShardOfSubsystem(const Subsystem* subsystem) const {
  for (size_t i = 0; i < subsystems_.size(); ++i) {
    if (subsystems_[i] == subsystem &&
        i < shard_of_subsystem_.size()) {
      return shard_of_subsystem_[i];
    }
  }
  return -1;
}

ReplicaGroup* ShardedRuntime::shard_group(int shard) {
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) return nullptr;
  return shards_[shard]->group();
}

Status ShardedRuntime::KillReplica(int shard, int replica) {
  ReplicaGroup* group = shard_group(shard);
  if (group == nullptr) {
    return Status::FailedPrecondition(
        StrCat("shard ", shard, " is not replicated"));
  }
  return group->Kill(replica);
}

Status ShardedRuntime::RespawnReplica(
    int shard, int replica,
    const std::map<std::string, const ProcessDef*>& defs_by_name) {
  ReplicaGroup* group = shard_group(shard);
  if (group == nullptr) {
    return Status::FailedPrecondition(
        StrCat("shard ", shard, " is not replicated"));
  }
  return group->Respawn(replica, defs_by_name);
}

TransactionalProcessScheduler* ShardedRuntime::replica_scheduler(
    int shard, int replica) {
  ReplicaGroup* group = shard_group(shard);
  if (group == nullptr || replica < 0 || replica >= group->factor()) {
    return nullptr;
  }
  return group->replica_scheduler(replica);
}

SpanOutcome ShardedRuntime::SpanningOutcome(int64_t gsn) const {
  if (agent_ == nullptr) return SpanOutcome::kUnknown;
  return agent_->OutcomeOf(gsn);
}

Result<ProcessSchedule> ShardedRuntime::GlobalProjection() {
  if (!stopped_) {
    return Status::FailedPrecondition(
        "GlobalProjection before Stop (the shard schedulers must be "
        "quiesced)");
  }
  std::vector<const ProcessSchedule*> histories;
  histories.reserve(shards_.size());
  for (auto& shard : shards_) {
    histories.push_back(&shard->scheduler()->history());
  }
  return MergeGlobalProjection(
      histories, agent_ != nullptr
                     ? agent_->ProjectionInfo()
                     : std::map<std::string, SpanSubProjection>());
}

void ShardedRuntime::RelayEvent(
    const std::function<void(RuntimeObserver*)>& fn) {
  std::lock_guard<std::mutex> lock(observer_mu_);
  for (RuntimeObserver* observer : observers_) fn(observer);
}

void ShardedRuntime::NotifyAgentCommitHeld(int shard, ProcessId pid) {
  if (agent_ != nullptr) agent_->OnCommitHeld(shard, pid);
}

void ShardedRuntime::NotifyAgentTerminated(int shard, ProcessId pid,
                                           ProcessOutcome outcome) {
  if (agent_ != nullptr) agent_->OnProcessTerminated(shard, pid, outcome);
}

}  // namespace tpm
