#ifndef TPM_RUNTIME_SUBMISSION_QUEUE_H_
#define TPM_RUNTIME_SUBMISSION_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace tpm {

class ProcessDef;

/// What a full submission queue does to the next producer.
enum class BackpressurePolicy {
  /// Push blocks until the shard worker drains a slot (or the queue
  /// closes). Suited to free-running shards, where the worker drains
  /// continuously; in lockstep mode a blocked producer would wait on the
  /// tick driver, so size the queue for the batch instead.
  kBlock,
  /// Push fails immediately with ResourceExhausted; the caller sheds load.
  kReject,
};

/// One queued process submission. The worker fulfills `result` with the
/// shard-local ProcessId once the shard's scheduler admits the process
/// (or with the admission error).
///
/// Lifetime: the scheduler stores `def` for the whole life of the admitted
/// process (runtime state, history, recovery), so it must stay valid until
/// the runtime stops — not merely until the queue drains. A producer that
/// cannot guarantee that sets `def_owner`; the shard worker then retains
/// the definition for as long as its scheduler may dereference it.
struct Submission {
  const ProcessDef* def = nullptr;
  std::shared_ptr<const ProcessDef> def_owner;  // optional ownership transfer
  int64_t param = 0;
  std::promise<Result<ProcessId>> result;
};

/// A routed submission: which shard took the process, and the shard-local
/// ProcessId once the worker admits it (shard-local pids are the
/// coordinates used with shard_scheduler(shard)->OutcomeOf and friends).
/// For a spanning process, `shard`/`pid` refer to the FIRST sub-process
/// in skeleton order and `gsn` is the global serial number the runtime's
/// SpanningOutcome accessor keys on (-1 for a single-shard process).
struct SubmitTicket {
  int shard = -1;
  int64_t gsn = -1;
  std::shared_future<Result<ProcessId>> pid;

  /// Blocks until the shard worker admitted (or refused) the process.
  Result<ProcessId> Await() { return pid.get(); }
};

/// Bounded multi-producer single-consumer queue between the concurrent
/// submission front-end and one shard worker. Producers are any threads
/// calling ShardedRuntime::Submit; the consumer is the shard's worker
/// thread, which drains in batches at tick boundaries. FIFO: admission
/// order equals push order, which is what makes lockstep runs replayable.
class SubmissionQueue {
 public:
  explicit SubmissionQueue(size_t capacity) : capacity_(capacity) {}

  SubmissionQueue(const SubmissionQueue&) = delete;
  SubmissionQueue& operator=(const SubmissionQueue&) = delete;

  /// Producer side. On kReject + full: ResourceExhausted. On closed:
  /// Unavailable (also for producers woken from a kBlock wait by Close).
  ///
  /// Blocked producers are admitted strictly in arrival order (ticketed
  /// wakeup): a producer parked on a full queue gets the next freed slot
  /// before any producer that called Push later, under either policy — a
  /// pending waiter counts as occupying the slot it is owed, so a kReject
  /// push cannot barge past it either.
  Status Push(Submission submission, BackpressurePolicy policy) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return Status::Unavailable("submission queue closed");
    const bool must_wait =
        items_.size() >= capacity_ || wait_head_ != wait_tail_;
    if (must_wait && policy == BackpressurePolicy::kBlock) {
      const uint64_t ticket = wait_tail_++;
      ++blocked_producers_;
      not_full_.wait(lock, [&] {
        return closed_ ||
               (wait_head_ == ticket && items_.size() < capacity_);
      });
      --blocked_producers_;
      if (closed_) return Status::Unavailable("submission queue closed");
      ++wait_head_;
      items_.push_back(std::move(submission));
      // Hand the wakeup on: the next ticket holder may already have room.
      not_full_.notify_all();
      return Status::OK();
    }
    if (must_wait) {
      return Status::ResourceExhausted("submission queue full");
    }
    items_.push_back(std::move(submission));
    return Status::OK();
  }

  /// Consumer side: removes and returns everything currently queued (FIFO
  /// order preserved), freeing capacity for blocked producers.
  std::vector<Submission> DrainAll() {
    std::vector<Submission> drained;
    {
      std::lock_guard<std::mutex> lock(mu_);
      drained.reserve(items_.size());
      while (!items_.empty()) {
        drained.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    if (!drained.empty()) not_full_.notify_all();
    return drained;
  }

  /// Rejects all future pushes and wakes blocked producers. Anything
  /// already queued stays drainable (the worker fails the leftovers'
  /// promises on shutdown).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.empty();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  /// Number of producers currently parked inside a kBlock Push. Test
  /// probe: lets a test wait until a producer is provably blocked before
  /// racing another push against its wakeup.
  size_t blocked_producers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return blocked_producers_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::deque<Submission> items_;
  bool closed_ = false;
  size_t blocked_producers_ = 0;
  // FIFO wakeup tickets: producers that must wait take wait_tail_++ and are
  // served when wait_head_ reaches their ticket. Close() abandons unserved
  // tickets (closed_ wakes and fails every waiter), which is fine — a
  // closed queue never serves tickets again.
  uint64_t wait_head_ = 0;
  uint64_t wait_tail_ = 0;
};

}  // namespace tpm

#endif  // TPM_RUNTIME_SUBMISSION_QUEUE_H_
