#include "runtime/cross_shard_agent.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/str_util.h"
#include "log/file_backend.h"

namespace tpm {

// Coordinator WAL record grammar (one record per line, '|'-separated; the
// definition name comes last so it may contain anything):
//   SBEGIN|<gsn>|<param>|<def_name>   write-ahead of taking ownership
//   STAIL|<gsn>|<k>                   write-ahead of tail attempt k
//   SDECIDE|<gsn>|C|<tail_index>      global commit (-1: no tail)
//   SDECIDE|<gsn>|A                   global abort (explicit or presumed)
//   SEND|<gsn>                        all sub-processes terminal
namespace {
constexpr const char* kRecBegin = "SBEGIN";
constexpr const char* kRecTail = "STAIL";
constexpr const char* kRecDecide = "SDECIDE";
constexpr const char* kRecEnd = "SEND";
}  // namespace

class CrossShardAgent::RenamingListener : public CrashPointListener {
 public:
  explicit RenamingListener(CrashPointListener* user) : user_(user) {}

  bool OnCrashPoint(const char* site) override {
    if (user_ == nullptr) return false;
    // "wal/<site>" -> "coordinator/<site>", so a site-filtered sweep can
    // target the coordinator log without crashing the shard WALs too.
    const char* slash = std::strchr(site, '/');
    if (slash == nullptr) return user_->OnCrashPoint(site);
    const std::string renamed = StrCat("coordinator", slash);
    return user_->OnCrashPoint(renamed.c_str());
  }

 private:
  CrashPointListener* user_;
};

CrossShardAgent::CrossShardAgent(
    Options options, const ShardRouter* router,
    std::vector<std::unique_ptr<RuntimeShard>>* shards)
    : options_(std::move(options)), router_(router), shards_(shards) {
  live_.resize(shards_->size());
}

CrossShardAgent::~CrossShardAgent() { Shutdown(); }

Status CrossShardAgent::Init() {
  switch (options_.log_mode) {
    case ShardLogMode::kNone:
      break;
    case ShardLogMode::kMemory:
      wal_ = std::make_unique<Wal>(/*synchronous=*/true);
      break;
    case ShardLogMode::kFile: {
      TPM_ASSIGN_OR_RETURN(auto backend,
                           FileStorageBackend::Open(options_.wal_path));
      wal_ = std::make_unique<Wal>(std::move(backend), /*synchronous=*/true);
      break;
    }
  }
  if (wal_ != nullptr && options_.crash_listener != nullptr) {
    renamer_ = std::make_unique<RenamingListener>(options_.crash_listener);
    wal_->SetCrashPointListener(renamer_.get());
  }
  return Status::OK();
}

Status CrossShardAgent::AppendRecord(const std::string& record) {
  if (wal_ == nullptr) return Status::OK();  // kNone: no durability
  TPM_RETURN_IF_ERROR(wal_->Append(record));
  return wal_->Flush();
}

void CrossShardAgent::StickyFail(const Status& status) {
  if (error_.ok()) {
    error_ = Status(status.code(),
                    StrCat("cross-shard coordinator: ", status.message()));
  }
}

Result<SubmitTicket> CrossShardAgent::Begin(const ProcessDef* def,
                                            int64_t param) {
  std::unique_lock<std::mutex> lock(mu_);
  TPM_RETURN_IF_ERROR(error_);
  const int64_t gsn = next_gsn_++;
  // Write-ahead: the spanning process durably exists before any shard
  // sees a sub-process, so recovery either resolves it or never knew it.
  Status logged =
      AppendRecord(StrCat(kRecBegin, "|", gsn, "|", param, "|", def->name()));
  if (!logged.ok()) {
    StickyFail(logged);
    return error_;
  }
  Result<SplitPlan> plan =
      router_->Split(*def, StrCat(def->name(), "@g", gsn));
  if (!plan.ok()) return plan.status();  // recovery will presume-abort gsn

  auto state = std::make_unique<SpanState>();
  state->gsn = gsn;
  state->original = def;
  state->param = param;
  state->plan = std::move(*plan);
  state->trunk.resize(state->plan.subs.size());
  for (size_t i = 0; i < state->plan.subs.size(); ++i) {
    state->trunk[i].plan = &state->plan.subs[i];
  }
  state->tails.resize(state->plan.tails.size());
  for (size_t i = 0; i < state->plan.tails.size(); ++i) {
    state->tails[i].plan = &state->plan.tails[i];
  }

  SubmitTicket ticket;
  ticket.gsn = gsn;
  ticket.shard = state->plan.subs.front().shard;
  ticket.pid = state->first_pid.get_future().share();

  SpanState* st = state.get();
  spans_[gsn] = std::move(state);
  ++in_flight_;
  ++spans_begun_;
  LaunchReady(st);
  return ticket;
}

CrossShardAgent::SubState* CrossShardAgent::FindSub(SpanState* st,
                                                    bool is_tail, int index) {
  std::vector<SubState>& subs = is_tail ? st->tails : st->trunk;
  if (index < 0 || index >= static_cast<int>(subs.size())) return nullptr;
  return &subs[static_cast<size_t>(index)];
}

CrossShardAgent::SubState* CrossShardAgent::FindSubByPid(int shard,
                                                         ProcessId pid,
                                                         SpanState** st_out,
                                                         SubRef* ref_out) {
  auto ref = by_pid_.find({shard, pid.value()});
  if (ref == by_pid_.end()) return nullptr;
  auto span = spans_.find(ref->second.gsn);
  if (span == spans_.end()) return nullptr;
  *st_out = span->second.get();
  *ref_out = ref->second;
  return FindSub(span->second.get(), ref->second.is_tail, ref->second.index);
}

void CrossShardAgent::LaunchReady(SpanState* st) {
  if (st->decided) return;
  if (options_.span_order == OrderMode::kStrong) {
    // Strong composite order: strictly sequential — the next trunk slice
    // is submitted only after the previous one voted.
    for (size_t i = 0; i < st->trunk.size(); ++i) {
      if (!st->trunk[i].submitted) {
        if (i == 0 || st->trunk[i - 1].voted) {
          SubmitSub(st, /*is_tail=*/false, static_cast<int>(i));
        }
        return;
      }
      if (!st->trunk[i].voted) return;
    }
    return;
  }
  // Weak composite order: every slice whose skeleton predecessors voted
  // runs in parallel with its order-independent peers.
  for (size_t i = 0; i < st->trunk.size(); ++i) {
    if (st->trunk[i].submitted) continue;
    bool ready = true;
    for (int pred : st->plan.subs[i].skeleton_preds) {
      if (!st->trunk[static_cast<size_t>(pred)].voted) {
        ready = false;
        break;
      }
    }
    if (ready) SubmitSub(st, /*is_tail=*/false, static_cast<int>(i));
  }
}

void CrossShardAgent::SubmitSub(SpanState* st, bool is_tail, int index) {
  SubState* sub = FindSub(st, is_tail, index);
  sub->submitted = true;
  st->submission_order.emplace_back(is_tail, index);
  const int64_t gsn = st->gsn;
  (*shards_)[static_cast<size_t>(sub->plan->shard)]->PostAgentOp(
      [this, gsn, is_tail, index] { RunSubmitOp(gsn, is_tail, index); });
}

void CrossShardAgent::RunSubmitOp(int64_t gsn, bool is_tail, int index) {
  const ProcessDef* def = nullptr;
  int64_t param = 0;
  int shard = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto span = spans_.find(gsn);
    if (span == spans_.end()) return;
    SubState* sub = FindSub(span->second.get(), is_tail, index);
    def = sub->plan->def.get();
    param = span->second->param;
    shard = sub->plan->shard;
  }
  TransactionalProcessScheduler* scheduler =
      (*shards_)[static_cast<size_t>(shard)]->scheduler();
  Result<ProcessId> pid = scheduler->SubmitHeld(def, param);
  if (!pid.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    auto span = spans_.find(gsn);
    if (span == spans_.end()) return;
    SpanState* st = span->second.get();
    DeliverFirstPid(st, pid.status());
    HandleSubFailure(st, SubRef{gsn, is_tail, index});
    return;
  }
  // The gsn order is the composite serialization order: on every shard,
  // each spanning slice is SGT-ordered after every earlier-gsn slice
  // still alive there, so the global order is acyclic by construction.
  std::vector<ProcessId> before;
  bool abort_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto span = spans_.find(gsn);
    if (span == spans_.end()) return;
    SpanState* st = span->second.get();
    SubState* sub = FindSub(st, is_tail, index);
    sub->admitted = true;
    sub->pid = *pid;
    by_pid_[{shard, pid->value()}] = SubRef{gsn, is_tail, index};
    for (const auto& [live_gsn, live_pid] : live_[static_cast<size_t>(shard)]) {
      if (live_gsn < gsn) before.push_back(live_pid);
    }
    live_[static_cast<size_t>(shard)].emplace_back(gsn, *pid);
    DeliverFirstPid(st, *pid);
    // The global decision fell while this submission was in flight (some
    // sibling aborted): resolve immediately, off the agent lock.
    if (st->decided && !st->commit) abort_now = true;
  }
  for (ProcessId b : before) (void)scheduler->AddExternalOrder(b, *pid);
  if (abort_now) (void)scheduler->ResolveHeldCommit(*pid, /*commit=*/false);
}

void CrossShardAgent::RunResolveOp(int shard, ProcessId pid, bool commit) {
  TransactionalProcessScheduler* scheduler =
      (*shards_)[static_cast<size_t>(shard)]->scheduler();
  // NotFound: the sub-process already terminated (e.g. aborted before the
  // decision arrived) — already resolved.
  (void)scheduler->ResolveHeldCommit(pid, commit);
}

void CrossShardAgent::DeliverFirstPid(SpanState* st, Result<ProcessId> pid) {
  if (st->first_pid_set) return;
  st->first_pid_set = true;
  st->first_pid.set_value(std::move(pid));
}

void CrossShardAgent::OnCommitHeld(int shard, ProcessId pid) {
  std::lock_guard<std::mutex> lock(mu_);
  Event event;
  event.shard = shard;
  event.vote = true;
  event.pid = pid;
  if (options_.mode == TickMode::kLockstep) {
    mailbox_.push_back(event);
    return;
  }
  HandleEvent(event);
}

void CrossShardAgent::OnProcessTerminated(int shard, ProcessId pid,
                                          ProcessOutcome outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  Event event;
  event.shard = shard;
  event.vote = false;
  event.pid = pid;
  event.outcome = outcome;
  if (options_.mode == TickMode::kLockstep) {
    mailbox_.push_back(event);
    return;
  }
  HandleEvent(event);
}

void CrossShardAgent::Pump() {
  std::lock_guard<std::mutex> lock(mu_);
  if (mailbox_.empty()) return;
  std::vector<Event> events;
  events.swap(mailbox_);
  // Deterministic relay order: by shard index, FIFO within a shard (each
  // shard's event subsequence is a deterministic function of its lockstep
  // execution; the stable sort removes the cross-shard arrival races).
  std::stable_sort(
      events.begin(), events.end(),
      [](const Event& a, const Event& b) { return a.shard < b.shard; });
  for (const Event& event : events) HandleEvent(event);
}

void CrossShardAgent::HandleEvent(const Event& event) {
  SpanState* st = nullptr;
  SubRef ref;
  SubState* sub = FindSubByPid(event.shard, event.pid, &st, &ref);
  if (sub == nullptr) return;  // not a spanning sub-process
  if (event.vote) {
    HandleVote(st, ref);
  } else {
    HandleTerminated(st, ref, event.outcome);
  }
}

void CrossShardAgent::HandleVote(SpanState* st, const SubRef& ref) {
  SubState* sub = FindSub(st, ref.is_tail, ref.index);
  sub->voted = true;
  if (st->decided) return;  // a pending global abort will resolve it
  if (ref.is_tail) {
    // The chosen ◁ tail voted: the whole spanning process is prepared.
    Decide(st, /*commit=*/true, ref.index);
    return;
  }
  LaunchReady(st);
  for (const SubState& trunk : st->trunk) {
    if (!trunk.voted) return;
  }
  if (st->tails.empty()) {
    Decide(st, /*commit=*/true, /*tail_index=*/-1);
  } else if (st->current_tail < 0) {
    StartTailAttempt(st, 0);
  }
}

void CrossShardAgent::StartTailAttempt(SpanState* st, int k) {
  st->current_tail = k;
  Status logged = AppendRecord(StrCat(kRecTail, "|", st->gsn, "|", k));
  if (!logged.ok()) {
    StickyFail(logged);
    return;
  }
  SubmitSub(st, /*is_tail=*/true, k);
}

void CrossShardAgent::HandleSubFailure(SpanState* st, const SubRef& ref) {
  SubState* sub = FindSub(st, ref.is_tail, ref.index);
  sub->terminated = true;
  if (st->decided) {
    MaybeFinish(st);
    return;
  }
  if (ref.is_tail && ref.index == st->current_tail) {
    // ◁ preference order across shards: this alternative failed, try the
    // next one; only exhausting all of them aborts the spanning process.
    if (ref.index + 1 < static_cast<int>(st->tails.size())) {
      StartTailAttempt(st, ref.index + 1);
      return;
    }
  }
  Decide(st, /*commit=*/false, /*tail_index=*/-1);
  MaybeFinish(st);
}

void CrossShardAgent::HandleTerminated(SpanState* st, const SubRef& ref,
                                       ProcessOutcome outcome) {
  SubState* sub = FindSub(st, ref.is_tail, ref.index);
  if (sub->admitted) {
    auto& live = live_[static_cast<size_t>(sub->plan->shard)];
    live.erase(std::remove_if(live.begin(), live.end(),
                              [&](const std::pair<int64_t, ProcessId>& e) {
                                return e.second == sub->pid;
                              }),
               live.end());
  }
  sub->terminated = true;
  sub->committed = outcome == ProcessOutcome::kCommitted;
  if (!st->decided) {
    // A terminal before the global decision is an abort (a held
    // sub-process cannot commit unilaterally): a victimized or failed
    // slice. A trunk abort dooms the process; a tail abort advances the
    // ◁ preference order.
    HandleSubFailure(st, ref);
    return;
  }
  MaybeFinish(st);
}

void CrossShardAgent::Decide(SpanState* st, bool commit, int tail_index) {
  if (st->decided || !error_.ok()) return;
  // The decide crash point models losing the coordinator at the apex of
  // 2PC: every participant voted, no decision record exists. Recovery
  // must presume abort (the participants' votes alone prove nothing).
  if (options_.crash_listener != nullptr &&
      options_.crash_listener->OnCrashPoint(kCoordCrashSiteDecide)) {
    StickyFail(Status::Unavailable("injected crash at decision point"));
    return;
  }
  Status logged = AppendRecord(
      commit ? StrCat(kRecDecide, "|", st->gsn, "|C|", tail_index)
             : StrCat(kRecDecide, "|", st->gsn, "|A"));
  if (!logged.ok()) {
    StickyFail(logged);
    return;
  }
  st->decided = true;
  st->commit = commit;
  st->decided_tail = tail_index;
  if (commit) {
    // Phase two, forward order: release the trunk, then the chosen tail.
    for (const auto& [is_tail, index] : st->submission_order) {
      if (is_tail && index != tail_index) continue;
      SubState* sub = FindSub(st, is_tail, index);
      if (sub->terminated || !sub->admitted) continue;
      const int shard = sub->plan->shard;
      const ProcessId pid = sub->pid;
      (*shards_)[static_cast<size_t>(shard)]->PostAgentOp(
          [this, shard, pid] { RunResolveOp(shard, pid, /*commit=*/true); });
    }
    return;
  }
  // Global abort: resolve in REVERSE submission order (Lemma 2 — the
  // compensations of later slices precede those of earlier ones; FIFO per
  // shard preserves this wherever it can matter, i.e. shard-locally).
  for (auto it = st->submission_order.rbegin();
       it != st->submission_order.rend(); ++it) {
    SubState* sub = FindSub(st, it->first, it->second);
    if (sub->terminated || !sub->admitted) continue;
    const int shard = sub->plan->shard;
    const ProcessId pid = sub->pid;
    (*shards_)[static_cast<size_t>(shard)]->PostAgentOp(
        [this, shard, pid] { RunResolveOp(shard, pid, /*commit=*/false); });
  }
}

void CrossShardAgent::MaybeFinish(SpanState* st) {
  if (st->done || !st->decided) return;
  for (const auto& [is_tail, index] : st->submission_order) {
    const SubState* sub = FindSub(st, is_tail, index);
    if (sub->submitted && !sub->terminated) return;
  }
  Status logged = AppendRecord(StrCat(kRecEnd, "|", st->gsn));
  if (!logged.ok()) {
    StickyFail(logged);
    return;
  }
  st->done = true;
  --in_flight_;
  if (st->commit) {
    ++spans_committed_;
  } else {
    ++spans_aborted_;
  }
}

int64_t CrossShardAgent::InFlightCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

SpanOutcome CrossShardAgent::OutcomeOf(int64_t gsn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto span = spans_.find(gsn);
  if (span == spans_.end()) return SpanOutcome::kUnknown;
  if (!span->second->done) return SpanOutcome::kInFlight;
  return span->second->commit ? SpanOutcome::kCommitted
                              : SpanOutcome::kAborted;
}

Status CrossShardAgent::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

int64_t CrossShardAgent::spans_begun() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_begun_;
}
int64_t CrossShardAgent::spans_committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_committed_;
}
int64_t CrossShardAgent::spans_aborted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_aborted_;
}

Result<CrossShardAgent::SpanRecoveryPlan> CrossShardAgent::RecoverScan(
    const std::map<std::string, const ProcessDef*>& defs_by_name) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecoveryPlan plan;
  if (wal_ == nullptr) return plan;
  for (const auto& [gsn, st] : spans_) {
    if (!st->recovered) {
      return Status::FailedPrecondition(
          "RecoverScan on an agent with live spanning processes");
    }
  }
  spans_.clear();
  by_pid_.clear();
  for (auto& live : live_) live.clear();
  in_flight_ = 0;

  for (const std::string& record : wal_->records()) {
    std::vector<std::string> fields = StrSplit(record, '|');
    if (fields.size() < 2) {
      return Status::Internal(
          StrCat("coordinator log: malformed record '", record, "'"));
    }
    TPM_ASSIGN_OR_RETURN(int64_t gsn, ParseInt64(fields[1]));
    if (gsn >= next_gsn_) next_gsn_ = gsn + 1;
    if (fields[0] == kRecBegin) {
      if (fields.size() < 4) {
        return Status::Internal(
            StrCat("coordinator log: malformed SBEGIN '", record, "'"));
      }
      TPM_ASSIGN_OR_RETURN(int64_t param, ParseInt64(fields[2]));
      // The name is the tail of the record (it may contain '|').
      std::string name = fields[3];
      for (size_t i = 4; i < fields.size(); ++i) {
        name += '|';
        name += fields[i];
      }
      auto def = defs_by_name.find(name);
      if (def == defs_by_name.end()) {
        return Status::NotFound(StrCat(
            "coordinator log references unknown process definition '", name,
            "' (g", gsn, "); pass it in defs_by_name"));
      }
      // Deterministic re-split: same definition, same prefix -> the same
      // sub-definitions the crashed incarnation submitted.
      TPM_ASSIGN_OR_RETURN(SplitPlan split,
                           router_->Split(*def->second,
                                          StrCat(name, "@g", gsn)));
      auto state = std::make_unique<SpanState>();
      state->gsn = gsn;
      state->original = def->second;
      state->param = param;
      state->plan = std::move(split);
      state->trunk.resize(state->plan.subs.size());
      for (size_t i = 0; i < state->plan.subs.size(); ++i) {
        state->trunk[i].plan = &state->plan.subs[i];
      }
      state->tails.resize(state->plan.tails.size());
      for (size_t i = 0; i < state->plan.tails.size(); ++i) {
        state->tails[i].plan = &state->plan.tails[i];
      }
      state->recovered = true;
      state->first_pid_set = true;  // nobody is waiting on the promise
      ++in_flight_;
      spans_[gsn] = std::move(state);
    } else if (fields[0] == kRecTail) {
      auto span = spans_.find(gsn);
      if (span != spans_.end() && fields.size() >= 3) {
        TPM_ASSIGN_OR_RETURN(int64_t k, ParseInt64(fields[2]));
        span->second->current_tail = static_cast<int>(k);
      }
    } else if (fields[0] == kRecDecide) {
      auto span = spans_.find(gsn);
      if (span == spans_.end()) {
        return Status::Internal(
            StrCat("coordinator log: SDECIDE for unknown g", gsn));
      }
      span->second->decided = true;
      if (fields.size() >= 3 && fields[2] == "C") {
        span->second->commit = true;
        if (fields.size() >= 4) {
          TPM_ASSIGN_OR_RETURN(int64_t tail, ParseInt64(fields[3]));
          span->second->decided_tail = static_cast<int>(tail);
        }
      }
    } else if (fields[0] == kRecEnd) {
      auto span = spans_.find(gsn);
      if (span == spans_.end()) {
        return Status::Internal(
            StrCat("coordinator log: SEND for unknown g", gsn));
      }
      span->second->done = true;
      --in_flight_;
      if (span->second->commit) {
        ++spans_committed_;
      } else {
        ++spans_aborted_;
      }
    }
  }

  for (const auto& [gsn, st] : spans_) {
    ++spans_begun_;
    for (const SubProcessPlan& sub : st->plan.subs) {
      plan.sub_defs[sub.def->name()] = sub.def.get();
    }
    for (const SubProcessPlan& tail : st->plan.tails) {
      plan.sub_defs[tail.def->name()] = tail.def.get();
    }
    // A durable commit decision binds: the trunk slices (and the chosen
    // tail) whose votes survived in their shard WALs are force-committed
    // during replay. Everything undecided is presumed aborted — a vote
    // alone never commits.
    if (st->decided && st->commit) {
      for (const SubProcessPlan& sub : st->plan.subs) {
        plan.directives.force_commit.insert(sub.def->name());
      }
      if (st->decided_tail >= 0 &&
          st->decided_tail < static_cast<int>(st->plan.tails.size())) {
        plan.directives.force_commit.insert(
            st->plan.tails[static_cast<size_t>(st->decided_tail)]
                .def->name());
      }
    }
  }
  return plan;
}

Status CrossShardAgent::FinishRecovery() {
  std::lock_guard<std::mutex> lock(mu_);
  TPM_RETURN_IF_ERROR(error_);
  for (auto& [gsn, st] : spans_) {
    if (st->done) continue;
    if (!st->decided) {
      // Presumed abort, now made durable: the shard replays have already
      // rolled the undecided votes back (group abort).
      Status logged = AppendRecord(StrCat(kRecDecide, "|", gsn, "|A"));
      if (!logged.ok()) {
        StickyFail(logged);
        return error_;
      }
      st->decided = true;
      st->commit = false;
    }
    Status logged = AppendRecord(StrCat(kRecEnd, "|", gsn));
    if (!logged.ok()) {
      StickyFail(logged);
      return error_;
    }
    st->done = true;
    --in_flight_;
    if (st->commit) {
      ++spans_committed_;
    } else {
      ++spans_aborted_;
    }
  }
  return Status::OK();
}

std::map<std::string, SpanSubProjection> CrossShardAgent::ProjectionInfo()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, SpanSubProjection> info;
  for (const auto& [gsn, st] : spans_) {
    for (size_t i = 0; i < st->plan.subs.size(); ++i) {
      const SubProcessPlan& sub = st->plan.subs[i];
      SpanSubProjection entry;
      entry.gsn = gsn;
      entry.original = st->original;
      entry.to_original = sub.to_original;
      for (int pred : sub.skeleton_preds) {
        entry.forward_preds.push_back(
            st->plan.subs[static_cast<size_t>(pred)].def->name());
      }
      info[sub.def->name()] = std::move(entry);
    }
    for (const SubProcessPlan& tail : st->plan.tails) {
      SpanSubProjection entry;
      entry.gsn = gsn;
      entry.original = st->original;
      entry.to_original = tail.to_original;
      // A tail implicitly follows the whole trunk.
      for (const SubProcessPlan& sub : st->plan.subs) {
        entry.forward_preds.push_back(sub.def->name());
      }
      info[tail.def->name()] = std::move(entry);
    }
  }
  return info;
}

void CrossShardAgent::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [gsn, st] : spans_) {
    DeliverFirstPid(st.get(), Status::Unavailable(
                                  "runtime stopped before the first "
                                  "sub-process was admitted"));
  }
}

}  // namespace tpm
