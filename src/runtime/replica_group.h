#ifndef TPM_RUNTIME_REPLICA_GROUP_H_
#define TPM_RUNTIME_REPLICA_GROUP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/virtual_clock.h"
#include "core/scheduler.h"
#include "log/recovery_log.h"
#include "runtime/submission_queue.h"
#include "runtime/voter.h"

namespace tpm {

class CrashPointListener;

/// Lifecycle of one replica inside a ReplicaGroup.
enum class ReplicaState {
  kActive,   // executing rounds and voting
  kKilled,   // died (WAL crash, step error, or an explicit Kill)
  kEvicted,  // lost a vote: diverged from the majority and was removed
};

const char* ReplicaStateName(ReplicaState state);

/// Replication knobs, carried inside RuntimeShard::Options. factor <= 1
/// disables replication entirely — the shard then runs the exact
/// pre-replication single-scheduler path.
struct ReplicationOptions {
  /// Number of scheduler replicas per shard (2 detects divergence, 3 also
  /// attributes it by majority).
  int factor = 1;
  /// Vote every N rounds (a round = one published submission batch plus
  /// the scheduling work it triggers). Smaller = earlier detection, more
  /// digest traffic.
  int64_t vote_every_rounds = 8;
  /// Free-running mode: per-round cap on scheduling passes (safety valve;
  /// a round normally runs to quiescence).
  int64_t max_steps_per_round = 1'000'000;
  /// Attached to `listener_replica`'s WAL — the fault-injection hook the
  /// kill-a-replica-at-every-crash-point sweep arms.
  CrashPointListener* replica_crash_listener = nullptr;
  int listener_replica = 0;
};

/// Monotone counters of one shard's replica group.
struct ReplicaGroupStats {
  int64_t vote_rounds = 0;          // completed digest comparisons
  int64_t replica_divergences = 0;  // losing ballots across all votes
  int64_t replicas_evicted = 0;     // replicas removed by a lost vote
  int64_t failovers = 0;            // primary promotions
  int64_t rounds_published = 0;
  int live_replicas = 0;
  int primary = 0;

  friend bool operator==(const ReplicaGroupStats&,
                         const ReplicaGroupStats&) = default;
};

/// R deterministic scheduler replicas behind one shard: private clock +
/// private WAL each, fed the identical submission stream as numbered
/// rounds by the shard's sequencer thread. Majority voting over state
/// digests at epoch boundaries turns silent divergence into eviction, and
/// killing the primary promotes a live follower with no WAL replay on the
/// failover path — the follower already holds the full executed state.
///
/// Protocol in one paragraph: the sequencer publishes each drained
/// submission batch as a round; every live replica executes rounds in
/// order on its own worker thread (lockstep: exactly one scheduling pass
/// per round, bit-identical to the unreplicated shard; free-running: run
/// to quiescence) and records its admission results per round entry. Only
/// the acting primary's results are released to the submitters' promises,
/// so a diverging follower can never produce an externally visible effect.
/// Every vote_every_rounds rounds each replica submits
/// {history, store, stats} digests; when all live replicas have voted a
/// round, the majority digest wins and every loser is evicted. A dead
/// primary's promotion only swaps an index and releases the already
/// recorded backlog of the promoted follower — no replay, no pause.
///
/// Thread model: one mutex (gmu_) guards rounds, cursors, votes and
/// membership; replicas execute scheduler work outside it. Observer
/// forwarding is gated per replica (only the acting primary's events pass,
/// deduplicated across failover by a monotone watermark under relay_mu_,
/// which is never held together with gmu_).
class ReplicaGroup {
 public:
  struct Options {
    int shard_index = 0;
    ReplicationOptions replication;
    /// Per-replica scheduler options; `clock` is replaced by each
    /// replica's private clock.
    SchedulerOptions scheduler;
    /// true = lockstep (one pass per round), false = free-running (run to
    /// quiescence per round).
    bool lockstep = false;
    bool batched_admission = true;
    /// kNone/kMemory use in-memory WALs; file mode opens
    /// <wal_dir>/shard-<index>-replica-<r>.wal per replica.
    bool file_wal = false;
    bool no_wal = false;
    std::string wal_dir;
    /// Free-running flow control: max rounds the sequencer may run ahead
    /// of the slowest live replica before PublishRound blocks.
    int64_t max_rounds_ahead = 64;
  };

  explicit ReplicaGroup(Options options);
  ~ReplicaGroup();

  ReplicaGroup(const ReplicaGroup&) = delete;
  ReplicaGroup& operator=(const ReplicaGroup&) = delete;

  /// Creates the replicas (clock + WAL + scheduler each) and attaches the
  /// crash-point listener. Call before any registration.
  Status Init();

  /// Setup-phase (and post-Stop inspection) access to replica `r`'s parts.
  TransactionalProcessScheduler* replica_scheduler(int r);
  RecoveryLog* replica_log(int r);
  VirtualClock* replica_clock(int r);
  int factor() const { return options_.replication.factor; }

  /// Registers `subsystem` with replica `r`'s scheduler and remembers it:
  /// replica subsystems pair up by registration order for state adoption
  /// at respawn and for the store digest. Every replica must end up with
  /// the same number of subsystems, registered in the same service order.
  Status RegisterSubsystem(int r, Subsystem* subsystem);

  /// Applies the conflict to every replica scheduler (and remembers it for
  /// respawn's fresh scheduler).
  void AddConflict(ServiceId a, ServiceId b);

  /// Downstream observer (the shard's relay): receives each scheduler
  /// event exactly once — from whichever replica is acting primary when
  /// the event first clears the watermark. Register before Start.
  void AddDownstreamObserver(SchedulerObserver* observer);

  /// Fired (outside the group mutex, on a replica worker thread) on every
  /// replica state transition.
  using StateChangeCallback =
      std::function<void(int replica, ReplicaState from, ReplicaState to)>;
  void SetStateChangeCallback(StateChangeCallback callback);

  /// Fired once if the whole group dies (all replicas dead).
  void SetErrorCallback(std::function<void(const Status&)> callback);

  /// Fired (unlocked) whenever a round completes or the group goes idle —
  /// the shard hooks its condition variables here.
  void SetNotifyCallback(std::function<void()> callback);

  /// Spawns the replica worker threads.
  void Start();

  /// Stops all workers, fails every unreleased submission promise with
  /// Unavailable, releases scheduler affinities. Idempotent.
  void Stop();

  /// Sequencer side: publishes the next round. Free-running — returns
  /// once the round is enqueued (blocks only on the max_rounds_ahead flow
  /// control window).
  Status PublishRound(std::vector<Submission> batch);

  /// Sequencer side, lockstep: publishes and blocks until every live
  /// replica completed the round (the tick barrier).
  Status PublishRoundAndWait(std::vector<Submission> batch);

  /// True iff every live replica consumed every published round and
  /// reports no remaining scheduler work.
  bool IsIdle() const;

  /// Blocks until IsIdle() (or the group died). Returns the sticky group
  /// error.
  Status WaitIdle();

  /// Whether any live replica still has scheduler work or unconsumed
  /// rounds (the sequencer's wake predicate in free-running mode).
  bool PendingWork() const;

  /// Runs `fn` on every live replica's worker thread against its own
  /// scheduler (Recover runs per replica against its private WAL) and
  /// returns the first error. Blocks until all done. The group must not
  /// be publishing rounds concurrently.
  Status ForEachReplicaScheduler(
      std::function<Status(TransactionalProcessScheduler*)> fn);

  /// Acting primary's latest published stats snapshot.
  SchedulerStats PrimaryStatsSnapshot() const;

  ReplicaGroupStats Stats() const;

  int primary() const { return primary_.load(std::memory_order_acquire); }
  ReplicaState replica_state(int r) const;

  /// Sticky group error (set when the last live replica dies).
  Status status() const;

  /// Marks replica `r` dead (kKilled) — the hot-failover test API. The
  /// replica finishes any in-flight round without recording results; a
  /// dead primary is replaced immediately. Serving continues on the
  /// survivors with no recovery pause.
  Status Kill(int r);

  /// Rebuilds a dead replica from the acting primary while the group is
  /// idle: adopts every subsystem's state, copies the peer's WAL (pid
  /// continuity), builds a fresh scheduler, syncs the clock, re-baselines
  /// every live replica's digests (votes then compare only the
  /// post-respawn suffix) and rejoins at the current round. The eviction/
  /// failover counters keep their history.
  Status Respawn(int r,
                 const std::map<std::string, const ProcessDef*>& defs_by_name);

 private:
  /// A promise to set plus the result to set it to — collected under gmu_,
  /// fired after unlocking (promise.set_value wakes arbitrary user code).
  using Fulfilment =
      std::pair<std::promise<Result<ProcessId>>, Result<ProcessId>>;
  /// (replica, from, to) — collected under gmu_, fired after unlocking.
  using StateEvent = std::tuple<int, ReplicaState, ReplicaState>;

  struct RoundEntry {
    const ProcessDef* def = nullptr;
    int64_t param = 0;
    std::promise<Result<ProcessId>> promise;
    bool fulfilled = false;
    /// Admission result per replica. Only the acting primary's entry is
    /// ever released to `promise` — a diverging follower's results stay
    /// quarantined here until the round is pruned.
    std::map<int, Result<ProcessId>> results;
  };

  struct Round {
    std::vector<std::unique_ptr<RoundEntry>> entries;
  };

  /// Exactly-once observer gate: forwards events only while its replica
  /// is the acting primary, deduplicated across failover by the group
  /// watermark (replicas emit identical deterministic event streams, so
  /// per-replica sequence numbers align).
  class ObserverGate;

  struct Replica {
    int index = 0;
    VirtualClock clock;
    std::unique_ptr<RecoveryLog> log;
    std::unique_ptr<TransactionalProcessScheduler> scheduler;
    std::vector<Subsystem*> subsystems;
    std::unique_ptr<ObserverGate> gate;
    std::thread worker;

    // All below guarded by gmu_.
    bool alive = true;
    ReplicaState state = ReplicaState::kActive;
    int64_t cursor = 0;  // next round index to execute
    bool has_work = false;
    SchedulerStats stats_snapshot;
    SchedulerStats stats_baseline;  // vote digests hash deltas since this
    std::function<Status(TransactionalProcessScheduler*)> command;
    bool command_done = true;
    Status command_status;
  };

  Status InitReplica(int r);
  void WorkerLoop(int r);
  Status PublishRoundInternal(std::vector<Submission> batch,
                              bool wait_for_completion);
  /// Executes one round on `rep` outside gmu_ (`had_work` is the replica's
  /// pre-round has_work flag, copied under the lock); returns the new
  /// has_work flag or the error that kills the replica. round == nullptr
  /// is a continuation pass (steps only, no admission) — free-running
  /// replicas run those after a round hit max_steps_per_round.
  Result<bool> ExecuteRound(Replica& rep, const Round* round, bool had_work,
                            std::vector<Result<ProcessId>>* results);
  VoteDigest ComputeDigest(const Replica& rep,
                           const SchedulerStats& baseline) const;
  /// Like ForEachReplicaScheduler, with the replica index passed through
  /// (Respawn re-baselines per replica).
  Status ForEachReplicaSchedulerIndexed(
      std::function<Status(int, TransactionalProcessScheduler*)> fn);

  std::vector<int> LiveReplicasLocked() const;
  int64_t MinLiveCursorLocked() const;
  bool IsIdleLocked() const;
  /// Releases every recorded-but-unreleased result of the acting primary
  /// for rounds it has completed, collecting the promise fulfilments into
  /// `out` (set outside the lock).
  void CollectPrimaryBacklogLocked(std::vector<Fulfilment>* out);
  /// Drops fully released rounds every live replica has passed.
  void PruneRoundsLocked();
  /// Marks a replica dead, promotes on primary death, fails everything on
  /// total death; appends state-change events and promise fulfilments for
  /// the caller to fire outside the lock. Never runs votes itself —
  /// callers follow up with ApplyVotesLocked.
  void MarkDeadLocked(int r, ReplicaState state,
                      std::vector<StateEvent>* events,
                      std::vector<Fulfilment>* fulfil);
  /// Applies completed vote outcomes (evictions), looping through the
  /// membership changes they cause.
  void ApplyVotesLocked(std::vector<StateEvent>* events,
                        std::vector<Fulfilment>* fulfil);
  void NotifyUnlocked();
  /// Fires the error callback exactly once after the group died.
  void MaybeFireError();
  void FireStateEvents(const std::vector<StateEvent>& events);

  Options options_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<SchedulerObserver*> downstream_;
  StateChangeCallback on_state_change_;
  std::function<void(const Status&)> on_error_;
  std::function<void()> on_notify_;
  /// Definitions whose ownership arrived with submissions; retained for
  /// the group's lifetime (every replica scheduler keeps raw pointers).
  std::map<const ProcessDef*, std::shared_ptr<const ProcessDef>>
      retained_defs_;
  /// Conflicts in registration order, replayed onto respawned schedulers.
  std::vector<std::pair<ServiceId, ServiceId>> conflicts_;

  std::atomic<int> primary_{0};

  mutable std::mutex gmu_;
  std::condition_variable cv_replicas_;  // wakes replica workers
  std::condition_variable cv_clients_;   // wakes sequencer / idle waiters
  std::deque<std::shared_ptr<Round>> rounds_;
  int64_t base_round_ = 0;  // absolute index of rounds_.front()
  int64_t rounds_published_ = 0;
  bool stop_requested_ = false;
  bool started_ = false;
  Status error_;  // sticky: the group died
  bool error_fired_ = false;
  Voter voter_;
  // Counters (gmu_). live_replicas/primary are derived on read.
  ReplicaGroupStats counters_;

  /// Observer watermark: number of events already forwarded downstream.
  /// Guarded by relay_mu_, never held together with gmu_.
  std::mutex relay_mu_;
  int64_t relay_watermark_ = 0;
};

}  // namespace tpm

#endif  // TPM_RUNTIME_REPLICA_GROUP_H_
