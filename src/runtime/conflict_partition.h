#ifndef TPM_RUNTIME_CONFLICT_PARTITION_H_
#define TPM_RUNTIME_CONFLICT_PARTITION_H_

#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "core/conflict.h"

namespace tpm {

/// A conflict partition: the connected components of the service conflict
/// graph, packed into a fixed number of scheduler shards.
///
/// Why this is sound: conflicts are declared at service granularity
/// (ConflictSpec), so two processes can only ever produce a serialization
/// edge when some pair of their services conflicts — i.e. when those
/// services are connected in the conflict graph. Services in different
/// connected components therefore never contribute a cross-component edge,
/// and schedules of disjoint components compose into a global PRED
/// schedule for free (the commutativity-driven parallelism argument of
/// "Limits of Commutativity on Abstract Data Types"): any interleaving of
/// two histories with no cross conflicts is reducible iff each history is.
/// Running one unmodified single-threaded scheduler per shard hence
/// preserves PRED and Proc-REC globally, with zero cross-shard
/// coordination.
///
/// The partition is computed over the RAW service-level relation
/// (ConflictSpec::ConflictPairs), not the op-downgraded effective one:
/// the op-commutativity layer only ever removes conflicts, so the raw
/// components are a conservative cover that stays valid whichever way a
/// shard's scheduler toggles use_op_commutativity.
struct ConflictPartition {
  int num_shards = 0;
  /// Dense service index (ConflictSpec::IndexOf) -> connected component.
  /// Components are numbered by first appearance in dense-index order, so
  /// the numbering — like everything else here — is deterministic across
  /// runs given the same registration order.
  std::vector<int> component_of;
  /// Connected component -> owning shard.
  std::vector<int> shard_of_component;
  /// Dense service index -> owning shard (composition of the above).
  std::vector<int> shard_of;

  int num_components() const {
    return static_cast<int>(shard_of_component.size());
  }

  /// Owning shard of `service`, or -1 if the service is not interned in
  /// `spec` (i.e. was never registered with the runtime).
  int ShardOfService(const ConflictSpec& spec, ServiceId service) const;

  /// Conflict component of `service`, or -1 if not interned in `spec`.
  /// The component is the unit the elastic runtime migrates between
  /// shards; unlike shard ownership it never changes after Start.
  int ComponentOfService(const ConflictSpec& spec, ServiceId service) const;
};

/// Groups of services that must land on the same shard for *physical*
/// reasons the conflict relation does not express: services hosted by one
/// subsystem share its store and lock table (a subsystem instance is
/// single-threaded state), and a workload may pin a tenant's services
/// together so its process footprints stay shard-local.
using ColocationGroups = std::vector<std::vector<ServiceId>>;

/// Computes the conflict partition of `spec` for `num_shards` shards:
/// connected components of the raw service conflict graph (unioned with
/// the colocation groups), packed greedily — components in descending
/// size, ties by lowest component id, each onto the currently
/// least-loaded shard, ties to the lowest shard index. Deterministic: the
/// same spec, groups and shard count always produce the identical
/// assignment (the property Recover relies on to reunite shard WALs with
/// their subsystems).
///
/// Fails on num_shards < 1 or a colocation group naming a service `spec`
/// never interned. num_shards may exceed the component count; the surplus
/// shards simply receive no services.
Result<ConflictPartition> ComputeConflictPartition(
    const ConflictSpec& spec, int num_shards,
    const ColocationGroups& colocate = {});

/// Independent checker that `partition` is a valid conflict partition of
/// `spec`: assignment tables complete and in range, mutually consistent,
/// NO raw conflict edge crossing shards, and every colocation group on one
/// shard. This re-derives nothing from the packing heuristic, so it also
/// vets partitions produced elsewhere (or hand-corrupted ones, in tests).
Status VerifyPartition(const ConflictSpec& spec,
                       const ConflictPartition& partition,
                       const ColocationGroups& colocate = {});

}  // namespace tpm

#endif  // TPM_RUNTIME_CONFLICT_PARTITION_H_
