#ifndef TPM_RUNTIME_CROSS_SHARD_AGENT_H_
#define TPM_RUNTIME_CROSS_SHARD_AGENT_H_

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "core/process.h"
#include "core/scheduler.h"
#include "log/wal.h"
#include "runtime/global_projection.h"
#include "runtime/shard.h"
#include "runtime/shard_router.h"
#include "subsystem/weak_order.h"

namespace tpm {

/// Crash-point site names of the coordinator WAL, as reported to the
/// user's CrashPointListener. The first three are the generic WAL sites
/// renamed (so a sweep can target the coordinator log without also
/// crashing the shard WALs); "coordinator/decide" is an explicit site
/// consulted immediately BEFORE the commit/abort decision is logged — the
/// classic 2PC window where every participant has voted but no decision
/// record exists, which recovery must resolve by presumed abort.
inline constexpr const char* kCoordCrashSiteAppend = "coordinator/append";
inline constexpr const char* kCoordCrashSiteSync = "coordinator/sync";
inline constexpr const char* kCoordCrashSiteSynced = "coordinator/synced";
inline constexpr const char* kCoordCrashSiteDecide = "coordinator/decide";

/// Terminal (or not-yet-terminal) fate of a spanning process.
enum class SpanOutcome {
  kUnknown,    // no such global serial number
  kInFlight,   // submitted, no durable terminal decision applied yet
  kCommitted,  // decided commit, all sub-processes committed
  kAborted,    // decided abort (explicitly or by presumed abort)
};

/// The cross-shard coordination agent: owns every spanning process end to
/// end. It generalizes the paper's §2.3 coordination-agent idea one level
/// up — where CoordinationAgent makes a non-transactional application look
/// like a transactional subsystem, this agent makes a set of independent
/// scheduler shards look like one transactional process runtime:
///
///  * the ShardRouter decomposes a spanning definition into per-shard
///    sub-processes plus a cross-shard dependency skeleton (SplitPlan);
///  * the agent submits the sub-processes under the held-commit protocol
///    (TransactionalProcessScheduler::SubmitHeld) in skeleton order —
///    OrderMode::kWeak runs order-independent sub-processes in parallel,
///    OrderMode::kStrong strictly sequentially (§3.6 composite orders);
///  * inter-shard serialization order is relayed as external SGT edges
///    (AddExternalOrder): on each shard, spanning sub-processes are
///    ordered by their global serial number, so the composite order is
///    acyclic by construction;
///  * commit is a Lemma-1-style two-phase protocol with a SHARD as the
///    participant: a sub-process that finished its work durably votes
///    "prepared" (kCommitHeld records in the shard WAL) and parks; when
///    every trunk sub-process voted (and, with ◁ tails, the chosen tail
///    voted), the agent logs the decision write-ahead in its own
///    coordinator WAL and releases the participants; any pre-vote abort
///    decides global abort and resolves the others in reverse submission
///    order (Lemma 2);
///  * recovery: RecoverScan replays the coordinator WAL, deterministically
///    re-splits every spanning definition it references, and hands the
///    shard replays a force-commit directive for each durably decided
///    commit — everything else is presumed aborted (FinishRecovery logs
///    the presumed-abort decisions after the shard replays).
///
/// Threading: the agent is threadless. Its state lives behind one mutex;
/// shard events arrive from worker threads (handled inline when
/// free-running, queued in a mailbox and pumped deterministically by the
/// lockstep driver between rounds), and all scheduler calls are posted to
/// the owning shard's worker via RuntimeShard::PostAgentOp (never made
/// while holding the agent mutex — a resolve can terminate a process
/// synchronously, which echoes back into the agent through the observer
/// relay). Lock order: agent mutex -> shard mutex (posting only appends).
class CrossShardAgent {
 public:
  struct Options {
    TickMode mode = TickMode::kFreeRunning;
    /// §3.6 composite order between order-independent sub-processes.
    OrderMode span_order = OrderMode::kWeak;
    ShardLogMode log_mode = ShardLogMode::kMemory;
    std::string wal_path;  // kFile only: <wal_dir>/coordinator.wal
    /// Fault injection over the coordinator WAL; sites arrive renamed
    /// ("coordinator/append|sync|synced") plus "coordinator/decide".
    CrashPointListener* crash_listener = nullptr;
  };

  /// `router` and `shards` must outlive the agent; `shards` is the
  /// runtime's shard table (the agent posts ops into it).
  CrossShardAgent(Options options, const ShardRouter* router,
                  std::vector<std::unique_ptr<RuntimeShard>>* shards);
  ~CrossShardAgent();

  CrossShardAgent(const CrossShardAgent&) = delete;
  CrossShardAgent& operator=(const CrossShardAgent&) = delete;

  /// Opens the coordinator WAL. Call before Begin/RecoverScan.
  Status Init();

  /// Takes ownership of a spanning process (facade thread, any number of
  /// concurrent callers): assigns the global serial number, logs SBEGIN
  /// write-ahead, splits the definition, and launches the skeleton. The
  /// ticket's shard/pid refer to the first sub-process in skeleton order;
  /// its gsn field identifies the spanning process for OutcomeOf.
  Result<SubmitTicket> Begin(const ProcessDef* def, int64_t param);

  /// Shard events, forwarded by the runtime's observer relay (worker
  /// threads). Unknown pids are ignored (non-spanning processes).
  void OnCommitHeld(int shard, ProcessId pid);
  void OnProcessTerminated(int shard, ProcessId pid, ProcessOutcome outcome);

  /// Lockstep driver (facade thread): processes the queued shard events
  /// deterministically — stable order by shard index, FIFO within a
  /// shard. No-op when free-running (events are handled inline).
  void Pump();

  /// Spanning processes begun and not yet terminally logged (SEND). The
  /// runtime's Drain treats a positive count as "not idle": a spanning
  /// process parked on a remote shard's prepare is busy, not idle.
  int64_t InFlightCount() const;

  SpanOutcome OutcomeOf(int64_t gsn) const;

  /// Sticky coordinator failure (an injected crash or I/O error on the
  /// coordinator WAL). Once set the agent stops deciding; held
  /// sub-processes stay parked until recovery resolves them.
  Status status() const;

  int64_t spans_begun() const;
  int64_t spans_committed() const;
  int64_t spans_aborted() const;

  /// Everything the per-shard replays need from the coordinator log:
  /// the regenerated sub-definitions (agent-owned; merged into the
  /// defs-by-name map handed to each shard's Recover) and the
  /// force-commit directives for durably decided commits.
  struct SpanRecoveryPlan {
    std::map<std::string, const ProcessDef*> sub_defs;
    TransactionalProcessScheduler::RecoverDirectives directives;
  };

  /// Replays the coordinator WAL (facade thread, before the shard
  /// replays; the agent must not have live spans). Every SBEGIN is
  /// re-split deterministically from `defs_by_name` — the same splitter,
  /// the same name prefix, hence bit-identical sub-definitions.
  Result<SpanRecoveryPlan> RecoverScan(
      const std::map<std::string, const ProcessDef*>& defs_by_name);

  /// After the shard replays: logs the presumed-abort decision for every
  /// undecided spanning process, closes every unfinished one with SEND,
  /// and records the outcomes.
  Status FinishRecovery();

  /// Mapping the global projection needs: sub-definition name ->
  /// projection entry, covering every span this agent has seen (live,
  /// finished, and recovered).
  std::map<std::string, SpanSubProjection> ProjectionInfo() const;

  /// Runtime shutdown: fails the pending first-pid promises of spans
  /// whose first sub-process was never admitted (their posted ops were
  /// dropped with the workers).
  void Shutdown();

  /// Test access to the coordinator WAL (e.g. to inspect or corrupt it).
  Wal* wal() { return wal_.get(); }

 private:
  struct SubState {
    const SubProcessPlan* plan = nullptr;
    bool submitted = false;
    bool admitted = false;
    bool voted = false;
    bool terminated = false;
    bool committed = false;
    ProcessId pid;
  };

  struct SpanState {
    int64_t gsn = 0;
    const ProcessDef* original = nullptr;
    int64_t param = 0;
    SplitPlan plan;
    std::vector<SubState> trunk;  // parallel to plan.subs
    std::vector<SubState> tails;  // parallel to plan.tails
    int current_tail = -1;        // tail attempt in flight (-1: none yet)
    bool decided = false;
    bool commit = false;
    int decided_tail = -1;
    bool done = false;  // SEND logged
    bool recovered = false;
    /// (is_tail, index) in the order sub-processes were submitted —
    /// global abort resolves in reverse of this order (Lemma 2).
    std::vector<std::pair<bool, int>> submission_order;
    std::promise<Result<ProcessId>> first_pid;
    bool first_pid_set = false;
  };

  /// Where a shard-local pid belongs.
  struct SubRef {
    int64_t gsn = 0;
    bool is_tail = false;
    int index = 0;
  };

  struct Event {
    int shard = 0;
    bool vote = false;  // else: terminated
    ProcessId pid;
    ProcessOutcome outcome = ProcessOutcome::kActive;
  };

  /// Renames the generic WAL sites to coordinator/* before forwarding to
  /// the user listener, so a site-filtered sweep can target the
  /// coordinator log alone.
  class RenamingListener;

  // All handlers below run with mu_ held.
  SubState* FindSub(SpanState* st, bool is_tail, int index);
  SubState* FindSubByPid(int shard, ProcessId pid, SpanState** st_out,
                         SubRef* ref_out);
  void HandleEvent(const Event& event);
  void HandleVote(SpanState* st, const SubRef& ref);
  void HandleTerminated(SpanState* st, const SubRef& ref,
                        ProcessOutcome outcome);
  void HandleSubFailure(SpanState* st, const SubRef& ref);
  /// Submits every trunk sub-process whose skeleton predecessors voted
  /// (kWeak) or the next unsubmitted one after its predecessor voted
  /// (kStrong).
  void LaunchReady(SpanState* st);
  void SubmitSub(SpanState* st, bool is_tail, int index);
  void StartTailAttempt(SpanState* st, int k);
  void Decide(SpanState* st, bool commit, int tail_index);
  void MaybeFinish(SpanState* st);
  Status AppendRecord(const std::string& record);
  void StickyFail(const Status& status);
  void DeliverFirstPid(SpanState* st, Result<ProcessId> pid);

  // Runs on the owning shard's worker thread, never holding mu_ across
  // scheduler calls.
  void RunSubmitOp(int64_t gsn, bool is_tail, int index);
  void RunResolveOp(int shard, ProcessId pid, bool commit);

  Options options_;
  const ShardRouter* router_;
  std::vector<std::unique_ptr<RuntimeShard>>* shards_;

  std::unique_ptr<RenamingListener> renamer_;
  std::unique_ptr<Wal> wal_;  // null with ShardLogMode::kNone

  mutable std::mutex mu_;
  Status error_;
  int64_t next_gsn_ = 1;
  std::map<int64_t, std::unique_ptr<SpanState>> spans_;
  /// (shard, pid) -> sub, for event dispatch.
  std::map<std::pair<int, int64_t>, SubRef> by_pid_;
  /// Per shard: live spanning sub-processes (gsn, pid) — the source of
  /// the gsn-order external SGT edges issued on admission.
  std::vector<std::vector<std::pair<int64_t, ProcessId>>> live_;
  std::vector<Event> mailbox_;
  int64_t in_flight_ = 0;
  int64_t spans_begun_ = 0;
  int64_t spans_committed_ = 0;
  int64_t spans_aborted_ = 0;
};

}  // namespace tpm

#endif  // TPM_RUNTIME_CROSS_SHARD_AGENT_H_
