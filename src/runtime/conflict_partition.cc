#include "runtime/conflict_partition.h"

#include <algorithm>
#include <numeric>

#include "common/str_util.h"

namespace tpm {

namespace {

/// Plain union-find over dense service indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    // Deterministic: the smaller index becomes the root.
    if (a < b) {
      parent_[b] = a;
    } else {
      parent_[a] = b;
    }
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

int ConflictPartition::ShardOfService(const ConflictSpec& spec,
                                      ServiceId service) const {
  const int index = spec.IndexOf(service);
  if (index < 0 || index >= static_cast<int>(shard_of.size())) return -1;
  return shard_of[index];
}

int ConflictPartition::ComponentOfService(const ConflictSpec& spec,
                                          ServiceId service) const {
  const int index = spec.IndexOf(service);
  if (index < 0 || index >= static_cast<int>(component_of.size())) return -1;
  return component_of[index];
}

Result<ConflictPartition> ComputeConflictPartition(
    const ConflictSpec& spec, int num_shards,
    const ColocationGroups& colocate) {
  if (num_shards < 1) {
    return Status::InvalidArgument(
        StrCat("num_shards must be >= 1, got ", num_shards));
  }
  const int n = static_cast<int>(spec.NumServices());
  UnionFind uf(static_cast<size_t>(n));
  for (const auto& [a, b] : spec.ConflictPairs()) {
    uf.Union(spec.IndexOf(a), spec.IndexOf(b));
  }
  for (const auto& group : colocate) {
    int first = -1;
    for (ServiceId service : group) {
      const int index = spec.IndexOf(service);
      if (index < 0) {
        return Status::NotFound(
            StrCat("colocation group names service ", service,
                   " which is not registered"));
      }
      if (first < 0) {
        first = index;
      } else {
        uf.Union(first, index);
      }
    }
  }

  ConflictPartition partition;
  partition.num_shards = num_shards;
  partition.component_of.assign(static_cast<size_t>(n), -1);
  // Number components by first appearance in dense-index order.
  std::vector<int> component_of_root(static_cast<size_t>(n), -1);
  std::vector<int64_t> component_size;
  for (int i = 0; i < n; ++i) {
    const int root = uf.Find(i);
    if (component_of_root[root] < 0) {
      component_of_root[root] = static_cast<int>(component_size.size());
      component_size.push_back(0);
    }
    partition.component_of[i] = component_of_root[root];
    ++component_size[component_of_root[root]];
  }

  // Greedy packing: big components first (ties by lower component id —
  // i.e. earlier first appearance), each onto the least-loaded shard
  // (ties by lower shard index).
  std::vector<int> order(component_size.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    if (component_size[a] != component_size[b]) {
      return component_size[a] > component_size[b];
    }
    return a < b;
  });
  partition.shard_of_component.assign(component_size.size(), -1);
  std::vector<int64_t> load(static_cast<size_t>(num_shards), 0);
  for (int component : order) {
    int best = 0;
    for (int s = 1; s < num_shards; ++s) {
      if (load[s] < load[best]) best = s;
    }
    partition.shard_of_component[component] = best;
    load[best] += component_size[component];
  }

  partition.shard_of.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    partition.shard_of[i] =
        partition.shard_of_component[partition.component_of[i]];
  }
  return partition;
}

Status VerifyPartition(const ConflictSpec& spec,
                       const ConflictPartition& partition,
                       const ColocationGroups& colocate) {
  const size_t n = spec.NumServices();
  if (partition.num_shards < 1) {
    return Status::InvalidArgument("partition has no shards");
  }
  if (partition.component_of.size() != n || partition.shard_of.size() != n) {
    return Status::InvalidArgument(
        StrCat("partition covers ", partition.shard_of.size(), "/",
               partition.component_of.size(), " services, spec has ", n));
  }
  const int num_components = partition.num_components();
  for (size_t i = 0; i < n; ++i) {
    const int component = partition.component_of[i];
    if (component < 0 || component >= num_components) {
      return Status::InvalidArgument(
          StrCat("service ", spec.ServiceAt(i), " has component ", component,
                 " out of range [0, ", num_components, ")"));
    }
    const int shard = partition.shard_of[i];
    if (shard < 0 || shard >= partition.num_shards) {
      return Status::InvalidArgument(
          StrCat("service ", spec.ServiceAt(i), " has shard ", shard,
                 " out of range [0, ", partition.num_shards, ")"));
    }
    if (shard != partition.shard_of_component[component]) {
      return Status::InvalidArgument(
          StrCat("service ", spec.ServiceAt(i), " assigned shard ", shard,
                 " but its component ", component, " owns shard ",
                 partition.shard_of_component[component]));
    }
  }
  for (int c = 0; c < num_components; ++c) {
    const int shard = partition.shard_of_component[c];
    if (shard < 0 || shard >= partition.num_shards) {
      return Status::InvalidArgument(StrCat("component ", c, " has shard ",
                                            shard, " out of range [0, ",
                                            partition.num_shards, ")"));
    }
  }
  // The load-bearing property: no conflict edge crosses shards (checked on
  // the raw relation — op downgrades only remove edges).
  for (const auto& [a, b] : spec.ConflictPairs()) {
    const int ia = spec.IndexOf(a);
    const int ib = spec.IndexOf(b);
    if (partition.shard_of[ia] != partition.shard_of[ib]) {
      return Status::Internal(
          StrCat("conflict edge ", a, " -- ", b, " crosses shards ",
                 partition.shard_of[ia], " and ", partition.shard_of[ib]));
    }
    if (partition.component_of[ia] != partition.component_of[ib]) {
      return Status::Internal(
          StrCat("conflict edge ", a, " -- ", b, " crosses components ",
                 partition.component_of[ia], " and ",
                 partition.component_of[ib]));
    }
  }
  for (const auto& group : colocate) {
    int first_shard = -1;
    ServiceId first_service;
    for (ServiceId service : group) {
      const int shard = partition.ShardOfService(spec, service);
      if (shard < 0) {
        return Status::InvalidArgument(
            StrCat("colocation group names unknown service ", service));
      }
      if (first_shard < 0) {
        first_shard = shard;
        first_service = service;
      } else if (shard != first_shard) {
        return Status::Internal(
            StrCat("colocated services ", first_service, " and ", service,
                   " landed on shards ", first_shard, " and ", shard));
      }
    }
  }
  return Status::OK();
}

}  // namespace tpm
