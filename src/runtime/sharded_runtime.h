#ifndef TPM_RUNTIME_SHARDED_RUNTIME_H_
#define TPM_RUNTIME_SHARDED_RUNTIME_H_

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/conflict.h"
#include "core/process.h"
#include "core/scheduler.h"
#include "runtime/conflict_partition.h"
#include "runtime/cross_shard_agent.h"
#include "runtime/elastic/elastic_controller.h"
#include "runtime/elastic/elastic_options.h"
#include "runtime/elastic/load_monitor.h"
#include "runtime/elastic/migration_engine.h"
#include "runtime/global_projection.h"
#include "runtime/runtime_stats.h"
#include "runtime/shard.h"
#include "runtime/shard_router.h"
#include "runtime/submission_queue.h"
#include "subsystem/weak_order.h"

namespace tpm {

/// Shard-tagged observer over the whole runtime. Callbacks are serialized
/// under one relay mutex (so observers may keep plain state) but arrive on
/// SHARD WORKER threads — an observer must not call back into the runtime
/// or any shard scheduler, and must outlive the runtime.
class RuntimeObserver {
 public:
  virtual ~RuntimeObserver() = default;
  virtual void OnActivityCommitted(int /*shard*/, ProcessId /*pid*/,
                                   ActivityId /*act*/, bool /*inverse*/) {}
  virtual void OnInvocationFailed(int /*shard*/, ProcessId /*pid*/,
                                  ActivityId /*act*/) {}
  virtual void OnAlternativeTaken(int /*shard*/, ProcessId /*pid*/,
                                  ActivityId /*branch_point*/,
                                  int /*group*/) {}
  virtual void OnProcessTerminated(int /*shard*/, ProcessId /*pid*/,
                                   ProcessOutcome /*outcome*/) {}
  /// A held sub-process of a spanning process durably voted "prepared" on
  /// `shard` (the shard-tagged relay of SchedulerObserver::OnCommitHeld).
  virtual void OnCommitHeld(int /*shard*/, ProcessId /*pid*/) {}
  /// A replica of `shard`'s replica group changed lifecycle state —
  /// kActive -> kKilled (crashed or killed), kActive -> kEvicted (lost a
  /// divergence vote), kKilled/kEvicted -> kActive (respawned). Only
  /// fires when replication is on.
  virtual void OnReplicaStateChange(int /*shard*/, int /*replica*/,
                                    ReplicaState /*from*/,
                                    ReplicaState /*to*/) {}
  /// Elastic lifecycle. Same thread contract as above, except these may
  /// additionally arrive on the CONTROL-PLANE or elastic-controller
  /// thread (parking and migration are control-plane actions): serialized
  /// under the relay mutex, no calling back into the runtime, must
  /// outlive it. OnShardParked / OnShardResumed bracket a shard's DPM
  /// sleep; OnComponentMigrated fires once a migration's MEND is durable.
  virtual void OnShardParked(int /*shard*/) {}
  virtual void OnShardResumed(int /*shard*/) {}
  virtual void OnComponentMigrated(int /*component*/, int /*from*/,
                                   int /*to*/) {}
};

struct ShardedRuntimeOptions {
  /// Scheduler shards (worker threads). Components of the conflict graph
  /// are packed onto these; surplus shards idle.
  int num_shards = 1;
  /// Per-shard scheduler configuration. `clock` is ignored: every shard
  /// owns a private VirtualClock (the shard time base).
  SchedulerOptions scheduler;
  /// Bounded submission queue per shard, and what a full one does.
  size_t queue_capacity = 1024;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Each worker admits its per-pass queue drain through one batched
  /// Scheduler::SubmitBatch call (outcomes bit-identical to per-process
  /// admission; off = the reference path, useful for A/B benching).
  bool batched_admission = true;
  /// Lockstep (deterministic, driven by Tick/Drain) or free-running
  /// (workers self-drive; Drain blocks until quiescence).
  TickMode mode = TickMode::kFreeRunning;
  /// Per-shard recovery log. kFile requires wal_dir; each shard owns
  /// <wal_dir>/shard-<i>.wal, and a restart with the same configuration
  /// recomputes the same partition, reuniting each WAL with its services.
  ShardLogMode log_mode = ShardLogMode::kMemory;
  std::string wal_dir;
  /// After Recover, re-verify each shard's recovery history: PRED on the
  /// full history and Proc-REC on its committed projection. With spanning
  /// processes, additionally PRED + Proc-REC on the GLOBAL committed
  /// projection (the per-shard histories merged by MergeGlobalProjection).
  bool verify_recovery = true;
  /// §3.6 composite order between the order-independent sub-processes of
  /// one spanning process: kWeak runs them in parallel, kStrong strictly
  /// one after the other's prepared vote.
  OrderMode span_order = OrderMode::kWeak;
  /// Fault injection over the coordinator WAL (sites
  /// "coordinator/append|sync|synced|decide"). The shard WALs keep their
  /// own listener via `scheduler`.
  CrashPointListener* coordinator_crash_listener = nullptr;
  /// factor > 1 runs every shard as that many voting scheduler replicas
  /// (NMR): divergence detection at vote boundaries, eviction of losers,
  /// hot failover off a dead primary. Off (1) by default — the runtime
  /// then behaves exactly as before. Replication rejects spanning
  /// processes (RouteKind::kSplit), and subsystems for replicas >= 1 must
  /// be provided via AddReplicaSubsystem from mirrored worlds.
  ReplicationOptions replication;
  /// Elastic runtime (DESIGN.md §4k): per-shard load telemetry,
  /// quiesce-and-migrate of conflict components between live shards,
  /// DPM-style idle-shard parking, and (policy.enabled) the adaptive
  /// rebalancing controller. Off by default — the runtime then runs the
  /// exact pre-elastic path (no probe, no clock reads in the worker
  /// pass). Elastic and replication are mutually exclusive (a staged
  /// limit: component migration does not yet compose with replica
  /// groups).
  ElasticOptions elastic;
};

/// The sharded multi-threaded runtime: N unmodified single-threaded
/// schedulers — one per conflict-partition shard, each with its own WAL,
/// clock and worker thread — behind a thread-safe submission front-end.
///
/// Correctness story (DESIGN.md §4g): the partitioner puts every pair of
/// conflicting services on one shard, the router pins each process to the
/// shard owning its footprint, so no serialization edge, compensation
/// dependency or deadlock can ever span shards — each shard's schedule is
/// PRED and Proc-REC by the single scheduler's guarantees, and the union
/// of the shard histories is PRED and Proc-REC because interleavings
/// without cross conflicts reduce componentwise.
///
/// Lifecycle: configure (AddSubsystem / AddConflict / AddColocation /
/// AddObserver) → Start → Submit/Tick/Drain (or Recover first) → Stop →
/// inspect shard schedulers. The control plane (Start/Tick/Drain/Recover/
/// Stop) is single-threaded — one coordinating thread; Submit alone is
/// thread-safe and may be called from any number of threads concurrently.
class ShardedRuntime {
 public:
  explicit ShardedRuntime(ShardedRuntimeOptions options);
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  /// Configuration phase (before Start). Subsystems must outlive the
  /// runtime; each subsystem's services are implicitly colocated (they
  /// share its store and lock table, and the owning shard's worker must
  /// be the only thread invoking it).
  Status AddSubsystem(Subsystem* subsystem);
  /// Replication only: the subsystem set of replica `replica` (from a
  /// mirror world seeded identically to replica 0's, so it mints the same
  /// ServiceIds). replica 0's subsystems go through plain AddSubsystem —
  /// they define the conflict spec; replicas >= 1 are routed to the shard
  /// owning their first service and must mirror replica 0's registration
  /// order and per-shard counts (checked at Start).
  Status AddReplicaSubsystem(int replica, Subsystem* subsystem);
  /// Extra conflict beyond the subsystem-derived ones (both services join
  /// one shard).
  Status AddConflict(ServiceId a, ServiceId b);
  /// Pins `group` to one shard even though no conflicts relate them —
  /// e.g. a tenant's services, so its processes' footprints stay local.
  Status AddColocation(std::vector<ServiceId> group);
  Status AddObserver(RuntimeObserver* observer);

  /// Builds the union conflict spec, computes and verifies the conflict
  /// partition, creates the shards (opening per-shard WALs), registers
  /// each subsystem with its owning shard's scheduler, and starts the
  /// workers.
  Status Start();

  bool started() const { return started_; }
  int num_shards() const { return options_.num_shards; }
  /// Valid after Start.
  const ConflictSpec& union_spec() const { return union_spec_; }
  const ConflictPartition& partition() const { return partition_; }
  const ShardRouter& router() const { return *router_; }

  /// Thread-safe submission. A definition whose footprint lives on one
  /// shard is queued there (the unchanged fast path); a spanning
  /// definition is handed to the cross-shard agent, which decomposes it
  /// and drives the distributed commit — the ticket's gsn identifies the
  /// spanning process (SpanningOutcome), and its pid future delivers the
  /// FIRST sub-process's admission. Errors: InvalidArgument (a spanning
  /// shape the splitter does not support — positioned admission error),
  /// NotFound (unregistered service), ResourceExhausted (kReject + full
  /// queue), Unavailable (not started / stopping).
  ///
  /// Lifetime contract: the caller retains ownership of *def and must keep
  /// it valid until the runtime is STOPPED — the shard scheduler stores
  /// the raw pointer for the life of the admitted process and its history,
  /// not merely until the queue drains. A producer that cannot guarantee
  /// that uses the shared_ptr overload below, which transfers ownership
  /// across the queue so the definition survives the producer.
  Result<SubmitTicket> Submit(const ProcessDef* def, int64_t param = 0);

  /// Ownership-transferring submission: the runtime keeps the definition
  /// alive for as long as any shard scheduler may dereference it, so the
  /// producer may drop its reference as soon as this returns.
  Result<SubmitTicket> Submit(std::shared_ptr<const ProcessDef> def,
                              int64_t param = 0);

  /// Lockstep only: drives `rounds` global tick rounds (every shard
  /// completes round t before any shard starts t+1 — the shard clocks
  /// advance in lockstep).
  Status Tick(int64_t rounds = 1);

  /// Runs until every shard is idle (queue empty, scheduler out of work).
  /// Lockstep: drives tick rounds up to `max_rounds`. Free-running: blocks
  /// on the workers. No concurrent Submit may race a Drain — quiescence
  /// would be a moving target.
  Status Drain(int64_t max_rounds = 1'000'000);

  /// Crash recovery. First the coordinator WAL is replayed (CrossShardAgent
  /// ::RecoverScan): every spanning process it references is re-split
  /// deterministically, and durably decided commits become force-commit
  /// directives. Then every shard worker replays its own WAL CONCURRENTLY
  /// (scheduler Recover: rebuild states, force-commit directed in-doubt
  /// votes, group abort of everything else in flight), then — with
  /// verify_recovery — asserts PRED on the shard's recovery history and
  /// Proc-REC on its committed projection. Undecided spanning processes
  /// are then presumed aborted (durably, FinishRecovery), and with
  /// spanning processes present the GLOBAL merged projection is verified
  /// PRED + Proc-REC too. Call after Start on a runtime whose WAL files
  /// (and subsystems) survive from the crashed incarnation, before
  /// submitting new work.
  Status Recover(const std::map<std::string, const ProcessDef*>& defs_by_name);

  /// Stops all workers WITHOUT draining queued work (kill semantics; call
  /// Drain first for a clean finish) and fails leftover submissions.
  /// After Stop the shard schedulers are quiesced and released for
  /// inspection from the calling thread. Idempotent.
  Status Stop();

  /// Aggregated stats: per-shard snapshots plus their MergeFrom fan-in.
  /// Thread-safe (reads published snapshots, not live scheduler state).
  RuntimeStats Stats() const;

  /// Shard coordinates, for tests and post-Stop inspection. The scheduler
  /// pointer is only safe to USE from this thread before Start or after
  /// Stop (its own affinity guard enforces that); the clock only after
  /// Stop.
  TransactionalProcessScheduler* shard_scheduler(int shard);
  VirtualClock* shard_clock(int shard);
  RecoveryLog* shard_log(int shard);
  /// Shard owning `subsystem` (by its first service), or -1.
  int ShardOfSubsystem(const Subsystem* subsystem) const;

  /// Replication control plane (replication.factor > 1 only).
  bool replicated() const { return options_.replication.factor > 1; }
  /// Shard `shard`'s replica group, or nullptr when replication is off.
  ReplicaGroup* shard_group(int shard);
  /// Marks a replica dead while the shard keeps serving (a dead primary
  /// fails over to a live follower immediately, with no recovery pause).
  Status KillReplica(int shard, int replica);
  /// Rebuilds a dead replica from the acting primary. The shard must be
  /// idle (Drain first); defs_by_name as for Recover.
  Status RespawnReplica(
      int shard, int replica,
      const std::map<std::string, const ProcessDef*>& defs_by_name);
  /// Replica coordinates for tests/inspection (same affinity caveats as
  /// shard_scheduler).
  TransactionalProcessScheduler* replica_scheduler(int shard, int replica);

  /// Elastic control plane (options.elastic.enabled only; control-plane
  /// thread, serialized with the auto-controller inside the engine).
  /// Quiesces `component` on its current shard and migrates it — log
  /// segment, subsystem registrations, routing — onto shard `to`.
  /// Blocking; see MigrationEngine::Migrate for the failure contract.
  Status MigrateComponent(int component, int to);
  /// DPM sleep for a shard owning no components (free-running only). The
  /// shard resumes automatically on routed traffic or a migration
  /// targeting it, or explicitly via ResumeShard.
  Status ParkShard(int shard);
  Status ResumeShard(int shard);
  bool ShardParked(int shard) const;
  /// Pauses/resumes the adaptive controller (policy.enabled only) — e.g.
  /// around a phase a test wants to observe without interference.
  void SetRebalancing(bool enabled);

  /// Per-shard producer-side queue depth snapshot (any thread, any
  /// configuration; approximate by nature).
  std::vector<size_t> QueueDepths() const;

  /// Elastic telemetry/engine, or nullptr when elastic is off.
  LoadMonitor* load_monitor() { return monitor_.get(); }
  MigrationEngine* migration_engine() { return engine_.get(); }

  /// Terminal fate of the spanning process `gsn` (from its SubmitTicket).
  SpanOutcome SpanningOutcome(int64_t gsn) const;

  /// The cross-shard coordination agent. Valid after Start.
  CrossShardAgent* cross_shard_agent() { return agent_.get(); }

  /// The global committed-projection view (DESIGN.md §4h): the per-shard
  /// histories merged, with every spanning process reassembled into one
  /// global process. Call after Stop (the shard schedulers must be
  /// quiesced). Fails with Internal if a spanning process is
  /// half-committed — the cross-shard atomicity assertion.
  Result<ProcessSchedule> GlobalProjection();

 private:
  class ShardObserverRelay;
  class ElasticProbe;

  Result<SubmitTicket> SubmitInternal(const ProcessDef* def,
                                      std::shared_ptr<const ProcessDef> owner,
                                      int64_t param);

  /// Builds the gather/apply closures and starts the ElasticController.
  void StartElasticController();
  /// Park/resume that also updates the monitor and fires the observers.
  Status ParkShardInternal(int shard);

  void RelayEvent(const std::function<void(RuntimeObserver*)>& fn);
  /// Forwarded by the relays to the agent OUTSIDE observer_mu_ (lock
  /// order: agent mutex after — never under — the relay mutex).
  void NotifyAgentCommitHeld(int shard, ProcessId pid);
  void NotifyAgentTerminated(int shard, ProcessId pid, ProcessOutcome outcome);

  ShardedRuntimeOptions options_;
  std::vector<Subsystem*> subsystems_;
  /// (replica >= 1, subsystem) registrations awaiting Start.
  std::vector<std::pair<int, Subsystem*>> mirror_subsystems_;
  std::vector<std::pair<ServiceId, ServiceId>> extra_conflicts_;
  ColocationGroups colocations_;

  ConflictSpec union_spec_;
  ConflictPartition partition_;
  std::unique_ptr<ShardRouter> router_;
  std::vector<std::unique_ptr<RuntimeShard>> shards_;
  std::unique_ptr<CrossShardAgent> agent_;
  std::vector<std::unique_ptr<ShardObserverRelay>> relays_;
  std::vector<int> shard_of_subsystem_;

  /// Elastic layer (null when options_.elastic.enabled is false — the
  /// pre-elastic hot path carries no probe and reads no clock).
  std::unique_ptr<LoadMonitor> monitor_;
  std::unique_ptr<MigrationEngine> engine_;
  std::unique_ptr<ElasticProbe> probe_;
  std::unique_ptr<ElasticController> controller_;

  // Lifecycle flags are read by Submit from arbitrary producer threads
  // while the control-plane thread runs Start/Stop; atomics keep those
  // reads racefree (the control plane itself stays single-threaded).
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  std::mutex observer_mu_;
  std::vector<RuntimeObserver*> observers_;

  // Owned definitions for spanning submissions (the cross-shard agent
  // re-splits from the original def); pinned submissions travel their
  // owner inside the Submission instead.
  std::mutex retained_defs_mu_;
  std::vector<std::shared_ptr<const ProcessDef>> retained_span_defs_;

  std::atomic<int64_t> submissions_accepted_{0};
  std::atomic<int64_t> submissions_rejected_{0};
  // Written by Tick (control plane), read by Stats from any thread.
  std::atomic<int64_t> lockstep_rounds_{0};
};

}  // namespace tpm

#endif  // TPM_RUNTIME_SHARDED_RUNTIME_H_
