#ifndef TPM_RUNTIME_SHARD_H_
#define TPM_RUNTIME_SHARD_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/virtual_clock.h"
#include "core/scheduler.h"
#include "log/recovery_log.h"
#include "runtime/replica_group.h"
#include "runtime/submission_queue.h"

namespace tpm {

/// How shard workers advance.
enum class TickMode {
  /// Workers step only when the tick driver grants a round, and every
  /// round is: drain the submission queue in FIFO order, then one
  /// scheduling pass. All shard clocks advance in lockstep (tick t
  /// completes on every shard before tick t+1 starts anywhere) and each
  /// shard's execution is a deterministic function of its submission
  /// order — the mode tests replay and compare against solo schedulers.
  kLockstep,
  /// Workers loop as fast as the hardware allows, sleeping only when
  /// idle. Shard clocks drift freely relative to each other (they are
  /// per-shard time bases, never compared). The mode benches run in.
  kFreeRunning,
};

/// Durability of a shard's recovery log.
enum class ShardLogMode {
  kNone,    // no log — no durability, no Recover
  kMemory,  // in-memory WAL (tests, benches)
  kFile,    // file-backed WAL at <wal_dir>/shard-<index>.wal
};

/// One worker pass, as sampled for the elastic LoadMonitor.
struct ShardPassSample {
  /// Wall time the pass spent admitting + stepping (only measured while a
  /// probe is installed — the elastic-off hot path reads no clock).
  int64_t pass_ns = 0;
  /// Producer-side queue depth right after the pass's drain.
  size_t queue_depth = 0;
  /// Submissions admitted this pass.
  int64_t admitted = 0;
  /// The scheduler's cumulative committed-process counter after the pass.
  int64_t committed_total = 0;
};

/// Elastic instrumentation hook installed per shard (the LoadMonitor +
/// MigrationEngine front end). Both methods run on the SHARD WORKER
/// thread; they must not call back into the shard and must outlive it.
class ShardElasticProbe {
 public:
  virtual ~ShardElasticProbe() = default;
  /// Offered every drained submission BEFORE admission. Returning true
  /// takes ownership of `submission` (the migration engine buffers
  /// submissions of a migrating component, and acknowledges its own
  /// null-def marker submissions); false admits it normally.
  virtual bool InterceptSubmission(int shard, Submission& submission) = 0;
  /// Fires at the end of every worker pass.
  virtual void OnPassEnd(int shard, const ShardPassSample& sample) = 0;
};

/// One scheduler shard: an unmodified single-threaded
/// TransactionalProcessScheduler with its own VirtualClock and its own
/// recovery log, driven by a dedicated worker thread that is the
/// scheduler's sole owner (the scheduler's thread-affinity guard enforces
/// this). The shard never touches another shard's state; all cross-thread
/// traffic funnels through the bounded SubmissionQueue, a small
/// command/tick protocol under one mutex, and published stats snapshots.
class RuntimeShard {
 public:
  struct Options {
    int index = 0;
    SchedulerOptions scheduler;  // `clock` is replaced by the shard clock
    size_t queue_capacity = 1024;
    BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
    TickMode mode = TickMode::kFreeRunning;
    ShardLogMode log_mode = ShardLogMode::kMemory;
    std::string wal_path;  // kFile only
    /// Admit each per-pass queue drain through Scheduler::SubmitBatch (one
    /// batched validation + graph extension + guard check instead of N).
    /// Admission outcomes are bit-identical either way; off = the
    /// per-process reference path.
    bool batched_admission = true;
    /// factor > 1 replaces the shard's single scheduler with a
    /// ReplicaGroup: R voting replicas fed identical rounds by this
    /// shard's worker (now a sequencer). Default (1) is the exact
    /// pre-replication path. Agent ops (cross-shard spans) are not
    /// supported on a replicated shard.
    ReplicationOptions replication;
    /// Replicated kFile shards put per-replica WALs here
    /// (<wal_dir>/shard-<index>-replica-<r>.wal); wal_path is ignored.
    std::string wal_dir;
    /// Elastic instrumentation (telemetry sampling + migration
    /// interception). Null = the exact pre-elastic worker pass. Not
    /// supported on replicated shards.
    ShardElasticProbe* probe = nullptr;
    /// Invoked (outside the shard mutex, on whichever thread unparked)
    /// whenever Unpark() transitions parked -> running — including the
    /// EnqueueSubmission auto-unpark (DPM resume-on-routed-traffic).
    std::function<void(int shard)> on_unpark;
  };

  explicit RuntimeShard(Options options);
  ~RuntimeShard();

  RuntimeShard(const RuntimeShard&) = delete;
  RuntimeShard& operator=(const RuntimeShard&) = delete;

  /// Opens the log and constructs the scheduler. Caller thread; call
  /// before any registration.
  Status Init();

  /// Setup-phase access (facade thread, before Start — and, once the
  /// worker has stopped, test inspection: Stop releases the scheduler's
  /// thread affinity). On a replicated shard these resolve to the acting
  /// primary replica's parts.
  TransactionalProcessScheduler* scheduler();
  VirtualClock* clock();
  RecoveryLog* log();
  int index() const { return options_.index; }

  /// The shard's replica group, or nullptr when replication is off.
  ReplicaGroup* group() { return group_.get(); }
  bool replicated() const { return group_ != nullptr; }

  /// Hands the scheduler to a fresh worker thread and starts it.
  void Start();

  /// Producer side (any thread): queue a submission under the shard's
  /// backpressure policy. Wakes the worker.
  Status EnqueueSubmission(Submission submission);
  /// Same, under an explicit policy — the migration engine flushes its
  /// buffered submissions with kBlock regardless of the shard's own
  /// policy (they were already accepted; shedding them now would break
  /// the producer's ticket).
  Status EnqueueSubmission(Submission submission, BackpressurePolicy policy);

  /// Queues a closure the worker runs at the start of its next pass,
  /// before draining submissions — the cross-shard agent's channel for
  /// scheduler calls (submit a sub-process, resolve a held commit) that
  /// must execute on the owning worker thread. FIFO per shard; ops count
  /// as work (the shard is not idle while one is pending). Wakes the
  /// worker. The closure runs outside the shard mutex, so it may take the
  /// agent's lock; never post from the posting shard's own op (reentrant
  /// FIFO is fine, self-deadlock is not an issue since ops only append).
  void PostAgentOp(std::function<void()> op);

  /// Lockstep driver protocol: grant one round, then wait for its
  /// completion. WaitTickDone returns the shard's sticky error, if any.
  void GrantTick();
  Status WaitTickDone();

  /// Runs `fn` on the worker thread. PostCommand enqueues (one command at
  /// a time — the control plane is single-threaded); WaitCommandDone
  /// blocks until the worker finished it and returns its status. Used for
  /// Recover, so every shard can replay its WAL concurrently.
  void PostCommand(std::function<Status()> fn);
  Status WaitCommandDone();

  /// Scheduler-parameterized command: runs on the worker thread against
  /// the shard scheduler — or, replicated, against EVERY live replica's
  /// scheduler on its own worker (Recover must replay each replica's
  /// private WAL). Wait with WaitCommandDone.
  void PostSchedulerCommand(
      std::function<Status(TransactionalProcessScheduler*)> fn);

  /// Free-running mode: blocks until the shard has no queued submissions
  /// and its scheduler reports no remaining work (or the shard errored).
  Status WaitIdle();

  /// True iff no queued submissions and no remaining scheduler work.
  bool IsIdle();

  /// Last stats snapshot the worker published (end of each pass).
  SchedulerStats StatsSnapshot() const;

  /// Producer-side queue depth (elastic telemetry; approximate by nature —
  /// the worker may be draining concurrently).
  size_t QueueDepth() const { return queue_.size(); }

  /// DPM-style parking (free-running only — a parked lockstep shard would
  /// stall the tick barrier): the worker blocks without running passes
  /// until Unpark, a command, or Stop. Only meaningful for a shard that
  /// owns no conflict components; the runtime enforces that.
  Status Park();
  /// Resumes a parked worker. Returns true iff the shard was parked, and
  /// fires on_unpark (outside the mutex) exactly once per transition; also
  /// invoked internally by EnqueueSubmission, so routed traffic always
  /// wakes a parked shard.
  bool Unpark();
  bool parked() const;

  /// Sticky shard error (a failed Step/Submit pass or command).
  Status status() const;

  /// Closes the queue, stops the worker WITHOUT draining remaining work
  /// (kill semantics — Drain first for a clean finish), fails leftover
  /// queued submissions, joins, and releases the scheduler's thread
  /// affinity so the caller may inspect it. Idempotent.
  void Stop();

  bool started() const { return worker_.joinable() || stopped_; }

 private:
  void WorkerLoop();
  /// Replicated worker: a sequencer that drains the queue and publishes
  /// rounds to the replica group instead of running a scheduler itself.
  void SequencerLoop();
  /// One pass: drain + admit queued submissions, then one scheduling pass
  /// if work remains. Returns the new has-work flag.
  bool RunOnePass(bool had_work);
  void RecordError(const Status& status);
  void PublishStats();

  Options options_;
  VirtualClock clock_;
  std::unique_ptr<RecoveryLog> log_;
  std::unique_ptr<TransactionalProcessScheduler> scheduler_;
  std::unique_ptr<ReplicaGroup> group_;
  SubmissionQueue queue_;
  /// Definitions whose ownership was transferred with the submission
  /// (Submission::def_owner): the scheduler keeps raw ProcessDef pointers
  /// for the life of each admitted process, so the shard holds them until
  /// it is destroyed. Worker-thread only (and the destructor, after join).
  std::map<const ProcessDef*, std::shared_ptr<const ProcessDef>>
      retained_defs_;

  std::thread worker_;
  bool stopped_ = false;

  mutable std::mutex mu_;
  std::condition_variable cv_worker_;  // wakes the worker
  std::condition_variable cv_client_;  // wakes driver/waiters
  bool stop_requested_ = false;
  bool has_work_ = false;
  /// True while the worker runs a pass outside the lock. Idle checks must
  /// see it: mid-pass the queue is already drained but the admitted
  /// submissions may not have been stepped yet, so `!has_work_ &&
  /// queue_.empty()` alone would report idle too early.
  bool busy_ = false;
  /// DPM parking gate: while set, the worker predicate ignores work (only
  /// commands and stop wake it). Cleared by Unpark.
  bool parked_ = false;
  int64_t ticks_granted_ = 0;
  int64_t ticks_done_ = 0;
  std::deque<std::function<void()>> agent_ops_;
  std::function<Status()> command_;
  bool command_done_ = false;
  Status command_status_;
  Status error_;
  SchedulerStats stats_snapshot_;
};

}  // namespace tpm

#endif  // TPM_RUNTIME_SHARD_H_
