#include "runtime/global_projection.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/str_util.h"

namespace tpm {

namespace {

/// One shard-local process in the merge.
struct LocalProcess {
  const SpanSubProjection* span = nullptr;  // null: not a spanning slice
  ProcessId global_pid;
  int64_t forward_total = 0;     // kActivity events with inverse == false
  int64_t forward_consumed = 0;
  bool committed = false;        // has a Commit terminal in its history
  bool terminal_consumed = false;
  bool terminal_commit = false;
};

/// One spanning process (gsn) across all shards.
struct SpanInstance {
  ProcessId global_pid;
  int slices = 0;            // slices present in some history
  int terminals = 0;         // slice terminals consumed so far
  int committed_slices = 0;
  bool terminal_emitted = false;
  std::vector<std::pair<int, int64_t>> members;  // (shard, local pid)
};

}  // namespace

Result<ProcessSchedule> MergeGlobalProjection(
    const std::vector<const ProcessSchedule*>& shard_histories,
    const std::map<std::string, SpanSubProjection>& spans) {
  ProcessSchedule global;

  // --- Index every local process; assign global pids (shards ascending,
  // local pids ascending — deterministic).
  std::map<std::pair<int, int64_t>, LocalProcess> locals;
  std::map<int64_t, SpanInstance> span_instances;  // by gsn
  // sub-definition name -> (shard, pid), to evaluate forward_preds.
  std::map<std::string, std::pair<int, int64_t>> slice_of_name;
  int64_t next_pid = 1;
  for (size_t shard = 0; shard < shard_histories.size(); ++shard) {
    const ProcessSchedule& history = *shard_histories[shard];
    for (const auto& [pid, def] : history.processes()) {
      LocalProcess local;
      auto span = spans.find(def->name());
      if (span != spans.end()) {
        local.span = &span->second;
        SpanInstance& instance = span_instances[span->second.gsn];
        if (instance.slices == 0) {
          instance.global_pid = ProcessId(next_pid++);
          TPM_RETURN_IF_ERROR(
              global.AddProcess(instance.global_pid, span->second.original));
        }
        ++instance.slices;
        instance.members.emplace_back(static_cast<int>(shard), pid.value());
        local.global_pid = instance.global_pid;
        slice_of_name[def->name()] = {static_cast<int>(shard), pid.value()};
      } else {
        local.global_pid = ProcessId(next_pid++);
        TPM_RETURN_IF_ERROR(global.AddProcess(local.global_pid, def));
      }
      locals[{static_cast<int>(shard), pid.value()}] = local;
    }
    for (const ScheduleEvent& event : history.events()) {
      if (event.type == EventType::kActivity && !event.act.inverse) {
        ++locals[{static_cast<int>(shard), event.act.process.value()}]
              .forward_total;
      } else if (event.type == EventType::kCommit) {
        locals[{static_cast<int>(shard), event.process.value()}].committed =
            true;
      }
    }
  }

  // A slice's events are enabled once every skeleton predecessor present
  // in some history has all its forward events merged.
  auto slice_enabled = [&](const LocalProcess& local) {
    // Aborted slices are effect-free (their forward work is compensated)
    // and induce no conflicts, so they need no cross-shard ordering; after
    // a crash their terminals can also arrive in per-shard orders no
    // global decision sequence explains — gating them would wedge.
    if (local.span == nullptr || !local.committed) return true;
    for (const std::string& pred : local.span->forward_preds) {
      auto found = slice_of_name.find(pred);
      if (found == slice_of_name.end()) continue;  // never submitted
      const LocalProcess& p = locals.at(found->second);
      if (p.forward_consumed < p.forward_total) return false;
    }
    return true;
  };
  // A committed span's global terminal can only be emitted once every
  // slice's forward events are in the merged history (activities must
  // precede their process's commit).
  auto span_forward_done = [&](int64_t gsn) {
    for (const auto& member : span_instances.at(gsn).members) {
      const LocalProcess& m = locals.at(member);
      if (m.forward_consumed < m.forward_total) return false;
    }
    return true;
  };
  auto event_enabled = [&](int shard, const ScheduleEvent& event) {
    switch (event.type) {
      case EventType::kActivity:
        return slice_enabled(locals.at({shard, event.act.process.value()}));
      case EventType::kCommit:
      case EventType::kAbort: {
        const LocalProcess& local = locals.at({shard, event.process.value()});
        if (!slice_enabled(local)) return false;
        // A slice COMMIT stalls until the whole span's forward work is
        // merged: consuming it emits the global terminal (see below), and
        // every sibling's forward events must precede that terminal.
        if (event.type == EventType::kCommit && local.span != nullptr) {
          return span_forward_done(local.span->gsn);
        }
        return true;
      }
      case EventType::kGroupAbort:
        for (ProcessId pid : event.group) {
          if (!slice_enabled(locals.at({shard, pid.value()}))) return false;
        }
        return true;
    }
    return true;
  };

  // Consume a slice terminal. The global COMMIT is emitted at the FIRST
  // slice commit consumed (its gate above guarantees all span forward
  // events are already merged); aborts emit at the last slice terminal.
  // Emitting at the first commit keeps every merge wait pointed at
  // strictly-earlier wall-clock events — all of a span's forward events
  // precede its 2PC decision, which precedes every slice's commit record
  // — so the greedy merge below always makes progress. (Emitting at the
  // LAST terminal instead can wait on an event a shard appended *after*
  // events already stalled behind this one, deadlocking the merge against
  // the forward-predecessor gate.) Events a shard ordered after a slice
  // commit still land after the global terminal: it is out no later than
  // the first slice-commit consumption.
  auto consume_span_terminal = [&](LocalProcess& local,
                                   bool committed) -> Status {
    local.terminal_consumed = true;
    local.terminal_commit = committed;
    SpanInstance& instance = span_instances.at(local.span->gsn);
    ++instance.terminals;
    if (committed) ++instance.committed_slices;
    if (instance.terminals == instance.slices &&
        instance.committed_slices != 0 &&
        instance.committed_slices != instance.slices) {
      return Status::Internal(StrCat(
          "spanning process g", local.span->gsn, " is half-committed: ",
          instance.committed_slices, " of ", instance.slices,
          " slices committed — cross-shard atomicity violated"));
    }
    if (instance.terminal_emitted) return Status::OK();
    if (committed) {
      instance.terminal_emitted = true;
      return global.Append(ScheduleEvent::Commit(instance.global_pid),
                           /*enforce_legal=*/false);
    }
    if (instance.terminals < instance.slices) return Status::OK();
    instance.terminal_emitted = true;
    return global.Append(ScheduleEvent::Abort(instance.global_pid),
                         /*enforce_legal=*/false);
  };

  std::vector<size_t> cursor(shard_histories.size(), 0);
  for (;;) {
    bool all_done = true;
    bool advanced = false;
    for (size_t shard = 0; shard < shard_histories.size(); ++shard) {
      const auto& events = shard_histories[shard]->events();
      if (cursor[shard] >= events.size()) continue;
      all_done = false;
      const ScheduleEvent& event = events[cursor[shard]];
      if (!event_enabled(static_cast<int>(shard), event)) continue;
      ++cursor[shard];
      advanced = true;
      switch (event.type) {
        case EventType::kActivity: {
          LocalProcess& local =
              locals.at({static_cast<int>(shard), event.act.process.value()});
          if (!event.act.inverse) ++local.forward_consumed;
          ScheduleEvent mapped = event;
          mapped.act.process = local.global_pid;
          mapped.process = local.global_pid;
          if (local.span != nullptr) {
            auto original = local.span->to_original.find(event.act.activity);
            if (original == local.span->to_original.end()) {
              return Status::Internal(
                  StrCat("spanning slice activity a", event.act.activity,
                         " has no original mapping (gsn ", local.span->gsn,
                         ")"));
            }
            mapped.act.activity = original->second;
          }
          TPM_RETURN_IF_ERROR(global.Append(mapped, /*enforce_legal=*/false));
          break;
        }
        case EventType::kCommit:
        case EventType::kAbort: {
          LocalProcess& local =
              locals.at({static_cast<int>(shard), event.process.value()});
          if (local.span != nullptr) {
            TPM_RETURN_IF_ERROR(consume_span_terminal(
                local, event.type == EventType::kCommit));
            break;
          }
          ScheduleEvent mapped = event;
          mapped.process = local.global_pid;
          TPM_RETURN_IF_ERROR(global.Append(mapped, /*enforce_legal=*/false));
          break;
        }
        case EventType::kGroupAbort: {
          // Spanning slices leave the group marker (their terminal is the
          // global one); the rest of the group is remapped verbatim.
          std::vector<ProcessId> remapped;
          for (ProcessId pid : event.group) {
            LocalProcess& local =
                locals.at({static_cast<int>(shard), pid.value()});
            if (local.span != nullptr) {
              TPM_RETURN_IF_ERROR(
                  consume_span_terminal(local, /*committed=*/false));
            } else {
              remapped.push_back(local.global_pid);
            }
          }
          if (!remapped.empty()) {
            TPM_RETURN_IF_ERROR(
                global.Append(ScheduleEvent::GroupAbort(std::move(remapped)),
                              /*enforce_legal=*/false));
          }
          break;
        }
      }
      break;  // restart at shard 0: lowest enabled shard goes first
    }
    if (all_done) break;
    if (!advanced) {
      std::vector<std::string> stuck;
      for (size_t shard = 0; shard < shard_histories.size(); ++shard) {
        if (cursor[shard] < shard_histories[shard]->events().size()) {
          stuck.push_back(StrCat(
              "shard ", shard, " at ",
              shard_histories[shard]->events()[cursor[shard]].ToString()));
        }
      }
      if (std::getenv("TPM_MERGE_WEDGE_DUMP") != nullptr) {
        for (size_t shard = 0; shard < shard_histories.size(); ++shard) {
          fprintf(stderr, "=== shard %zu (cursor %zu) ===\n", shard,
                  cursor[shard]);
          const auto& events = shard_histories[shard]->events();
          for (size_t i = 0; i < events.size(); ++i) {
            fprintf(stderr, "  [%zu]%s %s\n", i, i == cursor[shard] ? "*" : " ",
                    events[i].ToString().c_str());
          }
          for (const auto& [pid, def] : shard_histories[shard]->processes()) {
            const LocalProcess& lp =
                locals.at({static_cast<int>(shard), pid.value()});
            fprintf(stderr,
                    "  pid %lld def %s span=%d gsn=%lld committed=%d "
                    "fwd %lld/%lld preds=[%s]\n",
                    static_cast<long long>(pid.value()), def->name().c_str(),
                    lp.span != nullptr ? 1 : 0,
                    static_cast<long long>(lp.span != nullptr ? lp.span->gsn
                                                              : -1),
                    lp.committed ? 1 : 0,
                    static_cast<long long>(lp.forward_consumed),
                    static_cast<long long>(lp.forward_total),
                    lp.span != nullptr
                        ? StrJoin(lp.span->forward_preds, ",").c_str()
                        : "");
          }
        }
      }
      return Status::Internal(
          StrCat("global projection merge wedged — a slice emitted events "
                 "before its skeleton predecessors finished (cross-shard "
                 "order violation): ",
                 StrJoin(stuck, "; ")));
    }
  }
  return global;
}

}  // namespace tpm
