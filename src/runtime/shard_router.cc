#include "runtime/shard_router.h"

#include "common/str_util.h"

namespace tpm {

Result<int> ShardRouter::RouteProcess(const ProcessDef& def) const {
  int shard = -1;
  ActivityId first_activity;
  ServiceId first_service;
  auto visit = [&](const ActivityDecl& decl, ServiceId service,
                   const char* role) -> Status {
    const int owner = ShardOfService(service);
    if (owner < 0) {
      return Status::NotFound(StrCat("process '", def.name(), "', activity '",
                                     decl.name, "' (a", decl.id, ", ", role,
                                     "): service ", service,
                                     " is not registered with the runtime"));
    }
    if (shard < 0) {
      shard = owner;
      first_activity = decl.id;
      first_service = service;
      return Status::OK();
    }
    if (owner != shard) {
      return Status::InvalidArgument(StrCat(
          "process '", def.name(), "' spans shards: activity '", decl.name,
          "' (a", decl.id, ", ", role, ") invokes service ", service,
          " on shard ", owner, ", but activity a", first_activity,
          " already pinned the process to shard ", shard, " via service ",
          first_service,
          "; the spec is inconsistent — declare the conflict or colocate "
          "the services"));
    }
    return Status::OK();
  };
  for (const ActivityDecl& decl : def.activities()) {
    TPM_RETURN_IF_ERROR(visit(decl, decl.service, "forward"));
    if (decl.compensation_service.valid()) {
      TPM_RETURN_IF_ERROR(
          visit(decl, decl.compensation_service, "compensation"));
    }
  }
  return shard < 0 ? 0 : shard;
}

}  // namespace tpm
