#include "runtime/shard_router.h"

#include <algorithm>
#include <set>

#include "common/str_util.h"
#include "core/flex_structure.h"

namespace tpm {

ShardRouter::ShardRouter(const ConflictSpec* spec,
                         const ConflictPartition* partition)
    : spec_(spec), partition_(partition) {
  const int components = partition_->num_components();
  remap_.reset(new std::atomic<int>[static_cast<size_t>(
      std::max(components, 1))]);
  for (int c = 0; c < components; ++c) {
    remap_[c].store(partition_->shard_of_component[static_cast<size_t>(c)],
                    std::memory_order_relaxed);
  }
}

int ShardRouter::ShardOfService(ServiceId service) const {
  const int component = partition_->ComponentOfService(*spec_, service);
  if (component < 0) return -1;
  return remap_[component].load(std::memory_order_acquire);
}

int ShardRouter::ComponentOfDef(const ProcessDef& def) const {
  for (const ActivityDecl& decl : def.activities()) {
    if (decl.service.valid()) return ComponentOfService(decl.service);
  }
  return -1;
}

int ShardRouter::ShardOfComponent(int component) const {
  if (component < 0 || component >= partition_->num_components()) return -1;
  return remap_[component].load(std::memory_order_acquire);
}

void ShardRouter::SetComponentShard(int component, int shard) {
  if (component < 0 || component >= partition_->num_components()) return;
  remap_[component].store(shard, std::memory_order_release);
}

Result<int> ShardRouter::RouteProcess(const ProcessDef& def) const {
  int shard = -1;
  ActivityId first_activity;
  ServiceId first_service;
  auto visit = [&](const ActivityDecl& decl, ServiceId service,
                   const char* role) -> Status {
    const int owner = ShardOfService(service);
    if (owner < 0) {
      return Status::NotFound(StrCat("process '", def.name(), "', activity '",
                                     decl.name, "' (a", decl.id, ", ", role,
                                     "): service ", service,
                                     " is not registered with the runtime"));
    }
    if (shard < 0) {
      shard = owner;
      first_activity = decl.id;
      first_service = service;
      return Status::OK();
    }
    if (owner != shard) {
      return Status::InvalidArgument(StrCat(
          "process '", def.name(), "' spans shards: activity '", decl.name,
          "' (a", decl.id, ", ", role, ") invokes service ", service,
          " on shard ", owner, ", but activity a", first_activity,
          " already pinned the process to shard ", shard, " via service ",
          first_service,
          "; submit via a runtime with cross-shard support (Decide/Split) "
          "or colocate the services"));
    }
    return Status::OK();
  };
  for (const ActivityDecl& decl : def.activities()) {
    TPM_RETURN_IF_ERROR(visit(decl, decl.service, "forward"));
    if (decl.compensation_service.valid()) {
      TPM_RETURN_IF_ERROR(
          visit(decl, decl.compensation_service, "compensation"));
    }
  }
  return shard < 0 ? 0 : shard;
}

Result<std::vector<int>> ShardRouter::OwnerShards(
    const ProcessDef& def) const {
  std::vector<int> owner(def.num_activities(), -1);
  for (const ActivityDecl& decl : def.activities()) {
    const int forward = ShardOfService(decl.service);
    if (forward < 0) {
      return Status::NotFound(StrCat("process '", def.name(), "', activity '",
                                     decl.name, "' (a", decl.id,
                                     ", forward): service ", decl.service,
                                     " is not registered with the runtime"));
    }
    if (decl.compensation_service.valid()) {
      const int comp = ShardOfService(decl.compensation_service);
      if (comp < 0) {
        return Status::NotFound(StrCat(
            "process '", def.name(), "', activity '", decl.name, "' (a",
            decl.id, ", compensation): service ", decl.compensation_service,
            " is not registered with the runtime"));
      }
      if (comp != forward) {
        return Status::InvalidArgument(StrCat(
            "process '", def.name(), "', activity '", decl.name, "' (a",
            decl.id, "): compensation service ", decl.compensation_service,
            " lives on shard ", comp, " but the activity executes on shard ",
            forward,
            " — a sub-process must compensate locally; colocate the "
            "compensation with its activity"));
      }
    }
    owner[static_cast<size_t>(decl.id.value()) - 1] = forward;
  }
  return owner;
}

RouterDecision ShardRouter::Decide(const ProcessDef& def) const {
  RouterDecision decision;
  Result<std::vector<int>> owners = OwnerShards(def);
  if (!owners.ok()) {
    decision.kind = RouteKind::kRejected;
    decision.error = owners.status();
    return decision;
  }
  std::set<int> distinct(owners->begin(), owners->end());
  if (distinct.size() <= 1) {
    decision.kind = RouteKind::kPinned;
    decision.shard = distinct.empty() ? 0 : *distinct.begin();
    return decision;
  }
  // Spanning: classify by actually building the plan, so kSplit is a
  // guarantee that Split() will succeed at submission (and at recovery).
  Result<SplitPlan> plan = Split(def, def.name());
  if (!plan.ok()) {
    decision.kind = RouteKind::kRejected;
    decision.error = plan.status();
    return decision;
  }
  decision.kind = RouteKind::kSplit;
  return decision;
}

Result<SplitPlan> ShardRouter::Split(const ProcessDef& def,
                                     const std::string& name_prefix) const {
  if (!def.validated()) {
    return Status::InvalidArgument("process definition missing/unvalidated");
  }
  TPM_ASSIGN_OR_RETURN(std::vector<int> owner, OwnerShards(def));
  auto owner_of = [&](ActivityId id) {
    return owner[static_cast<size_t>(id.value()) - 1];
  };

  // --- Locate the (at most one) cross-shard ◁ branch point and strip its
  // groups into tails. A branch point is cross-shard when some group
  // subtree leaves the branch point's shard; its groups must then be
  // shard-pure subtrees hanging off the branch point alone.
  ActivityId tail_branch_point;
  std::vector<std::vector<ActivityId>> tail_subtrees;  // ◁ order, topo
  std::set<int64_t> stripped;  // activity ids in any tail subtree
  for (const ActivityDecl& decl : def.activities()) {
    const auto groups = def.SuccessorGroups(decl.id);
    if (groups.size() < 2) continue;
    bool all_local = true;
    for (const auto& group : groups) {
      for (ActivityId s : def.Subtree(group)) {
        if (owner_of(s) != owner_of(decl.id)) {
          all_local = false;
          break;
        }
      }
      if (!all_local) break;
    }
    if (all_local) continue;  // the whole ◁ family stays inside one sub
    if (tail_branch_point.valid()) {
      return Status::InvalidArgument(StrCat(
          "process '", def.name(), "' has cross-shard alternatives at both a",
          tail_branch_point, " and a", decl.id,
          "; at most one cross-shard ◁ branch point is supported"));
    }
    tail_branch_point = decl.id;
    for (const auto& group : groups) {
      std::vector<ActivityId> subtree = def.Subtree(group);
      int group_shard = -1;
      for (ActivityId s : subtree) {
        if (group_shard < 0) group_shard = owner_of(s);
        if (owner_of(s) != group_shard) {
          return Status::InvalidArgument(StrCat(
              "process '", def.name(), "': the ◁ group of a", decl.id,
              " containing a", s,
              " spans shards itself; each alternative group must be "
              "shard-pure"));
        }
        if (stripped.count(s.value()) > 0) {
          return Status::InvalidArgument(StrCat(
              "process '", def.name(), "': ◁ groups of a", decl.id,
              " rejoin at a", s,
              "; alternative groups must be disjoint terminal subtrees"));
        }
        for (ActivityId p : def.Predecessors(s)) {
          const bool inside =
              p == decl.id ||
              std::find(subtree.begin(), subtree.end(), p) != subtree.end();
          if (!inside) {
            return Status::InvalidArgument(StrCat(
                "process '", def.name(), "': a", s, " of the ◁ group at a",
                decl.id, " is also reachable from a", p,
                "; alternative groups must hang off the branch point alone"));
          }
        }
      }
      for (ActivityId s : subtree) stripped.insert(s.value());
      tail_subtrees.push_back(std::move(subtree));
    }
  }

  // --- Trunk: everything outside the tails, sliced by shard. Cross-shard
  // trunk edges must be primary (preference 0) — a cross-shard alternative
  // outside the one supported branch point has no sound decomposition —
  // and the shard-quotient of the trunk must be acyclic, or the shards'
  // slices would mutually wait on each other's votes.
  std::vector<ActivityId> trunk_topo;  // global topo order, trunk only
  for (ActivityId a : def.Subtree(def.Roots())) {
    if (stripped.count(a.value()) == 0) trunk_topo.push_back(a);
  }
  std::set<int> trunk_shards;
  for (ActivityId a : trunk_topo) trunk_shards.insert(owner_of(a));
  std::map<int, std::set<int>> quotient;  // shard -> successor shards
  for (const PrecedenceEdge& edge : def.edges()) {
    if (stripped.count(edge.from.value()) > 0 ||
        stripped.count(edge.to.value()) > 0) {
      continue;
    }
    const int from_shard = owner_of(edge.from);
    const int to_shard = owner_of(edge.to);
    if (from_shard == to_shard) continue;
    if (edge.preference != 0) {
      return Status::InvalidArgument(StrCat(
          "process '", def.name(), "': alternative edge a", edge.from,
          " -> a", edge.to, " (preference ", edge.preference,
          ") crosses shards outside a supported ◁ branch point"));
    }
    quotient[from_shard].insert(to_shard);
  }
  // Kahn topological sort of the quotient, smallest shard first (ties) —
  // deterministic, so recovery regenerates the identical plan.
  std::map<int, int> indegree;
  for (int s : trunk_shards) indegree[s] = 0;
  for (const auto& [from, tos] : quotient) {
    for (int to : tos) ++indegree[to];
  }
  std::vector<int> shard_order;
  while (shard_order.size() < trunk_shards.size()) {
    int next = -1;
    for (const auto& [s, deg] : indegree) {
      if (deg == 0) {
        next = s;
        break;
      }
    }
    if (next < 0) {
      return Status::InvalidArgument(StrCat(
          "process '", def.name(),
          "' has a cyclic shard dependency: its per-shard slices would "
          "mutually wait on each other's votes; reorder the activities or "
          "colocate the services"));
    }
    shard_order.push_back(next);
    indegree.erase(next);
    auto it = quotient.find(next);
    if (it != quotient.end()) {
      for (int to : it->second) {
        auto deg = indegree.find(to);
        if (deg != indegree.end()) --deg->second;
      }
    }
  }

  // --- Materialize one sub-definition per slice (dense renumbering in the
  // original's topological order; intra-slice edges kept verbatim).
  auto materialize = [&](const std::vector<ActivityId>& members,
                         const std::string& name) -> Result<SubProcessPlan> {
    SubProcessPlan sub;
    sub.def = std::make_unique<ProcessDef>(name);
    std::map<int64_t, ActivityId> to_sub;
    for (ActivityId a : members) {
      const ActivityDecl& decl = def.activity(a);
      ActivityId sub_id = sub.def->AddActivity(
          decl.name, decl.kind, decl.service, decl.compensation_service);
      to_sub[a.value()] = sub_id;
      sub.to_original[sub_id] = a;
    }
    for (const PrecedenceEdge& edge : def.edges()) {
      auto from = to_sub.find(edge.from.value());
      auto to = to_sub.find(edge.to.value());
      if (from == to_sub.end() || to == to_sub.end()) continue;
      TPM_RETURN_IF_ERROR(
          sub.def->AddEdge(from->second, to->second, edge.preference));
    }
    TPM_RETURN_IF_ERROR(sub.def->Validate());
    Status flex = ValidateWellFormedFlex(*sub.def);
    if (!flex.ok()) {
      return Status::InvalidArgument(
          StrCat("process '", def.name(), "': per-shard slice '", name,
                 "' is not a well-formed flex structure (", flex.message(),
                 "); the decomposition is unsupported"));
    }
    return sub;
  };

  SplitPlan plan;
  plan.tail_branch_point = tail_branch_point;
  std::map<int, int> sub_index_of_shard;
  for (int shard : shard_order) {
    std::vector<ActivityId> members;
    for (ActivityId a : trunk_topo) {
      if (owner_of(a) == shard) members.push_back(a);
    }
    TPM_ASSIGN_OR_RETURN(
        SubProcessPlan sub,
        materialize(members, StrCat(name_prefix, "/s", shard)));
    sub.shard = shard;
    std::set<int> preds;
    for (const PrecedenceEdge& edge : def.edges()) {
      if (stripped.count(edge.from.value()) > 0 ||
          stripped.count(edge.to.value()) > 0) {
        continue;
      }
      if (owner_of(edge.to) == shard && owner_of(edge.from) != shard) {
        preds.insert(sub_index_of_shard.at(owner_of(edge.from)));
      }
    }
    sub.skeleton_preds.assign(preds.begin(), preds.end());
    sub_index_of_shard[shard] = static_cast<int>(plan.subs.size());
    plan.subs.push_back(std::move(sub));
  }
  for (size_t k = 0; k < tail_subtrees.size(); ++k) {
    TPM_ASSIGN_OR_RETURN(
        SubProcessPlan tail,
        materialize(tail_subtrees[k], StrCat(name_prefix, "/t", k)));
    tail.shard = owner_of(tail_subtrees[k].front());
    plan.tails.push_back(std::move(tail));
  }
  return plan;
}

}  // namespace tpm
