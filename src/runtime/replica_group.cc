#include "runtime/replica_group.h"

#include <algorithm>
#include <tuple>

#include "common/str_util.h"
#include "log/file_backend.h"
#include "log/wal.h"

namespace tpm {

const char* ReplicaStateName(ReplicaState state) {
  switch (state) {
    case ReplicaState::kActive:
      return "active";
    case ReplicaState::kKilled:
      return "killed";
    case ReplicaState::kEvicted:
      return "evicted";
  }
  return "unknown";
}

/// Forwards one replica's scheduler events to the downstream observers
/// exactly once group-wide. Every event is appended to a small per-replica
/// backlog; the acting primary drains its backlog through the shared
/// watermark (events at or below it were already delivered by an earlier
/// primary), and followers just trim. On failover the promoted follower's
/// backlog is drained explicitly, which closes the gap where a follower
/// running ahead of a dying primary had events suppressed that no one
/// else will emit again. All state lives under the group's relay_mu_,
/// which is never held together with gmu_.
class ReplicaGroup::ObserverGate : public SchedulerObserver {
 public:
  ObserverGate(ReplicaGroup* group, int replica)
      : group_(group), replica_(replica) {}

  void OnActivityCommitted(ProcessId pid, ActivityId act,
                           bool inverse) override {
    Emit([=, this] {
      for (auto* obs : group_->downstream_)
        obs->OnActivityCommitted(pid, act, inverse);
    });
  }
  void OnInvocationFailed(ProcessId pid, ActivityId act) override {
    Emit([=, this] {
      for (auto* obs : group_->downstream_) obs->OnInvocationFailed(pid, act);
    });
  }
  void OnAlternativeTaken(ProcessId pid, ActivityId branch_point,
                          int group) override {
    Emit([=, this] {
      for (auto* obs : group_->downstream_)
        obs->OnAlternativeTaken(pid, branch_point, group);
    });
  }
  void OnAbortStarted(ProcessId pid) override {
    Emit([=, this] {
      for (auto* obs : group_->downstream_) obs->OnAbortStarted(pid);
    });
  }
  void OnProcessTerminated(ProcessId pid, ProcessOutcome outcome) override {
    Emit([=, this] {
      for (auto* obs : group_->downstream_)
        obs->OnProcessTerminated(pid, outcome);
    });
  }
  void OnCommitHeld(ProcessId pid) override {
    Emit([=, this] {
      for (auto* obs : group_->downstream_) obs->OnCommitHeld(pid);
    });
  }
  void OnBreakerStateChange(SubsystemId subsystem, BreakerState from,
                            BreakerState to) override {
    Emit([=, this] {
      for (auto* obs : group_->downstream_)
        obs->OnBreakerStateChange(subsystem, from, to);
    });
  }
  void OnDegradedBranch(ProcessId pid, ActivityId branch_point, int group,
                        SubsystemId avoided) override {
    Emit([=, this] {
      for (auto* obs : group_->downstream_)
        obs->OnDegradedBranch(pid, branch_point, group, avoided);
    });
  }

  /// Promotion hook: deliver whatever this (now primary) replica emitted
  /// past the watermark while it was still a follower.
  void DrainBacklog() {
    std::lock_guard<std::mutex> lock(group_->relay_mu_);
    DrainLocked();
  }

  /// Respawn hook: the fresh scheduler restarts event numbering, but all
  /// live replicas are idle and re-baselined, so the respawned stream
  /// continues exactly at the watermark.
  void ResetForRespawn() {
    std::lock_guard<std::mutex> lock(group_->relay_mu_);
    seq_ = group_->relay_watermark_;
    backlog_.clear();
  }

 private:
  void Emit(std::function<void()> forward) {
    std::lock_guard<std::mutex> lock(group_->relay_mu_);
    ++seq_;
    backlog_.emplace_back(seq_, std::move(forward));
    if (group_->primary_.load(std::memory_order_acquire) == replica_) {
      DrainLocked();
    } else {
      while (!backlog_.empty() &&
             backlog_.front().first <= group_->relay_watermark_) {
        backlog_.pop_front();
      }
    }
  }

  void DrainLocked() {
    while (!backlog_.empty()) {
      auto& [seq, forward] = backlog_.front();
      if (seq > group_->relay_watermark_) {
        group_->relay_watermark_ = seq;
        forward();
      }
      backlog_.pop_front();
    }
  }

  ReplicaGroup* group_;
  int replica_;
  int64_t seq_ = 0;
  std::deque<std::pair<int64_t, std::function<void()>>> backlog_;
};

ReplicaGroup::ReplicaGroup(Options options) : options_(std::move(options)) {}

ReplicaGroup::~ReplicaGroup() { Stop(); }

Status ReplicaGroup::Init() {
  const int factor = options_.replication.factor;
  if (factor < 2) {
    return Status::InvalidArgument(
        StrCat("replication factor ", factor, " (a group needs >= 2)"));
  }
  replicas_.reserve(factor);
  for (int r = 0; r < factor; ++r) {
    replicas_.push_back(std::make_unique<Replica>());
    TPM_RETURN_IF_ERROR(InitReplica(r));
  }
  if (options_.replication.replica_crash_listener != nullptr) {
    const int target = options_.replication.listener_replica;
    if (target < 0 || target >= factor) {
      return Status::InvalidArgument(
          StrCat("listener_replica ", target, " out of range"));
    }
    if (replicas_[target]->log == nullptr) {
      return Status::InvalidArgument(
          "replica crash listener needs a WAL (log mode is none)");
    }
    replicas_[target]->log->wal()->SetCrashPointListener(
        options_.replication.replica_crash_listener);
  }
  return Status::OK();
}

Status ReplicaGroup::InitReplica(int r) {
  Replica& rep = *replicas_[r];
  rep.index = r;
  if (!options_.no_wal) {
    if (options_.file_wal) {
      const std::string path =
          StrCat(options_.wal_dir, "/shard-", options_.shard_index,
                 "-replica-", r, ".wal");
      TPM_ASSIGN_OR_RETURN(auto backend, FileStorageBackend::Open(path));
      rep.log = std::make_unique<RecoveryLog>(std::move(backend),
                                              /*synchronous=*/true);
    } else {
      rep.log = std::make_unique<RecoveryLog>(/*synchronous=*/true);
    }
  }
  SchedulerOptions scheduler_options = options_.scheduler;
  scheduler_options.clock = &rep.clock;
  rep.scheduler = std::make_unique<TransactionalProcessScheduler>(
      scheduler_options, rep.log.get());
  rep.gate = std::make_unique<ObserverGate>(this, r);
  rep.scheduler->AddObserver(rep.gate.get());
  return Status::OK();
}

TransactionalProcessScheduler* ReplicaGroup::replica_scheduler(int r) {
  return replicas_[r]->scheduler.get();
}

RecoveryLog* ReplicaGroup::replica_log(int r) {
  return replicas_[r]->log.get();
}

VirtualClock* ReplicaGroup::replica_clock(int r) {
  return &replicas_[r]->clock;
}

Status ReplicaGroup::RegisterSubsystem(int r, Subsystem* subsystem) {
  if (r < 0 || r >= static_cast<int>(replicas_.size())) {
    return Status::InvalidArgument(StrCat("no replica ", r));
  }
  TPM_RETURN_IF_ERROR(replicas_[r]->scheduler->RegisterSubsystem(subsystem));
  replicas_[r]->subsystems.push_back(subsystem);
  return Status::OK();
}

void ReplicaGroup::AddConflict(ServiceId a, ServiceId b) {
  for (auto& rep : replicas_) {
    rep->scheduler->AddConflict(a, b);
  }
  conflicts_.push_back({a, b});
}

void ReplicaGroup::AddDownstreamObserver(SchedulerObserver* observer) {
  downstream_.push_back(observer);
}

void ReplicaGroup::SetStateChangeCallback(StateChangeCallback callback) {
  on_state_change_ = std::move(callback);
}

void ReplicaGroup::SetErrorCallback(
    std::function<void(const Status&)> callback) {
  on_error_ = std::move(callback);
}

void ReplicaGroup::SetNotifyCallback(std::function<void()> callback) {
  on_notify_ = std::move(callback);
}

void ReplicaGroup::Start() {
  for (auto& rep : replicas_) {
    // Registration happened on the setup thread; every replica worker's
    // first scheduler call rebinds the affinity guard.
    rep->scheduler->ReleaseThreadAffinity();
  }
  {
    std::lock_guard<std::mutex> lock(gmu_);
    started_ = true;
  }
  for (auto& rep : replicas_) {
    const int r = rep->index;
    rep->worker = std::thread([this, r] { WorkerLoop(r); });
  }
}

void ReplicaGroup::Stop() {
  std::vector<Fulfilment> fulfil;
  {
    std::lock_guard<std::mutex> lock(gmu_);
    if (!started_ || stop_requested_) return;
    stop_requested_ = true;
    for (auto& round : rounds_) {
      for (auto& entry : round->entries) {
        if (!entry->fulfilled) {
          entry->fulfilled = true;
          fulfil.emplace_back(
              std::move(entry->promise),
              Result<ProcessId>(Status::Unavailable(
                  StrCat("shard ", options_.shard_index,
                         " replica group stopped before admission"))));
        }
      }
    }
  }
  cv_replicas_.notify_all();
  cv_clients_.notify_all();
  for (auto& rep : replicas_) {
    if (rep->worker.joinable()) rep->worker.join();
  }
  for (auto& [promise, result] : fulfil) {
    promise.set_value(std::move(result));
  }
}

std::vector<int> ReplicaGroup::LiveReplicasLocked() const {
  std::vector<int> live;
  for (const auto& rep : replicas_) {
    if (rep->alive) live.push_back(rep->index);
  }
  return live;
}

int64_t ReplicaGroup::MinLiveCursorLocked() const {
  int64_t min_cursor = rounds_published_;
  for (const auto& rep : replicas_) {
    if (rep->alive && rep->cursor < min_cursor) min_cursor = rep->cursor;
  }
  return min_cursor;
}

bool ReplicaGroup::IsIdleLocked() const {
  for (const auto& rep : replicas_) {
    if (!rep->alive) continue;
    if (rep->cursor < rounds_published_ || rep->has_work ||
        rep->command != nullptr || !rep->command_done) {
      return false;
    }
  }
  return true;
}

bool ReplicaGroup::IsIdle() const {
  std::lock_guard<std::mutex> lock(gmu_);
  return IsIdleLocked();
}

Status ReplicaGroup::WaitIdle() {
  std::unique_lock<std::mutex> lock(gmu_);
  cv_clients_.wait(lock, [&] {
    return stop_requested_ || !error_.ok() || IsIdleLocked();
  });
  return error_;
}

bool ReplicaGroup::PendingWork() const {
  std::lock_guard<std::mutex> lock(gmu_);
  for (const auto& rep : replicas_) {
    if (!rep->alive) continue;
    if (rep->cursor < rounds_published_ || rep->has_work) return true;
  }
  return false;
}

void ReplicaGroup::CollectPrimaryBacklogLocked(std::vector<Fulfilment>* out) {
  const int p = primary_.load(std::memory_order_relaxed);
  const Replica& prim = *replicas_[p];
  for (int64_t index = base_round_; index < prim.cursor; ++index) {
    Round& round = *rounds_[index - base_round_];
    for (auto& entry : round.entries) {
      if (entry->fulfilled) continue;
      auto it = entry->results.find(p);
      if (it == entry->results.end()) continue;
      entry->fulfilled = true;
      out->emplace_back(std::move(entry->promise), it->second);
    }
  }
}

void ReplicaGroup::PruneRoundsLocked() {
  const int64_t min_cursor = MinLiveCursorLocked();
  while (!rounds_.empty() && base_round_ < min_cursor) {
    const Round& front = *rounds_.front();
    const bool all_fulfilled = std::all_of(
        front.entries.begin(), front.entries.end(),
        [](const std::unique_ptr<RoundEntry>& e) { return e->fulfilled; });
    if (!all_fulfilled) break;
    rounds_.pop_front();
    ++base_round_;
  }
}

void ReplicaGroup::MarkDeadLocked(int r, ReplicaState state,
                                  std::vector<StateEvent>* events,
                                  std::vector<Fulfilment>* fulfil) {
  Replica& rep = *replicas_[r];
  if (!rep.alive) return;
  rep.alive = false;
  const ReplicaState from = rep.state;
  rep.state = state;
  events->push_back({r, from, state});
  if (state == ReplicaState::kEvicted) ++counters_.replicas_evicted;
  voter_.RemoveReplica(r);
  if (primary_.load(std::memory_order_relaxed) != r) return;
  // The primary died: promote the lowest-index live replica. Promotion is
  // a pointer swap plus releasing the follower's already recorded results
  // — the no-stop-the-world failover path (no WAL replay, no pause).
  int promoted = -1;
  for (const auto& other : replicas_) {
    if (other->alive) {
      promoted = other->index;
      break;
    }
  }
  if (promoted >= 0) {
    primary_.store(promoted, std::memory_order_release);
    ++counters_.failovers;
    CollectPrimaryBacklogLocked(fulfil);
    return;
  }
  // Total death: the group can no longer serve.
  error_ = Status::Unavailable(
      StrCat("shard ", options_.shard_index, ": all ", replicas_.size(),
             " replicas dead (last: replica ", r, " ",
             ReplicaStateName(state), ")"));
  for (auto& round : rounds_) {
    for (auto& entry : round->entries) {
      if (entry->fulfilled) continue;
      entry->fulfilled = true;
      fulfil->emplace_back(std::move(entry->promise),
                           Result<ProcessId>(error_));
    }
  }
}

void ReplicaGroup::ApplyVotesLocked(std::vector<StateEvent>* events,
                                    std::vector<Fulfilment>* fulfil) {
  for (;;) {
    std::vector<Voter::Outcome> outcomes = voter_.TakeCompleted(
        LiveReplicasLocked(), primary_.load(std::memory_order_relaxed));
    if (outcomes.empty()) return;
    for (const Voter::Outcome& outcome : outcomes) {
      ++counters_.vote_rounds;
      counters_.replica_divergences +=
          static_cast<int64_t>(outcome.losers.size());
      for (int loser : outcome.losers) {
        MarkDeadLocked(loser, ReplicaState::kEvicted, events, fulfil);
      }
    }
    // Evictions shrank the live set; rounds previously waiting on the
    // evicted replicas' ballots may have completed.
  }
}

void ReplicaGroup::NotifyUnlocked() {
  if (on_notify_) on_notify_();
}

void ReplicaGroup::MaybeFireError() {
  Status error;
  {
    std::lock_guard<std::mutex> lock(gmu_);
    if (error_.ok() || error_fired_) return;
    error_fired_ = true;
    error = error_;
  }
  if (on_error_) on_error_(error);
}

void ReplicaGroup::FireStateEvents(const std::vector<StateEvent>& events) {
  if (!on_state_change_) return;
  for (const auto& [replica, from, to] : events) {
    on_state_change_(replica, from, to);
  }
}

Status ReplicaGroup::PublishRound(std::vector<Submission> batch) {
  return PublishRoundInternal(std::move(batch), /*wait_for_completion=*/false);
}

Status ReplicaGroup::PublishRoundAndWait(std::vector<Submission> batch) {
  return PublishRoundInternal(std::move(batch), /*wait_for_completion=*/true);
}

Status ReplicaGroup::PublishRoundInternal(std::vector<Submission> batch,
                                          bool wait_for_completion) {
  std::unique_lock<std::mutex> lock(gmu_);
  // Flow control: don't run further ahead of the slowest live replica
  // than the window allows (bounds round memory and propagates
  // backpressure to the submission queue).
  cv_clients_.wait(lock, [&] {
    return stop_requested_ || !error_.ok() ||
           rounds_published_ - MinLiveCursorLocked() <
               options_.max_rounds_ahead;
  });
  if (stop_requested_ || !error_.ok()) {
    Status error = !error_.ok()
                       ? error_
                       : Status::Unavailable(StrCat(
                             "shard ", options_.shard_index,
                             " replica group stopped before admission"));
    lock.unlock();
    for (Submission& submission : batch) {
      submission.result.set_value(Result<ProcessId>(error));
    }
    return error;
  }
  auto round = std::make_shared<Round>();
  round->entries.reserve(batch.size());
  for (Submission& submission : batch) {
    if (submission.def_owner != nullptr) {
      retained_defs_.emplace(submission.def_owner.get(),
                             std::move(submission.def_owner));
    }
    auto entry = std::make_unique<RoundEntry>();
    entry->def = submission.def;
    entry->param = submission.param;
    entry->promise = std::move(submission.result);
    round->entries.push_back(std::move(entry));
  }
  rounds_.push_back(std::move(round));
  const int64_t target = ++rounds_published_;
  counters_.rounds_published = rounds_published_;
  lock.unlock();
  cv_replicas_.notify_all();
  if (!wait_for_completion) return Status::OK();
  lock.lock();
  cv_clients_.wait(lock, [&] {
    if (stop_requested_ || !error_.ok()) return true;
    for (const auto& rep : replicas_) {
      if (rep->alive && rep->cursor < target) return false;
    }
    return true;
  });
  return error_;
}

Result<bool> ReplicaGroup::ExecuteRound(
    Replica& rep, const Round* round, bool had_work,
    std::vector<Result<ProcessId>>* results) {
  TransactionalProcessScheduler* scheduler = rep.scheduler.get();
  bool admitted = false;
  if (round != nullptr) {
    results->reserve(round->entries.size());
    if (options_.batched_admission && !round->entries.empty()) {
      std::vector<TransactionalProcessScheduler::BatchSubmission> batch;
      batch.reserve(round->entries.size());
      for (const auto& entry : round->entries) {
        batch.push_back({entry->def, entry->param});
      }
      std::vector<Result<ProcessId>> pids = scheduler->SubmitBatch(batch);
      for (Result<ProcessId>& pid : pids) {
        admitted = admitted || pid.ok();
        results->push_back(std::move(pid));
      }
    } else {
      for (const auto& entry : round->entries) {
        Result<ProcessId> pid = scheduler->Submit(entry->def, entry->param);
        admitted = admitted || pid.ok();
        results->push_back(std::move(pid));
      }
    }
  }
  if (rep.log != nullptr && rep.log->wal()->crashed()) {
    // The admission results are tainted by the crash (kUnavailable from a
    // dead WAL is not a real refusal): discard everything and die.
    return Status::Unavailable(
        StrCat("replica ", rep.index, " WAL crashed during admission"));
  }
  bool has_work = had_work || admitted;
  if (options_.lockstep) {
    // Exactly one scheduling pass per round — bit-identical to the
    // unreplicated shard's RunOnePass, which is what keeps lockstep
    // replicated execution equal to the solo-scheduler reference.
    if (has_work) {
      Result<bool> more = scheduler->Step();
      if (!more.ok()) return more.status();
      has_work = *more;
    }
  } else {
    // Free-running round: run to quiescence (capped), so vote boundaries
    // land on deterministic quiescent states.
    int64_t steps = 0;
    while (has_work && steps < options_.replication.max_steps_per_round) {
      Result<bool> more = scheduler->Step();
      if (!more.ok()) return more.status();
      has_work = *more;
      ++steps;
    }
  }
  if (rep.log != nullptr && rep.log->wal()->crashed()) {
    return Status::Unavailable(
        StrCat("replica ", rep.index, " WAL crashed during a pass"));
  }
  return has_work;
}

VoteDigest ReplicaGroup::ComputeDigest(const Replica& rep,
                                       const SchedulerStats& baseline) const {
  VoteDigest digest;
  digest.history = rep.scheduler->HistoryDigest();
  digest.store = rep.scheduler->SubsystemStateFingerprint();
  digest.stats = rep.scheduler->stats().FingerprintSince(baseline);
  return digest;
}

void ReplicaGroup::WorkerLoop(int r) {
  Replica& rep = *replicas_[r];
  std::unique_lock<std::mutex> lock(gmu_);
  for (;;) {
    cv_replicas_.wait(lock, [&] {
      return stop_requested_ || !rep.alive || rep.command != nullptr ||
             rep.cursor < rounds_published_ ||
             (!options_.lockstep && rep.has_work);
    });
    if (rep.command != nullptr) {
      auto command = std::move(rep.command);
      rep.command = nullptr;
      lock.unlock();
      Status status = command(rep.scheduler.get());
      SchedulerStats snapshot = rep.scheduler->stats();
      lock.lock();
      rep.command_status = status;
      rep.command_done = true;
      rep.stats_snapshot = snapshot;
      cv_clients_.notify_all();
      continue;
    }
    if (stop_requested_ || !rep.alive) break;

    // have_round == false only in free-running mode, when a previous
    // round hit max_steps_per_round: continue stepping without a round.
    const bool have_round = rep.cursor < rounds_published_;
    const int64_t round_index = rep.cursor;
    std::shared_ptr<Round> round =
        have_round ? rounds_[round_index - base_round_] : nullptr;
    const bool had_work = rep.has_work;
    const SchedulerStats baseline = rep.stats_baseline;
    const bool vote_boundary =
        have_round && options_.replication.vote_every_rounds > 0 &&
        (round_index + 1) % options_.replication.vote_every_rounds == 0;
    lock.unlock();

    std::vector<Result<ProcessId>> results;
    Result<bool> outcome = ExecuteRound(rep, round.get(), had_work, &results);
    VoteDigest digest;
    if (outcome.ok() && vote_boundary) digest = ComputeDigest(rep, baseline);
    SchedulerStats snapshot = rep.scheduler->stats();

    std::vector<StateEvent> events;
    std::vector<Fulfilment> fulfil;
    lock.lock();
    if (stop_requested_) break;
    if (!rep.alive) {
      // Killed mid-round: results are discarded, the loop exits above.
      cv_clients_.notify_all();
      continue;
    }
    if (!outcome.ok()) {
      MarkDeadLocked(r, ReplicaState::kKilled, &events, &fulfil);
      ApplyVotesLocked(&events, &fulfil);
    } else {
      if (have_round) {
        for (size_t i = 0; i < round->entries.size(); ++i) {
          round->entries[i]->results.emplace(r, results[i]);
        }
        rep.cursor = round_index + 1;
      }
      rep.has_work = *outcome;
      rep.stats_snapshot = snapshot;
      if (vote_boundary) {
        voter_.SubmitVote(round_index, r, digest);
        ApplyVotesLocked(&events, &fulfil);
      }
      if (rep.alive && primary_.load(std::memory_order_relaxed) == r) {
        CollectPrimaryBacklogLocked(&fulfil);
      }
      PruneRoundsLocked();
    }
    const int acting_primary = primary_.load(std::memory_order_relaxed);
    lock.unlock();
    cv_clients_.notify_all();
    cv_replicas_.notify_all();
    for (auto& [promise, result] : fulfil) {
      promise.set_value(std::move(result));
    }
    FireStateEvents(events);
    if (!events.empty()) {
      // A promotion may have happened: deliver the new primary's
      // suppressed observer backlog (no-op otherwise).
      replicas_[acting_primary]->gate->DrainBacklog();
      MaybeFireError();
    }
    NotifyUnlocked();
    lock.lock();
  }
  lock.unlock();
  cv_clients_.notify_all();
  NotifyUnlocked();
  // Hand the quiesced scheduler back for post-mortem inspection.
  rep.scheduler->ReleaseThreadAffinity();
}

Status ReplicaGroup::ForEachReplicaScheduler(
    std::function<Status(TransactionalProcessScheduler*)> fn) {
  return ForEachReplicaSchedulerIndexed(
      [&fn](int, TransactionalProcessScheduler* scheduler) {
        return fn(scheduler);
      });
}

Status ReplicaGroup::ForEachReplicaSchedulerIndexed(
    std::function<Status(int, TransactionalProcessScheduler*)> fn) {
  std::vector<int> targets;
  {
    std::unique_lock<std::mutex> lock(gmu_);
    if (!started_) {
      // Setup phase: the caller's thread still owns every scheduler.
      lock.unlock();
      for (auto& rep : replicas_) {
        if (!rep->alive) continue;
        TPM_RETURN_IF_ERROR(fn(rep->index, rep->scheduler.get()));
      }
      return Status::OK();
    }
    if (!error_.ok()) return error_;
    targets = LiveReplicasLocked();
    for (int r : targets) {
      Replica& rep = *replicas_[r];
      rep.command = [r, &fn](TransactionalProcessScheduler* scheduler) {
        return fn(r, scheduler);
      };
      rep.command_done = false;
    }
  }
  cv_replicas_.notify_all();
  Status first_error;
  std::unique_lock<std::mutex> lock(gmu_);
  for (int r : targets) {
    Replica& rep = *replicas_[r];
    cv_clients_.wait(lock, [&] {
      return rep.command_done || !rep.alive || stop_requested_;
    });
    if (!rep.command_done) {
      if (first_error.ok()) {
        first_error = Status::Unavailable(
            StrCat("replica ", r, " died before the command ran"));
      }
      continue;
    }
    if (first_error.ok() && !rep.command_status.ok()) {
      first_error = rep.command_status;
    }
  }
  return first_error;
}

SchedulerStats ReplicaGroup::PrimaryStatsSnapshot() const {
  std::lock_guard<std::mutex> lock(gmu_);
  return replicas_[primary_.load(std::memory_order_relaxed)]->stats_snapshot;
}

ReplicaGroupStats ReplicaGroup::Stats() const {
  std::lock_guard<std::mutex> lock(gmu_);
  ReplicaGroupStats stats = counters_;
  stats.live_replicas = static_cast<int>(LiveReplicasLocked().size());
  stats.primary = primary_.load(std::memory_order_relaxed);
  return stats;
}

ReplicaState ReplicaGroup::replica_state(int r) const {
  std::lock_guard<std::mutex> lock(gmu_);
  return replicas_[r]->state;
}

Status ReplicaGroup::status() const {
  std::lock_guard<std::mutex> lock(gmu_);
  return error_;
}

Status ReplicaGroup::Kill(int r) {
  if (r < 0 || r >= static_cast<int>(replicas_.size())) {
    return Status::InvalidArgument(StrCat("no replica ", r));
  }
  std::vector<StateEvent> events;
  std::vector<Fulfilment> fulfil;
  int acting_primary = 0;
  {
    std::lock_guard<std::mutex> lock(gmu_);
    if (!replicas_[r]->alive) {
      return Status::FailedPrecondition(
          StrCat("replica ", r, " already dead"));
    }
    MarkDeadLocked(r, ReplicaState::kKilled, &events, &fulfil);
    ApplyVotesLocked(&events, &fulfil);
    PruneRoundsLocked();
    acting_primary = primary_.load(std::memory_order_relaxed);
  }
  cv_replicas_.notify_all();
  cv_clients_.notify_all();
  for (auto& [promise, result] : fulfil) {
    promise.set_value(std::move(result));
  }
  FireStateEvents(events);
  replicas_[acting_primary]->gate->DrainBacklog();
  MaybeFireError();
  NotifyUnlocked();
  return Status::OK();
}

Status ReplicaGroup::Respawn(
    int r, const std::map<std::string, const ProcessDef*>& defs_by_name) {
  if (r < 0 || r >= static_cast<int>(replicas_.size())) {
    return Status::InvalidArgument(StrCat("no replica ", r));
  }
  int peer_index = 0;
  {
    std::lock_guard<std::mutex> lock(gmu_);
    if (!started_ || stop_requested_) {
      return Status::FailedPrecondition("replica group not running");
    }
    if (!error_.ok()) return error_;
    if (replicas_[r]->alive) {
      return Status::FailedPrecondition(StrCat("replica ", r, " is alive"));
    }
    if (!IsIdleLocked()) {
      return Status::FailedPrecondition(
          "respawn requires an idle group (drain first)");
    }
    peer_index = primary_.load(std::memory_order_relaxed);
  }
  Replica& rep = *replicas_[r];
  Replica& peer = *replicas_[peer_index];
  if (rep.log == nullptr) {
    return Status::FailedPrecondition(
        "respawn needs a WAL per replica (log mode is none): process-id "
        "continuity cannot be restored without one");
  }
  if (rep.worker.joinable()) rep.worker.join();

  // 1. Periphery: adopt every subsystem's state from the healthy peer.
  //    The group is idle, so the peer's worker is parked and its state
  //    quiescent (the gmu_ acquisition above is the happens-before edge).
  if (rep.subsystems.size() != peer.subsystems.size()) {
    return Status::Internal(
        StrCat("replica ", r, " has ", rep.subsystems.size(),
               " subsystems, peer ", peer_index, " has ",
               peer.subsystems.size()));
  }
  for (size_t i = 0; i < rep.subsystems.size(); ++i) {
    TPM_RETURN_IF_ERROR(
        rep.subsystems[i]->AdoptStateFrom(*peer.subsystems[i]));
  }

  // 2. WAL: restart it if the kill crashed it, then take the peer's
  //    records verbatim — Recover below replays them for scheduler-side
  //    continuity (foremost next_pid_: replicas must keep minting
  //    identical pids after the respawn).
  if (rep.log->wal()->crashed()) rep.log->wal()->Crash();
  TPM_ASSIGN_OR_RETURN(std::vector<SchedulerLogRecord> records,
                       peer.log->Records());
  TPM_RETURN_IF_ERROR(rep.log->ReplaceAll(records));

  // 3. Fresh scheduler over the adopted periphery.
  SchedulerOptions scheduler_options = options_.scheduler;
  scheduler_options.clock = &rep.clock;
  rep.scheduler = std::make_unique<TransactionalProcessScheduler>(
      scheduler_options, rep.log.get());
  for (Subsystem* subsystem : rep.subsystems) {
    TPM_RETURN_IF_ERROR(rep.scheduler->RegisterSubsystem(subsystem));
  }
  for (const auto& [a, b] : conflicts_) {
    rep.scheduler->AddConflict(a, b);
  }
  rep.scheduler->AddObserver(rep.gate.get());
  TPM_RETURN_IF_ERROR(rep.scheduler->Recover(defs_by_name));
  if (rep.clock.now() < peer.clock.now()) {
    rep.clock.AdvanceTo(peer.clock.now());
  }

  // 4. Re-baseline every live replica's vote digests: history digests
  //    restart and stats baselines snap to now, so subsequent votes
  //    compare only the post-respawn suffix (the respawned replica's
  //    absolute counters can never match its longer-lived peers').
  TPM_RETURN_IF_ERROR(ForEachReplicaSchedulerIndexed(
      [this](int index, TransactionalProcessScheduler* scheduler) {
        scheduler->ResetHistoryDigest();
        SchedulerStats baseline = scheduler->stats();
        std::lock_guard<std::mutex> lock(gmu_);
        replicas_[index]->stats_baseline = baseline;
        return Status::OK();
      }));
  rep.scheduler->ResetHistoryDigest();
  SchedulerStats own_stats = rep.scheduler->stats();
  // The fresh scheduler reports virtual_time 0 until its first step, but
  // its clock already sits at the peer's time; the baseline must account
  // for that or the first vote's virtual_time delta spans the whole
  // pre-respawn epoch and falsely diverges.
  own_stats.virtual_time = rep.clock.now();

  // 5. Rejoin at the current round with a fresh vote slate.
  ReplicaState from;
  {
    std::lock_guard<std::mutex> lock(gmu_);
    rep.stats_baseline = own_stats;
    rep.stats_snapshot = own_stats;
    rep.cursor = rounds_published_;
    rep.has_work = false;
    from = rep.state;
    rep.state = ReplicaState::kActive;
    rep.alive = true;
    voter_.Reset();
  }
  rep.gate->ResetForRespawn();
  rep.scheduler->ReleaseThreadAffinity();
  rep.worker = std::thread([this, r] { WorkerLoop(r); });
  if (on_state_change_) on_state_change_(r, from, ReplicaState::kActive);
  NotifyUnlocked();
  return Status::OK();
}

}  // namespace tpm
