#include "runtime/shard.h"

#include <chrono>
#include <utility>
#include <vector>

#include "common/str_util.h"
#include "log/file_backend.h"

namespace tpm {

RuntimeShard::RuntimeShard(Options options)
    : options_(std::move(options)), queue_(options_.queue_capacity) {}

RuntimeShard::~RuntimeShard() { Stop(); }

Status RuntimeShard::Init() {
  if (options_.replication.factor > 1) {
    if (options_.probe != nullptr) {
      return Status::InvalidArgument(
          "elastic probe is not supported on a replicated shard");
    }
    ReplicaGroup::Options group_options;
    group_options.shard_index = options_.index;
    group_options.replication = options_.replication;
    group_options.scheduler = options_.scheduler;
    group_options.lockstep = options_.mode == TickMode::kLockstep;
    group_options.batched_admission = options_.batched_admission;
    group_options.no_wal = options_.log_mode == ShardLogMode::kNone;
    group_options.file_wal = options_.log_mode == ShardLogMode::kFile;
    group_options.wal_dir = options_.wal_dir;
    group_ = std::make_unique<ReplicaGroup>(std::move(group_options));
    return group_->Init();
  }
  switch (options_.log_mode) {
    case ShardLogMode::kNone:
      break;
    case ShardLogMode::kMemory:
      log_ = std::make_unique<RecoveryLog>(/*synchronous=*/true);
      break;
    case ShardLogMode::kFile: {
      TPM_ASSIGN_OR_RETURN(auto backend,
                           FileStorageBackend::Open(options_.wal_path));
      log_ = std::make_unique<RecoveryLog>(std::move(backend),
                                           /*synchronous=*/true);
      break;
    }
  }
  SchedulerOptions scheduler_options = options_.scheduler;
  scheduler_options.clock = &clock_;
  scheduler_ = std::make_unique<TransactionalProcessScheduler>(
      scheduler_options, log_.get());
  return Status::OK();
}

TransactionalProcessScheduler* RuntimeShard::scheduler() {
  if (group_ != nullptr) return group_->replica_scheduler(group_->primary());
  return scheduler_.get();
}

VirtualClock* RuntimeShard::clock() {
  if (group_ != nullptr) return group_->replica_clock(group_->primary());
  return &clock_;
}

RecoveryLog* RuntimeShard::log() {
  if (group_ != nullptr) return group_->replica_log(group_->primary());
  return log_.get();
}

void RuntimeShard::Start() {
  if (group_ != nullptr) {
    group_->SetErrorCallback(
        [this](const Status& status) { RecordError(status); });
    group_->SetNotifyCallback([this] { cv_client_.notify_all(); });
    group_->Start();
    worker_ = std::thread([this] { SequencerLoop(); });
    return;
  }
  // Hand ownership from the setup thread (which registered subsystems and
  // observers) to the worker; the worker's first scheduler call rebinds
  // the affinity guard, and the thread construction provides the
  // happens-before edge.
  scheduler_->ReleaseThreadAffinity();
  worker_ = std::thread([this] { WorkerLoop(); });
}

Status RuntimeShard::EnqueueSubmission(Submission submission) {
  return EnqueueSubmission(std::move(submission), options_.backpressure);
}

Status RuntimeShard::EnqueueSubmission(Submission submission,
                                       BackpressurePolicy policy) {
  TPM_RETURN_IF_ERROR(queue_.Push(std::move(submission), policy));
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Wake a free-running worker; in lockstep the next granted tick
    // drains the queue.
  }
  cv_worker_.notify_all();
  // Routed traffic resumes a parked shard (DPM wake-on-work).
  Unpark();
  return Status::OK();
}

Status RuntimeShard::Park() {
  if (options_.mode == TickMode::kLockstep) {
    return Status::FailedPrecondition(
        "cannot park a lockstep shard (it would stall the tick barrier)");
  }
  if (group_ != nullptr) {
    return Status::FailedPrecondition(
        "cannot park a replicated shard");
  }
  std::lock_guard<std::mutex> lock(mu_);
  parked_ = true;
  return Status::OK();
}

bool RuntimeShard::Unpark() {
  bool transitioned = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (parked_) {
      parked_ = false;
      transitioned = true;
    }
  }
  if (transitioned) {
    cv_worker_.notify_all();
    if (options_.on_unpark) options_.on_unpark(options_.index);
  }
  return transitioned;
}

bool RuntimeShard::parked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parked_;
}

void RuntimeShard::PostAgentOp(std::function<void()> op) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    agent_ops_.push_back(std::move(op));
  }
  cv_worker_.notify_all();
}

void RuntimeShard::GrantTick() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++ticks_granted_;
  }
  cv_worker_.notify_all();
}

Status RuntimeShard::WaitTickDone() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_client_.wait(lock, [&] {
    return ticks_done_ >= ticks_granted_ || !error_.ok() || stopped_;
  });
  return error_;
}

void RuntimeShard::PostCommand(std::function<Status()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    command_ = std::move(fn);
    command_done_ = false;
  }
  cv_worker_.notify_all();
}

Status RuntimeShard::WaitCommandDone() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_client_.wait(lock, [&] { return command_done_ || stopped_; });
  if (!command_done_) {
    return Status::Unavailable(
        StrCat("shard ", options_.index, " stopped before the command ran"));
  }
  return command_status_;
}

void RuntimeShard::PostSchedulerCommand(
    std::function<Status(TransactionalProcessScheduler*)> fn) {
  if (group_ != nullptr) {
    ReplicaGroup* group = group_.get();
    PostCommand([group, fn = std::move(fn)] {
      return group->ForEachReplicaScheduler(fn);
    });
    return;
  }
  TransactionalProcessScheduler* scheduler = scheduler_.get();
  PostCommand(
      [scheduler, fn = std::move(fn)] { return fn(scheduler); });
}

Status RuntimeShard::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_client_.wait(lock, [&] {
    if (!error_.ok() || stopped_) return true;
    if (!(!busy_ && !has_work_ && queue_.empty() && agent_ops_.empty())) {
      return false;
    }
    // Replicated: the sequencer being idle is not enough — every live
    // replica must have consumed every published round (lock order is
    // always shard mu_ then group gmu_; the group's notify callback pokes
    // cv_client_ without taking mu_).
    return group_ == nullptr || group_->IsIdle();
  });
  return error_;
}

bool RuntimeShard::IsIdle() {
  std::lock_guard<std::mutex> lock(mu_);
  return !busy_ && !has_work_ && queue_.empty() && agent_ops_.empty() &&
         (group_ == nullptr || group_->IsIdle());
}

SchedulerStats RuntimeShard::StatsSnapshot() const {
  // Replicated: the acting primary publishes its snapshot at the end of
  // every pass — fresher than the sequencer's copy, which only updates
  // when a round is published.
  if (group_ != nullptr) return group_->PrimaryStatsSnapshot();
  std::lock_guard<std::mutex> lock(mu_);
  return stats_snapshot_;
}

Status RuntimeShard::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

void RuntimeShard::Stop() {
  if (!worker_.joinable()) return;
  queue_.Close();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_worker_.notify_all();
  // Group first: the sequencer may be parked inside PublishRound's flow
  // control (waiting on the group's condition variable, which the shard's
  // notify cannot reach) — the group's stop fails that wait and lets the
  // sequencer exit.
  if (group_ != nullptr) group_->Stop();
  worker_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  cv_client_.notify_all();
}

void RuntimeShard::RecordError(const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (error_.ok()) {
    error_ = Status(status.code(),
                    StrCat("shard ", options_.index, ": ", status.message()));
  }
}

void RuntimeShard::PublishStats() {
  SchedulerStats snapshot = scheduler_->stats();  // worker owns the scheduler
  std::lock_guard<std::mutex> lock(mu_);
  stats_snapshot_ = snapshot;
}

bool RuntimeShard::RunOnePass(bool had_work) {
  const bool probed = options_.probe != nullptr;
  std::chrono::steady_clock::time_point pass_start;
  if (probed) pass_start = std::chrono::steady_clock::now();
  // Agent ops first: they may submit sub-processes or release held
  // commits, and the pass below should see their effects. Run outside
  // mu_ (they take the agent's lock; the agent may post to other shards).
  std::deque<std::function<void()>> ops;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ops.swap(agent_ops_);
  }
  for (std::function<void()>& op : ops) op();
  std::vector<Submission> submissions = queue_.DrainAll();
  if (probed && !submissions.empty()) {
    // Offer every drained submission to the probe before admission. An
    // intercepted submission is moved out wholesale (its def_owner rides
    // along into the migration buffer), so the retained_defs_ transfer
    // below must only see the survivors.
    size_t kept = 0;
    for (size_t i = 0; i < submissions.size(); ++i) {
      if (options_.probe->InterceptSubmission(options_.index,
                                              submissions[i])) {
        continue;
      }
      if (kept != i) submissions[kept] = std::move(submissions[i]);
      ++kept;
    }
    submissions.resize(kept);
  }
  bool admitted = false;
  int64_t admitted_count = 0;
  for (Submission& submission : submissions) {
    if (submission.def_owner != nullptr) {
      retained_defs_.emplace(submission.def_owner.get(),
                             std::move(submission.def_owner));
    }
  }
  if (options_.batched_admission && !submissions.empty()) {
    std::vector<TransactionalProcessScheduler::BatchSubmission> batch;
    batch.reserve(submissions.size());
    for (const Submission& submission : submissions) {
      batch.push_back({submission.def, submission.param});
    }
    std::vector<Result<ProcessId>> pids = scheduler_->SubmitBatch(batch);
    for (size_t i = 0; i < submissions.size(); ++i) {
      admitted = admitted || pids[i].ok();
      if (pids[i].ok()) ++admitted_count;
      submissions[i].result.set_value(std::move(pids[i]));
    }
  } else {
    for (Submission& submission : submissions) {
      Result<ProcessId> pid =
          scheduler_->Submit(submission.def, submission.param);
      admitted = admitted || pid.ok();
      if (pid.ok()) ++admitted_count;
      submission.result.set_value(std::move(pid));
    }
  }
  bool has_work = had_work || admitted || !ops.empty();
  if (has_work) {
    Result<bool> more = scheduler_->Step();
    if (!more.ok()) {
      RecordError(more.status());
      has_work = false;
    } else {
      has_work = *more;
    }
  }
  PublishStats();
  if (probed) {
    ShardPassSample sample;
    sample.pass_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - pass_start)
                         .count();
    sample.queue_depth = queue_.size();
    sample.admitted = admitted_count;
    sample.committed_total = scheduler_->stats().processes_committed;
    options_.probe->OnPassEnd(options_.index, sample);
  }
  return has_work;
}

void RuntimeShard::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_worker_.wait(lock, [&] {
      if (stop_requested_ || command_ != nullptr) return true;
      if (!error_.ok()) return false;  // sticky error: only commands/stop
      if (parked_) return false;  // DPM sleep: only commands/stop/Unpark
      if (options_.mode == TickMode::kLockstep) {
        return ticks_granted_ > ticks_done_;
      }
      return has_work_ || !queue_.empty() || !agent_ops_.empty();
    });
    if (command_ != nullptr) {
      std::function<Status()> command = std::move(command_);
      command_ = nullptr;
      lock.unlock();
      Status status = command();
      PublishStats();
      lock.lock();
      command_status_ = status;
      command_done_ = true;
      cv_client_.notify_all();
      continue;
    }
    if (stop_requested_) break;
    const bool had_work = has_work_;
    busy_ = true;
    lock.unlock();
    const bool has_work = RunOnePass(had_work);
    lock.lock();
    busy_ = false;
    has_work_ = has_work;
    if (options_.mode == TickMode::kLockstep) {
      ++ticks_done_;
      cv_client_.notify_all();
    } else if (!has_work_ && queue_.empty()) {
      cv_client_.notify_all();  // idle waiters
    }
  }
  lock.unlock();
  // Fail whatever was still queued: the runtime is stopping without
  // draining (kill semantics), and a promise must never be dropped unset.
  for (Submission& submission : queue_.DrainAll()) {
    submission.result.set_value(Status::Unavailable(
        StrCat("shard ", options_.index, " stopped before admission")));
  }
  // Hand the quiesced scheduler back: join() gives the inspecting thread
  // its happens-before edge.
  scheduler_->ReleaseThreadAffinity();
}

void RuntimeShard::SequencerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_worker_.wait(lock, [&] {
      if (stop_requested_ || command_ != nullptr) return true;
      if (!error_.ok()) return false;  // sticky error: only commands/stop
      if (options_.mode == TickMode::kLockstep) {
        return ticks_granted_ > ticks_done_;
      }
      return !queue_.empty();
    });
    if (command_ != nullptr) {
      std::function<Status()> command = std::move(command_);
      command_ = nullptr;
      lock.unlock();
      Status status = command();
      SchedulerStats snapshot = group_->PrimaryStatsSnapshot();
      lock.lock();
      stats_snapshot_ = snapshot;
      command_status_ = status;
      command_done_ = true;
      cv_client_.notify_all();
      continue;
    }
    if (stop_requested_) break;
    busy_ = true;
    lock.unlock();
    // A round is this pass's queue drain. Lockstep publishes every tick
    // (empty rounds included — a tick is a round, so the replicas' pass
    // count matches the unreplicated worker's) and blocks on the tick
    // barrier; free-running publishes only real submissions and lets the
    // replicas run ahead on their own threads.
    std::vector<Submission> submissions = queue_.DrainAll();
    Status status;
    if (options_.mode == TickMode::kLockstep) {
      status = group_->PublishRoundAndWait(std::move(submissions));
    } else if (!submissions.empty()) {
      status = group_->PublishRound(std::move(submissions));
    }
    if (!status.ok()) RecordError(status);
    SchedulerStats snapshot = group_->PrimaryStatsSnapshot();
    lock.lock();
    busy_ = false;
    stats_snapshot_ = snapshot;
    if (options_.mode == TickMode::kLockstep) {
      ++ticks_done_;
      cv_client_.notify_all();
    } else if (queue_.empty()) {
      cv_client_.notify_all();  // idle waiters re-check the group
    }
  }
  lock.unlock();
  // Fail whatever was still queued; the group's own Stop fails the rounds
  // already published but not yet released.
  for (Submission& submission : queue_.DrainAll()) {
    submission.result.set_value(Status::Unavailable(
        StrCat("shard ", options_.index, " stopped before admission")));
  }
}

}  // namespace tpm
