#ifndef TPM_COMMON_VIRTUAL_CLOCK_H_
#define TPM_COMMON_VIRTUAL_CLOCK_H_

#include <cstdint>

namespace tpm {

/// The single time base of the simulation: a monotone tick counter shared
/// by every component that models the passage of time — the scheduler (one
/// tick per scheduling pass, plus service-duration busy intervals), retry
/// backoff inside subsystems, injected invocation latency and outage
/// windows of the fault layer, invocation deadlines and circuit-breaker
/// cooldowns of the subsystem health layer. Sharing one clock is what
/// makes these failure shapes compose deterministically: a seeded run
/// replays tick-for-tick.
///
/// The clock also carries the *cooperative invocation deadline* used by
/// the SubsystemProxy: the proxy brackets an invocation with
/// BeginDeadline/EndDeadline, and every Advance inside the bracket is
/// clamped at the deadline with the expired flag raised. Components that
/// model waiting (injected latency, backoff, outage stalls) check the flag
/// and abort the invocation before executing any effect, which is how a
/// timeout can be reported with clean retriable semantics (Def. 3): the
/// local transaction never ran, so nothing was left behind. The simulation
/// is single-threaded, so at most one invocation deadline is active at a
/// time.
class VirtualClock {
 public:
  int64_t now() const { return now_; }

  /// Advances time by `ticks` (non-positive values are ignored). While an
  /// invocation deadline is active the advance clamps at the deadline and
  /// raises the expired flag instead of passing it.
  void Advance(int64_t ticks) {
    if (ticks <= 0) return;
    const int64_t target = now_ + ticks;
    if (deadline_active_ && target >= deadline_) {
      if (deadline_ > now_) now_ = deadline_;
      deadline_expired_ = true;
      return;
    }
    now_ = target;
  }

  /// Advances to absolute tick `t` (no-op if `t` is in the past).
  void AdvanceTo(int64_t t) { Advance(t - now_); }

  /// Starts the cooperative invocation deadline at absolute tick `at`.
  void BeginDeadline(int64_t at) {
    deadline_ = at;
    deadline_active_ = true;
    deadline_expired_ = now_ >= at;
  }

  /// Ends the invocation bracket, clearing the deadline and its flag.
  void EndDeadline() {
    deadline_active_ = false;
    deadline_expired_ = false;
  }

  /// Jumps straight to the active deadline (a call that would block past
  /// its budget — e.g. an invocation stalled by an outage — waits the
  /// budget out and times out).
  void AdvanceToDeadline() {
    if (!deadline_active_) return;
    if (deadline_ > now_) now_ = deadline_;
    deadline_expired_ = true;
  }

  bool deadline_active() const { return deadline_active_; }
  bool deadline_expired() const { return deadline_expired_; }
  int64_t deadline() const { return deadline_; }

  /// Rewinds to tick 0 (a scheduler-private clock being reset by Crash();
  /// a shared clock is never rewound — simulation time is global).
  void Reset() {
    now_ = 0;
    EndDeadline();
  }

 private:
  int64_t now_ = 0;
  int64_t deadline_ = 0;
  bool deadline_active_ = false;
  bool deadline_expired_ = false;
};

}  // namespace tpm

#endif  // TPM_COMMON_VIRTUAL_CLOCK_H_
