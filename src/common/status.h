#ifndef TPM_COMMON_STATUS_H_
#define TPM_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace tpm {

/// Error codes used across the library. Modeled after the Arrow/RocksDB
/// convention: library boundaries never throw; fallible operations return a
/// Status (or Result<T>) that the caller must inspect.
enum class StatusCode {
  kOk = 0,
  /// Caller passed a malformed argument (e.g., a cyclic precedence order).
  kInvalidArgument,
  /// Operation is structurally valid but not allowed in the current state
  /// (e.g., invoking an activity whose predecessors have not committed).
  kFailedPrecondition,
  /// A referenced entity (process, activity, service, key) does not exist.
  kNotFound,
  /// An entity with the same identifier already exists.
  kAlreadyExists,
  /// A transaction or activity invocation terminated with abort.
  kAborted,
  /// The request was rejected by the scheduler because admitting it would
  /// violate the PRED correctness criterion.
  kRejected,
  /// Internal invariant violation; indicates a bug in the library.
  kInternal,
  /// The component is (simulated) crashed or otherwise unavailable.
  kUnavailable,
  /// A bounded resource (e.g. a submission queue under the kReject
  /// backpressure policy) is at capacity; shed load or retry later.
  kResourceExhausted,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A Status carries either success (OK) or an error code plus message.
///
/// Cheap to copy in the OK case (no allocation); error statuses allocate the
/// message string. Use the TPM_RETURN_IF_ERROR / TPM_ASSIGN_OR_RETURN macros
/// to propagate errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Rejected(std::string msg) {
    return Status(StatusCode::kRejected, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsRejected() const { return code_ == StatusCode::kRejected; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Result<T> holds either a value of type T or an error Status.
///
/// Accessing the value of an errored Result aborts the program (assert), so
/// callers must check ok() first or use TPM_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success case).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tpm

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define TPM_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::tpm::Status _tpm_status = (expr);             \
    if (!_tpm_status.ok()) return _tpm_status;      \
  } while (false)

#define TPM_CONCAT_IMPL_(x, y) x##y
#define TPM_CONCAT_(x, y) TPM_CONCAT_IMPL_(x, y)

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status
/// from the enclosing function, otherwise moves the value into `lhs`.
#define TPM_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  auto TPM_CONCAT_(_tpm_result_, __LINE__) = (rexpr);          \
  if (!TPM_CONCAT_(_tpm_result_, __LINE__).ok())               \
    return TPM_CONCAT_(_tpm_result_, __LINE__).status();       \
  lhs = std::move(TPM_CONCAT_(_tpm_result_, __LINE__)).value()

#endif  // TPM_COMMON_STATUS_H_
