#include "common/str_util.h"

#include <charconv>

namespace tpm {

std::vector<std::string> StrSplit(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

Result<int64_t> ParseInt64(const std::string& s) {
  int64_t value = 0;
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec == std::errc::result_out_of_range) {
    return Status::InvalidArgument(StrCat("integer out of range: ", s));
  }
  if (ec != std::errc() || ptr != end || begin == end) {
    return Status::InvalidArgument(StrCat("not an integer: ", s));
  }
  return value;
}

}  // namespace tpm
