#include "common/str_util.h"

namespace tpm {

std::vector<std::string> StrSplit(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

}  // namespace tpm
