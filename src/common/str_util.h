#ifndef TPM_COMMON_STR_UTIL_H_
#define TPM_COMMON_STR_UTIL_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace tpm {

/// Concatenates the stream representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  ((oss << args), ...);
  return oss.str();
}

/// Joins the stream representations of `items` with `sep` between elements.
template <typename Container>
std::string StrJoin(const Container& items, const std::string& sep) {
  std::ostringstream oss;
  bool first = true;
  for (const auto& item : items) {
    if (!first) oss << sep;
    first = false;
    oss << item;
  }
  return oss.str();
}

/// Splits `s` on the separator character, keeping empty fields.
std::vector<std::string> StrSplit(const std::string& s, char sep);

/// Strict base-10 64-bit integer parse: an optional leading '-', then
/// digits, consuming the whole string; range-checked. Unlike std::stoll it
/// never throws — corrupted input yields InvalidArgument, which matters on
/// the recovery path where a bad log field must surface as a Status, not
/// abort the process.
Result<int64_t> ParseInt64(const std::string& s);

}  // namespace tpm

#endif  // TPM_COMMON_STR_UTIL_H_
