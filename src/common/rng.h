#ifndef TPM_COMMON_RNG_H_
#define TPM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tpm {

/// Deterministic pseudo-random number generator (xoshiro256**). All
/// randomized components (failure injection, workload generation, latency
/// models) draw from an explicitly seeded Rng so experiments are exactly
/// reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool NextBool(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Picks a uniformly random element index for a container of `size`.
  size_t NextIndex(size_t size) { return NextBounded(size); }

 private:
  uint64_t state_[4];
};

}  // namespace tpm

#endif  // TPM_COMMON_RNG_H_
