#include "common/dag.h"

#include <algorithm>
#include <functional>

namespace tpm {

Dag::Dag(int num_nodes) : adj_(num_nodes), radj_(num_nodes) {}

void Dag::AddEdge(int from, int to) {
  if (HasEdge(from, to)) return;
  adj_[from].push_back(to);
  radj_[to].push_back(from);
  ++num_edges_;
}

bool Dag::HasEdge(int from, int to) const {
  const auto& succ = adj_[from];
  return std::find(succ.begin(), succ.end(), to) != succ.end();
}

namespace {

enum class Color : uint8_t { kWhite, kGray, kBlack };

// Iterative DFS that records a back edge (cycle witness) if one exists.
bool DfsFindCycle(const std::vector<std::vector<int>>& adj,
                  std::vector<int>* cycle_out) {
  const int n = static_cast<int>(adj.size());
  std::vector<Color> color(n, Color::kWhite);
  std::vector<int> parent(n, -1);

  for (int root = 0; root < n; ++root) {
    if (color[root] != Color::kWhite) continue;
    // Stack of (node, next-successor-index).
    std::vector<std::pair<int, size_t>> stack;
    stack.emplace_back(root, 0);
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      if (idx < adj[node].size()) {
        int next = adj[node][idx++];
        if (color[next] == Color::kWhite) {
          color[next] = Color::kGray;
          parent[next] = node;
          stack.emplace_back(next, 0);
        } else if (color[next] == Color::kGray) {
          if (cycle_out != nullptr) {
            // Reconstruct the cycle next -> ... -> node -> next.
            std::vector<int> cycle;
            cycle.push_back(next);
            for (int v = node; v != next && v != -1; v = parent[v]) {
              cycle.push_back(v);
            }
            cycle.push_back(next);
            std::reverse(cycle.begin(), cycle.end());
            *cycle_out = std::move(cycle);
          }
          return true;
        }
      } else {
        color[node] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace

bool Dag::HasCycle() const { return DfsFindCycle(adj_, nullptr); }

std::vector<int> Dag::FindCycle() const {
  std::vector<int> cycle;
  DfsFindCycle(adj_, &cycle);
  return cycle;
}

Result<std::vector<int>> Dag::TopologicalOrder() const {
  const int n = num_nodes();
  std::vector<int> indegree(n, 0);
  for (int v = 0; v < n; ++v) {
    indegree[v] = static_cast<int>(radj_[v].size());
  }
  std::vector<int> order;
  order.reserve(n);
  std::vector<int> ready;
  for (int v = 0; v < n; ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    int v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (int w : adj_[v]) {
      if (--indegree[w] == 0) ready.push_back(w);
    }
  }
  if (static_cast<int>(order.size()) != n) {
    return Status::InvalidArgument("graph contains a cycle");
  }
  return order;
}

bool Dag::Reachable(int from, int to) const {
  if (from == to) return true;
  std::vector<bool> seen(num_nodes(), false);
  std::vector<int> stack = {from};
  seen[from] = true;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    for (int w : adj_[v]) {
      if (w == to) return true;
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

std::vector<std::vector<bool>> Dag::TransitiveClosure() const {
  const int n = num_nodes();
  std::vector<std::vector<bool>> closure(n, std::vector<bool>(n, false));
  for (int start = 0; start < n; ++start) {
    std::vector<int> stack = {start};
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      for (int w : adj_[v]) {
        if (!closure[start][w]) {
          closure[start][w] = true;
          stack.push_back(w);
        }
      }
    }
  }
  return closure;
}

Result<std::vector<std::pair<int, int>>> Dag::TransitiveReduction() const {
  if (HasCycle()) {
    return Status::InvalidArgument(
        "transitive reduction requires an acyclic graph");
  }
  auto closure = TransitiveClosure();
  std::vector<std::pair<int, int>> reduced;
  for (int u = 0; u < num_nodes(); ++u) {
    for (int v : adj_[u]) {
      // Edge u->v is redundant if some other successor w of u reaches v.
      bool redundant = false;
      for (int w : adj_[u]) {
        if (w != v && closure[w][v]) {
          redundant = true;
          break;
        }
      }
      if (!redundant) reduced.emplace_back(u, v);
    }
  }
  return reduced;
}

uint64_t Dag::CountLinearExtensions(uint64_t cap) const {
  const int n = num_nodes();
  std::vector<int> indegree(n, 0);
  for (int v = 0; v < n; ++v) {
    indegree[v] = static_cast<int>(radj_[v].size());
  }
  uint64_t count = 0;
  std::vector<bool> placed(n, false);
  // Backtracking enumeration of linear extensions; fine for test-sized DAGs.
  std::function<void(int)> recurse = [&](int depth) {
    if (count >= cap) return;
    if (depth == n) {
      ++count;
      return;
    }
    for (int v = 0; v < n && count < cap; ++v) {
      if (placed[v] || indegree[v] != 0) continue;
      placed[v] = true;
      for (int w : adj_[v]) --indegree[w];
      recurse(depth + 1);
      for (int w : adj_[v]) ++indegree[w];
      placed[v] = false;
    }
  };
  recurse(0);
  return count;
}

}  // namespace tpm
