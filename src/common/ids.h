#ifndef TPM_COMMON_IDS_H_
#define TPM_COMMON_IDS_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace tpm {

/// Strongly typed integral identifier. `Tag` makes distinct id families
/// (process ids, activity ids, ...) non-interchangeable at compile time.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(int64_t value) : value_(value) {}

  constexpr int64_t value() const { return value_; }
  constexpr bool valid() const { return value_ >= 0; }

  friend constexpr bool operator==(Id a, Id b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(Id a, Id b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }
  friend constexpr bool operator>(Id a, Id b) { return a.value_ > b.value_; }
  friend constexpr bool operator<=(Id a, Id b) {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>=(Id a, Id b) {
    return a.value_ >= b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << id.value_;
  }

 private:
  int64_t value_ = -1;
};

struct ProcessIdTag {};
struct ActivityIdTag {};
struct ServiceIdTag {};
struct SubsystemIdTag {};
struct TxIdTag {};

/// Identifies a process instance (P_i in the paper).
using ProcessId = Id<ProcessIdTag>;
/// Identifies an activity within one process definition (the j of a_{i_j}).
using ActivityId = Id<ActivityIdTag>;
/// Identifies a service offered by some subsystem; conflicts are declared at
/// service granularity.
using ServiceId = Id<ServiceIdTag>;
/// Identifies a transactional subsystem.
using SubsystemId = Id<SubsystemIdTag>;
/// Identifies a local transaction inside a subsystem.
using TxId = Id<TxIdTag>;

}  // namespace tpm

namespace std {
template <typename Tag>
struct hash<tpm::Id<Tag>> {
  size_t operator()(tpm::Id<Tag> id) const noexcept {
    return std::hash<int64_t>()(id.value());
  }
};
}  // namespace std

#endif  // TPM_COMMON_IDS_H_
