#ifndef TPM_COMMON_DAG_H_
#define TPM_COMMON_DAG_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace tpm {

/// A small directed-graph toolkit used for the partial orders of the paper
/// (the precedence order of a process, the conflict/serialization graph of a
/// schedule). Nodes are dense integers [0, num_nodes).
class Dag {
 public:
  explicit Dag(int num_nodes);

  int num_nodes() const { return static_cast<int>(adj_.size()); }
  int num_edges() const { return num_edges_; }

  /// Adds the edge from -> to. Duplicate edges are ignored.
  void AddEdge(int from, int to);

  bool HasEdge(int from, int to) const;

  const std::vector<int>& Successors(int node) const { return adj_[node]; }
  const std::vector<int>& Predecessors(int node) const { return radj_[node]; }

  /// Returns true iff the graph contains a directed cycle.
  bool HasCycle() const;

  /// Returns one directed cycle (sequence of nodes, first == last) or an
  /// empty vector if the graph is acyclic.
  std::vector<int> FindCycle() const;

  /// Returns a topological order of all nodes, or an error if cyclic.
  Result<std::vector<int>> TopologicalOrder() const;

  /// Returns true iff `to` is reachable from `from` via directed edges.
  bool Reachable(int from, int to) const;

  /// Returns the transitive closure as an adjacency matrix:
  /// result[i][j] == true iff j is reachable from i (i != j).
  std::vector<std::vector<bool>> TransitiveClosure() const;

  /// Returns the edges of the transitive reduction (requires acyclic graph).
  Result<std::vector<std::pair<int, int>>> TransitiveReduction() const;

  /// Counts the number of distinct topological orders (linear extensions).
  /// Exponential in general; intended for small graphs in tests. `cap`
  /// bounds the count to avoid blowups: counting stops at cap.
  uint64_t CountLinearExtensions(uint64_t cap = 1'000'000) const;

 private:
  std::vector<std::vector<int>> adj_;
  std::vector<std::vector<int>> radj_;
  int num_edges_ = 0;
};

}  // namespace tpm

#endif  // TPM_COMMON_DAG_H_
