#ifndef TPM_COMMON_FINGERPRINT_H_
#define TPM_COMMON_FINGERPRINT_H_

#include <cstdint>
#include <string_view>

namespace tpm {

/// FNV-1a, the fingerprint function shared by the equivalence tests, the
/// scheduler's incremental history digest and the replica voter. Chosen
/// for what the determinism suite needs: a fixed, platform-independent
/// definition (no seed randomization, no libc++-specific std::hash), cheap
/// enough for per-event accumulation, and stable across runs so a digest
/// mismatch always means the *state* diverged, never the hasher.
inline constexpr uint64_t kFnv1aOffsetBasis = 14695981039346656037ull;
inline constexpr uint64_t kFnv1aPrime = 1099511628211ull;

/// Chained form: folds `bytes` into a running hash (start from
/// kFnv1aOffsetBasis). Streaming N chunks equals hashing their
/// concatenation, which is what makes the incremental history digest equal
/// to a from-scratch hash of the event stream.
inline uint64_t Fnv1a(uint64_t hash, std::string_view bytes) {
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= kFnv1aPrime;
  }
  return hash;
}

inline uint64_t Fnv1a(std::string_view bytes) {
  return Fnv1a(kFnv1aOffsetBasis, bytes);
}

/// Folds an integer into a running hash byte by byte (little-endian,
/// fixed width — not the platform's memory layout).
inline uint64_t Fnv1aInt(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= static_cast<unsigned char>(value >> (8 * i));
    hash *= kFnv1aPrime;
  }
  return hash;
}

/// Order-dependent combination of two finished hashes (digest components).
inline uint64_t FingerprintCombine(uint64_t a, uint64_t b) {
  return Fnv1aInt(Fnv1aInt(kFnv1aOffsetBasis, a), b);
}

}  // namespace tpm

#endif  // TPM_COMMON_FINGERPRINT_H_
