#ifndef TPM_COMMON_THREAD_AFFINITY_H_
#define TPM_COMMON_THREAD_AFFINITY_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace tpm {

/// Single-thread ownership checker for classes whose instances are
/// thread-compatible but not thread-safe (e.g. the scheduler). The guard
/// binds to the first thread that calls CheckCurrentThread and from then on
/// reports any call from a different thread — catching accidental
/// cross-thread use deterministically and immediately, long before a data
/// race would be large enough for TSan to observe.
///
/// Release() detaches the guard so ownership can be handed to another
/// thread (e.g. a sharded runtime moving a quiesced scheduler from its
/// setup thread onto a worker). The caller is responsible for the
/// happens-before edge of the handoff itself (thread start/join, a mutex);
/// the guard only detects violations, it does not synchronize state.
class ThreadAffinityGuard {
 public:
  /// Binds to the calling thread on first use. Returns true iff the
  /// calling thread is (or just became) the owner.
  bool CheckCurrentThread() const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id seen = owner_.load(std::memory_order_relaxed);
    if (seen == self) return true;
    if (seen == std::thread::id{}) {
      std::thread::id expected{};
      if (owner_.compare_exchange_strong(expected, self,
                                         std::memory_order_acq_rel)) {
        return true;
      }
      return expected == self;  // lost a benign same-thread race
    }
    return false;
  }

  /// As CheckCurrentThread, but aborts with a diagnostic naming `site` on
  /// violation. For guarding public entry points.
  void CheckOrDie(const char* class_name, const char* site) const {
    if (CheckCurrentThread()) return;
    std::fprintf(stderr,
                 "FATAL: %s::%s called from a thread other than the owning "
                 "one; the class is single-threaded. Quiesce and call "
                 "ReleaseThreadAffinity() to hand ownership over.\n",
                 class_name, site);
    std::abort();
  }

  /// Detaches: the next CheckCurrentThread (from any thread) rebinds.
  void Release() const {
    owner_.store(std::thread::id{}, std::memory_order_release);
  }

  bool bound() const {
    return owner_.load(std::memory_order_relaxed) != std::thread::id{};
  }

 private:
  mutable std::atomic<std::thread::id> owner_{};
};

}  // namespace tpm

#endif  // TPM_COMMON_THREAD_AFFINITY_H_
