#ifndef TPM_COMMON_FLAT_CONTAINERS_H_
#define TPM_COMMON_FLAT_CONTAINERS_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace tpm {

/// Sorted-vector set with the std::set subset the scheduler hot path uses.
/// The point is allocation behaviour, not asymptotics: per-process sets are
/// small (a handful of ready activities, committed marks), so binary search
/// + contiguous storage beats one red-black node allocation per element —
/// and clear() keeps the capacity, which is what makes runtime-object
/// pooling (SchedulerOptions::reclaim_terminated) allocation-free in steady
/// state. Iteration order is ascending, like std::set.
template <typename K>
class FlatSet {
 public:
  using const_iterator = typename std::vector<K>::const_iterator;
  using iterator = const_iterator;  // keys are immutable in place

  std::pair<const_iterator, bool> insert(const K& key) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it != keys_.end() && *it == key) return {it, false};
    return {keys_.insert(it, key), true};
  }

  size_t erase(const K& key) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it == keys_.end() || *it != key) return 0;
    keys_.erase(it);
    return 1;
  }

  size_t count(const K& key) const {
    return std::binary_search(keys_.begin(), keys_.end(), key) ? 1 : 0;
  }

  const_iterator find(const K& key) const {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it == keys_.end() || *it != key) return keys_.end();
    return it;
  }

  const_iterator begin() const { return keys_.begin(); }
  const_iterator end() const { return keys_.end(); }
  bool empty() const { return keys_.empty(); }
  size_t size() const { return keys_.size(); }
  void clear() { keys_.clear(); }  // keeps capacity

 private:
  std::vector<K> keys_;
};

/// Sorted-vector map, companion of FlatSet (same rationale). Iterators are
/// mutable pair iterators, so `it->second` is assignable like std::map.
template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  V& operator[](const K& key) {
    auto it = LowerBound(key);
    if (it != entries_.end() && it->first == key) return it->second;
    return entries_.insert(it, {key, V()})->second;
  }

  template <typename... Args>
  std::pair<iterator, bool> emplace(const K& key, Args&&... args) {
    auto it = LowerBound(key);
    if (it != entries_.end() && it->first == key) return {it, false};
    return {entries_.insert(it, {key, V(std::forward<Args>(args)...)}), true};
  }

  size_t erase(const K& key) {
    auto it = LowerBound(key);
    if (it == entries_.end() || it->first != key) return 0;
    entries_.erase(it);
    return 1;
  }

  iterator erase(iterator pos) { return entries_.erase(pos); }

  size_t count(const K& key) const {
    auto it = LowerBound(key);
    return (it != entries_.end() && it->first == key) ? 1 : 0;
  }

  iterator find(const K& key) {
    auto it = LowerBound(key);
    if (it == entries_.end() || it->first != key) return entries_.end();
    return it;
  }

  const_iterator find(const K& key) const {
    auto it = LowerBound(key);
    if (it == entries_.end() || it->first != key) return entries_.end();
    return it;
  }

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }  // keeps capacity

 private:
  iterator LowerBound(const K& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }
  const_iterator LowerBound(const K& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }

  std::vector<value_type> entries_;
};

}  // namespace tpm

#endif  // TPM_COMMON_FLAT_CONTAINERS_H_
