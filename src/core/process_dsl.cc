#include "core/process_dsl.h"

#include <set>
#include <sstream>

#include "common/str_util.h"

namespace tpm {

namespace {

// Splits a line into whitespace-separated tokens, dropping '#' comments.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream iss(line);
  std::string token;
  while (iss >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

Result<int64_t> ParseInt(const std::string& s, const std::string& what) {
  try {
    size_t consumed = 0;
    int64_t value = std::stoll(s, &consumed);
    if (consumed != s.size()) {
      return Status::InvalidArgument(StrCat("bad ", what, ": ", s));
    }
    return value;
  } catch (...) {
    return Status::InvalidArgument(StrCat("bad ", what, ": ", s));
  }
}

// Parses "key=value" and returns the value; error if the key mismatches.
Result<std::string> KeyValue(const std::string& token,
                             const std::string& key) {
  auto parts = StrSplit(token, '=');
  if (parts.size() != 2 || parts[0] != key) {
    return Status::InvalidArgument(
        StrCat("expected ", key, "=<value>, got: ", token));
  }
  return parts[1];
}

}  // namespace

Result<std::unique_ptr<ParsedWorld>> ParseWorld(const std::string& text) {
  auto world = std::make_unique<ParsedWorld>();
  std::istringstream input(text);
  std::string line;
  int line_no = 0;

  ProcessDef* current = nullptr;
  std::map<std::string, ActivityId> current_activities;
  // Deferred: activity names per process for schedule resolution.
  std::map<std::string, std::map<std::string, ActivityId>> activities_by_def;
  std::vector<std::pair<std::vector<std::string>, bool>> schedule_lines;
  // Op kinds declared via 'op', by name.
  std::map<std::string, int> declared_ops;
  // 'bind' lines validated at end of parse (a service is known once some
  // activity uses it); (line, service, op name).
  struct DeferredBind {
    int line;
    int64_t service;
    std::string op;
  };
  std::vector<DeferredBind> deferred_binds;
  // Every service id referenced by an activity (service= or comp=).
  std::set<int64_t> referenced_services;

  auto error = [&](const std::string& message) {
    return Status::InvalidArgument(
        StrCat("line ", line_no, ": ", message));
  };

  while (std::getline(input, line)) {
    ++line_no;
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    if (keyword == "process") {
      if (current != nullptr) return error("nested process definition");
      if (tokens.size() != 2) return error("usage: process <name>");
      if (world->def_by_name.count(tokens[1]) > 0) {
        return error(StrCat("duplicate process ", tokens[1]));
      }
      world->defs.push_back(std::make_unique<ProcessDef>(tokens[1]));
      current = world->defs.back().get();
      current_activities.clear();
      continue;
    }
    if (keyword == "end") {
      if (current == nullptr) return error("'end' outside process");
      Status valid = current->Validate();
      if (!valid.ok()) return error(valid.ToString());
      world->def_by_name[current->name()] = current;
      activities_by_def[current->name()] = current_activities;
      current = nullptr;
      continue;
    }
    if (keyword == "activity") {
      if (current == nullptr) return error("'activity' outside process");
      if (tokens.size() < 4) {
        return error("usage: activity <name> <c|p|r> service=<id> [comp=<id>]");
      }
      ActivityKind kind;
      if (tokens[2] == "c") {
        kind = ActivityKind::kCompensatable;
      } else if (tokens[2] == "p") {
        kind = ActivityKind::kPivot;
      } else if (tokens[2] == "r") {
        kind = ActivityKind::kRetriable;
      } else if (tokens[2] == "cr") {
        kind = ActivityKind::kCompensatableRetriable;
      } else {
        return error(StrCat("unknown activity kind: ", tokens[2]));
      }
      TPM_ASSIGN_OR_RETURN(std::string service_str,
                           KeyValue(tokens[3], "service"));
      TPM_ASSIGN_OR_RETURN(int64_t service, ParseInt(service_str, "service"));
      ServiceId comp;
      if (tokens.size() >= 5) {
        TPM_ASSIGN_OR_RETURN(std::string comp_str, KeyValue(tokens[4], "comp"));
        TPM_ASSIGN_OR_RETURN(int64_t comp_id, ParseInt(comp_str, "comp"));
        comp = ServiceId(comp_id);
      }
      if (current_activities.count(tokens[1]) > 0) {
        return error(StrCat("duplicate activity ", tokens[1]));
      }
      current_activities[tokens[1]] =
          current->AddActivity(tokens[1], kind, ServiceId(service), comp);
      referenced_services.insert(service);
      if (comp.valid()) referenced_services.insert(comp.value());
      continue;
    }
    if (keyword == "edge") {
      if (current == nullptr) return error("'edge' outside process");
      if (tokens.size() < 3) return error("usage: edge <from> <to> [alt=<n>]");
      auto from = current_activities.find(tokens[1]);
      auto to = current_activities.find(tokens[2]);
      if (from == current_activities.end() || to == current_activities.end()) {
        return error("edge references unknown activity");
      }
      int preference = 0;
      if (tokens.size() >= 4) {
        TPM_ASSIGN_OR_RETURN(std::string alt, KeyValue(tokens[3], "alt"));
        TPM_ASSIGN_OR_RETURN(int64_t p, ParseInt(alt, "alt"));
        preference = static_cast<int>(p);
      }
      Status s = current->AddEdge(from->second, to->second, preference);
      if (!s.ok()) return error(s.ToString());
      continue;
    }
    if (keyword == "conflict") {
      if (tokens.size() != 3) return error("usage: conflict <svc> <svc>");
      TPM_ASSIGN_OR_RETURN(int64_t a, ParseInt(tokens[1], "service"));
      TPM_ASSIGN_OR_RETURN(int64_t b, ParseInt(tokens[2], "service"));
      world->spec.AddConflict(ServiceId(a), ServiceId(b));
      continue;
    }
    if (keyword == "effectfree") {
      if (tokens.size() != 2) return error("usage: effectfree <svc>");
      TPM_ASSIGN_OR_RETURN(int64_t a, ParseInt(tokens[1], "service"));
      world->spec.MarkEffectFree(ServiceId(a));
      continue;
    }
    if (keyword == "op") {
      if (tokens.size() != 2) return error("usage: op <name>");
      if (declared_ops.count(tokens[1]) > 0) {
        return error(StrCat("duplicate op ", tokens[1]));
      }
      declared_ops[tokens[1]] = world->spec.RegisterOpKind(tokens[1]);
      continue;
    }
    if (keyword == "commute" || keyword == "inverse") {
      if (tokens.size() != 3) {
        return error(StrCat("usage: ", keyword, " <op> <op>"));
      }
      int ops[2];
      for (int i = 0; i < 2; ++i) {
        auto it = declared_ops.find(tokens[1 + i]);
        if (it == declared_ops.end()) {
          return error(StrCat("unknown op ", tokens[1 + i]));
        }
        ops[i] = it->second;
      }
      if (keyword == "commute") {
        world->spec.AddCommutingOps(ops[0], ops[1]);
      } else {
        // The inverse pairing is a mutual matching: rebinding an op that
        // already has a different inverse would silently orphan the old
        // pairing — reject instead.
        for (int i = 0; i < 2; ++i) {
          const int existing = world->spec.InverseOf(ops[i]);
          if (existing >= 0 && existing != ops[1 - i]) {
            return error(StrCat("op ", tokens[1 + i], " already has inverse ",
                                world->spec.OpKindName(existing)));
          }
        }
        world->spec.SetInverseOp(ops[0], ops[1]);
      }
      continue;
    }
    if (keyword == "bind") {
      if (tokens.size() != 3) return error("usage: bind <service> <op>");
      TPM_ASSIGN_OR_RETURN(int64_t service, ParseInt(tokens[1], "service"));
      auto it = declared_ops.find(tokens[2]);
      if (it == declared_ops.end()) {
        return error(StrCat("unknown op ", tokens[2]));
      }
      world->spec.BindOp(ServiceId(service), it->second);
      deferred_binds.push_back(DeferredBind{line_no, service, tokens[2]});
      continue;
    }
    if (keyword == "schedule" || keyword == "schedule!") {
      schedule_lines.emplace_back(
          std::vector<std::string>(tokens.begin() + 1, tokens.end()),
          keyword == "schedule!");
      continue;
    }
    return error(StrCat("unknown keyword: ", keyword));
  }
  if (current != nullptr) {
    return Status::InvalidArgument("unterminated process definition");
  }
  // A bind may precede the activities using the service, so unknown-service
  // references are checked only once every process is parsed.
  for (const DeferredBind& bind : deferred_binds) {
    if (referenced_services.count(bind.service) == 0) {
      return Status::InvalidArgument(
          StrCat("line ", bind.line, ": bind ", bind.service, " ", bind.op,
                 " references a service no activity uses"));
    }
  }

  // Register every process with the schedule (pids in definition order).
  int64_t next_pid = 1;
  for (const auto& def : world->defs) {
    ProcessId pid(next_pid++);
    world->pid_by_name[def->name()] = pid;
    TPM_RETURN_IF_ERROR(world->schedule.AddProcess(pid, def.get()));
  }

  // Replay schedule tokens.
  for (const auto& [tokens, lenient] : schedule_lines) {
    world->has_schedule = true;
    for (const std::string& raw : tokens) {
      std::string token = raw;
      // Group abort: GA(p,q,...)
      if (token.rfind("GA(", 0) == 0 && token.back() == ')') {
        std::vector<ProcessId> group;
        for (const std::string& name :
             StrSplit(token.substr(3, token.size() - 4), ',')) {
          auto pid = world->pid_by_name.find(name);
          if (pid == world->pid_by_name.end()) {
            return Status::InvalidArgument(
                StrCat("group abort of unknown process: ", name));
          }
          group.push_back(pid->second);
        }
        TPM_RETURN_IF_ERROR(world->schedule.Append(
            ScheduleEvent::GroupAbort(group), !lenient));
        continue;
      }
      // Terminal events: C<proc> or A<proc>.
      if ((token[0] == 'C' || token[0] == 'A') &&
          world->pid_by_name.count(token.substr(1)) > 0) {
        ProcessId pid = world->pid_by_name[token.substr(1)];
        TPM_RETURN_IF_ERROR(world->schedule.Append(
            token[0] == 'C' ? ScheduleEvent::Commit(pid)
                            : ScheduleEvent::Abort(pid),
            !lenient));
        continue;
      }
      // Activity: Proc.activity[^-1][!]
      bool aborted_invocation = false;
      bool inverse = false;
      if (!token.empty() && token.back() == '!') {
        aborted_invocation = true;
        token.pop_back();
      }
      if (token.size() > 3 && token.substr(token.size() - 3) == "^-1") {
        inverse = true;
        token = token.substr(0, token.size() - 3);
      }
      auto parts = StrSplit(token, '.');
      if (parts.size() != 2) {
        return Status::InvalidArgument(
            StrCat("malformed schedule token: ", raw));
      }
      auto pid = world->pid_by_name.find(parts[0]);
      if (pid == world->pid_by_name.end()) {
        return Status::InvalidArgument(
            StrCat("unknown process in schedule: ", parts[0]));
      }
      auto names = activities_by_def.find(parts[0]);
      auto act = names->second.find(parts[1]);
      if (act == names->second.end()) {
        return Status::InvalidArgument(
            StrCat("unknown activity in schedule: ", raw));
      }
      Status s = world->schedule.Append(
          ScheduleEvent::Activity(
              ActivityInstance{pid->second, act->second, inverse},
              aborted_invocation),
          !lenient);
      if (!s.ok()) {
        return Status::InvalidArgument(
            StrCat("illegal schedule event ", raw, ": ", s.ToString()));
      }
    }
  }
  return world;
}

}  // namespace tpm
