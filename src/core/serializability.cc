#include "core/serializability.h"

namespace tpm {

ConflictGraph BuildConflictGraph(const ProcessSchedule& schedule,
                                 const ConflictSpec& spec,
                                 const ConflictGraphOptions& options) {
  ConflictGraph cg;
  for (const auto& [pid, def] : schedule.processes()) {
    if (options.committed_projection && !schedule.IsProcessCommitted(pid)) {
      continue;
    }
    cg.process_ids.push_back(pid);
    cg.graph.AddNode(pid);
  }

  const auto& events = schedule.events();
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type != EventType::kActivity) continue;
    if (options.ignore_aborted_invocations && events[i].aborted_invocation) {
      continue;
    }
    if (!cg.graph.Contains(events[i].act.process)) continue;
    for (size_t j = i + 1; j < events.size(); ++j) {
      if (events[j].type != EventType::kActivity) continue;
      if (options.ignore_aborted_invocations && events[j].aborted_invocation) {
        continue;
      }
      if (!cg.graph.Contains(events[j].act.process)) continue;
      if (schedule.InstancesConflict(events[i].act, events[j].act, spec)) {
        cg.graph.AddEdge(events[i].act.process, events[j].act.process);
      }
    }
  }
  return cg;
}

bool IsSerializable(const ProcessSchedule& schedule, const ConflictSpec& spec,
                    const ConflictGraphOptions& options) {
  return BuildConflictGraph(schedule, spec, options).IsAcyclic();
}

}  // namespace tpm
