#include "core/serializability.h"

namespace tpm {

std::vector<ProcessId> ConflictGraph::FindCycle() const {
  std::vector<int> cycle = graph.FindCycle();
  std::vector<ProcessId> result;
  result.reserve(cycle.size());
  for (int node : cycle) result.push_back(process_ids[node]);
  return result;
}

Result<std::vector<ProcessId>> ConflictGraph::SerializationOrder() const {
  TPM_ASSIGN_OR_RETURN(std::vector<int> order, graph.TopologicalOrder());
  std::vector<ProcessId> result;
  result.reserve(order.size());
  for (int node : order) result.push_back(process_ids[node]);
  return result;
}

ConflictGraph BuildConflictGraph(const ProcessSchedule& schedule,
                                 const ConflictSpec& spec,
                                 const ConflictGraphOptions& options) {
  ConflictGraph cg;
  for (const auto& [pid, def] : schedule.processes()) {
    if (options.committed_projection && !schedule.IsProcessCommitted(pid)) {
      continue;
    }
    cg.node_of[pid] = static_cast<int>(cg.process_ids.size());
    cg.process_ids.push_back(pid);
  }
  cg.graph = Dag(static_cast<int>(cg.process_ids.size()));

  const auto& events = schedule.events();
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type != EventType::kActivity) continue;
    if (options.ignore_aborted_invocations && events[i].aborted_invocation) {
      continue;
    }
    auto it_i = cg.node_of.find(events[i].act.process);
    if (it_i == cg.node_of.end()) continue;
    for (size_t j = i + 1; j < events.size(); ++j) {
      if (events[j].type != EventType::kActivity) continue;
      if (options.ignore_aborted_invocations && events[j].aborted_invocation) {
        continue;
      }
      auto it_j = cg.node_of.find(events[j].act.process);
      if (it_j == cg.node_of.end()) continue;
      if (schedule.InstancesConflict(events[i].act, events[j].act, spec)) {
        cg.graph.AddEdge(it_i->second, it_j->second);
      }
    }
  }
  return cg;
}

bool IsSerializable(const ProcessSchedule& schedule, const ConflictSpec& spec,
                    const ConflictGraphOptions& options) {
  return BuildConflictGraph(schedule, spec, options).IsAcyclic();
}

}  // namespace tpm
