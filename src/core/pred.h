#ifndef TPM_CORE_PRED_H_
#define TPM_CORE_PRED_H_

#include <string>

#include "common/status.h"
#include "core/conflict.h"
#include "core/reduction.h"
#include "core/schedule.h"

namespace tpm {

/// Result of a prefix-reducibility analysis.
struct PredOutcome {
  bool prefix_reducible = false;
  /// When not PRED: length (event count) of the shortest non-reducible
  /// prefix.
  size_t violating_prefix = 0;
  /// When not PRED: the irreducible process cycle of that prefix.
  std::vector<ProcessId> cycle;

  std::string ToString() const;
};

/// Checks prefix-reducibility (PRED, Def. 10): every prefix of the schedule
/// must be reducible. RED itself is not prefix closed (§3.4), so PRED is
/// the criterion usable for dynamic scheduling; by Theorem 1 every PRED
/// schedule is serializable and process-recoverable.
Result<PredOutcome> AnalyzePRED(const ProcessSchedule& schedule,
                                const ConflictSpec& spec);

/// Convenience wrapper returning just the boolean.
Result<bool> IsPRED(const ProcessSchedule& schedule, const ConflictSpec& spec);

}  // namespace tpm

#endif  // TPM_CORE_PRED_H_
