#ifndef TPM_CORE_SCHEDULER_H_
#define TPM_CORE_SCHEDULER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "core/completion.h"
#include "core/conflict.h"
#include "core/execution_state.h"
#include "core/process.h"
#include "core/schedule.h"
#include "log/recovery_log.h"
#include "subsystem/kv_subsystem.h"
#include "subsystem/two_phase_commit.h"

namespace tpm {

/// Admission protocol run by the scheduler.
enum class AdmissionProtocol {
  /// The paper's protocol: serialization-graph testing plus the Lemma 1
  /// deferral of non-compensatable activities, guaranteeing every emitted
  /// prefix is reducible (PRED).
  kPred,
  /// One process at a time; trivially correct, no inter-process
  /// parallelism. Baseline.
  kSerial,
  /// Strict two-phase locking at service granularity: an activity waits
  /// until no conflicting service lock is held by another active process;
  /// locks are released at process termination. Correct but pessimistic —
  /// it forbids the compensatable-phase overlap and the quasi-commit
  /// concurrency PRED allows. Baseline.
  kTwoPhaseLocking,
  /// Classical concurrency control only (serializability, no unified
  /// recovery reasoning): non-compensatable activities are never deferred.
  /// Produces the irrecoverable interleavings of §2.2/Figure 1; used as
  /// the negative control.
  kUnsafe,
};

/// How the Lemma 1 deferral of non-compensatable activities is realized.
enum class DeferMode {
  /// The activity is not invoked until the blockers commit.
  kDelayExecution,
  /// The activity is executed immediately but left in the prepared state of
  /// its subsystem (2PC phase one); all prepared branches of the process
  /// are committed atomically once the blockers are gone (Lemma 1's
  /// "deferred commit ... performed atomically by exploiting a two phase
  /// commit protocol"). Overlaps activity execution with the wait.
  kPrepared2PC,
};

/// Toggles for the individual guard mechanisms of the kPred protocol —
/// used by the ablation experiments (each knob corresponds to one design
/// element derived from the paper; disabling it shows which anomalies that
/// element prevents). All default to on; production use should not touch
/// these.
struct PredAblation {
  /// Lemma 1: defer non-compensatable activities behind conflicting active
  /// predecessors.
  bool lemma1_deferral = true;
  /// Defer an activity when a conflicting active process will forward-touch
  /// the service again (prevents doomed antisymmetric interleavings).
  bool crossing_prevention = true;
  /// Lemma 2 / §2.2: gate compensations behind dependents' undo, with
  /// cascading aborts.
  bool compensation_gate = true;
  /// §3.5: pre-order frozen non-compensatables before potential completion
  /// conflicts (virtual serialization edges) and check forward recovery
  /// steps against them.
  bool completion_preorder = true;
};

struct SchedulerOptions {
  AdmissionProtocol protocol = AdmissionProtocol::kPred;
  DeferMode defer_mode = DeferMode::kDelayExecution;
  PredAblation ablation;
  /// Example 10: allow an activity of P_j conflicting with an earlier
  /// activity of an active P_i when P_i is in F-REC and none of P_i's
  /// remaining or completion activities can conflict with P_j.
  bool quasi_commit_optimization = false;
  /// Re-check PRED on the emitted history after every event (O(n^4) —
  /// tests/small workloads only).
  bool certify_prefixes = false;
  /// Safety cap on re-invocations of a retriable activity.
  int max_retries = 1000;
  /// Virtual-time cost model: how many clock ticks an invocation of each
  /// service occupies its process (default 1 for unlisted services). The
  /// scheduler's clock advances one tick per pass; a process busy with a
  /// long-running activity skips its turns, so concurrency shows up as
  /// makespan (stats.virtual_time) < sum of durations.
  std::map<ServiceId, int64_t> service_durations;
  /// Congestion control: at most this many processes execute concurrently;
  /// further submissions queue until a slot frees (0 = unlimited). Under
  /// extreme contention a small level avoids the abort storms optimistic
  /// scheduling is prone to (experiment E12c).
  int max_concurrent_processes = 0;
};

struct SchedulerStats {
  int64_t steps = 0;
  /// Virtual clock at the end of the run (== steps unless a cost model
  /// makes activities span multiple ticks — then it is the makespan).
  int64_t virtual_time = 0;
  int64_t activities_committed = 0;
  int64_t failed_invocations = 0;
  int64_t compensations = 0;
  int64_t deferrals = 0;
  int64_t blocked_by_locks = 0;
  int64_t alternatives_taken = 0;
  int64_t processes_committed = 0;
  int64_t processes_aborted = 0;
  int64_t deadlock_victims = 0;
  int64_t prepared_branches = 0;
  int64_t quasi_commit_admissions = 0;
  /// Processes aborted because a compensation of another process
  /// invalidated data they had consumed (§2.2: the production process must
  /// be compensated when the BOM it read is invalidated).
  int64_t cascading_aborts = 0;
  /// Cascading aborts that hit a process already in F-REC — its pivot had
  /// committed, so the inconsistency cannot be undone (only possible under
  /// kUnsafe; the Lemma 1 deferral prevents it).
  int64_t irrecoverable_cascades = 0;
  /// Commits delayed to enforce the commit order of Def. 11 clause 1.
  int64_t commit_waits = 0;
  /// Retriable activities / forward recovery steps executed although they
  /// close a serialization cycle whose other participants have all
  /// terminated: guaranteed termination (liveness) takes precedence over
  /// formal prefix-reducibility in these corner cases, which only arise in
  /// extreme-contention abort storms.
  int64_t forced_executions = 0;
  /// kUnsafe only: prefixes detected non-reducible when certifying.
  int64_t certified_violations = 0;
};

/// Observer interface for scheduler events — tracing, metrics, UIs. All
/// callbacks default to no-ops; observers must outlive the scheduler and
/// must not call back into it.
class SchedulerObserver {
 public:
  virtual ~SchedulerObserver() = default;
  /// An activity (or, with `inverse`, a compensating activity) committed
  /// and became visible in the history.
  virtual void OnActivityCommitted(ProcessId pid, ActivityId act,
                                   bool inverse) {
    (void)pid;
    (void)act;
    (void)inverse;
  }
  /// A local transaction terminated with abort (failed invocation).
  virtual void OnInvocationFailed(ProcessId pid, ActivityId act) {
    (void)pid;
    (void)act;
  }
  /// The process switched to the alternative `group` at `branch_point`
  /// (preference order ◁).
  virtual void OnAlternativeTaken(ProcessId pid, ActivityId branch_point,
                                  int group) {
    (void)pid;
    (void)branch_point;
    (void)group;
  }
  /// The process began aborting (its completion will now execute).
  virtual void OnAbortStarted(ProcessId pid) { (void)pid; }
  /// The process reached a terminal state.
  virtual void OnProcessTerminated(ProcessId pid, ProcessOutcome outcome) {
    (void)pid;
    (void)outcome;
  }
};

/// The transactional process scheduler (§3): executes processes with
/// guaranteed termination on top of transactional subsystems, ensuring
/// serializability and process-recoverability of the emitted schedule via
/// the PRED criterion, and handling failures by alternative execution
/// paths, backward/forward recovery and (after a crash) group abort.
class TransactionalProcessScheduler {
 public:
  explicit TransactionalProcessScheduler(SchedulerOptions options = {},
                                         RecoveryLog* log = nullptr);

  TransactionalProcessScheduler(const TransactionalProcessScheduler&) = delete;
  TransactionalProcessScheduler& operator=(
      const TransactionalProcessScheduler&) = delete;

  /// Registers a subsystem; its services become invocable and their derived
  /// conflicts are added to the scheduler's conflict relation. Subsystems
  /// must outlive the scheduler.
  Status RegisterSubsystem(Subsystem* subsystem);

  /// Adds a conflict beyond those derived from read/write sets.
  void AddConflict(ServiceId a, ServiceId b);

  /// Registers an observer (must outlive the scheduler).
  void AddObserver(SchedulerObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }

  const ConflictSpec& conflict_spec() const { return spec_; }

  /// An explicit inter-process order constraint (the inter-process part of
  /// <<_S, Def. 7): the submitted process may start only after `activity`
  /// of `process` committed — e.g., Figure 1's "the BOM generated by the
  /// construction process provides the necessary input of the production
  /// process".
  struct ProcessDependency {
    ProcessId process;
    ActivityId activity;
  };

  /// Admits a process instance. The definition must be validated, have
  /// well-formed flex structure, and reference only registered services.
  /// `param` is forwarded to every service invocation of the process.
  /// The process stays dormant until all `dependencies` are met; if a
  /// dependency becomes unsatisfiable (its process terminates without the
  /// activity committed, or compensates it before the dependent started),
  /// the dependent process is aborted (it has not executed anything, so
  /// the abort is clean).
  Result<ProcessId> Submit(const ProcessDef* def, int64_t param = 0,
                           std::vector<ProcessDependency> dependencies = {});

  /// Executes one scheduling pass over all active processes. Returns true
  /// while work remains.
  Result<bool> Step();

  /// Runs until all processes terminated (or `max_steps` passes elapsed).
  Status Run(int64_t max_steps = 1'000'000);

  /// The emitted process schedule (activities, commits, aborts) — the S the
  /// correctness criteria are evaluated on.
  const ProcessSchedule& history() const { return history_; }

  /// Per-process latency record (virtual-time ticks).
  struct ProcessLatency {
    ProcessId pid;
    int64_t submitted = 0;   // clock at Submit
    int64_t started = -1;    // clock of the first executed activity
    int64_t terminated = -1; // clock of the terminal event
    ProcessOutcome outcome = ProcessOutcome::kActive;
  };

  /// Latencies of all terminated processes, in termination order. Queueing
  /// delay = started - submitted; service time = terminated - started.
  const std::vector<ProcessLatency>& latencies() const { return latencies_; }

  ProcessOutcome OutcomeOf(ProcessId pid) const;

  const SchedulerStats& stats() const { return stats_; }

  /// Simulates a scheduler crash: all volatile state (runtimes, history,
  /// serialization graph) is lost. Subsystems and the recovery log survive.
  void Crash();

  /// Rebuilds process states from the recovery log and performs the group
  /// abort of all in-flight processes (Def. 8 2b): compensations first in
  /// global reverse order, then the forward recovery paths (Lemma 3). The
  /// executed recovery actions are emitted into a fresh history.
  /// `defs_by_name` resolves the definitions referenced by the log.
  Status Recover(const std::map<std::string, const ProcessDef*>& defs_by_name);

  /// Log compaction: atomically rewrites the recovery log to the minimal
  /// set of records describing the current in-flight processes (terminated
  /// processes vanish — their effects are durable in the subsystems).
  /// Bounds the log, and hence recovery replay time, for long-running
  /// schedulers. Requires a recovery log.
  Status Checkpoint();

 private:
  struct PreparedBranch {
    ActivityId activity;
    Subsystem* subsystem = nullptr;
    TxId tx;
    int64_t return_value = 0;
  };

  /// What happens once a runtime's pending recovery/branch-switch steps
  /// have drained.
  enum class DrainAction {
    kNone,
    kAbortProcess,    // the pending steps were the completion C(P): abort
    kActivateGroup,   // branch switch: activate the next alternative
  };

  struct ProcessRuntime {
    ProcessId pid;
    const ProcessDef* def = nullptr;
    ProcessExecutionState state;
    std::set<ActivityId> ready;
    std::map<ActivityId, int> active_group;
    std::map<ActivityId, int> retries;
    std::vector<PreparedBranch> prepared;
    /// Compensation / recovery steps to execute with priority (front
    /// first). While non-empty the process executes only these.
    std::vector<CompletionStep> pending;
    DrainAction on_drain = DrainAction::kNone;
    ActivityId drain_branch_point;
    int drain_group = 0;
    int64_t param = 0;
    /// Unmet inter-process start dependencies (Def. 7 inter-process order).
    std::vector<ProcessDependency> dependencies;
    /// Virtual-clock tick until which the process is occupied by its
    /// currently running activity.
    int64_t busy_until = 0;
    /// True once the process executed (or prepared) its first activity —
    /// it then holds one of the concurrency slots.
    bool started = false;
    int64_t submitted_at = 0;
    int64_t started_at = -1;

    bool completing() const {
      return !pending.empty() || on_drain != DrainAction::kNone;
    }

    ProcessRuntime(ProcessId p, const ProcessDef* d)
        : pid(p), def(d), state(p, d) {}
  };

  enum class AdmissionDecision { kAdmit, kDefer, kFail };

  Result<Subsystem*> RouteService(ServiceId service) const;

  // Guard evaluation for executing original activity `act` of `rt` now.
  AdmissionDecision Admit(ProcessRuntime& rt, ActivityId act);
  bool HasCycleWith(ProcessId pid, const std::set<ProcessId>& new_preds) const;
  bool ActiveProcessReachableFrom(ProcessId pid) const;
  bool RemainderConflicts(const ProcessRuntime& other, ServiceId service,
                          bool include_compensations = true) const;
  std::set<ProcessId> VirtualCompletionTargets(const ProcessRuntime& rt,
                                               ServiceId service) const;
  bool EmittedConflictsWithRemainder(const ProcessRuntime& emitter,
                                     const ProcessRuntime& rt,
                                     ActivityId exclude) const;
  bool SgReaches(ProcessId from, ProcessId to) const;
  std::set<ProcessId> ConflictingPredecessors(const ProcessRuntime& rt,
                                              ActivityId act) const;
  std::set<ProcessId> ActiveBlockers(const ProcessRuntime& rt,
                                     ActivityId act) const;
  bool QuasiCommitAdmissible(const ProcessRuntime& blocker,
                             const ProcessRuntime& requester) const;

  // Execution steps.
  Result<bool> TryExecuteProcess(ProcessRuntime& rt);
  Result<bool> ExecuteActivity(ProcessRuntime& rt, ActivityId act);
  Result<bool> ExecuteCompletionStep(ProcessRuntime& rt);
  Status HandleInvocationAbort(ProcessRuntime& rt, ActivityId act);
  Status HandleActivityFailure(ProcessRuntime& rt, ActivityId act);
  Status StartAbort(ProcessRuntime& rt);
  bool AbortedProcessLeavesNoTrace(const ProcessRuntime& rt) const;
  Status FinishProcess(ProcessRuntime& rt, bool committed);
  Status ReleasePreparedIfUnblocked(ProcessRuntime& rt);
  Status EmitActivity(ProcessRuntime& rt, ActivityId act, bool inverse);
  Result<bool> GateCompensation(ProcessRuntime& rt, ActivityId compensated);
  Status CompensateSubtree(ProcessRuntime& rt, ActivityId branch_point,
                           int next_group);
  void RecomputeReadyFrom(ProcessRuntime& rt, ActivityId committed);
  void AddSerializationEdges(ProcessId pid, const std::set<ProcessId>& preds);
  void PruneSerializationGraph();
  Status ResolveDeadlock();
  Status CertifyHistory();

  // Lock table for the kTwoPhaseLocking protocol.
  bool LocksAvailable(ProcessId pid, ServiceId service) const;
  void AcquireLock(ProcessId pid, ServiceId service);
  void ReleaseLocks(ProcessId pid);

  SchedulerOptions options_;
  RecoveryLog* log_;  // may be null (no durability)
  ConflictSpec spec_;
  std::map<ServiceId, Subsystem*> routing_;
  std::vector<Subsystem*> subsystems_;

  std::map<ProcessId, std::unique_ptr<ProcessRuntime>> runtimes_;
  /// Terminated processes whose serialization-graph bookkeeping was
  /// reclaimed.
  std::set<ProcessId> pruned_;
  /// (compensating pid, dependent pid) pairs already counted in the
  /// cascade statistics (the compensation gate re-evaluates every pass).
  std::set<std::pair<int64_t, int64_t>> cascade_counted_;
  ProcessSchedule history_;
  int64_t next_pid_ = 1;

  // Serialization graph: adjacency over process ids (SGT).
  std::map<ProcessId, std::set<ProcessId>> sg_successors_;
  std::map<ProcessId, std::set<ProcessId>> sg_predecessors_;

  // Conflict indices: service -> conflicting services, and service ->
  // processes that emitted an instance of it.
  std::map<ServiceId, std::vector<ServiceId>> conflict_partners_;
  std::map<ServiceId, std::set<ProcessId>> service_emitters_;

  // kSerial: the process currently holding the execution token.
  ProcessId serial_token_;

  // kTwoPhaseLocking: service locks held per process.
  std::map<ProcessId, std::set<ServiceId>> service_locks_;

  std::vector<ProcessLatency> latencies_;
  std::vector<SchedulerObserver*> observers_;
  TwoPhaseCommitCoordinator coordinator_;
  SchedulerStats stats_;
  /// Virtual clock: one tick per scheduling pass.
  int64_t clock_ = 0;
  /// Monotone counter of StartAbort calls, used for progress detection.
  int64_t aborts_started_ = 0;
  /// Set by deadlock resolution when every active process is completing
  /// and mutually blocked: lets exactly one blocked recovery step proceed.
  bool force_next_completion_ = false;
};

}  // namespace tpm

#endif  // TPM_CORE_SCHEDULER_H_
