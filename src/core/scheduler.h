#ifndef TPM_CORE_SCHEDULER_H_
#define TPM_CORE_SCHEDULER_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/flat_containers.h"
#include "common/ids.h"
#include "common/status.h"
#include "common/thread_affinity.h"
#include "common/virtual_clock.h"
#include "core/admission.h"
#include "core/completion.h"
#include "core/conflict.h"
#include "core/execution_state.h"
#include "core/process.h"
#include "core/schedule.h"
#include "core/scheduler_options.h"
#include "core/serialization_graph.h"
#include "log/recovery_log.h"
#include "subsystem/kv_subsystem.h"
#include "subsystem/two_phase_commit.h"

namespace tpm {

/// Observer interface for scheduler events — tracing, metrics, UIs. All
/// callbacks default to no-ops.
///
/// Reentrancy: callbacks run synchronously in the middle of a scheduling
/// pass, while the scheduler's internal state (runtimes, history,
/// serialization graph) is mid-update. An observer must therefore not call
/// back into the scheduler — neither mutators (Submit, Step, Crash, ...)
/// nor accessors (history(), stats(), ...) — and must not destroy it.
/// Record what you need and inspect the scheduler after Step()/Run()
/// returns. Observers must outlive the scheduler.
class SchedulerObserver {
 public:
  virtual ~SchedulerObserver() = default;
  /// An activity (or, with `inverse`, a compensating activity) committed
  /// and became visible in the history.
  virtual void OnActivityCommitted(ProcessId /*pid*/, ActivityId /*act*/,
                                   bool /*inverse*/) {}
  /// A local transaction terminated with abort (failed invocation).
  virtual void OnInvocationFailed(ProcessId /*pid*/, ActivityId /*act*/) {}
  /// The process switched to the alternative `group` at `branch_point`
  /// (preference order ◁).
  virtual void OnAlternativeTaken(ProcessId /*pid*/,
                                  ActivityId /*branch_point*/,
                                  int /*group*/) {}
  /// The process began aborting (its completion will now execute).
  virtual void OnAbortStarted(ProcessId /*pid*/) {}
  /// The process reached a terminal state.
  virtual void OnProcessTerminated(ProcessId /*pid*/,
                                   ProcessOutcome /*outcome*/) {}
  /// A held sub-process (SubmitHeld) finished all its work and durably
  /// voted "prepared": every non-compensatable effect sits in the prepared
  /// state of its subsystem and the process now waits for the coordination
  /// agent's global commit/abort decision (ResolveHeldCommit).
  virtual void OnCommitHeld(ProcessId /*pid*/) {}
  /// A subsystem's circuit breaker changed state (observed once per
  /// scheduling pass — transitions within a pass coalesce/lag one pass).
  virtual void OnBreakerStateChange(SubsystemId /*subsystem*/,
                                    BreakerState /*from*/,
                                    BreakerState /*to*/) {}
  /// The process proactively degraded to the alternative `group` at
  /// `branch_point` (preference order ◁) because `avoided`'s breaker is
  /// open.
  virtual void OnDegradedBranch(ProcessId /*pid*/,
                                ActivityId /*branch_point*/, int /*group*/,
                                SubsystemId /*avoided*/) {}
};

/// The transactional process scheduler (§3): executes processes with
/// guaranteed termination on top of transactional subsystems, ensuring
/// serializability and process-recoverability of the emitted schedule via
/// the PRED criterion, and handling failures by alternative execution
/// paths, backward/forward recovery and (after a crash) group abort.
///
/// The class is layered: admission policy (which activity may run now)
/// lives behind the AdmissionGuard interface in core/admission.h, SGT state
/// lives in core/serialization_graph.h, and this class is the execution /
/// recovery engine that drives both. It exposes its state to the policy
/// layer by privately implementing the read-only SchedulerView.
///
/// Threading contract: the scheduler is SINGLE-THREADED. One thread owns
/// an instance at a time and makes every call — mutators and accessors
/// alike (accessors read state a concurrent mutator may be mid-update on).
/// The owner need not be the constructing thread: ownership binds to the
/// first thread that uses the instance, and a quiesced scheduler can be
/// handed to another thread via ReleaseThreadAffinity(). Every public
/// entry point asserts the contract through a ThreadAffinityGuard and
/// aborts on violation — catching accidental cross-thread use
/// deterministically, long before TSan could. Multi-core scaling composes
/// whole schedulers behind a partitioned front-end (src/runtime/) instead
/// of threading this class.
class TransactionalProcessScheduler : private SchedulerView {
 public:
  explicit TransactionalProcessScheduler(SchedulerOptions options = {},
                                         RecoveryLog* log = nullptr);

  TransactionalProcessScheduler(const TransactionalProcessScheduler&) = delete;
  TransactionalProcessScheduler& operator=(
      const TransactionalProcessScheduler&) = delete;

  /// Registers a subsystem; its services become invocable and their derived
  /// conflicts are added to the scheduler's conflict relation. Subsystems
  /// must outlive the scheduler.
  Status RegisterSubsystem(Subsystem* subsystem);

  /// Removes a registered subsystem: its services stop being routable
  /// here (elastic migration moves the subsystem to another shard's
  /// scheduler). Fails with FailedPrecondition while any active process's
  /// footprint touches one of its services — the caller must quiesce
  /// first. The conflict spec keeps the services interned: dense indices
  /// are append-only, so history analyses over past emitters stay valid.
  Status UnregisterSubsystem(Subsystem* subsystem);

  /// Adds a conflict beyond those derived from read/write sets.
  void AddConflict(ServiceId a, ServiceId b);

  /// Registers an observer (must outlive the scheduler).
  void AddObserver(SchedulerObserver* observer) {
    CheckThread("AddObserver");
    if (observer != nullptr) observers_.push_back(observer);
  }

  const SchedulerOptions& options() const override { return options_; }
  const ConflictSpec& conflict_spec() const override { return spec_; }

  /// An explicit inter-process order constraint (the inter-process part of
  /// <<_S, Def. 7): the submitted process may start only after `activity`
  /// of `process` committed — e.g., Figure 1's "the BOM generated by the
  /// construction process provides the necessary input of the production
  /// process".
  struct ProcessDependency {
    ProcessId process;
    ActivityId activity;
  };

  /// Admits a process instance. The definition must be validated, have
  /// well-formed flex structure, and reference only registered services.
  /// `param` is forwarded to every service invocation of the process.
  /// The process stays dormant until all `dependencies` are met; if a
  /// dependency becomes unsatisfiable (its process terminates without the
  /// activity committed, or compensates it before the dependent started),
  /// the dependent process is aborted (it has not executed anything, so
  /// the abort is clean).
  Result<ProcessId> Submit(const ProcessDef* def, int64_t param = 0,
                           std::vector<ProcessDependency> dependencies = {});

  /// One entry of a batched admission (SubmitBatch).
  struct BatchSubmission {
    const ProcessDef* def = nullptr;
    int64_t param = 0;
  };

  /// Admits a whole batch of processes in one pass — the shard worker's
  /// per-tick queue drain. Returns one Result per entry, in order, and the
  /// outcomes are bit-identical to calling Submit once per entry in the
  /// same order (proven by the batch-equivalence golden test). The batch
  /// path amortizes the per-submission admission cost: definition
  /// validation and service routing are memoized per ProcessDef pointer
  /// (sound because definitions are immutable once validated, must outlive
  /// their processes, and the routing table only grows), the serialization
  /// graph is extended with one isolated node per admitted process, and
  /// the admission guard certifies the whole extension with a single
  /// incremental cycle check instead of one per process (the multi-level
  /// amortization: a batch of fresh, edge-free nodes cannot close a
  /// cycle). If the guard declines the batch, admission falls back to the
  /// per-process path entry by entry. Inter-process dependencies are not
  /// supported in batches — submit those through Submit.
  std::vector<Result<ProcessId>> SubmitBatch(
      const std::vector<BatchSubmission>& batch);

  /// Admits a sub-process of a cross-shard spanning process under the
  /// held-commit protocol: this scheduler acts as a participant of a
  /// distributed 2PC whose coordinator is the cross-shard agent. Every
  /// non-compensatable activity is executed via InvokePrepared (Lemma 1's
  /// deferred commit, forced regardless of defer_mode) and kept prepared;
  /// when the process has executed all its work it durably logs a
  /// "prepared" vote (kCommitHeld records) and parks until
  /// ResolveHeldCommit delivers the global decision. Compensatable
  /// activities commit locally as usual — they stay globally abortable
  /// through compensation.
  Result<ProcessId> SubmitHeld(const ProcessDef* def, int64_t param = 0);

  /// Delivers the coordinator's decision for a held process. `commit`
  /// releases the prepared branches through the normal Lemma-1 2PC path
  /// and lets the process commit; otherwise the process aborts (prepared
  /// branches roll back invisibly, committed compensatables compensate).
  /// A process that already terminated (e.g. aborted before voting) is
  /// reported via NotFound; the caller treats that as already-resolved.
  Status ResolveHeldCommit(ProcessId pid, bool commit);

  /// External order constraint hook for the cross-shard agent: embeds the
  /// agent-imposed inter-shard order `before` << `after` into the local
  /// serialization graph, so SGT admission and the Def. 11 commit-wait
  /// respect it without this scheduler knowing about other shards.
  Status AddExternalOrder(ProcessId before, ProcessId after);

  /// Held processes that voted but have not yet received a decision —
  /// they are externally in flight (the runtime's idle accounting must
  /// treat them as busy).
  int64_t held_undecided_count() const;

  /// Executes one scheduling pass over all active processes. Returns true
  /// while work remains.
  Result<bool> Step();

  /// Runs until all processes terminated (or `max_steps` passes elapsed).
  Status Run(int64_t max_steps = 1'000'000);

  /// The emitted process schedule (activities, commits, aborts) — the S the
  /// correctness criteria are evaluated on.
  const ProcessSchedule& history() const {
    CheckThread("history");
    return history_;
  }

  /// Per-process latency record (virtual-time ticks).
  struct ProcessLatency {
    ProcessId pid;
    int64_t submitted = 0;   // clock at Submit
    int64_t started = -1;    // clock of the first executed activity
    int64_t terminated = -1; // clock of the terminal event
    ProcessOutcome outcome = ProcessOutcome::kActive;
  };

  /// Latencies of all terminated processes, in termination order. Queueing
  /// delay = started - submitted; service time = terminated - started.
  const std::vector<ProcessLatency>& latencies() const {
    CheckThread("latencies");
    return latencies_;
  }

  ProcessOutcome OutcomeOf(ProcessId pid) const;

  const SchedulerStats& stats() const {
    CheckThread("stats");
    return stats_;
  }

  /// Incremental FNV-1a digest over every history event ever emitted (see
  /// ProcessSchedule::digest) — the history component of a replica's vote.
  /// O(1); survives history Compact().
  uint64_t HistoryDigest() const {
    CheckThread("HistoryDigest");
    return history_.digest();
  }

  /// Restarts the history digest accumulator. Replica respawn re-baselines
  /// every live replica together so subsequent votes compare only the
  /// post-respawn suffix.
  void ResetHistoryDigest() {
    CheckThread("ResetHistoryDigest");
    history_.ResetDigest();
  }

  /// Combined StateFingerprint of all registered subsystems, folded in
  /// registration order — the store component of a replica's vote.
  uint64_t SubsystemStateFingerprint() const {
    CheckThread("SubsystemStateFingerprint");
    uint64_t h = kFnv1aOffsetBasis;
    for (const Subsystem* subsystem : subsystems_) {
      h = Fnv1aInt(h, subsystem->StateFingerprint());
    }
    return h;
  }

  /// Detaches the single-thread ownership (see the class comment): the
  /// next thread to call any public entry point becomes the new owner.
  /// Only meaningful on a quiesced scheduler — the caller must provide the
  /// happens-before edge of the handoff (thread join, mutex, ...).
  void ReleaseThreadAffinity() const { affinity_.Release(); }

  /// Simulates a scheduler crash: all volatile state (runtimes, history,
  /// serialization graph) is lost. Subsystems and the recovery log survive.
  /// (A crash injected inside the log — Wal crash points — additionally
  /// surfaces as kUnavailable from Submit/Step/Run; call Wal::Crash or
  /// reopen the storage backend before recovering.)
  void Crash();

  /// Rebuilds process states from the recovery log and performs the group
  /// abort of all in-flight processes (Def. 8 2b): compensations first in
  /// global reverse order, then the forward recovery paths (Lemma 3). The
  /// executed recovery actions are emitted into a fresh history.
  /// `defs_by_name` resolves the definitions referenced by the log.
  ///
  /// Tolerates the losses a crash can inflict on the log: a lost tail
  /// (asynchronous mode) may hide activities that committed in their
  /// subsystem — such orphaned forward effects are invisible here and are
  /// the price of asynchronous logging — and superseded write-ahead COMP
  /// intentions replay as duplicates, which are skipped and counted in
  /// stats().recovered_log_anomalies.
  /// Cross-shard recovery directives: sub-process definition names whose
  /// held (voted-prepared) branches must be force-committed during Recover
  /// because the coordinator log carries a durable global commit decision.
  /// Everything held but not listed here is presumed aborted.
  struct RecoverDirectives {
    std::set<std::string> force_commit;
  };

  Status Recover(const std::map<std::string, const ProcessDef*>& defs_by_name,
                 const RecoverDirectives* directives = nullptr);

  /// Reserves `count` consecutive pids and returns the first. The elastic
  /// migration engine renumbers an imported WAL segment into the reserved
  /// range before replaying it here, so imported pids can never collide
  /// with organically admitted ones — and an aborted import strips exactly
  /// [base, base + count). An unused reservation is a harmless pid gap.
  int64_t ReservePidRange(int64_t count);

  /// Visits every active (non-terminated) process with its definition, in
  /// ascending pid order — the migration engine's quiesce poll ("any live
  /// process still touching this component?") without exposing runtimes.
  void ForEachActiveDef(
      const std::function<void(ProcessId, const ProcessDef*)>& fn) const;

  /// Log compaction: atomically rewrites the recovery log to the minimal
  /// set of records describing the current in-flight processes (terminated
  /// processes vanish — their effects are durable in the subsystems).
  /// Bounds the log, and hence recovery replay time, for long-running
  /// schedulers. Requires a recovery log.
  Status Checkpoint();

 private:
  struct PreparedBranch {
    ActivityId activity;
    Subsystem* subsystem = nullptr;
    TxId tx;
    int64_t return_value = 0;
  };

  /// What happens once a runtime's pending recovery/branch-switch steps
  /// have drained.
  enum class DrainAction {
    kNone,
    kAbortProcess,    // the pending steps were the completion C(P): abort
    kActivateGroup,   // branch switch: activate the next alternative
  };

  struct ProcessRuntime {
    ProcessId pid;
    const ProcessDef* def = nullptr;
    ProcessExecutionState state;
    FlatSet<ActivityId> ready;
    FlatMap<ActivityId, int> active_group;
    FlatMap<ActivityId, int> retries;
    std::vector<PreparedBranch> prepared;
    /// Compensation / recovery steps to execute with priority (front
    /// first). While non-empty the process executes only these.
    std::vector<CompletionStep> pending;
    DrainAction on_drain = DrainAction::kNone;
    ActivityId drain_branch_point;
    int drain_group = 0;
    int64_t param = 0;
    /// Unmet inter-process start dependencies (Def. 7 inter-process order).
    std::vector<ProcessDependency> dependencies;
    /// Virtual-clock tick until which the process is occupied by its
    /// currently running activity.
    int64_t busy_until = 0;
    /// Activities waiting out an open circuit breaker (-> park tick).
    /// Parked activities stay in `ready` but are not invoked; they resume
    /// when the breaker half-opens, fail over after park_timeout_ticks, or
    /// are dropped with their branch on a degraded switch.
    FlatMap<ActivityId, int64_t> parked;
    /// A 2PC commit decision for the prepared branches is logged but some
    /// participant was unreachable during phase two: the branches are in
    /// doubt and the process waits for RecoverInDoubt to resolve them
    /// (it must not execute, abort, or be victimized meanwhile — the
    /// decision is already made).
    bool release_in_doubt = false;
    /// Held-commit protocol (SubmitHeld): the process is a participant of
    /// a cross-shard 2PC. All non-compensatables are force-prepared and
    /// retained; after the last activity the process votes instead of
    /// committing.
    bool hold_commit = false;
    /// The prepared vote has been durably logged; the process is parked
    /// waiting for ResolveHeldCommit. Not locally abortable (a participant
    /// that voted "prepared" cannot unilaterally abort).
    bool commit_held = false;
    /// The coordinator decided commit: the prepared branches release
    /// through the normal machinery and the process must reach commit —
    /// it is no longer a deadlock victim candidate.
    bool decided_commit = false;
    /// True once the process executed (or prepared) its first activity —
    /// it then holds one of the concurrency slots.
    bool started = false;
    int64_t submitted_at = 0;
    int64_t started_at = -1;

    bool completing() const {
      return !pending.empty() || on_drain != DrainAction::kNone;
    }

    ProcessRuntime(ProcessId p, const ProcessDef* d)
        : pid(p), def(d), state(p, d) {}

    /// Re-initializes a pooled runtime for a new process. Every container
    /// is cleared in place, keeping its capacity — the steady-state
    /// admission path then allocates nothing.
    void Reset(ProcessId p, const ProcessDef* d) {
      pid = p;
      def = d;
      state.Reset(p, d);
      ready.clear();
      active_group.clear();
      retries.clear();
      prepared.clear();
      pending.clear();
      on_drain = DrainAction::kNone;
      drain_branch_point = ActivityId();
      drain_group = 0;
      param = 0;
      dependencies.clear();
      busy_until = 0;
      parked.clear();
      release_in_doubt = false;
      hold_commit = false;
      commit_held = false;
      decided_commit = false;
      started = false;
      submitted_at = 0;
      started_at = -1;
    }
  };

  // --- SchedulerView (the read-only face the admission layer consumes). ---
  const SerializationGraph& serialization_graph() const override {
    return sg_;
  }
  std::optional<ProcessView> FindProcess(ProcessId pid) const override;
  void ForEachProcess(
      const std::function<void(const ProcessView&)>& fn) const override;
  void ForEachActiveProcess(
      const std::function<void(const ProcessView&)>& fn) const override;
  bool HasEmitted(ProcessId pid, ServiceId service) const override;
  void ForEachEmitter(
      ServiceId service,
      const std::function<void(ProcessId)>& fn) const override;

  static ProcessView ViewOf(const ProcessRuntime& rt) {
    return ProcessView{rt.pid, rt.def, &rt.state};
  }

  Result<Subsystem*> RouteService(ServiceId service) const;

  void CheckThread(const char* site) const {
    affinity_.CheckOrDie("TransactionalProcessScheduler", site);
  }

  /// Submit's per-definition admission checks (well-formed flex structure
  /// + every service routed), memoized per ProcessDef pointer for the
  /// batch path. Only success is cached: a definition that fails routing
  /// now may pass after more subsystems register.
  Status ValidateDefForBatch(const ProcessDef* def);

  // Dense runtime table: slot pid.value() - 1 (pids are handed out
  // sequentially from 1; Recover re-creates the original pids).
  ProcessRuntime* FindRuntime(ProcessId pid);
  const ProcessRuntime* FindRuntime(ProcessId pid) const;
  void EmplaceRuntime(ProcessId pid, std::unique_ptr<ProcessRuntime> rt);

  /// A fresh runtime for `pid` — from the pool (reclaim_terminated) when
  /// one is available, else newly allocated.
  std::unique_ptr<ProcessRuntime> AcquireRuntime(ProcessId pid,
                                                 const ProcessDef* def);
  /// Epoch boundary of the reclaim protocol (start of Submit/SubmitBatch/
  /// Step): recycles every pruned terminated runtime into the pool and
  /// compacts the history once enough releases accumulated.
  void DrainReclaimables();

  bool IsPruned(ProcessId pid) const {
    const size_t slot = static_cast<size_t>(pid.value() - 1);
    return slot < pruned_.size() && pruned_[slot] != 0;
  }
  void MarkPruned(ProcessId pid);
  /// Drops `pid` from the sorted active index (no-op if absent).
  void DeactivatePid(ProcessId pid);

  // Dense per-service emitter index (rows follow spec_'s interning).
  void EnsureEmitterRows();
  void AddEmitter(ServiceId service, ProcessId pid);
  void RemoveEmitter(ProcessId pid);

  // Execution steps.
  Result<bool> TryExecuteProcess(ProcessRuntime& rt);
  Result<bool> MaybeVoteHeldCommit(ProcessRuntime& rt);
  Result<bool> ExecuteActivity(ProcessRuntime& rt, ActivityId act);
  Result<bool> ExecuteCompletionStep(ProcessRuntime& rt);
  Status HandleInvocationAbort(ProcessRuntime& rt, ActivityId act);
  Status HandleActivityFailure(ProcessRuntime& rt, ActivityId act);
  /// Nearest committed ancestor of `act` with an untried alternative group
  /// (see HandleActivityFailure); with `avoid_open_breakers` the group must
  /// additionally route no activity to a subsystem whose breaker is open.
  struct AlternativeChoice {
    ActivityId branch_point;
    int group = 0;
  };
  std::optional<AlternativeChoice> FindAlternative(
      const ProcessRuntime& rt, ActivityId act,
      bool avoid_open_breakers) const;
  bool GroupAvoidsOpenBreakers(const ProcessRuntime& rt,
                               const std::vector<ActivityId>& group) const;
  /// `act` routes to a subsystem with an open breaker: degrade to a
  /// reachable ◁-alternative if one exists, else park the activity.
  Result<bool> ParkOrDegrade(ProcessRuntime& rt, ActivityId act,
                             Subsystem* subsystem);
  /// Once per pass: observer notifications for breaker transitions and
  /// aggregation of subsystem health counters into stats_.
  void PollSubsystemHealth();
  Status StartAbort(ProcessRuntime& rt);
  bool AbortedProcessLeavesNoTrace(const ProcessRuntime& rt) const;
  Status FinishProcess(ProcessRuntime& rt, bool committed);
  Status ReleasePreparedIfUnblocked(ProcessRuntime& rt);
  Status EmitActivity(ProcessRuntime& rt, ActivityId act, bool inverse);
  /// Write-ahead logging of a compensation: appends the COMP record and
  /// flushes, making the intention durable before the inverse is invoked.
  Status LogCompensationIntent(ProcessId pid, ActivityId activity);
  Result<bool> GateCompensation(ProcessRuntime& rt, ActivityId compensated);
  Status CompensateSubtree(ProcessRuntime& rt, ActivityId branch_point,
                           int next_group);
  void RecomputeReadyFrom(ProcessRuntime& rt, ActivityId committed);
  void AddSerializationEdges(ProcessId pid,
                             const std::vector<ProcessId>& preds);
  /// Worklist pruning: seeds are the only nodes whose prunability can have
  /// changed since the last call (the invariant: every FinishProcess
  /// leaves the graph fully pruned, and edges added between calls point
  /// only toward active processes).
  void PruneSerializationGraph(std::vector<ProcessId> worklist);
  Status ResolveDeadlock();
  Status CertifyHistory();

  SchedulerOptions options_;
  RecoveryLog* log_;  // may be null (no durability)
  ConflictSpec spec_;
  std::map<ServiceId, Subsystem*> routing_;
  std::vector<Subsystem*> subsystems_;

  /// Slot pid.value() - 1; null until that pid is submitted (and, with
  /// reclaim_terminated, null again once the runtime was recycled).
  std::vector<std::unique_ptr<ProcessRuntime>> runtimes_;
  /// Active pids, sorted ascending — the index behind every "for each
  /// active process" scan (Step, deadlock resolution, the admission
  /// view). Maintained at EmplaceRuntime/FinishProcess, rebuilt by
  /// Recover (replay flips outcomes without FinishProcess).
  std::vector<ProcessId> active_pids_;
  /// Dense flag per pid slot: terminated and serialization-graph
  /// bookkeeping reclaimed.
  std::vector<uint8_t> pruned_;
  /// reclaim_terminated: pruned pids awaiting recycling at the next epoch
  /// boundary, recycled runtime objects ready for reuse, and the dense
  /// outcome table answering OutcomeOf for reclaimed processes.
  std::vector<ProcessId> reclaim_queue_;
  std::vector<std::unique_ptr<ProcessRuntime>> runtime_pool_;
  std::vector<uint8_t> reclaimed_outcome_;
  /// (compensating pid, dependent pid) pairs already counted in the
  /// cascade statistics (the compensation gate re-evaluates every pass).
  std::set<std::pair<int64_t, int64_t>> cascade_counted_;
  ProcessSchedule history_;
  int64_t next_pid_ = 1;
  /// Definitions that already passed Submit's admission checks (see
  /// ValidateDefForBatch). Keyed by pointer: the lifetime contract —
  /// definitions outlive their processes and are immutable once
  /// validated — is what makes the memoization sound.
  std::set<const ProcessDef*> validated_defs_;

  /// Serialization graph (SGT state) — dense slots, no per-query
  /// allocation on the reachability paths.
  SerializationGraph sg_;

  /// service dense index -> processes that emitted an instance of it
  /// (sorted ascending). Conflict partners come from spec_.PartnersOf.
  std::vector<std::vector<ProcessId>> service_emitters_;

  /// Per-protocol admission policy (owns the kSerial token / the
  /// kTwoPhaseLocking lock table).
  std::unique_ptr<AdmissionGuard> guard_;

  std::vector<ProcessLatency> latencies_;
  std::vector<SchedulerObserver*> observers_;
  TwoPhaseCommitCoordinator coordinator_;
  SchedulerStats stats_;
  /// Time base: options_.clock when provided (shared with subsystems /
  /// fault layers), else the private owned_clock_. Advances one tick per
  /// scheduling pass; subsystem-side waiting (latency, backoff) advances a
  /// shared clock further within a pass.
  VirtualClock owned_clock_;
  VirtualClock* clock_ = nullptr;
  /// Last breaker state observed per subsystems_ slot (transition
  /// detection for OnBreakerStateChange).
  std::vector<BreakerState> breaker_seen_;
  /// Set when some activity parked this pass: parking is waiting (for a
  /// cooldown measured on the clock), not deadlock.
  bool parked_this_pass_ = false;
  /// Monotone counter of StartAbort calls, used for progress detection.
  int64_t aborts_started_ = 0;
  /// Consecutive no-progress passes while a voted/decided held sub-process
  /// is waiting on its cross-shard coordinator (see kHeldStallPatience in
  /// ResolveDeadlock). Reset whenever a pass makes progress.
  int64_t held_stall_passes_ = 0;
  /// Set by deadlock resolution when every active process is completing
  /// and mutually blocked: lets exactly one blocked recovery step proceed.
  bool force_next_completion_ = false;
  /// Single-thread ownership detector (see the class comment); mutable
  /// state, so ownership can bind on a const accessor too.
  ThreadAffinityGuard affinity_;
  /// The process the force applies to. Deadlock resolution targets the
  /// Lemma-2-correct step — the pending inverse whose original sits latest
  /// in the history — so that forcing never crosses compensation pairs
  /// that could still be emitted in reverse order (e.g. when a peer's
  /// compensation is merely waiting out a repairable subsystem outage).
  ProcessId force_completion_target_;
};

}  // namespace tpm

#endif  // TPM_CORE_SCHEDULER_H_
