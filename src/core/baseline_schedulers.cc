#include "core/baseline_schedulers.h"

namespace tpm {

std::unique_ptr<TransactionalProcessScheduler> MakePredScheduler(
    DeferMode defer_mode, bool quasi_commit_optimization, RecoveryLog* log) {
  SchedulerOptions options;
  options.protocol = AdmissionProtocol::kPred;
  options.defer_mode = defer_mode;
  options.quasi_commit_optimization = quasi_commit_optimization;
  return std::make_unique<TransactionalProcessScheduler>(options, log);
}

std::unique_ptr<TransactionalProcessScheduler> MakeSerialScheduler(
    RecoveryLog* log) {
  SchedulerOptions options;
  options.protocol = AdmissionProtocol::kSerial;
  return std::make_unique<TransactionalProcessScheduler>(options, log);
}

std::unique_ptr<TransactionalProcessScheduler> MakeLockingScheduler(
    RecoveryLog* log) {
  SchedulerOptions options;
  options.protocol = AdmissionProtocol::kTwoPhaseLocking;
  return std::make_unique<TransactionalProcessScheduler>(options, log);
}

std::unique_ptr<TransactionalProcessScheduler> MakeUnsafeScheduler(
    RecoveryLog* log) {
  SchedulerOptions options;
  options.protocol = AdmissionProtocol::kUnsafe;
  return std::make_unique<TransactionalProcessScheduler>(options, log);
}

}  // namespace tpm
