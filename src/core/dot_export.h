#ifndef TPM_CORE_DOT_EXPORT_H_
#define TPM_CORE_DOT_EXPORT_H_

#include <string>

#include "core/conflict.h"
#include "core/process.h"
#include "core/schedule.h"
#include "core/serializability.h"

namespace tpm {

/// Graphviz (DOT) renderings for documentation and debugging — the same
/// pictures the paper draws: process graphs with solid precedence edges
/// and dashed preference (alternative) markers, and schedules with dashed
/// conflict arcs (Figure 4 style).

/// The process as a digraph: solid edges for the primary precedence order,
/// dashed gray edges labelled "alt n" for alternatives; node shape encodes
/// the activity kind (box = compensatable, diamond = pivot,
/// ellipse = retriable, doubleoctagon = compensatable-retriable).
std::string ProcessToDot(const ProcessDef& def);

/// The schedule as one row per process in event order, with dashed red
/// arcs between conflicting activity instances (Figure 4's dashed arcs).
std::string ScheduleToDot(const ProcessSchedule& schedule,
                          const ConflictSpec& spec);

/// The process-level serialization graph of the schedule.
std::string ConflictGraphToDot(const ProcessSchedule& schedule,
                               const ConflictSpec& spec);

}  // namespace tpm

#endif  // TPM_CORE_DOT_EXPORT_H_
