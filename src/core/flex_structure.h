#ifndef TPM_CORE_FLEX_STRUCTURE_H_
#define TPM_CORE_FLEX_STRUCTURE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/process.h"

namespace tpm {

/// Structural validation of the well-formed flex structure (§3.1,
/// [ZNBB94]) and derived queries.
///
/// A basic well-formed flex structure is a set of compensatable activities
/// followed by one pivot activity which is followed by a set of retriable
/// activities. Recursively, the pivot may instead be succeeded by a complete
/// well-formed flex structure, provided an alternative consisting only of
/// retriable activities exists for it. Processes with this structure have
/// the *guaranteed termination* property: at least one execution path
/// completes with effects, all others leave no effects.
///
/// The grammar checked here (the ZNBB94 sufficient condition):
///
///   WF(starts) :=
///     a partial order of compensatable activities (no alternative edges
///     may leave a compensatable activity), converging on at most one
///     non-compensatable successor `p`;
///     - no `p`               -> OK (pure compensatable structure)
///     - `p` retriable        -> its entire remainder must be retriable
///                               with no alternatives
///     - `p` pivot, successor groups g0 < g1 < ... < gk:
///         k == 0: subtree(g0) must be all retriable,
///                 or WF(g0) if followed by an all-retriable alternative
///                 is impossible -> then g0 itself must be all retriable
///         k >= 1: subtree(gk) all retriable, and WF(gi) for i < k.
class FlexValidator {
 public:
  explicit FlexValidator(const ProcessDef* def) : def_(def) {}

  /// Returns OK iff the process has well-formed flex structure (and hence
  /// guaranteed termination).
  Status Validate() const;

 private:
  Status ValidateStructure(const std::vector<ActivityId>& starts) const;

  const ProcessDef* def_;
};

/// Convenience wrapper around FlexValidator.
Status ValidateWellFormedFlex(const ProcessDef& def);

/// Returns the state-determining activity s_{i_0}: the first
/// non-compensatable activity of a process with guaranteed termination (the
/// activity whose commit moves the process from B-REC to F-REC). Error if
/// the process is purely compensatable (no such activity).
Result<ActivityId> StateDeterminingActivity(const ProcessDef& def);

/// One terminal execution of a process: the activity invocations in order,
/// including failed invocations and compensations.
struct ValidExecution {
  /// Activity steps in execution order.
  struct Step {
    ActivityId activity;
    bool inverse = false;  // compensation step
    bool failed = false;   // invocation terminated with abort
  };
  std::vector<Step> steps;
  /// True if the execution reaches well-defined (committing) termination,
  /// false if it ends in backward recovery (overall abort, effect-free).
  bool committed = true;

  std::string ToString() const;
};

/// Enumerates the distinct valid executions of a process (Example 1 /
/// Figure 3): for every non-retriable activity we branch on
/// success/failure; executions that leave an identical committed state are
/// merged; the execution in which nothing at all was executed (very first
/// activity fails) is not counted, matching the four executions of P_1 in
/// Figure 3. Retriable activities are taken as committing (their failed
/// invocations do not create new outcomes).
Result<std::vector<ValidExecution>> EnumerateValidExecutions(
    const ProcessDef& def);

}  // namespace tpm

#endif  // TPM_CORE_FLEX_STRUCTURE_H_
