#include "core/recoverability.h"

#include <map>

#include "common/str_util.h"

namespace tpm {

std::string ProcRecViolation::ToString() const {
  return StrCat("Proc-REC clause ", clause, " violated by ",
                ActivityInstanceToString(earlier), " <<_S ",
                ActivityInstanceToString(later));
}

ProcRecOutcome AnalyzeProcessRecoverability(const ProcessSchedule& schedule,
                                            const ConflictSpec& spec) {
  ProcRecOutcome outcome;
  const auto& events = schedule.events();

  // Commit event position per process.
  std::map<ProcessId, size_t> commit_pos;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type == EventType::kCommit) {
      commit_pos[events[i].process] = i;
    }
  }

  // Position of the next non-compensatable original activity of `pid`
  // strictly after position `from`, or SIZE_MAX.
  auto next_non_comp = [&](ProcessId pid, size_t from) -> size_t {
    const ProcessDef* def = schedule.DefOf(pid);
    for (size_t k = from + 1; k < events.size(); ++k) {
      const ScheduleEvent& e = events[k];
      if (e.type != EventType::kActivity || e.aborted_invocation) continue;
      if (e.act.process != pid || e.act.inverse) continue;
      if (IsNonCompensatable(def->KindOf(e.act.activity))) return k;
    }
    return SIZE_MAX;
  };

  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type != EventType::kActivity ||
        events[i].aborted_invocation) {
      continue;
    }
    for (size_t j = i + 1; j < events.size(); ++j) {
      if (events[j].type != EventType::kActivity ||
          events[j].aborted_invocation) {
        continue;
      }
      if (!schedule.InstancesConflict(events[i].act, events[j].act, spec)) {
        continue;
      }
      const ProcessId pi = events[i].act.process;
      const ProcessId pj = events[j].act.process;

      // Clause 1: C_i <<_S C_j.
      auto ci = commit_pos.find(pi);
      auto cj = commit_pos.find(pj);
      if (cj != commit_pos.end() &&
          (ci == commit_pos.end() || ci->second > cj->second)) {
        outcome.violations.push_back(
            ProcRecViolation{events[i].act, events[j].act, 1});
      }

      // Clause 2: next non-compensatable of P_j after j must succeed the
      // next non-compensatable of P_i after i.
      size_t a_jm = next_non_comp(pj, j);
      size_t a_in = next_non_comp(pi, i);
      if (a_jm != SIZE_MAX && a_in != SIZE_MAX && a_jm < a_in) {
        outcome.violations.push_back(
            ProcRecViolation{events[i].act, events[j].act, 2});
      }
    }
  }
  outcome.process_recoverable = outcome.violations.empty();
  return outcome;
}

bool IsProcessRecoverable(const ProcessSchedule& schedule,
                          const ConflictSpec& spec) {
  return AnalyzeProcessRecoverability(schedule, spec).process_recoverable;
}

}  // namespace tpm
