#ifndef TPM_CORE_ACTIVITY_H_
#define TPM_CORE_ACTIVITY_H_

#include <ostream>
#include <string>

#include "common/ids.h"

namespace tpm {

/// Termination guarantee of an activity (flex transaction model, §3.1).
///
/// * kCompensatable — a compensating activity a^-1 exists such that
///   <a a^-1> is effect-free (Def. 2). The compensating activity itself is
///   retriable and not compensatable.
/// * kPivot — neither compensatable nor retriable: once committed its effect
///   is permanent, and an invocation may fail for good (Def. 4).
/// * kRetriable — guaranteed to terminate with commit after finitely many
///   invocations (Def. 3). Retriable activities are not compensatable.
/// * kCompensatableRetriable — the extension of the paper's footnote 2:
///   guaranteed to commit like a retriable AND equipped with a compensating
///   activity, "to give a scheduler more options for executing alternatives
///   in case of failures". Not part of the strict flex model; opt-in.
enum class ActivityKind {
  kCompensatable,
  kPivot,
  kRetriable,
  kCompensatableRetriable,
};

/// Returns "compensatable", "pivot", "retriable", or
/// "compensatable-retriable".
const char* ActivityKindToString(ActivityKind kind);

/// True for pivot and (plain) retriable activities; these are the
/// "state-determining" candidates of §3.1 — once one commits, the process
/// can no longer be rolled back and enters F-REC. A
/// compensatable-retriable activity IS compensatable, so it never
/// determines state.
inline bool IsNonCompensatable(ActivityKind kind) {
  return kind == ActivityKind::kPivot || kind == ActivityKind::kRetriable;
}

/// True for activities with the Def. 3 guarantee (they never fail).
inline bool IsRetriableKind(ActivityKind kind) {
  return kind == ActivityKind::kRetriable ||
         kind == ActivityKind::kCompensatableRetriable;
}

/// True for activities with a compensating activity (Def. 2).
inline bool IsCompensatableKind(ActivityKind kind) {
  return kind == ActivityKind::kCompensatable ||
         kind == ActivityKind::kCompensatableRetriable;
}

/// One activity occurrence inside a schedule: the activity `activity` of
/// process `process`, either the original activity or its compensating
/// activity (a^-1) when `inverse` is true.
struct ActivityInstance {
  ProcessId process;
  ActivityId activity;
  bool inverse = false;

  friend bool operator==(const ActivityInstance& a,
                         const ActivityInstance& b) {
    return a.process == b.process && a.activity == b.activity &&
           a.inverse == b.inverse;
  }
  friend bool operator!=(const ActivityInstance& a,
                         const ActivityInstance& b) {
    return !(a == b);
  }
  friend bool operator<(const ActivityInstance& a, const ActivityInstance& b) {
    if (a.process != b.process) return a.process < b.process;
    if (a.activity != b.activity) return a.activity < b.activity;
    return a.inverse < b.inverse;
  }
};

/// Paper-style rendering, e.g. "a1_3" or "a1_3^-1".
std::string ActivityInstanceToString(const ActivityInstance& inst);

std::ostream& operator<<(std::ostream& os, const ActivityInstance& inst);

}  // namespace tpm

#endif  // TPM_CORE_ACTIVITY_H_
