#include "core/scheduler.h"

#include <algorithm>

#include "common/str_util.h"
#include "core/flex_structure.h"
#include "core/pred.h"

namespace tpm {

TransactionalProcessScheduler::TransactionalProcessScheduler(
    SchedulerOptions options, RecoveryLog* log)
    : options_(options), log_(log) {
  clock_ = options_.clock != nullptr ? options_.clock : &owned_clock_;
  spec_.set_op_commutativity_enabled(options_.use_op_commutativity);
  guard_ = MakeAdmissionGuard(*this, &stats_);
}

Status TransactionalProcessScheduler::RegisterSubsystem(Subsystem* subsystem) {
  CheckThread("RegisterSubsystem");
  if (subsystem == nullptr) {
    return Status::InvalidArgument("null subsystem");
  }
  for (ServiceId service : subsystem->services().AllIds()) {
    if (routing_.count(service) > 0) {
      return Status::AlreadyExists(
          StrCat("service ", service, " already routed"));
    }
    routing_[service] = subsystem;
  }
  subsystems_.push_back(subsystem);
  subsystem->services().DeriveConflicts(&spec_);
  // Intern every routed service so the emitter index has a dense row for
  // it even before any conflict mentions it.
  for (ServiceId service : subsystem->services().AllIds()) {
    spec_.RegisterService(service);
  }
  EnsureEmitterRows();
  return Status::OK();
}

Status TransactionalProcessScheduler::UnregisterSubsystem(
    Subsystem* subsystem) {
  CheckThread("UnregisterSubsystem");
  if (subsystem == nullptr) return Status::InvalidArgument("null subsystem");
  auto slot = std::find(subsystems_.begin(), subsystems_.end(), subsystem);
  if (slot == subsystems_.end()) {
    return Status::NotFound(
        StrCat("subsystem '", subsystem->name(), "' is not registered"));
  }
  const auto touches = [&](ServiceId service) {
    if (!service.valid()) return false;
    auto it = routing_.find(service);
    return it != routing_.end() && it->second == subsystem;
  };
  for (ProcessId pid : active_pids_) {
    const ProcessRuntime* rt = FindRuntime(pid);
    if (rt == nullptr || rt->def == nullptr) continue;
    for (const ActivityDecl& decl : rt->def->activities()) {
      if (touches(decl.service) || touches(decl.compensation_service)) {
        return Status::FailedPrecondition(StrCat(
            "subsystem '", subsystem->name(), "': active process ",
            pid.value(), " still touches its services (quiesce first)"));
      }
    }
  }
  for (auto it = routing_.begin(); it != routing_.end();) {
    it = it->second == subsystem ? routing_.erase(it) : std::next(it);
  }
  const size_t index = static_cast<size_t>(slot - subsystems_.begin());
  subsystems_.erase(slot);
  if (index < breaker_seen_.size()) {
    breaker_seen_.erase(breaker_seen_.begin() +
                        static_cast<std::ptrdiff_t>(index));
  }
  // The memoized admission checks embed "every service routed here"; a
  // shrunken routing table invalidates them wholesale.
  validated_defs_.clear();
  return Status::OK();
}

void TransactionalProcessScheduler::AddConflict(ServiceId a, ServiceId b) {
  CheckThread("AddConflict");
  spec_.AddConflict(a, b);
  EnsureEmitterRows();
}

int64_t TransactionalProcessScheduler::ReservePidRange(int64_t count) {
  CheckThread("ReservePidRange");
  const int64_t base = next_pid_;
  next_pid_ += count;
  return base;
}

void TransactionalProcessScheduler::ForEachActiveDef(
    const std::function<void(ProcessId, const ProcessDef*)>& fn) const {
  CheckThread("ForEachActiveDef");
  for (ProcessId pid : active_pids_) {
    const ProcessRuntime* rt = FindRuntime(pid);
    if (rt != nullptr) fn(pid, rt->def);
  }
}

Result<Subsystem*> TransactionalProcessScheduler::RouteService(
    ServiceId service) const {
  auto it = routing_.find(service);
  if (it == routing_.end()) {
    return Status::NotFound(StrCat("service ", service, " not registered"));
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Dense runtime table / emitter index / SchedulerView.

TransactionalProcessScheduler::ProcessRuntime*
TransactionalProcessScheduler::FindRuntime(ProcessId pid) {
  if (pid.value() < 1) return nullptr;
  size_t slot = static_cast<size_t>(pid.value()) - 1;
  return slot < runtimes_.size() ? runtimes_[slot].get() : nullptr;
}

const TransactionalProcessScheduler::ProcessRuntime*
TransactionalProcessScheduler::FindRuntime(ProcessId pid) const {
  if (pid.value() < 1) return nullptr;
  size_t slot = static_cast<size_t>(pid.value()) - 1;
  return slot < runtimes_.size() ? runtimes_[slot].get() : nullptr;
}

void TransactionalProcessScheduler::EmplaceRuntime(
    ProcessId pid, std::unique_ptr<ProcessRuntime> rt) {
  size_t slot = static_cast<size_t>(pid.value()) - 1;
  if (slot >= runtimes_.size()) runtimes_.resize(slot + 1);
  runtimes_[slot] = std::move(rt);
  // Pids are handed out ascending, so the index append is O(1); the
  // sorted-insert fallback covers out-of-order replay.
  if (active_pids_.empty() || active_pids_.back() < pid) {
    active_pids_.push_back(pid);
  } else {
    auto it = std::lower_bound(active_pids_.begin(), active_pids_.end(), pid);
    if (it == active_pids_.end() || *it != pid) active_pids_.insert(it, pid);
  }
}

void TransactionalProcessScheduler::DeactivatePid(ProcessId pid) {
  auto it = std::lower_bound(active_pids_.begin(), active_pids_.end(), pid);
  if (it != active_pids_.end() && *it == pid) active_pids_.erase(it);
}

void TransactionalProcessScheduler::MarkPruned(ProcessId pid) {
  const size_t slot = static_cast<size_t>(pid.value() - 1);
  if (slot >= pruned_.size()) pruned_.resize(slot + 1, 0);
  pruned_[slot] = 1;
  if (options_.reclaim_terminated) reclaim_queue_.push_back(pid);
}

std::unique_ptr<TransactionalProcessScheduler::ProcessRuntime>
TransactionalProcessScheduler::AcquireRuntime(ProcessId pid,
                                              const ProcessDef* def) {
  if (runtime_pool_.empty()) {
    return std::make_unique<ProcessRuntime>(pid, def);
  }
  std::unique_ptr<ProcessRuntime> rt = std::move(runtime_pool_.back());
  runtime_pool_.pop_back();
  rt->Reset(pid, def);
  return rt;
}

namespace {
/// How many released processes accumulate before the history's event
/// vector is compacted (Compact is O(events), so batching keeps the
/// amortized cost per event constant).
constexpr size_t kHistoryCompactBatch = 1024;
}  // namespace

void TransactionalProcessScheduler::DrainReclaimables() {
  if (!options_.reclaim_terminated || reclaim_queue_.empty()) return;
  for (ProcessId pid : reclaim_queue_) {
    const size_t slot = static_cast<size_t>(pid.value() - 1);
    if (slot >= runtimes_.size() || runtimes_[slot] == nullptr) continue;
    if (slot >= reclaimed_outcome_.size()) {
      reclaimed_outcome_.resize(slot + 1,
                                static_cast<uint8_t>(ProcessOutcome::kActive));
    }
    reclaimed_outcome_[slot] =
        static_cast<uint8_t>(runtimes_[slot]->state.outcome());
    history_.ReleaseProcess(pid);
    runtime_pool_.push_back(std::move(runtimes_[slot]));
  }
  reclaim_queue_.clear();
  // Cascade bookkeeping referencing recycled processes can never be
  // re-evaluated (the compensation gate only looks at live runtimes).
  std::erase_if(cascade_counted_, [&](const std::pair<int64_t, int64_t>& p) {
    return FindRuntime(ProcessId(p.first)) == nullptr ||
           FindRuntime(ProcessId(p.second)) == nullptr;
  });
  if (history_.pending_release_count() >= kHistoryCompactBatch) {
    history_.Compact();
  }
}

void TransactionalProcessScheduler::EnsureEmitterRows() {
  if (service_emitters_.size() < spec_.NumServices()) {
    service_emitters_.resize(spec_.NumServices());
  }
}

void TransactionalProcessScheduler::AddEmitter(ServiceId service,
                                               ProcessId pid) {
  int index = spec_.RegisterService(service);
  EnsureEmitterRows();
  std::vector<ProcessId>& row = service_emitters_[index];
  auto it = std::lower_bound(row.begin(), row.end(), pid);
  if (it == row.end() || *it != pid) row.insert(it, pid);
}

void TransactionalProcessScheduler::RemoveEmitter(ProcessId pid) {
  for (std::vector<ProcessId>& row : service_emitters_) {
    auto it = std::lower_bound(row.begin(), row.end(), pid);
    if (it != row.end() && *it == pid) row.erase(it);
  }
}

std::optional<SchedulerView::ProcessView>
TransactionalProcessScheduler::FindProcess(ProcessId pid) const {
  const ProcessRuntime* rt = FindRuntime(pid);
  if (rt == nullptr) return std::nullopt;
  return ViewOf(*rt);
}

void TransactionalProcessScheduler::ForEachProcess(
    const std::function<void(const ProcessView&)>& fn) const {
  for (const auto& rt : runtimes_) {
    if (rt != nullptr) fn(ViewOf(*rt));
  }
}

void TransactionalProcessScheduler::ForEachActiveProcess(
    const std::function<void(const ProcessView&)>& fn) const {
  // active_pids_ is sorted ascending, so visit order matches the slot scan
  // of ForEachProcess restricted to active processes.
  for (ProcessId pid : active_pids_) {
    const ProcessRuntime* rt = FindRuntime(pid);
    if (rt != nullptr) fn(ViewOf(*rt));
  }
}

bool TransactionalProcessScheduler::HasEmitted(ProcessId pid,
                                               ServiceId service) const {
  int index = spec_.IndexOf(service);
  if (index < 0 || static_cast<size_t>(index) >= service_emitters_.size()) {
    return false;
  }
  const std::vector<ProcessId>& row = service_emitters_[index];
  return std::binary_search(row.begin(), row.end(), pid);
}

void TransactionalProcessScheduler::ForEachEmitter(
    ServiceId service, const std::function<void(ProcessId)>& fn) const {
  int index = spec_.IndexOf(service);
  if (index < 0 || static_cast<size_t>(index) >= service_emitters_.size()) {
    return;
  }
  for (ProcessId pid : service_emitters_[index]) fn(pid);
}

// ---------------------------------------------------------------------------

Result<ProcessId> TransactionalProcessScheduler::Submit(
    const ProcessDef* def, int64_t param,
    std::vector<ProcessDependency> dependencies) {
  CheckThread("Submit");
  DrainReclaimables();
  if (def == nullptr || !def->validated()) {
    return Status::InvalidArgument("process definition missing/unvalidated");
  }
  if (options_.reclaim_terminated && !dependencies.empty()) {
    // A dependency pins its target runtime (the execution path dereferences
    // it unchecked), which the reclaim protocol cannot guarantee.
    return Status::InvalidArgument(
        "inter-process dependencies are unsupported with reclaim_terminated");
  }
  TPM_RETURN_IF_ERROR(ValidateWellFormedFlex(*def));
  for (const ActivityDecl& decl : def->activities()) {
    TPM_RETURN_IF_ERROR(RouteService(decl.service).status());
    if (decl.compensation_service.valid()) {
      TPM_RETURN_IF_ERROR(RouteService(decl.compensation_service).status());
    }
  }
  for (const ProcessDependency& dep : dependencies) {
    const ProcessRuntime* other = FindRuntime(dep.process);
    if (other == nullptr) {
      return Status::NotFound(
          StrCat("dependency on unknown process P", dep.process));
    }
    if (!other->def->HasActivity(dep.activity)) {
      return Status::NotFound(StrCat("dependency on unknown activity a",
                                     dep.activity, " of P", dep.process));
    }
  }
  ProcessId pid(next_pid_++);
  std::unique_ptr<ProcessRuntime> runtime = AcquireRuntime(pid, def);
  runtime->param = param;
  runtime->dependencies = std::move(dependencies);
  runtime->submitted_at = clock_->now();
  for (ActivityId root : def->Roots()) runtime->ready.insert(root);
  TPM_RETURN_IF_ERROR(history_.AddProcess(pid, def));
  if (log_ != nullptr) {
    TPM_RETURN_IF_ERROR(log_->Append({SchedulerLogRecord::Kind::kProcessBegin,
                                      pid, ActivityId(), def->name(), param}));
  }
  EmplaceRuntime(pid, std::move(runtime));
  return pid;
}

Status TransactionalProcessScheduler::ValidateDefForBatch(
    const ProcessDef* def) {
  if (def == nullptr || !def->validated()) {
    return Status::InvalidArgument("process definition missing/unvalidated");
  }
  if (validated_defs_.count(def) > 0) return Status::OK();
  TPM_RETURN_IF_ERROR(ValidateWellFormedFlex(*def));
  for (const ActivityDecl& decl : def->activities()) {
    TPM_RETURN_IF_ERROR(RouteService(decl.service).status());
    if (decl.compensation_service.valid()) {
      TPM_RETURN_IF_ERROR(RouteService(decl.compensation_service).status());
    }
  }
  validated_defs_.insert(def);
  return Status::OK();
}

std::vector<Result<ProcessId>> TransactionalProcessScheduler::SubmitBatch(
    const std::vector<BatchSubmission>& batch) {
  CheckThread("SubmitBatch");
  DrainReclaimables();
  std::vector<Result<ProcessId>> results(
      batch.size(), Result<ProcessId>(Status::Internal("batch slot unset")));
  // Phase 1: admission checks, memoized per definition — the first
  // occurrence of a definition pays the full well-formedness + routing
  // validation, every repeat is a set lookup.
  std::vector<size_t> valid;
  valid.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    Status checked = ValidateDefForBatch(batch[i].def);
    if (checked.ok()) {
      valid.push_back(i);
    } else {
      results[i] = checked;
    }
  }
  // Phase 2: allocate the pid range and extend the serialization graph
  // with one isolated node per admitted process; the guard certifies the
  // whole extension with ONE incremental cycle check (fresh nodes have no
  // incident edges, so the extension cannot close a cycle — the guard
  // verifies exactly that).
  const int64_t first_pid = next_pid_;
  std::vector<ProcessId> fresh;
  fresh.reserve(valid.size());
  for (size_t k = 0; k < valid.size(); ++k) {
    ProcessId pid(next_pid_++);
    sg_.AddNode(pid);
    fresh.push_back(pid);
  }
  if (!fresh.empty() &&
      guard_->AdmitBatch(fresh) != AdmissionDecision::kAdmit) {
    // Split on rejection: undo the speculative extension and fall back to
    // per-process admission, which reproduces the one-at-a-time outcomes
    // exactly (same pid sequence — nothing else consumed pids).
    for (ProcessId pid : fresh) sg_.RemoveNode(pid);
    next_pid_ = first_pid;
    for (size_t i : valid) {
      results[i] = Submit(batch[i].def, batch[i].param);
    }
    return results;
  }
  // Phase 3: materialize runtimes, history entries and WAL records in
  // batch order — the record sequence is exactly the per-process one.
  size_t k = 0;
  for (size_t i : valid) {
    const ProcessDef* def = batch[i].def;
    const ProcessId pid = fresh[k++];
    std::unique_ptr<ProcessRuntime> runtime = AcquireRuntime(pid, def);
    runtime->param = batch[i].param;
    runtime->submitted_at = clock_->now();
    for (ActivityId root : def->Roots()) runtime->ready.insert(root);
    Status recorded = history_.AddProcess(pid, def);
    if (recorded.ok() && log_ != nullptr) {
      recorded =
          log_->Append({SchedulerLogRecord::Kind::kProcessBegin, pid,
                        ActivityId(), def->name(), batch[i].param});
    }
    if (!recorded.ok()) {
      sg_.RemoveNode(pid);
      results[i] = recorded;
      continue;
    }
    EmplaceRuntime(pid, std::move(runtime));
    results[i] = pid;
  }
  return results;
}

Result<ProcessId> TransactionalProcessScheduler::SubmitHeld(
    const ProcessDef* def, int64_t param) {
  TPM_ASSIGN_OR_RETURN(ProcessId pid, Submit(def, param));
  FindRuntime(pid)->hold_commit = true;
  ++stats_.spanning_admitted;
  return pid;
}

Status TransactionalProcessScheduler::ResolveHeldCommit(ProcessId pid,
                                                        bool commit) {
  CheckThread("ResolveHeldCommit");
  ProcessRuntime* rt = FindRuntime(pid);
  if (rt == nullptr) {
    return Status::NotFound(StrCat("no such process: P", pid));
  }
  if (!rt->state.IsActive()) {
    // Already terminal (e.g. aborted before voting, or a duplicate
    // decision); the coordinator treats this as already-resolved.
    return Status::NotFound(StrCat("P", pid, " already terminated"));
  }
  if (!rt->hold_commit) {
    return Status::FailedPrecondition(
        StrCat("P", pid, " is not a held sub-process"));
  }
  rt->hold_commit = false;
  rt->commit_held = false;
  if (commit) {
    // The prepared branches release through the normal Lemma-1 machinery
    // (ReleasePreparedIfUnblocked + Def. 11 commit-wait); the flag keeps
    // the process off the deadlock-victim list until it commits.
    rt->decided_commit = true;
    return Status::OK();
  }
  return StartAbort(*rt);
}

Status TransactionalProcessScheduler::AddExternalOrder(ProcessId before,
                                                       ProcessId after) {
  CheckThread("AddExternalOrder");
  if (FindRuntime(after) == nullptr) {
    return Status::NotFound(StrCat("no such process: P", after));
  }
  sg_.AddEdge(before, after);
  return Status::OK();
}

int64_t TransactionalProcessScheduler::held_undecided_count() const {
  CheckThread("held_undecided_count");
  int64_t count = 0;
  for (ProcessId pid : active_pids_) {
    const ProcessRuntime* rt = FindRuntime(pid);
    if (rt != nullptr && rt->state.IsActive() &&
        (rt->hold_commit || rt->decided_commit)) {
      ++count;
    }
  }
  return count;
}

ProcessOutcome TransactionalProcessScheduler::OutcomeOf(ProcessId pid) const {
  CheckThread("OutcomeOf");
  const ProcessRuntime* rt = FindRuntime(pid);
  if (rt != nullptr) return rt->state.outcome();
  if (options_.reclaim_terminated && pid.value() >= 1) {
    const size_t slot = static_cast<size_t>(pid.value() - 1);
    if (slot < reclaimed_outcome_.size()) {
      return static_cast<ProcessOutcome>(reclaimed_outcome_[slot]);
    }
  }
  return ProcessOutcome::kActive;
}

// ---------------------------------------------------------------------------
// Serialization-graph bookkeeping.

void TransactionalProcessScheduler::AddSerializationEdges(
    ProcessId pid, const std::vector<ProcessId>& preds) {
  for (ProcessId p : preds) sg_.AddEdge(p, pid);
}

void TransactionalProcessScheduler::PruneSerializationGraph(
    std::vector<ProcessId> worklist) {
  // A terminated process with no predecessors can never again lie on a
  // cycle (edges are only ever added toward active requesters), so its
  // graph bookkeeping can be dropped — recursively, since its removal may
  // free successors. The runtime itself is kept for outcome queries (until
  // reclaim_terminated recycles it).
  //
  // Worklist instead of a full fixpoint scan: the invariant is that every
  // FinishProcess leaves the graph fully pruned, and between calls edges
  // are only added toward active processes — so the only nodes whose
  // prunability can have changed are the seeds (the process that just
  // terminated, plus the successors its removal exposed). Popping those and
  // cascading through exposed successors therefore removes exactly the set
  // the full scan's fixpoint would.
  while (!worklist.empty()) {
    const ProcessId pid = worklist.back();
    worklist.pop_back();
    const ProcessRuntime* rt = FindRuntime(pid);
    if (rt == nullptr || rt->state.IsActive() || IsPruned(pid) ||
        sg_.HasPredecessors(pid)) {
      continue;
    }
    std::vector<ProcessId> exposed;
    sg_.ForEachSuccessor(pid, [&](ProcessId succ) { exposed.push_back(succ); });
    sg_.RemoveNode(pid);
    RemoveEmitter(pid);
    MarkPruned(pid);
    for (ProcessId succ : exposed) worklist.push_back(succ);
  }
}

// ---------------------------------------------------------------------------
// Execution.

Status TransactionalProcessScheduler::EmitActivity(ProcessRuntime& rt,
                                                   ActivityId act,
                                                   bool inverse) {
  const ActivityDecl& emitted_decl = rt.def->activity(act);
  AddSerializationEdges(
      rt.pid, ConflictingPredecessors(*this, rt.pid, emitted_decl.service));
  if (!inverse && IsNonCompensatable(emitted_decl.kind) &&
      options_.protocol == AdmissionProtocol::kPred &&
      options_.ablation.completion_preorder) {
    // Pre-order this process before every active process whose potential
    // completion conflicts with the frozen activity (§3.5): in any
    // completed schedule the conflicting completion activity follows it.
    for (ProcessId v :
         VirtualCompletionTargets(*this, rt.pid, emitted_decl.service)) {
      sg_.AddEdge(rt.pid, v);
    }
  }
  ActivityInstance inst{rt.pid, act, inverse};
  TPM_RETURN_IF_ERROR(history_.Append(ScheduleEvent::Activity(inst)));
  if (inverse) {
    // The COMP record was already logged write-ahead by the caller (see
    // LogCompensationIntent): the intention is durable before the inverse
    // executes, so recovery never re-applies it.
    TPM_RETURN_IF_ERROR(rt.state.RecordCompensation(act));
    ++stats_.compensations;
  } else {
    TPM_RETURN_IF_ERROR(rt.state.RecordCommit(act));
    ++stats_.activities_committed;
    // Forward activities are logged after the subsystem commit, as facts:
    // losing the record leaves an orphaned forward effect that recovery
    // tolerates, which is benign compared to replaying an inverse twice.
    if (log_ != nullptr) {
      TPM_RETURN_IF_ERROR(
          log_->Append({SchedulerLogRecord::Kind::kActivityCommitted, rt.pid,
                        act, "", 0}));
    }
    rt.active_group[act] = 0;
    RecomputeReadyFrom(rt, act);
  }
  AddEmitter(emitted_decl.service, rt.pid);
  if (!rt.started) rt.started_at = clock_->now();
  rt.started = true;
  for (SchedulerObserver* observer : observers_) {
    observer->OnActivityCommitted(rt.pid, act, inverse);
  }
  {
    auto duration = options_.service_durations.find(
        inverse ? emitted_decl.compensation_service : emitted_decl.service);
    if (duration != options_.service_durations.end()) {
      rt.busy_until = clock_->now() + duration->second;
    }
  }
  if (options_.certify_prefixes) {
    TPM_RETURN_IF_ERROR(CertifyHistory());
  }
  return Status::OK();
}

Status TransactionalProcessScheduler::LogCompensationIntent(
    ProcessId pid, ActivityId activity) {
  if (log_ == nullptr) return Status::OK();
  TPM_RETURN_IF_ERROR(log_->Append(
      {SchedulerLogRecord::Kind::kActivityCompensated, pid, activity, "", 0}));
  // In asynchronous mode the append alone is volatile; the intention must
  // be durable before the inverse runs, or a crash between the two could
  // make recovery execute the inverse a second time (double-compensation).
  return log_->Flush();
}

Result<bool> TransactionalProcessScheduler::GateCompensation(
    ProcessRuntime& rt, ActivityId compensated) {
  // Compensating `compensated` invalidates everything a concurrent process
  // derived from it (§2.2): every process that executed a conflicting
  // activity after the original must undo it FIRST — Lemma 2 requires
  // compensations in reverse order of the originals — so such processes
  // are cascade-aborted and this compensation waits for their conflicting
  // effects to disappear. Conflicting effects that can no longer be undone
  // (committed processes, non-compensatable activities) are the Figure 1
  // anomaly: possible only under kUnsafe, counted and skipped over.
  ServiceId service = rt.def->activity(compensated).service;
  const auto& events = history_.events();
  // Position of the most recent original commit of `compensated`.
  size_t original_pos = 0;
  for (size_t i = events.size(); i-- > 0;) {
    const ScheduleEvent& e = events[i];
    if (e.type == EventType::kActivity && !e.aborted_invocation &&
        !e.act.inverse && e.act.process == rt.pid &&
        e.act.activity == compensated) {
      original_pos = i;
      break;
    }
  }
  bool wait = false;
  for (size_t i = original_pos + 1; i < events.size(); ++i) {
    const ScheduleEvent& e = events[i];
    if (e.type != EventType::kActivity || e.aborted_invocation ||
        e.act.inverse) {
      continue;
    }
    if (e.act.process == rt.pid) continue;
    if (!spec_.ServicesConflict(service, history_.ServiceOf(e.act))) continue;

    ProcessRuntime* other_rt = FindRuntime(e.act.process);
    if (other_rt == nullptr) continue;
    ProcessRuntime& other = *other_rt;
    const bool still_effective =
        other.state.IsCommitted(e.act.activity) &&
        !other.state.IsCompensated(e.act.activity);
    if (!still_effective) continue;

    const auto key = std::make_pair(rt.pid.value(),
                                    e.act.process.value());
    if (!other.state.IsActive()) {
      // The dependent already terminated with the stale effect frozen in —
      // unreachable under the PRED protocol (Lemma 1 / commit-order
      // deferral), the §2.2 inconsistency under kUnsafe.
      if (cascade_counted_.insert(key).second) {
        ++stats_.irrecoverable_cascades;
      }
      continue;
    }
    // Will the dependent's abort actually undo the activity? Yes for any
    // compensatable in B-REC, and in F-REC for compensatables past the
    // last state-determining element; no for non-compensatables and for
    // quasi-committed effects (F-REC, pre-pivot — Example 10).
    bool will_undo = false;
    if (IsCompensatableKind(other.def->KindOf(e.act.activity))) {
      if (other.state.recovery_state() ==
          RecoveryState::kBackwardRecoverable) {
        will_undo = true;
      } else {
        const std::vector<ActivityId> effective =
            other.state.EffectiveCommitted();
        size_t last_noncomp = 0;
        size_t e_pos = SIZE_MAX;
        for (size_t k = 0; k < effective.size(); ++k) {
          if (IsNonCompensatable(other.def->KindOf(effective[k]))) {
            last_noncomp = k;
          }
          if (effective[k] == e.act.activity) e_pos = k;
        }
        will_undo = e_pos != SIZE_MAX && e_pos > last_noncomp;
      }
    }
    if (other.commit_held || other.decided_commit) {
      // A 2PC participant that voted "prepared" (or already received a
      // commit decision) cannot be unilaterally cascade-aborted — only its
      // coordinator may abort it. Our compensation waits for the decision
      // to land; the external coordinator is guaranteed to deliver one.
      wait = true;
      continue;
    }
    if (!other.completing() ||
        other.on_drain == DrainAction::kActivateGroup) {
      // Abort the dependent process (cascading abort, §2.2). A pending
      // branch switch is superseded by the full abort.
      other.pending.clear();
      other.on_drain = DrainAction::kNone;
      if (cascade_counted_.insert(key).second) {
        ++stats_.cascading_aborts;
        if (!will_undo) ++stats_.irrecoverable_cascades;
      }
      TPM_RETURN_IF_ERROR(StartAbort(other));
    }
    // Lemma 2: our compensation must follow the dependent's.
    if (will_undo) wait = true;
  }
  return !wait;
}

void TransactionalProcessScheduler::RecomputeReadyFrom(ProcessRuntime& rt,
                                                       ActivityId committed) {
  int group = rt.active_group.count(committed) > 0
                  ? rt.active_group[committed]
                  : 0;
  for (ActivityId s : rt.def->SuccessorsInGroup(committed, group)) {
    if (rt.state.IsCommitted(s)) continue;
    bool all_ready = true;
    for (ActivityId p : rt.def->Predecessors(s)) {
      auto pref = rt.def->EdgePreference(p, s);
      int active = rt.active_group.count(p) > 0 ? rt.active_group[p] : 0;
      if (*pref != active) continue;  // edge not on the active branch
      if (!rt.state.IsCommitted(p)) {
        all_ready = false;
        break;
      }
    }
    if (all_ready) rt.ready.insert(s);
  }
}

Result<bool> TransactionalProcessScheduler::ExecuteActivity(ProcessRuntime& rt,
                                                            ActivityId act) {
  const ActivityDecl& decl = rt.def->activity(act);
  TPM_ASSIGN_OR_RETURN(Subsystem * subsystem, RouteService(decl.service));
  // Failure-domain gate: never invoke against an open breaker — degrade to
  // a reachable ◁-alternative or park (no Def. 3 retry is burned).
  if (subsystem->breaker_state() == BreakerState::kOpen) {
    return ParkOrDegrade(rt, act, subsystem);
  }
  if (!rt.parked.empty() && rt.parked.erase(act) > 0) {
    ++stats_.resumed_activities;
  }
  ServiceRequest request{rt.pid, act, rt.param};

  // A held sub-process of a spanning process force-prepares EVERY
  // non-compensatable activity, blockers or not: until the cross-shard
  // coordinator decides, the whole spanning process must stay globally
  // abortable, and a locally committed pivot would make it not so.
  // Compensatables commit immediately — they stay undoable via their
  // inverses, exactly the property the local Lemma 1 deferral relies on.
  const bool defer_commit =
      (rt.hold_commit && IsNonCompensatable(decl.kind)) ||
      (options_.protocol == AdmissionProtocol::kPred &&
       options_.defer_mode == DeferMode::kPrepared2PC &&
       options_.ablation.lemma1_deferral &&
       IsNonCompensatable(decl.kind) &&
       !ActiveBlockers(*this, ViewOf(rt), act).empty());

  guard_->OnExecute(rt.pid, decl.service);

  if (defer_commit) {
    Result<PreparedHandle> prepared =
        subsystem->InvokePrepared(decl.service, request);
    if (!prepared.ok()) {
      if (prepared.status().IsUnavailable()) {
        ++stats_.blocked_by_locks;
        return false;
      }
      if (prepared.status().IsAborted()) {
        TPM_RETURN_IF_ERROR(HandleInvocationAbort(rt, act));
        return true;
      }
      return prepared.status();
    }
    rt.ready.erase(act);
    // The activity happened physically; record its serialization edges now
    // even though it only becomes visible in the history at release time.
    AddSerializationEdges(
        rt.pid, ConflictingPredecessors(*this, rt.pid, decl.service));
    rt.prepared.push_back(PreparedBranch{act, subsystem, prepared->tx,
                                         prepared->return_value});
    rt.started = true;
    auto duration = options_.service_durations.find(decl.service);
    if (duration != options_.service_durations.end()) {
      rt.busy_until = clock_->now() + duration->second;
    }
    ++stats_.prepared_branches;
    return true;
  }

  Result<InvocationOutcome> outcome = subsystem->Invoke(decl.service, request);
  if (!outcome.ok()) {
    if (outcome.status().IsUnavailable()) {
      ++stats_.blocked_by_locks;
      return false;
    }
    if (outcome.status().IsAborted()) {
      TPM_RETURN_IF_ERROR(HandleInvocationAbort(rt, act));
      return true;
    }
    return outcome.status();
  }
  rt.ready.erase(act);
  TPM_RETURN_IF_ERROR(EmitActivity(rt, act, /*inverse=*/false));
  return true;
}

Status TransactionalProcessScheduler::HandleInvocationAbort(ProcessRuntime& rt,
                                                            ActivityId act) {
  // The local transaction aborted: record the effect-free invocation.
  ++stats_.failed_invocations;
  for (SchedulerObserver* observer : observers_) {
    observer->OnInvocationFailed(rt.pid, act);
  }
  TPM_RETURN_IF_ERROR(history_.Append(ScheduleEvent::Activity(
      ActivityInstance{rt.pid, act, false}, /*aborted_invocation=*/true)));
  const ActivityDecl& decl = rt.def->activity(act);
  if (IsRetriableKind(decl.kind)) {
    // Def. 3: guaranteed to commit after finitely many invocations; keep it
    // ready and re-invoke on a later pass.
    if (++rt.retries[act] > options_.max_retries) {
      return Status::Internal(
          StrCat("retriable activity a", act, " of P", rt.pid, " exceeded ",
                 options_.max_retries,
                 " retries; the subsystem violates Def. 3"));
    }
    return Status::OK();
  }
  // Pivot or compensatable failure (Def. 4): alternative execution.
  return HandleActivityFailure(rt, act);
}

std::optional<TransactionalProcessScheduler::AlternativeChoice>
TransactionalProcessScheduler::FindAlternative(const ProcessRuntime& rt,
                                               ActivityId act,
                                               bool avoid_open_breakers) const {
  // BFS over committed ancestors of `act` for the nearest one with an
  // untried alternative whose active subtree holds no committed
  // non-compensatable activity. With `avoid_open_breakers`, the candidate
  // group (the first such in ◁ order) must also route every activity of
  // its subtree to a subsystem whose breaker is not open.
  std::vector<ActivityId> worklist = {act};
  std::set<ActivityId> seen;
  while (!worklist.empty()) {
    ActivityId cur = worklist.front();
    worklist.erase(worklist.begin());
    if (!seen.insert(cur).second) continue;
    for (ActivityId p : rt.def->Predecessors(cur)) {
      if (!rt.state.IsCommitted(p)) continue;
      auto groups = rt.def->SuccessorGroups(p);
      auto active_it = rt.active_group.find(p);
      int active = active_it != rt.active_group.end() ? active_it->second : 0;
      if (active + 1 < static_cast<int>(groups.size())) {
        bool pinned = false;
        for (ActivityId member : rt.def->Subtree(groups[active])) {
          if (rt.state.IsCommitted(member) &&
              IsNonCompensatable(rt.def->KindOf(member))) {
            pinned = true;
            break;
          }
        }
        if (!pinned) {
          if (!avoid_open_breakers) {
            return AlternativeChoice{p, active + 1};
          }
          for (int g = active + 1; g < static_cast<int>(groups.size()); ++g) {
            if (GroupAvoidsOpenBreakers(rt, groups[g])) {
              return AlternativeChoice{p, g};
            }
          }
          // Every remaining group here routes into an open breaker; keep
          // searching upward.
        }
      }
      worklist.push_back(p);
    }
  }
  return std::nullopt;
}

bool TransactionalProcessScheduler::GroupAvoidsOpenBreakers(
    const ProcessRuntime& rt, const std::vector<ActivityId>& group) const {
  for (ActivityId member : rt.def->Subtree(group)) {
    Result<Subsystem*> subsystem =
        RouteService(rt.def->activity(member).service);
    if (subsystem.ok() &&
        (*subsystem)->breaker_state() == BreakerState::kOpen) {
      return false;
    }
  }
  return true;
}

Status TransactionalProcessScheduler::HandleActivityFailure(ProcessRuntime& rt,
                                                            ActivityId act) {
  rt.ready.erase(act);
  std::optional<AlternativeChoice> alt =
      FindAlternative(rt, act, /*avoid_open_breakers=*/false);
  if (!alt.has_value()) {
    // No alternative: abort the process (backward recovery — the
    // well-formed flex structure guarantees everything committed so far is
    // compensatable, or forward recovery if a pivot already committed).
    return StartAbort(rt);
  }
  ++stats_.alternatives_taken;
  for (SchedulerObserver* observer : observers_) {
    observer->OnAlternativeTaken(rt.pid, alt->branch_point, alt->group);
  }
  return CompensateSubtree(rt, alt->branch_point, alt->group);
}

Result<bool> TransactionalProcessScheduler::ParkOrDegrade(
    ProcessRuntime& rt, ActivityId act, Subsystem* subsystem) {
  // Forward recovery first (§3.1): when a ◁-alternative avoids every open
  // breaker, switch proactively instead of waiting out the outage — the
  // preference order exists precisely to rank degraded-but-available paths.
  std::optional<AlternativeChoice> alt =
      FindAlternative(rt, act, /*avoid_open_breakers=*/true);
  if (alt.has_value()) {
    ++stats_.degraded_switches;
    for (SchedulerObserver* observer : observers_) {
      observer->OnDegradedBranch(rt.pid, alt->branch_point, alt->group,
                                 subsystem->id());
    }
    rt.parked.erase(act);
    rt.ready.erase(act);
    TPM_RETURN_IF_ERROR(CompensateSubtree(rt, alt->branch_point, alt->group));
    return true;
  }
  // No reachable alternative: park. The activity stays in `ready` but is
  // not invoked — no Def. 3 retry burns against the open breaker — and
  // resumes once the breaker half-opens after its cooldown.
  auto [parked_it, inserted] = rt.parked.emplace(act, clock_->now());
  if (inserted) ++stats_.parked_activities;
  parked_this_pass_ = true;
  if (options_.park_timeout_ticks > 0 &&
      clock_->now() - parked_it->second >= options_.park_timeout_ticks) {
    // Waited long enough: fail the activity through the normal ladder
    // (alternative search, else abort) so termination stays guaranteed
    // even when the outage is never repaired.
    rt.parked.erase(parked_it);
    ++stats_.failed_invocations;
    TPM_RETURN_IF_ERROR(history_.Append(ScheduleEvent::Activity(
        ActivityInstance{rt.pid, act, false}, /*aborted_invocation=*/true)));
    TPM_RETURN_IF_ERROR(HandleActivityFailure(rt, act));
    return true;
  }
  return false;
}

Status TransactionalProcessScheduler::CompensateSubtree(ProcessRuntime& rt,
                                                        ActivityId branch_point,
                                                        int next_group) {
  // Queue compensations of committed descendants of the branch point in
  // reverse commit order; activate the alternative once they drain.
  const std::vector<ActivityId> committed = rt.state.EffectiveCommitted();
  for (auto it = committed.rbegin(); it != committed.rend(); ++it) {
    if (rt.def->Precedes(branch_point, *it)) {
      rt.pending.push_back(CompletionStep{*it, /*inverse=*/true});
    }
  }
  // Drop ready activities of the abandoned branch (and their parked
  // bookkeeping — a parked activity abandoned with its branch never
  // resumes).
  FlatSet<ActivityId> still_ready;
  for (ActivityId r : rt.ready) {
    if (!rt.def->Precedes(branch_point, r)) still_ready.insert(r);
  }
  rt.ready = std::move(still_ready);
  for (auto it = rt.parked.begin(); it != rt.parked.end();) {
    if (rt.def->Precedes(branch_point, it->first)) {
      it = rt.parked.erase(it);
    } else {
      ++it;
    }
  }
  rt.on_drain = DrainAction::kActivateGroup;
  rt.drain_branch_point = branch_point;
  rt.drain_group = next_group;
  return Status::OK();
}

Status TransactionalProcessScheduler::StartAbort(ProcessRuntime& rt) {
  if (rt.release_in_doubt) {
    // A commit decision for the prepared branches is already logged; the
    // process cannot abort past it. Try to resolve first — if some
    // participant is still unreachable the abort is postponed (the caller's
    // gate re-evaluates every pass) rather than contradicting the decision.
    Status resolved = coordinator_.RecoverInDoubt();
    if (resolved.IsUnavailable()) return Status::OK();
    TPM_RETURN_IF_ERROR(resolved);
    rt.release_in_doubt = false;
    std::vector<PreparedBranch> released = std::move(rt.prepared);
    rt.prepared.clear();
    for (const PreparedBranch& b : released) {
      TPM_RETURN_IF_ERROR(EmitActivity(rt, b.activity, /*inverse=*/false));
    }
  }
  ++aborts_started_;  // state change: counts as progress for Step()
  for (SchedulerObserver* observer : observers_) {
    observer->OnAbortStarted(rt.pid);
  }
  // Prepared-but-unreleased branches never became visible; roll them back.
  if (!rt.prepared.empty()) {
    std::vector<CommitBranch> branches;
    for (const PreparedBranch& b : rt.prepared) {
      branches.push_back(CommitBranch{b.subsystem, b.tx});
    }
    TPM_RETURN_IF_ERROR(coordinator_.AbortAll(branches));
    rt.prepared.clear();
  }
  TPM_ASSIGN_OR_RETURN(Completion completion, ComputeCompletion(rt.state));
  rt.pending = completion.steps;
  rt.ready.clear();
  rt.parked.clear();
  rt.on_drain = DrainAction::kAbortProcess;
  return Status::OK();
}

Result<bool> TransactionalProcessScheduler::ExecuteCompletionStep(
    ProcessRuntime& rt) {
  if (rt.pending.empty()) {
    // Drained: apply the action.
    DrainAction action = rt.on_drain;
    rt.on_drain = DrainAction::kNone;
    if (action == DrainAction::kActivateGroup) {
      rt.active_group[rt.drain_branch_point] = rt.drain_group;
      for (ActivityId s : rt.def->SuccessorsInGroup(rt.drain_branch_point,
                                                    rt.drain_group)) {
        bool all_ready = true;
        for (ActivityId p : rt.def->Predecessors(s)) {
          auto pref = rt.def->EdgePreference(p, s);
          int active = rt.active_group.count(p) > 0 ? rt.active_group[p] : 0;
          if (*pref != active) continue;
          if (!rt.state.IsCommitted(p)) {
            all_ready = false;
            break;
          }
        }
        if (all_ready) rt.ready.insert(s);
      }
    } else if (action == DrainAction::kAbortProcess) {
      TPM_RETURN_IF_ERROR(FinishProcess(rt, /*committed=*/false));
    }
    return true;
  }

  const CompletionStep step = rt.pending.front();
  const ActivityDecl& decl = rt.def->activity(step.activity);

  // Deadlock resolution may force one mutually-blocked recovery step
  // through (liveness of completions over formal reducibility).
  bool forced = false;
  auto must_wait = [&]() {
    if (forced) return false;
    if (!force_next_completion_ || force_completion_target_ != rt.pid) {
      return true;
    }
    force_next_completion_ = false;
    forced = true;
    ++stats_.forced_executions;
    return false;
  };

  if (step.inverse && options_.ablation.compensation_gate) {
    // Lemma 2 gate: dependents must undo their conflicting work first.
    TPM_ASSIGN_OR_RETURN(bool ready, GateCompensation(rt, step.activity));
    if (!ready && must_wait()) return false;
  }
  if (!step.inverse) {
    // A forward completion step freezes its effects; emitting it must not
    // close a serialization cycle (including the virtual completion
    // pre-orders). Wait — conflicting parties terminate or abort, and
    // mutual waits are broken by deadlock resolution.
    if (options_.protocol == AdmissionProtocol::kPred &&
        options_.ablation.completion_preorder) {
      std::vector<ProcessId> preds =
          ConflictingPredecessors(*this, rt.pid, decl.service);
      bool cycle = sg_.WouldCycle(rt.pid, preds);
      if (!cycle) {
        for (ProcessId v :
             VirtualCompletionTargets(*this, rt.pid, decl.service)) {
          if (sg_.Reaches(v, rt.pid)) {
            cycle = true;
            break;
          }
        }
      }
      if (cycle) {
        if (ActiveProcessReachableFrom(*this, rt.pid)) {
          if (must_wait()) return false;
        } else {
          // Permanent cycle: the completion must still terminate
          // (guaranteed termination); proceed and account for it.
          ++stats_.forced_executions;
        }
      }
    }
    // Lemma 3, generalized: a forward (retriable) completion step must
    // wait while any active process still holds a conflicting effect that
    // an abort would compensate — running first would wedge that future
    // compensation behind a frozen retriable (the irreducible cycle of
    // Lemma 3's proof). The other process either commits (conflict order
    // stays acyclic) or aborts, in which case its compensation correctly
    // precedes this step; mutual waits are broken by deadlock resolution.
    for (const auto& other : runtimes_) {
      if (other == nullptr) continue;
      if (other->pid == rt.pid || !other->state.IsActive()) continue;
      const std::vector<ActivityId> effective =
          other->state.EffectiveCommitted();
      size_t last_noncomp = SIZE_MAX;
      for (size_t k = 0; k < effective.size(); ++k) {
        if (IsNonCompensatable(other->def->KindOf(effective[k]))) {
          last_noncomp = k;
        }
      }
      for (size_t k = 0; k < effective.size(); ++k) {
        if (other->def->KindOf(effective[k]) !=
            ActivityKind::kCompensatable) {
          continue;
        }
        // Quasi-committed (pre-pivot, F-REC) effects are never undone.
        if (last_noncomp != SIZE_MAX && k < last_noncomp) continue;
        ServiceId other_service =
            other->def->activity(effective[k]).service;
        if (spec_.ServicesConflict(decl.service, other_service) &&
            must_wait()) {
          return false;
        }
      }
    }
  }

  ServiceId service =
      step.inverse ? decl.compensation_service : decl.service;
  TPM_ASSIGN_OR_RETURN(Subsystem * subsystem, RouteService(service));
  ServiceRequest request{rt.pid, step.activity, rt.param};
  if (step.inverse && !rt.pending.front().logged) {
    TPM_RETURN_IF_ERROR(LogCompensationIntent(rt.pid, step.activity));
    rt.pending.front().logged = true;
  }
  Result<InvocationOutcome> outcome = subsystem->Invoke(service, request);
  if (!outcome.ok()) {
    if (outcome.status().IsUnavailable()) {
      ++stats_.blocked_by_locks;
      return false;
    }
    if (outcome.status().IsAborted()) {
      // Compensating activities are retriable by definition (§3.1), and
      // forward completion steps are retriable by the well-formed flex
      // structure: re-invoke on a later pass.
      ++stats_.failed_invocations;
      if (++rt.retries[step.activity] > options_.max_retries) {
        return Status::Internal(
            StrCat("completion step for a", step.activity, " of P", rt.pid,
                   " exceeded retry cap"));
      }
      return true;
    }
    return outcome.status();
  }
  rt.pending.erase(rt.pending.begin());
  TPM_RETURN_IF_ERROR(EmitActivity(rt, step.activity, step.inverse));
  return true;
}

Status TransactionalProcessScheduler::ReleasePreparedIfUnblocked(
    ProcessRuntime& rt) {
  if (rt.prepared.empty()) return Status::OK();
  if (rt.hold_commit) {
    // Held sub-process of a spanning process: its prepared branches stay
    // prepared — blockers gone or not — until the cross-shard coordinator
    // decides (ResolveHeldCommit clears the flag).
    return Status::OK();
  }
  if (rt.release_in_doubt) {
    // The commit decision is logged but some participant was unreachable
    // during phase two. Re-drive it; while still unreachable the process
    // keeps waiting (a prepared-but-unreachable branch resolves when the
    // participant heals — it never wedges, and never aborts against the
    // logged decision).
    Status resolved = coordinator_.RecoverInDoubt();
    if (resolved.IsUnavailable()) return Status::OK();
    TPM_RETURN_IF_ERROR(resolved);
    rt.release_in_doubt = false;
  } else {
    // Lemma 1: the deferred commits are released only once no conflicting
    // predecessor process is active any more — then all branches commit
    // atomically via 2PC.
    bool blocked = false;
    sg_.ForEachPredecessor(rt.pid, [&](ProcessId p) {
      if (blocked) return;
      const ProcessRuntime* other = FindRuntime(p);
      if (other == nullptr || !other->state.IsActive()) return;
      if (options_.quasi_commit_optimization &&
          QuasiCommitAdmissible(*this, ViewOf(*other), ViewOf(rt))) {
        return;
      }
      blocked = true;
    });
    if (blocked) return Status::OK();
    std::vector<CommitBranch> branches;
    for (const PreparedBranch& b : rt.prepared) {
      branches.push_back(CommitBranch{b.subsystem, b.tx});
    }
    Status committed = coordinator_.CommitAll(branches);
    if (committed.IsUnavailable()) {
      rt.release_in_doubt = true;
      return Status::OK();
    }
    TPM_RETURN_IF_ERROR(committed);
  }
  std::vector<PreparedBranch> released = std::move(rt.prepared);
  rt.prepared.clear();
  for (const PreparedBranch& b : released) {
    TPM_RETURN_IF_ERROR(EmitActivity(rt, b.activity, /*inverse=*/false));
  }
  return Status::OK();
}

// True iff the aborted process left no trace: everything it committed was
// compensated, and no conflicting activity of another process was emitted
// between any original and its compensation — then all its pairs cancel
// under the compensation rule and the process contributes nothing to any
// future completed schedule.
bool TransactionalProcessScheduler::AbortedProcessLeavesNoTrace(
    const ProcessRuntime& rt) const {
  if (!rt.state.EffectiveCommitted().empty()) return false;
  const auto& events = history_.events();
  // Open compensation spans per activity of rt.pid.
  std::map<int64_t, size_t> open_span;
  for (size_t i = 0; i < events.size(); ++i) {
    const ScheduleEvent& e = events[i];
    if (e.type != EventType::kActivity || e.aborted_invocation) continue;
    if (e.act.process != rt.pid) continue;
    if (!e.act.inverse) {
      open_span[e.act.activity.value()] = i;
      continue;
    }
    auto span = open_span.find(e.act.activity.value());
    if (span == open_span.end()) return false;  // inconsistent history
    ServiceId service = rt.def->activity(e.act.activity).service;
    for (size_t k = span->second + 1; k < i; ++k) {
      const ScheduleEvent& mid = events[k];
      if (mid.type != EventType::kActivity || mid.aborted_invocation) {
        continue;
      }
      if (mid.act.process == rt.pid) continue;
      if (spec_.ServicesConflict(service, history_.ServiceOf(mid.act))) {
        return false;
      }
    }
    open_span.erase(span);
  }
  return open_span.empty();
}

Status TransactionalProcessScheduler::FinishProcess(ProcessRuntime& rt,
                                                    bool committed) {
  TPM_RETURN_IF_ERROR(history_.Append(committed
                                          ? ScheduleEvent::Commit(rt.pid)
                                          : ScheduleEvent::Abort(rt.pid)));
  if (committed) {
    rt.state.RecordCommitProcess();
    ++stats_.processes_committed;
  } else {
    rt.state.RecordAbortProcess();
    ++stats_.processes_aborted;
  }
  // Immediately after the outcome flip, so the active index stays
  // consistent with the state even if the WAL append below fails.
  DeactivatePid(rt.pid);
  if (log_ != nullptr) {
    TPM_RETURN_IF_ERROR(log_->Append(
        {committed ? SchedulerLogRecord::Kind::kProcessCommitted
                   : SchedulerLogRecord::Kind::kProcessAborted,
         rt.pid, ActivityId(), "", 0}));
  }
  if (!options_.reclaim_terminated) {
    // Unbounded growth — deliberately skipped in bounded-memory mode
    // (observers / stats() carry the per-process signal there).
    latencies_.push_back(ProcessLatency{rt.pid, rt.submitted_at,
                                        rt.started_at, clock_->now(),
                                        rt.state.outcome()});
  }
  for (SchedulerObserver* observer : observers_) {
    observer->OnProcessTerminated(rt.pid, rt.state.outcome());
  }
  guard_->OnProcessTerminated(rt.pid);
  // Process-resolution hook: subsystems with per-process bookkeeping (e.g.
  // escrow pending credit) release it now that the process is terminal.
  for (Subsystem* subsystem : subsystems_) {
    subsystem->OnProcessResolved(rt.pid, committed);
  }
  std::vector<ProcessId> prune_seeds;
  if (!committed && AbortedProcessLeavesNoTrace(rt)) {
    // The process reduced away entirely: release its conflict footprint so
    // it no longer constrains (or cycles with) future activities. The
    // successors the removal exposes seed the pruning worklist.
    sg_.ForEachSuccessor(rt.pid,
                         [&](ProcessId succ) { prune_seeds.push_back(succ); });
    sg_.RemoveNode(rt.pid);
    RemoveEmitter(rt.pid);
    MarkPruned(rt.pid);
  } else {
    prune_seeds.push_back(rt.pid);
  }
  PruneSerializationGraph(std::move(prune_seeds));
  return Status::OK();
}

Result<bool> TransactionalProcessScheduler::TryExecuteProcess(
    ProcessRuntime& rt) {
  if (rt.completing()) {
    return ExecuteCompletionStep(rt);
  }
  // Congestion control: unstarted processes wait for a concurrency slot.
  if (!rt.started && options_.max_concurrent_processes > 0) {
    int started_active = 0;
    for (ProcessId pid : active_pids_) {
      const ProcessRuntime* other = FindRuntime(pid);
      if (other != nullptr && other->state.IsActive() && other->started) {
        ++started_active;
      }
    }
    if (started_active >= options_.max_concurrent_processes) {
      return false;  // queued
    }
  }
  // Inter-process start dependencies: stay dormant until every dependency
  // activity committed; abort cleanly once one becomes unsatisfiable.
  if (!rt.dependencies.empty()) {
    std::vector<ProcessDependency> unmet;
    for (const ProcessDependency& dep : rt.dependencies) {
      const ProcessRuntime& other = *FindRuntime(dep.process);
      const bool committed = other.state.IsCommitted(dep.activity) &&
                             !other.state.IsCompensated(dep.activity);
      if (committed) continue;
      const bool hopeless = !other.state.IsActive() ||
                            other.state.IsCompensated(dep.activity);
      if (hopeless) {
        rt.dependencies.clear();
        TPM_RETURN_IF_ERROR(StartAbort(rt));
        return true;
      }
      unmet.push_back(dep);
    }
    rt.dependencies = std::move(unmet);
    if (!rt.dependencies.empty()) return false;  // still dormant
  }
  if (rt.ready.empty()) {
    if (rt.hold_commit) {
      // Held sub-process of a spanning process: instead of committing
      // locally, cast (at most once) a durable "prepared" vote and wait
      // for the cross-shard coordinator's decision.
      return MaybeVoteHeldCommit(rt);
    }
    if (!rt.prepared.empty()) {
      return false;  // waiting for prepared release
    }
    // Def. 11 clause 1: a process must not commit before an active process
    // it conflicts with (edge P_i -> P_j requires C_i << C_j). kUnsafe
    // ignores this, reproducing the classical behaviour.
    if (options_.protocol != AdmissionProtocol::kUnsafe) {
      bool wait = false;
      sg_.ForEachPredecessor(rt.pid, [&](ProcessId p) {
        if (wait) return;
        const ProcessRuntime* other = FindRuntime(p);
        if (other != nullptr && other->state.IsActive()) wait = true;
      });
      if (wait) {
        ++stats_.commit_waits;
        return false;
      }
    }
    TPM_RETURN_IF_ERROR(FinishProcess(rt, /*committed=*/true));
    return true;
  }
  bool deferred_any = false;
  // Snapshot: execution mutates rt.ready.
  const std::vector<ActivityId> candidates(rt.ready.begin(), rt.ready.end());
  for (ActivityId act : candidates) {
    switch (guard_->Admit(ViewOf(rt), act)) {
      case AdmissionDecision::kAdmit: {
        TPM_ASSIGN_OR_RETURN(bool progress, ExecuteActivity(rt, act));
        if (progress) return true;
        break;  // blocked by subsystem locks; try a sibling
      }
      case AdmissionDecision::kDefer:
        deferred_any = true;
        break;
      case AdmissionDecision::kFail:
        // Admitting the activity would create an unresolvable conflict
        // cycle: treat as a failed invocation, triggering the alternative
        // execution path (or abort).
        ++stats_.failed_invocations;
        TPM_RETURN_IF_ERROR(history_.Append(ScheduleEvent::Activity(
            ActivityInstance{rt.pid, act, false},
            /*aborted_invocation=*/true)));
        TPM_RETURN_IF_ERROR(HandleActivityFailure(rt, act));
        return true;
    }
  }
  if (deferred_any) ++stats_.deferrals;
  return false;
}

Result<bool> TransactionalProcessScheduler::MaybeVoteHeldCommit(
    ProcessRuntime& rt) {
  if (rt.commit_held) return false;  // voted; waiting for the decision
  // Def. 11 commit-wait applied to the vote: "prepared" fixes this
  // sub-process's position in the global commit order, so the vote must
  // not be cast while a conflicting predecessor is still active — this is
  // what makes the composite (inter-shard weak + intra-shard strong) order
  // consistent: a sub ordered after another on some shard cannot vote, and
  // hence the spanning process cannot commit, before that predecessor
  // terminates.
  if (options_.protocol != AdmissionProtocol::kUnsafe) {
    bool wait = false;
    sg_.ForEachPredecessor(rt.pid, [&](ProcessId p) {
      if (wait) return;
      const ProcessRuntime* other = FindRuntime(p);
      if (other != nullptr && other->state.IsActive()) wait = true;
    });
    if (wait) {
      ++stats_.commit_waits;
      return false;
    }
  }
  // Durable vote: one HELD record per prepared branch (its subsystem:tx
  // handle, so recovery can finish phase two), then the vote marker. Only
  // once the marker is durable may the coordinator learn of the vote — a
  // crash before the flush is presumed abort.
  if (log_ != nullptr) {
    for (const PreparedBranch& b : rt.prepared) {
      TPM_RETURN_IF_ERROR(log_->Append(
          {SchedulerLogRecord::Kind::kCommitHeld, rt.pid, b.activity,
           StrCat(b.subsystem->id().value(), ":", b.tx.value()),
           b.return_value}));
    }
    TPM_RETURN_IF_ERROR(log_->Append(
        {SchedulerLogRecord::Kind::kCommitHeld, rt.pid, ActivityId(), "", 0}));
    TPM_RETURN_IF_ERROR(log_->Flush());
  }
  rt.commit_held = true;
  ++stats_.cross_shard_prepares;
  for (SchedulerObserver* observer : observers_) {
    observer->OnCommitHeld(rt.pid);
  }
  return true;
}

namespace {
/// How many consecutive no-progress passes the scheduler tolerates while a
/// held sub-process is waiting on its coordinator before treating the stall
/// as a local problem and victimizing a (non-held) process anyway. Normal
/// cross-shard decision latency is a handful of passes; the patience only
/// runs out when the stall is really local (e.g. a ◁-tail sub wedged on its
/// own trunk's prepared locks) or the coordinator died.
constexpr int64_t kHeldStallPatience = 64;
}  // namespace

Status TransactionalProcessScheduler::ResolveDeadlock() {
  // A held sub-process that voted (or was decided) is waiting on an
  // external coordinator, not on local state: such a pass is external
  // waiting, not a deadlock. Give the decision bounded (deterministic,
  // pass-counted) time to arrive before falling through to victimization.
  bool external_wait = false;
  for (ProcessId pid : active_pids_) {
    const ProcessRuntime* rt = FindRuntime(pid);
    if (rt != nullptr && rt->state.IsActive() &&
        (rt->commit_held || rt->decided_commit)) {
      external_wait = true;
      break;
    }
  }
  if (external_wait && ++held_stall_passes_ < kHeldStallPatience) {
    return Status::OK();
  }
  // Pick a victim among active, non-completing processes: prefer processes
  // still in B-REC (cheap backward recovery), then the one with the least
  // committed work to undo, then the youngest.
  ProcessRuntime* victim = nullptr;
  auto cost = [](const ProcessRuntime& rt) {
    return rt.state.EffectiveCommitted().size();
  };
  for (ProcessId pid : active_pids_) {
    ProcessRuntime* rt = FindRuntime(pid);
    if (rt == nullptr) continue;
    if (!rt->state.IsActive() || rt->completing()) continue;
    // A voted or commit-decided 2PC participant cannot unilaterally abort;
    // only its coordinator may. (A held sub-process that has NOT voted yet
    // stays victimizable — that is how distributed lock cycles resolve:
    // the local abort surfaces to the agent, which aborts globally.)
    if (rt->commit_held || rt->decided_commit) continue;
    if (victim == nullptr) {
      victim = rt;
      continue;
    }
    const bool rt_brec = rt->state.recovery_state() ==
                         RecoveryState::kBackwardRecoverable;
    const bool victim_brec = victim->state.recovery_state() ==
                             RecoveryState::kBackwardRecoverable;
    if (rt_brec != victim_brec) {
      if (rt_brec) victim = rt;
      continue;
    }
    if (cost(*rt) != cost(*victim)) {
      if (cost(*rt) < cost(*victim)) victim = rt;
      continue;
    }
    if (rt->pid > victim->pid) victim = rt;
  }
  if (victim == nullptr) {
    // Every active process is already completing and this pass made no
    // progress. Completions must terminate (guaranteed termination), so
    // one blocked step is forced through on the next pass — but which one
    // matters: Lemma 2 wants compensations in reverse order of their
    // originals, so the force targets the pending inverse whose original
    // sits latest in the history. That step is either gate-blocked by a
    // peer (forcing it there breaks the tie where reduction loses least)
    // or merely waiting out a repairable subsystem outage, in which case
    // the forced attempt is a no-op retry and the advancing clock
    // eventually clears the outage — forcing any OTHER process instead
    // would cross compensation pairs and spoil reducibility for no
    // liveness gain.
    ProcessRuntime* target = nullptr;
    bool target_is_inverse = false;
    size_t latest_original = 0;
    const auto& events = history_.events();
    for (ProcessId pid : active_pids_) {
      ProcessRuntime* rt = FindRuntime(pid);
      if (rt == nullptr || !rt->state.IsActive() || !rt->completing()) {
        continue;
      }
      if (rt->pending.empty() || !rt->pending.front().inverse) {
        // Drain or forward step: eligible, but any inverse takes priority.
        if (target == nullptr) target = rt;
        continue;
      }
      // Position of the most recent original commit of the head inverse.
      size_t pos = 0;
      for (size_t i = events.size(); i-- > 0;) {
        const ScheduleEvent& e = events[i];
        if (e.type == EventType::kActivity && !e.aborted_invocation &&
            !e.act.inverse && e.act.process == rt->pid &&
            e.act.activity == rt->pending.front().activity) {
          pos = i;
          break;
        }
      }
      if (!target_is_inverse || pos > latest_original) {
        target = rt;
        target_is_inverse = true;
        latest_original = pos;
      }
    }
    if (target != nullptr) {
      force_next_completion_ = true;
      force_completion_target_ = target->pid;
      return Status::OK();
    }
    if (external_wait) {
      // Everything left is (or waits behind) a held sub-process: progress
      // will come from the coordinator's decision, not from local action.
      return Status::OK();
    }
    std::string detail;
    for (ProcessId pid : active_pids_) {
      const ProcessRuntime* rt = FindRuntime(pid);
      if (rt == nullptr || !rt->state.IsActive()) continue;
      detail += StrCat(" P", rt->pid, "(completing=", rt->completing() ? 1 : 0,
                       ",pending=", rt->pending.size(),
                       ",ready=", rt->ready.size(),
                       ",prepared=", rt->prepared.size(),
                       ",drain=", static_cast<int>(rt->on_drain));
      for (const CompletionStep& s : rt->pending) {
        detail += StrCat(" a", s.activity, s.inverse ? "^-1" : "");
      }
      detail += ")";
    }
    return Status::Internal(
        StrCat("scheduler stalled with no abortable process:", detail));
  }
  ++stats_.deadlock_victims;
  return StartAbort(*victim);
}

void TransactionalProcessScheduler::PollSubsystemHealth() {
  if (breaker_seen_.size() < subsystems_.size()) {
    breaker_seen_.resize(subsystems_.size(), BreakerState::kClosed);
  }
  int64_t deadline_failures = 0;
  int64_t breaker_trips = 0;
  for (size_t i = 0; i < subsystems_.size(); ++i) {
    const BreakerState now = subsystems_[i]->breaker_state();
    if (now != breaker_seen_[i]) {
      for (SchedulerObserver* observer : observers_) {
        observer->OnBreakerStateChange(subsystems_[i]->id(), breaker_seen_[i],
                                       now);
      }
      breaker_seen_[i] = now;
    }
    const SubsystemHealthCounters counters =
        subsystems_[i]->health_counters();
    deadline_failures += counters.deadline_failures;
    breaker_trips += counters.breaker_trips;
  }
  stats_.deadline_failures = deadline_failures;
  stats_.breaker_trips = breaker_trips;
}

Result<bool> TransactionalProcessScheduler::Step() {
  CheckThread("Step");
  DrainReclaimables();
  ++stats_.steps;
  clock_->Advance(1);
  stats_.virtual_time = clock_->now();
  PollSubsystemHealth();
  bool progress = false;
  parked_this_pass_ = false;
  const int64_t aborts_before = aborts_started_;

  // Snapshot the active index: execution terminates processes (mutating
  // active_pids_) mid-loop. Visit order — ascending pid — is unchanged.
  std::vector<ProcessId> active = active_pids_;

  // Release deferred commits whose blockers are gone (Lemma 1).
  for (ProcessId pid : active) {
    ProcessRuntime* rt = FindRuntime(pid);
    if (rt == nullptr || !rt->state.IsActive() || rt->prepared.empty()) {
      continue;
    }
    size_t before = rt->prepared.size();
    TPM_RETURN_IF_ERROR(ReleasePreparedIfUnblocked(*rt));
    if (rt->prepared.size() != before) progress = true;
  }

  // One execution attempt per active process, in pid order.
  bool any_busy = false;
  for (ProcessId pid : active) {
    ProcessRuntime* rt = FindRuntime(pid);
    if (rt == nullptr || !rt->state.IsActive()) continue;
    if (rt->release_in_doubt) {
      // Waiting for in-doubt 2PC branches to resolve: the commit decision
      // is logged — the process neither executes nor aborts meanwhile.
      any_busy = true;
      continue;
    }
    if (rt->busy_until > clock_->now()) {
      any_busy = true;  // a long-running activity is in flight
      continue;
    }
    TPM_ASSIGN_OR_RETURN(bool p, TryExecuteProcess(*rt));
    progress = progress || p;
  }

  if (active_pids_.empty()) return false;
  // Cascade aborts initiated inside admission/compensation gates changed
  // scheduler state even if no activity executed this pass; time passing
  // for a long-running activity is progress too, and so is parking — a
  // parked activity waits out a breaker cooldown measured on the clock,
  // which advances every pass.
  progress = progress || aborts_started_ != aborts_before || any_busy ||
             parked_this_pass_;
  if (!progress) {
    TPM_RETURN_IF_ERROR(ResolveDeadlock());
  } else {
    // Progress dissolved the stall; drop an unconsumed force so it cannot
    // bypass a gate later under changed circumstances. If the stall
    // returns, deadlock resolution recomputes a fresh target.
    force_next_completion_ = false;
    held_stall_passes_ = 0;
  }
  return true;
}

Status TransactionalProcessScheduler::Run(int64_t max_steps) {
  CheckThread("Run");
  for (int64_t i = 0; i < max_steps; ++i) {
    TPM_ASSIGN_OR_RETURN(bool more, Step());
    if (!more) return Status::OK();
  }
  return Status::Internal("Run() exceeded max_steps");
}

Status TransactionalProcessScheduler::CertifyHistory() {
  TPM_ASSIGN_OR_RETURN(bool pred, IsPRED(history_, spec_));
  if (!pred) {
    ++stats_.certified_violations;
    if (options_.protocol == AdmissionProtocol::kPred ||
        options_.protocol == AdmissionProtocol::kSerial ||
        options_.protocol == AdmissionProtocol::kTwoPhaseLocking) {
      return Status::Internal(
          StrCat("emitted history is not PRED under a safe protocol: ",
                 history_.ToString()));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Crash and recovery.

Status TransactionalProcessScheduler::Checkpoint() {
  CheckThread("Checkpoint");
  if (log_ == nullptr) {
    return Status::FailedPrecondition("checkpoint requires a recovery log");
  }
  // Global commit order from the emitted history. The compacted log must
  // preserve it across processes — recovery sorts the group abort's
  // compensations by log position (Lemma 2: reverse commit order), and the
  // replayed history must stay prefix-reducible; records grouped by
  // process would silently invert inter-process commit order.
  std::map<std::pair<int64_t, int64_t>, size_t> commit_pos;
  const auto& events = history_.events();
  for (size_t i = 0; i < events.size(); ++i) {
    const ScheduleEvent& e = events[i];
    if (e.type == EventType::kActivity && !e.aborted_invocation &&
        !e.act.inverse) {
      commit_pos[{e.act.process.value(), e.act.activity.value()}] = i;
    }
  }
  auto pos_of = [&](ProcessId pid, ActivityId act) {
    auto it = commit_pos.find({pid.value(), act.value()});
    return it == commit_pos.end() ? size_t{0} : it->second;
  };

  std::vector<SchedulerLogRecord> compact;
  struct Positioned {
    size_t pos;
    SchedulerLogRecord record;
  };
  std::vector<Positioned> acts;
  std::vector<Positioned> comps;
  for (const auto& rt : runtimes_) {
    if (rt == nullptr || !rt->state.IsActive()) {
      continue;  // effects are durable; drop
    }
    compact.push_back({SchedulerLogRecord::Kind::kProcessBegin, rt->pid,
                       ActivityId(), rt->def->name(), rt->param});
    // The effective committed activities reconstruct the state recovery
    // needs (already-compensated work is equivalent to never-executed work
    // for the completion computation).
    for (ActivityId act : rt->state.EffectiveCommitted()) {
      acts.push_back({pos_of(rt->pid, act),
                      {SchedulerLogRecord::Kind::kActivityCommitted, rt->pid,
                       act, "", 0}});
    }
    // Write-ahead COMP intentions already durable but not yet executed must
    // survive the compaction: dropping one would let the compensation run
    // unlogged afterwards (its step is marked `logged`), and a later crash
    // would re-apply the inverse.
    for (const CompletionStep& step : rt->pending) {
      if (step.inverse && step.logged) {
        comps.push_back({pos_of(rt->pid, step.activity),
                         {SchedulerLogRecord::Kind::kActivityCompensated,
                          rt->pid, step.activity, "", 0}});
      }
    }
    // A held sub-process that already voted keeps its vote across
    // compaction: dropping the marker (or the subsystem:tx branch handles)
    // would make a later recovery presume abort against a commit decision
    // the coordinator may already have logged.
    if ((rt->commit_held || rt->decided_commit) && !rt->prepared.empty()) {
      for (const PreparedBranch& b : rt->prepared) {
        compact.push_back({SchedulerLogRecord::Kind::kCommitHeld, rt->pid,
                           b.activity,
                           StrCat(b.subsystem->id().value(), ":",
                                  b.tx.value()),
                           b.return_value});
      }
      compact.push_back({SchedulerLogRecord::Kind::kCommitHeld, rt->pid,
                         ActivityId(), "", 0});
    }
  }
  std::stable_sort(acts.begin(), acts.end(),
                   [](const Positioned& a, const Positioned& b) {
                     return a.pos < b.pos;
                   });
  // Intentions in reverse order of their originals' commits (Lemma 2).
  std::stable_sort(comps.begin(), comps.end(),
                   [](const Positioned& a, const Positioned& b) {
                     return a.pos > b.pos;
                   });
  for (const Positioned& p : acts) compact.push_back(p.record);
  for (const Positioned& p : comps) compact.push_back(p.record);
  return log_->ReplaceAll(compact);
}

void TransactionalProcessScheduler::Crash() {
  CheckThread("Crash");
  runtimes_.clear();
  active_pids_.clear();
  pruned_.clear();
  reclaim_queue_.clear();
  reclaimed_outcome_.clear();
  // runtime_pool_ survives: pooled objects carry no process state.
  cascade_counted_.clear();
  force_next_completion_ = false;
  parked_this_pass_ = false;
  held_stall_passes_ = 0;
  // A private clock restarts with the scheduler; a shared clock is global
  // simulation time and keeps running across the crash.
  if (clock_ == &owned_clock_) owned_clock_.Reset();
  latencies_.clear();
  validated_defs_.clear();
  history_ = ProcessSchedule();
  sg_.Clear();
  for (std::vector<ProcessId>& row : service_emitters_) row.clear();
  guard_->Reset();
}

Status TransactionalProcessScheduler::Recover(
    const std::map<std::string, const ProcessDef*>& defs_by_name,
    const RecoverDirectives* directives) {
  CheckThread("Recover");
  if (log_ == nullptr) {
    return Status::FailedPrecondition("recovery requires a recovery log");
  }
  Crash();
  TPM_ASSIGN_OR_RETURN(std::vector<SchedulerLogRecord> records,
                       log_->Records());

  // Held-vote bookkeeping reconstructed from HELD records: which processes
  // durably voted "prepared", and the subsystem:tx handle of each branch.
  struct HeldBranch {
    ActivityId activity;
    int64_t subsystem_id = -1;
    int64_t tx = -1;
  };
  std::set<int64_t> held_voted;
  std::map<int64_t, std::vector<HeldBranch>> held_branches;

  // Rebuild process execution states. Replay is defensive: a crash can
  // legitimately leave records that no longer apply — a write-ahead COMP
  // intention whose pending step was superseded by a cascading abort shows
  // up as a duplicate COMP; a compaction concurrent with the crash can drop
  // a process that later records still mention. Such records are skipped
  // and counted (stats.recovered_log_anomalies) rather than failing
  // recovery.
  for (const SchedulerLogRecord& record : records) {
    switch (record.kind) {
      case SchedulerLogRecord::Kind::kProcessBegin: {
        auto def_it = defs_by_name.find(record.def_name);
        if (def_it == defs_by_name.end()) {
          return Status::NotFound(
              StrCat("unknown process definition: ", record.def_name));
        }
        auto rt = std::make_unique<ProcessRuntime>(record.pid, def_it->second);
        rt->param = record.param;
        TPM_RETURN_IF_ERROR(history_.AddProcess(record.pid, def_it->second));
        next_pid_ = std::max(next_pid_, record.pid.value() + 1);
        EmplaceRuntime(record.pid, std::move(rt));
        break;
      }
      case SchedulerLogRecord::Kind::kActivityCommitted: {
        ProcessRuntime* rt = FindRuntime(record.pid);
        if (rt == nullptr || !rt->state.RecordCommit(record.activity).ok()) {
          ++stats_.recovered_log_anomalies;
          break;
        }
        TPM_RETURN_IF_ERROR(history_.Append(
            ScheduleEvent::Activity(
                ActivityInstance{record.pid, record.activity, false}),
            /*enforce_legal=*/false));
        break;
      }
      case SchedulerLogRecord::Kind::kActivityCompensated: {
        ProcessRuntime* rt = FindRuntime(record.pid);
        if (rt == nullptr ||
            !rt->state.RecordCompensation(record.activity).ok()) {
          ++stats_.recovered_log_anomalies;
          break;
        }
        TPM_RETURN_IF_ERROR(history_.Append(
            ScheduleEvent::Activity(
                ActivityInstance{record.pid, record.activity, true}),
            /*enforce_legal=*/false));
        break;
      }
      case SchedulerLogRecord::Kind::kProcessCommitted: {
        ProcessRuntime* rt = FindRuntime(record.pid);
        if (rt != nullptr) rt->state.RecordCommitProcess();
        TPM_RETURN_IF_ERROR(history_.Append(
            ScheduleEvent::Commit(record.pid), /*enforce_legal=*/false));
        break;
      }
      case SchedulerLogRecord::Kind::kProcessAborted: {
        ProcessRuntime* rt = FindRuntime(record.pid);
        if (rt != nullptr) rt->state.RecordAbortProcess();
        TPM_RETURN_IF_ERROR(history_.Append(
            ScheduleEvent::Abort(record.pid), /*enforce_legal=*/false));
        break;
      }
      case SchedulerLogRecord::Kind::kCommitHeld: {
        if (FindRuntime(record.pid) == nullptr) {
          ++stats_.recovered_log_anomalies;
          break;
        }
        if (!record.activity.valid()) {
          // The vote marker: only its durable presence means "voted".
          held_voted.insert(record.pid.value());
          break;
        }
        const size_t colon = record.def_name.find(':');
        if (colon == std::string::npos) {
          ++stats_.recovered_log_anomalies;
          break;
        }
        Result<int64_t> subsystem_id =
            ParseInt64(record.def_name.substr(0, colon));
        Result<int64_t> tx = ParseInt64(record.def_name.substr(colon + 1));
        if (!subsystem_id.ok() || !tx.ok()) {
          ++stats_.recovered_log_anomalies;
          break;
        }
        held_branches[record.pid.value()].push_back(
            HeldBranch{record.activity, *subsystem_id, *tx});
        break;
      }
    }
  }

  // Replay flipped outcomes directly (no FinishProcess), so rebuild the
  // active index before anything consumes it — slot order keeps it sorted.
  active_pids_.clear();
  for (const auto& rt : runtimes_) {
    if (rt != nullptr && rt->state.IsActive()) active_pids_.push_back(rt->pid);
  }

  // Resolve in-doubt spanning sub-processes (Lemma 1 generalized so a
  // shard is a 2PC participant). A durable vote marker plus a coordinator
  // commit decision — relayed by the caller through `directives`, keyed by
  // sub-process definition name — means the spanning process globally
  // committed: finish phase two for the recorded branches and commit the
  // sub-process. Voted sub-processes WITHOUT a decision fall through to
  // presumed abort below; their branches were never released into the
  // history, so rolling them back leaves nothing to compensate.
  if (directives != nullptr && !directives->force_commit.empty()) {
    for (const auto& rt : runtimes_) {
      if (rt == nullptr || !rt->state.IsActive()) continue;
      if (held_voted.count(rt->pid.value()) == 0) continue;
      if (directives->force_commit.count(rt->def->name()) == 0) continue;
      for (const HeldBranch& b : held_branches[rt->pid.value()]) {
        if (rt->state.IsCommitted(b.activity)) {
          continue;  // released and logged before the crash
        }
        Subsystem* subsystem = nullptr;
        for (Subsystem* s : subsystems_) {
          if (s->id().value() == b.subsystem_id) subsystem = s;
        }
        if (subsystem == nullptr) {
          return Status::NotFound(StrCat(
              "held branch names unknown subsystem ", b.subsystem_id));
        }
        // The branch may have been committed in phase two right before the
        // crash with its ACT record lost — then CommitPrepared fails and
        // the effect is already durable, which is exactly the state this
        // path establishes.
        (void)subsystem->CommitPrepared(TxId(b.tx));
        if (!rt->state.RecordCommit(b.activity).ok()) {
          ++stats_.recovered_log_anomalies;
          continue;
        }
        TPM_RETURN_IF_ERROR(history_.Append(
            ScheduleEvent::Activity(
                ActivityInstance{rt->pid, b.activity, false}),
            /*enforce_legal=*/false));
        TPM_RETURN_IF_ERROR(
            log_->Append({SchedulerLogRecord::Kind::kActivityCommitted,
                          rt->pid, b.activity, "", 0}));
      }
      TPM_RETURN_IF_ERROR(FinishProcess(*rt, /*committed=*/true));
      ++stats_.in_doubt_resolved;
    }
  }

  // Presumed abort: prepared branches whose commit was never decided are
  // rolled back in every subsystem. (After the force-commit pass — replay
  // itself never touches subsystems, and phase two above must see the
  // prepared transactions still in place.)
  for (Subsystem* subsystem : subsystems_) {
    TPM_RETURN_IF_ERROR(subsystem->AbortAllPrepared());
  }

  // Group abort of all in-flight processes (Def. 8 2b): compensations of
  // all completions first, in global reverse order of the original commits
  // (Lemma 2), then the forward recovery paths (Lemma 3).
  struct BackwardItem {
    ProcessId pid;
    ActivityId activity;
    size_t log_pos;
  };
  std::vector<BackwardItem> backward;
  std::vector<std::pair<ProcessId, ActivityId>> forward;
  std::vector<ProcessId> aborting;

  // Position of each original commit in the log for Lemma 2 ordering.
  std::map<std::pair<int64_t, int64_t>, size_t> act_pos;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].kind == SchedulerLogRecord::Kind::kActivityCommitted) {
      act_pos[{records[i].pid.value(), records[i].activity.value()}] = i;
    }
  }

  for (const auto& rt : runtimes_) {
    if (rt == nullptr || !rt->state.IsActive()) continue;
    aborting.push_back(rt->pid);
    TPM_ASSIGN_OR_RETURN(Completion completion, ComputeCompletion(rt->state));
    for (const CompletionStep& step : completion.steps) {
      if (step.inverse) {
        auto pos = act_pos.find({rt->pid.value(), step.activity.value()});
        backward.push_back(BackwardItem{
            rt->pid, step.activity,
            pos == act_pos.end() ? size_t{0} : pos->second});
      } else {
        forward.emplace_back(rt->pid, step.activity);
      }
    }
  }
  std::stable_sort(backward.begin(), backward.end(),
                   [](const BackwardItem& a, const BackwardItem& b) {
                     return a.log_pos > b.log_pos;
                   });

  auto execute_step = [&](ProcessId pid, ActivityId activity,
                          bool inverse) -> Status {
    ProcessRuntime& rt = *FindRuntime(pid);
    const ActivityDecl& decl = rt.def->activity(activity);
    ServiceId service = inverse ? decl.compensation_service : decl.service;
    TPM_ASSIGN_OR_RETURN(Subsystem * subsystem, RouteService(service));
    ServiceRequest request{pid, activity, rt.param};
    // Same write-ahead discipline as normal execution: the COMP intention
    // is durable before the inverse runs, so a crash during this recovery
    // never leads a second recovery to re-apply it.
    if (inverse) {
      TPM_RETURN_IF_ERROR(LogCompensationIntent(pid, activity));
    }
    for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
      Result<InvocationOutcome> outcome =
          subsystem->Invoke(service, request);
      if (outcome.ok()) {
        return EmitActivity(rt, activity, inverse);
      }
      if (!outcome.status().IsAborted()) return outcome.status();
    }
    return Status::Internal("recovery step exceeded retry cap");
  };

  for (const BackwardItem& item : backward) {
    TPM_RETURN_IF_ERROR(execute_step(item.pid, item.activity, true));
  }
  for (const auto& [pid, activity] : forward) {
    TPM_RETURN_IF_ERROR(execute_step(pid, activity, false));
  }
  for (ProcessId pid : aborting) {
    TPM_RETURN_IF_ERROR(FinishProcess(*FindRuntime(pid), /*committed=*/false));
  }
  // Make the records appended during recovery (forward ACTs, terminal
  // ABORTs) durable before declaring recovery complete — in asynchronous
  // mode an immediate second crash would otherwise replay from the
  // pre-recovery log and redo work whose effects already reached the
  // subsystems.
  return log_->Flush();
}

}  // namespace tpm
