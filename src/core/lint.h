#ifndef TPM_CORE_LINT_H_
#define TPM_CORE_LINT_H_

#include <string>
#include <vector>

#include "core/conflict.h"
#include "core/process.h"

namespace tpm {

/// A diagnostic produced by the process linter.
struct LintDiagnostic {
  enum class Severity { kWarning, kError };
  Severity severity = Severity::kWarning;
  std::string message;

  std::string ToString() const;
};

/// Static analysis of a process definition beyond structural validity —
/// the checks a process designer wants before deployment:
///
///  errors:
///   * not a well-formed flex structure (no guaranteed termination);
///   * activity unreachable from the roots;
///  warnings:
///   * two activities share a compensation service (compensating one may
///     undo the other's effect if the service is not idempotent per
///     activity);
///   * an activity's compensation service equals its own service (the
///     "inverse" repeats the action);
///   * self-conflicting process: two activities of the process use
///     conflicting services with the later one positioned before the
///     earlier could be compensated — combined with concurrency this
///     invites crossings (needs the conflict spec);
///   * an alternative branch that can never be reached (its branch point
///     has an all-retriable primary subtree, which cannot fail);
///   * a pivot with alternatives whose primary group is all-retriable
///     (same reachability problem, stated from the pivot's perspective).
std::vector<LintDiagnostic> LintProcess(const ProcessDef& def,
                                        const ConflictSpec* spec = nullptr);

}  // namespace tpm

#endif  // TPM_CORE_LINT_H_
