#ifndef TPM_CORE_RECOVERABILITY_H_
#define TPM_CORE_RECOVERABILITY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/conflict.h"
#include "core/schedule.h"

namespace tpm {

/// A violation of process-recoverability.
struct ProcRecViolation {
  ActivityInstance earlier;  // a_{i_k}
  ActivityInstance later;    // a_{j_l}, conflicting, after earlier
  /// Which clause of Def. 11 is violated: 1 = commit order (C_i must
  /// precede C_j), 2 = order of the next non-compensatable activities.
  int clause = 0;
  std::string ToString() const;
};

/// Result of a process-recoverability analysis.
struct ProcRecOutcome {
  bool process_recoverable = false;
  std::vector<ProcRecViolation> violations;
};

/// Checks process-recoverability (Proc-REC, Def. 11): for each pair of
/// conflicting activities a_{i_k} <<_S a_{j_l},
///
///   1. C_i precedes C_j, and
///   2. the next non-compensatable activity of P_j following a_{j_l}
///      succeeds the next non-compensatable activity of P_i following
///      a_{i_k}.
///
/// Interpretation choices (documented in DESIGN.md):
/// * If C_j is absent (P_j did not commit), clause 1 is not violated; if
///   C_j is present but C_i absent, it is.
/// * Clause 2 binds only when both "next non-compensatable" activities
///   exist in the schedule; when P_i executes no further non-compensatable
///   activity, no recovery hazard from P_i's side arises and the clause is
///   vacuous.
/// * Aborted invocations are effect-free and induce no conflicts.
ProcRecOutcome AnalyzeProcessRecoverability(const ProcessSchedule& schedule,
                                            const ConflictSpec& spec);

/// Convenience wrapper.
bool IsProcessRecoverable(const ProcessSchedule& schedule,
                          const ConflictSpec& spec);

}  // namespace tpm

#endif  // TPM_CORE_RECOVERABILITY_H_
