#include "core/sot.h"

#include <map>

#include "core/serializability.h"

namespace tpm {

bool IsSOT(const ProcessSchedule& schedule, const ConflictSpec& spec) {
  if (!IsSerializable(schedule, spec)) return false;

  // Position of each process's terminal event (commit, abort, or group
  // abort membership).
  std::map<ProcessId, size_t> terminal_pos;
  const auto& events = schedule.events();
  for (size_t i = 0; i < events.size(); ++i) {
    switch (events[i].type) {
      case EventType::kCommit:
      case EventType::kAbort:
        terminal_pos[events[i].process] = i;
        break;
      case EventType::kGroupAbort:
        for (ProcessId pid : events[i].group) terminal_pos[pid] = i;
        break;
      case EventType::kActivity:
        break;
    }
  }

  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type != EventType::kActivity ||
        events[i].aborted_invocation) {
      continue;
    }
    for (size_t j = i + 1; j < events.size(); ++j) {
      if (events[j].type != EventType::kActivity ||
          events[j].aborted_invocation) {
        continue;
      }
      if (!schedule.InstancesConflict(events[i].act, events[j].act, spec)) {
        continue;
      }
      auto ti = terminal_pos.find(events[i].act.process);
      auto tj = terminal_pos.find(events[j].act.process);
      if (ti != terminal_pos.end() && tj != terminal_pos.end() &&
          ti->second > tj->second) {
        return false;  // terminations against the conflict order
      }
    }
  }
  return true;
}

}  // namespace tpm
