#ifndef TPM_CORE_SERIALIZATION_GRAPH_H_
#define TPM_CORE_SERIALIZATION_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace tpm {

/// The serialization graph (SGT state, §3.5): nodes are processes, edges are
/// conflict-order constraints P_i -> P_j (real, from emitted conflicting
/// activities, or virtual, from the completion pre-orders). Shared by the
/// online scheduler and the offline ConflictGraph analyses so both paths run
/// on one graph engine.
///
/// Storage is dense: every process occupies a slot in a flat node vector,
/// slots of removed (pruned) processes are recycled through a free list, and
/// adjacency is flat `std::vector<int>` per slot. Reachability queries run
/// an iterative DFS over generation-stamped marks, so the scheduler's
/// hottest path — a reachability test per admission decision — performs no
/// per-query allocation.
class SerializationGraph {
 public:
  SerializationGraph() = default;

  size_t num_nodes() const { return node_of_.size(); }
  size_t num_edges() const { return num_edges_; }

  bool Contains(ProcessId pid) const { return SlotOf(pid) >= 0; }

  /// Interns `pid` as a node, reusing a freed slot if one is available.
  /// Idempotent.
  void AddNode(ProcessId pid);

  /// Adds the edge from -> to, interning both endpoints. Duplicate edges
  /// and self-edges are ignored.
  void AddEdge(ProcessId from, ProcessId to);

  bool HasEdge(ProcessId from, ProcessId to) const;

  /// True iff `pid` has at least one incoming edge.
  bool HasPredecessors(ProcessId pid) const;

  /// True iff `to` is reachable from `from` (reflexively: from == to).
  bool Reaches(ProcessId from, ProcessId to) const;

  /// True iff adding the edges {p -> pid : p in new_preds} would close a
  /// cycle, i.e. `pid` already reaches some p. `new_preds` must be sorted.
  bool WouldCycle(ProcessId pid, const std::vector<ProcessId>& new_preds) const;

  /// Invokes fn(ProcessId) for each direct successor / predecessor.
  template <typename Fn>
  void ForEachSuccessor(ProcessId pid, Fn fn) const {
    int slot = SlotOf(pid);
    if (slot < 0) return;
    for (int s : nodes_[slot].succ) fn(nodes_[s].pid);
  }
  template <typename Fn>
  void ForEachPredecessor(ProcessId pid, Fn fn) const {
    int slot = SlotOf(pid);
    if (slot < 0) return;
    for (int s : nodes_[slot].pred) fn(nodes_[s].pid);
  }

  /// True iff some node strictly reachable from `from` (`from` itself is
  /// skipped, even via a cycle back to it) satisfies `pred`.
  template <typename Fn>
  bool AnyReachable(ProcessId from, Fn pred) const {
    int slot = SlotOf(from);
    if (slot < 0) return false;
    NewGeneration();
    stack_.clear();
    stack_.push_back(slot);
    mark_[slot] = generation_;
    while (!stack_.empty()) {
      int v = stack_.back();
      stack_.pop_back();
      for (int w : nodes_[v].succ) {
        if (w != slot && pred(nodes_[w].pid)) return true;
        if (mark_[w] != generation_) {
          mark_[w] = generation_;
          stack_.push_back(w);
        }
      }
    }
    return false;
  }

  /// Removes the node and all incident edges; the slot is recycled.
  /// No-op for unknown processes.
  void RemoveNode(ProcessId pid);

  void Clear();

  // --- Whole-graph analyses (the offline ConflictGraph path). ---

  bool HasCycle() const;

  /// One directed cycle (first == last), empty if acyclic.
  std::vector<ProcessId> FindCycle() const;

  /// A topological order of all nodes, or an error if cyclic.
  Result<std::vector<ProcessId>> TopologicalOrder() const;

 private:
  struct Node {
    ProcessId pid;               // invalid while the slot is on the free list
    std::vector<int> succ;
    std::vector<int> pred;
  };

  int SlotOf(ProcessId pid) const {
    auto it = node_of_.find(pid);
    return it == node_of_.end() ? -1 : it->second;
  }
  int Intern(ProcessId pid);
  void NewGeneration() const;
  bool DfsFindCycle(std::vector<int>* cycle_out) const;

  std::vector<Node> nodes_;
  std::vector<int> free_;
  std::unordered_map<ProcessId, int> node_of_;
  size_t num_edges_ = 0;
  // Generation-stamped DFS scratch; queries are logically const.
  mutable std::vector<uint32_t> mark_;
  mutable uint32_t generation_ = 0;
  mutable std::vector<int> stack_;
};

}  // namespace tpm

#endif  // TPM_CORE_SERIALIZATION_GRAPH_H_
