#include "core/serialization_graph.h"

#include <algorithm>

namespace tpm {

int SerializationGraph::Intern(ProcessId pid) {
  auto it = node_of_.find(pid);
  if (it != node_of_.end()) return it->second;
  int slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    nodes_[slot].pid = pid;
  } else {
    slot = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{pid, {}, {}});
    mark_.push_back(0);
  }
  node_of_.emplace(pid, slot);
  return slot;
}

void SerializationGraph::AddNode(ProcessId pid) { Intern(pid); }

void SerializationGraph::AddEdge(ProcessId from, ProcessId to) {
  if (from == to) return;
  int f = Intern(from);
  int t = Intern(to);
  auto& succ = nodes_[f].succ;
  if (std::find(succ.begin(), succ.end(), t) != succ.end()) return;
  succ.push_back(t);
  nodes_[t].pred.push_back(f);
  ++num_edges_;
}

bool SerializationGraph::HasEdge(ProcessId from, ProcessId to) const {
  int f = SlotOf(from);
  int t = SlotOf(to);
  if (f < 0 || t < 0) return false;
  const auto& succ = nodes_[f].succ;
  return std::find(succ.begin(), succ.end(), t) != succ.end();
}

bool SerializationGraph::HasPredecessors(ProcessId pid) const {
  int slot = SlotOf(pid);
  return slot >= 0 && !nodes_[slot].pred.empty();
}

void SerializationGraph::NewGeneration() const {
  if (++generation_ == 0) {
    // Wrapped: every stale mark could collide with the new generation.
    std::fill(mark_.begin(), mark_.end(), 0);
    generation_ = 1;
  }
}

bool SerializationGraph::Reaches(ProcessId from, ProcessId to) const {
  if (from == to) return true;
  int f = SlotOf(from);
  int t = SlotOf(to);
  if (f < 0 || t < 0) return false;
  NewGeneration();
  stack_.clear();
  stack_.push_back(f);
  mark_[f] = generation_;
  while (!stack_.empty()) {
    int v = stack_.back();
    stack_.pop_back();
    for (int w : nodes_[v].succ) {
      if (w == t) return true;
      if (mark_[w] != generation_) {
        mark_[w] = generation_;
        stack_.push_back(w);
      }
    }
  }
  return false;
}

bool SerializationGraph::WouldCycle(
    ProcessId pid, const std::vector<ProcessId>& new_preds) const {
  if (new_preds.empty()) return false;
  int slot = SlotOf(pid);
  if (slot < 0) return false;
  NewGeneration();
  stack_.clear();
  stack_.push_back(slot);
  mark_[slot] = generation_;
  while (!stack_.empty()) {
    int v = stack_.back();
    stack_.pop_back();
    for (int w : nodes_[v].succ) {
      if (std::binary_search(new_preds.begin(), new_preds.end(),
                             nodes_[w].pid)) {
        return true;
      }
      if (mark_[w] != generation_) {
        mark_[w] = generation_;
        stack_.push_back(w);
      }
    }
  }
  return false;
}

void SerializationGraph::RemoveNode(ProcessId pid) {
  int slot = SlotOf(pid);
  if (slot < 0) return;
  Node& node = nodes_[slot];
  for (int s : node.succ) {
    auto& pred = nodes_[s].pred;
    pred.erase(std::remove(pred.begin(), pred.end(), slot), pred.end());
  }
  for (int p : node.pred) {
    auto& succ = nodes_[p].succ;
    succ.erase(std::remove(succ.begin(), succ.end(), slot), succ.end());
  }
  num_edges_ -= node.succ.size() + node.pred.size();
  node.succ.clear();
  node.pred.clear();
  node.pid = ProcessId();
  node_of_.erase(pid);
  free_.push_back(slot);
}

void SerializationGraph::Clear() {
  nodes_.clear();
  free_.clear();
  node_of_.clear();
  num_edges_ = 0;
  mark_.clear();
  generation_ = 0;
  stack_.clear();
}

// The whole-graph analyses mirror the classical algorithms of common/dag.h
// (same traversal order over slots) so ConflictGraph results — cycle
// witnesses, serialization orders — are unchanged by the move to this
// engine. Free-list slots (pid invalid) are skipped.

namespace {
enum class Color : uint8_t { kWhite, kGray, kBlack };
}  // namespace

bool SerializationGraph::DfsFindCycle(std::vector<int>* cycle_out) const {
  const int n = static_cast<int>(nodes_.size());
  std::vector<Color> color(n, Color::kWhite);
  std::vector<int> parent(n, -1);
  for (int root = 0; root < n; ++root) {
    if (color[root] != Color::kWhite || !nodes_[root].pid.valid()) continue;
    std::vector<std::pair<int, size_t>> stack;
    stack.emplace_back(root, 0);
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      if (idx < nodes_[node].succ.size()) {
        int next = nodes_[node].succ[idx++];
        if (color[next] == Color::kWhite) {
          color[next] = Color::kGray;
          parent[next] = node;
          stack.emplace_back(next, 0);
        } else if (color[next] == Color::kGray) {
          if (cycle_out != nullptr) {
            std::vector<int> cycle;
            cycle.push_back(next);
            for (int v = node; v != next && v != -1; v = parent[v]) {
              cycle.push_back(v);
            }
            cycle.push_back(next);
            std::reverse(cycle.begin(), cycle.end());
            *cycle_out = std::move(cycle);
          }
          return true;
        }
      } else {
        color[node] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

bool SerializationGraph::HasCycle() const { return DfsFindCycle(nullptr); }

std::vector<ProcessId> SerializationGraph::FindCycle() const {
  std::vector<int> cycle;
  DfsFindCycle(&cycle);
  std::vector<ProcessId> result;
  result.reserve(cycle.size());
  for (int slot : cycle) result.push_back(nodes_[slot].pid);
  return result;
}

Result<std::vector<ProcessId>> SerializationGraph::TopologicalOrder() const {
  const int n = static_cast<int>(nodes_.size());
  std::vector<int> indegree(n, 0);
  std::vector<int> ready;
  for (int v = 0; v < n; ++v) {
    if (!nodes_[v].pid.valid()) continue;
    indegree[v] = static_cast<int>(nodes_[v].pred.size());
    if (indegree[v] == 0) ready.push_back(v);
  }
  std::vector<ProcessId> order;
  order.reserve(node_of_.size());
  while (!ready.empty()) {
    int v = ready.back();
    ready.pop_back();
    order.push_back(nodes_[v].pid);
    for (int w : nodes_[v].succ) {
      if (--indegree[w] == 0) ready.push_back(w);
    }
  }
  if (order.size() != node_of_.size()) {
    return Status::InvalidArgument("graph contains a cycle");
  }
  return order;
}

}  // namespace tpm
