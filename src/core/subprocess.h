#ifndef TPM_CORE_SUBPROCESS_H_
#define TPM_CORE_SUBPROCESS_H_

#include "common/status.h"
#include "core/process.h"

namespace tpm {

/// Subprocess composition — the future work announced in the paper's
/// conclusion ("expand the framework ... to identify transactional
/// execution guarantees of subprocesses").
///
/// A process with guaranteed termination, used as a single step of a parent
/// process, offers the parent a termination guarantee derivable from its
/// structure:
///
///  * all activities compensatable            -> kCompensatable
///    (the whole subprocess can be undone by compensating in reverse);
///  * all activities retriable                -> kRetriable
///    (no step can fail, so the subprocess always commits);
///  * all activities compensatable-retriable  -> kCompensatableRetriable;
///  * otherwise (it contains a pivot, or mixes compensatable and plain
///    retriable stages)                       -> kPivot:
///    before its state-determining activity it may fail for good, and
///    after it its effects are permanent — exactly the pivot contract.
///
/// ClassifySubprocessGuarantee computes that guarantee;
/// InlineSubprocess splices the subprocess's activity graph into a parent,
/// replacing a placeholder activity, so the flat scheduler can execute the
/// hierarchy while the classification tells designers what structure the
/// parent needs around it (e.g., a pivot-guarantee subprocess needs an
/// all-retriable alternative or must sit in pivot position).

/// Returns the termination guarantee `child` offers as a single step.
/// Requires well-formed flex structure.
Result<ActivityKind> ClassifySubprocessGuarantee(const ProcessDef& child);

/// Returns a new validated process in which activity `slot` of `parent` is
/// replaced by the whole of `child`:
///
///  * every edge u -> slot becomes u -> r for each root r of child (same
///    preference),
///  * every edge slot -> v becomes l -> v for each leaf l of child (same
///    preference),
///  * child-internal activities, edges and preferences are copied
///    verbatim; activity ids are renumbered, names prefixed with
///    "<child-name>/".
///
/// The declared kind of `slot` must match ClassifySubprocessGuarantee(child)
/// — the parent's structural guarantees (well-formedness) were established
/// against that contract. The result is re-validated, including the
/// well-formed flex structure.
Result<ProcessDef> InlineSubprocess(const ProcessDef& parent, ActivityId slot,
                                    const ProcessDef& child);

}  // namespace tpm

#endif  // TPM_CORE_SUBPROCESS_H_
