#ifndef TPM_CORE_CONFLICT_H_
#define TPM_CORE_CONFLICT_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "core/activity.h"

namespace tpm {

/// Commutativity / conflict specification (Def. 6).
///
/// Def. 6 defines commutativity semantically via return values over all
/// contexts, which is not decidable from syntax. As in practical schedulers
/// built on the unified theory, conflicts are *declared* at service
/// granularity: every activity is bound to a ServiceId, and two activity
/// instances conflict iff their services are related in the conflict
/// relation (and they belong to different processes — intra-process order is
/// fixed by the precedence order anyway).
///
/// Perfect commutativity (§3.2) is built in: the inverse flag of an
/// ActivityInstance is ignored when testing conflicts, so a^-1 conflicts
/// with exactly the activities a conflicts with.
///
/// A service may additionally be declared *effect-free* (Def. 1): its
/// executions never change the return values of surrounding activities
/// (e.g., a pure query). Effect-free activities of non-committed processes
/// may be removed by reduction rule 3 (Def. 9).
///
/// Services are interned into a dense index (RegisterService / IndexOf) and
/// the relation is stored as bitset adjacency rows plus per-service partner
/// lists, so `ServicesConflict` is O(1) and schedulers can keep their own
/// per-service side tables as flat vectors over the dense index.
class ConflictSpec {
 public:
  ConflictSpec() = default;

  /// Interns `service` into the dense index without declaring any conflict.
  /// Idempotent; returns the service's dense index.
  int RegisterService(ServiceId service);

  /// Declares that `a` and `b` do not commute. Symmetric; self-conflict
  /// (a == b) is allowed and common (a service conflicts with itself).
  void AddConflict(ServiceId a, ServiceId b);

  /// Declares that every execution of `service` is effect-free.
  void MarkEffectFree(ServiceId service);

  bool ServicesConflict(ServiceId a, ServiceId b) const;
  bool IsEffectFreeService(ServiceId service) const;

  /// Number of interned services (dense indices are [0, NumServices())).
  size_t NumServices() const { return services_.size(); }

  /// Dense index of `service`, or -1 if never interned.
  int IndexOf(ServiceId service) const {
    auto it = index_of_.find(service);
    return it == index_of_.end() ? -1 : it->second;
  }

  ServiceId ServiceAt(size_t index) const { return services_[index]; }

  /// Services conflicting with `service` (including `service` itself when
  /// self-conflicting); empty for services with no declared conflicts.
  const std::vector<ServiceId>& PartnersOf(ServiceId service) const;

  /// Number of declared conflicting (unordered) service pairs.
  size_t num_conflict_pairs() const { return num_pairs_; }

  /// All declared conflicting pairs (a <= b normalized, sorted).
  std::vector<std::pair<ServiceId, ServiceId>> ConflictPairs() const;

 private:
  bool TestBit(int a, int b) const;
  void SetBit(int a, int b);

  std::unordered_map<ServiceId, int> index_of_;
  std::vector<ServiceId> services_;
  /// Bitset adjacency: rows_[i] holds a bit per dense service index. Rows
  /// grow lazily to the highest partner index set.
  std::vector<std::vector<uint64_t>> rows_;
  std::vector<std::vector<ServiceId>> partners_;
  std::vector<bool> effect_free_;
  size_t num_pairs_ = 0;
};

}  // namespace tpm

#endif  // TPM_CORE_CONFLICT_H_
