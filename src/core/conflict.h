#ifndef TPM_CORE_CONFLICT_H_
#define TPM_CORE_CONFLICT_H_

#include <set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "core/activity.h"

namespace tpm {

/// Commutativity / conflict specification (Def. 6).
///
/// Def. 6 defines commutativity semantically via return values over all
/// contexts, which is not decidable from syntax. As in practical schedulers
/// built on the unified theory, conflicts are *declared* at service
/// granularity: every activity is bound to a ServiceId, and two activity
/// instances conflict iff their services are related in the conflict
/// relation (and they belong to different processes — intra-process order is
/// fixed by the precedence order anyway).
///
/// Perfect commutativity (§3.2) is built in: the inverse flag of an
/// ActivityInstance is ignored when testing conflicts, so a^-1 conflicts
/// with exactly the activities a conflicts with.
///
/// A service may additionally be declared *effect-free* (Def. 1): its
/// executions never change the return values of surrounding activities
/// (e.g., a pure query). Effect-free activities of non-committed processes
/// may be removed by reduction rule 3 (Def. 9).
class ConflictSpec {
 public:
  ConflictSpec() = default;

  /// Declares that `a` and `b` do not commute. Symmetric; self-conflict
  /// (a == b) is allowed and common (a service conflicts with itself).
  void AddConflict(ServiceId a, ServiceId b);

  /// Declares that every execution of `service` is effect-free.
  void MarkEffectFree(ServiceId service);

  bool ServicesConflict(ServiceId a, ServiceId b) const;
  bool IsEffectFreeService(ServiceId service) const;

  /// Number of declared conflicting (unordered) service pairs.
  size_t num_conflict_pairs() const { return conflicts_.size(); }

  /// All declared conflicting pairs (a <= b normalized).
  std::vector<std::pair<ServiceId, ServiceId>> ConflictPairs() const;

 private:
  std::set<std::pair<ServiceId, ServiceId>> conflicts_;  // normalized a <= b
  std::set<ServiceId> effect_free_;
};

}  // namespace tpm

#endif  // TPM_CORE_CONFLICT_H_
