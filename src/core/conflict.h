#ifndef TPM_CORE_CONFLICT_H_
#define TPM_CORE_CONFLICT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "core/activity.h"

namespace tpm {

/// Commutativity / conflict specification (Def. 6).
///
/// Def. 6 defines commutativity semantically via return values over all
/// contexts, which is not decidable from syntax. As in practical schedulers
/// built on the unified theory, conflicts are *declared* at service
/// granularity: every activity is bound to a ServiceId, and two activity
/// instances conflict iff their services are related in the conflict
/// relation (and they belong to different processes — intra-process order is
/// fixed by the precedence order anyway).
///
/// Layered under the service-level relation is an optional *operation-level
/// commutativity table* (ADT semantics, §3.2's semantic conflicts): each
/// service may be bound to an interned operation kind (e.g. "escrow.inc",
/// "queue.enq"), and declared commuting op pairs *downgrade* a service-level
/// conflict to a non-conflict. The op layer only ever removes conflicts —
/// with no ops bound (or the layer disabled) the relation is exactly the
/// service-level one, so read/write-derived conflicts remain the
/// conservative upper bound.
///
/// Perfect commutativity (§3.2) is built in twice over: the inverse flag of
/// an ActivityInstance is ignored when testing conflicts, so a^-1 conflicts
/// with exactly the activities a conflicts with; and the op table is closed
/// under compensation pairing by construction — declaring that ops a and b
/// commute also declares a^-1/b, a/b^-1 and a^-1/b^-1 commuting for any
/// inverses registered via SetInverseOp (Def. 2 requires the compensation
/// to be at least as commutative as its original, else compensating could
/// introduce conflicts the forward execution never had).
///
/// A service may additionally be declared *effect-free* (Def. 1): its
/// executions never change the return values of surrounding activities
/// (e.g., a pure query). Effect-free activities of non-committed processes
/// may be removed by reduction rule 3 (Def. 9).
///
/// Services are interned into a dense index (RegisterService / IndexOf) and
/// the relation is stored as bitset adjacency rows plus per-service partner
/// lists, so `ServicesConflict` is O(1) and schedulers can keep their own
/// per-service side tables as flat vectors over the dense index.
class ConflictSpec {
 public:
  ConflictSpec() = default;

  /// Interns `service` into the dense index without declaring any conflict.
  /// Idempotent; returns the service's dense index.
  int RegisterService(ServiceId service);

  /// Declares that `a` and `b` do not commute. Symmetric; self-conflict
  /// (a == b) is allowed and common (a service conflicts with itself).
  void AddConflict(ServiceId a, ServiceId b);

  /// Declares that every execution of `service` is effect-free.
  void MarkEffectFree(ServiceId service);

  /// Effective conflict test: the service-level relation, minus pairs whose
  /// bound operation kinds are declared commuting (while the op layer is
  /// enabled).
  bool ServicesConflict(ServiceId a, ServiceId b) const;
  bool IsEffectFreeService(ServiceId service) const;

  /// Number of interned services (dense indices are [0, NumServices())).
  size_t NumServices() const { return services_.size(); }

  /// Dense index of `service`, or -1 if never interned.
  int IndexOf(ServiceId service) const {
    auto it = index_of_.find(service);
    return it == index_of_.end() ? -1 : it->second;
  }

  ServiceId ServiceAt(size_t index) const { return services_[index]; }

  /// Services *effectively* conflicting with `service` — consistent with
  /// ServicesConflict, i.e. op-commuting pairs are filtered out (including
  /// `service` itself when self-conflicting); empty for services with no
  /// declared conflicts.
  const std::vector<ServiceId>& PartnersOf(ServiceId service) const;

  /// Number of declared service-level conflicting (unordered) pairs —
  /// before op-table downgrades.
  size_t num_conflict_pairs() const { return num_pairs_; }

  /// All declared service-level conflicting pairs (a <= b normalized,
  /// sorted) — the raw relation, used to transfer a spec; replaying these
  /// pairs plus the op bindings reproduces the effective relation.
  std::vector<std::pair<ServiceId, ServiceId>> ConflictPairs() const;

  // --- Operation-level commutativity (ADT conflict tables). ---

  /// Interns an operation kind by name (e.g. "escrow.inc"); idempotent.
  /// Returns the dense op index.
  int RegisterOpKind(const std::string& name);

  /// Dense index of the op kind, or -1 if never registered.
  int OpKindIndexOf(const std::string& name) const;

  size_t NumOpKinds() const { return op_names_.size(); }
  const std::string& OpKindName(int op) const { return op_names_[op]; }

  /// Binds `service` to operation kind `op` (a dense op index from
  /// RegisterOpKind). A service has at most one op kind; rebinding
  /// overwrites.
  void BindOp(ServiceId service, int op);

  /// Op kind bound to `service`, or -1 if unbound.
  int OpOf(ServiceId service) const;

  /// Declares that op kinds `a` and `b` commute (symmetric; a == b means
  /// instances of the op commute with each other). Automatically closed
  /// under registered inverses: a^-1/b, a/b^-1, a^-1/b^-1 become commuting
  /// too (perfect-closure, Def. 2).
  void AddCommutingOps(int a, int b);

  /// Registers `inverse` as the compensating op kind of `op` (mutual:
  /// `op` is recorded as the inverse of `inverse` as well). Re-closes the
  /// commuting table over the new pairing.
  void SetInverseOp(int op, int inverse);

  /// Inverse op kind of `op`, or -1 if none registered.
  int InverseOf(int op) const;

  bool OpsCommute(int a, int b) const;

  /// All commuting (unordered) op-kind pairs, a <= b normalized, sorted.
  std::vector<std::pair<int, int>> CommutingOpPairs() const;

  /// Verifies the op table is symmetric and closed under compensation
  /// pairing: for every commuting (a, b) and every registered inverse a^-1,
  /// (a^-1, b) commutes too. Construction enforces this; the check exists
  /// for property tests and for tables deserialized from elsewhere.
  Status VerifyOpTableClosure() const;

  /// Toggles the op layer. Disabled, the effective relation degrades to the
  /// pure service-level (read/write-style) relation — the ablation knob the
  /// semantic-vs-read/write experiments flip on an otherwise identical
  /// workload.
  void set_op_commutativity_enabled(bool enabled);
  bool op_commutativity_enabled() const { return op_enabled_; }

 private:
  bool TestBit(int a, int b) const;
  void SetBit(int a, int b);
  bool TestOpBit(int a, int b) const;
  /// Sets the commuting bit for (a, b) both ways; returns true if new.
  bool SetOpPair(int a, int b);
  /// Re-closes the commuting relation under the inverse pairing (fixpoint).
  void CloseUnderInverses();
  /// True iff the *effective* relation relates the dense indices.
  bool EffectiveConflict(int ia, int ib) const;
  void RebuildEffectivePartners() const;

  std::unordered_map<ServiceId, int> index_of_;
  std::vector<ServiceId> services_;
  /// Bitset adjacency: rows_[i] holds a bit per dense service index. Rows
  /// grow lazily to the highest partner index set.
  std::vector<std::vector<uint64_t>> rows_;
  /// Raw service-level partner lists (pre-downgrade).
  std::vector<std::vector<ServiceId>> partners_;
  std::vector<bool> effect_free_;
  size_t num_pairs_ = 0;

  // Op layer. op_of_ is aligned with services_.
  std::unordered_map<std::string, int> op_index_of_;
  std::vector<std::string> op_names_;
  std::vector<std::vector<uint64_t>> op_rows_;
  std::vector<int> op_inverse_;
  std::vector<int> op_of_;
  bool op_enabled_ = true;

  /// PartnersOf cache of effective (downgraded) partner lists, rebuilt
  /// lazily after any mutation that can change the effective relation.
  mutable std::vector<std::vector<ServiceId>> effective_partners_;
  mutable bool effective_dirty_ = false;
};

}  // namespace tpm

#endif  // TPM_CORE_CONFLICT_H_
