#include "core/execution_state.h"

#include "common/str_util.h"

namespace tpm {

Status ProcessExecutionState::RecordCommit(ActivityId a) {
  if (!def_->HasActivity(a)) {
    return Status::NotFound(StrCat("unknown activity a", a));
  }
  if (committed_.count(a) > 0 && compensated_.count(a) == 0) {
    return Status::AlreadyExists(StrCat("activity a", a, " already committed"));
  }
  // Re-execution after compensation (a new alternative attempt) is allowed:
  // clear the compensated mark and move the activity to its new commit
  // position.
  compensated_.erase(a);
  committed_.insert(a);
  std::erase(committed_order_, a);
  committed_order_.push_back(a);
  return Status::OK();
}

Status ProcessExecutionState::RecordCompensation(ActivityId a) {
  if (committed_.count(a) == 0) {
    return Status::FailedPrecondition(
        StrCat("cannot compensate a", a, ": not committed"));
  }
  if (compensated_.count(a) > 0) {
    return Status::AlreadyExists(StrCat("a", a, " already compensated"));
  }
  if (!IsCompensatableKind(def_->KindOf(a))) {
    return Status::InvalidArgument(
        StrCat("a", a, " is not compensatable"));
  }
  compensated_.insert(a);
  committed_.erase(a);
  return Status::OK();
}

std::vector<ActivityId> ProcessExecutionState::EffectiveCommitted() const {
  std::vector<ActivityId> effective;
  for (ActivityId a : committed_order_) {
    if (committed_.count(a) > 0) effective.push_back(a);
  }
  return effective;
}

RecoveryState ProcessExecutionState::recovery_state() const {
  for (ActivityId a : EffectiveCommitted()) {
    if (IsNonCompensatable(def_->KindOf(a))) {
      return RecoveryState::kForwardRecoverable;
    }
  }
  return RecoveryState::kBackwardRecoverable;
}

Result<ActivityId> ProcessExecutionState::LastStateDetermining() const {
  ActivityId last;
  for (ActivityId a : EffectiveCommitted()) {
    if (IsNonCompensatable(def_->KindOf(a))) last = a;
  }
  if (!last.valid()) {
    return Status::NotFound("process is in B-REC");
  }
  return last;
}

}  // namespace tpm
