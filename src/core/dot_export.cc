#include "core/dot_export.h"

#include <sstream>

#include "common/str_util.h"

namespace tpm {

namespace {

const char* ShapeOf(ActivityKind kind) {
  switch (kind) {
    case ActivityKind::kCompensatable:
      return "box";
    case ActivityKind::kPivot:
      return "diamond";
    case ActivityKind::kRetriable:
      return "ellipse";
    case ActivityKind::kCompensatableRetriable:
      return "doubleoctagon";
  }
  return "box";
}

std::string EventNodeId(size_t index) { return StrCat("e", index); }

}  // namespace

std::string ProcessToDot(const ProcessDef& def) {
  std::ostringstream dot;
  dot << "digraph \"" << def.name() << "\" {\n"
      << "  rankdir=LR;\n"
      << "  node [fontsize=10];\n";
  for (const ActivityDecl& decl : def.activities()) {
    dot << "  a" << decl.id << " [label=\"" << decl.name << "\\n("
        << ActivityKindToString(decl.kind) << ")\" shape="
        << ShapeOf(decl.kind) << "];\n";
  }
  for (const PrecedenceEdge& e : def.edges()) {
    dot << "  a" << e.from << " -> a" << e.to;
    if (e.preference > 0) {
      dot << " [style=dashed color=gray label=\"alt " << e.preference
          << "\"]";
    }
    dot << ";\n";
  }
  dot << "}\n";
  return dot.str();
}

std::string ScheduleToDot(const ProcessSchedule& schedule,
                          const ConflictSpec& spec) {
  std::ostringstream dot;
  dot << "digraph schedule {\n"
      << "  rankdir=LR;\n"
      << "  node [fontsize=10 shape=plaintext];\n";
  const auto& events = schedule.events();

  // One subgraph (row) per process, events chained left to right.
  for (const auto& [pid, def] : schedule.processes()) {
    dot << "  subgraph cluster_p" << pid << " {\n"
        << "    label=\"P" << pid << " (" << def->name() << ")\";\n";
    std::string prev;
    for (size_t i = 0; i < events.size(); ++i) {
      const ScheduleEvent& e = events[i];
      const bool mine =
          (e.type == EventType::kActivity && e.act.process == pid) ||
          ((e.type == EventType::kCommit || e.type == EventType::kAbort) &&
           e.process == pid) ||
          (e.type == EventType::kGroupAbort &&
           std::find(e.group.begin(), e.group.end(), pid) != e.group.end());
      if (!mine) continue;
      dot << "    " << EventNodeId(i) << " [label=\"" << e.ToString()
          << "\"];\n";
      if (!prev.empty()) {
        dot << "    " << prev << " -> " << EventNodeId(i) << ";\n";
      }
      prev = EventNodeId(i);
    }
    dot << "  }\n";
  }

  // Dashed conflict arcs (Figure 4 style).
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type != EventType::kActivity ||
        events[i].aborted_invocation) {
      continue;
    }
    for (size_t j = i + 1; j < events.size(); ++j) {
      if (events[j].type != EventType::kActivity ||
          events[j].aborted_invocation) {
        continue;
      }
      if (schedule.InstancesConflict(events[i].act, events[j].act, spec)) {
        dot << "  " << EventNodeId(i) << " -> " << EventNodeId(j)
            << " [style=dashed color=red constraint=false];\n";
      }
    }
  }
  dot << "}\n";
  return dot.str();
}

std::string ConflictGraphToDot(const ProcessSchedule& schedule,
                               const ConflictSpec& spec) {
  ConflictGraph cg = BuildConflictGraph(schedule, spec);
  std::ostringstream dot;
  dot << "digraph conflicts {\n  node [shape=circle fontsize=10];\n";
  for (ProcessId pid : cg.process_ids) {
    dot << "  p" << pid << " [label=\"P" << pid << "\"];\n";
  }
  for (ProcessId from : cg.process_ids) {
    cg.graph.ForEachSuccessor(from, [&](ProcessId to) {
      dot << "  p" << from << " -> p" << to << ";\n";
    });
  }
  if (!cg.IsAcyclic()) {
    dot << "  label=\"NOT serializable\"; fontcolor=red;\n";
  }
  dot << "}\n";
  return dot.str();
}

}  // namespace tpm
