#include "core/completed_schedule.h"

#include <algorithm>
#include <map>

#include "common/str_util.h"
#include "core/completion.h"

namespace tpm {

namespace {

// Appends the merged completions of `pids` (computed against the current
// state of `completed`) followed by the C_i events.
Status ExpandAbort(const std::vector<ProcessId>& pids,
                   ProcessSchedule* completed) {
  // Position of the (latest effective) commit event of each original
  // activity, used for the global reverse compensation order (Lemma 2).
  std::map<ActivityInstance, size_t> commit_pos;
  const auto& events = completed->events();
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type == EventType::kActivity &&
        !events[i].aborted_invocation && !events[i].act.inverse) {
      commit_pos[events[i].act] = i;
    }
  }

  struct BackwardStep {
    ActivityInstance inst;  // the inverse instance to emit
    size_t original_pos;    // position of the original activity in S
  };
  std::vector<BackwardStep> backward;
  std::vector<ActivityInstance> forward;

  for (ProcessId pid : pids) {
    const ProcessExecutionState* state = completed->StateOf(pid);
    if (state == nullptr) {
      return Status::NotFound(StrCat("unknown process P", pid));
    }
    TPM_ASSIGN_OR_RETURN(Completion completion, ComputeCompletion(*state));
    for (const CompletionStep& step : completion.steps) {
      ActivityInstance inst{pid, step.activity, step.inverse};
      if (step.inverse) {
        ActivityInstance original{pid, step.activity, false};
        auto it = commit_pos.find(original);
        size_t pos = it == commit_pos.end() ? 0 : it->second;
        backward.push_back({inst, pos});
      } else {
        forward.push_back(inst);
      }
    }
  }

  // Compensations in reverse order of the original activities (Lemma 2);
  // stable sort keeps deterministic output when positions tie.
  std::stable_sort(backward.begin(), backward.end(),
                   [](const BackwardStep& a, const BackwardStep& b) {
                     return a.original_pos > b.original_pos;
                   });

  for (const BackwardStep& step : backward) {
    TPM_RETURN_IF_ERROR(
        completed->Append(ScheduleEvent::Activity(step.inst)));
  }
  // All compensations precede all forward steps (Lemma 3). Forward steps
  // keep per-process completion order; `pids` iteration order fixes the
  // inter-process order required by Def. 8 3(d).
  for (const ActivityInstance& inst : forward) {
    TPM_RETURN_IF_ERROR(completed->Append(ScheduleEvent::Activity(inst)));
  }
  for (ProcessId pid : pids) {
    TPM_RETURN_IF_ERROR(completed->Append(ScheduleEvent::Commit(pid)));
  }
  return Status::OK();
}

}  // namespace

Result<ProcessSchedule> CompleteSchedule(const ProcessSchedule& schedule) {
  ProcessSchedule completed;
  for (const auto& [pid, def] : schedule.processes()) {
    TPM_RETURN_IF_ERROR(completed.AddProcess(pid, def));
  }

  for (const ScheduleEvent& event : schedule.events()) {
    switch (event.type) {
      case EventType::kActivity:
      case EventType::kCommit:
        TPM_RETURN_IF_ERROR(completed.Append(event, /*enforce_legal=*/false));
        break;
      case EventType::kAbort:
        TPM_RETURN_IF_ERROR(ExpandAbort({event.process}, &completed));
        break;
      case EventType::kGroupAbort:
        TPM_RETURN_IF_ERROR(ExpandAbort(event.group, &completed));
        break;
    }
  }

  // Def. 8 2(b): all still-active processes are aborted jointly at the end.
  std::vector<ProcessId> active = completed.ActiveProcesses();
  if (!active.empty()) {
    TPM_RETURN_IF_ERROR(ExpandAbort(active, &completed));
  }
  return completed;
}

}  // namespace tpm
