#ifndef TPM_CORE_PROCESS_DSL_H_
#define TPM_CORE_PROCESS_DSL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/conflict.h"
#include "core/process.h"
#include "core/schedule.h"

namespace tpm {

/// A small text format for process definitions, conflict relations and
/// schedules — used by the schedule analyzer example and handy in tests.
///
/// ```
/// # comments start with '#'
/// process P1
///   activity a1 c service=11 comp=111   # c = compensatable
///   activity a2 p service=12            # p = pivot
///   activity a3 r service=13            # r = retriable
///   # cr = compensatable-retriable (footnote 2 extension), needs comp=
///   edge a1 a2
///   edge a2 a3 alt=1                    # preference group 1 (alternative)
/// end
///
/// conflict 11 21                        # services 11 and 21 conflict
/// effectfree 13                         # service 13 is effect-free
///
/// op inc                                # declare ADT operation kinds
/// op dec
/// commute inc inc                       # op-level commutativity table
/// inverse inc dec                       # Def. 2 pairing (closes the table)
/// bind 11 inc                           # service 11 executes op `inc`
///
/// schedule P1.a1 P2.a1 P1.a1^-1 P2.a2! C1 A2 GA(P1,P2)
/// ```
///
/// Schedule tokens: `Proc.activity` executes an activity, `^-1` marks the
/// compensating activity, a trailing `!` marks an aborted invocation,
/// `C<proc>` / `A<proc>` are terminal events, `GA(p,q,...)` a group abort.
struct ParsedWorld {
  std::vector<std::unique_ptr<ProcessDef>> defs;
  std::map<std::string, const ProcessDef*> def_by_name;
  std::map<std::string, ProcessId> pid_by_name;
  ConflictSpec spec;
  ProcessSchedule schedule;
  bool has_schedule = false;
};

/// Parses the DSL. Schedule legality is enforced (illegal schedules are
/// rejected with a position-annotated error) unless a line reads
/// `schedule! ...` (trailing bang), which bypasses legality for building
/// counterexamples.
Result<std::unique_ptr<ParsedWorld>> ParseWorld(const std::string& text);

}  // namespace tpm

#endif  // TPM_CORE_PROCESS_DSL_H_
