#include "core/figures.h"

#include <cstdio>
#include <cstdlib>

namespace tpm {
namespace figures {

namespace {

// Service ids: activity a_{i_j} uses service 10*i + j; its compensation
// service (when compensatable) uses 100 + 10*i + j.
ServiceId Svc(int process, int index) { return ServiceId(10 * process + index); }
ServiceId CompSvc(int process, int index) {
  return ServiceId(100 + 10 * process + index);
}

// Aborts on failure regardless of NDEBUG: these constructions are static
// paper fixtures whose failure is a programming error.
void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "fixture construction failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
}

}  // namespace

PaperWorld::PaperWorld() {
  // P1 (Figure 2).
  ActivityId a11 = p1.AddActivity("a11", ActivityKind::kCompensatable,
                                  Svc(1, 1), CompSvc(1, 1));
  ActivityId a12 = p1.AddActivity("a12", ActivityKind::kPivot, Svc(1, 2));
  ActivityId a13 = p1.AddActivity("a13", ActivityKind::kCompensatable,
                                  Svc(1, 3), CompSvc(1, 3));
  ActivityId a14 = p1.AddActivity("a14", ActivityKind::kPivot, Svc(1, 4));
  ActivityId a15 = p1.AddActivity("a15", ActivityKind::kRetriable, Svc(1, 5));
  ActivityId a16 = p1.AddActivity("a16", ActivityKind::kRetriable, Svc(1, 6));
  Check(p1.AddEdge(a11, a12));
  Check(p1.AddEdge(a12, a13, /*preference=*/0));
  Check(p1.AddEdge(a12, a15, /*preference=*/1));
  Check(p1.AddEdge(a13, a14));
  Check(p1.AddEdge(a15, a16));
  Check(p1.Validate());

  // P2 (Figure 4).
  ActivityId a21 = p2.AddActivity("a21", ActivityKind::kCompensatable,
                                  Svc(2, 1), CompSvc(2, 1));
  ActivityId a22 = p2.AddActivity("a22", ActivityKind::kCompensatable,
                                  Svc(2, 2), CompSvc(2, 2));
  ActivityId a23 = p2.AddActivity("a23", ActivityKind::kPivot, Svc(2, 3));
  ActivityId a24 = p2.AddActivity("a24", ActivityKind::kRetriable, Svc(2, 4));
  ActivityId a25 = p2.AddActivity("a25", ActivityKind::kRetriable, Svc(2, 5));
  Check(p2.AddEdge(a21, a22));
  Check(p2.AddEdge(a22, a23));
  Check(p2.AddEdge(a23, a24));
  Check(p2.AddEdge(a24, a25));
  Check(p2.Validate());

  // P3 (Figure 9).
  ActivityId a31 = p3.AddActivity("a31", ActivityKind::kCompensatable,
                                  Svc(3, 1), CompSvc(3, 1));
  ActivityId a32 = p3.AddActivity("a32", ActivityKind::kPivot, Svc(3, 2));
  ActivityId a33 = p3.AddActivity("a33", ActivityKind::kRetriable, Svc(3, 3));
  Check(p3.AddEdge(a31, a32));
  Check(p3.AddEdge(a32, a33));
  Check(p3.Validate());

  // The conflicting pairs of Figures 4 and 9.
  spec.AddConflict(Svc(1, 1), Svc(2, 1));  // (a11, a21)
  spec.AddConflict(Svc(1, 2), Svc(2, 4));  // (a12, a24)
  spec.AddConflict(Svc(1, 5), Svc(2, 5));  // (a15, a25)
  spec.AddConflict(Svc(1, 1), Svc(3, 1));  // (a11, a31)
}

namespace {

ProcessSchedule MakeBase12(const PaperWorld& world) {
  ProcessSchedule s;
  Check(s.AddProcess(kP1, &world.p1));
  Check(s.AddProcess(kP2, &world.p2));
  return s;
}

void Act(ProcessSchedule* s, ProcessId pid, int64_t activity,
         bool inverse = false) {
  Check(s->Append(ScheduleEvent::Activity(
      ActivityInstance{pid, ActivityId(activity), inverse})));
}

}  // namespace

ProcessSchedule MakeScheduleSt1(const PaperWorld& world) {
  ProcessSchedule s = MakeBase12(world);
  Act(&s, kP1, 1);  // a11
  Act(&s, kP2, 1);  // a21
  Act(&s, kP2, 2);  // a22
  Act(&s, kP2, 3);  // a23 (pivot -> P2 enters F-REC)
  return s;
}

ProcessSchedule MakeScheduleSt2(const PaperWorld& world) {
  ProcessSchedule s = MakeScheduleSt1(world);
  Act(&s, kP1, 2);  // a12
  Act(&s, kP1, 3);  // a13
  Act(&s, kP2, 4);  // a24
  return s;
}

ProcessSchedule MakeSchedulePrimeT2(const PaperWorld& world) {
  ProcessSchedule s = MakeBase12(world);
  Act(&s, kP1, 1);  // a11
  Act(&s, kP2, 1);  // a21
  Act(&s, kP2, 2);  // a22
  Act(&s, kP2, 3);  // a23
  Act(&s, kP2, 4);  // a24  (before a12 -> cyclic dependency)
  Act(&s, kP1, 2);  // a12
  Act(&s, kP1, 3);  // a13
  return s;
}

ProcessSchedule MakeScheduleDoublePrimeT1(const PaperWorld& world) {
  ProcessSchedule s = MakeBase12(world);
  Act(&s, kP1, 1);  // a11
  Act(&s, kP1, 2);  // a12
  Act(&s, kP2, 1);  // a21
  Act(&s, kP1, 3);  // a13
  Act(&s, kP2, 2);  // a22
  Act(&s, kP1, 4);  // a14
  Check(s.Append(ScheduleEvent::Commit(kP1)));
  Act(&s, kP2, 3);  // a23 (deferred until C1 per Lemma 1)
  Act(&s, kP2, 4);  // a24
  Act(&s, kP2, 5);  // a25
  Check(s.Append(ScheduleEvent::Commit(kP2)));
  return s;
}

ProcessSchedule MakeScheduleStar(const PaperWorld& world) {
  ProcessSchedule s;
  Check(s.AddProcess(kP1, &world.p1));
  Check(s.AddProcess(kP3, &world.p3));
  Act(&s, kP1, 1);  // a11
  Act(&s, kP1, 2);  // a12 (pivot: quasi-commit of a11)
  Act(&s, kP3, 1);  // a31 conflicts with a11, but a11^-1 is gone
  return s;
}

ProcessSchedule MakeScheduleStarReversed(const PaperWorld& world) {
  ProcessSchedule s;
  Check(s.AddProcess(kP1, &world.p1));
  Check(s.AddProcess(kP3, &world.p3));
  Act(&s, kP3, 1);  // a31
  Act(&s, kP1, 1);  // a11
  Act(&s, kP1, 2);  // a12 (P1 in F-REC while conflicting P3 is in B-REC)
  return s;
}

}  // namespace figures
}  // namespace tpm
