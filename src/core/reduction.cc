#include "core/reduction.h"

#include <algorithm>
#include <deque>
#include <map>

#include "common/str_util.h"

namespace tpm {

namespace {

struct Token {
  ActivityInstance act;
  ServiceId service;  // base service (perfect commutativity)
};

bool TokensConflict(const Token& a, const Token& b, const ConflictSpec& spec) {
  if (a.act.process == b.act.process) return false;
  return spec.ServicesConflict(a.service, b.service);
}

// Extracts the residual token list: activity events minus aborted
// invocations and effect-free activities of non-committed processes
// (reduction rule 3).
std::vector<Token> ExtractTokens(const ProcessSchedule& completed,
                                 const ConflictSpec& spec,
                                 const std::set<ProcessId>& committed) {
  std::vector<Token> tokens;
  for (const ScheduleEvent& e : completed.events()) {
    if (e.type != EventType::kActivity) continue;
    const bool process_committed = committed.count(e.act.process) > 0;
    if (e.aborted_invocation) {
      // Aborted local transactions are effect-free. For non-committed
      // processes rule 3 removes them; for committed processes they remain
      // but never conflict (see header) — dropping them from the conflict
      // analysis is equivalent.
      continue;
    }
    ServiceId service = completed.ServiceOf(e.act);
    if (!process_committed && spec.IsEffectFreeService(service)) {
      continue;  // rule 3
    }
    tokens.push_back(Token{e.act, service});
  }
  return tokens;
}

// Cancels compensation pairs (rule 2 together with rule 1) to a fixpoint:
// a pair (a, a^-1) of the same activity cancels when no surviving token
// conflicting with it lies between the two.
void CancelCompensationPairs(std::vector<Token>* tokens,
                             const ConflictSpec& spec) {
  bool changed = true;
  std::vector<bool> removed(tokens->size(), false);
  while (changed) {
    changed = false;
    for (size_t i = 0; i < tokens->size(); ++i) {
      if (removed[i] || (*tokens)[i].act.inverse) continue;
      // Find the matching inverse occurrence after i.
      for (size_t j = i + 1; j < tokens->size(); ++j) {
        if (removed[j]) continue;
        const Token& tj = (*tokens)[j];
        if (tj.act.process == (*tokens)[i].act.process &&
            tj.act.activity == (*tokens)[i].act.activity) {
          if (!tj.act.inverse) break;  // re-execution: a later original
          // Check for conflicting tokens strictly between i and j.
          bool blocked = false;
          for (size_t k = i + 1; k < j; ++k) {
            if (removed[k]) continue;
            if (TokensConflict((*tokens)[i], (*tokens)[k], spec)) {
              blocked = true;
              break;
            }
          }
          if (!blocked) {
            removed[i] = true;
            removed[j] = true;
            changed = true;
          }
          break;
        }
      }
    }
  }
  std::vector<Token> surviving;
  for (size_t i = 0; i < tokens->size(); ++i) {
    if (!removed[i]) surviving.push_back((*tokens)[i]);
  }
  *tokens = std::move(surviving);
}

}  // namespace

ReductionOutcome ReduceCompletedSchedule(
    const ProcessSchedule& completed, const ConflictSpec& spec,
    const std::set<ProcessId>& committed_in_original) {
  ReductionOutcome outcome;
  std::vector<Token> tokens =
      ExtractTokens(completed, spec, committed_in_original);
  CancelCompensationPairs(&tokens, spec);

  for (const Token& t : tokens) outcome.residual.push_back(t.act);

  // The residual can be commuted into a serial schedule iff the
  // process-level conflict graph over the residual is acyclic.
  std::map<ProcessId, int> node_of;
  std::vector<ProcessId> ids;
  for (const auto& [pid, def] : completed.processes()) {
    node_of[pid] = static_cast<int>(ids.size());
    ids.push_back(pid);
  }
  Dag graph(static_cast<int>(ids.size()));
  for (size_t i = 0; i < tokens.size(); ++i) {
    for (size_t j = i + 1; j < tokens.size(); ++j) {
      if (TokensConflict(tokens[i], tokens[j], spec)) {
        graph.AddEdge(node_of[tokens[i].act.process],
                      node_of[tokens[j].act.process]);
      }
    }
  }
  if (graph.HasCycle()) {
    outcome.reducible = false;
    for (int node : graph.FindCycle()) outcome.cycle.push_back(ids[node]);
  } else {
    outcome.reducible = true;
    auto order = graph.TopologicalOrder();
    for (int node : *order) outcome.serialization_order.push_back(ids[node]);
  }
  return outcome;
}

namespace {

// --- Exhaustive oracle -----------------------------------------------------

// Compact token encoding for memoization.
uint64_t EncodeToken(const Token& t) {
  return (static_cast<uint64_t>(t.act.process.value()) << 40) |
         (static_cast<uint64_t>(t.act.activity.value()) << 8) |
         (t.act.inverse ? 1u : 0u);
}

bool IsSerialSequence(const std::vector<size_t>& seq,
                      const std::vector<Token>& tokens) {
  // Serial: each process's tokens form one contiguous block.
  std::set<int64_t> closed;
  int64_t current = -1;
  for (size_t idx : seq) {
    int64_t pid = tokens[idx].act.process.value();
    if (pid == current) continue;
    if (closed.count(pid) > 0) return false;
    if (current >= 0) closed.insert(current);
    current = pid;
  }
  return true;
}

}  // namespace

Result<bool> IsReducibleExhaustive(
    const ProcessSchedule& completed, const ConflictSpec& spec,
    const std::set<ProcessId>& committed_in_original, size_t max_tokens,
    size_t max_states) {
  std::vector<Token> tokens =
      ExtractTokens(completed, spec, committed_in_original);
  if (tokens.size() > max_tokens) {
    return Status::InvalidArgument(
        StrCat("schedule too large for exhaustive reduction: ",
               tokens.size(), " tokens"));
  }

  // States are sequences of indices into `tokens`; moves are the three
  // reduction rules.
  std::vector<size_t> initial(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) initial[i] = i;

  auto key_of = [&](const std::vector<size_t>& seq) {
    std::vector<uint64_t> key;
    key.reserve(seq.size());
    for (size_t idx : seq) key.push_back(EncodeToken(tokens[idx]));
    return key;
  };

  std::set<std::vector<uint64_t>> visited;
  std::deque<std::vector<size_t>> frontier;
  visited.insert(key_of(initial));
  frontier.push_back(std::move(initial));

  while (!frontier.empty()) {
    if (visited.size() > max_states) {
      return Status::InvalidArgument("exhaustive reduction state cap hit");
    }
    std::vector<size_t> seq = std::move(frontier.front());
    frontier.pop_front();
    if (IsSerialSequence(seq, tokens)) return true;

    // Rule 1: swap adjacent commuting tokens.
    for (size_t i = 0; i + 1 < seq.size(); ++i) {
      const Token& a = tokens[seq[i]];
      const Token& b = tokens[seq[i + 1]];
      bool commute;
      if (a.act.process == b.act.process) {
        // Same-process tokens: the commutativity rule still applies when
        // their services commute.
        commute = !spec.ServicesConflict(a.service, b.service);
      } else {
        commute = !TokensConflict(a, b, spec);
      }
      if (commute) {
        std::vector<size_t> next = seq;
        std::swap(next[i], next[i + 1]);
        auto key = key_of(next);
        if (visited.insert(key).second) frontier.push_back(std::move(next));
      }
    }
    // Rule 2: remove adjacent compensation pairs.
    for (size_t i = 0; i + 1 < seq.size(); ++i) {
      const Token& a = tokens[seq[i]];
      const Token& b = tokens[seq[i + 1]];
      if (a.act.process == b.act.process &&
          a.act.activity == b.act.activity && !a.act.inverse &&
          b.act.inverse) {
        std::vector<size_t> next;
        for (size_t k = 0; k < seq.size(); ++k) {
          if (k != i && k != i + 1) next.push_back(seq[k]);
        }
        auto key = key_of(next);
        if (visited.insert(key).second) frontier.push_back(std::move(next));
      }
    }
  }
  return false;
}

Result<bool> IsRED(const ProcessSchedule& schedule, const ConflictSpec& spec) {
  TPM_ASSIGN_OR_RETURN(ReductionOutcome outcome,
                       AnalyzeRED(schedule, spec));
  return outcome.reducible;
}

Result<ReductionOutcome> AnalyzeRED(const ProcessSchedule& schedule,
                                    const ConflictSpec& spec) {
  TPM_ASSIGN_OR_RETURN(ProcessSchedule completed, CompleteSchedule(schedule));
  std::set<ProcessId> committed;
  for (const auto& [pid, def] : schedule.processes()) {
    if (schedule.IsProcessCommitted(pid)) committed.insert(pid);
  }
  return ReduceCompletedSchedule(completed, spec, committed);
}

}  // namespace tpm
