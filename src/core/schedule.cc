#include "core/schedule.h"

#include <algorithm>

#include "common/str_util.h"

namespace tpm {

ScheduleEvent ScheduleEvent::Activity(ActivityInstance inst,
                                      bool aborted_invocation) {
  ScheduleEvent e;
  e.type = EventType::kActivity;
  e.act = inst;
  e.aborted_invocation = aborted_invocation;
  e.process = inst.process;
  return e;
}

ScheduleEvent ScheduleEvent::Commit(ProcessId pid) {
  ScheduleEvent e;
  e.type = EventType::kCommit;
  e.process = pid;
  return e;
}

ScheduleEvent ScheduleEvent::Abort(ProcessId pid) {
  ScheduleEvent e;
  e.type = EventType::kAbort;
  e.process = pid;
  return e;
}

ScheduleEvent ScheduleEvent::GroupAbort(std::vector<ProcessId> pids) {
  ScheduleEvent e;
  e.type = EventType::kGroupAbort;
  e.group = std::move(pids);
  return e;
}

std::string ScheduleEvent::ToString() const {
  switch (type) {
    case EventType::kActivity: {
      std::string s = ActivityInstanceToString(act);
      if (aborted_invocation) s += "(abort)";
      return s;
    }
    case EventType::kCommit:
      return StrCat("C", process.value());
    case EventType::kAbort:
      return StrCat("A", process.value());
    case EventType::kGroupAbort: {
      std::string s = "A(";
      bool first = true;
      for (ProcessId p : group) {
        if (!first) s += ",";
        first = false;
        s += StrCat("P", p.value());
      }
      return s + ")";
    }
  }
  return "?";
}

Status ProcessSchedule::AddProcess(ProcessId pid, const ProcessDef* def) {
  if (def == nullptr || !def->validated()) {
    return Status::InvalidArgument("process definition missing or unvalidated");
  }
  if (defs_.count(pid) > 0) {
    return Status::AlreadyExists(StrCat("process P", pid, " already present"));
  }
  defs_[pid] = def;
  states_[pid] = std::make_shared<ProcessExecutionState>(pid, def);
  return Status::OK();
}

const ProcessDef* ProcessSchedule::DefOf(ProcessId pid) const {
  auto it = defs_.find(pid);
  return it == defs_.end() ? nullptr : it->second;
}

const ProcessExecutionState* ProcessSchedule::StateOf(ProcessId pid) const {
  auto it = states_.find(pid);
  return it == states_.end() ? nullptr : it->second.get();
}

namespace {

// Checks that executing `act` (an original activity) is legal for the
// process state: all predecessors committed, and all earlier-preference
// sibling branches resolved (failed or compensated) — the alternative
// execution semantics of Def. 5.
Status CheckActivityLegal(const ProcessDef& def,
                          const ProcessExecutionState& state, ActivityId act) {
  for (ActivityId pred : def.Predecessors(act)) {
    if (!state.IsCommitted(pred)) {
      return Status::FailedPrecondition(
          StrCat("activity a", act, " requires committed predecessor a",
                 pred));
    }
    auto pref = def.EdgePreference(pred, act);
    for (int g = 0; g < *pref; ++g) {
      for (ActivityId sibling : def.SuccessorsInGroup(pred, g)) {
        for (ActivityId member : def.Subtree(sibling)) {
          if (state.IsCommitted(member)) {
            return Status::FailedPrecondition(StrCat(
                "alternative a", act, " requires prior branch via a", sibling,
                " to be resolved, but a", member, " is still committed"));
          }
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status ProcessSchedule::Append(const ScheduleEvent& event, bool enforce_legal) {
  switch (event.type) {
    case EventType::kActivity: {
      auto it = states_.find(event.act.process);
      if (it == states_.end()) {
        return Status::NotFound(
            StrCat("unknown process P", event.act.process));
      }
      ProcessExecutionState& state = *it->second;
      const ProcessDef& def = *defs_[event.act.process];
      if (!def.HasActivity(event.act.activity)) {
        return Status::NotFound(StrCat("unknown activity a", event.act));
      }
      if (enforce_legal && !state.IsActive()) {
        return Status::FailedPrecondition(
            StrCat("process P", event.act.process, " already terminated"));
      }
      if (event.aborted_invocation) {
        // Aborted invocations leave no trace in the process state.
        break;
      }
      if (event.act.inverse) {
        Status s = state.RecordCompensation(event.act.activity);
        if (enforce_legal) TPM_RETURN_IF_ERROR(s);
      } else {
        if (enforce_legal) {
          TPM_RETURN_IF_ERROR(
              CheckActivityLegal(def, state, event.act.activity));
        }
        Status s = state.RecordCommit(event.act.activity);
        if (enforce_legal) TPM_RETURN_IF_ERROR(s);
      }
      break;
    }
    case EventType::kCommit:
    case EventType::kAbort: {
      auto it = states_.find(event.process);
      if (it == states_.end()) {
        return Status::NotFound(StrCat("unknown process P", event.process));
      }
      if (enforce_legal && !it->second->IsActive()) {
        return Status::FailedPrecondition(
            StrCat("process P", event.process, " already terminated"));
      }
      if (event.type == EventType::kCommit) {
        it->second->RecordCommitProcess();
      } else {
        it->second->RecordAbortProcess();
      }
      break;
    }
    case EventType::kGroupAbort: {
      for (ProcessId pid : event.group) {
        auto it = states_.find(pid);
        if (it == states_.end()) {
          return Status::NotFound(StrCat("unknown process P", pid));
        }
        if (enforce_legal && !it->second->IsActive()) {
          return Status::FailedPrecondition(
              StrCat("process P", pid, " already terminated"));
        }
        it->second->RecordAbortProcess();
      }
      break;
    }
  }
  events_.push_back(event);
  digest_ = Fnv1a(digest_, event.ToString());
  return Status::OK();
}

void ProcessSchedule::ResetDigest() { digest_ = kFnv1aOffsetBasis; }

std::vector<ProcessId> ProcessSchedule::ActiveProcesses() const {
  std::vector<ProcessId> active;
  for (const auto& [pid, state] : states_) {
    if (state->IsActive()) active.push_back(pid);
  }
  return active;
}

bool ProcessSchedule::IsProcessCommitted(ProcessId pid) const {
  const auto* state = StateOf(pid);
  return state != nullptr && state->outcome() == ProcessOutcome::kCommitted;
}

ProcessSchedule ProcessSchedule::Prefix(size_t n) const {
  ProcessSchedule prefix;
  for (const auto& [pid, def] : defs_) {
    Status s = prefix.AddProcess(pid, def);
    (void)s;  // cannot fail: defs were validated on original insertion
  }
  const size_t count = std::min(n, events_.size());
  for (size_t i = 0; i < count; ++i) {
    // Events were legal in the full schedule; replay without re-checking so
    // prefixes of deliberately malformed schedules stay representable.
    Status s = prefix.Append(events_[i], /*enforce_legal=*/false);
    (void)s;
  }
  return prefix;
}

void ProcessSchedule::ReleaseProcess(ProcessId pid) {
  if (defs_.erase(pid) == 0) return;
  states_.erase(pid);
  released_.insert(pid);
}

void ProcessSchedule::Compact() {
  if (released_.empty()) return;
  std::erase_if(events_, [&](const ScheduleEvent& e) {
    if (e.type == EventType::kGroupAbort) {
      // A group-abort marker survives until every member is released.
      for (ProcessId p : e.group) {
        if (released_.count(p) == 0) return false;
      }
      return true;
    }
    return released_.count(e.process) > 0;
  });
  released_.clear();
}

ServiceId ProcessSchedule::ServiceOf(const ActivityInstance& inst) const {
  const ProcessDef* def = DefOf(inst.process);
  if (def == nullptr || !def->HasActivity(inst.activity)) return ServiceId();
  // Perfect commutativity: a^-1 has exactly the conflicts of a, so conflict
  // tests use the base service even for inverse instances.
  return def->activity(inst.activity).service;
}

bool ProcessSchedule::InstancesConflict(const ActivityInstance& a,
                                        const ActivityInstance& b,
                                        const ConflictSpec& spec) const {
  if (a.process == b.process) return false;
  ServiceId sa = ServiceOf(a);
  ServiceId sb = ServiceOf(b);
  if (!sa.valid() || !sb.valid()) return false;
  return spec.ServicesConflict(sa, sb);
}

std::string ProcessSchedule::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(events_.size());
  for (const auto& e : events_) parts.push_back(e.ToString());
  return StrCat("<", StrJoin(parts, " "), ">");
}

ProcessSchedule CommittedProjection(const ProcessSchedule& schedule) {
  ProcessSchedule out;
  for (const auto& [pid, def] : schedule.processes()) {
    if (schedule.IsProcessCommitted(pid)) (void)out.AddProcess(pid, def);
  }
  for (const ScheduleEvent& e : schedule.events()) {
    if (e.type == EventType::kGroupAbort) continue;
    const ProcessId pid =
        e.type == EventType::kActivity ? e.act.process : e.process;
    if (!schedule.IsProcessCommitted(pid)) continue;
    (void)out.Append(e, /*enforce_legal=*/false);
  }
  return out;
}

}  // namespace tpm
