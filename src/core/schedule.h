#ifndef TPM_CORE_SCHEDULE_H_
#define TPM_CORE_SCHEDULE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/fingerprint.h"
#include "common/status.h"
#include "core/activity.h"
#include "core/conflict.h"
#include "core/execution_state.h"
#include "core/process.h"

namespace tpm {

/// Kind of event in a process schedule.
enum class EventType {
  kActivity,    // an activity invocation that terminated (commit or abort)
  kCommit,      // C_i — process commits
  kAbort,       // A_i — process aborts (individually)
  kGroupAbort,  // A(P_{n_1},...,P_{n_s}) — set-oriented abort (Def. 8 2b)
};

/// One event of a process schedule. A schedule is represented as the
/// sequence of events in the order they were observed; this is one
/// linearization of the partial order <<_S of Def. 7 — the induced partial
/// order (program order plus conflict order) is recovered by the analyses.
struct ScheduleEvent {
  EventType type = EventType::kActivity;

  /// kActivity: which occurrence.
  ActivityInstance act;
  /// kActivity: true if this invocation terminated with abort (e.g., a
  /// failed invocation a_i(j) of a retriable activity, Def. 3). Aborted
  /// invocations are effect-free.
  bool aborted_invocation = false;

  /// kCommit / kAbort: the process. (For kActivity this equals
  /// act.process.)
  ProcessId process;

  /// kGroupAbort: the aborted processes.
  std::vector<ProcessId> group;

  static ScheduleEvent Activity(ActivityInstance inst,
                                bool aborted_invocation = false);
  static ScheduleEvent Commit(ProcessId pid);
  static ScheduleEvent Abort(ProcessId pid);
  static ScheduleEvent GroupAbort(std::vector<ProcessId> pids);

  std::string ToString() const;
};

/// A process schedule S = (P_S, A_S, <<_S) of Def. 7, over a set of process
/// definitions. Events are appended in observation order; per-process legal
/// execution (Def. 7.1: respecting precedence and preference order) is
/// enforced on append.
class ProcessSchedule {
 public:
  ProcessSchedule() = default;

  /// Registers a process instance executing `def`. The definition must
  /// outlive the schedule and be validated.
  Status AddProcess(ProcessId pid, const ProcessDef* def);

  /// Appends an event, checking process-local legality:
  /// * an original activity may commit only if all its predecessors on the
  ///   active branch committed,
  /// * a compensation may only undo a committed compensatable activity,
  /// * terminal events must be unique per process.
  /// Legality checking can be bypassed (`enforce_legal = false`) to build
  /// deliberately malformed schedules in tests.
  Status Append(const ScheduleEvent& event, bool enforce_legal = true);

  const std::vector<ScheduleEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  const std::map<ProcessId, const ProcessDef*>& processes() const {
    return defs_;
  }
  const ProcessDef* DefOf(ProcessId pid) const;

  /// Execution state of a process as implied by the appended events.
  const ProcessExecutionState* StateOf(ProcessId pid) const;

  /// Process ids with no terminal event (active processes).
  std::vector<ProcessId> ActiveProcesses() const;

  /// True iff the process has a kCommit event.
  bool IsProcessCommitted(ProcessId pid) const;

  /// The schedule consisting of the first `n` events (same process set).
  ProcessSchedule Prefix(size_t n) const;

  /// Bounded-memory support (SchedulerOptions::reclaim_terminated):
  /// forgets a terminated process — its definition/state entries
  /// immediately, its events at the next Compact(). The schedule then no
  /// longer represents the full execution; callers own that trade-off.
  void ReleaseProcess(ProcessId pid);

  /// Erases the events of every released process. O(events), so callers
  /// batch releases and compact at epoch boundaries; each event is erased
  /// at most once, keeping the amortized cost per event constant.
  void Compact();

  /// Released processes whose events still await Compact().
  size_t pending_release_count() const { return released_.size(); }

  /// Incremental FNV-1a digest over every event ever appended (each event's
  /// ToString folded in at append time). Because it accumulates at append,
  /// it keeps covering events that Compact() later erases — two schedules
  /// have equal digests iff they observed the same event sequence, which is
  /// what replica voting compares. O(1) to read.
  uint64_t digest() const { return digest_; }

  /// Restarts the digest accumulator (replica respawn: the fresh replica's
  /// schedule is empty, so all live replicas re-baseline together).
  void ResetDigest();

  /// True if instances a (earlier) and b (later, by position) conflict under
  /// `spec`: different processes and conflicting services, honoring perfect
  /// commutativity (inverse instances conflict exactly like their
  /// originals).
  bool InstancesConflict(const ActivityInstance& a, const ActivityInstance& b,
                         const ConflictSpec& spec) const;

  /// The service an instance maps to (the original activity's service; the
  /// compensating instance uses the same service for conflict purposes
  /// under perfect commutativity).
  ServiceId ServiceOf(const ActivityInstance& inst) const;

  std::string ToString() const;

 private:
  std::vector<ScheduleEvent> events_;
  uint64_t digest_ = kFnv1aOffsetBasis;
  std::map<ProcessId, const ProcessDef*> defs_;
  std::map<ProcessId, std::shared_ptr<ProcessExecutionState>> states_;
  /// Processes released but whose events are not yet compacted away.
  std::set<ProcessId> released_;
};

/// The committed projection of a history: the events of exactly those
/// processes that reached commit (group-abort markers dropped).
///
/// Workloads whose processes hammer the SAME hot ADT state routinely have
/// aborted processes conflict-preceding later-committed ones. The
/// syntactic Proc-REC checker (Def. 11) does not reduce away compensated
/// work, so on such histories it would flag every such abort even when the
/// compensations were emitted perfectly. The meaningful split is: check
/// Proc-REC on the committed projection (commit order must agree with
/// conflict order among the survivors) and PRED on the FULL history (the
/// reduction-aware criterion that vets the compensations themselves).
/// Shared by the integration/chaos suites and the sharded runtime's
/// post-recovery self-check.
ProcessSchedule CommittedProjection(const ProcessSchedule& schedule);

}  // namespace tpm

#endif  // TPM_CORE_SCHEDULE_H_
