#include "core/activity.h"

#include "common/str_util.h"

namespace tpm {

const char* ActivityKindToString(ActivityKind kind) {
  switch (kind) {
    case ActivityKind::kCompensatable:
      return "compensatable";
    case ActivityKind::kPivot:
      return "pivot";
    case ActivityKind::kRetriable:
      return "retriable";
    case ActivityKind::kCompensatableRetriable:
      return "compensatable-retriable";
  }
  return "unknown";
}

std::string ActivityInstanceToString(const ActivityInstance& inst) {
  std::string s = StrCat("a", inst.process.value(), "_",
                         inst.activity.value());
  if (inst.inverse) s += "^-1";
  return s;
}

std::ostream& operator<<(std::ostream& os, const ActivityInstance& inst) {
  return os << ActivityInstanceToString(inst);
}

}  // namespace tpm
