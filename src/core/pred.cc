#include "core/pred.h"

#include "common/str_util.h"

namespace tpm {

std::string PredOutcome::ToString() const {
  if (prefix_reducible) return "PRED";
  std::ostringstream oss;
  oss << "not PRED: prefix of length " << violating_prefix
      << " is not reducible";
  if (!cycle.empty()) {
    oss << " (cycle:";
    for (ProcessId pid : cycle) oss << " P" << pid;
    oss << ")";
  }
  return oss.str();
}

Result<PredOutcome> AnalyzePRED(const ProcessSchedule& schedule,
                                const ConflictSpec& spec) {
  PredOutcome outcome;
  // Every prefix, including the empty one and the full schedule, must be
  // reducible. Empty prefixes are trivially reducible; start at length 1.
  for (size_t n = 1; n <= schedule.size(); ++n) {
    ProcessSchedule prefix = schedule.Prefix(n);
    TPM_ASSIGN_OR_RETURN(ReductionOutcome red, AnalyzeRED(prefix, spec));
    if (!red.reducible) {
      outcome.prefix_reducible = false;
      outcome.violating_prefix = n;
      outcome.cycle = red.cycle;
      return outcome;
    }
  }
  outcome.prefix_reducible = true;
  return outcome;
}

Result<bool> IsPRED(const ProcessSchedule& schedule,
                    const ConflictSpec& spec) {
  TPM_ASSIGN_OR_RETURN(PredOutcome outcome, AnalyzePRED(schedule, spec));
  return outcome.prefix_reducible;
}

}  // namespace tpm
