#include "core/subprocess.h"

#include <map>

#include "common/str_util.h"
#include "core/flex_structure.h"

namespace tpm {

Result<ActivityKind> ClassifySubprocessGuarantee(const ProcessDef& child) {
  if (!child.validated()) {
    return Status::FailedPrecondition("child process not validated");
  }
  TPM_RETURN_IF_ERROR(ValidateWellFormedFlex(child));
  bool all_compensatable = true;
  bool all_retriable = true;
  bool all_cr = true;
  for (const ActivityDecl& decl : child.activities()) {
    if (!IsCompensatableKind(decl.kind)) all_compensatable = false;
    if (!IsRetriableKind(decl.kind)) all_retriable = false;
    if (decl.kind != ActivityKind::kCompensatableRetriable) all_cr = false;
  }
  if (all_cr) return ActivityKind::kCompensatableRetriable;
  if (all_compensatable) return ActivityKind::kCompensatable;
  if (all_retriable) return ActivityKind::kRetriable;
  return ActivityKind::kPivot;
}

Result<ProcessDef> InlineSubprocess(const ProcessDef& parent, ActivityId slot,
                                    const ProcessDef& child) {
  if (!parent.validated() || !child.validated()) {
    return Status::FailedPrecondition("definitions must be validated");
  }
  if (!parent.HasActivity(slot)) {
    return Status::NotFound(StrCat("parent has no activity a", slot));
  }
  TPM_ASSIGN_OR_RETURN(ActivityKind guarantee,
                       ClassifySubprocessGuarantee(child));
  if (parent.activity(slot).kind != guarantee) {
    return Status::InvalidArgument(StrCat(
        "slot a", slot, " is declared ",
        ActivityKindToString(parent.activity(slot).kind),
        " but the subprocess guarantees ", ActivityKindToString(guarantee)));
  }

  ProcessDef result(parent.name());
  std::map<ActivityId, ActivityId> parent_map;  // old parent id -> new id
  std::map<ActivityId, ActivityId> child_map;   // child id -> new id

  for (const ActivityDecl& decl : parent.activities()) {
    if (decl.id == slot) continue;
    parent_map[decl.id] = result.AddActivity(decl.name, decl.kind,
                                             decl.service,
                                             decl.compensation_service);
  }
  for (const ActivityDecl& decl : child.activities()) {
    child_map[decl.id] = result.AddActivity(
        StrCat(child.name(), "/", decl.name), decl.kind, decl.service,
        decl.compensation_service);
  }

  // Child-internal edges.
  for (const PrecedenceEdge& e : child.edges()) {
    TPM_RETURN_IF_ERROR(
        result.AddEdge(child_map[e.from], child_map[e.to], e.preference));
  }

  // Child roots and leaves (activities without predecessors / successors).
  std::vector<ActivityId> roots = child.Roots();
  std::vector<ActivityId> leaves;
  for (const ActivityDecl& decl : child.activities()) {
    if (child.SuccessorGroups(decl.id).empty()) leaves.push_back(decl.id);
  }

  // Parent edges, rerouted around the slot.
  for (const PrecedenceEdge& e : parent.edges()) {
    if (e.from == slot && e.to == slot) continue;  // cannot happen (no self)
    if (e.to == slot) {
      for (ActivityId r : roots) {
        TPM_RETURN_IF_ERROR(
            result.AddEdge(parent_map[e.from], child_map[r], e.preference));
      }
    } else if (e.from == slot) {
      for (ActivityId l : leaves) {
        TPM_RETURN_IF_ERROR(
            result.AddEdge(child_map[l], parent_map[e.to], e.preference));
      }
    } else {
      TPM_RETURN_IF_ERROR(
          result.AddEdge(parent_map[e.from], parent_map[e.to], e.preference));
    }
  }

  TPM_RETURN_IF_ERROR(result.Validate());
  TPM_RETURN_IF_ERROR(ValidateWellFormedFlex(result));
  return result;
}

}  // namespace tpm
