#ifndef TPM_CORE_COMPLETED_SCHEDULE_H_
#define TPM_CORE_COMPLETED_SCHEDULE_H_

#include "common/status.h"
#include "core/schedule.h"

namespace tpm {

/// Builds the completed process schedule S̃ of S (Def. 8):
///
/// 1. All active processes are aborted jointly: a group abort
///    A(P_{n_1},...,P_{n_s}) is appended at the end of S (Def. 8 2b).
/// 2. Every abort activity A_i (individual or within a group abort) is
///    replaced by the activities of the completion C(P_i) followed by C_i
///    (Def. 8 2c: the abort is changed into a commit once the completion is
///    executed).
/// 3. The ordering constraints of Def. 8 3(a)-(f) are satisfied
///    constructively:
///    * original orders are preserved (3a) — completions are expanded in
///      place;
///    * intra-completion order is preserved (3b) and completions follow the
///      process's original activities, preceding C_i (3c);
///    * within a group abort, the completions are merged into one total
///      order (satisfying 3d): all compensating steps first, globally in
///      *reverse order of their original activities' schedule positions*
///      (the only order admissible by Lemma 2), then all forward
///      (retriable) steps — placing compensations before the retriable
///      steps of other completions as required by Lemma 3;
///    * completions are inserted at the abort's position in the sequence,
///      so activities ordered after the abort in S follow the completion
///      (3e) and completions of earlier aborts precede completions of later
///      aborts (3f).
///
/// Unlike the expanded schedule of the traditional unified theory, S̃ may
/// contain activities that never appeared in S (the forward recovery path
/// of processes in F-REC), which is why correctness reasoning must always
/// use S̃ (§3.5).
Result<ProcessSchedule> CompleteSchedule(const ProcessSchedule& schedule);

}  // namespace tpm

#endif  // TPM_CORE_COMPLETED_SCHEDULE_H_
