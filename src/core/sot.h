#ifndef TPM_CORE_SOT_H_
#define TPM_CORE_SOT_H_

#include "common/status.h"
#include "core/conflict.h"
#include "core/schedule.h"

namespace tpm {

/// SOT — "serializable with ordered termination" [AVA+94]: the traditional
/// unified theory's criterion that can be evaluated on the schedule S alone
/// (without building the expanded schedule): S must be conflict
/// serializable and the termination events of conflicting transactions
/// must follow the conflict order.
///
/// §3.5 argues that no SOT-like criterion exists for transactional
/// processes: the completion of an aborted process contains activities
/// (the forward recovery path) that are not in S, so correctness cannot be
/// decided from S alone. This implementation exists to demonstrate that
/// gap: the experiments exhibit schedules that satisfy SOT but are not
/// prefix-reducible (e.g., S_t1 of Example 8), and vice versa.
///
/// Checked clauses:
///  1. S (all activities, aborted invocations ignored) is conflict
///     serializable.
///  2. For every pair of conflicting activities a_ik <<_S a_jl, the
///     terminal event of P_i precedes the terminal event of P_j whenever
///     both are present in S.
bool IsSOT(const ProcessSchedule& schedule, const ConflictSpec& spec);

}  // namespace tpm

#endif  // TPM_CORE_SOT_H_
