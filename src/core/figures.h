#ifndef TPM_CORE_FIGURES_H_
#define TPM_CORE_FIGURES_H_

#include "core/conflict.h"
#include "core/process.h"
#include "core/schedule.h"

namespace tpm {
namespace figures {

/// The processes and conflict relation of the paper's running example
/// (Figures 2-9):
///
/// * P1 (Figure 2): a11^c << a12^p << { a13^c << a14^p  |alt|  a15^r <<
///   a16^r } — the preference order makes (a15, a16) the alternative taken
///   when a13 fails or a14 fails after compensating a13.
/// * P2 (Figure 4): a21^c << a22^c << a23^p << a24^r << a25^r.
/// * P3 (Figure 9): a31^c << a32^p << a33^r.
///
/// Conflicting activity pairs (dashed arcs of Figure 4 / Figure 9):
/// (a11, a21), (a12, a24), (a15, a25), (a11, a31).
///
/// The world owns the process definitions; schedules built from it hold
/// pointers into it, so the world must outlive them.
struct PaperWorld {
  ProcessDef p1{"P1"};
  ProcessDef p2{"P2"};
  ProcessDef p3{"P3"};
  ConflictSpec spec;

  PaperWorld(const PaperWorld&) = delete;
  PaperWorld& operator=(const PaperWorld&) = delete;
  PaperWorld(PaperWorld&&) = delete;
  PaperWorld& operator=(PaperWorld&&) = delete;

  PaperWorld();
};

/// Process ids used by the schedules below.
inline constexpr ProcessId kP1{1};
inline constexpr ProcessId kP2{2};
inline constexpr ProcessId kP3{3};

/// Figure 4(a) at time t1: <a11 a21 a22 a23>. P1 is in B-REC, P2 in F-REC;
/// this prefix is NOT reducible (Example 8).
ProcessSchedule MakeScheduleSt1(const PaperWorld& world);

/// Figure 4(a) at time t2: <a11 a21 a22 a23 a12 a13 a24>. Serializable
/// (Example 4) and RED (Example 6), but not PRED because of its prefix S_t1
/// (Example 8).
ProcessSchedule MakeScheduleSt2(const PaperWorld& world);

/// Figure 4(b) at time t2: <a11 a21 a22 a23 a24 a12 a13>. Cyclic
/// dependencies between P1 and P2 — not serializable (Example 3).
ProcessSchedule MakeSchedulePrimeT2(const PaperWorld& world);

/// Figure 7: <a11 a12 a21 a13 a22 a14 C1 a23 a24 a25 C2>. A complete,
/// prefix-reducible execution of P1 and P2 (Examples 7 and 9).
ProcessSchedule MakeScheduleDoublePrimeT1(const PaperWorld& world);

/// Figure 9: <a11 a12 a31>. P1 is already in F-REC when the conflicting
/// a31 executes — the "quasi-commit" of the pivot a12 makes this
/// interleaving correct (Example 10).
ProcessSchedule MakeScheduleStar(const PaperWorld& world);

/// The reversed variant of Figure 9 (a31 executed before a11 while P3 is
/// active): irrecoverable, used as the negative control in experiments.
ProcessSchedule MakeScheduleStarReversed(const PaperWorld& world);

}  // namespace figures
}  // namespace tpm

#endif  // TPM_CORE_FIGURES_H_
