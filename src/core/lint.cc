#include "core/lint.h"

#include <map>
#include <set>

#include "common/str_util.h"
#include "core/flex_structure.h"

namespace tpm {

std::string LintDiagnostic::ToString() const {
  return StrCat(severity == Severity::kError ? "error: " : "warning: ",
                message);
}

std::vector<LintDiagnostic> LintProcess(const ProcessDef& def,
                                        const ConflictSpec* spec) {
  std::vector<LintDiagnostic> diagnostics;
  auto error = [&](std::string message) {
    diagnostics.push_back(
        {LintDiagnostic::Severity::kError, std::move(message)});
  };
  auto warn = [&](std::string message) {
    diagnostics.push_back(
        {LintDiagnostic::Severity::kWarning, std::move(message)});
  };

  if (!def.validated()) {
    error("process definition not validated");
    return diagnostics;
  }

  // Guaranteed termination.
  Status flex = ValidateWellFormedFlex(def);
  if (!flex.ok()) {
    error(StrCat("no guaranteed termination: ", flex.message()));
  }

  // Reachability from the roots.
  std::set<ActivityId> reachable;
  for (ActivityId a : def.Subtree(def.Roots())) reachable.insert(a);
  for (const ActivityDecl& decl : def.activities()) {
    if (reachable.count(decl.id) == 0) {
      error(StrCat("activity '", decl.name, "' is unreachable"));
    }
  }

  // Compensation service hygiene.
  std::map<ServiceId, std::vector<std::string>> comp_users;
  for (const ActivityDecl& decl : def.activities()) {
    if (!decl.compensation_service.valid()) continue;
    comp_users[decl.compensation_service].push_back(decl.name);
    if (decl.compensation_service == decl.service) {
      warn(StrCat("activity '", decl.name,
                  "' uses its own service as compensation — the \"inverse\" "
                  "repeats the action"));
    }
  }
  for (const auto& [service, users] : comp_users) {
    if (users.size() > 1) {
      warn(StrCat("activities {", StrJoin(users, ", "),
                  "} share compensation service ", service,
                  " — ensure it is parameterized per activity"));
    }
  }

  // Unreachable alternatives: an alternative of a branch point whose
  // primary subtree is all retriable can never fire (retriables cannot
  // fail, Def. 3).
  for (const ActivityDecl& decl : def.activities()) {
    auto groups = def.SuccessorGroups(decl.id);
    if (groups.size() < 2) continue;
    if (def.SubtreeAllRetriable(groups[0])) {
      warn(StrCat("the alternatives of '", decl.name,
                  "' are unreachable: its primary continuation is all "
                  "retriable and cannot fail"));
    }
  }

  // Intra-process conflicting services (only meaningful with a spec).
  if (spec != nullptr) {
    const auto& activities = def.activities();
    for (size_t i = 0; i < activities.size(); ++i) {
      for (size_t j = i + 1; j < activities.size(); ++j) {
        if (activities[i].service == activities[j].service) continue;
        if (spec->ServicesConflict(activities[i].service,
                                   activities[j].service)) {
          warn(StrCat("activities '", activities[i].name, "' and '",
                      activities[j].name,
                      "' use conflicting services — concurrent instances "
                      "of this process will serialize on them"));
        }
      }
    }
  }
  return diagnostics;
}

}  // namespace tpm
