#include "core/conflict.h"

#include <algorithm>

namespace tpm {

namespace {
std::pair<ServiceId, ServiceId> Normalize(ServiceId a, ServiceId b) {
  return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

void ConflictSpec::AddConflict(ServiceId a, ServiceId b) {
  conflicts_.insert(Normalize(a, b));
}

void ConflictSpec::MarkEffectFree(ServiceId service) {
  effect_free_.insert(service);
}

bool ConflictSpec::ServicesConflict(ServiceId a, ServiceId b) const {
  return conflicts_.count(Normalize(a, b)) > 0;
}

bool ConflictSpec::IsEffectFreeService(ServiceId service) const {
  return effect_free_.count(service) > 0;
}

std::vector<std::pair<ServiceId, ServiceId>> ConflictSpec::ConflictPairs()
    const {
  return {conflicts_.begin(), conflicts_.end()};
}

}  // namespace tpm
