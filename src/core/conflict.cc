#include "core/conflict.h"

#include <algorithm>

namespace tpm {

namespace {
const std::vector<ServiceId> kNoPartners;
}  // namespace

int ConflictSpec::RegisterService(ServiceId service) {
  auto it = index_of_.find(service);
  if (it != index_of_.end()) return it->second;
  int index = static_cast<int>(services_.size());
  index_of_.emplace(service, index);
  services_.push_back(service);
  rows_.emplace_back();
  partners_.emplace_back();
  effect_free_.push_back(false);
  return index;
}

bool ConflictSpec::TestBit(int a, int b) const {
  const std::vector<uint64_t>& row = rows_[a];
  size_t word = static_cast<size_t>(b) / 64;
  if (word >= row.size()) return false;
  return (row[word] >> (b % 64)) & 1;
}

void ConflictSpec::SetBit(int a, int b) {
  std::vector<uint64_t>& row = rows_[a];
  size_t word = static_cast<size_t>(b) / 64;
  if (word >= row.size()) row.resize(word + 1, 0);
  row[word] |= uint64_t{1} << (b % 64);
}

void ConflictSpec::AddConflict(ServiceId a, ServiceId b) {
  int ia = RegisterService(a);
  int ib = RegisterService(b);
  if (TestBit(ia, ib)) return;
  SetBit(ia, ib);
  SetBit(ib, ia);
  partners_[ia].push_back(b);
  if (ia != ib) partners_[ib].push_back(a);
  ++num_pairs_;
}

void ConflictSpec::MarkEffectFree(ServiceId service) {
  effect_free_[RegisterService(service)] = true;
}

bool ConflictSpec::ServicesConflict(ServiceId a, ServiceId b) const {
  int ia = IndexOf(a);
  if (ia < 0) return false;
  int ib = IndexOf(b);
  if (ib < 0) return false;
  return TestBit(ia, ib);
}

bool ConflictSpec::IsEffectFreeService(ServiceId service) const {
  int index = IndexOf(service);
  return index >= 0 && effect_free_[index];
}

const std::vector<ServiceId>& ConflictSpec::PartnersOf(
    ServiceId service) const {
  int index = IndexOf(service);
  return index < 0 ? kNoPartners : partners_[index];
}

std::vector<std::pair<ServiceId, ServiceId>> ConflictSpec::ConflictPairs()
    const {
  std::vector<std::pair<ServiceId, ServiceId>> pairs;
  pairs.reserve(num_pairs_);
  for (size_t i = 0; i < services_.size(); ++i) {
    for (ServiceId partner : partners_[i]) {
      // Each unordered pair once, normalized a <= b.
      if (services_[i] <= partner) pairs.emplace_back(services_[i], partner);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace tpm
