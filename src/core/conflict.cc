#include "core/conflict.h"

#include <algorithm>

#include "common/str_util.h"

namespace tpm {

namespace {
const std::vector<ServiceId> kNoPartners;
}  // namespace

int ConflictSpec::RegisterService(ServiceId service) {
  auto it = index_of_.find(service);
  if (it != index_of_.end()) return it->second;
  int index = static_cast<int>(services_.size());
  index_of_.emplace(service, index);
  services_.push_back(service);
  rows_.emplace_back();
  partners_.emplace_back();
  effect_free_.push_back(false);
  op_of_.push_back(-1);
  effective_dirty_ = true;
  return index;
}

bool ConflictSpec::TestBit(int a, int b) const {
  const std::vector<uint64_t>& row = rows_[a];
  size_t word = static_cast<size_t>(b) / 64;
  if (word >= row.size()) return false;
  return (row[word] >> (b % 64)) & 1;
}

void ConflictSpec::SetBit(int a, int b) {
  std::vector<uint64_t>& row = rows_[a];
  size_t word = static_cast<size_t>(b) / 64;
  if (word >= row.size()) row.resize(word + 1, 0);
  row[word] |= uint64_t{1} << (b % 64);
}

void ConflictSpec::AddConflict(ServiceId a, ServiceId b) {
  int ia = RegisterService(a);
  int ib = RegisterService(b);
  if (TestBit(ia, ib)) return;
  SetBit(ia, ib);
  SetBit(ib, ia);
  partners_[ia].push_back(b);
  if (ia != ib) partners_[ib].push_back(a);
  ++num_pairs_;
  effective_dirty_ = true;
}

void ConflictSpec::MarkEffectFree(ServiceId service) {
  effect_free_[RegisterService(service)] = true;
}

bool ConflictSpec::EffectiveConflict(int ia, int ib) const {
  if (!TestBit(ia, ib)) return false;
  if (op_enabled_) {
    const int oa = op_of_[ia];
    const int ob = op_of_[ib];
    if (oa >= 0 && ob >= 0 && TestOpBit(oa, ob)) return false;
  }
  return true;
}

bool ConflictSpec::ServicesConflict(ServiceId a, ServiceId b) const {
  int ia = IndexOf(a);
  if (ia < 0) return false;
  int ib = IndexOf(b);
  if (ib < 0) return false;
  return EffectiveConflict(ia, ib);
}

bool ConflictSpec::IsEffectFreeService(ServiceId service) const {
  int index = IndexOf(service);
  return index >= 0 && effect_free_[index];
}

void ConflictSpec::RebuildEffectivePartners() const {
  effective_partners_.resize(services_.size());
  for (size_t i = 0; i < services_.size(); ++i) {
    effective_partners_[i].clear();
    for (ServiceId partner : partners_[i]) {
      int ip = IndexOf(partner);
      if (EffectiveConflict(static_cast<int>(i), ip)) {
        effective_partners_[i].push_back(partner);
      }
    }
  }
  effective_dirty_ = false;
}

const std::vector<ServiceId>& ConflictSpec::PartnersOf(
    ServiceId service) const {
  int index = IndexOf(service);
  if (index < 0) return kNoPartners;
  if (effective_dirty_ || effective_partners_.size() != services_.size()) {
    RebuildEffectivePartners();
  }
  return effective_partners_[index];
}

std::vector<std::pair<ServiceId, ServiceId>> ConflictSpec::ConflictPairs()
    const {
  std::vector<std::pair<ServiceId, ServiceId>> pairs;
  pairs.reserve(num_pairs_);
  for (size_t i = 0; i < services_.size(); ++i) {
    for (ServiceId partner : partners_[i]) {
      // Each unordered pair once, normalized a <= b.
      if (services_[i] <= partner) pairs.emplace_back(services_[i], partner);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

// ---------------------------------------------------------------------------
// Operation-level commutativity.

int ConflictSpec::RegisterOpKind(const std::string& name) {
  auto it = op_index_of_.find(name);
  if (it != op_index_of_.end()) return it->second;
  int index = static_cast<int>(op_names_.size());
  op_index_of_.emplace(name, index);
  op_names_.push_back(name);
  op_rows_.emplace_back();
  op_inverse_.push_back(-1);
  return index;
}

int ConflictSpec::OpKindIndexOf(const std::string& name) const {
  auto it = op_index_of_.find(name);
  return it == op_index_of_.end() ? -1 : it->second;
}

void ConflictSpec::BindOp(ServiceId service, int op) {
  int index = RegisterService(service);
  op_of_[index] = op;
  effective_dirty_ = true;
}

int ConflictSpec::OpOf(ServiceId service) const {
  int index = IndexOf(service);
  return index < 0 ? -1 : op_of_[index];
}

bool ConflictSpec::TestOpBit(int a, int b) const {
  if (a < 0 || b < 0 || static_cast<size_t>(a) >= op_rows_.size() ||
      static_cast<size_t>(b) >= op_rows_.size()) {
    return false;
  }
  const std::vector<uint64_t>& row = op_rows_[a];
  size_t word = static_cast<size_t>(b) / 64;
  if (word >= row.size()) return false;
  return (row[word] >> (b % 64)) & 1;
}

bool ConflictSpec::SetOpPair(int a, int b) {
  if (TestOpBit(a, b)) return false;
  for (auto [x, y] : {std::pair<int, int>{a, b}, std::pair<int, int>{b, a}}) {
    std::vector<uint64_t>& row = op_rows_[x];
    size_t word = static_cast<size_t>(y) / 64;
    if (word >= row.size()) row.resize(word + 1, 0);
    row[word] |= uint64_t{1} << (y % 64);
  }
  return true;
}

void ConflictSpec::CloseUnderInverses() {
  // Fixpoint: commuting (a, b) implies commuting pairs over {a, a^-1} x
  // {b, b^-1}. Tables are tiny (a handful of op kinds), so the quadratic
  // sweep is immaterial.
  bool changed = true;
  while (changed) {
    changed = false;
    const int n = static_cast<int>(op_names_.size());
    for (int a = 0; a < n; ++a) {
      for (int b = a; b < n; ++b) {
        if (!TestOpBit(a, b)) continue;
        const int ia = op_inverse_[a];
        const int ib = op_inverse_[b];
        if (ia >= 0 && SetOpPair(ia, b)) changed = true;
        if (ib >= 0 && SetOpPair(a, ib)) changed = true;
        if (ia >= 0 && ib >= 0 && SetOpPair(ia, ib)) changed = true;
      }
    }
  }
  effective_dirty_ = true;
}

void ConflictSpec::AddCommutingOps(int a, int b) {
  if (a < 0 || b < 0 || static_cast<size_t>(a) >= op_names_.size() ||
      static_cast<size_t>(b) >= op_names_.size()) {
    return;
  }
  SetOpPair(a, b);
  CloseUnderInverses();
}

void ConflictSpec::SetInverseOp(int op, int inverse) {
  if (op < 0 || inverse < 0 || static_cast<size_t>(op) >= op_names_.size() ||
      static_cast<size_t>(inverse) >= op_names_.size()) {
    return;
  }
  op_inverse_[op] = inverse;
  op_inverse_[inverse] = op;
  CloseUnderInverses();
}

int ConflictSpec::InverseOf(int op) const {
  if (op < 0 || static_cast<size_t>(op) >= op_inverse_.size()) return -1;
  return op_inverse_[op];
}

bool ConflictSpec::OpsCommute(int a, int b) const { return TestOpBit(a, b); }

std::vector<std::pair<int, int>> ConflictSpec::CommutingOpPairs() const {
  std::vector<std::pair<int, int>> pairs;
  const int n = static_cast<int>(op_names_.size());
  for (int a = 0; a < n; ++a) {
    for (int b = a; b < n; ++b) {
      if (TestOpBit(a, b)) pairs.emplace_back(a, b);
    }
  }
  return pairs;
}

Status ConflictSpec::VerifyOpTableClosure() const {
  const int n = static_cast<int>(op_names_.size());
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (TestOpBit(a, b) != TestOpBit(b, a)) {
        return Status::Internal(StrCat("op table asymmetric at (",
                                       op_names_[a], ", ", op_names_[b], ")"));
      }
      if (!TestOpBit(a, b)) continue;
      const int ia = op_inverse_[a];
      if (ia >= 0 && !TestOpBit(ia, b)) {
        return Status::Internal(
            StrCat("op table not closed under compensation pairing: (",
                   op_names_[a], ", ", op_names_[b], ") commute but (",
                   op_names_[ia], ", ", op_names_[b], ") do not"));
      }
    }
  }
  return Status::OK();
}

void ConflictSpec::set_op_commutativity_enabled(bool enabled) {
  if (op_enabled_ == enabled) return;
  op_enabled_ = enabled;
  effective_dirty_ = true;
}

}  // namespace tpm
