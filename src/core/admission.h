#ifndef TPM_CORE_ADMISSION_H_
#define TPM_CORE_ADMISSION_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "core/conflict.h"
#include "core/execution_state.h"
#include "core/process.h"
#include "core/scheduler_options.h"
#include "core/serialization_graph.h"

namespace tpm {

/// Outcome of an admission check for executing an activity now.
enum class AdmissionDecision {
  kAdmit,  // execute (or prepare) the activity in this pass
  kDefer,  // re-evaluate on a later pass
  kFail,   // admitting would create an unresolvable conflict cycle
};

/// Read-only view of the scheduler state an admission policy may consult.
/// Implemented by TransactionalProcessScheduler; guards must not retain
/// ProcessView instances across calls (the underlying runtimes mutate).
class SchedulerView {
 public:
  struct ProcessView {
    ProcessId pid;
    const ProcessDef* def = nullptr;
    const ProcessExecutionState* state = nullptr;
  };

  virtual ~SchedulerView() = default;

  virtual const SchedulerOptions& options() const = 0;
  virtual const ConflictSpec& conflict_spec() const = 0;
  virtual const SerializationGraph& serialization_graph() const = 0;

  /// View of a known (active or terminated, not-yet-pruned) process.
  virtual std::optional<ProcessView> FindProcess(ProcessId pid) const = 0;

  /// Invokes fn for every known process, in ascending pid order.
  virtual void ForEachProcess(
      const std::function<void(const ProcessView&)>& fn) const = 0;

  /// Invokes fn for every ACTIVE process, in ascending pid order. The
  /// admission hot path iterates active processes far more often than it
  /// iterates everything, and long-running schedulers accumulate terminated
  /// runtimes — implementations with an active index override this.
  virtual void ForEachActiveProcess(
      const std::function<void(const ProcessView&)>& fn) const {
    ForEachProcess([&](const ProcessView& p) {
      if (p.state->IsActive()) fn(p);
    });
  }

  /// True iff `pid` emitted an instance of `service` (and its conflict
  /// footprint has not been reclaimed yet).
  virtual bool HasEmitted(ProcessId pid, ServiceId service) const = 0;

  /// Invokes fn for every process that emitted an instance of `service`,
  /// in ascending pid order.
  virtual void ForEachEmitter(
      ServiceId service, const std::function<void(ProcessId)>& fn) const = 0;
};

// ---------------------------------------------------------------------------
// Shared policy predicates (§3.5 guard conditions). These are used both by
// the PRED admission guard and by the execution engine (completion
// pre-ordering, Lemma 1 release, deferred-commit detection), so they live
// here as free functions over the read-only view. All returned pid vectors
// are sorted and duplicate-free.

/// Processes (!= self) that emitted an activity conflicting with `service` —
/// the conflict-order predecessors an execution of `service` would acquire.
std::vector<ProcessId> ConflictingPredecessors(const SchedulerView& view,
                                               ProcessId self,
                                               ServiceId service);

/// Could `other` still produce an activity conflicting with `service`? Its
/// remainder consists of not-yet-committed activities (regular execution,
/// re-execution after compensation, or the forward recovery path of its
/// completion) and — when `include_compensations` — the future compensations
/// of its effective committed compensatables (same service under perfect
/// commutativity).
bool RemainderConflicts(const SchedulerView& view,
                        const SchedulerView::ProcessView& other,
                        ServiceId service, bool include_compensations = true);

/// Active processes (!= self) whose potential completion could conflict with
/// `service` (the §3.5 virtual-serialization-edge targets).
std::vector<ProcessId> VirtualCompletionTargets(const SchedulerView& view,
                                                ProcessId self,
                                                ServiceId service);

/// Does some activity `emitter` already executed conflict with an activity
/// `rt` still has ahead of it (uncommitted, or a future compensation of a
/// committed compensatable)? `exclude` is the activity being admitted right
/// now — its direct conflicts are Lemma 1's business.
bool EmittedConflictsWithRemainder(const SchedulerView& view,
                                   ProcessId emitter,
                                   const SchedulerView::ProcessView& rt,
                                   ActivityId exclude);

/// Example 10: the blocker must be in F-REC (its pre-pivot activities are
/// quasi-committed: compensation is no longer available), and none of its
/// remaining activities — uncommitted originals or compensations of
/// committed compensatables — may conflict with any of the requester's
/// services.
bool QuasiCommitAdmissible(const SchedulerView& view,
                           const SchedulerView::ProcessView& blocker,
                           const SchedulerView::ProcessView& requester);

/// The still-active conflict-order predecessors that block a
/// non-compensatable activity `act` of `rt` under Lemma 1 (quasi-commit
/// admissible blockers are excluded when the optimization is on).
std::vector<ProcessId> ActiveBlockers(const SchedulerView& view,
                                      const SchedulerView::ProcessView& rt,
                                      ActivityId act);

/// True iff some active process is strictly reachable from `pid` in the
/// serialization graph — i.e. a cycle through `pid` could still dissolve by
/// that process aborting.
bool ActiveProcessReachableFrom(const SchedulerView& view, ProcessId pid);

// ---------------------------------------------------------------------------

/// Per-protocol admission policy. The guard owns the protocol's private
/// scheduling state (the kSerial execution token, the kTwoPhaseLocking lock
/// table) and consumes everything else through the read-only SchedulerView;
/// the execution engine drives it through the lifecycle hooks below.
class AdmissionGuard {
 public:
  virtual ~AdmissionGuard() = default;

  /// Decides whether original activity `act` of `rt` may execute now.
  virtual AdmissionDecision Admit(const SchedulerView::ProcessView& rt,
                                  ActivityId act) = 0;

  /// Certifies a batch of freshly submitted processes in one call. The
  /// scheduler has already extended the serialization graph with one node
  /// per entry; the nodes are guaranteed edge-free (submission acquires no
  /// conflict edges — those appear at activity emission), so extending the
  /// graph cannot close a cycle and the batch is admissible as a whole.
  /// SGT-based guards verify that isolation invariant and return kDefer if
  /// it is violated, which makes the scheduler split the batch and fall
  /// back to per-process admission — keeping batched outcomes bit-identical
  /// to the one-at-a-time path. Protocols whose admission state is keyed on
  /// activity execution (serial token, 2PL lock table) have nothing to
  /// check at submission time and keep this default.
  virtual AdmissionDecision AdmitBatch(const std::vector<ProcessId>& fresh) {
    (void)fresh;
    return AdmissionDecision::kAdmit;
  }

  /// The engine is about to invoke `service` on behalf of `pid` (this is
  /// where locks / the serial token are taken).
  virtual void OnExecute(ProcessId pid, ServiceId service) {
    (void)pid;
    (void)service;
  }

  /// `pid` reached a terminal state (locks / the serial token are released).
  virtual void OnProcessTerminated(ProcessId pid) { (void)pid; }

  /// Drops all protocol state (scheduler crash).
  virtual void Reset() {}
};

/// Creates the guard for view.options().protocol. `stats` outlives the
/// guard and records policy-side counters (forced executions).
std::unique_ptr<AdmissionGuard> MakeAdmissionGuard(const SchedulerView& view,
                                                   SchedulerStats* stats);

}  // namespace tpm

#endif  // TPM_CORE_ADMISSION_H_
