#include "core/process.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/str_util.h"

namespace tpm {

ProcessDef::ProcessDef(std::string name) : name_(std::move(name)) {}

ActivityId ProcessDef::AddActivity(std::string name, ActivityKind kind,
                                   ServiceId service,
                                   ServiceId compensation_service) {
  ActivityId id(static_cast<int64_t>(activities_.size()) + 1);
  activities_.push_back(ActivityDecl{id, std::move(name), kind, service,
                                     compensation_service});
  validated_ = false;
  return id;
}

Status ProcessDef::AddEdge(ActivityId from, ActivityId to, int preference) {
  if (!HasActivity(from) || !HasActivity(to)) {
    return Status::InvalidArgument(
        StrCat("edge references unknown activity: ", from, " -> ", to));
  }
  if (from == to) {
    return Status::InvalidArgument("precedence order is irreflexive");
  }
  if (preference < 0) {
    return Status::InvalidArgument("preference must be non-negative");
  }
  for (const auto& e : edges_) {
    if (e.from == from && e.to == to) {
      return Status::AlreadyExists(
          StrCat("duplicate edge ", from, " -> ", to));
    }
  }
  edges_.push_back(PrecedenceEdge{from, to, preference});
  validated_ = false;
  return Status::OK();
}

Status ProcessDef::Validate() {
  if (activities_.empty()) {
    return Status::InvalidArgument("process has no activities");
  }
  for (const auto& a : activities_) {
    const bool comp = IsCompensatableKind(a.kind);
    if (comp && !a.compensation_service.valid()) {
      return Status::InvalidArgument(StrCat(
          "compensatable activity ", a.name, " lacks a compensation service"));
    }
    if (!comp && a.compensation_service.valid()) {
      return Status::InvalidArgument(
          StrCat("non-compensatable activity ", a.name,
                 " must not declare a compensation service"));
    }
  }
  // Precedence must be acyclic (Def. 5: << is irreflexive, transitive,
  // acyclic).
  if (BuildDag().HasCycle()) {
    return Status::InvalidArgument("precedence order contains a cycle");
  }
  // Preference groups per source must be contiguous 0..k so the total order
  // on connectors (◁) is well defined.
  std::map<ActivityId, std::set<int>> prefs;
  for (const auto& e : edges_) prefs[e.from].insert(e.preference);
  for (const auto& [src, groups] : prefs) {
    int expected = 0;
    for (int p : groups) {
      if (p != expected) {
        return Status::InvalidArgument(
            StrCat("preference groups of activity ", src,
                   " are not contiguous from 0"));
      }
      ++expected;
    }
  }
  validated_ = true;
  return Status::OK();
}

bool ProcessDef::HasActivity(ActivityId id) const {
  return id.valid() && id.value() >= 1 &&
         id.value() <= static_cast<int64_t>(activities_.size());
}

const ActivityDecl& ProcessDef::activity(ActivityId id) const {
  return activities_[IndexOf(id)];
}

std::vector<ActivityId> ProcessDef::Predecessors(ActivityId id) const {
  std::vector<ActivityId> preds;
  for (const auto& e : edges_) {
    if (e.to == id) preds.push_back(e.from);
  }
  return preds;
}

std::vector<std::vector<ActivityId>> ProcessDef::SuccessorGroups(
    ActivityId id) const {
  std::map<int, std::vector<ActivityId>> by_pref;
  for (const auto& e : edges_) {
    if (e.from == id) by_pref[e.preference].push_back(e.to);
  }
  std::vector<std::vector<ActivityId>> groups;
  for (auto& [pref, members] : by_pref) {
    groups.push_back(std::move(members));
  }
  return groups;
}

std::vector<ActivityId> ProcessDef::SuccessorsInGroup(ActivityId id,
                                                      int preference) const {
  std::vector<ActivityId> result;
  for (const auto& e : edges_) {
    if (e.from == id && e.preference == preference) result.push_back(e.to);
  }
  return result;
}

Result<int> ProcessDef::EdgePreference(ActivityId from, ActivityId to) const {
  for (const auto& e : edges_) {
    if (e.from == from && e.to == to) return e.preference;
  }
  return Status::NotFound(StrCat("no edge ", from, " -> ", to));
}

std::vector<ActivityId> ProcessDef::Roots() const {
  std::vector<bool> has_pred(activities_.size(), false);
  for (const auto& e : edges_) has_pred[IndexOf(e.to)] = true;
  std::vector<ActivityId> roots;
  for (size_t i = 0; i < activities_.size(); ++i) {
    if (!has_pred[i]) roots.push_back(IdOf(static_cast<int>(i)));
  }
  return roots;
}

Dag ProcessDef::BuildDag() const {
  Dag dag(static_cast<int>(activities_.size()));
  for (const auto& e : edges_) dag.AddEdge(IndexOf(e.from), IndexOf(e.to));
  return dag;
}

std::vector<ActivityId> ProcessDef::Subtree(ActivityId start) const {
  return Subtree(std::vector<ActivityId>{start});
}

std::vector<ActivityId> ProcessDef::Subtree(
    const std::vector<ActivityId>& starts) const {
  Dag dag = BuildDag();
  std::vector<bool> in_subtree(activities_.size(), false);
  std::vector<int> stack;
  for (ActivityId s : starts) {
    int idx = IndexOf(s);
    if (!in_subtree[idx]) {
      in_subtree[idx] = true;
      stack.push_back(idx);
    }
  }
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    for (int w : dag.Successors(v)) {
      if (!in_subtree[w]) {
        in_subtree[w] = true;
        stack.push_back(w);
      }
    }
  }
  // Topological order restricted to the subtree. The full graph is acyclic
  // after Validate(), so this cannot fail.
  auto topo = dag.TopologicalOrder();
  std::vector<ActivityId> result;
  for (int v : *topo) {
    if (in_subtree[v]) result.push_back(IdOf(v));
  }
  return result;
}

bool ProcessDef::SubtreeAllRetriable(
    const std::vector<ActivityId>& starts) const {
  std::vector<ActivityId> nodes = Subtree(starts);
  std::set<ActivityId> in_subtree(nodes.begin(), nodes.end());
  for (ActivityId a : nodes) {
    if (!IsRetriableKind(KindOf(a))) return false;
  }
  for (const auto& e : edges_) {
    if (in_subtree.count(e.from) > 0 && e.preference != 0) return false;
  }
  return true;
}

bool ProcessDef::Precedes(ActivityId from, ActivityId to) const {
  if (from == to) return false;
  return BuildDag().Reachable(IndexOf(from), IndexOf(to));
}

std::string ProcessDef::ToString() const {
  std::ostringstream oss;
  oss << "Process " << name_ << "\n";
  for (const auto& a : activities_) {
    oss << "  a" << a.id << " [" << ActivityKindToString(a.kind) << "] "
        << a.name << " (service " << a.service;
    if (a.compensation_service.valid()) {
      oss << ", compensation " << a.compensation_service;
    }
    oss << ")\n";
  }
  for (const auto& e : edges_) {
    oss << "  a" << e.from << " << a" << e.to;
    if (e.preference != 0) oss << "  (alternative " << e.preference << ")";
    oss << "\n";
  }
  return oss.str();
}

}  // namespace tpm
