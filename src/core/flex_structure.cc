#include "core/flex_structure.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/str_util.h"

namespace tpm {

namespace {

// Walks the compensatable prefix of a substructure starting at `starts`:
// follows preference-0 edges through compensatable activities. Outputs the
// set of compensatable activities visited and the set of non-compensatable
// activities reached (candidate pivots). Returns an error if an alternative
// edge leaves a compensatable activity.
Status WalkCompensatablePrefix(const ProcessDef& def,
                               const std::vector<ActivityId>& starts,
                               std::set<ActivityId>* comp_prefix,
                               std::set<ActivityId>* non_comp_frontier) {
  std::vector<ActivityId> worklist(starts.begin(), starts.end());
  std::set<ActivityId> seen;
  while (!worklist.empty()) {
    ActivityId a = worklist.back();
    worklist.pop_back();
    if (!seen.insert(a).second) continue;
    if (IsNonCompensatable(def.KindOf(a))) {
      non_comp_frontier->insert(a);
      continue;
    }
    comp_prefix->insert(a);
    auto groups = def.SuccessorGroups(a);
    if (groups.size() > 1) {
      return Status::InvalidArgument(
          StrCat("well-formed flex structure: alternative edges may not "
                 "leave compensatable activity a",
                 a));
    }
    if (!groups.empty()) {
      for (ActivityId s : groups[0]) worklist.push_back(s);
    }
  }
  return Status::OK();
}

}  // namespace

Status FlexValidator::Validate() const {
  if (!def_->validated()) {
    return Status::FailedPrecondition(
        "ProcessDef::Validate() must succeed before flex validation");
  }
  return ValidateStructure(def_->Roots());
}

Status FlexValidator::ValidateStructure(
    const std::vector<ActivityId>& starts) const {
  const ProcessDef& def = *def_;
  std::set<ActivityId> comp_prefix;
  std::set<ActivityId> frontier;
  TPM_RETURN_IF_ERROR(
      WalkCompensatablePrefix(def, starts, &comp_prefix, &frontier));

  if (frontier.empty()) {
    // Pure compensatable structure: trivially terminable via full backward
    // recovery.
    return Status::OK();
  }
  if (frontier.size() > 1) {
    return Status::InvalidArgument(StrCat(
        "well-formed flex structure: the compensatable prefix must converge "
        "on a single non-compensatable activity, found ",
        frontier.size()));
  }
  const ActivityId p = *frontier.begin();

  if (IsRetriableKind(def.KindOf(p))) {
    // Retriable continuation: the whole remainder must be retriable with no
    // alternatives (it can never fail, so no alternatives are needed or
    // allowed by the basic structure).
    if (!def.SubtreeAllRetriable({p})) {
      return Status::InvalidArgument(
          StrCat("well-formed flex structure: retriable activity a", p,
                 " must be followed only by retriable activities"));
    }
    return Status::OK();
  }

  // p is a pivot.
  auto groups = def.SuccessorGroups(p);
  if (groups.empty()) return Status::OK();
  if (groups.size() == 1) {
    // No alternatives: the continuation must be all retriable (the basic
    // well-formed structure "pivot followed by retriable activities").
    if (!def.SubtreeAllRetriable(groups[0])) {
      return Status::InvalidArgument(StrCat(
          "well-formed flex structure: pivot a", p,
          " has no alternative, so its continuation must be all retriable"));
    }
    return Status::OK();
  }
  // Alternatives exist: the last alternative must be all retriable
  // (guaranteeing termination), every earlier one must itself be a
  // well-formed flex structure.
  if (!def.SubtreeAllRetriable(groups.back())) {
    return Status::InvalidArgument(
        StrCat("well-formed flex structure: the last alternative of pivot a",
               p, " must consist only of retriable activities"));
  }
  for (size_t g = 0; g + 1 < groups.size(); ++g) {
    TPM_RETURN_IF_ERROR(ValidateStructure(groups[g]));
  }
  return Status::OK();
}

Status ValidateWellFormedFlex(const ProcessDef& def) {
  return FlexValidator(&def).Validate();
}

Result<ActivityId> StateDeterminingActivity(const ProcessDef& def) {
  if (!def.validated()) {
    return Status::FailedPrecondition("process definition not validated");
  }
  std::set<ActivityId> comp_prefix;
  std::set<ActivityId> frontier;
  TPM_RETURN_IF_ERROR(
      WalkCompensatablePrefix(def, def.Roots(), &comp_prefix, &frontier));
  if (frontier.empty()) {
    return Status::NotFound(
        "process is purely compensatable; no state-determining activity");
  }
  if (frontier.size() > 1) {
    return Status::InvalidArgument(
        "process does not have well-formed flex structure");
  }
  return *frontier.begin();
}

std::string ValidExecution::ToString() const {
  std::ostringstream oss;
  oss << "<";
  bool first = true;
  for (const auto& step : steps) {
    if (!first) oss << " ";
    first = false;
    oss << "a" << step.activity;
    if (step.inverse) oss << "^-1";
    if (step.failed) oss << "(abort)";
  }
  oss << "> " << (committed ? "[commit]" : "[backward recovery]");
  return oss.str();
}

namespace {

constexpr size_t kMaxExecutions = 4096;

// Recursive execution simulator used by EnumerateValidExecutions.
class ExecutionEnumerator {
 public:
  explicit ExecutionEnumerator(const ProcessDef& def) : def_(def) {}

  Status Run(std::vector<ValidExecution>* out) {
    State initial;
    for (ActivityId r : def_.Roots()) initial.ready.insert(r);
    TPM_RETURN_IF_ERROR(Step(initial));
    *out = std::move(results_);
    return Status::OK();
  }

 private:
  struct State {
    std::vector<ValidExecution::Step> steps;
    std::vector<ActivityId> committed;  // commit order
    std::set<ActivityId> committed_set;
    std::set<ActivityId> ready;
    // Per branching activity: index of the currently active successor group.
    std::map<ActivityId, int> active_group;
  };

  Status Step(State state) {
    if (results_.size() >= kMaxExecutions) {
      return Status::InvalidArgument(
          "too many valid executions to enumerate");
    }
    if (state.ready.empty()) {
      Emit(std::move(state), /*committed=*/true);
      return Status::OK();
    }
    // Deterministic order: smallest ready activity first.
    ActivityId a = *state.ready.begin();
    state.ready.erase(a);

    if (IsRetriableKind(def_.KindOf(a))) {
      // Retriable: guaranteed to commit (Def. 3); no failure branch.
      Commit(&state, a);
      return Step(std::move(state));
    }
    // Branch: the success case ...
    {
      State success = state;
      Commit(&success, a);
      TPM_RETURN_IF_ERROR(Step(std::move(success)));
    }
    // ... and the failure case (Def. 4).
    State failure = std::move(state);
    failure.steps.push_back({a, /*inverse=*/false, /*failed=*/true});
    return HandleFailure(std::move(failure), a);
  }

  void Commit(State* state, ActivityId a) {
    state->steps.push_back({a, false, false});
    state->committed.push_back(a);
    state->committed_set.insert(a);
    auto groups = def_.SuccessorGroups(a);
    if (!groups.empty()) {
      state->active_group[a] = 0;
      for (ActivityId s : groups[0]) MaybeReady(state, s);
    }
    // An activity with multiple predecessors becomes ready only once all of
    // them committed; re-check successors of all committed activities.
  }

  // `s` becomes ready if all its predecessors along active branches have
  // committed.
  void MaybeReady(State* state, ActivityId s) {
    if (state->committed_set.count(s) > 0) return;
    for (ActivityId p : def_.Predecessors(s)) {
      // Only predecessors on the active branch bind: the edge p -> s must be
      // in p's active group and p must be committed.
      auto pref = def_.EdgePreference(p, s);
      int active = 0;
      auto it = state->active_group.find(p);
      if (it != state->active_group.end()) active = it->second;
      if (*pref != active) continue;  // edge not on the active branch
      if (state->committed_set.count(p) == 0) return;
    }
    state->ready.insert(s);
  }

  // Failure handling (§3.1): find the nearest committed ancestor with an
  // untried alternative whose active subtree contains no committed
  // non-compensatable activity; compensate the abandoned branch; activate
  // the next alternative. With no such ancestor, perform full backward
  // recovery.
  Status HandleFailure(State state, ActivityId failed) {
    ActivityId branch_point;
    int next_group = -1;
    // Search ancestors of `failed` bottom-up (BFS over predecessors).
    std::vector<ActivityId> worklist = {failed};
    std::set<ActivityId> seen;
    while (!worklist.empty() && !branch_point.valid()) {
      ActivityId cur = worklist.front();
      worklist.erase(worklist.begin());
      if (!seen.insert(cur).second) continue;
      for (ActivityId p : def_.Predecessors(cur)) {
        if (state.committed_set.count(p) == 0) continue;
        auto groups = def_.SuccessorGroups(p);
        int active = state.active_group.count(p) ? state.active_group[p] : 0;
        if (active + 1 < static_cast<int>(groups.size()) &&
            AlternativeAvailable(state, groups, active)) {
          branch_point = p;
          next_group = active + 1;
          break;
        }
        worklist.push_back(p);
      }
    }
    if (branch_point.valid()) {
      // Compensate committed descendants of the branch point, reverse order.
      for (auto it = state.committed.rbegin(); it != state.committed.rend();
           ++it) {
        if (def_.Precedes(branch_point, *it) &&
            state.committed_set.count(*it) > 0) {
          state.steps.push_back({*it, /*inverse=*/true, /*failed=*/false});
          state.committed_set.erase(*it);
        }
      }
      std::vector<ActivityId> still_committed;
      for (ActivityId a : state.committed) {
        if (state.committed_set.count(a) > 0) still_committed.push_back(a);
      }
      state.committed = std::move(still_committed);
      // Clear ready activities that belonged to the abandoned branch.
      std::set<ActivityId> new_ready;
      for (ActivityId r : state.ready) {
        if (!def_.Precedes(branch_point, r)) new_ready.insert(r);
      }
      state.ready = std::move(new_ready);
      state.active_group[branch_point] = next_group;
      const std::vector<ActivityId> next_members =
          def_.SuccessorsInGroup(branch_point, next_group);
      for (ActivityId s : next_members) {
        MaybeReady(&state, s);
      }
      return Step(std::move(state));
    }
    // Full backward recovery: every committed activity must be
    // compensatable (guaranteed by the well-formed flex structure).
    for (auto it = state.committed.rbegin(); it != state.committed.rend();
         ++it) {
      if (IsNonCompensatable(def_.KindOf(*it))) {
        return Status::Internal(
            StrCat("backward recovery reached non-compensatable activity a",
                   *it, "; process lacks guaranteed termination"));
      }
      state.steps.push_back({*it, /*inverse=*/true, /*failed=*/false});
    }
    const bool anything_executed = !state.committed.empty();
    state.committed.clear();
    state.committed_set.clear();
    if (anything_executed) {
      Emit(std::move(state), /*committed=*/false);
    }
    // Executions where nothing was ever executed are not counted (see
    // header).
    return Status::OK();
  }

  // An alternative of `p` is available only if no committed
  // non-compensatable activity lies in p's active subtree (those cannot be
  // undone, pinning the branch).
  bool AlternativeAvailable(const State& state,
                            const std::vector<std::vector<ActivityId>>& groups,
                            int active) const {
    for (ActivityId a : def_.Subtree(groups[active])) {
      if (state.committed_set.count(a) > 0 &&
          IsNonCompensatable(def_.KindOf(a))) {
        return false;
      }
    }
    return true;
  }

  void Emit(State state, bool committed) {
    ValidExecution exec;
    exec.steps = std::move(state.steps);
    exec.committed = committed;
    results_.push_back(std::move(exec));
  }

  const ProcessDef& def_;
  std::vector<ValidExecution> results_;
};

}  // namespace

Result<std::vector<ValidExecution>> EnumerateValidExecutions(
    const ProcessDef& def) {
  if (!def.validated()) {
    return Status::FailedPrecondition("process definition not validated");
  }
  TPM_RETURN_IF_ERROR(ValidateWellFormedFlex(def));
  std::vector<ValidExecution> result;
  TPM_RETURN_IF_ERROR(ExecutionEnumerator(def).Run(&result));
  return result;
}

}  // namespace tpm
