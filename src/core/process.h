#ifndef TPM_CORE_PROCESS_H_
#define TPM_CORE_PROCESS_H_

#include <map>
#include <string>
#include <vector>

#include "common/dag.h"
#include "common/ids.h"
#include "common/status.h"
#include "core/activity.h"

namespace tpm {

/// Declaration of one activity within a process definition.
struct ActivityDecl {
  ActivityId id;
  std::string name;
  ActivityKind kind = ActivityKind::kCompensatable;
  /// Service invoked by this activity; conflicts are declared per service.
  ServiceId service;
  /// Service invoked by the compensating activity a^-1. Only meaningful for
  /// compensatable activities; invalid otherwise.
  ServiceId compensation_service;
};

/// One element of the precedence order `from << to` (Def. 5). `preference`
/// encodes the preference order (the ◁ of the paper): among the edges
/// leaving the same activity, edges are grouped by their preference value;
/// the groups are totally ordered (◁ associates connectors from a common
/// source in a total order). Group 0 is the primary continuation; group k+1
/// is attempted only after the subtree of group k has failed and its
/// executed activities have been compensated (§3.1).
///
/// Edges within the same group are parallel (AND) continuations.
struct PrecedenceEdge {
  ActivityId from;
  ActivityId to;
  int preference = 0;
};

/// A process definition: the triple (A, <<, ◁) of Def. 5.
///
/// Built incrementally via AddActivity/AddEdge, then frozen with
/// Validate(). All query methods require a validated definition.
class ProcessDef {
 public:
  explicit ProcessDef(std::string name = "");

  ProcessDef(const ProcessDef&) = default;
  ProcessDef& operator=(const ProcessDef&) = default;
  ProcessDef(ProcessDef&&) = default;
  ProcessDef& operator=(ProcessDef&&) = default;

  /// Adds an activity; returns its id (dense, starting at 1 to match the
  /// paper's numbering a_{i_1}, a_{i_2}, ...).
  ActivityId AddActivity(std::string name, ActivityKind kind,
                         ServiceId service,
                         ServiceId compensation_service = ServiceId());

  /// Adds `from << to` with the given preference group.
  Status AddEdge(ActivityId from, ActivityId to, int preference = 0);

  /// Checks structural sanity: ids valid, precedence acyclic, compensation
  /// services present exactly on compensatable activities, preference
  /// groups contiguous from 0 per source. Does NOT check the well-formed
  /// flex structure (see flex_structure.h). Idempotent.
  Status Validate();

  bool validated() const { return validated_; }

  const std::string& name() const { return name_; }
  size_t num_activities() const { return activities_.size(); }

  /// All activity declarations, indexed by id.value() - 1.
  const std::vector<ActivityDecl>& activities() const { return activities_; }
  const std::vector<PrecedenceEdge>& edges() const { return edges_; }

  bool HasActivity(ActivityId id) const;
  const ActivityDecl& activity(ActivityId id) const;
  ActivityKind KindOf(ActivityId id) const { return activity(id).kind; }

  /// Direct predecessors under << (all preference groups).
  std::vector<ActivityId> Predecessors(ActivityId id) const;

  /// Direct successors grouped by preference, ascending preference order.
  /// result[0] = primary continuation group, result.back() = last
  /// alternative.
  std::vector<std::vector<ActivityId>> SuccessorGroups(ActivityId id) const;

  /// Direct successors in a specific preference group (empty if none).
  std::vector<ActivityId> SuccessorsInGroup(ActivityId id,
                                            int preference) const;

  /// Preference of the edge from -> to, or error if no such edge.
  Result<int> EdgePreference(ActivityId from, ActivityId to) const;

  /// Activities with no predecessors (the entry points of the process).
  std::vector<ActivityId> Roots() const;

  /// All activities reachable from `start` via edges of ANY preference,
  /// including `start`, in topological order.
  std::vector<ActivityId> Subtree(ActivityId start) const;

  /// All activities reachable from the set `starts` (inclusive), topological
  /// order.
  std::vector<ActivityId> Subtree(const std::vector<ActivityId>& starts) const;

  /// True iff every activity in the subtree rooted at each of `starts` is
  /// retriable and no alternative (preference > 0) edges occur inside.
  bool SubtreeAllRetriable(const std::vector<ActivityId>& starts) const;

  /// True iff `to` is reachable from `from` (transitive <<, any preference).
  bool Precedes(ActivityId from, ActivityId to) const;

  /// Renders the process as text (activities, precedence, preference) for
  /// debugging and docs.
  std::string ToString() const;

 private:
  int IndexOf(ActivityId id) const { return static_cast<int>(id.value()) - 1; }
  ActivityId IdOf(int index) const { return ActivityId(index + 1); }
  Dag BuildDag() const;

  std::string name_;
  std::vector<ActivityDecl> activities_;
  std::vector<PrecedenceEdge> edges_;
  bool validated_ = false;
};

}  // namespace tpm

#endif  // TPM_CORE_PROCESS_H_
