#ifndef TPM_CORE_EXECUTION_STATE_H_
#define TPM_CORE_EXECUTION_STATE_H_

#include <vector>

#include "common/flat_containers.h"
#include "common/ids.h"
#include "common/status.h"
#include "core/activity.h"
#include "core/process.h"

namespace tpm {

/// Termination status of a process within a schedule.
enum class ProcessOutcome {
  kActive,     // still running (no terminal event yet)
  kCommitted,  // C_i observed
  kAborted,    // A_i observed (individually or via group abort)
};

/// Recovery state of a process (§3.1): backward-recoverable until its
/// state-determining activity committed, forward-recoverable afterwards.
enum class RecoveryState {
  kBackwardRecoverable,  // B-REC
  kForwardRecoverable,   // F-REC
};

/// Tracks the execution progress of one process instance inside a schedule:
/// which activities committed (in order), which were compensated, and the
/// derived recovery state. This is the input to completion computation
/// (completion.h) and to the online scheduler.
class ProcessExecutionState {
 public:
  ProcessExecutionState(ProcessId pid, const ProcessDef* def)
      : pid_(pid), def_(def) {}

  /// Re-initializes for a new process, keeping the containers' capacity —
  /// the scheduler's runtime pool recycles states without reallocating.
  void Reset(ProcessId pid, const ProcessDef* def) {
    pid_ = pid;
    def_ = def;
    committed_order_.clear();
    committed_.clear();
    compensated_.clear();
    outcome_ = ProcessOutcome::kActive;
  }

  ProcessId pid() const { return pid_; }
  const ProcessDef& def() const { return *def_; }

  /// Records the commit of original activity `a`.
  Status RecordCommit(ActivityId a);

  /// Records the execution of the compensating activity a^-1 (which undoes
  /// a previously committed `a`).
  Status RecordCompensation(ActivityId a);

  /// Records a terminal event.
  void RecordCommitProcess() { outcome_ = ProcessOutcome::kCommitted; }
  void RecordAbortProcess() { outcome_ = ProcessOutcome::kAborted; }

  ProcessOutcome outcome() const { return outcome_; }
  bool IsActive() const { return outcome_ == ProcessOutcome::kActive; }

  /// Committed original activities in commit order (including later
  /// compensated ones).
  const std::vector<ActivityId>& committed_order() const {
    return committed_order_;
  }

  bool IsCommitted(ActivityId a) const {
    return committed_.count(a) > 0;
  }
  bool IsCompensated(ActivityId a) const {
    return compensated_.count(a) > 0;
  }

  /// Committed-and-not-compensated activities, in commit order. These are
  /// the activities whose effects are currently in place.
  std::vector<ActivityId> EffectiveCommitted() const;

  /// B-REC until a non-compensatable activity is among the effective
  /// committed activities, F-REC afterwards (§3.1).
  RecoveryState recovery_state() const;

  /// The last (most recent) effective-committed non-compensatable activity:
  /// the local state-determining element s_{i_k} the process would roll back
  /// to on abort. Error if the process is in B-REC.
  Result<ActivityId> LastStateDetermining() const;

 private:
  ProcessId pid_;
  const ProcessDef* def_;
  std::vector<ActivityId> committed_order_;
  FlatSet<ActivityId> committed_;
  FlatSet<ActivityId> compensated_;
  ProcessOutcome outcome_ = ProcessOutcome::kActive;
};

}  // namespace tpm

#endif  // TPM_CORE_EXECUTION_STATE_H_
