#ifndef TPM_CORE_REDUCTION_H_
#define TPM_CORE_REDUCTION_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/completed_schedule.h"
#include "core/conflict.h"
#include "core/schedule.h"
#include "core/serializability.h"

namespace tpm {

/// Outcome of applying the reduction rules of Def. 9 to a completed process
/// schedule.
struct ReductionOutcome {
  /// True iff the completed schedule can be transformed into a serial
  /// process schedule.
  bool reducible = false;
  /// The activity instances remaining after maximal application of the
  /// compensation and effect-free rules, in (residual) schedule order.
  std::vector<ActivityInstance> residual;
  /// When reducible: a serialization order of the processes.
  std::vector<ProcessId> serialization_order;
  /// When not reducible: a process cycle witnessing the failure
  /// (first == last).
  std::vector<ProcessId> cycle;
};

/// Applies the three transformation rules of Def. 9 to the *completed*
/// schedule `completed`:
///
/// 1. Commutativity rule — adjacent commuting activities may be swapped.
/// 2. Compensation rule — an adjacent pair (a, a^-1) may be removed.
/// 3. Effect-free rule — effect-free activities of processes that do not
///    commit in the original schedule may be removed.
///
/// Decision procedure (polynomial): aborted invocations of non-committed
/// processes and activities of effect-free services of non-committed
/// processes are removed; compensation pairs are cancelled whenever no
/// activity conflicting with the pair lies between them (non-conflicting
/// in-between activities can be commuted out of the way first) — iterated
/// to a fixpoint since each cancellation may unblock further ones; the
/// residual is reducible to a serial schedule iff its process-level
/// conflict graph is acyclic.
///
/// `committed_in_original` is the set of processes that committed in the
/// original (uncompleted) schedule S — rule 3 only applies to the others.
/// Aborted invocations are treated as globally non-conflicting: an aborted
/// local transaction leaves no effects, so by Def. 6 it commutes with
/// everything.
ReductionOutcome ReduceCompletedSchedule(
    const ProcessSchedule& completed, const ConflictSpec& spec,
    const std::set<ProcessId>& committed_in_original);

/// Exhaustive oracle for the same decision: explores the full rewrite
/// state space (memoized BFS over sequences) and reports whether a serial
/// schedule is reachable. Exponential; rejects inputs with more than
/// `max_tokens` residual activities. Used to validate the polynomial
/// procedure in tests.
Result<bool> IsReducibleExhaustive(
    const ProcessSchedule& completed, const ConflictSpec& spec,
    const std::set<ProcessId>& committed_in_original, size_t max_tokens = 12,
    size_t max_states = 2'000'000);

/// True iff `schedule` is reducible (RED, Def. 9): its completed schedule
/// can be transformed into a serial one.
Result<bool> IsRED(const ProcessSchedule& schedule, const ConflictSpec& spec);

/// Detailed variant of IsRED exposing the reduction outcome.
Result<ReductionOutcome> AnalyzeRED(const ProcessSchedule& schedule,
                                    const ConflictSpec& spec);

}  // namespace tpm

#endif  // TPM_CORE_REDUCTION_H_
