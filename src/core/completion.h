#ifndef TPM_CORE_COMPLETION_H_
#define TPM_CORE_COMPLETION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/execution_state.h"

namespace tpm {

/// One step of a completion C(P): execute the compensating activity a^-1
/// (inverse == true) or the original (retriable) activity a.
struct CompletionStep {
  ActivityId activity;
  bool inverse = false;
  /// Scheduler bookkeeping, not part of the step's identity: true once the
  /// write-ahead COMP record for this inverse step is durable, so a retry
  /// of the invocation does not log a second intention.
  bool logged = false;

  friend bool operator==(const CompletionStep& a, const CompletionStep& b) {
    return a.activity == b.activity && a.inverse == b.inverse;
  }
};

/// The completion C(P_i) of a process (§3.1): the sequence of activities
/// that must be executed to recover the process, either backward
/// (compensations only, process in B-REC) or forward (local backward
/// recovery to the last state-determining element, then the retriable
/// activities of the lowest-priority alternative — the forward recovery
/// path).
struct Completion {
  RecoveryState state = RecoveryState::kBackwardRecoverable;
  /// Steps in execution order: for F-REC, all compensating steps precede
  /// all forward (retriable) steps.
  std::vector<CompletionStep> steps;

  /// Number of compensating steps (they form a prefix of `steps`).
  size_t num_backward_steps() const;

  std::string ToString() const;
};

/// Computes C(P) for the given execution state (Def. of completion, §3.1):
///
/// * B-REC: compensate every effective-committed activity in reverse commit
///   order.
/// * F-REC: let d be the last effective-committed non-compensatable
///   activity (local state-determining element). Compensate, in reverse
///   commit order, every compensatable activity committed after d; then
///   append the guaranteed forward path from d: its lowest-priority
///   (all-retriable) successor alternative in topological order, or its sole
///   continuation when no alternatives exist.
///
/// Requires the process definition to have well-formed flex structure.
Result<Completion> ComputeCompletion(const ProcessExecutionState& state);

}  // namespace tpm

#endif  // TPM_CORE_COMPLETION_H_
