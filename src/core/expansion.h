#ifndef TPM_CORE_EXPANSION_H_
#define TPM_CORE_EXPANSION_H_

#include "common/status.h"
#include "core/schedule.h"

namespace tpm {

/// The *expanded schedule* of the traditional unified theory
/// [SWY93, AVA+94, VHYBS98], provided for comparison with the completed
/// process schedule of Def. 8 (§3.3 contrasts the two).
///
/// Classical expansion assumes every activity has an inverse: the abort of
/// a transaction is replaced by the compensations of ALL its executed
/// activities, in reverse order — there are no termination classes, no
/// forward recovery paths, and no alternatives. Under that assumption the
/// paper remarks (§3.4, after Example 8) that the prefix S_t1 of S_t2
/// *would* be reducible: every pair (a, a^-1) cancels and the reduced
/// schedule consists only of C_1 and C_2.
///
/// ExpandClassically models exactly that hypothetical: each non-committed
/// process's executed activities are undone in reverse order (pretending
/// pivots and retriables were compensatable, with their own service as the
/// inverse's service — perfect commutativity), appended per abort position
/// or at the end for still-active processes.
Result<ProcessSchedule> ExpandClassically(const ProcessSchedule& schedule);

/// Reducibility of the classically expanded schedule: the traditional
/// unified theory's RED. Used to demonstrate where process structures make
/// a difference (activities without inverses, forward recovery).
Result<bool> IsClassicallyReducible(const ProcessSchedule& schedule,
                                    const ConflictSpec& spec);

/// Prefix-closed variant (the traditional PRED).
Result<bool> IsClassicallyPrefixReducible(const ProcessSchedule& schedule,
                                          const ConflictSpec& spec);

}  // namespace tpm

#endif  // TPM_CORE_EXPANSION_H_
