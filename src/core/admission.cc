#include "core/admission.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/activity.h"

namespace tpm {

namespace {

void SortUnique(std::vector<ProcessId>* pids) {
  std::sort(pids->begin(), pids->end());
  pids->erase(std::unique(pids->begin(), pids->end()), pids->end());
}

bool IsActiveProcess(const SchedulerView& view, ProcessId pid) {
  std::optional<SchedulerView::ProcessView> p = view.FindProcess(pid);
  return p.has_value() && p->state->IsActive();
}

}  // namespace

std::vector<ProcessId> ConflictingPredecessors(const SchedulerView& view,
                                               ProcessId self,
                                               ServiceId service) {
  std::vector<ProcessId> preds;
  for (ServiceId partner : view.conflict_spec().PartnersOf(service)) {
    view.ForEachEmitter(partner, [&](ProcessId p) {
      if (p != self) preds.push_back(p);
    });
  }
  SortUnique(&preds);
  return preds;
}

bool RemainderConflicts(const SchedulerView& view,
                        const SchedulerView::ProcessView& other,
                        ServiceId service, bool include_compensations) {
  const ConflictSpec& spec = view.conflict_spec();
  for (const ActivityDecl& decl : other.def->activities()) {
    const bool relevant =
        !other.state->IsCommitted(decl.id) ||
        (include_compensations && IsCompensatableKind(decl.kind));
    if (relevant && spec.ServicesConflict(service, decl.service)) {
      return true;
    }
  }
  return false;
}

std::vector<ProcessId> VirtualCompletionTargets(const SchedulerView& view,
                                                ProcessId self,
                                                ServiceId service) {
  std::vector<ProcessId> targets;
  view.ForEachActiveProcess([&](const SchedulerView::ProcessView& other) {
    if (other.pid == self) return;
    if (RemainderConflicts(view, other, service)) targets.push_back(other.pid);
  });
  return targets;  // ForEachActiveProcess visits in ascending pid order
}

bool EmittedConflictsWithRemainder(const SchedulerView& view,
                                   ProcessId emitter,
                                   const SchedulerView::ProcessView& rt,
                                   ActivityId exclude) {
  const ConflictSpec& spec = view.conflict_spec();
  for (const ActivityDecl& decl : rt.def->activities()) {
    if (decl.id == exclude) continue;
    const bool pending = !rt.state->IsCommitted(decl.id) ||
                         IsCompensatableKind(decl.kind);
    if (!pending) continue;
    for (ServiceId partner : spec.PartnersOf(decl.service)) {
      if (view.HasEmitted(emitter, partner)) return true;
    }
  }
  return false;
}

bool QuasiCommitAdmissible(const SchedulerView& view,
                           const SchedulerView::ProcessView& blocker,
                           const SchedulerView::ProcessView& requester) {
  if (blocker.state->recovery_state() !=
      RecoveryState::kForwardRecoverable) {
    return false;
  }
  const ConflictSpec& spec = view.conflict_spec();
  std::set<ServiceId> remaining;
  for (const ActivityDecl& decl : blocker.def->activities()) {
    const bool committed = blocker.state->IsCommitted(decl.id);
    if (!committed || IsCompensatableKind(decl.kind)) {
      remaining.insert(decl.service);
    }
  }
  for (const ActivityDecl& decl : requester.def->activities()) {
    for (ServiceId r : remaining) {
      if (spec.ServicesConflict(r, decl.service)) return false;
    }
  }
  return true;
}

std::vector<ProcessId> ActiveBlockers(const SchedulerView& view,
                                      const SchedulerView::ProcessView& rt,
                                      ActivityId act) {
  ServiceId service = rt.def->activity(act).service;
  std::vector<ProcessId> candidates =
      ConflictingPredecessors(view, rt.pid, service);
  view.serialization_graph().ForEachPredecessor(
      rt.pid, [&](ProcessId p) { candidates.push_back(p); });
  SortUnique(&candidates);
  std::vector<ProcessId> blockers;
  for (ProcessId p : candidates) {
    std::optional<SchedulerView::ProcessView> other = view.FindProcess(p);
    if (!other.has_value() || !other->state->IsActive()) continue;
    if (view.options().quasi_commit_optimization &&
        QuasiCommitAdmissible(view, *other, rt)) {
      continue;
    }
    blockers.push_back(p);
  }
  return blockers;  // candidates were sorted, so blockers are too
}

bool ActiveProcessReachableFrom(const SchedulerView& view, ProcessId pid) {
  return view.serialization_graph().AnyReachable(
      pid, [&](ProcessId w) { return IsActiveProcess(view, w); });
}

// ---------------------------------------------------------------------------
// Guards.

namespace {

/// kSerial: one process at a time, via an execution token taken at the
/// first invocation and returned at termination.
class SerialAdmissionGuard : public AdmissionGuard {
 public:
  AdmissionDecision Admit(const SchedulerView::ProcessView& rt,
                          ActivityId act) override {
    (void)act;
    if (token_.valid() && token_ != rt.pid) return AdmissionDecision::kDefer;
    return AdmissionDecision::kAdmit;
  }

  void OnExecute(ProcessId pid, ServiceId service) override {
    (void)service;
    if (!token_.valid()) token_ = pid;
  }

  void OnProcessTerminated(ProcessId pid) override {
    if (token_ == pid) token_ = ProcessId();
  }

  void Reset() override { token_ = ProcessId(); }

 private:
  ProcessId token_;
};

/// kTwoPhaseLocking: strict 2PL at service granularity. Locks accumulate
/// per process and are released only at process termination.
class TwoPhaseLockingGuard : public AdmissionGuard {
 public:
  explicit TwoPhaseLockingGuard(const SchedulerView& view) : view_(view) {}

  AdmissionDecision Admit(const SchedulerView::ProcessView& rt,
                          ActivityId act) override {
    ServiceId service = rt.def->activity(act).service;
    if (!LocksAvailable(rt.pid, service)) return AdmissionDecision::kDefer;
    return AdmissionDecision::kAdmit;
  }

  void OnExecute(ProcessId pid, ServiceId service) override {
    locks_[pid].insert(service);
  }

  void OnProcessTerminated(ProcessId pid) override { locks_.erase(pid); }

  void Reset() override { locks_.clear(); }

 private:
  bool LocksAvailable(ProcessId pid, ServiceId service) const {
    const ConflictSpec& spec = view_.conflict_spec();
    for (const auto& [holder, locks] : locks_) {
      if (holder == pid) continue;
      if (!IsActiveProcess(view_, holder)) continue;
      for (ServiceId held : locks) {
        if (held == service || spec.ServicesConflict(held, service)) {
          return false;
        }
      }
    }
    return true;
  }

  const SchedulerView& view_;
  std::map<ProcessId, std::set<ServiceId>> locks_;
};

/// One incremental certification for a whole batch of fresh submissions:
/// every node the scheduler just added must still be edge-free (conflict
/// edges only appear at activity emission). Edge-free nodes cannot lie on
/// any cycle, so the extended graph is acyclic iff the old one was — one
/// O(batch) scan replaces per-process cycle checks.
bool BatchNodesIsolated(const SchedulerView& view,
                        const std::vector<ProcessId>& fresh) {
  const SerializationGraph& graph = view.serialization_graph();
  for (ProcessId pid : fresh) {
    if (graph.HasPredecessors(pid)) return false;
    bool has_successor = false;
    graph.ForEachSuccessor(pid, [&](ProcessId) { has_successor = true; });
    if (has_successor) return false;
  }
  return true;
}

/// kUnsafe: serialization-graph testing only — no recovery reasoning, no
/// Lemma 1 deferral. The negative control of §2.2/Figure 1.
class UnsafeAdmissionGuard : public AdmissionGuard {
 public:
  explicit UnsafeAdmissionGuard(const SchedulerView& view) : view_(view) {}

  AdmissionDecision AdmitBatch(const std::vector<ProcessId>& fresh) override {
    return BatchNodesIsolated(view_, fresh) ? AdmissionDecision::kAdmit
                                            : AdmissionDecision::kDefer;
  }

  AdmissionDecision Admit(const SchedulerView::ProcessView& rt,
                          ActivityId act) override {
    ServiceId service = rt.def->activity(act).service;
    std::vector<ProcessId> preds =
        ConflictingPredecessors(view_, rt.pid, service);
    if (view_.serialization_graph().WouldCycle(rt.pid, preds)) {
      return AdmissionDecision::kFail;
    }
    return AdmissionDecision::kAdmit;
  }

 private:
  const SchedulerView& view_;
};

/// kPred: the paper's protocol — SGT plus the Lemma 1 deferral, crossing
/// prevention and the §3.5 completion pre-order checks.
class PredAdmissionGuard : public AdmissionGuard {
 public:
  PredAdmissionGuard(const SchedulerView& view, SchedulerStats* stats)
      : view_(view), stats_(stats) {}

  AdmissionDecision AdmitBatch(const std::vector<ProcessId>& fresh) override {
    return BatchNodesIsolated(view_, fresh) ? AdmissionDecision::kAdmit
                                            : AdmissionDecision::kDefer;
  }

  AdmissionDecision Admit(const SchedulerView::ProcessView& rt,
                          ActivityId act) override {
    const SchedulerOptions& options = view_.options();
    const SerializationGraph& graph = view_.serialization_graph();
    const ActivityDecl& decl = rt.def->activity(act);
    std::vector<ProcessId> preds =
        ConflictingPredecessors(view_, rt.pid, decl.service);
    if (graph.WouldCycle(rt.pid, preds)) {
      // Admitting now would close a serialization cycle. If an active
      // process sits on the cycle path it may still abort (its cancelled
      // pairs then release the edges): wait. If every participant has
      // terminated the cycle is permanent: fail the activity, triggering
      // the alternative execution path — except for retriables, which
      // cannot fail (Def. 3): they execute anyway, trading formal
      // reducibility for the guaranteed-termination property.
      if (ActiveProcessReachableFrom(view_, rt.pid)) {
        return AdmissionDecision::kDefer;
      }
      if (IsRetriableKind(decl.kind)) {
        ++stats_->forced_executions;
        return AdmissionDecision::kAdmit;
      }
      return AdmissionDecision::kFail;
    }
    // Crossing prevention: executing after a conflicting activity of an
    // active P_i that will FORWARD-touch this service again (visible
    // from its definition) guarantees antisymmetric conflict edges — a
    // future cycle with a forced abort. Wait for P_i instead. Future
    // *compensations* of P_i do not count: a later a_ik^-1 is handled
    // correctly by the reverse-order cascade, not doomed. Processes done
    // with the service overlap freely (the Figure 7 pipeline
    // parallelism PRED is about).
    if (options.ablation.crossing_prevention) {
      for (ProcessId p : preds) {
        std::optional<SchedulerView::ProcessView> other =
            view_.FindProcess(p);
        if (!other.has_value() || !other->state->IsActive()) continue;
        if (RemainderConflicts(view_, *other, decl.service,
                               /*include_compensations=*/false)) {
          return AdmissionDecision::kDefer;
        }
      }
    }
    if (IsNonCompensatable(decl.kind) && options.ablation.lemma1_deferral) {
      std::vector<ProcessId> blockers = ActiveBlockers(view_, rt, act);
      if (!blockers.empty()) {
        if (options.defer_mode == DeferMode::kDelayExecution) {
          return AdmissionDecision::kDefer;
        }
        // kPrepared2PC: admit into the prepared state; the commit stays
        // invisible until release, so no pre-ordering hazard arises.
        return AdmissionDecision::kAdmit;
      }
      // No direct blockers: the activity would commit IMMEDIATELY.
      // §3.5: a committed non-compensatable activity conflicting with the
      // *potential completion* of an active process P_i pre-orders this
      // process before P_i (the completion activity would follow it in
      // every completed schedule). Committing it now is unsafe if P_i
      // already reaches us in the serialization graph, or if P_i's
      // emitted activities conflict with our own remainder (the reverse
      // edge is then inevitable): defer until P_i resolves.
      if (options.ablation.completion_preorder) {
        for (ProcessId v :
             VirtualCompletionTargets(view_, rt.pid, decl.service)) {
          if (graph.Reaches(v, rt.pid)) return AdmissionDecision::kDefer;
          if (EmittedConflictsWithRemainder(view_, v, rt, act)) {
            return AdmissionDecision::kDefer;
          }
        }
      }
    }
    return AdmissionDecision::kAdmit;
  }

 private:
  const SchedulerView& view_;
  SchedulerStats* stats_;
};

}  // namespace

std::unique_ptr<AdmissionGuard> MakeAdmissionGuard(const SchedulerView& view,
                                                   SchedulerStats* stats) {
  switch (view.options().protocol) {
    case AdmissionProtocol::kSerial:
      return std::make_unique<SerialAdmissionGuard>();
    case AdmissionProtocol::kTwoPhaseLocking:
      return std::make_unique<TwoPhaseLockingGuard>(view);
    case AdmissionProtocol::kUnsafe:
      return std::make_unique<UnsafeAdmissionGuard>(view);
    case AdmissionProtocol::kPred:
      break;
  }
  return std::make_unique<PredAdmissionGuard>(view, stats);
}

}  // namespace tpm
