#ifndef TPM_CORE_BASELINE_SCHEDULERS_H_
#define TPM_CORE_BASELINE_SCHEDULERS_H_

#include <memory>

#include "core/scheduler.h"

namespace tpm {

/// Convenience factories for the scheduler configurations compared in the
/// experiments. All return a TransactionalProcessScheduler — the protocols
/// differ only in their admission policy — so benchmark code can treat
/// them uniformly.

/// The paper's PRED scheduler (§3, Lemma 1 deferral; optionally with the
/// 2PC deferred-commit realization and the quasi-commit optimization of
/// Example 10).
std::unique_ptr<TransactionalProcessScheduler> MakePredScheduler(
    DeferMode defer_mode = DeferMode::kDelayExecution,
    bool quasi_commit_optimization = false, RecoveryLog* log = nullptr);

/// One process at a time. Maximal safety, zero inter-process parallelism.
std::unique_ptr<TransactionalProcessScheduler> MakeSerialScheduler(
    RecoveryLog* log = nullptr);

/// Strict two-phase locking at service granularity: conflicting services
/// are mutually exclusive until process commit. Correct but blind to the
/// distinctions PRED exploits (compensatable overlap, quasi-commit).
std::unique_ptr<TransactionalProcessScheduler> MakeLockingScheduler(
    RecoveryLog* log = nullptr);

/// Classical concurrency control without unified recovery: conflicts are
/// ordered (serializability) but non-compensatable activities are never
/// deferred — reproducing the irrecoverable executions of §2.2/Figure 1.
std::unique_ptr<TransactionalProcessScheduler> MakeUnsafeScheduler(
    RecoveryLog* log = nullptr);

}  // namespace tpm

#endif  // TPM_CORE_BASELINE_SCHEDULERS_H_
