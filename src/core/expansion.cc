#include "core/expansion.h"

#include <algorithm>

#include "common/str_util.h"
#include "core/reduction.h"

namespace tpm {

namespace {

// Appends the classical undo of `pids` (reverse order of their original
// commits, merged globally) followed by commit markers.
Status UndoClassically(const std::vector<ProcessId>& pids,
                       ProcessSchedule* expanded) {
  struct Undo {
    ActivityInstance inst;
    size_t original_pos;
  };
  std::vector<Undo> undos;
  const auto& events = expanded->events();
  for (ProcessId pid : pids) {
    const ProcessExecutionState* state = expanded->StateOf(pid);
    if (state == nullptr) {
      return Status::NotFound(StrCat("unknown process P", pid));
    }
    for (ActivityId act : state->EffectiveCommitted()) {
      size_t pos = 0;
      for (size_t i = events.size(); i-- > 0;) {
        const ScheduleEvent& e = events[i];
        if (e.type == EventType::kActivity && !e.aborted_invocation &&
            !e.act.inverse && e.act.process == pid &&
            e.act.activity == act) {
          pos = i;
          break;
        }
      }
      undos.push_back(Undo{ActivityInstance{pid, act, true}, pos});
    }
  }
  std::stable_sort(undos.begin(), undos.end(),
                   [](const Undo& a, const Undo& b) {
                     return a.original_pos > b.original_pos;
                   });
  for (const Undo& undo : undos) {
    // Legality is bypassed: the classical model pretends every activity —
    // pivots and retriables included — has an inverse.
    TPM_RETURN_IF_ERROR(expanded->Append(ScheduleEvent::Activity(undo.inst),
                                         /*enforce_legal=*/false));
  }
  for (ProcessId pid : pids) {
    TPM_RETURN_IF_ERROR(expanded->Append(ScheduleEvent::Commit(pid),
                                         /*enforce_legal=*/false));
  }
  return Status::OK();
}

}  // namespace

Result<ProcessSchedule> ExpandClassically(const ProcessSchedule& schedule) {
  ProcessSchedule expanded;
  for (const auto& [pid, def] : schedule.processes()) {
    TPM_RETURN_IF_ERROR(expanded.AddProcess(pid, def));
  }
  for (const ScheduleEvent& event : schedule.events()) {
    switch (event.type) {
      case EventType::kActivity:
      case EventType::kCommit:
        TPM_RETURN_IF_ERROR(expanded.Append(event, /*enforce_legal=*/false));
        break;
      case EventType::kAbort:
        TPM_RETURN_IF_ERROR(UndoClassically({event.process}, &expanded));
        break;
      case EventType::kGroupAbort:
        TPM_RETURN_IF_ERROR(UndoClassically(event.group, &expanded));
        break;
    }
  }
  std::vector<ProcessId> active = expanded.ActiveProcesses();
  if (!active.empty()) {
    TPM_RETURN_IF_ERROR(UndoClassically(active, &expanded));
  }
  return expanded;
}

Result<bool> IsClassicallyReducible(const ProcessSchedule& schedule,
                                    const ConflictSpec& spec) {
  TPM_ASSIGN_OR_RETURN(ProcessSchedule expanded,
                       ExpandClassically(schedule));
  std::set<ProcessId> committed;
  for (const auto& [pid, def] : schedule.processes()) {
    if (schedule.IsProcessCommitted(pid)) committed.insert(pid);
  }
  return ReduceCompletedSchedule(expanded, spec, committed).reducible;
}

Result<bool> IsClassicallyPrefixReducible(const ProcessSchedule& schedule,
                                          const ConflictSpec& spec) {
  for (size_t n = 1; n <= schedule.size(); ++n) {
    TPM_ASSIGN_OR_RETURN(bool red,
                         IsClassicallyReducible(schedule.Prefix(n), spec));
    if (!red) return false;
  }
  return true;
}

}  // namespace tpm
