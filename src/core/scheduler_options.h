#ifndef TPM_CORE_SCHEDULER_OPTIONS_H_
#define TPM_CORE_SCHEDULER_OPTIONS_H_

#include <cstdint>
#include <map>

#include "common/fingerprint.h"
#include "common/ids.h"

namespace tpm {

class VirtualClock;

/// Admission protocol run by the scheduler.
enum class AdmissionProtocol {
  /// The paper's protocol: serialization-graph testing plus the Lemma 1
  /// deferral of non-compensatable activities, guaranteeing every emitted
  /// prefix is reducible (PRED).
  kPred,
  /// One process at a time; trivially correct, no inter-process
  /// parallelism. Baseline.
  kSerial,
  /// Strict two-phase locking at service granularity: an activity waits
  /// until no conflicting service lock is held by another active process;
  /// locks are released at process termination. Correct but pessimistic —
  /// it forbids the compensatable-phase overlap and the quasi-commit
  /// concurrency PRED allows. Baseline.
  kTwoPhaseLocking,
  /// Classical concurrency control only (serializability, no unified
  /// recovery reasoning): non-compensatable activities are never deferred.
  /// Produces the irrecoverable interleavings of §2.2/Figure 1; used as
  /// the negative control.
  kUnsafe,
};

/// How the Lemma 1 deferral of non-compensatable activities is realized.
enum class DeferMode {
  /// The activity is not invoked until the blockers commit.
  kDelayExecution,
  /// The activity is executed immediately but left in the prepared state of
  /// its subsystem (2PC phase one); all prepared branches of the process
  /// are committed atomically once the blockers are gone (Lemma 1's
  /// "deferred commit ... performed atomically by exploiting a two phase
  /// commit protocol"). Overlaps activity execution with the wait.
  kPrepared2PC,
};

/// Toggles for the individual guard mechanisms of the kPred protocol —
/// used by the ablation experiments (each knob corresponds to one design
/// element derived from the paper; disabling it shows which anomalies that
/// element prevents). All default to on; production use should not touch
/// these.
struct PredAblation {
  /// Lemma 1: defer non-compensatable activities behind conflicting active
  /// predecessors.
  bool lemma1_deferral = true;
  /// Defer an activity when a conflicting active process will forward-touch
  /// the service again (prevents doomed antisymmetric interleavings).
  bool crossing_prevention = true;
  /// Lemma 2 / §2.2: gate compensations behind dependents' undo, with
  /// cascading aborts.
  bool compensation_gate = true;
  /// §3.5: pre-order frozen non-compensatables before potential completion
  /// conflicts (virtual serialization edges) and check forward recovery
  /// steps against them.
  bool completion_preorder = true;
};

struct SchedulerOptions {
  AdmissionProtocol protocol = AdmissionProtocol::kPred;
  DeferMode defer_mode = DeferMode::kDelayExecution;
  PredAblation ablation;
  /// Example 10: allow an activity of P_j conflicting with an earlier
  /// activity of an active P_i when P_i is in F-REC and none of P_i's
  /// remaining or completion activities can conflict with P_j.
  bool quasi_commit_optimization = false;
  /// Re-check PRED on the emitted history after every event (O(n^4) —
  /// tests/small workloads only).
  bool certify_prefixes = false;
  /// Safety cap on re-invocations of a retriable activity.
  int max_retries = 1000;
  /// Virtual-time cost model: how many clock ticks an invocation of each
  /// service occupies its process (default 1 for unlisted services). The
  /// scheduler's clock advances one tick per pass; a process busy with a
  /// long-running activity skips its turns, so concurrency shows up as
  /// makespan (stats.virtual_time) < sum of durations.
  std::map<ServiceId, int64_t> service_durations;
  /// Congestion control: at most this many processes execute concurrently;
  /// further submissions queue until a slot frees (0 = unlimited). Under
  /// extreme contention a small level avoids the abort storms optimistic
  /// scheduling is prone to (experiment E12c).
  int max_concurrent_processes = 0;
  /// Shared simulation time base. When set, the scheduler advances this
  /// clock one tick per pass instead of a private counter, composing with
  /// subsystem-side time consumers (injected latency, retry backoff,
  /// deadlines, breaker cooldowns). Null = scheduler-private clock,
  /// behaviour identical to before. The clock must outlive the scheduler.
  VirtualClock* clock = nullptr;
  /// Operation-level commutativity (ADT conflict tables): when true
  /// (default), op-kind pairs declared commuting by the registered
  /// subsystems downgrade the conservative read/write-derived service
  /// conflicts (ConflictSpec's op layer). When false, the scheduler sees
  /// only the read/write modeling of the same services — the ablation the
  /// semantic-vs-read/write experiment (bench_semantic) flips.
  bool use_op_commutativity = true;
  /// How long a retriable activity may stay parked behind an open circuit
  /// breaker before it is treated as a failed invocation (alternative path
  /// or abort — bounds termination under unrepaired outages). 0 = park
  /// indefinitely (termination then relies on the outage being repaired).
  int64_t park_timeout_ticks = 0;
  /// Bounded-memory mode for long-running / high-throughput schedulers
  /// (the latency bench): once a terminated process's serialization-graph
  /// footprint has been pruned, its runtime object is recycled into a pool
  /// (reused by later submissions without reallocating its containers) and
  /// its history events are compacted away at epoch boundaries — the start
  /// of the next Submit/SubmitBatch/Step. Consequences, all opt-in:
  /// OutcomeOf answers from a dense outcome table, history() only covers
  /// processes not yet reclaimed, latencies() stays empty (use an observer
  /// or stats()), and per-process Submit dependencies, certify_prefixes and
  /// Checkpoint/Recover are unsupported (rejected / would see a truncated
  /// log picture). Off by default: behaviour and history are then
  /// bit-identical to earlier versions.
  bool reclaim_terminated = false;
};

struct SchedulerStats {
  int64_t steps = 0;
  /// Virtual clock at the end of the run (== steps unless a cost model
  /// makes activities span multiple ticks — then it is the makespan).
  int64_t virtual_time = 0;
  int64_t activities_committed = 0;
  int64_t failed_invocations = 0;
  int64_t compensations = 0;
  int64_t deferrals = 0;
  int64_t blocked_by_locks = 0;
  int64_t alternatives_taken = 0;
  int64_t processes_committed = 0;
  int64_t processes_aborted = 0;
  int64_t deadlock_victims = 0;
  int64_t prepared_branches = 0;
  int64_t quasi_commit_admissions = 0;
  /// Processes aborted because a compensation of another process
  /// invalidated data they had consumed (§2.2: the production process must
  /// be compensated when the BOM it read is invalidated).
  int64_t cascading_aborts = 0;
  /// Cascading aborts that hit a process already in F-REC — its pivot had
  /// committed, so the inconsistency cannot be undone (only possible under
  /// kUnsafe; the Lemma 1 deferral prevents it).
  int64_t irrecoverable_cascades = 0;
  /// Commits delayed to enforce the commit order of Def. 11 clause 1.
  int64_t commit_waits = 0;
  /// Retriable activities / forward recovery steps executed although they
  /// close a serialization cycle whose other participants have all
  /// terminated: guaranteed termination (liveness) takes precedence over
  /// formal prefix-reducibility in these corner cases, which only arise in
  /// extreme-contention abort storms.
  int64_t forced_executions = 0;
  /// kUnsafe only: prefixes detected non-reducible when certifying.
  int64_t certified_violations = 0;
  /// Log records skipped during Recover because they did not apply to the
  /// reconstructed state (duplicate ACT/COMP from a superseded write-ahead
  /// intention, records of processes a compaction already dropped). A
  /// crash can legitimately leave such records; recovery tolerates them
  /// instead of failing, but counts them for observability.
  int64_t recovered_log_anomalies = 0;
  /// Failure-domain layer (subsystem deadlines + circuit breakers):
  /// breaker open-transitions across all registered subsystems.
  int64_t breaker_trips = 0;
  /// Invocations that failed because their deadline budget was exhausted.
  int64_t deadline_failures = 0;
  /// Activities parked behind an open breaker instead of retrying, and
  /// parked activities that later resumed (breaker half-opened/closed).
  int64_t parked_activities = 0;
  int64_t resumed_activities = 0;
  /// Proactive ◁-switches to an alternative group avoiding a subsystem
  /// with an open breaker (outage-aware graceful degradation).
  int64_t degraded_switches = 0;
  /// Cross-shard layer: sub-processes of spanning processes admitted on
  /// this scheduler with the held-commit (distributed 2PC participant)
  /// protocol.
  int64_t spanning_admitted = 0;
  /// Durable "prepared" votes this scheduler cast as a 2PC participant —
  /// one per held sub-process reaching its vote point (Lemma 1 generalized
  /// so a shard is a participant).
  int64_t cross_shard_prepares = 0;
  /// In-doubt held sub-processes force-committed during Recover because
  /// the coordinator log carried a durable commit decision.
  int64_t in_doubt_resolved = 0;

  /// Aggregates another scheduler's stats into this one — the fan-in the
  /// sharded runtime uses to merge per-shard stats. Every counter is
  /// additive except virtual_time, which is a makespan and therefore
  /// merges as the maximum over the shards' clocks (with one shard this is
  /// the identity, so merged single-shard stats equal the solo run's).
  void MergeFrom(const SchedulerStats& other) {
    const int64_t makespan =
        virtual_time > other.virtual_time ? virtual_time : other.virtual_time;
    steps += other.steps;
    virtual_time = makespan;
    activities_committed += other.activities_committed;
    failed_invocations += other.failed_invocations;
    compensations += other.compensations;
    deferrals += other.deferrals;
    blocked_by_locks += other.blocked_by_locks;
    alternatives_taken += other.alternatives_taken;
    processes_committed += other.processes_committed;
    processes_aborted += other.processes_aborted;
    deadlock_victims += other.deadlock_victims;
    prepared_branches += other.prepared_branches;
    quasi_commit_admissions += other.quasi_commit_admissions;
    cascading_aborts += other.cascading_aborts;
    irrecoverable_cascades += other.irrecoverable_cascades;
    commit_waits += other.commit_waits;
    forced_executions += other.forced_executions;
    certified_violations += other.certified_violations;
    recovered_log_anomalies += other.recovered_log_anomalies;
    breaker_trips += other.breaker_trips;
    deadline_failures += other.deadline_failures;
    parked_activities += other.parked_activities;
    resumed_activities += other.resumed_activities;
    degraded_switches += other.degraded_switches;
    spanning_admitted += other.spanning_admitted;
    cross_shard_prepares += other.cross_shard_prepares;
    in_doubt_resolved += other.in_doubt_resolved;
  }

  friend bool operator==(const SchedulerStats&,
                         const SchedulerStats&) = default;

  /// FNV-1a digest of the counter deltas since `base` — the stats component
  /// of a replica's vote. Deltas rather than absolutes so a respawned
  /// replica (which re-baselines at adoption) votes comparably with peers
  /// that carry history from before the respawn. With a default-constructed
  /// base this hashes the absolute values.
  ///
  /// Maintenance note: the counter list appears in MergeFrom, operator==
  /// (implicitly) and here — a new counter must be added to all three.
  uint64_t Fingerprint() const { return FingerprintSince(SchedulerStats{}); }

  uint64_t FingerprintSince(const SchedulerStats& base) const {
    uint64_t h = kFnv1aOffsetBasis;
    auto fold = [&h](int64_t now, int64_t then) {
      h = Fnv1aInt(h, static_cast<uint64_t>(now - then));
    };
    fold(steps, base.steps);
    fold(virtual_time, base.virtual_time);
    fold(activities_committed, base.activities_committed);
    fold(failed_invocations, base.failed_invocations);
    fold(compensations, base.compensations);
    fold(deferrals, base.deferrals);
    fold(blocked_by_locks, base.blocked_by_locks);
    fold(alternatives_taken, base.alternatives_taken);
    fold(processes_committed, base.processes_committed);
    fold(processes_aborted, base.processes_aborted);
    fold(deadlock_victims, base.deadlock_victims);
    fold(prepared_branches, base.prepared_branches);
    fold(quasi_commit_admissions, base.quasi_commit_admissions);
    fold(cascading_aborts, base.cascading_aborts);
    fold(irrecoverable_cascades, base.irrecoverable_cascades);
    fold(commit_waits, base.commit_waits);
    fold(forced_executions, base.forced_executions);
    fold(certified_violations, base.certified_violations);
    fold(recovered_log_anomalies, base.recovered_log_anomalies);
    fold(breaker_trips, base.breaker_trips);
    fold(deadline_failures, base.deadline_failures);
    fold(parked_activities, base.parked_activities);
    fold(resumed_activities, base.resumed_activities);
    fold(degraded_switches, base.degraded_switches);
    fold(spanning_admitted, base.spanning_admitted);
    fold(cross_shard_prepares, base.cross_shard_prepares);
    fold(in_doubt_resolved, base.in_doubt_resolved);
    return h;
  }
};

}  // namespace tpm

#endif  // TPM_CORE_SCHEDULER_OPTIONS_H_
