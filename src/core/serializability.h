#ifndef TPM_CORE_SERIALIZABILITY_H_
#define TPM_CORE_SERIALIZABILITY_H_

#include <vector>

#include "common/status.h"
#include "core/conflict.h"
#include "core/schedule.h"
#include "core/serialization_graph.h"

namespace tpm {

/// The process-level conflict (serialization) graph of a schedule: nodes are
/// processes, and there is an edge P_i -> P_j iff some activity instance of
/// P_i precedes (by schedule position) a conflicting activity instance of
/// P_j. A process schedule is serializable iff this graph is acyclic
/// (§3.2, [BHG87]). Built on the same SerializationGraph engine the online
/// scheduler maintains incrementally.
struct ConflictGraph {
  std::vector<ProcessId> process_ids;  // nodes, in interning order
  SerializationGraph graph;

  bool IsAcyclic() const { return !graph.HasCycle(); }

  /// A cycle as process ids (first == last), empty if acyclic.
  std::vector<ProcessId> FindCycle() const { return graph.FindCycle(); }

  /// A serialization order of the processes (topological order), or an
  /// error if the graph is cyclic.
  Result<std::vector<ProcessId>> SerializationOrder() const {
    return graph.TopologicalOrder();
  }
};

/// Options for conflict-graph construction.
struct ConflictGraphOptions {
  /// If true, only activities of committed processes are considered (the
  /// committed projection used in the serializability proof of Theorem 1).
  bool committed_projection = false;
  /// If true, aborted invocations (effect-free) are ignored. They never
  /// produce effects, so they induce no real conflicts.
  bool ignore_aborted_invocations = true;
};

/// Builds the conflict graph of `schedule` under `spec`.
ConflictGraph BuildConflictGraph(const ProcessSchedule& schedule,
                                 const ConflictSpec& spec,
                                 const ConflictGraphOptions& options = {});

/// True iff the schedule is (conflict-)serializable: conflict equivalent to
/// a serial execution of all processes.
bool IsSerializable(const ProcessSchedule& schedule, const ConflictSpec& spec,
                    const ConflictGraphOptions& options = {});

}  // namespace tpm

#endif  // TPM_CORE_SERIALIZABILITY_H_
