#include "core/completion.h"

#include <algorithm>
#include <set>

#include "common/str_util.h"

namespace tpm {

size_t Completion::num_backward_steps() const {
  size_t n = 0;
  for (const auto& step : steps) {
    if (!step.inverse) break;
    ++n;
  }
  return n;
}

std::string Completion::ToString() const {
  std::ostringstream oss;
  oss << (state == RecoveryState::kBackwardRecoverable ? "B-REC" : "F-REC")
      << " {";
  bool first = true;
  for (const auto& step : steps) {
    if (!first) oss << " << ";
    first = false;
    oss << "a" << step.activity;
    if (step.inverse) oss << "^-1";
  }
  oss << "}";
  return oss.str();
}

Result<Completion> ComputeCompletion(const ProcessExecutionState& state) {
  const ProcessDef& def = state.def();
  Completion completion;
  std::vector<ActivityId> effective = state.EffectiveCommitted();
  completion.state = state.recovery_state();

  if (completion.state == RecoveryState::kBackwardRecoverable) {
    // Backward recovery path: compensate everything in reverse commit order.
    for (auto it = effective.rbegin(); it != effective.rend(); ++it) {
      completion.steps.push_back({*it, /*inverse=*/true});
    }
    return completion;
  }

  // F-REC. Find d: the last effective-committed non-compensatable activity
  // (the local state-determining element s_{i_k} the process rolls back to).
  size_t d_pos = 0;
  for (size_t i = 0; i < effective.size(); ++i) {
    if (IsNonCompensatable(def.KindOf(effective[i]))) d_pos = i;
  }

  // Local backward recovery: compensate compensatable activities committed
  // after d, in reverse commit order (Lemma 2 ordering).
  std::set<ActivityId> being_compensated;
  for (size_t i = effective.size(); i-- > d_pos + 1;) {
    ActivityId a = effective[i];
    if (IsCompensatableKind(def.KindOf(a))) {
      completion.steps.push_back({a, /*inverse=*/true});
      being_compensated.insert(a);
    }
  }

  // Activities whose effects are kept: they pin the branch choices.
  std::set<ActivityId> kept;
  for (ActivityId a : effective) {
    if (being_compensated.count(a) == 0) kept.insert(a);
  }

  // Forward recovery path: walk forward from the kept activities. At each
  // committed activity with alternatives, stay on the branch that contains
  // kept activities; if the active branch was abandoned (all its commits
  // compensated), take the last alternative — guaranteed all-retriable by
  // the well-formed flex structure (§3.1: the abort of a process in F-REC
  // considers only the alternative with lowest priority).
  std::set<ActivityId> forward_set;
  std::vector<ActivityId> worklist(kept.begin(), kept.end());
  std::set<ActivityId> visited = kept;
  while (!worklist.empty()) {
    ActivityId c = worklist.back();
    worklist.pop_back();
    auto groups = def.SuccessorGroups(c);
    if (groups.empty()) continue;
    // Choose the group to follow.
    int chosen = -1;
    for (size_t g = 0; g < groups.size(); ++g) {
      for (ActivityId member : def.Subtree(groups[g])) {
        if (kept.count(member) > 0) {
          chosen = static_cast<int>(g);
          break;
        }
      }
      if (chosen >= 0) break;
    }
    if (chosen < 0) chosen = static_cast<int>(groups.size()) - 1;
    for (ActivityId s : groups[chosen]) {
      if (visited.count(s) > 0) continue;
      visited.insert(s);
      if (kept.count(s) == 0) {
        if (!IsRetriableKind(def.KindOf(s))) {
          return Status::Internal(
              StrCat("forward recovery path reached non-retriable activity a",
                     s, "; process lacks guaranteed termination"));
        }
        forward_set.insert(s);
      }
      worklist.push_back(s);
    }
  }

  // Emit forward steps in topological (precedence) order.
  auto topo_order = def.Subtree(def.Roots());
  for (ActivityId a : topo_order) {
    if (forward_set.count(a) > 0) {
      completion.steps.push_back({a, /*inverse=*/false});
    }
  }
  return completion;
}

}  // namespace tpm
