#ifndef TPM_WORKLOAD_SCHEDULE_GENERATOR_H_
#define TPM_WORKLOAD_SCHEDULE_GENERATOR_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/conflict.h"
#include "core/process.h"
#include "core/schedule.h"

namespace tpm {

/// Parameters for random abstract schedules used in the theory sweeps
/// (Theorem 1 validation, reduction-procedure cross-checks).
struct RandomScheduleConfig {
  int num_processes = 2;
  /// Activities on the primary path of each process: compensatable prefix,
  /// one pivot, retriable tail.
  int min_compensatable = 1;
  int max_compensatable = 2;
  int min_retriable = 0;
  int max_retriable = 2;
  /// Probability that any given cross-process service pair conflicts.
  double conflict_density = 0.2;
  /// Probability that a process that finished all its activities gets a
  /// commit event (otherwise it stays active and is group-aborted by the
  /// completion).
  double commit_probability = 0.7;
  /// Probability per scheduling step that the schedule stops early,
  /// leaving the remaining processes active mid-flight.
  double stop_probability = 0.05;
};

/// A generated world: process definitions (owned), the conflict relation,
/// and one random interleaving. Movable, not copyable (the schedule holds
/// pointers into the owned definitions).
struct GeneratedSchedule {
  std::vector<std::unique_ptr<ProcessDef>> defs;
  ConflictSpec spec;
  ProcessSchedule schedule;
};

/// Generates a random legal process schedule: each process executes its
/// primary path; the interleaving, conflicts, early stops and commit events
/// are random. All processes have well-formed flex structure.
Result<GeneratedSchedule> GenerateRandomSchedule(
    const RandomScheduleConfig& config, Rng* rng);

}  // namespace tpm

#endif  // TPM_WORKLOAD_SCHEDULE_GENERATOR_H_
