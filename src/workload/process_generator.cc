#include "workload/process_generator.h"

#include <algorithm>

#include "common/str_util.h"
#include "core/flex_structure.h"

namespace tpm {

namespace {

ServiceDef MakeAddDelta(ServiceId id, std::string name, std::string key,
                        int64_t sign) {
  ServiceDef def;
  def.id = id;
  def.name = std::move(name);
  def.read_set = {key};
  def.write_set = {key};
  def.body = [key, sign](KvStore* store, const ServiceRequest& request,
                         int64_t* ret) {
    const int64_t amount = request.param == 0 ? 1 : request.param;
    store->Add(key, sign * amount);
    *ret = store->Get(key);
    return Status::OK();
  };
  return def;
}

}  // namespace

SyntheticUniverse::SyntheticUniverse(int num_subsystems,
                                     int keys_per_subsystem, uint64_t seed) {
  for (int s = 0; s < num_subsystems; ++s) {
    auto subsystem = std::make_unique<KvSubsystem>(
        SubsystemId(s + 1), StrCat("subsystem", s + 1), seed + s);
    for (int k = 0; k < keys_per_subsystem; ++k) {
      const std::string key = StrCat("k", k);
      const int64_t base = (s * keys_per_subsystem + k) * 10;
      Item item;
      item.add = ServiceId(base + 1);
      item.sub = ServiceId(base + 2);
      item.check = ServiceId(base + 3);
      item.subsystem = subsystem->id();
      item.key = key;
      Status st = subsystem->RegisterService(
          MakeAddDelta(item.add, StrCat("add/", s, "/", key), key, +1));
      if (st.ok()) {
        st = subsystem->RegisterService(
            MakeAddDelta(item.sub, StrCat("sub/", s, "/", key), key, -1));
      }
      if (st.ok()) {
        st = subsystem->RegisterService(
            MakeReadService(item.check, StrCat("check/", s, "/", key), key));
      }
      // Registration of fresh ids into a fresh subsystem cannot fail.
      (void)st;
      items_.push_back(std::move(item));
    }
    subsystems_.push_back(std::move(subsystem));
  }
}

std::vector<KvSubsystem*> SyntheticUniverse::subsystems() {
  std::vector<KvSubsystem*> result;
  result.reserve(subsystems_.size());
  for (auto& s : subsystems_) result.push_back(s.get());
  return result;
}

Status SyntheticUniverse::RegisterAll(
    TransactionalProcessScheduler* scheduler) {
  for (auto& subsystem : subsystems_) {
    TPM_RETURN_IF_ERROR(scheduler->RegisterSubsystem(subsystem.get()));
  }
  return Status::OK();
}

void SyntheticUniverse::ScheduleFailures(size_t item, int count) {
  const Item& it = items_.at(item);
  for (auto& subsystem : subsystems_) {
    if (subsystem->id() == it.subsystem) {
      subsystem->ScheduleFailures(it.add, count);
      return;
    }
  }
}

int64_t SyntheticUniverse::TotalValue() const {
  int64_t total = 0;
  for (const auto& subsystem : subsystems_) {
    for (const auto& [key, value] : subsystem->store().Snapshot()) {
      total += value;
    }
  }
  return total;
}

ProcessGenerator::ProcessGenerator(const SyntheticUniverse* universe,
                                   ProcessShape shape, uint64_t seed)
    : universe_(universe), shape_(shape), rng_(seed) {}

void ProcessGenerator::RestrictItems(size_t first, size_t count) {
  item_first_ = first;
  item_count_ = count;
}

Result<const ProcessDef*> ProcessGenerator::Generate(const std::string& name) {
  const size_t pool_first = item_first_;
  const size_t pool_count =
      item_count_ == 0 ? universe_->num_items() : item_count_;
  if (pool_first + pool_count > universe_->num_items() || pool_count == 0) {
    return Status::InvalidArgument("item restriction out of range");
  }

  auto def = std::make_unique<ProcessDef>(name);
  // Each process works on a small random subset of the available items —
  // `items_per_process` is the contention knob: the smaller the subsets
  // relative to the pool, the fewer processes overlap.
  const size_t footprint = std::min<size_t>(
      std::max(1, shape_.items_per_process), pool_count);
  std::vector<size_t> my_items;
  while (my_items.size() < footprint) {
    size_t candidate = pool_first + rng_.NextIndex(pool_count);
    if (std::find(my_items.begin(), my_items.end(), candidate) ==
        my_items.end()) {
      my_items.push_back(candidate);
    }
  }
  auto pick_item = [&]() -> const SyntheticUniverse::Item& {
    return universe_->items()[my_items[rng_.NextIndex(my_items.size())]];
  };

  // Builds one stage (compensatables, pivot, continuation); returns OK or
  // the first edge error (which cannot happen for a fresh chain).
  // Implemented iteratively over a stack of (parent activity, depth,
  // preference) continuation requests.
  struct StageRequest {
    ActivityId parent;  // invalid for the root stage
    int preference = 0;
    int depth = 0;
  };
  std::vector<StageRequest> stages;
  stages.push_back(StageRequest{ActivityId(), 0, 0});
  int activity_counter = 0;

  while (!stages.empty()) {
    StageRequest request = stages.back();
    stages.pop_back();
    ActivityId prev = request.parent;
    int pref = request.preference;

    const int n_comp = static_cast<int>(rng_.NextInRange(
        shape_.min_compensatable, shape_.max_compensatable));
    for (int i = 0; i < n_comp; ++i) {
      const auto& item = pick_item();
      ActivityId id = def->AddActivity(StrCat("c", ++activity_counter),
                                       ActivityKind::kCompensatable, item.add,
                                       item.sub);
      if (prev.valid()) {
        TPM_RETURN_IF_ERROR(def->AddEdge(prev, id, pref));
      }
      prev = id;
      pref = 0;  // only the stage's first edge carries the preference
    }

    const auto& pivot_item = pick_item();
    ActivityId pivot = def->AddActivity(StrCat("p", ++activity_counter),
                                        ActivityKind::kPivot, pivot_item.add);
    if (prev.valid()) {
      TPM_RETURN_IF_ERROR(def->AddEdge(prev, pivot, pref));
    }

    const bool nest = request.depth < shape_.max_nesting_depth &&
                      rng_.NextBool(shape_.nested_probability);
    if (nest) {
      // Primary continuation: a nested well-formed stage; alternative: an
      // all-retriable tail (guaranteeing termination).
      stages.push_back(StageRequest{pivot, 0, request.depth + 1});
      ActivityId alt_prev = pivot;
      int alt_pref = 1;
      const int n_ret = static_cast<int>(
          rng_.NextInRange(shape_.min_retriable, shape_.max_retriable));
      for (int i = 0; i < std::max(1, n_ret); ++i) {
        const auto& item = pick_item();
        ActivityId id = def->AddActivity(StrCat("r", ++activity_counter),
                                         ActivityKind::kRetriable, item.add);
        TPM_RETURN_IF_ERROR(def->AddEdge(alt_prev, id, alt_pref));
        alt_prev = id;
        alt_pref = 0;
      }
    } else {
      ActivityId tail_prev = pivot;
      const int n_ret = static_cast<int>(
          rng_.NextInRange(shape_.min_retriable, shape_.max_retriable));
      for (int i = 0; i < n_ret; ++i) {
        const auto& item = pick_item();
        ActivityId id = def->AddActivity(StrCat("r", ++activity_counter),
                                         ActivityKind::kRetriable, item.add);
        TPM_RETURN_IF_ERROR(def->AddEdge(tail_prev, id, 0));
        tail_prev = id;
      }
    }
  }

  TPM_RETURN_IF_ERROR(def->Validate());
  TPM_RETURN_IF_ERROR(ValidateWellFormedFlex(*def));
  owned_.push_back(std::move(def));
  return owned_.back().get();
}

}  // namespace tpm
