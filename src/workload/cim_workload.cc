#include "workload/cim_workload.h"

#include <cstdio>
#include <cstdlib>

#include "core/flex_structure.h"

namespace tpm {

namespace {

// Service ids for the CIM scenario (disjoint from generated universes).
enum CimService : int64_t {
  kDesign = 9001,
  kDesignUndo = 9002,
  kApprove = 9003,
  kPdmEntry = 9004,
  kPdmEntryUndo = 9005,
  kReadBom = 9006,
  kNoop = 9007,
  kTest = 9008,
  kPrototype = 9017,
  kPrototypeUndo = 9018,
  kCalibrate = 9019,
  kCalibrateUndo = 9020,
  kTechdoc = 9009,
  kReuseDoc = 9010,
  kOrderMaterials = 9011,
  kCancelOrder = 9012,
  kSchedule = 9013,
  kUnschedule = 9014,
  kProduce = 9015,
  kUpdateProductDb = 9016,
};

ServiceDef NoopService(ServiceId id, std::string name) {
  ServiceDef def;
  def.id = id;
  def.name = std::move(name);
  def.effect_free = true;
  def.body = [](KvStore*, const ServiceRequest&, int64_t* ret) {
    *ret = 0;
    return Status::OK();
  };
  return def;
}

// Aborts on failure regardless of NDEBUG: these constructions are static
// paper fixtures whose failure is a programming error.
void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "fixture construction failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
}

}  // namespace

CimWorld::CimWorld(uint64_t seed) {
  cad_ = std::make_unique<KvSubsystem>(SubsystemId(91), "CAD", seed);
  pdm_ = std::make_unique<KvSubsystem>(SubsystemId(92), "PDM", seed + 1);
  testdb_ = std::make_unique<KvSubsystem>(SubsystemId(93), "TestDB", seed + 2);
  docrepo_ =
      std::make_unique<KvSubsystem>(SubsystemId(94), "DocRepo", seed + 3);
  erp_ = std::make_unique<KvSubsystem>(SubsystemId(95), "ERP", seed + 4);
  sched_ =
      std::make_unique<KvSubsystem>(SubsystemId(96), "ProgRepo", seed + 5);
  floor_ = std::make_unique<KvSubsystem>(SubsystemId(97), "Floor", seed + 6);
  productdb_ =
      std::make_unique<KvSubsystem>(SubsystemId(98), "ProductDB", seed + 7);

  // --- CAD ---
  Check(cad_->RegisterService(
      MakeAddService(ServiceId(kDesign), "design", "drawing")));
  Check(cad_->RegisterService(
      MakeSubService(ServiceId(kDesignUndo), "design_undo", "drawing")));
  // --- PDM ---
  Check(pdm_->RegisterService(
      MakePutService(ServiceId(kApprove), "approve", "design_frozen")));
  Check(pdm_->RegisterService(
      MakeAddService(ServiceId(kPdmEntry), "pdm_entry", "bom")));
  Check(pdm_->RegisterService(
      MakeSubService(ServiceId(kPdmEntryUndo), "pdm_entry_undo", "bom")));
  // Reading the BOM fails when no (uncompensated) BOM exists — the
  // production process cannot even start without valid construction data.
  // Although a pure read, it is deliberately NOT declared effect-free:
  // §2.2 treats the BOM read as a real dependency (the production process
  // must be compensated when the BOM is invalidated), so it must not be
  // removable from completed schedules by reduction rule 3.
  {
    ServiceDef read_bom;
    read_bom.id = ServiceId(kReadBom);
    read_bom.name = "read_bom";
    read_bom.read_set = {"bom"};
    read_bom.body = [](KvStore* store, const ServiceRequest&, int64_t* ret) {
      if (store->Get("bom") == 0) {
        return Status::Aborted("no valid BOM in the PDM");
      }
      *ret = store->Get("bom");
      return Status::OK();
    };
    Check(pdm_->RegisterService(std::move(read_bom)));
  }
  Check(pdm_->RegisterService(NoopService(ServiceId(kNoop), "noop")));
  // --- TestDB ---
  Check(testdb_->RegisterService(
      MakeAddService(ServiceId(kTest), "test", "test_result")));
  Check(testdb_->RegisterService(
      MakeAddService(ServiceId(kPrototype), "prototype", "proto")));
  Check(testdb_->RegisterService(
      MakeSubService(ServiceId(kPrototypeUndo), "prototype_undo", "proto")));
  Check(testdb_->RegisterService(
      MakeAddService(ServiceId(kCalibrate), "calibrate", "calib")));
  Check(testdb_->RegisterService(
      MakeSubService(ServiceId(kCalibrateUndo), "calibrate_undo", "calib")));
  test_service_ = ServiceId(kTest);
  // --- DocRepo ---
  Check(docrepo_->RegisterService(
      MakeAddService(ServiceId(kTechdoc), "techdoc", "techdoc")));
  Check(docrepo_->RegisterService(
      MakeAddService(ServiceId(kReuseDoc), "reuse_doc", "reuse_doc")));
  // --- ERP ---
  Check(erp_->RegisterService(MakeAddService(
      ServiceId(kOrderMaterials), "order_materials", "materials")));
  Check(erp_->RegisterService(
      MakeSubService(ServiceId(kCancelOrder), "cancel_order", "materials")));
  // --- Scheduling ---
  Check(sched_->RegisterService(
      MakeAddService(ServiceId(kSchedule), "schedule", "slot")));
  Check(sched_->RegisterService(
      MakeSubService(ServiceId(kUnschedule), "unschedule", "slot")));
  // --- Production floor ---
  Check(floor_->RegisterService(
      MakeAddService(ServiceId(kProduce), "produce", "parts")));
  // --- Product DBMS ---
  Check(productdb_->RegisterService(MakeAddService(
      ServiceId(kUpdateProductDb), "update_db", "products")));

  // Construction process.
  ActivityId design = construction_.AddActivity(
      "design", ActivityKind::kCompensatable, ServiceId(kDesign),
      ServiceId(kDesignUndo));
  ActivityId approve = construction_.AddActivity(
      "approve", ActivityKind::kPivot, ServiceId(kApprove));
  ActivityId pdm_entry = construction_.AddActivity(
      "pdm_entry", ActivityKind::kCompensatable, ServiceId(kPdmEntry),
      ServiceId(kPdmEntryUndo));
  // The "final test" phase is long: prototype assembly and calibration
  // precede the actual test, which is why production can overlap so much
  // construction work (§2.2).
  ActivityId prototype = construction_.AddActivity(
      "prototype", ActivityKind::kCompensatable, ServiceId(kPrototype),
      ServiceId(kPrototypeUndo));
  ActivityId calibrate = construction_.AddActivity(
      "calibrate", ActivityKind::kCompensatable, ServiceId(kCalibrate),
      ServiceId(kCalibrateUndo));
  ActivityId test = construction_.AddActivity("test", ActivityKind::kPivot,
                                              ServiceId(kTest));
  ActivityId techdoc = construction_.AddActivity(
      "techdoc", ActivityKind::kRetriable, ServiceId(kTechdoc));
  ActivityId reuse_doc = construction_.AddActivity(
      "reuse_doc", ActivityKind::kRetriable, ServiceId(kReuseDoc));
  Check(construction_.AddEdge(design, approve));
  Check(construction_.AddEdge(approve, pdm_entry, /*preference=*/0));
  Check(construction_.AddEdge(approve, reuse_doc, /*preference=*/1));
  Check(construction_.AddEdge(pdm_entry, prototype));
  Check(construction_.AddEdge(prototype, calibrate));
  Check(construction_.AddEdge(calibrate, test));
  Check(construction_.AddEdge(test, techdoc));
  Check(construction_.Validate());
  Check(ValidateWellFormedFlex(construction_));

  // Production process.
  ActivityId read_bom = production_.AddActivity(
      "read_bom", ActivityKind::kCompensatable, ServiceId(kReadBom),
      ServiceId(kNoop));
  ActivityId order = production_.AddActivity(
      "order_materials", ActivityKind::kCompensatable,
      ServiceId(kOrderMaterials), ServiceId(kCancelOrder));
  ActivityId schedule = production_.AddActivity(
      "schedule", ActivityKind::kCompensatable, ServiceId(kSchedule),
      ServiceId(kUnschedule));
  ActivityId produce = production_.AddActivity(
      "produce", ActivityKind::kPivot, ServiceId(kProduce));
  ActivityId update = production_.AddActivity(
      "update_db", ActivityKind::kRetriable, ServiceId(kUpdateProductDb));
  Check(production_.AddEdge(read_bom, order));
  Check(production_.AddEdge(order, schedule));
  Check(production_.AddEdge(schedule, produce));
  Check(production_.AddEdge(produce, update));
  Check(production_.Validate());
  Check(ValidateWellFormedFlex(production_));
}

Status CimWorld::RegisterAll(TransactionalProcessScheduler* scheduler) {
  for (KvSubsystem* subsystem : subsystems()) {
    TPM_RETURN_IF_ERROR(scheduler->RegisterSubsystem(subsystem));
  }
  return Status::OK();
}

void CimWorld::ScheduleTestFailure(int count) {
  testdb_->ScheduleFailures(test_service_, count);
}

int64_t CimWorld::Value(const std::string& key) const {
  int64_t total = 0;
  for (const KvSubsystem* subsystem :
       {cad_.get(), pdm_.get(), testdb_.get(), docrepo_.get(), erp_.get(),
        sched_.get(), floor_.get(), productdb_.get()}) {
    total += subsystem->store().Get(key);
  }
  return total;
}

int64_t CimWorld::bom_entries() const { return pdm_->store().Get("bom"); }
int64_t CimWorld::parts_produced() const {
  return floor_->store().Get("parts");
}
int64_t CimWorld::techdocs() const { return docrepo_->store().Get("techdoc"); }
int64_t CimWorld::reuse_docs() const {
  return docrepo_->store().Get("reuse_doc");
}

std::vector<KvSubsystem*> CimWorld::subsystems() {
  return {cad_.get(),  pdm_.get(),   testdb_.get(), docrepo_.get(),
          erp_.get(),  sched_.get(), floor_.get(),  productdb_.get()};
}

}  // namespace tpm
