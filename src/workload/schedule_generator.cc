#include "workload/schedule_generator.h"

#include "common/str_util.h"
#include "core/flex_structure.h"

namespace tpm {

Result<GeneratedSchedule> GenerateRandomSchedule(
    const RandomScheduleConfig& config, Rng* rng) {
  GeneratedSchedule result;

  // Service ids: activity j of process p uses service 1000*p + j; its
  // compensation uses 1000*p + 500 + j.
  for (int p = 1; p <= config.num_processes; ++p) {
    auto def = std::make_unique<ProcessDef>(StrCat("R", p));
    const int n_comp = static_cast<int>(
        rng->NextInRange(config.min_compensatable, config.max_compensatable));
    const int n_ret = static_cast<int>(
        rng->NextInRange(config.min_retriable, config.max_retriable));
    ActivityId prev;
    int index = 0;
    for (int i = 0; i < n_comp; ++i) {
      ++index;
      ActivityId id = def->AddActivity(
          StrCat("c", index), ActivityKind::kCompensatable,
          ServiceId(1000 * p + index), ServiceId(1000 * p + 500 + index));
      if (prev.valid()) TPM_RETURN_IF_ERROR(def->AddEdge(prev, id));
      prev = id;
    }
    ++index;
    ActivityId pivot = def->AddActivity(StrCat("p", index),
                                        ActivityKind::kPivot,
                                        ServiceId(1000 * p + index));
    if (prev.valid()) TPM_RETURN_IF_ERROR(def->AddEdge(prev, pivot));
    prev = pivot;
    for (int i = 0; i < n_ret; ++i) {
      ++index;
      ActivityId id = def->AddActivity(StrCat("r", index),
                                       ActivityKind::kRetriable,
                                       ServiceId(1000 * p + index));
      TPM_RETURN_IF_ERROR(def->AddEdge(prev, id));
      prev = id;
    }
    TPM_RETURN_IF_ERROR(def->Validate());
    TPM_RETURN_IF_ERROR(ValidateWellFormedFlex(*def));
    result.defs.push_back(std::move(def));
  }

  // Random conflicts across processes.
  for (int p = 1; p <= config.num_processes; ++p) {
    for (int q = p + 1; q <= config.num_processes; ++q) {
      const auto& dp = *result.defs[p - 1];
      const auto& dq = *result.defs[q - 1];
      for (const ActivityDecl& a : dp.activities()) {
        for (const ActivityDecl& b : dq.activities()) {
          if (rng->NextBool(config.conflict_density)) {
            result.spec.AddConflict(a.service, b.service);
          }
        }
      }
    }
  }

  // Random interleaving of the primary paths.
  for (int p = 1; p <= config.num_processes; ++p) {
    TPM_RETURN_IF_ERROR(
        result.schedule.AddProcess(ProcessId(p), result.defs[p - 1].get()));
  }
  std::vector<size_t> next_activity(config.num_processes, 0);
  std::vector<bool> done(config.num_processes, false);
  int remaining = config.num_processes;
  while (remaining > 0) {
    if (rng->NextBool(config.stop_probability)) break;
    // Pick a random process that still has activities to run.
    int candidate = static_cast<int>(rng->NextIndex(config.num_processes));
    while (done[candidate]) {
      candidate = (candidate + 1) % config.num_processes;
    }
    const ProcessDef& def = *result.defs[candidate];
    ActivityId act(static_cast<int64_t>(next_activity[candidate]) + 1);
    TPM_RETURN_IF_ERROR(result.schedule.Append(ScheduleEvent::Activity(
        ActivityInstance{ProcessId(candidate + 1), act, false})));
    if (++next_activity[candidate] == def.num_activities()) {
      done[candidate] = true;
      --remaining;
      if (rng->NextBool(config.commit_probability)) {
        TPM_RETURN_IF_ERROR(result.schedule.Append(
            ScheduleEvent::Commit(ProcessId(candidate + 1))));
      }
    }
  }
  return result;
}

}  // namespace tpm
