#include "workload/dsl_binding.h"

#include <set>

#include "common/str_util.h"

namespace tpm {

Result<std::unique_ptr<BoundWorld>> BoundWorld::Bind(
    const ParsedWorld* world) {
  if (world == nullptr) {
    return Status::InvalidArgument("null world");
  }
  auto bound = std::unique_ptr<BoundWorld>(new BoundWorld(world));
  bound->subsystem_ =
      std::make_unique<KvSubsystem>(SubsystemId(1), "dsl-world");

  // Collect service roles: ids used as compensation services become
  // subtracting; every id gets its own key so derived conflicts stay
  // disjoint and the declared relation is authoritative.
  std::set<ServiceId> forward;
  std::set<ServiceId> inverse;
  for (const auto& def : world->defs) {
    for (const ActivityDecl& decl : def->activities()) {
      forward.insert(decl.service);
      if (decl.compensation_service.valid()) {
        inverse.insert(decl.compensation_service);
      }
      bound->service_of_[def->name()][decl.name] = decl.service;
    }
  }
  for (ServiceId id : forward) {
    // A compensation service may double as a forward service in another
    // activity; forward registration wins and the inverse set skips it.
    TPM_RETURN_IF_ERROR(bound->subsystem_->RegisterService(MakeAddService(
        id, StrCat("svc", id), StrCat("svc",
                                      // the FORWARD partner's key:
                                      id))));
  }
  for (ServiceId id : inverse) {
    if (forward.count(id) > 0) continue;
    // The inverse subtracts on the key of... it must undo the activity it
    // compensates. Find the activity whose compensation_service == id and
    // subtract on that activity's service key.
    ServiceId target;
    for (const auto& def : world->defs) {
      for (const ActivityDecl& decl : def->activities()) {
        if (decl.compensation_service == id) target = decl.service;
      }
    }
    TPM_RETURN_IF_ERROR(bound->subsystem_->RegisterService(MakeSubService(
        id, StrCat("svc", id, "^-1"), StrCat("svc", target))));
  }
  return bound;
}

Status BoundWorld::Attach(TransactionalProcessScheduler* scheduler) {
  TPM_RETURN_IF_ERROR(scheduler->RegisterSubsystem(subsystem_.get()));
  for (const auto& [a, b] : world_->spec.ConflictPairs()) {
    scheduler->AddConflict(a, b);
  }
  return Status::OK();
}

Result<std::map<std::string, ProcessId>> BoundWorld::SubmitAll(
    TransactionalProcessScheduler* scheduler, int64_t param) {
  std::map<std::string, ProcessId> pids;
  for (const auto& def : world_->defs) {
    TPM_ASSIGN_OR_RETURN(ProcessId pid, scheduler->Submit(def.get(), param));
    pids[def->name()] = pid;
  }
  return pids;
}

Status BoundWorld::InjectFailure(const std::string& process,
                                 const std::string& activity, int count) {
  auto proc = service_of_.find(process);
  if (proc == service_of_.end()) {
    return Status::NotFound(StrCat("unknown process ", process));
  }
  auto act = proc->second.find(activity);
  if (act == proc->second.end()) {
    return Status::NotFound(StrCat("unknown activity ", activity));
  }
  subsystem_->ScheduleFailures(act->second, count);
  return Status::OK();
}

int64_t BoundWorld::ValueOf(ServiceId service) const {
  return subsystem_->store().Get(StrCat("svc", service));
}

}  // namespace tpm
