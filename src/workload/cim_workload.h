#ifndef TPM_WORKLOAD_CIM_WORKLOAD_H_
#define TPM_WORKLOAD_CIM_WORKLOAD_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/process.h"
#include "core/scheduler.h"
#include "subsystem/kv_subsystem.h"

namespace tpm {

/// The Computer Integrated Manufacturing scenario of §2 / Figure 1.
///
/// Subsystems: CAD, PDM (product data management), test database, technical
/// documentation repository, business application (ERP), program
/// repository/scheduling, production floor, product DBMS.
///
/// Construction process:
///   design^c (CAD)  <<  approve^p (PDM design freeze)
///     << [primary]  pdm_entry^c (PDM, writes the BOM)  <<  test^p (TestDB)
///                   <<  techdoc^r (DocRepo)
///     << [alternative] reuse_doc^r (DocRepo) — taken when the test fails:
///        the PDM entry is compensated and the CAD drawing is documented
///        for later reuse instead (§2.1).
///
/// Production process:
///   read_bom^c (PDM, reads the BOM — the Figure 1 conflict)
///     << order_materials^c (ERP) << schedule^c (ProgRepo)
///     << produce^p (production floor — no inverse exists, §2.2)
///     << update_db^r (Product DBMS).
class CimWorld {
 public:
  explicit CimWorld(uint64_t seed = 11);

  CimWorld(const CimWorld&) = delete;
  CimWorld& operator=(const CimWorld&) = delete;

  const ProcessDef* construction() const { return &construction_; }
  const ProcessDef* production() const { return &production_; }

  Status RegisterAll(TransactionalProcessScheduler* scheduler);

  /// Makes the next `count` test activities fail (the §2.2 scenario).
  void ScheduleTestFailure(int count = 1);

  /// Value of `key` summed across all subsystems (keys are unique to one
  /// subsystem in this world).
  int64_t Value(const std::string& key) const;

  /// State probes for consistency checks.
  int64_t bom_entries() const;      // live BOM entries in the PDM
  int64_t parts_produced() const;   // parts built on the production floor
  int64_t techdocs() const;         // technical documentation entries
  int64_t reuse_docs() const;       // reuse documentation entries

  /// True iff the post-run state is consistent: parts were only produced
  /// if a valid (uncompensated) BOM exists.
  bool Consistent() const {
    return parts_produced() == 0 || bom_entries() > 0;
  }

  std::vector<KvSubsystem*> subsystems();

 private:
  std::unique_ptr<KvSubsystem> cad_, pdm_, testdb_, docrepo_, erp_, sched_,
      floor_, productdb_;
  ProcessDef construction_{"cim-construction"};
  ProcessDef production_{"cim-production"};
  ServiceId test_service_;
};

}  // namespace tpm

#endif  // TPM_WORKLOAD_CIM_WORKLOAD_H_
