#include "workload/fault_workload.h"

#include "common/str_util.h"
#include "core/flex_structure.h"
#include "core/scheduler.h"

namespace tpm {

FaultDomainWorld::FaultDomainWorld(FaultDomainOptions options)
    : options_(options) {
  const int n = options_.num_subsystems;
  keys_.resize(n);
  for (int i = 0; i < n; ++i) {
    raw_.push_back(std::make_unique<KvSubsystem>(
        SubsystemId(i + 1), StrCat("sub", i), options_.seed + i));
    raw_.back()->SetClock(&clock_);
    faulty_.push_back(std::make_unique<testing::FaultySubsystem>(
        raw_.back().get(), &clock_, options_.profile,
        options_.seed * 1000 + i));
    proxy_.push_back(std::make_unique<SubsystemProxy>(
        faulty_.back().get(), &clock_, options_.proxy));
  }
}

FaultDomainWorld::~FaultDomainWorld() = default;

Status FaultDomainWorld::RegisterAll(TransactionalProcessScheduler* scheduler) {
  for (auto& proxy : proxy_) {
    TPM_RETURN_IF_ERROR(scheduler->RegisterSubsystem(proxy.get()));
  }
  return Status::OK();
}

FaultDomainWorld::KeyServices& FaultDomainWorld::EnsureKey(
    int i, const std::string& key) {
  auto it = keys_[i].find(key);
  if (it != keys_[i].end()) return it->second;
  KeyServices ks{ServiceId(next_service_id_), ServiceId(next_service_id_ + 1)};
  next_service_id_ += 2;
  Status s = raw_[i]->RegisterService(
      MakeAddService(ks.add, StrCat("add/s", i, "/", key), key));
  if (s.ok()) {
    s = raw_[i]->RegisterService(
        MakeSubService(ks.sub, StrCat("sub/s", i, "/", key), key));
  }
  return keys_[i].emplace(key, ks).first->second;
}

ServiceId FaultDomainWorld::AddServiceOn(int i, const std::string& key) {
  return EnsureKey(i, key).add;
}

ServiceId FaultDomainWorld::SubServiceOn(int i, const std::string& key) {
  return EnsureKey(i, key).sub;
}

const ProcessDef* FaultDomainWorld::MakeAlternativeProcess(
    const std::string& name, int home, int primary, int alt, int variant) {
  auto def = std::make_unique<ProcessDef>(name);
  const std::string v = StrCat("v", variant);
  ActivityId c1 = def->AddActivity(
      "c1", ActivityKind::kCompensatable, AddServiceOn(home, "h" + v),
      SubServiceOn(home, "h" + v));
  ActivityId p = def->AddActivity("p", ActivityKind::kPivot,
                                  AddServiceOn(home, "q" + v));
  ActivityId ca = def->AddActivity(
      "ca", ActivityKind::kCompensatable, AddServiceOn(primary, "m" + v),
      SubServiceOn(primary, "m" + v));
  ActivityId ra = def->AddActivity("ra", ActivityKind::kRetriable,
                                   AddServiceOn(primary, "n" + v));
  ActivityId rb = def->AddActivity("rb", ActivityKind::kRetriable,
                                   AddServiceOn(alt, "a" + v));
  if (!def->AddEdge(c1, p).ok() || !def->AddEdge(p, ca, 0).ok() ||
      !def->AddEdge(ca, ra).ok() || !def->AddEdge(p, rb, 1).ok()) {
    return nullptr;
  }
  if (!def->Validate().ok()) return nullptr;
  if (!ValidateWellFormedFlex(*def).ok()) return nullptr;
  defs_.push_back(std::move(def));
  return defs_.back().get();
}

const ProcessDef* FaultDomainWorld::MakeChainProcess(const std::string& name,
                                                     int subsystem, int length,
                                                     int variant) {
  auto def = std::make_unique<ProcessDef>(name);
  const std::string v = StrCat("v", variant);
  ActivityId prev;
  for (int j = 0; j < length; ++j) {
    const std::string key = StrCat("x", v, "_", j % 2);
    ActivityId id;
    if (j + 1 < length) {
      id = def->AddActivity(StrCat("c", j), ActivityKind::kCompensatable,
                            AddServiceOn(subsystem, key),
                            SubServiceOn(subsystem, key));
    } else {
      id = def->AddActivity(StrCat("r", j), ActivityKind::kRetriable,
                            AddServiceOn(subsystem, key));
    }
    if (prev.valid() && !def->AddEdge(prev, id).ok()) return nullptr;
    prev = id;
  }
  if (!def->Validate().ok()) return nullptr;
  if (!ValidateWellFormedFlex(*def).ok()) return nullptr;
  defs_.push_back(std::move(def));
  return defs_.back().get();
}

std::map<std::string, const ProcessDef*> FaultDomainWorld::DefsByName() const {
  std::map<std::string, const ProcessDef*> result;
  for (const auto& def : defs_) result[def->name()] = def.get();
  return result;
}

bool FaultDomainWorld::AnyNegativeValue() const {
  for (const auto& subsystem : raw_) {
    for (const auto& [key, value] : subsystem->store().Snapshot()) {
      if (value < 0) return true;
    }
  }
  return false;
}

}  // namespace tpm
