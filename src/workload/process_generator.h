#ifndef TPM_WORKLOAD_PROCESS_GENERATOR_H_
#define TPM_WORKLOAD_PROCESS_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/process.h"
#include "core/scheduler.h"
#include "subsystem/kv_subsystem.h"

namespace tpm {

/// A pool of simulated transactional subsystems with generated services,
/// used by the synthetic workloads. For every data item (key) the universe
/// offers:
///   * an `add` service (compensatable: its inverse subtracts the same
///     amount, so <add add^-1> is effect-free),
///   * the matching `sub` compensation service,
///   * a `check` read service (effect-free).
/// Two services conflict iff they touch the same key (derived from
/// read/write sets).
class SyntheticUniverse {
 public:
  SyntheticUniverse(int num_subsystems, int keys_per_subsystem,
                    uint64_t seed = 7);

  SyntheticUniverse(const SyntheticUniverse&) = delete;
  SyntheticUniverse& operator=(const SyntheticUniverse&) = delete;

  /// One data item with its service triple.
  struct Item {
    ServiceId add;
    ServiceId sub;    // compensation of add
    ServiceId check;  // effect-free read
    SubsystemId subsystem;
    std::string key;
  };

  const std::vector<Item>& items() const { return items_; }
  size_t num_items() const { return items_.size(); }

  std::vector<KvSubsystem*> subsystems();

  /// Registers every subsystem with the scheduler.
  Status RegisterAll(TransactionalProcessScheduler* scheduler);

  /// Injects failures: service `item.add` of item index `item` aborts
  /// `count` times.
  void ScheduleFailures(size_t item, int count);

  /// Sum of all key values across subsystems (consistency checks: every
  /// add is either matched by its process's commitment or compensated, so
  /// the expected total is the sum over committed processes).
  int64_t TotalValue() const;

 private:
  std::vector<std::unique_ptr<KvSubsystem>> subsystems_;
  std::vector<Item> items_;
};

/// Shape parameters for randomly generated processes with well-formed flex
/// structure.
struct ProcessShape {
  int min_compensatable = 1;
  int max_compensatable = 3;
  /// Probability that the pivot is followed by a nested stage with an
  /// all-retriable alternative (recursion of the well-formed structure).
  double nested_probability = 0.3;
  int max_nesting_depth = 2;
  int min_retriable = 1;
  int max_retriable = 2;
  /// Number of distinct items each process draws its activities from; the
  /// smaller the pool relative to the universe, the higher the conflict
  /// rate between processes.
  int items_per_process = 4;
};

/// Generates random processes with guaranteed termination over a
/// SyntheticUniverse. Generated definitions are owned by the generator and
/// must outlive schedulers using them.
class ProcessGenerator {
 public:
  ProcessGenerator(const SyntheticUniverse* universe, ProcessShape shape,
                   uint64_t seed);

  /// Generates a new process definition (validated, well-formed flex).
  Result<const ProcessDef*> Generate(const std::string& name);

  /// Restricts item draws to [first, first+count) of the universe's items —
  /// used to control the conflict footprint ("hot" vs "cold" items).
  void RestrictItems(size_t first, size_t count);

 private:
  const SyntheticUniverse* universe_;
  ProcessShape shape_;
  Rng rng_;
  size_t item_first_ = 0;
  size_t item_count_ = 0;  // 0 = all
  std::vector<std::unique_ptr<ProcessDef>> owned_;
};

}  // namespace tpm

#endif  // TPM_WORKLOAD_PROCESS_GENERATOR_H_
