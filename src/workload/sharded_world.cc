#include "workload/sharded_world.h"

#include "common/str_util.h"
#include "core/flex_structure.h"
#include "core/scheduler.h"
#include "runtime/sharded_runtime.h"

namespace tpm {

ShardedWorld::ShardedWorld(ShardedWorldOptions options) : options_(options) {
  tenants_.resize(options_.num_tenants);
  for (int t = 0; t < options_.num_tenants; ++t) {
    const std::string prefix = StrCat("t", t, "/");
    tenants_[t].kv = std::make_unique<KvSubsystem>(
        SubsystemId(3 * t + 1), prefix + "kv", options_.seed * 97 + t);
    tenants_[t].escrow = std::make_unique<EscrowSubsystem>(
        SubsystemId(3 * t + 2), prefix + "escrow");
    tenants_[t].queue = std::make_unique<QueueSubsystem>(
        SubsystemId(3 * t + 3), prefix + "queue");
  }
}

ShardedWorld::~ShardedWorld() = default;

Status ShardedWorld::RegisterAll(ShardedRuntime* runtime) {
  // Services are created lazily by the Make*Process builders, so a
  // workload touching only some ADTs leaves the rest empty — skip those,
  // the runtime rejects subsystems with no services.
  for (auto& tenant : tenants_) {
    for (Subsystem* s : {static_cast<Subsystem*>(tenant.kv.get()),
                         static_cast<Subsystem*>(tenant.escrow.get()),
                         static_cast<Subsystem*>(tenant.queue.get())}) {
      if (s->services().AllIds().empty()) continue;
      TPM_RETURN_IF_ERROR(runtime->AddSubsystem(s));
    }
  }
  for (int t = 0; t < options_.num_tenants; ++t) {
    std::vector<ServiceId> group = TenantServices(t);
    if (group.size() >= 2) {
      TPM_RETURN_IF_ERROR(runtime->AddColocation(std::move(group)));
    }
  }
  return Status::OK();
}

Status ShardedWorld::RegisterAllAsReplica(ShardedRuntime* runtime,
                                          int replica) {
  if (replica == 0) return RegisterAll(runtime);
  for (auto& tenant : tenants_) {
    for (Subsystem* s : {static_cast<Subsystem*>(tenant.kv.get()),
                         static_cast<Subsystem*>(tenant.escrow.get()),
                         static_cast<Subsystem*>(tenant.queue.get())}) {
      if (s->services().AllIds().empty()) continue;
      TPM_RETURN_IF_ERROR(runtime->AddReplicaSubsystem(replica, s));
    }
  }
  return Status::OK();
}

Status ShardedWorld::RegisterAllSolo(TransactionalProcessScheduler* scheduler) {
  for (auto& tenant : tenants_) {
    TPM_RETURN_IF_ERROR(scheduler->RegisterSubsystem(tenant.kv.get()));
    TPM_RETURN_IF_ERROR(scheduler->RegisterSubsystem(tenant.escrow.get()));
    TPM_RETURN_IF_ERROR(scheduler->RegisterSubsystem(tenant.queue.get()));
  }
  return Status::OK();
}

std::vector<ServiceId> ShardedWorld::TenantServices(int tenant) const {
  std::vector<ServiceId> ids;
  const Tenant& t = tenants_[tenant];
  for (ServiceId id : t.kv->services().AllIds()) ids.push_back(id);
  for (ServiceId id : t.escrow->services().AllIds()) ids.push_back(id);
  for (ServiceId id : t.queue->services().AllIds()) ids.push_back(id);
  return ids;
}

ShardedWorld::KvServices& ShardedWorld::EnsureKvKey(int tenant,
                                                    const std::string& key) {
  Tenant& t = tenants_[tenant];
  auto it = t.kv_keys.find(key);
  if (it != t.kv_keys.end()) return it->second;
  KvServices ks{ServiceId(next_service_id_), ServiceId(next_service_id_ + 1)};
  next_service_id_ += 2;
  const std::string scoped = StrCat("t", tenant, "/", key);
  Status s = t.kv->RegisterService(
      MakeAddService(ks.add, StrCat("add/", scoped), scoped));
  if (s.ok()) {
    s = t.kv->RegisterService(
        MakeSubService(ks.sub, StrCat("sub/", scoped), scoped));
  }
  return t.kv_keys.emplace(key, ks).first->second;
}

ShardedWorld::EscrowServices& ShardedWorld::EnsureCounter(
    int tenant, const std::string& counter) {
  Tenant& t = tenants_[tenant];
  auto it = t.counters.find(counter);
  if (it != t.counters.end()) return it->second;
  EscrowServices es{ServiceId(next_service_id_),
                    ServiceId(next_service_id_ + 1),
                    ServiceId(next_service_id_ + 2)};
  next_service_id_ += 3;
  const std::string scoped = StrCat("t", tenant, "/", counter);
  Status s = t.escrow->CreateCounter(scoped, options_.escrow_initial);
  if (s.ok()) s = t.escrow->RegisterIncService(es.inc, scoped);
  if (s.ok()) s = t.escrow->RegisterDecService(es.dec, scoped);
  if (s.ok()) s = t.escrow->RegisterWithdrawService(es.withdraw, scoped);
  return t.counters.emplace(counter, es).first->second;
}

ShardedWorld::QueueServices& ShardedWorld::EnsureQueue(
    int tenant, const std::string& queue) {
  Tenant& t = tenants_[tenant];
  auto it = t.queues.find(queue);
  if (it != t.queues.end()) return it->second;
  QueueServices qs{
      ServiceId(next_service_id_), ServiceId(next_service_id_ + 1),
      ServiceId(next_service_id_ + 2), ServiceId(next_service_id_ + 3)};
  next_service_id_ += 4;
  const std::string scoped = StrCat("t", tenant, "/", queue);
  Status s = t.queue->CreateQueue(scoped, options_.queue_initial_tokens);
  if (s.ok()) s = t.queue->RegisterEnqueueService(qs.enq, scoped);
  if (s.ok()) s = t.queue->RegisterDequeueService(qs.deq, scoped);
  if (s.ok()) s = t.queue->RegisterRemoveService(qs.rm, scoped);
  if (s.ok()) s = t.queue->RegisterRequeueService(qs.req, scoped);
  return t.queues.emplace(queue, qs).first->second;
}

ServiceId ShardedWorld::KvAdd(int tenant, const std::string& key) {
  return EnsureKvKey(tenant, key).add;
}
ServiceId ShardedWorld::KvSub(int tenant, const std::string& key) {
  return EnsureKvKey(tenant, key).sub;
}
ServiceId ShardedWorld::EscrowInc(int tenant, const std::string& counter) {
  return EnsureCounter(tenant, counter).inc;
}
ServiceId ShardedWorld::EscrowDec(int tenant, const std::string& counter) {
  return EnsureCounter(tenant, counter).dec;
}
ServiceId ShardedWorld::EscrowWithdraw(int tenant,
                                       const std::string& counter) {
  return EnsureCounter(tenant, counter).withdraw;
}
ServiceId ShardedWorld::Enqueue(int tenant, const std::string& queue) {
  return EnsureQueue(tenant, queue).enq;
}
ServiceId ShardedWorld::Dequeue(int tenant, const std::string& queue) {
  return EnsureQueue(tenant, queue).deq;
}
ServiceId ShardedWorld::Remove(int tenant, const std::string& queue) {
  return EnsureQueue(tenant, queue).rm;
}
ServiceId ShardedWorld::Requeue(int tenant, const std::string& queue) {
  return EnsureQueue(tenant, queue).req;
}

const ProcessDef* ShardedWorld::Finish(std::unique_ptr<ProcessDef> def) {
  if (!def->Validate().ok()) return nullptr;
  if (!ValidateWellFormedFlex(*def).ok()) return nullptr;
  defs_.push_back(std::move(def));
  return defs_.back().get();
}

const ProcessDef* ShardedWorld::MakeOrderProcess(int tenant,
                                                 const std::string& name,
                                                 int variant) {
  auto def = std::make_unique<ProcessDef>(name);
  const std::string v = StrCat("v", variant);
  ActivityId c1 =
      def->AddActivity("enq_order", ActivityKind::kCompensatable,
                       Enqueue(tenant, "orders"), Remove(tenant, "orders"));
  ActivityId c2 = def->AddActivity("deposit", ActivityKind::kCompensatable,
                                   EscrowInc(tenant, "stock"),
                                   EscrowDec(tenant, "stock"));
  ActivityId p = def->AddActivity("audit", ActivityKind::kPivot,
                                  KvAdd(tenant, "audit_" + v));
  ActivityId ra = def->AddActivity("book_revenue", ActivityKind::kRetriable,
                                   EscrowInc(tenant, "revenue"));
  ActivityId rb = def->AddActivity("defer_booking", ActivityKind::kRetriable,
                                   KvAdd(tenant, "deferred_" + v));
  if (!def->AddEdge(c1, c2).ok() || !def->AddEdge(c2, p).ok() ||
      !def->AddEdge(p, ra, 0).ok() || !def->AddEdge(p, rb, 1).ok()) {
    return nullptr;
  }
  return Finish(std::move(def));
}

const ProcessDef* ShardedWorld::MakeConsumeProcess(int tenant,
                                                   const std::string& name,
                                                   int variant) {
  auto def = std::make_unique<ProcessDef>(name);
  const std::string v = StrCat("v", variant);
  ActivityId c1 =
      def->AddActivity("deq_order", ActivityKind::kCompensatable,
                       Dequeue(tenant, "orders"), Requeue(tenant, "orders"));
  ActivityId c2 = def->AddActivity("take_stock", ActivityKind::kCompensatable,
                                   EscrowWithdraw(tenant, "stock"),
                                   EscrowInc(tenant, "stock"));
  ActivityId p = def->AddActivity("fulfill", ActivityKind::kPivot,
                                  KvAdd(tenant, "fulfilled_" + v));
  ActivityId ra = def->AddActivity("mark_shipped", ActivityKind::kRetriable,
                                   EscrowInc(tenant, "shipped"));
  ActivityId rb = def->AddActivity("backlog", ActivityKind::kRetriable,
                                   KvAdd(tenant, "backlog_" + v));
  if (!def->AddEdge(c1, c2).ok() || !def->AddEdge(c2, p).ok() ||
      !def->AddEdge(p, ra, 0).ok() || !def->AddEdge(p, rb, 1).ok()) {
    return nullptr;
  }
  return Finish(std::move(def));
}

const ProcessDef* ShardedWorld::MakeRefillProcess(int tenant,
                                                  const std::string& name,
                                                  int variant) {
  auto def = std::make_unique<ProcessDef>(name);
  const std::string v = StrCat("v", variant);
  ActivityId c1 = def->AddActivity("restock", ActivityKind::kCompensatable,
                                   EscrowInc(tenant, "stock"),
                                   EscrowDec(tenant, "stock"));
  ActivityId p = def->AddActivity("audit", ActivityKind::kPivot,
                                  KvAdd(tenant, "refill_audit_" + v));
  ActivityId r = def->AddActivity("announce", ActivityKind::kRetriable,
                                  Enqueue(tenant, "orders"));
  if (!def->AddEdge(c1, p).ok() || !def->AddEdge(p, r).ok()) return nullptr;
  return Finish(std::move(def));
}

const ProcessDef* ShardedWorld::MakeSpanningProcess(const std::string& name,
                                                    int tenant_a,
                                                    int tenant_b) {
  auto def = std::make_unique<ProcessDef>(name);
  ActivityId c1 = def->AddActivity("enq_order", ActivityKind::kCompensatable,
                                   Enqueue(tenant_a, "orders"),
                                   Remove(tenant_a, "orders"));
  ActivityId p = def->AddActivity("cross_deposit", ActivityKind::kPivot,
                                  EscrowInc(tenant_b, "stock"));
  if (!def->AddEdge(c1, p).ok()) return nullptr;
  return Finish(std::move(def));
}

const ProcessDef* ShardedWorld::MakeSpanningChainProcess(
    const std::string& name, int tenant_a, int tenant_b, int tenant_c) {
  auto def = std::make_unique<ProcessDef>(name);
  ActivityId c1 = def->AddActivity("enq_order", ActivityKind::kCompensatable,
                                   Enqueue(tenant_a, "orders"),
                                   Remove(tenant_a, "orders"));
  ActivityId c2 = def->AddActivity("deposit", ActivityKind::kCompensatable,
                                   EscrowInc(tenant_b, "stock"),
                                   EscrowDec(tenant_b, "stock"));
  ActivityId p = def->AddActivity("audit", ActivityKind::kPivot,
                                  KvAdd(tenant_b, "span_audit"));
  ActivityId r = def->AddActivity("announce", ActivityKind::kRetriable,
                                  Enqueue(tenant_c, "orders"));
  if (!def->AddEdge(c1, c2).ok() || !def->AddEdge(c2, p).ok() ||
      !def->AddEdge(p, r).ok()) {
    return nullptr;
  }
  return Finish(std::move(def));
}

const ProcessDef* ShardedWorld::MakeSpanningAltProcess(const std::string& name,
                                                       int tenant_a,
                                                       int tenant_b,
                                                       int tenant_c) {
  auto def = std::make_unique<ProcessDef>(name);
  ActivityId c1 = def->AddActivity("enq_order", ActivityKind::kCompensatable,
                                   Enqueue(tenant_a, "orders"),
                                   Remove(tenant_a, "orders"));
  ActivityId p = def->AddActivity("audit", ActivityKind::kPivot,
                                  KvAdd(tenant_a, "alt_audit"));
  ActivityId ra = def->AddActivity("book_revenue", ActivityKind::kRetriable,
                                   EscrowInc(tenant_b, "revenue"));
  ActivityId rb = def->AddActivity("backlog", ActivityKind::kRetriable,
                                   KvAdd(tenant_c, "alt_backlog"));
  if (!def->AddEdge(c1, p).ok() || !def->AddEdge(p, ra, 0).ok() ||
      !def->AddEdge(p, rb, 1).ok()) {
    return nullptr;
  }
  return Finish(std::move(def));
}

std::map<std::string, const ProcessDef*> ShardedWorld::DefsByName() const {
  std::map<std::string, const ProcessDef*> result;
  for (const auto& def : defs_) result[def->name()] = def.get();
  return result;
}

Status ShardedWorld::CheckAdtInvariants() const {
  for (int t = 0; t < options_.num_tenants; ++t) {
    const Tenant& tenant = tenants_[t];
    TPM_RETURN_IF_ERROR(tenant.escrow->CheckInvariants());
    TPM_RETURN_IF_ERROR(tenant.queue->CheckInvariants());
    for (const auto& [key, value] : tenant.kv->store().Snapshot()) {
      if (value < 0) {
        return Status::Internal(
            StrCat("tenant ", t, ": negative KV value at '", key, "'"));
      }
    }
  }
  return Status::OK();
}

}  // namespace tpm
