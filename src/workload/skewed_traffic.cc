#include "workload/skewed_traffic.h"

#include <algorithm>

namespace tpm {

SkewedTraffic::SkewedTraffic(SkewedTrafficOptions options)
    : options_(options), rng_(options.seed) {
  options_.num_tenants = std::max(1, options_.num_tenants);
  options_.hot_tenants =
      std::min(std::max(1, options_.hot_tenants), options_.num_tenants);
  Rotate();
}

void SkewedTraffic::Rotate() {
  hot_.clear();
  cold_.clear();
  // Phase p's hot set: hot_tenants consecutive tenants starting at
  // p * hot_tenants (mod num_tenants) — round-robin over tenant groups.
  const int start =
      static_cast<int>((phase_ * options_.hot_tenants) %
                       static_cast<int64_t>(options_.num_tenants));
  for (int i = 0; i < options_.hot_tenants; ++i) {
    hot_.push_back((start + i) % options_.num_tenants);
  }
  for (int tenant = 0; tenant < options_.num_tenants; ++tenant) {
    if (std::find(hot_.begin(), hot_.end(), tenant) == hot_.end()) {
      cold_.push_back(tenant);
    }
  }
}

int SkewedTraffic::NextTenant() {
  if (options_.phase_length > 0 && draws_ > 0 &&
      draws_ % options_.phase_length == 0) {
    ++phase_;
    Rotate();
  }
  ++draws_;
  if (cold_.empty() || rng_.NextBool(options_.hot_fraction)) {
    return hot_[rng_.NextIndex(hot_.size())];
  }
  return cold_[rng_.NextIndex(cold_.size())];
}

}  // namespace tpm
