#include "workload/semantic_world.h"

#include "common/str_util.h"
#include "core/flex_structure.h"
#include "core/scheduler.h"

namespace tpm {

SemanticWorld::SemanticWorld(SemanticWorldOptions options)
    : options_(options) {
  kv_ = std::make_unique<KvSubsystem>(SubsystemId(1), "kv", options_.seed);
  kv_->SetClock(&clock_);
  escrow_ = std::make_unique<EscrowSubsystem>(SubsystemId(2), "escrow");
  queue_ = std::make_unique<QueueSubsystem>(SubsystemId(3), "queue");
  Subsystem* backends[kNumBackends] = {kv_.get(), escrow_.get(), queue_.get()};
  for (int i = 0; i < kNumBackends; ++i) {
    faulty_.push_back(std::make_unique<testing::FaultySubsystem>(
        backends[i], &clock_, options_.profile, options_.seed * 1000 + i));
    proxy_.push_back(std::make_unique<SubsystemProxy>(
        faulty_.back().get(), &clock_, options_.proxy));
  }
}

SemanticWorld::~SemanticWorld() = default;

Status SemanticWorld::RegisterAll(TransactionalProcessScheduler* scheduler) {
  for (auto& proxy : proxy_) {
    TPM_RETURN_IF_ERROR(scheduler->RegisterSubsystem(proxy.get()));
  }
  return Status::OK();
}

SemanticWorld::KvServices& SemanticWorld::EnsureKvKey(const std::string& key) {
  auto it = kv_keys_.find(key);
  if (it != kv_keys_.end()) return it->second;
  KvServices ks{ServiceId(next_service_id_), ServiceId(next_service_id_ + 1)};
  next_service_id_ += 2;
  Status s =
      kv_->RegisterService(MakeAddService(ks.add, StrCat("add/", key), key));
  if (s.ok()) {
    s = kv_->RegisterService(MakeSubService(ks.sub, StrCat("sub/", key), key));
  }
  return kv_keys_.emplace(key, ks).first->second;
}

SemanticWorld::EscrowServices& SemanticWorld::EnsureCounter(
    const std::string& counter) {
  auto it = counters_.find(counter);
  if (it != counters_.end()) return it->second;
  EscrowServices es{ServiceId(next_service_id_), ServiceId(next_service_id_ + 1),
                    ServiceId(next_service_id_ + 2)};
  next_service_id_ += 3;
  Status s = escrow_->CreateCounter(counter, options_.escrow_initial);
  if (s.ok()) s = escrow_->RegisterIncService(es.inc, counter);
  if (s.ok()) s = escrow_->RegisterDecService(es.dec, counter);
  if (s.ok()) s = escrow_->RegisterWithdrawService(es.withdraw, counter);
  return counters_.emplace(counter, es).first->second;
}

SemanticWorld::QueueServices& SemanticWorld::EnsureQueue(
    const std::string& queue) {
  auto it = queues_.find(queue);
  if (it != queues_.end()) return it->second;
  QueueServices qs{ServiceId(next_service_id_), ServiceId(next_service_id_ + 1),
                   ServiceId(next_service_id_ + 2),
                   ServiceId(next_service_id_ + 3)};
  next_service_id_ += 4;
  Status s = queue_->CreateQueue(queue, options_.queue_initial_tokens);
  if (s.ok()) s = queue_->RegisterEnqueueService(qs.enq, queue);
  if (s.ok()) s = queue_->RegisterDequeueService(qs.deq, queue);
  if (s.ok()) s = queue_->RegisterRemoveService(qs.rm, queue);
  if (s.ok()) s = queue_->RegisterRequeueService(qs.req, queue);
  return queues_.emplace(queue, qs).first->second;
}

ServiceId SemanticWorld::KvAdd(const std::string& key) {
  return EnsureKvKey(key).add;
}
ServiceId SemanticWorld::KvSub(const std::string& key) {
  return EnsureKvKey(key).sub;
}
ServiceId SemanticWorld::EscrowInc(const std::string& counter) {
  return EnsureCounter(counter).inc;
}
ServiceId SemanticWorld::EscrowDec(const std::string& counter) {
  return EnsureCounter(counter).dec;
}
ServiceId SemanticWorld::EscrowWithdraw(const std::string& counter) {
  return EnsureCounter(counter).withdraw;
}
ServiceId SemanticWorld::Enqueue(const std::string& queue) {
  return EnsureQueue(queue).enq;
}
ServiceId SemanticWorld::Dequeue(const std::string& queue) {
  return EnsureQueue(queue).deq;
}
ServiceId SemanticWorld::Remove(const std::string& queue) {
  return EnsureQueue(queue).rm;
}
ServiceId SemanticWorld::Requeue(const std::string& queue) {
  return EnsureQueue(queue).req;
}

const ProcessDef* SemanticWorld::Finish(std::unique_ptr<ProcessDef> def) {
  if (!def->Validate().ok()) return nullptr;
  if (!ValidateWellFormedFlex(*def).ok()) return nullptr;
  defs_.push_back(std::move(def));
  return defs_.back().get();
}

const ProcessDef* SemanticWorld::MakeOrderProcess(const std::string& name,
                                                  int variant) {
  auto def = std::make_unique<ProcessDef>(name);
  const std::string v = StrCat("v", variant);
  ActivityId c1 = def->AddActivity("enq_order", ActivityKind::kCompensatable,
                                   Enqueue("orders"), Remove("orders"));
  ActivityId c2 = def->AddActivity("deposit", ActivityKind::kCompensatable,
                                   EscrowInc("stock"), EscrowDec("stock"));
  ActivityId p = def->AddActivity("audit", ActivityKind::kPivot,
                                  KvAdd("audit_" + v));
  ActivityId ra = def->AddActivity("book_revenue", ActivityKind::kRetriable,
                                   EscrowInc("revenue"));
  ActivityId rb = def->AddActivity("defer_booking", ActivityKind::kRetriable,
                                   KvAdd("deferred_" + v));
  if (!def->AddEdge(c1, c2).ok() || !def->AddEdge(c2, p).ok() ||
      !def->AddEdge(p, ra, 0).ok() || !def->AddEdge(p, rb, 1).ok()) {
    return nullptr;
  }
  return Finish(std::move(def));
}

const ProcessDef* SemanticWorld::MakeConsumeProcess(const std::string& name,
                                                    int variant) {
  auto def = std::make_unique<ProcessDef>(name);
  const std::string v = StrCat("v", variant);
  ActivityId c1 = def->AddActivity("deq_order", ActivityKind::kCompensatable,
                                   Dequeue("orders"), Requeue("orders"));
  // Def. 2 pairing beyond the op table's inverse: the withdraw is
  // compensated by a deposit (give the stock back), which the escrow
  // method makes infallible.
  ActivityId c2 = def->AddActivity("take_stock", ActivityKind::kCompensatable,
                                   EscrowWithdraw("stock"),
                                   EscrowInc("stock"));
  ActivityId p = def->AddActivity("fulfill", ActivityKind::kPivot,
                                  KvAdd("fulfilled_" + v));
  ActivityId ra = def->AddActivity("mark_shipped", ActivityKind::kRetriable,
                                   EscrowInc("shipped"));
  ActivityId rb = def->AddActivity("backlog", ActivityKind::kRetriable,
                                   KvAdd("backlog_" + v));
  if (!def->AddEdge(c1, c2).ok() || !def->AddEdge(c2, p).ok() ||
      !def->AddEdge(p, ra, 0).ok() || !def->AddEdge(p, rb, 1).ok()) {
    return nullptr;
  }
  return Finish(std::move(def));
}

const ProcessDef* SemanticWorld::MakeRefillProcess(const std::string& name,
                                                   int variant) {
  auto def = std::make_unique<ProcessDef>(name);
  const std::string v = StrCat("v", variant);
  ActivityId c1 = def->AddActivity("restock", ActivityKind::kCompensatable,
                                   EscrowInc("stock"), EscrowDec("stock"));
  ActivityId p = def->AddActivity("audit", ActivityKind::kPivot,
                                  KvAdd("refill_audit_" + v));
  ActivityId r = def->AddActivity("announce", ActivityKind::kRetriable,
                                  Enqueue("orders"));
  if (!def->AddEdge(c1, p).ok() || !def->AddEdge(p, r).ok()) return nullptr;
  return Finish(std::move(def));
}

std::map<std::string, const ProcessDef*> SemanticWorld::DefsByName() const {
  std::map<std::string, const ProcessDef*> result;
  for (const auto& def : defs_) result[def->name()] = def.get();
  return result;
}

Status SemanticWorld::CheckAdtInvariants() const {
  TPM_RETURN_IF_ERROR(escrow_->CheckInvariants());
  TPM_RETURN_IF_ERROR(queue_->CheckInvariants());
  if (AnyNegativeKvValue()) {
    return Status::Internal("negative KV value after recovery");
  }
  return Status::OK();
}

bool SemanticWorld::AnyNegativeKvValue() const {
  for (const auto& [key, value] : kv_->store().Snapshot()) {
    if (value < 0) return true;
  }
  return false;
}

}  // namespace tpm
