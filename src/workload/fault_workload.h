#ifndef TPM_WORKLOAD_FAULT_WORKLOAD_H_
#define TPM_WORKLOAD_FAULT_WORKLOAD_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/virtual_clock.h"
#include "core/process.h"
#include "subsystem/kv_subsystem.h"
#include "subsystem/subsystem_proxy.h"
#include "testing/faulty_subsystem.h"

namespace tpm {

class TransactionalProcessScheduler;

struct FaultDomainOptions {
  int num_subsystems = 3;
  uint64_t seed = 1;
  /// Health layer applied to every subsystem (deadline, breaker).
  SubsystemProxyOptions proxy;
  /// Fault model applied to every subsystem (per-subsystem overrides via
  /// faulty(i)->set_profile and faulty(i)->AddOutage).
  testing::FaultProfile profile;
};

/// A multi-subsystem world wired for failure-domain experiments, shared by
/// the chaos soak test and the fault benchmarks. Each subsystem is a
/// three-layer stack on one shared VirtualClock:
///
///   SubsystemProxy (deadline + circuit breaker)
///     -> FaultySubsystem (seeded transient aborts, latency, outages)
///       -> KvSubsystem (the actual store; backoff also on the clock)
///
/// plus process-definition factories whose branch points carry
/// ◁-alternatives routed to *different* subsystems, so an outage of one
/// subsystem is survivable via degraded branches.
class FaultDomainWorld {
 public:
  explicit FaultDomainWorld(FaultDomainOptions options);
  ~FaultDomainWorld();

  VirtualClock* clock() { return &clock_; }
  int num_subsystems() const { return static_cast<int>(raw_.size()); }
  KvSubsystem* raw(int i) { return raw_[i].get(); }
  testing::FaultySubsystem* faulty(int i) { return faulty_[i].get(); }
  SubsystemProxy* proxy(int i) { return proxy_[i].get(); }

  /// Registers every subsystem (through its proxy) with the scheduler.
  /// The scheduler's options should carry clock() as the shared time base.
  Status RegisterAll(TransactionalProcessScheduler* scheduler);

  /// add/sub service pair for `key` on subsystem `i` (registered lazily).
  ServiceId AddServiceOn(int i, const std::string& key);
  ServiceId SubServiceOn(int i, const std::string& key);

  /// A process with a compensatable+pivot prefix on `home`, then a branch
  /// point whose preferred group (compensatable + retriable) runs on
  /// `primary` and whose ◁-alternative (all-retriable, degradable target)
  /// runs on `alt`. `variant` selects the key set, so processes with equal
  /// variants conflict while different variants mostly commute.
  const ProcessDef* MakeAlternativeProcess(const std::string& name, int home,
                                           int primary, int alt,
                                           int variant = 0);

  /// A linear chain on one subsystem: (length-1) compensatables, then a
  /// retriable. No alternatives — under an outage of `subsystem` it either
  /// waits the outage out or aborts via park timeout.
  const ProcessDef* MakeChainProcess(const std::string& name, int subsystem,
                                     int length, int variant = 0);

  std::map<std::string, const ProcessDef*> DefsByName() const;

  /// Store-sanity invariant of the chaos test: forward services only add,
  /// compensations subtract exactly what was added — a negative value
  /// means a compensation ran without (or twice per) its original.
  bool AnyNegativeValue() const;

 private:
  struct KeyServices {
    ServiceId add, sub;
  };
  KeyServices& EnsureKey(int i, const std::string& key);

  FaultDomainOptions options_;
  VirtualClock clock_;
  std::vector<std::unique_ptr<KvSubsystem>> raw_;
  std::vector<std::unique_ptr<testing::FaultySubsystem>> faulty_;
  std::vector<std::unique_ptr<SubsystemProxy>> proxy_;
  std::vector<std::map<std::string, KeyServices>> keys_;
  std::vector<std::unique_ptr<ProcessDef>> defs_;
  int64_t next_service_id_ = 1;
};

}  // namespace tpm

#endif  // TPM_WORKLOAD_FAULT_WORKLOAD_H_
