#ifndef TPM_WORKLOAD_SEMANTIC_WORLD_H_
#define TPM_WORKLOAD_SEMANTIC_WORLD_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/virtual_clock.h"
#include "core/process.h"
#include "subsystem/escrow_subsystem.h"
#include "subsystem/kv_subsystem.h"
#include "subsystem/queue_subsystem.h"
#include "subsystem/subsystem_proxy.h"
#include "testing/faulty_subsystem.h"

namespace tpm {

class TransactionalProcessScheduler;

struct SemanticWorldOptions {
  uint64_t seed = 1;
  /// Health layer applied to every backend (deadline, breaker).
  SubsystemProxyOptions proxy;
  /// Fault model applied to every backend (per-backend overrides via
  /// faulty(i)->set_profile and faulty(i)->AddOutage).
  testing::FaultProfile profile;
  /// Initial balance of every escrow counter created on demand.
  int64_t escrow_initial = 1000;
  /// Initial token count of every queue created on demand.
  int queue_initial_tokens = 8;
};

/// A mixed-ADT world: one KV subsystem, one escrow-counter subsystem and
/// one token-queue subsystem, each wrapped in the standard failure-domain
/// stack on one shared VirtualClock:
///
///   SubsystemProxy (deadline + circuit breaker)
///     -> FaultySubsystem (seeded transient aborts, latency, outages)
///       -> KvSubsystem | EscrowSubsystem | QueueSubsystem
///
/// plus process factories whose activities span all three backends with
/// ◁-alternatives, so the same workload exercises read/write conflicts, op
/// commutativity tables, Def. 2 compensation pairs across ADTs, and
/// degraded branches. Shared by bench_semantic, the chaos soak and the WAL
/// crash-point sweep.
class SemanticWorld {
 public:
  /// Backend indices for faulty(i)/proxy(i).
  enum Backend { kKv = 0, kEscrow = 1, kQueue = 2, kNumBackends = 3 };

  explicit SemanticWorld(SemanticWorldOptions options);
  ~SemanticWorld();

  VirtualClock* clock() { return &clock_; }
  KvSubsystem* kv() { return kv_.get(); }
  EscrowSubsystem* escrow() { return escrow_.get(); }
  QueueSubsystem* queue() { return queue_.get(); }
  testing::FaultySubsystem* faulty(int i) { return faulty_[i].get(); }
  SubsystemProxy* proxy(int i) { return proxy_[i].get(); }

  /// Registers all three backends (through their proxies) with the
  /// scheduler. The scheduler's options should carry clock() as the shared
  /// time base.
  Status RegisterAll(TransactionalProcessScheduler* scheduler);

  /// Lazily registered services. Escrow counters start at
  /// options.escrow_initial; queues are pre-seeded with
  /// options.queue_initial_tokens tokens.
  ServiceId KvAdd(const std::string& key);
  ServiceId KvSub(const std::string& key);
  ServiceId EscrowInc(const std::string& counter);
  ServiceId EscrowDec(const std::string& counter);
  ServiceId EscrowWithdraw(const std::string& counter);
  ServiceId Enqueue(const std::string& queue);
  ServiceId Dequeue(const std::string& queue);
  ServiceId Remove(const std::string& queue);
  ServiceId Requeue(const std::string& queue);

  /// Producer: enqueue an order token, deposit into the shared stock
  /// counter, pivot an audit write on a per-variant KV key, then prefer
  /// booking revenue (escrow inc) with a KV deferred-booking
  /// ◁-alternative. The escrow and queue touches land on *shared* hot
  /// state, so with op commutativity off these processes serialize and
  /// with it on they run in parallel.
  const ProcessDef* MakeOrderProcess(const std::string& name, int variant = 0);

  /// Consumer: dequeue an order (compensated by requeue-at-front),
  /// withdraw stock under the escrow test (compensated by a deposit —
  /// a Def. 2 pair that is *not* the op table's inverse), pivot a
  /// fulfillment write, then prefer an escrow shipped-counter inc with a
  /// KV backlog ◁-alternative.
  const ProcessDef* MakeConsumeProcess(const std::string& name,
                                       int variant = 0);

  /// Refiller: deposit stock, pivot an audit write, then retriably
  /// enqueue a fresh order token.
  const ProcessDef* MakeRefillProcess(const std::string& name,
                                      int variant = 0);

  std::map<std::string, const ProcessDef*> DefsByName() const;

  /// The combined ADT invariants checked after every chaos/crash recovery:
  /// escrow safety envelope (non-negative stable balances) and queue token
  /// consistency, plus the KV negative-value probe.
  Status CheckAdtInvariants() const;
  bool AnyNegativeKvValue() const;

 private:
  struct EscrowServices {
    ServiceId inc, dec, withdraw;
  };
  struct QueueServices {
    ServiceId enq, deq, rm, req;
  };
  struct KvServices {
    ServiceId add, sub;
  };

  EscrowServices& EnsureCounter(const std::string& counter);
  QueueServices& EnsureQueue(const std::string& queue);
  KvServices& EnsureKvKey(const std::string& key);
  const ProcessDef* Finish(std::unique_ptr<ProcessDef> def);

  SemanticWorldOptions options_;
  VirtualClock clock_;
  std::unique_ptr<KvSubsystem> kv_;
  std::unique_ptr<EscrowSubsystem> escrow_;
  std::unique_ptr<QueueSubsystem> queue_;
  std::vector<std::unique_ptr<testing::FaultySubsystem>> faulty_;
  std::vector<std::unique_ptr<SubsystemProxy>> proxy_;
  std::map<std::string, EscrowServices> counters_;
  std::map<std::string, QueueServices> queues_;
  std::map<std::string, KvServices> kv_keys_;
  std::vector<std::unique_ptr<ProcessDef>> defs_;
  int64_t next_service_id_ = 1;
};

}  // namespace tpm

#endif  // TPM_WORKLOAD_SEMANTIC_WORLD_H_
