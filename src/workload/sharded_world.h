#ifndef TPM_WORKLOAD_SHARDED_WORLD_H_
#define TPM_WORKLOAD_SHARDED_WORLD_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/process.h"
#include "runtime/conflict_partition.h"
#include "subsystem/escrow_subsystem.h"
#include "subsystem/kv_subsystem.h"
#include "subsystem/queue_subsystem.h"

namespace tpm {

class ShardedRuntime;
class TransactionalProcessScheduler;

struct ShardedWorldOptions {
  uint64_t seed = 1;
  /// Independent tenants; tenant t's state is disjoint from every other
  /// tenant's, so the conflict graph has (at least) one component per
  /// tenant and the partitioner can spread tenants across shards.
  int num_tenants = 4;
  /// Initial balance of every escrow counter created on demand.
  int64_t escrow_initial = 1000;
  /// Initial token count of every queue created on demand.
  int queue_initial_tokens = 8;
};

/// The multi-tenant workload behind the sharded runtime: `num_tenants`
/// copies of the mixed-ADT economy (one KV, one escrow-counter and one
/// token-queue subsystem per tenant — separate instances, since a
/// subsystem registers with exactly one shard scheduler). Keys, counters
/// and queues are namespaced per tenant, so inter-tenant conflicts are
/// impossible and each tenant is its own connected component; a per-tenant
/// colocation group additionally pins all three of a tenant's subsystems
/// to one shard, so every tenant-local process footprint routes cleanly.
///
/// The same world registers against a ShardedRuntime (RegisterAll) or a
/// single solo scheduler (RegisterAllSolo) — the lockstep-equivalence test
/// runs one world per side and compares histories shard by shard.
class ShardedWorld {
 public:
  explicit ShardedWorld(ShardedWorldOptions options);
  ~ShardedWorld();

  int num_tenants() const { return options_.num_tenants; }
  KvSubsystem* kv(int tenant) { return tenants_[tenant].kv.get(); }
  EscrowSubsystem* escrow(int tenant) { return tenants_[tenant].escrow.get(); }
  QueueSubsystem* queue(int tenant) { return tenants_[tenant].queue.get(); }

  /// Adds every tenant's subsystems plus the per-tenant colocation groups
  /// to the runtime. Call before runtime->Start().
  Status RegisterAll(ShardedRuntime* runtime);

  /// Registers every tenant's subsystems with one solo scheduler (the
  /// single-threaded baseline the equivalence test compares against).
  Status RegisterAllSolo(TransactionalProcessScheduler* scheduler);

  /// Replication: registers this world as replica `replica` of a
  /// replicated runtime. Replica 0 (the spec-defining registration,
  /// including colocations) is RegisterAll; replicas >= 1 must come from
  /// mirror worlds built with the same seed and the same Make*Process
  /// calls, so they mint identical ServiceIds.
  Status RegisterAllAsReplica(ShardedRuntime* runtime, int replica);

  /// All services of one tenant (its colocation group).
  std::vector<ServiceId> TenantServices(int tenant) const;

  /// Per-tenant lazily registered services; names are tenant-namespaced.
  ServiceId KvAdd(int tenant, const std::string& key);
  ServiceId KvSub(int tenant, const std::string& key);
  ServiceId EscrowInc(int tenant, const std::string& counter);
  ServiceId EscrowDec(int tenant, const std::string& counter);
  ServiceId EscrowWithdraw(int tenant, const std::string& counter);
  ServiceId Enqueue(int tenant, const std::string& queue);
  ServiceId Dequeue(int tenant, const std::string& queue);
  ServiceId Remove(int tenant, const std::string& queue);
  ServiceId Requeue(int tenant, const std::string& queue);

  /// Tenant-local copies of the semantic-world process shapes: enqueue an
  /// order + deposit stock (compensatable), pivot an audit write, then a
  /// ◁-preferred revenue booking with a KV fallback.
  const ProcessDef* MakeOrderProcess(int tenant, const std::string& name,
                                     int variant = 0);
  /// Dequeue + withdraw (Def. 2 compensations), pivot fulfillment, then a
  /// ◁-preferred shipped-counter inc with a KV backlog fallback.
  const ProcessDef* MakeConsumeProcess(int tenant, const std::string& name,
                                       int variant = 0);
  /// Deposit stock, pivot an audit write, retriably announce a token.
  const ProcessDef* MakeRefillProcess(int tenant, const std::string& name,
                                      int variant = 0);

  /// A cross-shard process: enqueues into `tenant_a`'s order queue
  /// (compensatable), then pivots a deposit into `tenant_b`'s stock
  /// counter. When the tenants live on different shards the router splits
  /// it into two sub-processes and the coordination agent drives the
  /// distributed commit; same-shard tenants keep it on the pinned fast
  /// path.
  const ProcessDef* MakeSpanningProcess(const std::string& name, int tenant_a,
                                        int tenant_b);
  /// A multi-hop chain across three tenants: compensatable order enqueue
  /// on `tenant_a`, compensatable stock deposit + pivot audit on
  /// `tenant_b`, retriable announcement into `tenant_c`'s queue — a
  /// three-stage cross-shard dependency skeleton.
  const ProcessDef* MakeSpanningChainProcess(const std::string& name,
                                             int tenant_a, int tenant_b,
                                             int tenant_c);
  /// Cross-shard ◁ alternatives: trunk (compensatable enqueue + pivot
  /// audit) on `tenant_a`, then a preferred revenue booking on `tenant_b`
  /// ◁ a fallback backlog write on `tenant_c` — the splitter turns the
  /// groups into preference-ordered tails the agent tries in order.
  const ProcessDef* MakeSpanningAltProcess(const std::string& name,
                                           int tenant_a, int tenant_b,
                                           int tenant_c);

  std::map<std::string, const ProcessDef*> DefsByName() const;

  /// ADT invariants over every tenant: escrow safety envelope, queue token
  /// consistency, no negative KV value.
  Status CheckAdtInvariants() const;

 private:
  struct EscrowServices {
    ServiceId inc, dec, withdraw;
  };
  struct QueueServices {
    ServiceId enq, deq, rm, req;
  };
  struct KvServices {
    ServiceId add, sub;
  };
  struct Tenant {
    std::unique_ptr<KvSubsystem> kv;
    std::unique_ptr<EscrowSubsystem> escrow;
    std::unique_ptr<QueueSubsystem> queue;
    std::map<std::string, EscrowServices> counters;
    std::map<std::string, QueueServices> queues;
    std::map<std::string, KvServices> kv_keys;
  };

  EscrowServices& EnsureCounter(int tenant, const std::string& counter);
  QueueServices& EnsureQueue(int tenant, const std::string& queue);
  KvServices& EnsureKvKey(int tenant, const std::string& key);
  const ProcessDef* Finish(std::unique_ptr<ProcessDef> def);

  ShardedWorldOptions options_;
  std::vector<Tenant> tenants_;
  std::vector<std::unique_ptr<ProcessDef>> defs_;
  int64_t next_service_id_ = 1;
};

}  // namespace tpm

#endif  // TPM_WORKLOAD_SHARDED_WORLD_H_
