#ifndef TPM_WORKLOAD_DSL_BINDING_H_
#define TPM_WORKLOAD_DSL_BINDING_H_

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/process_dsl.h"
#include "core/scheduler.h"
#include "subsystem/kv_subsystem.h"

namespace tpm {

/// Makes a parsed DSL world executable: every service id referenced by the
/// world's processes is materialized as a synthetic counter service
/// (add +param on key "svc<id>"; compensation services subtract) in one
/// simulated subsystem, and the world's *declared* conflicts are installed
/// on the scheduler in addition to the (trivially disjoint) derived ones.
///
/// This turns the analyzer's static worlds into runnable workloads: write
/// a .tpm file, execute it under any protocol, inject failures per
/// activity, and inspect the store afterwards.
class BoundWorld {
 public:
  /// Binds `world` (which must outlive the result). Compensation service
  /// ids referenced by activities are bound as inverse (subtracting)
  /// services; all others add.
  static Result<std::unique_ptr<BoundWorld>> Bind(const ParsedWorld* world);

  /// Registers the subsystem and the declared conflicts.
  Status Attach(TransactionalProcessScheduler* scheduler);

  /// Submits every process of the world (in definition order), returning
  /// name -> pid.
  Result<std::map<std::string, ProcessId>> SubmitAll(
      TransactionalProcessScheduler* scheduler, int64_t param = 0);

  /// Makes the next `count` invocations of the named activity's service
  /// fail (targets the service, so same-service activities share fate).
  Status InjectFailure(const std::string& process,
                       const std::string& activity, int count = 1);

  /// Value of the synthetic key behind `service`.
  int64_t ValueOf(ServiceId service) const;

  KvSubsystem* subsystem() { return subsystem_.get(); }
  const ParsedWorld& world() const { return *world_; }

 private:
  explicit BoundWorld(const ParsedWorld* world) : world_(world) {}

  const ParsedWorld* world_;
  std::unique_ptr<KvSubsystem> subsystem_;
  std::map<std::string, std::map<std::string, ServiceId>> service_of_;
};

}  // namespace tpm

#endif  // TPM_WORKLOAD_DSL_BINDING_H_
