#ifndef TPM_WORKLOAD_SKEWED_TRAFFIC_H_
#define TPM_WORKLOAD_SKEWED_TRAFFIC_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace tpm {

struct SkewedTrafficOptions {
  uint64_t seed = 1;
  int num_tenants = 8;
  /// Fraction of draws aimed at the hot set; the rest spread uniformly
  /// over the cold tenants.
  double hot_fraction = 0.9;
  /// Tenants that are simultaneously hot.
  int hot_tenants = 2;
  /// Draws per phase before the hot set rotates to the next group of
  /// tenants (round-robin); 0 = the hot set never moves.
  int64_t phase_length = 0;
};

/// Deterministic skewed tenant chooser for elastic experiments: most
/// traffic hammers a small hot set, and (optionally) the hot set rotates
/// every phase_length draws — the moving hotspot a static partition
/// placement cannot follow but a load-aware migration policy can.
class SkewedTraffic {
 public:
  explicit SkewedTraffic(SkewedTrafficOptions options);

  /// Draws the next tenant. Rotates the hot set at phase boundaries.
  int NextTenant();

  int64_t draws() const { return draws_; }
  int64_t phase() const { return phase_; }
  const std::vector<int>& hot_set() const { return hot_; }

 private:
  void Rotate();

  SkewedTrafficOptions options_;
  Rng rng_;
  std::vector<int> hot_;
  std::vector<int> cold_;
  int64_t draws_ = 0;
  int64_t phase_ = 0;
};

}  // namespace tpm

#endif  // TPM_WORKLOAD_SKEWED_TRAFFIC_H_
