#include "testing/faulty_subsystem.h"

#include "common/str_util.h"

namespace tpm {
namespace testing {

FaultySubsystem::FaultySubsystem(Subsystem* inner, VirtualClock* clock,
                                 FaultProfile profile, uint64_t seed)
    : inner_(inner), clock_(clock), profile_(profile), rng_(seed) {}

Status FaultySubsystem::InjectBeforeInvoke(const char* site) {
  ++attempted_invocations_;
  if (listener_ != nullptr && listener_->OnCrashPoint(site)) {
    ++injected_site_faults_;
    return Status::Aborted(
        StrCat("injected fault at ", site, " in ", inner_->name()));
  }
  if (InOutage(clock_->now())) {
    ++outage_rejections_;
    if (clock_->deadline_active()) {
      // The caller set an invocation budget: the call hangs against the
      // unreachable subsystem until the budget runs out.
      clock_->AdvanceToDeadline();
      return Status::Aborted(
          StrCat("outage: invocation of ", inner_->name(), " timed out"));
    }
    return Status::Aborted(
        StrCat("outage: connection refused by ", inner_->name()));
  }
  // Transport/queueing latency precedes the local transaction; under an
  // active deadline the advance clamps at the budget and the invocation
  // aborts before any effect happened.
  int64_t latency = profile_.latency_ticks;
  if (profile_.slow_probability > 0 &&
      rng_.NextBool(profile_.slow_probability)) {
    latency += profile_.slow_latency_ticks;
  }
  if (latency > 0) {
    clock_->Advance(latency);
    if (clock_->deadline_expired()) {
      return Status::Aborted(
          StrCat("slow invocation of ", inner_->name(), " exceeded deadline"));
    }
  }
  if (profile_.transient_abort_probability > 0 &&
      rng_.NextBool(profile_.transient_abort_probability)) {
    ++transient_aborts_;
    return Status::Aborted(
        StrCat("transient fault invoking ", inner_->name()));
  }
  return Status::OK();
}

Result<InvocationOutcome> FaultySubsystem::Invoke(
    ServiceId service, const ServiceRequest& request) {
  TPM_RETURN_IF_ERROR(InjectBeforeInvoke("subsystem/invoke"));
  return inner_->Invoke(service, request);
}

Result<PreparedHandle> FaultySubsystem::InvokePrepared(
    ServiceId service, const ServiceRequest& request) {
  TPM_RETURN_IF_ERROR(InjectBeforeInvoke("subsystem/prepare"));
  return inner_->InvokePrepared(service, request);
}

Status FaultySubsystem::CommitPrepared(TxId tx) {
  if (listener_ != nullptr && listener_->OnCrashPoint("subsystem/commit")) {
    ++injected_site_faults_;
    // The decision message is lost once; the branch stays prepared and in
    // doubt until the coordinator re-drives phase two.
    return Status::Unavailable(
        StrCat("injected fault at subsystem/commit in ", inner_->name()));
  }
  return inner_->CommitPrepared(tx);
}

}  // namespace testing
}  // namespace tpm
