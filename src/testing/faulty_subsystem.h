#ifndef TPM_TESTING_FAULTY_SUBSYSTEM_H_
#define TPM_TESTING_FAULTY_SUBSYSTEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/virtual_clock.h"
#include "log/storage_backend.h"
#include "subsystem/kv_subsystem.h"

namespace tpm {
namespace testing {

/// Deterministic seeded fault model applied by FaultySubsystem to every
/// first-phase invocation.
struct FaultProfile {
  /// Probability that an invocation aborts transiently (Def. 3 shape:
  /// independent per attempt, so it commits after finitely many retries
  /// with probability 1).
  double transient_abort_probability = 0.0;
  /// Base transport/queueing latency charged to the shared clock before
  /// the local transaction runs.
  int64_t latency_ticks = 0;
  /// With this probability an invocation additionally stalls for
  /// slow_latency_ticks (a slow replica / GC pause / queue spike).
  double slow_probability = 0.0;
  int64_t slow_latency_ticks = 0;
};

/// Decorator wrapping any Subsystem with a deterministic, seeded fault
/// model on the shared VirtualClock: transient aborts, injected latency
/// ticks, and repairable outage windows. All injected waiting happens
/// *before* the inner invocation, so when a cooperative deadline (set by
/// SubsystemProxy) expires, the invocation aborts without the local
/// transaction ever running — timeouts keep clean retriable semantics.
///
/// Faults also surface as FaultInjector crash-point sites
/// ("subsystem/invoke", "subsystem/prepare", "subsystem/commit") so one
/// injector can arm WAL and subsystem faults in the same run: an armed hit
/// at an invoke/prepare site aborts that invocation; at the commit site it
/// makes the 2PC phase-two decision call fail once with kUnavailable,
/// leaving the branch in doubt for the coordinator to resolve.
///
/// Outages block only first-phase invocations (Invoke / InvokePrepared).
/// Phase two passes through: the prepared state is durable in the
/// participant and decision messages are assumed to be retried below this
/// simulation's abstraction, so a decided branch always resolves.
class FaultySubsystem : public Subsystem {
 public:
  FaultySubsystem(Subsystem* inner, VirtualClock* clock, FaultProfile profile,
                  uint64_t seed);

  FaultySubsystem(const FaultySubsystem&) = delete;
  FaultySubsystem& operator=(const FaultySubsystem&) = delete;

  /// Replaces the fault profile (experiments dial severity up and down).
  void set_profile(const FaultProfile& profile) { profile_ = profile; }
  const FaultProfile& profile() const { return profile_; }

  /// Schedules a repairable outage over [start, end) on the shared clock.
  void AddOutage(int64_t start, int64_t end) {
    outages_.push_back(Outage{start, end});
  }
  bool InOutage(int64_t now) const {
    for (const Outage& o : outages_) {
      if (now >= o.start && now < o.end) return true;
    }
    return false;
  }

  /// Registers the crash-point listener (a tpm::testing::FaultInjector)
  /// consulted at the subsystem/* sites; null detaches.
  void SetCrashPointListener(CrashPointListener* listener) {
    listener_ = listener;
  }

  SubsystemId id() const override { return inner_->id(); }
  const std::string& name() const override { return inner_->name(); }
  const ServiceRegistry& services() const override {
    return inner_->services();
  }

  Result<InvocationOutcome> Invoke(ServiceId service,
                                   const ServiceRequest& request) override;
  Result<PreparedHandle> InvokePrepared(ServiceId service,
                                        const ServiceRequest& request) override;
  Status CommitPrepared(TxId tx) override;
  Status AbortPrepared(TxId tx) override { return inner_->AbortPrepared(tx); }
  bool WouldBlock(ServiceId service) const override {
    return inner_->WouldBlock(service);
  }
  Status AbortAllPrepared() override { return inner_->AbortAllPrepared(); }
  void OnProcessResolved(ProcessId process, bool committed) override {
    inner_->OnProcessResolved(process, committed);
  }

  Subsystem* inner() { return inner_; }
  int64_t transient_aborts() const { return transient_aborts_; }
  int64_t outage_rejections() const { return outage_rejections_; }
  int64_t injected_site_faults() const { return injected_site_faults_; }
  int64_t attempted_invocations() const { return attempted_invocations_; }

 private:
  struct Outage {
    int64_t start;
    int64_t end;
  };

  /// Runs the fault model; non-OK means the invocation fails without
  /// reaching the inner subsystem.
  Status InjectBeforeInvoke(const char* site);

  Subsystem* inner_;
  VirtualClock* clock_;
  FaultProfile profile_;
  Rng rng_;
  std::vector<Outage> outages_;
  CrashPointListener* listener_ = nullptr;
  int64_t transient_aborts_ = 0;
  int64_t outage_rejections_ = 0;
  int64_t injected_site_faults_ = 0;
  int64_t attempted_invocations_ = 0;
};

}  // namespace testing
}  // namespace tpm

#endif  // TPM_TESTING_FAULTY_SUBSYSTEM_H_
