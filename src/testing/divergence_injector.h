#ifndef TPM_TESTING_DIVERGENCE_INJECTOR_H_
#define TPM_TESTING_DIVERGENCE_INJECTOR_H_

#include <cstdint>
#include <functional>

#include "log/storage_backend.h"

namespace tpm {
namespace testing {

/// Silent-corruption injector for replica-divergence tests: rides the
/// WAL's crash-point hooks like FaultInjector, but instead of crashing it
/// runs a corruption callback at the armed hit and lets execution continue
/// — the model of a bit-flip or a heisenbug that damages one replica's
/// state without killing it. Attach as one replica's
/// ReplicationOptions::replica_crash_listener and have the callback mutate
/// that replica's subsystem state (e.g. KvSubsystem::store().Put with a
/// flipped value); the callback then runs ON the replica's worker thread,
/// mid-pass, exactly where real corruption would strike. The voter must
/// catch the divergence at the next vote boundary — before any externally
/// visible effect, since only the acting primary's results are ever
/// released.
class DivergenceInjector : public CrashPointListener {
 public:
  /// Arm: run `corrupt` on the `hit`-th crash-point hit (1-based).
  /// hit <= 0 disarms (count-only mode, for dry runs).
  void ArmAt(int64_t hit, std::function<void()> corrupt) {
    arm_at_ = hit;
    corrupt_ = std::move(corrupt);
    hits_ = 0;
    corrupted_ = false;
  }

  void Reset() {
    arm_at_ = 0;
    corrupt_ = nullptr;
    hits_ = 0;
    corrupted_ = false;
  }

  bool OnCrashPoint(const char* /*site*/) override {
    ++hits_;
    if (arm_at_ > 0 && !corrupted_ && hits_ == arm_at_ &&
        corrupt_ != nullptr) {
      corrupted_ = true;
      corrupt_();
    }
    return false;  // never crash — the corruption is silent
  }

  int64_t hits() const { return hits_; }
  bool corrupted() const { return corrupted_; }

 private:
  int64_t arm_at_ = 0;
  std::function<void()> corrupt_;
  int64_t hits_ = 0;
  bool corrupted_ = false;
};

}  // namespace testing
}  // namespace tpm

#endif  // TPM_TESTING_DIVERGENCE_INJECTOR_H_
