#include "testing/fault_injector.h"

#include <cstdlib>
#include <fstream>

namespace tpm {
namespace testing {

std::string WriteFailingSeed(const std::string& scenario, int64_t crash_hit,
                             const std::string& site,
                             const std::string& detail) {
  const char* env = std::getenv("TPM_FAULT_SEED_FILE");
  std::string path = env != nullptr && env[0] != '\0'
                         ? env
                         : "fault_injection_failing_seed.txt";
  std::ofstream out(path, std::ios::app);
  out << "scenario=" << scenario << " crash_hit=" << crash_hit
      << " site=" << site << "\n"
      << detail << "\n";
  return path;
}

}  // namespace testing
}  // namespace tpm
