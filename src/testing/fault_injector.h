#ifndef TPM_TESTING_FAULT_INJECTOR_H_
#define TPM_TESTING_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <string>

#include "log/storage_backend.h"

namespace tpm {
namespace testing {

/// Deterministic crash-point injector for the WAL's fault-injection hooks.
///
/// A sweep first performs a dry run with an unarmed injector to count the
/// crash-point hits T of a scenario, then re-runs the scenario T times,
/// arming the injector at hit k = 1..T; each armed run crashes the log at
/// exactly one site, after which the harness recovers and asserts the
/// correctness criteria. Hits are counted globally across sites unless a
/// site filter is set.
class FaultInjector : public CrashPointListener {
 public:
  /// Arm: trigger a crash on the `hit`-th crash-point hit (1-based).
  /// hit <= 0 disarms (count-only mode).
  void ArmAt(int64_t hit) {
    arm_at_ = hit;
    triggered_ = false;
    triggered_site_.clear();
  }

  /// Restrict counting (and hence triggering) to one site name; empty
  /// string removes the filter.
  void ArmAtSite(const std::string& site, int64_t hit) {
    site_filter_ = site;
    ArmAt(hit);
  }

  /// Resets counters and disarms; per-site statistics are cleared too.
  void Reset() {
    arm_at_ = 0;
    hits_ = 0;
    triggered_ = false;
    triggered_site_.clear();
    site_filter_.clear();
    site_hits_.clear();
  }

  bool OnCrashPoint(const char* site) override {
    if (!site_filter_.empty() && site_filter_ != site) return false;
    ++hits_;
    ++site_hits_[site];
    if (arm_at_ > 0 && !triggered_ && hits_ == arm_at_) {
      triggered_ = true;
      triggered_site_ = site;
      return true;
    }
    return false;
  }

  /// Crash-point hits observed since the last Reset/ArmAt (counting
  /// continues across triggers, so a dry run measures the full scenario).
  int64_t hits() const { return hits_; }
  bool triggered() const { return triggered_; }
  const std::string& triggered_site() const { return triggered_site_; }
  const std::map<std::string, int64_t>& site_hits() const {
    return site_hits_;
  }

  /// Restarts hit counting without touching the arming state — call
  /// between the dry run and each armed run.
  void ResetCounts() {
    hits_ = 0;
    triggered_ = false;
    triggered_site_.clear();
    site_hits_.clear();
  }

 private:
  int64_t arm_at_ = 0;
  int64_t hits_ = 0;
  bool triggered_ = false;
  std::string triggered_site_;
  std::string site_filter_;
  std::map<std::string, int64_t> site_hits_;
};

/// Writes a reproducer description of a failing sweep iteration to the
/// file named by the TPM_FAULT_SEED_FILE environment variable (default
/// "fault_injection_failing_seed.txt" in the working directory) so CI can
/// upload it as an artifact. Returns the path written.
std::string WriteFailingSeed(const std::string& scenario, int64_t crash_hit,
                             const std::string& site,
                             const std::string& detail);

}  // namespace testing
}  // namespace tpm

#endif  // TPM_TESTING_FAULT_INJECTOR_H_
